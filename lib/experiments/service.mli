(** Distributed campaign driver: sharded, resumable, multi-process runs
    and the campaign-as-a-service TCP front end.

    The execution model stacks three layers of parallelism:

    - inside one process, {!Tmr_inject.Campaign.run} spreads a shard's
      faults over a domain {!Tmr_inject.Pool};
    - {!run_sharded} splits the whole fault-index space into
      {!Tmr_inject.Shard} ranges kept in an on-disk
      {!Tmr_inject.Workqueue}, and with [procs >= 2] forks that many
      worker processes which claim ranges until the queue drains;
    - {!serve} accepts campaign jobs over TCP and feeds them through
      {!run_sharded}, streaming progress to every connected client.

    Because each per-fault verdict is a pure function of the fault bit,
    the merged result is bit-identical to a single-process campaign over
    the same fault list, no matter how the ranges were distributed,
    interrupted or resumed. *)

type job = {
  j_design : Tmr_core.Partition.strategy;
  j_scale : Context.scale;
  j_seed : int;
  j_faults : int;  (** sample size; ignored when [j_exhaustive] *)
  j_exhaustive : bool;
      (** inject the design's {e entire} essential-bit list — the exact,
          CI-free wrong-answer rate of the paper's Table 3 argument *)
  j_shards : int;  (** checkpointable ranges to plan *)
  j_workers : int;  (** domain workers per process *)
  j_diff : bool;
  j_batch_width : int;
  j_voter : Tmr_core.Voter.variant;
      (** voter macro the design is built with; part of the job
          fingerprint, so a resume never mixes voter variants *)
}

val job : ?scale:Context.scale -> ?seed:int -> ?faults:int ->
  ?exhaustive:bool -> ?shards:int -> ?workers:int -> ?diff:bool ->
  ?batch_width:int -> ?voter:Tmr_core.Voter.variant ->
  Tmr_core.Partition.strategy -> job
(** Defaults: paper scale, seed 1, 1500 faults, sampled, 16 shards,
    1 worker, diff on, batch width 64, majority voter. *)

val job_name : job -> string
(** Stable human-readable id, e.g. ["tmr_p2-reduced-seed1-exhaustive"] —
    the [job] field of the service's stream events and the natural
    per-job queue directory name. *)

val job_to_json : job -> Tmr_obs.Json.t
val job_of_json : Tmr_obs.Json.t -> (job, string) result

val faults_of : Context.t -> Runs.design_run -> job -> int array
(** The job's fault-index space: the full essential-bit list when
    exhaustive, otherwise the usual deterministic sample. *)

val fingerprint : job -> int array -> string
(** Digest of the job spec plus its resolved fault list.  Stored in the
    queue's [job.json] and in every shard manifest; a resume whose
    recomputed fingerprint differs refuses to mix results. *)

type spool_info = {
  sp_worker : int;  (** worker slot (1-based; 0 is the parent) *)
  sp_path : string;  (** the worker's [events-w<K>.jsonl] spool file *)
  sp_events : int;
      (** worker-local events relayed onto the bus — the spool's origin
          sequence range is [0 .. sp_events + sp_gaps - 1] *)
  sp_gaps : int;  (** origin sequence numbers never observed *)
}
(** Per-worker spool accounting from a forked run with events enabled. *)

type outcome = {
  o_campaign : Tmr_inject.Campaign.t;
      (** merged result, bit-identical to a single-process run *)
  o_resumed : int;  (** shards reused from manifests of a previous run *)
  o_fresh : int;  (** shards simulated by this invocation *)
  o_spools : spool_info list;
      (** one entry per forked worker when events were on; empty
          otherwise *)
}

type status =
  | Complete of outcome
  | Incomplete of { done_shards : int; pending_shards : int }
      (** the invocation stopped (shard limit) with ranges still queued;
          rerun with the same [dir] to continue *)

val run_sharded :
  ?procs:int ->
  ?shard_limit:int ->
  ?fresh:bool ->
  ?notify:(Tmr_obs.Events.event -> unit) ->
  dir:string ->
  job ->
  Context.t ->
  Runs.design_run ->
  (status, string) result
(** Run [job]'s campaign through the shard queue rooted at [dir].

    Resume is the default: ranges already completed under the same
    fingerprint are loaded from their manifests, only the missing ones
    are simulated.  A fingerprint mismatch (the directory belongs to a
    different job) is an [Error] unless [fresh] wipes the queue first.

    [procs] (default 1): with 1, the calling process claims ranges
    inline; with [p >= 2], [p] worker processes are forked {e after} the
    implementation was built — they inherit the device, bitstream and
    golden state by copy-on-write, claim ranges concurrently through the
    rename-based queue, and each runs its shards on [j_workers] domains.

    Distributed telemetry: forked children
    {!Tmr_obs.Events.detach} from the parent's bus and — when events
    were enabled at fork time — reopen a per-worker spool
    ([events-w<K>.jsonl] in [dir]) stamped with their origin
    (pid/worker/shard and the job correlation id).  A parent tailer
    thread follows the live spools and republishes every worker event
    onto the real bus, re-sequenced with origin preserved, so file and
    socket sinks see one coherent fleet stream.  Children also snapshot
    their metrics registry to [metrics-w<K>.json] at every shard
    boundary (folded into {!Tmr_obs.Expose} scrapes fleet-wide) and,
    when tracing, write [trace-w<K>.jsonl], which the parent stitches
    into its own trace after the run.  The run also publishes
    origin-less fleet-level [Campaign_started] / [Campaign_stopped]
    events around the whole sharded campaign.

    The per-worker spool accounting is returned in
    [o_spools]; {!interrupt} (wired to the host's SIGINT handler)
    terminates and reaps live children and drains their spool tails.

    [shard_limit] stops this invocation after claiming that many ranges
    (per process when forked) — deterministic interruption for tests,
    time-boxing for incremental exhaustive runs; the result is then
    [Incomplete] unless everything else was already done.

    [notify] (default {!Tmr_obs.Events.publish}) receives
    [Shard_done] after every completed range — [serve] points it at its
    own broadcast stream.

    A crashed worker's claim is reclaimed on the next invocation (dead
    owner pid), so a kill -9 mid-shard costs at most that shard's work. *)

val interrupt : unit -> unit
(** When a {!run_sharded} fleet is live in this process: SIGTERM every
    remaining child, reap them, and drain the spool tails onto the bus.
    No-op otherwise.  Intended to be called from the host binary's
    SIGINT handler {e before} it flushes and closes its sinks. *)

val summary_json : job -> status -> string
(** One-line JSON: the job name plus either the merged campaign summary
    (see {!Tmr_inject.Campaign.summary_json}, with [exhaustive] and
    shard counts spliced in) or the incomplete shard tally. *)

val serve :
  ?host:string ->
  ?max_jobs:int ->
  ?procs:int ->
  port:int ->
  dir:string ->
  unit ->
  unit
(** Campaign-as-a-service: listen on [host]:[port] (default 127.0.0.1),
    accept newline-delimited JSON jobs ({!job_of_json}) from any number
    of concurrent clients, queue them, and run them sequentially through
    {!run_sharded} (each under [dir]/<job name>, so re-submitting an
    interrupted job resumes it).

    Every connected client receives the full event stream as JSONL in
    {!Tmr_obs.Events.render} format — [job_queued] / [job_started] /
    campaign progress / [shard_done] / [job_done] — with a server-local
    dense [seq].  A malformed job line is answered with one
    [{"error":...}] line on the offending client only.

    Implementations are cached per (scale, seed, design), so repeated
    jobs against the same design skip the CAD flow.  [max_jobs] stops
    the server after that many jobs completed (tests/CI); otherwise it
    serves until the process is interrupted. *)
