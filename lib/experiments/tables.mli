(** Reproductions of the paper's tables, rendered as plain text.

    Each function returns the rendered table; the paper's own numbers are
    shown alongside where they exist, so a run is directly comparable with
    the publication (EXPERIMENTS.md records one such run). *)

val table1 : Context.t -> Runs.design_run -> string
(** Upset analysis in the TMR approach: one row per upset location (LUT,
    routing, customization, flip-flop), with the consequence measured by
    actually injecting examples of that class into the given TMR design
    (and, for the flip-flop row, flipping user state in simulation). *)

val table2 : Runs.design_run list -> string
(** Area (slices), DUT configuration bits by class, estimated
    performance. *)

val table3 : Runs.design_run list -> string
(** Fault-injection campaign results: injected faults, wrong answers. *)

val table4 : Runs.design_run list -> string
(** Classification of the effects of the upsets that caused a wrong
    answer. *)

val table_voters : unit -> string
(** The voter library's per-voted-bit cost model (vote/detect cells,
    combinational depth, post-map delay) with one row per
    {!Tmr_core.Voter.variant}. *)

val table_detection : Runs.design_run list -> string
(** Detection coverage across design x voter: wrong-answer, SDC
    (silent-wrong) and detected shares, one column triple per voter
    variant present in [runs] — the partition optimum re-read under each
    voter choice.  Runs without campaigns render as "-". *)

val table_forensics : Runs.design_run list -> string
(** Aggregate fault forensics per design: cross-domain fault share (the
    upsets no vote can fix, tracking each partitioning's inter-domain
    wiring), multi-partition faults, and the voter-masking rate among
    silent-but-internally-divergent faults.  Designs whose campaigns ran
    without forensics are omitted. *)

val tables_json : Context.t -> Runs.design_run list -> string
(** One-line JSON of the campaign results ([tmrtool tables --json]):
    per design, the [tmrtool inject --json] engine-summary object
    extended with slices, estimated MHz, DUT bits by class, the paper's
    Table 3 row and the injection-coverage record. *)

val paper_table2 : (string * (int * int * int * int * int)) list
(** The paper's Table 2 rows: design -> (slices, routing bits, LUT bits,
    FF bits, MHz). *)

val paper_table3 : (string * (int * int * float)) list
(** The paper's Table 3 rows: design -> (injected, wrong, percent). *)
