module Campaign = Tmr_inject.Campaign
module Stats = Tmr_obs.Stats
module Json = Tmr_obs.Json

type spool_ref = {
  sr_worker : int;
  sr_path : string;
  sr_events : int;  (* origin seqs observed: range [0, sr_events + sr_gaps) *)
  sr_gaps : int;
}

type manifest = {
  m_design : string;
  m_scale : string;
  m_seed : int;
  m_created : float;
  m_created_iso : string;
  m_tool_version : string;
  m_git_commit : string;
  m_events_path : string option;
  m_events_seq : int option;
  m_spools : spool_ref list;
  m_workers : int;
  m_cone_skip : bool;
  m_diff : bool;
  m_forensics : bool;
  m_stop : Stats.stop_rule option;
  m_exhaustive : bool;
  m_requested : int;
  m_injected : int;
  m_wrong : int;
  m_confidence : float;
  m_rate : float;
  m_ci_lo : float;
  m_ci_hi : float;
  m_faults_per_sec : float;
  m_wall_ns : int;
  m_utilization : float;
  m_voter : string;
  m_detection : detection option;
  m_coverage : Json.t;
  m_metrics_digest : string;
}

and detection = {
  md_silent_correct : int;
  md_detected_corrected : int;
  md_detected_wrong : int;
  md_silent_wrong : int;
}

let scale_name = function
  | Context.Paper -> "paper"
  | Context.Reduced -> "reduced"

let tool_version = "0.9.0"

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Best-effort: runs from a tarball or without git still get manifests *)
let git_commit =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let version_string () =
  Printf.sprintf "tmrtool %s (git %s)" tool_version (Lazy.force git_commit)

let of_run ?(confidence = 0.95) ?(cone_skip = true) ?(diff = true)
    ?(forensics = false) ?stop ?(exhaustive = false) ?events_path
    ?(spools = []) (ctx : Context.t) (run : Runs.design_run) =
  let c =
    match run.Runs.campaign with
    | Some c -> c
    | None -> invalid_arg "Store.of_run: design run has no campaign"
  in
  let ci = Campaign.ci ~confidence c in
  let coverage =
    match Runs.coverage_of run with
    | Some cov -> Tmr_inject.Coverage.to_json cov
    | None -> Json.Null
  in
  let digest =
    Digest.to_hex
      (Digest.string
         (Tmr_obs.Metrics.to_json_string (Tmr_obs.Metrics.snapshot ())))
  in
  let created = Unix.gettimeofday () in
  {
    m_design = c.Campaign.design;
    m_scale = scale_name ctx.Context.scale;
    m_seed = ctx.Context.seed;
    m_created = created;
    m_created_iso = iso8601 created;
    m_tool_version = tool_version;
    m_git_commit = Lazy.force git_commit;
    m_events_path = events_path;
    (* the stream keeps growing (manifest-written, teardown beats), but
       everything the dashboard showed for this run is <= this seq *)
    m_events_seq =
      (match events_path with
      | Some _ -> Some (Tmr_obs.Events.last_seq ())
      | None -> None);
    m_spools = spools;
    m_workers = c.Campaign.workers;
    m_cone_skip = cone_skip;
    m_diff = diff;
    m_forensics = forensics;
    m_stop = stop;
    m_exhaustive = exhaustive;
    m_requested = c.Campaign.requested;
    m_injected = c.Campaign.injected;
    m_wrong = c.Campaign.wrong;
    m_confidence = confidence;
    m_rate =
      (if c.Campaign.injected = 0 then 0.
       else float_of_int c.Campaign.wrong /. float_of_int c.Campaign.injected);
    m_ci_lo = ci.Stats.lo;
    m_ci_hi = ci.Stats.hi;
    m_faults_per_sec =
      (if c.Campaign.wall_ns <= 0 then 0.
       else
         float_of_int c.Campaign.injected
         /. (float_of_int c.Campaign.wall_ns /. 1e9));
    m_wall_ns = c.Campaign.wall_ns;
    m_utilization = Campaign.utilization c;
    m_voter = Tmr_core.Voter.name run.Runs.voter;
    m_detection =
      (if Tmr_core.Voter.has_detection run.Runs.voter then begin
         let d = Campaign.detection_counts c in
         Some
           {
             md_silent_correct = d.Campaign.dc_silent_correct;
             md_detected_corrected = d.Campaign.dc_detected_corrected;
             md_detected_wrong = d.Campaign.dc_detected_wrong;
             md_silent_wrong = d.Campaign.dc_silent_wrong;
           }
       end
       else None);
    m_coverage = coverage;
    m_metrics_digest = digest;
  }

(* ---- JSON round trip ------------------------------------------------ *)

let to_json m =
  let num f = Json.Num f in
  let int i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("design", Json.Str m.m_design);
      ("scale", Json.Str m.m_scale);
      ("seed", int m.m_seed);
      ("created", num m.m_created);
      ("created_iso", Json.Str m.m_created_iso);
      ("tool_version", Json.Str m.m_tool_version);
      ("git_commit", Json.Str m.m_git_commit);
      ( "events_path",
        match m.m_events_path with None -> Json.Null | Some p -> Json.Str p );
      ( "events_seq",
        match m.m_events_seq with None -> Json.Null | Some s -> int s );
      ( "spools",
        Json.Arr
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("worker", int s.sr_worker);
                   ("path", Json.Str s.sr_path);
                   ("events", int s.sr_events);
                   ("gaps", int s.sr_gaps);
                 ])
             m.m_spools) );
      ("workers", int m.m_workers);
      ("cone_skip", Json.Bool m.m_cone_skip);
      ("diff", Json.Bool m.m_diff);
      ("forensics", Json.Bool m.m_forensics);
      ( "stop",
        match m.m_stop with
        | None -> Json.Null
        | Some r ->
            Json.Obj
              [
                ("confidence", num r.Stats.sr_confidence);
                ("half_width", num r.Stats.sr_half_width);
                ("min_n", int r.Stats.sr_min_n);
              ] );
      ("exhaustive", Json.Bool m.m_exhaustive);
      ("requested", int m.m_requested);
      ("injected", int m.m_injected);
      ("wrong", int m.m_wrong);
      ("confidence", num m.m_confidence);
      ("rate", num m.m_rate);
      ("ci_lo", num m.m_ci_lo);
      ("ci_hi", num m.m_ci_hi);
      ("faults_per_sec", num m.m_faults_per_sec);
      ("wall_ns", int m.m_wall_ns);
      ("utilization", num m.m_utilization);
      ("voter", Json.Str m.m_voter);
      ( "detection",
        match m.m_detection with
        | None -> Json.Null
        | Some d ->
            Json.Obj
              [
                ("silent_correct", int d.md_silent_correct);
                ("detected_corrected", int d.md_detected_corrected);
                ("detected_wrong", int d.md_detected_wrong);
                ("silent_wrong", int d.md_silent_wrong);
              ] );
      ("coverage", m.m_coverage);
      ("metrics_digest", Json.Str m.m_metrics_digest);
    ]

let of_json j =
  let str key = Option.bind (Json.member key j) Json.str in
  let num key = Option.bind (Json.member key j) Json.num in
  let int key = Option.bind (Json.member key j) Json.int in
  let bool key = Option.bind (Json.member key j) Json.bool in
  let require name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "manifest: missing or ill-typed %S" name)
  in
  let ( let* ) = Result.bind in
  let* design = require "design" (str "design") in
  let* scale = require "scale" (str "scale") in
  let* seed = require "seed" (int "seed") in
  let* created = require "created" (num "created") in
  let* workers = require "workers" (int "workers") in
  let* cone_skip = require "cone_skip" (bool "cone_skip") in
  let* diff = require "diff" (bool "diff") in
  let* forensics = require "forensics" (bool "forensics") in
  let* requested = require "requested" (int "requested") in
  let* injected = require "injected" (int "injected") in
  let* wrong = require "wrong" (int "wrong") in
  let* confidence = require "confidence" (num "confidence") in
  let* rate = require "rate" (num "rate") in
  let* ci_lo = require "ci_lo" (num "ci_lo") in
  let* ci_hi = require "ci_hi" (num "ci_hi") in
  let* faults_per_sec = require "faults_per_sec" (num "faults_per_sec") in
  let* wall_ns = require "wall_ns" (int "wall_ns") in
  let* utilization = require "utilization" (num "utilization") in
  let* digest = require "metrics_digest" (str "metrics_digest") in
  let stop =
    match Json.member "stop" j with
    | Some (Json.Obj _ as s) -> (
        match
          ( Option.bind (Json.member "confidence" s) Json.num,
            Option.bind (Json.member "half_width" s) Json.num,
            Option.bind (Json.member "min_n" s) Json.int )
        with
        | Some c, Some hw, Some mn ->
            Some
              { Stats.sr_confidence = c; sr_half_width = hw; sr_min_n = mn }
        | _ -> None)
    | _ -> None
  in
  Ok
    {
      m_design = design;
      m_scale = scale;
      m_seed = seed;
      m_created = created;
      (* absent in manifests written by older tool versions *)
      m_created_iso =
        Option.value ~default:(iso8601 created) (str "created_iso");
      m_tool_version = Option.value ~default:"pre-0.7" (str "tool_version");
      m_git_commit = Option.value ~default:"unknown" (str "git_commit");
      m_events_path = str "events_path";
      m_events_seq = int "events_seq";
      (* absent in manifests written by older tool versions *)
      m_spools =
        (match Json.member "spools" j with
        | Some (Json.Arr l) ->
            List.filter_map
              (fun s ->
                match
                  ( Option.bind (Json.member "worker" s) Json.int,
                    Option.bind (Json.member "path" s) Json.str,
                    Option.bind (Json.member "events" s) Json.int,
                    Option.bind (Json.member "gaps" s) Json.int )
                with
                | Some w, Some p, Some e, Some g ->
                    Some
                      { sr_worker = w; sr_path = p; sr_events = e; sr_gaps = g }
                | _ -> None)
              l
        | _ -> []);
      m_workers = workers;
      m_cone_skip = cone_skip;
      m_diff = diff;
      m_forensics = forensics;
      m_stop = stop;
      (* absent in manifests written by older tool versions *)
      m_exhaustive = Option.value ~default:false (bool "exhaustive");
      m_requested = requested;
      m_injected = injected;
      m_wrong = wrong;
      m_confidence = confidence;
      m_rate = rate;
      m_ci_lo = ci_lo;
      m_ci_hi = ci_hi;
      m_faults_per_sec = faults_per_sec;
      m_wall_ns = wall_ns;
      m_utilization = utilization;
      (* absent in manifests written by older tool versions: every
         pre-0.9 campaign ran the plain majority voter *)
      m_voter = Option.value ~default:"majority" (str "voter");
      m_detection =
        (match Json.member "detection" j with
        | Some (Json.Obj _ as d) -> (
            match
              ( Option.bind (Json.member "silent_correct" d) Json.int,
                Option.bind (Json.member "detected_corrected" d) Json.int,
                Option.bind (Json.member "detected_wrong" d) Json.int,
                Option.bind (Json.member "silent_wrong" d) Json.int )
            with
            | Some sc, Some dc, Some dw, Some sw ->
                Some
                  {
                    md_silent_correct = sc;
                    md_detected_corrected = dc;
                    md_detected_wrong = dw;
                    md_silent_wrong = sw;
                  }
            | _ -> None)
        | _ -> None);
      m_coverage = Option.value ~default:Json.Null (Json.member "coverage" j);
      m_metrics_digest = digest;
    }

(* ---- directory persistence ------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir m =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "%s-seed%d-%.0f.json" m.m_design m.m_seed
         (m.m_created *. 1000.))
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json m));
      output_char oc '\n');
  Tmr_obs.Events.publish
    (Tmr_obs.Events.Manifest_written { design = m.m_design; path });
  path

let default_warn msg = Printf.eprintf "store: %s\n%!" msg

let load_dir ?(warn = default_warn) ~dir () =
  if not (Sys.file_exists dir) then []
  else begin
    let files = Array.to_list (Sys.readdir dir) in
    (* One bad file must not cost the rest of the history: a campaign
       killed mid-save (or a disk hiccup) leaves a truncated manifest,
       and crash-resume depends on the surviving ones still loading. *)
    let manifests =
      List.filter_map
        (fun file ->
          if not (Filename.check_suffix file ".json") then None
          else begin
            let path = Filename.concat dir file in
            match
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with
            | exception Sys_error e ->
                warn (Printf.sprintf "skipping unreadable %s (%s)" path e);
                None
            | exception End_of_file ->
                warn (Printf.sprintf "skipping truncated %s" path);
                None
            | contents -> (
                match Result.bind (Json.parse contents) of_json with
                | Ok m -> Some m
                | Error e ->
                    warn (Printf.sprintf "skipping corrupt %s (%s)" path e);
                    None)
          end)
        files
    in
    List.sort (fun a b -> compare a.m_created b.m_created) manifests
  end

let baseline_for ~history m =
  List.fold_left
    (fun acc h ->
      if h.m_design = m.m_design && h.m_scale = m.m_scale && h.m_voter = m.m_voter
      then Some h
      else acc)
    None history

(* ---- markdown report ------------------------------------------------ *)

let pct x = 100. *. x

let coverage_cell j =
  match j with
  | Json.Null -> "-"
  | j ->
      let i key parent =
        match Option.bind (Json.member key parent) Json.int with
        | Some v -> v
        | None -> 0
      in
      let essential = i "essential" j in
      (* the top-level coverage object carries [injected_distinct]; the
         per-class records are already deduplicated and say [injected] *)
      let distinct =
        match Option.bind (Json.member "injected_distinct" j) Json.int with
        | Some v -> v
        | None -> i "injected" j
      in
      if essential = 0 then "-"
      else
        Printf.sprintf "%d/%d (%.1f%%)" distinct essential
          (pct (float_of_int distinct /. float_of_int essential))

let report_markdown ?(confidence = 0.95) ?(throughput_drop = 0.30) ~history
    currents =
  let b = Buffer.create 4096 in
  Buffer.add_string b "# Campaign report\n\n";
  (match currents with
  | m :: _ ->
      Buffer.add_string b
        (Printf.sprintf "Scale `%s`, seed %d, %d %s; confidence %.0f%%.\n\n"
           m.m_scale m.m_seed
           (List.length currents)
           (if List.length currents = 1 then "design" else "designs")
           (pct confidence));
      Buffer.add_string b
        (Printf.sprintf "Run at %s — tool %s, commit `%s`.\n\n" m.m_created_iso
           m.m_tool_version m.m_git_commit)
  | [] -> Buffer.add_string b "No campaigns.\n\n");
  Buffer.add_string b
    "| design | n | wrong | rate | CI | baseline | z | verdict | faults/s |\n";
  Buffer.add_string b "|---|---|---|---|---|---|---|---|---|\n";
  let notes = ref [] in
  List.iter
    (fun m ->
      let ci_str =
        (* an exhaustive run covered every essential bit: the rate is
           exact, a sampling interval would be noise *)
        if m.m_exhaustive then "exact"
        else Printf.sprintf "[%.2f%%, %.2f%%]" (pct m.m_ci_lo) (pct m.m_ci_hi)
      in
      let baseline = baseline_for ~history m in
      let base_str, z_str, verdict, tput =
        match baseline with
        | None -> ("-", "-", "new", Printf.sprintf "%.1f" m.m_faults_per_sec)
        | Some base ->
            let z =
              Stats.two_proportion_z ~n1:m.m_injected ~k1:m.m_wrong
                ~n2:base.m_injected ~k2:base.m_wrong
            in
            let ok =
              Stats.compatible ~confidence ~n1:m.m_injected ~k1:m.m_wrong
                ~n2:base.m_injected ~k2:base.m_wrong ()
            in
            let verdict =
              if ok then "compatible"
              else if m.m_rate > base.m_rate then "**regression**"
              else "improvement"
            in
            if not ok then
              notes :=
                Printf.sprintf
                  "`%s`: rate %.2f%% vs baseline %.2f%% (z = %.2f, p = %.4f) \
                   — %s"
                  m.m_design (pct m.m_rate) (pct base.m_rate) z (Stats.p_value z)
                  (if m.m_rate > base.m_rate then "regression" else
                     "improvement")
                :: !notes;
            let tput =
              if
                base.m_faults_per_sec > 0.
                && m.m_faults_per_sec
                   < (1. -. throughput_drop) *. base.m_faults_per_sec
              then begin
                notes :=
                  Printf.sprintf
                    "`%s`: throughput regression — %.1f faults/s vs baseline \
                     %.1f (-%.0f%%)"
                    m.m_design m.m_faults_per_sec base.m_faults_per_sec
                    (pct
                       (1. -. (m.m_faults_per_sec /. base.m_faults_per_sec)))
                  :: !notes;
                Printf.sprintf "%.1f (was %.1f) ⚠" m.m_faults_per_sec
                  base.m_faults_per_sec
              end
              else
                Printf.sprintf "%.1f (was %.1f)" m.m_faults_per_sec
                  base.m_faults_per_sec
            in
            ( Printf.sprintf "%.2f%% [%.2f%%, %.2f%%] @%s" (pct base.m_rate)
                (pct base.m_ci_lo) (pct base.m_ci_hi)
                (String.sub base.m_created_iso 0
                   (min 10 (String.length base.m_created_iso))),
              Printf.sprintf "%.2f" z,
              verdict,
              tput )
      in
      let n_str =
        if m.m_injected < m.m_requested then
          Printf.sprintf "%d (of %d, CI stop)" m.m_injected m.m_requested
        else string_of_int m.m_injected
      in
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %d | %.2f%% | %s | %s | %s | %s | %s |\n"
           m.m_design n_str m.m_wrong (pct m.m_rate) ci_str base_str z_str
           verdict tput))
    currents;
  Buffer.add_char b '\n';
  List.iter
    (fun note -> Buffer.add_string b (Printf.sprintf "- %s\n" note))
    (List.rev !notes);
  if !notes <> [] then Buffer.add_char b '\n';
  (* in-circuit detection: the four-way verdict split of campaigns run
     with a detecting voter, the SDC (silent-wrong) rate compared
     against the stored baseline by the same two-proportion test the
     wrong-answer rate uses *)
  if List.exists (fun m -> m.m_detection <> None) currents then begin
    Buffer.add_string b "## In-circuit detection\n\n";
    Buffer.add_string b
      "| design | voter | corrected | detected-wrong | SDC | SDC rate | \
       baseline SDC | verdict |\n";
    Buffer.add_string b "|---|---|---|---|---|---|---|---|\n";
    List.iter
      (fun m ->
        match m.m_detection with
        | None -> ()
        | Some d ->
            let sdc_rate =
              if m.m_injected = 0 then 0.
              else float_of_int d.md_silent_wrong /. float_of_int m.m_injected
            in
            let base_str, verdict =
              match
                Option.bind (baseline_for ~history m) (fun h ->
                    Option.map (fun hd -> (h, hd)) h.m_detection)
              with
              | None -> ("-", "new")
              | Some (h, hd) ->
                  let base_rate =
                    if h.m_injected = 0 then 0.
                    else
                      float_of_int hd.md_silent_wrong
                      /. float_of_int h.m_injected
                  in
                  let ok =
                    Stats.compatible ~confidence ~n1:m.m_injected
                      ~k1:d.md_silent_wrong ~n2:h.m_injected
                      ~k2:hd.md_silent_wrong ()
                  in
                  ( Printf.sprintf "%.2f%%" (pct base_rate),
                    if ok then "compatible"
                    else if sdc_rate > base_rate then "**regression**"
                    else "improvement" )
            in
            Buffer.add_string b
              (Printf.sprintf "| %s | %s | %d | %d | %d | %.2f%% | %s | %s |\n"
                 m.m_design m.m_voter d.md_detected_corrected d.md_detected_wrong
                 d.md_silent_wrong (pct sdc_rate) base_str verdict))
      currents;
    Buffer.add_char b '\n'
  end;
  (* coverage: distinct injected bits vs. the essential-bit population *)
  if List.exists (fun m -> m.m_coverage <> Json.Null) currents then begin
    Buffer.add_string b "## Injection coverage\n\n";
    Buffer.add_string b
      "| design | essential bits covered | routing | LUT | custom | ff |\n";
    Buffer.add_string b "|---|---|---|---|---|---|\n";
    List.iter
      (fun m ->
        let class_cells =
          let classes =
            match Option.map Json.arr (Json.member "classes" m.m_coverage) with
            | Some l -> l
            | None -> []
          in
          List.map
            (fun name ->
              match
                List.find_opt
                  (fun c ->
                    Option.bind (Json.member "class" c) Json.str = Some name)
                  classes
              with
              | None -> "-"
              | Some c -> coverage_cell c)
            [ "routing"; "LUT"; "customization"; "flip-flop" ]
        in
        Buffer.add_string b
          (Printf.sprintf "| %s | %s | %s |\n" m.m_design
             (coverage_cell m.m_coverage)
             (String.concat " | " class_cells)))
      currents;
    Buffer.add_char b '\n'
  end;
  Buffer.contents b
