module Logic = Tmr_logic.Logic
module Texttab = Tmr_logic.Texttab
module Netlist = Tmr_netlist.Netlist
module Netsim = Tmr_netlist.Netsim
module Bitdb = Tmr_arch.Bitdb
module Partition = Tmr_core.Partition
module Impl = Tmr_pnr.Impl
module Campaign = Tmr_inject.Campaign
module Classify = Tmr_inject.Classify

let paper_table2 =
  [
    ("standard", (150, 42_953, 9_600, 722, 154));
    ("tmr_p1", (560, 138_453, 35_840, 3_498, 123));
    ("tmr_p2", (504, 161_568, 32_256, 3_492, 137));
    ("tmr_p3", (498, 151_994, 31_872, 3_447, 153));
    ("tmr_p3_nv", (476, 150_521, 30_464, 2_141, 154));
  ]

let paper_table3 =
  [
    ("standard", (5_100, 4_952, 97.10));
    ("tmr_p1", (17_515, 706, 4.03));
    ("tmr_p2", (19_401, 190, 0.98));
    ("tmr_p3", (18_501, 289, 1.56));
    ("tmr_p3_nv", (18_000, 2_268, 12.60));
  ]

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let count_wrong results =
  Array.fold_left
    (fun acc r ->
      if r.Campaign.outcome = Campaign.Wrong_answer then acc + 1 else acc)
    0 results

(* Inject up to [n] faults of one bit class into the TMR design and report
   how many defeated it. *)
let probe_class (ctx : Context.t) (run : Runs.design_run) cls n =
  let bits =
    Array.of_list
      (List.filter
         (fun b -> Bitdb.class_of_bit ctx.Context.db b = cls)
         (Array.to_list run.Runs.faultlist.Tmr_inject.Faultlist.bits))
  in
  let rng = Tmr_logic.Srand.create (ctx.Context.seed + 77) in
  let chosen = Tmr_logic.Srand.sample rng n (Array.length bits) in
  let faults = Array.map (fun i -> bits.(i)) chosen in
  if Array.length faults = 0 then (0, 0)
  else begin
    let c =
      Campaign.run
        ~name:(Partition.name run.Runs.strategy)
        ~impl:run.Runs.impl ~golden:ctx.Context.golden_nl
        ~stimulus:ctx.Context.stimulus ~faults ()
    in
    (c.Campaign.injected, c.Campaign.wrong)
  end

(* Flip every flip-flop of redundancy domain 0 once, mid-run, in netlist
   simulation of the TMR design; count output errors (there should be
   none: this is the paper's "corrected by design" row). *)
let probe_ff_state (ctx : Context.t) (run : Runs.design_run) =
  let nl = run.Runs.nl in
  let stim = ctx.Context.stimulus in
  let golden = Campaign.golden_outputs ctx.Context.golden_nl stim in
  let ffs = ref [] in
  Netlist.iter_cells nl (fun c ->
      match Netlist.kind nl c with
      | Netlist.Ff _ when Netlist.domain nl c = 0 -> ffs := c :: !ffs
      | _ -> ());
  let errors = ref 0 in
  let injected = ref 0 in
  List.iter
    (fun ff ->
      incr injected;
      let sim = Netsim.create nl in
      Netsim.reset sim;
      let ok = ref true in
      for cycle = 0 to stim.Campaign.cycles - 1 do
        List.iter
          (fun (port, samples) ->
            List.iter
              (fun d ->
                let name = Tmr_core.Tmr.redundant_port port d in
                Netsim.set_input sim name samples.(cycle))
              [ 0; 1; 2 ])
          stim.Campaign.inputs;
        if cycle = 8 then begin
          (* the SEU: invert the stored bit *)
          let v = Netsim.value sim ff in
          Netsim.set_ff sim ff (Logic.logic_not v)
        end;
        Netsim.eval sim;
        List.iter
          (fun (port, matrix) ->
            let bits = Netsim.output_bits sim port in
            Array.iteri
              (fun i expected ->
                if not (Logic.equal bits.(i) expected) then ok := false)
              matrix.(cycle))
          golden;
        Netsim.clock sim
      done;
      if not !ok then incr errors)
    !ffs;
  (!injected, !errors)

let table1 ctx run =
  let t =
    Texttab.create
      ~title:
        (Printf.sprintf
           "Table 1: upset analysis in the TMR approach (measured on %s)"
           (Partition.name run.Runs.strategy))
      ~header:
        [ "Upset location"; "Upset effect"; "Injected"; "TMR output errors";
          "Correction" ]
      [ Texttab.Left; Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Left ]
  in
  let probe = probe_class ctx run in
  let lut_inj, lut_err = probe Bitdb.Class_lut 40 in
  Texttab.add_row t
    [ "LUT"; "combinational logic change"; string_of_int lut_inj;
      string_of_int lut_err; "by scrubbing" ];
  let rt_inj, rt_err = probe Bitdb.Class_routing 40 in
  Texttab.add_row t
    [ "Routing"; "connection / disconnection"; string_of_int rt_inj;
      string_of_int rt_err; "by scrubbing" ];
  let cu_inj, cu_err = probe Bitdb.Class_custom 40 in
  Texttab.add_row t
    [ "Customization"; "CLB mux / pad change"; string_of_int cu_inj;
      string_of_int cu_err; "by scrubbing" ];
  let ff_inj, ff_err = probe_ff_state ctx run in
  Texttab.add_row t
    [ "Flip-flops"; "sequential state flip (SEU)"; string_of_int ff_inj;
      string_of_int ff_err; "by design (voters)" ];
  Texttab.render t

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let table2 runs =
  let t =
    Texttab.create
      ~title:"Table 2: comparison between TMR partitioned designs"
      ~header:
        [ "Filter design"; "slices"; "#routing bits"; "#LUTs bits";
          "#CLB ffps bits"; "est. MHz"; "paper slices"; "paper MHz" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right;
        Texttab.Right; Texttab.Right; Texttab.Right; Texttab.Right ]
  in
  List.iter
    (fun (run : Runs.design_run) ->
      let name = Partition.name run.Runs.strategy in
      let by_class = run.Runs.faultlist.Tmr_inject.Faultlist.by_class in
      let get cls = try List.assoc cls by_class with Not_found -> 0 in
      let paper_slices, paper_mhz =
        match List.assoc_opt name paper_table2 with
        | Some (s, _, _, _, m) -> (string_of_int s, string_of_int m)
        | None -> ("-", "-")
      in
      Texttab.add_row t
        [
          Partition.paper_name run.Runs.strategy;
          string_of_int (Impl.used_slices run.Runs.impl);
          string_of_int (get Bitdb.Class_routing);
          string_of_int (get Bitdb.Class_lut);
          string_of_int (get Bitdb.Class_ff);
          Printf.sprintf "%.0f" run.Runs.impl.Impl.timing.Tmr_pnr.Timing.mhz;
          paper_slices;
          paper_mhz;
        ])
    runs;
  Texttab.render t

(* ------------------------------------------------------------------ *)
(* Table 3 *)

let table3 runs =
  let t =
    Texttab.create ~title:"Table 3: fault injection campaign results"
      ~header:
        [ "Design"; "Injected"; "Wrong answers"; "[%]"; "paper [%]" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right;
        Texttab.Right ]
  in
  List.iter
    (fun (run : Runs.design_run) ->
      match run.Runs.campaign with
      | None -> ()
      | Some c ->
          let name = Partition.name run.Runs.strategy in
          let paper =
            match List.assoc_opt name paper_table3 with
            | Some (_, _, pct) -> Printf.sprintf "%.2f" pct
            | None -> "-"
          in
          Texttab.add_row t
            [
              Partition.paper_name run.Runs.strategy;
              string_of_int c.Campaign.injected;
              string_of_int c.Campaign.wrong;
              Printf.sprintf "%.2f" (Campaign.wrong_percent c);
              paper;
            ])
    runs;
  Texttab.render t

(* ------------------------------------------------------------------ *)
(* Table 4 *)

let table4 runs =
  let with_campaigns =
    List.filter_map
      (fun (run : Runs.design_run) ->
        Option.map (fun c -> (run, c)) run.Runs.campaign)
      runs
  in
  let header =
    "Effect"
    :: List.concat_map
         (fun ((run : Runs.design_run), _) ->
           let n = Partition.paper_name run.Runs.strategy in
           [ n ^ " [#]"; "[%]" ])
         with_campaigns
  in
  let aligns =
    Texttab.Left :: List.concat_map (fun _ -> [ Texttab.Right; Texttab.Right ]) with_campaigns
  in
  let t =
    Texttab.create
      ~title:
        "Table 4: effects induced by the upsets that caused a wrong answer"
      ~header aligns
  in
  let count_effect results eff =
    Array.fold_left
      (fun acc r ->
        if r.Campaign.outcome = Campaign.Wrong_answer && r.Campaign.effect = eff
        then acc + 1
        else acc)
      0 results
  in
  List.iter
    (fun eff ->
      let row =
        Classify.name eff
        :: List.concat_map
             (fun (_, c) ->
               let n = count_effect c.Campaign.results eff in
               let total = max 1 (count_wrong c.Campaign.results) in
               [
                 string_of_int n;
                 Printf.sprintf "%.0f" (100.0 *. float_of_int n /. float_of_int total);
               ])
             with_campaigns
      in
      Texttab.add_row t row)
    Classify.all;
  Texttab.add_separator t;
  let totals =
    "Total"
    :: List.concat_map
         (fun (_, c) ->
           [ string_of_int (count_wrong c.Campaign.results); "" ])
         with_campaigns
  in
  Texttab.add_row t totals;
  Texttab.render t

(* ------------------------------------------------------------------ *)
(* Voter library: cost model and detection coverage.  Not in the paper —
   the voter microarchitecture is this repo's extra design axis — but
   rendered in the same style so the partition optimum can be re-read
   under each voter choice. *)

module Voter = Tmr_core.Voter

let table_voters () =
  let t =
    Texttab.create
      ~title:"Voter library: per-voted-bit cost model (post-map LUT delays)"
      ~header:
        [ "Voter"; "Vote cells"; "Detect cells"; "Levels"; "Delay [ns]";
          "Description" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right;
        Texttab.Right; Texttab.Left ]
  in
  List.iter
    (fun v ->
      let c = Voter.cost v in
      Texttab.add_row t
        [
          Voter.name v;
          string_of_int c.Voter.vote_cells;
          string_of_int c.Voter.detect_cells;
          string_of_int c.Voter.levels;
          Printf.sprintf "%.2f" c.Voter.delay_ns;
          Voter.description v;
        ])
    Voter.all;
  Texttab.render t

(* Group the runs by voter variant, preserving first-seen order in both
   axes.  Majority/improved designs have no detection logic, so their
   SDC share just restates the wrong-answer rate — printing it anyway
   makes the detecting column's SDC reduction directly comparable. *)
let table_detection runs =
  let voters = ref [] in
  List.iter
    (fun (run : Runs.design_run) ->
      if not (List.mem_assoc run.Runs.voter !voters) then
        voters := !voters @ [ (run.Runs.voter, ()) ])
    runs;
  let voters = List.map fst !voters in
  let designs = ref [] in
  List.iter
    (fun (run : Runs.design_run) ->
      if not (List.exists (fun s -> s = run.Runs.strategy) !designs) then
        designs := !designs @ [ run.Runs.strategy ])
    runs;
  let header =
    "Design"
    :: List.concat_map
         (fun v -> [ Voter.name v ^ " wrong%"; "SDC%"; "detected%" ])
         voters
  in
  let aligns =
    Texttab.Left
    :: List.concat_map
         (fun _ -> [ Texttab.Right; Texttab.Right; Texttab.Right ])
         voters
  in
  let t =
    Texttab.create
      ~title:
        "Detection coverage: wrong-answer, silent-data-corruption and \
         detected shares per design x voter"
      ~header aligns
  in
  List.iter
    (fun strategy ->
      let row =
        Partition.paper_name strategy
        :: List.concat_map
             (fun v ->
               match
                 List.find_opt
                   (fun (run : Runs.design_run) ->
                     run.Runs.strategy = strategy && run.Runs.voter = v
                     && run.Runs.campaign <> None)
                   runs
               with
               | None -> [ "-"; "-"; "-" ]
               | Some run ->
                   let c = Option.get run.Runs.campaign in
                   [
                     Printf.sprintf "%.2f" (Campaign.wrong_percent c);
                     Printf.sprintf "%.2f" (Campaign.sdc_percent c);
                     Printf.sprintf "%.2f" (Campaign.detected_percent c);
                   ])
             voters
      in
      Texttab.add_row t row)
    !designs;
  Texttab.render t

(* ------------------------------------------------------------------ *)
(* Machine-readable emission (tmrtool tables --json): per design, the
   same engine-summary object as [tmrtool inject --json], extended with
   the implementation numbers the text tables show and the paper's own
   row for direct comparison. *)

module Json = Tmr_obs.Json

let json_of_run (run : Runs.design_run) =
  Option.map
    (fun c ->
      let base =
        match Json.parse (Campaign.summary_json c) with
        | Ok (Json.Obj fields) -> fields
        | _ -> []
      in
      let name = Partition.name run.Runs.strategy in
      let by_class = run.Runs.faultlist.Tmr_inject.Faultlist.by_class in
      let int i = Json.Num (float_of_int i) in
      let extra =
        [
          ("paper_name", Json.Str (Partition.paper_name run.Runs.strategy));
          ("voter", Json.Str (Voter.name run.Runs.voter));
          ("slices", int (Impl.used_slices run.Runs.impl));
          ( "mhz",
            Json.Num run.Runs.impl.Impl.timing.Tmr_pnr.Timing.mhz );
          ( "dut_bits_by_class",
            Json.Obj
              (List.map
                 (fun (cls, n) -> (Bitdb.class_name cls, int n))
                 by_class) );
          ( "paper",
            match List.assoc_opt name paper_table3 with
            | Some (injected, wrong, pct) ->
                Json.Obj
                  [
                    ("injected", int injected);
                    ("wrong", int wrong);
                    ("wrong_percent", Json.Num pct);
                  ]
            | None -> Json.Null );
          ( "coverage",
            match Runs.coverage_of run with
            | Some cov -> Tmr_inject.Coverage.to_json cov
            | None -> Json.Null );
        ]
      in
      (* duplicate keys shadow left-to-right in consumers; there are none
         between the engine summary and the extensions *)
      Json.Obj (base @ extra))
    run.Runs.campaign

let tables_json (ctx : Context.t) runs =
  let scale =
    match ctx.Context.scale with
    | Context.Paper -> "paper"
    | Context.Reduced -> "reduced"
  in
  Json.to_string
    (Json.Obj
       [
         ("scale", Json.Str scale);
         ("seed", Json.Num (float_of_int ctx.Context.seed));
         ( "faults_per_design",
           Json.Num (float_of_int ctx.Context.faults_per_design) );
         ("designs", Json.Arr (List.filter_map json_of_run runs));
       ])

(* ------------------------------------------------------------------ *)
(* Forensics: why the campaigns rank the way they do.  Cross-domain
   faults (a footprint bridging two redundancy domains) are the upsets a
   vote cannot fix, and their share tracks the inter-domain wiring each
   partitioning adds; the voter-masking rate shows how often the vote —
   rather than plain logic masking — absorbed a real internal upset. *)

let pct num den =
  if den <= 0 then "-"
  else Printf.sprintf "%.2f" (100.0 *. float_of_int num /. float_of_int den)

let table_forensics runs =
  let t =
    Texttab.create
      ~title:
        "Forensics: cross-domain faults and voter masking (explains Table \
         3's ordering)"
      ~header:
        [ "Design"; "Injected"; "Cross-domain"; "[%]"; "Cross of wrong [%]";
          "Multi-partition"; "Silent+diverged"; "Voter-masked"; "[%]" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right;
        Texttab.Right; Texttab.Right; Texttab.Right; Texttab.Right;
        Texttab.Right ]
  in
  List.iter
    (fun (run : Runs.design_run) ->
      match run.Runs.campaign with
      | None -> ()
      | Some c -> (
          match Campaign.forensic_summary c with
          | None -> ()
          | Some s ->
              let wrong = c.Campaign.wrong in
              Texttab.add_row t
                [
                  Partition.paper_name run.Runs.strategy;
                  string_of_int c.Campaign.injected;
                  string_of_int s.Campaign.fs_cross;
                  pct s.Campaign.fs_cross s.Campaign.fs_faults;
                  pct s.Campaign.fs_cross_wrong wrong;
                  string_of_int s.Campaign.fs_multi_part;
                  string_of_int s.Campaign.fs_silent_diverged;
                  string_of_int s.Campaign.fs_voter_masked;
                  pct s.Campaign.fs_voter_masked s.Campaign.fs_silent_diverged;
                ]))
    runs;
  Texttab.render t
