module Partition = Tmr_core.Partition
module Impl = Tmr_pnr.Impl
module Faultlist = Tmr_inject.Faultlist
module Campaign = Tmr_inject.Campaign

type design_run = {
  strategy : Partition.strategy;
  voter : Tmr_core.Voter.variant;
  nl : Tmr_netlist.Netlist.t;
  impl : Impl.t;
  faultlist : Faultlist.t;
  campaign : Campaign.t option;
}

let implement_design ?(voter = Tmr_core.Voter.Majority) (ctx : Context.t)
    strategy =
  let nl =
    Tmr_filter.Designs.build ~params:ctx.Context.params ~voter strategy
  in
  let impl =
    Impl.implement_exn ~seed:ctx.Context.seed
      ?moves_per_site:ctx.Context.place_moves ctx.Context.dev ctx.Context.db nl
  in
  {
    strategy;
    voter;
    nl;
    impl;
    faultlist = Faultlist.of_impl impl;
    campaign = None;
  }

let campaign_design ?progress ?workers ?cone_skip ?diff ?forensics ?stop_at_ci
    ?batch_width (ctx : Context.t) run =
  let name = Partition.name run.strategy in
  let faults =
    Faultlist.sample run.faultlist ~seed:ctx.Context.seed
      ~count:ctx.Context.faults_per_design
  in
  let progress_cb = Option.map (fun f p -> f name p) progress in
  let campaign =
    Campaign.run ?progress:progress_cb ?workers ?cone_skip ?diff ?forensics
      ?stop_at_ci ?batch_width ~name ~impl:run.impl
      ~golden:ctx.Context.golden_nl ~stimulus:ctx.Context.stimulus ~faults ()
  in
  { run with campaign = Some campaign }

let run_all ?progress ?workers ?forensics ?stop_at_ci ?batch_width ?voter ctx =
  List.map
    (fun strategy ->
      campaign_design ?progress ?workers ?forensics ?stop_at_ci ?batch_width
        ctx
        (implement_design ?voter ctx strategy))
    Partition.all_paper_designs

let coverage_of run =
  match run.campaign with
  | None -> None
  | Some c ->
      let faults = Array.map (fun r -> r.Campaign.bit) c.Campaign.results in
      Some
        (Tmr_inject.Coverage.of_faults ~db:run.impl.Impl.db
           ~faultlist:run.faultlist ~faults)
