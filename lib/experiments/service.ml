module Campaign = Tmr_inject.Campaign
module Shard = Tmr_inject.Shard
module Workqueue = Tmr_inject.Workqueue
module Faultlist = Tmr_inject.Faultlist
module Partition = Tmr_core.Partition
module Json = Tmr_obs.Json
module Events = Tmr_obs.Events
module Clock = Tmr_obs.Clock
module Metrics = Tmr_obs.Metrics
module Trace = Tmr_obs.Trace
module Expose = Tmr_obs.Expose

(* Fleet/service instruments, exposed by /metrics alongside the
   campaign's own. *)
let m_queue_depth = Metrics.gauge "service.queue_depth"
let m_shards_done = Metrics.gauge "service.shards_done"
let m_orphan_reclaims = Metrics.counter "service.orphan_reclaims"
let m_claim_ns = Metrics.histogram "service.claim_ns"
let m_jobs_active = Metrics.gauge "service.jobs_active"
let m_jobs_completed = Metrics.counter "service.jobs_completed"
let m_clients = Metrics.gauge "service.clients"

type job = {
  j_design : Partition.strategy;
  j_scale : Context.scale;
  j_seed : int;
  j_faults : int;
  j_exhaustive : bool;
  j_shards : int;
  j_workers : int;
  j_diff : bool;
  j_batch_width : int;
  j_voter : Tmr_core.Voter.variant;
}

let job ?(scale = Context.Paper) ?(seed = 1) ?(faults = 1500)
    ?(exhaustive = false) ?(shards = 16) ?(workers = 1) ?(diff = true)
    ?(batch_width = 64) ?(voter = Tmr_core.Voter.Majority) design =
  {
    j_design = design;
    j_scale = scale;
    j_seed = seed;
    j_faults = faults;
    j_exhaustive = exhaustive;
    j_shards = shards;
    j_workers = workers;
    j_diff = diff;
    j_batch_width = batch_width;
    j_voter = voter;
  }

let scale_name = function
  | Context.Paper -> "paper"
  | Context.Reduced -> "reduced"

let job_name j =
  Printf.sprintf "%s-%s-seed%d-%s%s"
    (Partition.name j.j_design)
    (scale_name j.j_scale) j.j_seed
    (if j.j_exhaustive then "exhaustive" else string_of_int j.j_faults)
    (* majority stays unsuffixed so existing queue directories resume *)
    (match j.j_voter with
    | Tmr_core.Voter.Majority -> ""
    | v -> "-" ^ Tmr_core.Voter.name v)

let job_to_json j =
  let int n = Json.Num (float_of_int n) in
  Json.Obj
    [
      ("design", Json.Str (Partition.name j.j_design));
      ("scale", Json.Str (scale_name j.j_scale));
      ("seed", int j.j_seed);
      ("faults", int j.j_faults);
      ("exhaustive", Json.Bool j.j_exhaustive);
      ("shards", int j.j_shards);
      ("workers", int j.j_workers);
      ("diff", Json.Bool j.j_diff);
      ("batch_width", int j.j_batch_width);
      ("voter", Json.Str (Tmr_core.Voter.name j.j_voter));
    ]

let job_of_json json =
  let ( let* ) = Result.bind in
  let req name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "job: missing or ill-typed field %S" name)
  in
  let opt name conv default =
    match Json.member name json with
    | None -> Ok default
    | Some v -> (
        match conv v with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "job: ill-typed field %S" name))
  in
  let* design_s = req "design" Json.str in
  let* j_design =
    match
      List.find_opt
        (fun d -> Partition.name d = design_s)
        Partition.all_paper_designs
    with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "job: unknown design %S" design_s)
  in
  let* scale_s = opt "scale" Json.str "paper" in
  let* j_scale =
    match scale_s with
    | "paper" -> Ok Context.Paper
    | "reduced" -> Ok Context.Reduced
    | s -> Error (Printf.sprintf "job: unknown scale %S" s)
  in
  let* j_seed = opt "seed" Json.int 1 in
  let* j_faults = opt "faults" Json.int 1500 in
  let* j_exhaustive = opt "exhaustive" Json.bool false in
  let* j_shards = opt "shards" Json.int 16 in
  let* j_workers = opt "workers" Json.int 1 in
  let* j_diff = opt "diff" Json.bool true in
  let* j_batch_width = opt "batch_width" Json.int 64 in
  let* voter_s = opt "voter" Json.str "majority" in
  let* j_voter =
    match Tmr_core.Voter.of_name voter_s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "job: unknown voter %S" voter_s)
  in
  if j_shards <= 0 then Error "job: shards must be positive"
  else if j_batch_width <> 0 && j_batch_width <> 32 && j_batch_width <> 64 then
    Error "job: batch_width must be 0, 32 or 64"
  else
    Ok
      {
        j_design;
        j_scale;
        j_seed;
        j_faults;
        j_exhaustive;
        j_shards;
        j_workers;
        j_diff;
        j_batch_width;
        j_voter;
      }

let faults_of _ctx (run : Runs.design_run) j =
  if j.j_exhaustive then Array.copy run.Runs.faultlist.Faultlist.bits
  else Faultlist.sample run.Runs.faultlist ~seed:j.j_seed ~count:j.j_faults

let fingerprint j faults =
  let b = Buffer.create (16 + (Array.length faults * 7)) in
  Buffer.add_string b (Json.to_string (job_to_json j));
  Array.iter
    (fun f ->
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int f))
    faults;
  Digest.to_hex (Digest.string (Buffer.contents b))

type spool_info = {
  sp_worker : int;
  sp_path : string;
  sp_events : int;  (* worker-local events relayed onto the bus *)
  sp_gaps : int;  (* worker-local sequence numbers never seen *)
}

type outcome = {
  o_campaign : Campaign.t;
  o_resumed : int;
  o_fresh : int;
  o_spools : spool_info list;
}

type status =
  | Complete of outcome
  | Incomplete of { done_shards : int; pending_shards : int }

(* --- interrupting a fleet ------------------------------------------- *)

(* While run_sharded has live children, this hook terminates and reaps
   them and drains their spools; otherwise it is a no-op.  The host
   binary's SIGINT handler calls {!interrupt} so Ctrl-C on a --procs K
   run cannot leave orphan workers or unread spool tails behind. *)
let interrupt_hook : (unit -> unit) Atomic.t = Atomic.make (fun () -> ())
let interrupt () = (Atomic.get interrupt_hook) ()

(* --- spool tailing --------------------------------------------------- *)

(* One tail per worker spool.  The channel is opened lazily (the file
   only exists once the child's first event lands) and read with
   [input_line]: spool writes are line-atomic (one write(2) per line),
   so End_of_file is the only mid-line condition and simply means
   "caught up — retry next tick". *)
type tail = {
  tl_worker : int;
  tl_path : string;
  mutable tl_ic : in_channel option;
  mutable tl_next : int;  (* next expected worker-local seq *)
  mutable tl_gaps : int;
  mutable tl_events : int;
}

let make_tail worker path =
  { tl_worker = worker; tl_path = path; tl_ic = None; tl_next = 0;
    tl_gaps = 0; tl_events = 0 }

let drain_tail t =
  (match t.tl_ic with
  | None ->
      if Sys.file_exists t.tl_path then (
        try t.tl_ic <- Some (open_in t.tl_path) with Sys_error _ -> ())
  | Some _ -> ());
  match t.tl_ic with
  | None -> ()
  | Some ic ->
      let continue = ref true in
      while !continue do
        match input_line ic with
        | exception End_of_file -> continue := false
        | line -> (
            match Events.respool_line line with
            | Some (oseq, payload) ->
                (* gap accounting per origin: worker seqs are dense, so
                   a jump is an exact record of lines lost at the source *)
                if oseq > t.tl_next then t.tl_gaps <- t.tl_gaps + (oseq - t.tl_next);
                if oseq >= t.tl_next then t.tl_next <- oseq + 1;
                t.tl_events <- t.tl_events + 1;
                Events.publish_payload payload
            | None -> ())
      done

let close_tail t =
  (match t.tl_ic with
  | Some ic -> ( try close_in ic with Sys_error _ -> ())
  | None -> ());
  t.tl_ic <- None

(* ------------------------------------------------------------------ *)
(* The sharded driver. *)

let wipe_queue wq =
  let root = Workqueue.dir wq in
  List.iter
    (fun sub ->
      let d = Filename.concat root sub in
      if Sys.file_exists d then
        Array.iter
          (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
          (Sys.readdir d))
    [ "todo"; "claims"; "done"; "results" ];
  try Sys.remove (Filename.concat root "job.json") with Sys_error _ -> ()

(* job.json carries the spec for humans and the fingerprint for the
   resume guard *)
let job_file_json j fp =
  match job_to_json j with
  | Json.Obj fields -> Json.Obj (fields @ [ ("fingerprint", Json.Str fp) ])
  | other -> other

let run_sharded ?(procs = 1) ?shard_limit ?(fresh = false)
    ?(notify = Events.publish) ~dir j (ctx : Context.t)
    (run : Runs.design_run) =
  let ( let* ) = Result.bind in
  let name = Partition.name j.j_design in
  let faults = faults_of ctx run j in
  let total = Array.length faults in
  let fp = fingerprint j faults in
  let wq = Workqueue.create ~dir in
  let* () =
    match Workqueue.read_job wq with
    | None ->
        Workqueue.write_job wq (job_file_json j fp);
        Ok ()
    | Some prior -> (
        let stored_fp =
          match prior with
          | Ok json -> Option.bind (Json.member "fingerprint" json) Json.str
          | Error _ -> None
        in
        match stored_fp with
        | Some stored when stored = fp -> Ok ()
        | _ when fresh ->
            wipe_queue wq;
            Workqueue.write_job wq (job_file_json j fp);
            Ok ()
        | _ ->
            Error
              (Printf.sprintf
                 "shard dir %s holds a different job (fingerprint mismatch); \
                  pass --fresh to discard it"
                 dir))
  in
  Metrics.incr ~by:(Workqueue.reclaim_orphans wq) m_orphan_reclaims;
  let plan = Shard.plan ~total ~shards:j.j_shards in
  let* done0 = Workqueue.load_done wq in
  let* () =
    (* belt and braces on top of the job.json guard: never merge a shard
       simulated under a different spec *)
    match
      List.find_opt (fun m -> m.Shard.sm_fingerprint <> fp) done0
    with
    | Some m ->
        Error
          (Printf.sprintf "done shard %d has a foreign fingerprint"
             m.Shard.sm_id)
    | None -> Ok ()
  in
  let done0_ids = List.map (fun m -> m.Shard.sm_id) done0 in
  let missing =
    Shard.ranges_missing ~total
      ~done_ids:(fun id -> List.mem id done0_ids)
      ~shards:j.j_shards
  in
  ignore (Workqueue.seed wq missing);
  let t0 = Clock.now_ns () in
  let limit = Option.value shard_limit ~default:max_int in
  let jname = job_name j in
  (* One claimed range at a time: simulate it as an ordinary (domain
     pooled) campaign over the sub-list, persist, claim the next.
     [metrics_file] (workers only) re-snapshots the registry at every
     shard boundary so the parent can fold live fleet totals. *)
  let claim_loop ?metrics_file ~quiet () =
    let pid = Unix.getpid () in
    let claimed = ref 0 in
    let continue = ref true in
    while !continue && !claimed < limit do
      let t_claim = Clock.now_ns () in
      let claimed_range = Workqueue.claim wq ~pid in
      Metrics.observe m_claim_ns (Clock.now_ns () - t_claim);
      match claimed_range with
      | None -> continue := false
      | Some r ->
          let sub = Array.sub faults r.Shard.sh_lo (r.Shard.sh_hi - r.Shard.sh_lo) in
          Events.set_shard r.Shard.sh_id;
          let c =
            Campaign.run ~workers:j.j_workers ~diff:j.j_diff
              ~batch_width:j.j_batch_width ~name ~impl:run.Runs.impl
              ~golden:ctx.Context.golden_nl ~stimulus:ctx.Context.stimulus
              ~faults:sub ()
          in
          Events.set_shard (-1);
          let lines =
            Array.to_list
              (Array.mapi
                 (fun i res -> Shard.result_to_line ~index:(r.Shard.sh_lo + i) res)
                 c.Campaign.results)
          in
          let m = Shard.manifest_of_campaign r ~fingerprint:fp ~owner:pid c in
          Workqueue.complete wq ~pid r ~lines ~manifest:m;
          incr claimed;
          Option.iter Metrics.write_file metrics_file;
          if not quiet then
            notify
              (Events.Shard_done
                 {
                   design = name;
                   shard = r.Shard.sh_id;
                   lo = r.Shard.sh_lo;
                   hi = r.Shard.sh_hi;
                   wrong = c.Campaign.wrong;
                   pending = Workqueue.pending wq;
                 })
    done
  in
  (* Fleet-level lifecycle events are origin-less and published by this
     process only, so a watcher can always tell the authoritative
     campaign record from the per-shard campaigns relayed out of the
     workers (those carry an origin). *)
  notify (Events.Campaign_started { design = name; faults = total; workers = procs });
  let spools = ref [] in
  (if procs <= 1 then begin
     (* Even single-process sharded runs stamp their shard-local events
        with an origin (worker 0 = the parent itself), so a watcher
        applies one rule to every campaign event with an origin. *)
     Events.set_context ~worker:0 ~job:jname;
     Fun.protect
       ~finally:(fun () -> Events.clear_context ())
       (fun () -> claim_loop ~quiet:false ())
   end
   else begin
     let events_on = Events.enabled () in
     let tracing = Trace.enabled () in
     let worker_ids = List.init procs (fun k -> k + 1) in
     (* stale telemetry from a previous (interrupted) run must neither
        be tailed nor folded into this run's scrapes *)
     List.iter
       (fun w ->
         List.iter
           (fun p -> try Sys.remove p with Sys_error _ -> ())
           [
             Workqueue.spool_path wq ~worker:w;
             Workqueue.metrics_path wq ~worker:w;
             Workqueue.trace_path wq ~worker:w;
           ])
       worker_ids;
     (* Fork the workers *after* the implementation and fault list exist:
        children inherit the built device, bitstream and golden netlist
        by copy-on-write instead of re-running the CAD flow per process.
        Each child talks to the world only through the queue directory.
        The bus threads are quiesced across the fork window: a child
        forked while the writer thread is mid-runtime-lock inherits a
        poisoned threads runtime and wedges at its first forced yield. *)
     Events.pause ();
     let children =
       List.map
         (fun worker ->
           match Unix.fork () with
           | 0 ->
               (* the bus threads did not survive the fork, and its
                  sinks' descriptors are shared with the parent: disown
                  bus and trace sink before anything else *)
               Events.detach ();
               Trace.detach ();
               (* inherited handlers belong to the parent (they flush
                  the parent's sinks); default dispositions are correct
                  here — spool writes are line-atomic and flushed, so
                  dying on SIGTERM/SIGINT leaves no torn line and the
                  claim is reclaimed *)
               Sys.set_signal Sys.sigterm Sys.Signal_default;
               Sys.set_signal Sys.sigint Sys.Signal_default;
               if events_on then
                 Events.spool
                   ~path:(Workqueue.spool_path wq ~worker)
                   ~worker ~job:jname
               else Events.set_context ~worker ~job:jname;
               if tracing then
                 Trace.to_file (Workqueue.trace_path wq ~worker);
               let metrics_file = Workqueue.metrics_path wq ~worker in
               let code =
                 try
                   claim_loop ~metrics_file ~quiet:true ();
                   0
                 with e ->
                   Printf.eprintf "shard worker %d: %s\n%!" (Unix.getpid ())
                     (Printexc.to_string e);
                   1
               in
               Metrics.write_file metrics_file;
               Events.close ();
               Trace.close ();
               (* _exit, not exit: at_exit in the child would flush
                  output buffers it shares with the parent *)
               Unix._exit code
           | pid -> pid)
         worker_ids
     in
     Events.resume ();
     (* fleet-wide scrapes: fold the workers' snapshot files into every
        /metrics render for as long as they exist *)
     let fleet_snapshots () =
       List.filter_map
         (fun w ->
           match Metrics.read_file (Workqueue.metrics_path wq ~worker:w) with
           | Ok s -> Some s
           | Error _ -> None)
         worker_ids
     in
     Expose.set_extra_snapshots (Some fleet_snapshots);
     (* The parent watches: a tailer thread follows the live spools and
        republishes every worker event onto the bus (re-sequenced, origin
        preserved), while the main thread reaps children and relays a
        Shard_done per manifest that appears. *)
     let tails =
       if events_on then
         List.map (fun w -> make_tail w (Workqueue.spool_path wq ~worker:w))
           worker_ids
       else []
     in
     let tail_stop = Atomic.make false in
     let tailer =
       if tails = [] then None
       else
         Some
           (Thread.create
              (fun () ->
                while not (Atomic.get tail_stop) do
                  List.iter drain_tail tails;
                  Thread.delay 0.03
                done;
                (* final pass after the stop flag: children have exited
                   and flushed, so this empties every spool *)
                List.iter drain_tail tails)
              ())
     in
     let stop_tailer () =
       Atomic.set tail_stop true;
       Option.iter Thread.join tailer;
       List.iter close_tail tails
     in
     let seen = Hashtbl.create 16 in
     List.iter (fun id -> Hashtbl.replace seen id ()) done0_ids;
     let relay () =
       match Workqueue.load_done wq with
       | Error _ -> ()
       | Ok ms ->
           Metrics.set m_shards_done (float_of_int (List.length ms));
           Metrics.set m_queue_depth (float_of_int (Workqueue.pending wq));
           List.iter
             (fun (m : Shard.manifest) ->
               if not (Hashtbl.mem seen m.Shard.sm_id) then begin
                 Hashtbl.replace seen m.Shard.sm_id ();
                 notify
                   (Events.Shard_done
                      {
                        design = name;
                        shard = m.Shard.sm_id;
                        lo = m.Shard.sm_lo;
                        hi = m.Shard.sm_hi;
                        wrong = m.Shard.sm_wrong;
                        pending = Workqueue.pending wq;
                      })
               end)
             ms
     in
     let remaining = ref children in
     (* Ctrl-C: terminate the fleet, reap it, then drain what the dying
        workers managed to spool — the host's SIGINT handler runs this
        before flushing its own sinks *)
     Atomic.set interrupt_hook (fun () ->
         List.iter
           (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
           !remaining;
         List.iter
           (fun pid ->
             try ignore (Unix.waitpid [] pid)
             with Unix.Unix_error _ -> ())
           !remaining;
         stop_tailer ());
     Fun.protect
       ~finally:(fun () -> Atomic.set interrupt_hook (fun () -> ()))
       (fun () ->
         while !remaining <> [] do
           remaining :=
             List.filter
               (fun pid ->
                 match Unix.waitpid [ Unix.WNOHANG ] pid with
                 | 0, _ -> true
                 | _ -> false
                 | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false)
               !remaining;
           relay ();
           if !remaining <> [] then Unix.sleepf 0.02
         done;
         stop_tailer ();
         relay ());
     spools :=
       List.map
         (fun t ->
           {
             sp_worker = t.tl_worker;
             sp_path = t.tl_path;
             sp_events = t.tl_events;
             sp_gaps = t.tl_gaps;
           })
         tails;
     (* stitch the workers' trace files into the parent's sink so one
        [tmrtool profile] renders the whole fleet; pid fields survive
        verbatim, so lanes stay per-process *)
     if tracing then
       List.iter
         (fun w ->
           let p = Workqueue.trace_path wq ~worker:w in
           match open_in p with
           | exception Sys_error _ -> ()
           | ic ->
               (try
                  while true do
                    let line = input_line ic in
                    let n = String.length line in
                    (* a worker killed mid-buffer-flush can leave one
                       torn trailing line; relay only well-formed ones *)
                    if n > 1 && line.[0] = '{' && line.[n - 1] = '}' then
                      Trace.emit_raw line
                  done
                with End_of_file -> ());
               close_in_noerr ic)
         worker_ids
   end);
  let wall_ns = Clock.now_ns () - t0 in
  let* dones = Workqueue.load_done wq in
  let* () =
    match List.find_opt (fun m -> m.Shard.sm_fingerprint <> fp) dones with
    | Some m ->
        Error
          (Printf.sprintf "done shard %d has a foreign fingerprint"
             m.Shard.sm_id)
    | None -> Ok ()
  in
  if List.length dones < Array.length plan then
    Ok
      (Incomplete
         {
           done_shards = List.length dones;
           pending_shards = Workqueue.pending wq;
         })
  else
    let* shards =
      List.fold_left
        (fun acc m ->
          let* acc = acc in
          let* rs = Workqueue.read_results wq m in
          Ok ((m, rs) :: acc))
        (Ok []) dones
    in
    let merged = Shard.merge ~design:name ~total ~procs ~wall_ns shards in
    (* origin-less, hence authoritative for watchers: the merged fleet
       totals, not any single shard's *)
    notify
      (Events.Campaign_stopped
         {
           design = name;
           requested = total;
           injected = merged.Campaign.injected;
           wrong = merged.Campaign.wrong;
           wall_ns;
         });
    Ok
      (Complete
         {
           o_campaign = merged;
           o_resumed = List.length done0;
           o_fresh = Array.length plan - List.length done0;
           o_spools = !spools;
         })

let summary_json j status =
  let name = job_name j in
  match status with
  | Incomplete { done_shards; pending_shards } ->
      Printf.sprintf
        "{\"job\":\"%s\",\"status\":\"incomplete\",\"done_shards\":%d,\"pending_shards\":%d}"
        (Tmr_obs.Jsonl.escape name) done_shards pending_shards
  | Complete o ->
      let base = Campaign.summary_json o.o_campaign in
      (* splice the job fields into the campaign's summary object *)
      let body = String.sub base 0 (String.length base - 1) in
      Printf.sprintf
        "%s,\"job\":\"%s\",\"status\":\"complete\",\"exhaustive\":%b,\"shards_total\":%d,\"shards_resumed\":%d,\"shards_fresh\":%d}"
        body
        (Tmr_obs.Jsonl.escape name)
        j.j_exhaustive (o.o_resumed + o.o_fresh) o.o_resumed o.o_fresh

(* ------------------------------------------------------------------ *)
(* Campaign-as-a-service. *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let serve ?(host = "127.0.0.1") ?max_jobs ?(procs = 1) ~port ~dir () =
  mkdir_p dir;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 16;
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let queue : job Queue.t = Queue.create () in
  let peers = ref [] in
  let stopping = ref false in
  let seq = ref 0 in
  (* Every client sees the same JSONL stream, rendered exactly like the
     event bus would ({!Events.render}, server-local dense seq), so
     [tmrtool watch] and {!Events.parse_line} work on a captured feed. *)
  let broadcast ev =
    Mutex.lock mutex;
    let line = Events.render ~seq:!seq ~ts_ns:(Clock.now_ns ()) ev ^ "\n" in
    incr seq;
    let bytes = Bytes.of_string line in
    peers :=
      List.filter
        (fun fd ->
          match write_all fd bytes with
          | () -> true
          | exception _ ->
              (try Unix.close fd with _ -> ());
              false)
        !peers;
    Mutex.unlock mutex
  in
  let drop_peer fd =
    Mutex.lock mutex;
    let present = List.memq fd !peers in
    peers := List.filter (fun p -> not (p == fd)) !peers;
    Metrics.set m_clients (float_of_int (List.length !peers));
    Mutex.unlock mutex;
    if present then try Unix.close fd with _ -> ()
  in
  (* one reader thread per client: each line is one job *)
  let client_reader fd =
    let ic = Unix.in_channel_of_descr fd in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then begin
           match Result.bind (Json.parse line) job_of_json with
           | Ok j ->
               Mutex.lock mutex;
               Queue.add j queue;
               Condition.signal cond;
               Mutex.unlock mutex;
               broadcast
                 (Events.Job_queued
                    { job = job_name j; design = Partition.name j.j_design })
           | Error e -> (
               let msg =
                 Printf.sprintf "{\"error\":\"%s\"}\n" (Tmr_obs.Jsonl.escape e)
               in
               try write_all fd (Bytes.of_string msg) with _ -> ())
         end
       done
     with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
    drop_peer fd
  in
  (* polling accept, same pattern as the event bus: a blocking accept is
     not reliably interruptible from another thread *)
  let acceptor () =
    Unix.set_nonblock listen_fd;
    let running = ref true in
    while !running do
      (match Unix.accept listen_fd with
      | fd, _ ->
          (try Unix.clear_nonblock fd with _ -> ());
          (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.5 with _ -> ());
          Mutex.lock mutex;
          peers := fd :: !peers;
          Metrics.set m_clients (float_of_int (List.length !peers));
          Mutex.unlock mutex;
          ignore (Thread.create client_reader fd)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Thread.delay 0.05
      | exception _ -> running := false);
      Mutex.lock mutex;
      if !stopping then running := false;
      Mutex.unlock mutex
    done
  in
  let acceptor_t = Thread.create acceptor () in
  (* jobs run sequentially in this thread; implementations are cached so
     repeated jobs skip the CAD flow *)
  let ctxs : (string * int, Context.t) Hashtbl.t = Hashtbl.create 4 in
  let runs : (string * int * string, Runs.design_run) Hashtbl.t =
    Hashtbl.create 8
  in
  let completed = ref 0 in
  let stop_after () =
    match max_jobs with Some n -> !completed >= n | None -> false
  in
  while not (stop_after ()) do
    Mutex.lock mutex;
    while Queue.is_empty queue do
      Condition.wait cond mutex
    done;
    let j = Queue.take queue in
    Mutex.unlock mutex;
    let jname = job_name j in
    let design = Partition.name j.j_design in
    Metrics.set m_jobs_active 1.0;
    Printf.eprintf "serve: job %s started (%s)\n%!" jname (Store.version_string ());
    broadcast (Events.Job_started { job = jname; design });
    (match
       let ckey = (scale_name j.j_scale, j.j_seed) in
       let ctx =
         match Hashtbl.find_opt ctxs ckey with
         | Some ctx -> ctx
         | None ->
             let ctx =
               Context.create ~scale:j.j_scale ~seed:j.j_seed
                 ~faults_per_design:j.j_faults ()
             in
             Hashtbl.add ctxs ckey ctx;
             ctx
       in
       let rkey =
         ( scale_name j.j_scale,
           j.j_seed,
           design ^ "/" ^ Tmr_core.Voter.name j.j_voter )
       in
       let run =
         match Hashtbl.find_opt runs rkey with
         | Some run -> run
         | None ->
             let run =
               Runs.implement_design ~voter:j.j_voter ctx j.j_design
             in
             Hashtbl.add runs rkey run;
             run
       in
       run_sharded ~procs ~notify:broadcast
         ~dir:(Filename.concat dir jname)
         j ctx run
     with
    | Ok (Complete o) ->
        let c = o.o_campaign in
        let oc =
          open_out (Filename.concat dir (jname ^ ".summary.json"))
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (summary_json j (Complete o));
            output_char oc '\n');
        broadcast
          (Events.Job_done
             {
               job = jname;
               design;
               injected = c.Campaign.injected;
               wrong = c.Campaign.wrong;
               wall_ns = c.Campaign.wall_ns;
             })
    | Ok (Incomplete _ as st) ->
        let oc =
          open_out (Filename.concat dir (jname ^ ".summary.json"))
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (summary_json j st);
            output_char oc '\n');
        broadcast
          (Events.Job_done
             { job = jname; design; injected = 0; wrong = 0; wall_ns = 0 })
    | Error e ->
        Printf.eprintf "serve: job %s failed: %s\n%!" jname e;
        broadcast
          (Events.Job_done
             { job = jname; design; injected = 0; wrong = 0; wall_ns = 0 })
    | exception e ->
        Printf.eprintf "serve: job %s raised: %s\n%!" jname
          (Printexc.to_string e);
        broadcast
          (Events.Job_done
             { job = jname; design; injected = 0; wrong = 0; wall_ns = 0 }));
    Metrics.set m_jobs_active 0.0;
    Metrics.incr m_jobs_completed;
    incr completed
  done;
  Mutex.lock mutex;
  stopping := true;
  Mutex.unlock mutex;
  Thread.join acceptor_t;
  (try Unix.close listen_fd with _ -> ());
  Mutex.lock mutex;
  let ps = !peers in
  peers := [];
  Mutex.unlock mutex;
  List.iter (fun fd -> try Unix.close fd with _ -> ()) ps
