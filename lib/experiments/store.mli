(** Persistent campaign run store and regression reports.

    One JSON manifest per campaign, in a directory of small files (no
    database, no locking beyond O_EXCL-free last-write-wins): enough to
    compare tonight's run against history without re-running anything.
    The regression report is the consumer: current campaigns vs. each
    design's latest stored baseline, rates compared by CI overlap plus a
    two-proportion z test, throughput by relative faults/s drop. *)

val tool_version : string
(** The version stamped into every manifest (and printed by
    [tmrtool --version]). *)

val version_string : unit -> string
(** ["tmrtool <version> (git <short-hash>)"] — the manifest identity
    fields as one line, for [--version] and service job logs. *)

type spool_ref = {
  sr_worker : int;  (** worker slot, 1-based *)
  sr_path : string;  (** the worker's event spool file *)
  sr_events : int;  (** origin seqs relayed onto the fleet stream *)
  sr_gaps : int;  (** origin seqs never observed by the tailer *)
}
(** One forked worker's event spool, as recorded by
    {!Service.run_sharded} — the spool's own origin sequence range is
    [0 .. sr_events + sr_gaps - 1]. *)

type manifest = {
  m_design : string;  (** strategy name, e.g. "tmr_p2" *)
  m_scale : string;  (** "paper" or "reduced" *)
  m_seed : int;
  m_created : float;  (** Unix time the manifest was built *)
  m_created_iso : string;  (** [m_created] as ISO-8601 UTC, e.g. ["2026-08-09T12:00:00Z"] *)
  m_tool_version : string;
  m_git_commit : string;  (** short hash, or ["unknown"] outside a checkout *)
  m_events_path : string option;
      (** the [--events] stream the run published to, when any *)
  m_events_seq : int option;
      (** last event sequence number at manifest time — with
          [m_events_path], enough to replay exactly what a live
          dashboard saw for this run *)
  m_spools : spool_ref list;
      (** per-worker event spools of a forked ([--procs]) run with
          events on; empty otherwise *)
  m_workers : int;
  m_cone_skip : bool;
  m_diff : bool;
  m_forensics : bool;
  m_stop : Tmr_obs.Stats.stop_rule option;  (** CI stop, when used *)
  m_exhaustive : bool;
      (** the run covered the design's {e entire} essential-bit space —
          [m_rate] is exact and the CI fields are vestigial *)
  m_requested : int;
  m_injected : int;
  m_wrong : int;
  m_confidence : float;  (** level of [m_ci_lo, m_ci_hi] *)
  m_rate : float;  (** wrong / injected, in [0,1] *)
  m_ci_lo : float;
  m_ci_hi : float;
  m_faults_per_sec : float;
  m_wall_ns : int;
  m_utilization : float;
  m_voter : string;
      (** voter-macro variant the design was built with
          ({!Tmr_core.Voter.name}); manifests written by pre-0.9 tools
          load as ["majority"] *)
  m_detection : detection option;
      (** four-way detected-vs-silent verdict counts, present only when
          the design carried a detecting voter (and absent in pre-0.9
          manifests) *)
  m_coverage : Tmr_obs.Json.t;  (** {!Tmr_inject.Coverage.to_json}, or [Null] *)
  m_metrics_digest : string;
      (** MD5 hex of the process metrics snapshot at manifest time — ties
          the manifest to its telemetry dump *)
}

and detection = {
  md_silent_correct : int;
  md_detected_corrected : int;
  md_detected_wrong : int;
  md_silent_wrong : int;  (** the SDC class *)
}
(** The campaign's {!Tmr_inject.Campaign.verdict} split; the four counts
    sum to the injected faults. *)

val of_run :
  ?confidence:float ->
  ?cone_skip:bool ->
  ?diff:bool ->
  ?forensics:bool ->
  ?stop:Tmr_obs.Stats.stop_rule ->
  ?exhaustive:bool ->
  ?events_path:string ->
  ?spools:spool_ref list ->
  Context.t ->
  Runs.design_run ->
  manifest
(** Build a manifest from an injected design run (raises
    [Invalid_argument] if the run has no campaign).  The engine-config
    flags record what the caller passed to {!Runs.campaign_design};
    they default like the engine does (cone_skip/diff on, forensics
    off).  [events_path] records where the live event stream went; the
    current last sequence number is captured with it. *)

val to_json : manifest -> Tmr_obs.Json.t
val of_json : Tmr_obs.Json.t -> (manifest, string) result

val save : dir:string -> manifest -> string
(** Write the manifest into [dir] (created if missing) as
    [<design>-seed<seed>-<ms>.json]; returns the path. *)

val load_dir : ?warn:(string -> unit) -> dir:string -> unit -> manifest list
(** Every parseable manifest under [dir], oldest first.  A missing
    directory is an empty history.  Truncated, unreadable or otherwise
    corrupt manifests are skipped with a message through [warn]
    (default: stderr) — one damaged file never takes down the whole
    history, which crash-resume relies on. *)

val baseline_for : history:manifest list -> manifest -> manifest option
(** Latest stored manifest with the same design, scale and voter. *)

val report_markdown :
  ?confidence:float ->
  ?throughput_drop:float ->
  history:manifest list ->
  manifest list ->
  string
(** Markdown report of the given campaigns against [history].

    Per design: n, wrong answers, rate with CI, the baseline's rate and
    CI, the two-proportion z, and a verdict — "compatible" when the CIs
    overlap and |z| stays under the critical value, "regression" /
    "improvement" otherwise by rate direction, "new" without a baseline.
    Throughput regressions (faults/s below [1 - throughput_drop] of
    baseline, default 0.30) are flagged separately, as are injection
    coverage summaries.  [confidence] (default 0.95) governs the
    compatibility test. *)
