(** Implement the five filter versions and run their fault-injection
    campaigns — the heavy lifting shared by Tables 2, 3 and 4. *)

type design_run = {
  strategy : Tmr_core.Partition.strategy;
  voter : Tmr_core.Voter.variant;  (** voter macro used by the TMR designs *)
  nl : Tmr_netlist.Netlist.t;  (** the (possibly TMR) gate-level design *)
  impl : Tmr_pnr.Impl.t;
  faultlist : Tmr_inject.Faultlist.t;
  campaign : Tmr_inject.Campaign.t option;  (** None when only implemented *)
}

val implement_design :
  ?voter:Tmr_core.Voter.variant ->
  Context.t ->
  Tmr_core.Partition.strategy ->
  design_run
(** Build, map, place, route; no fault injection.  [voter] (default
    [Majority]) selects the voter macro every voter partition
    instantiates; [Detecting] adds the pairwise-disagreement outputs
    campaigns classify into the detected-vs-silent taxonomy. *)

val campaign_design :
  ?progress:(string -> Tmr_inject.Campaign.progress -> unit) ->
  ?workers:int ->
  ?cone_skip:bool ->
  ?diff:bool ->
  ?forensics:bool ->
  ?stop_at_ci:Tmr_obs.Stats.stop_rule ->
  ?batch_width:int ->
  Context.t ->
  design_run ->
  design_run
(** Add the fault-injection campaign ([Context.faults_per_design] random
    DUT bits).  [progress] receives the design name plus the campaign's
    progress snapshot (completed / total / running wrong count); the
    engine options are forwarded to {!Tmr_inject.Campaign.run}. *)

val run_all :
  ?progress:(string -> Tmr_inject.Campaign.progress -> unit) ->
  ?workers:int ->
  ?forensics:bool ->
  ?stop_at_ci:Tmr_obs.Stats.stop_rule ->
  ?batch_width:int ->
  ?voter:Tmr_core.Voter.variant ->
  Context.t ->
  design_run list
(** The five paper designs, implemented and injected. *)

val coverage_of : design_run -> Tmr_inject.Coverage.t option
(** Injection coverage of the run's campaign against its fault list;
    [None] when only implemented. *)
