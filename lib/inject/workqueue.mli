(** Shared on-disk work queue for multi-process campaigns.

    One directory per job, four subdirectories:

    {v
    <dir>/job.json                 the job spec + fingerprint
    <dir>/todo/00007.json          a pending shard range
    <dir>/claims/00007.pid-412.json  a range being simulated by pid 412
    <dir>/done/00007.json          a completed shard manifest
    <dir>/results/00007.jsonl      that shard's per-fault results
    v}

    Claiming is one atomic [rename] of the range file from [todo/] into
    [claims/] — the filesystem arbitrates racing workers, no locks.  A
    loser's rename fails with [ENOENT] and it simply tries the next
    lowest id.  Completion writes the results and the manifest with
    tmp-file + [rename] (so readers never see a truncated file) and only
    then removes the claim; a worker that crashes mid-shard leaves its
    claim behind, and {!reclaim_orphans} moves claims whose owner pid is
    dead back into [todo/].

    Resume therefore needs no journal: re-seed the planned ranges,
    [seed] skips everything already in [done/] (and anything still
    pending), and the merge reads [done/] + [results/]. *)

type t

val create : dir:string -> t
(** Create (or adopt) the queue directory structure under [dir]. *)

val dir : t -> string

(** {1 Per-worker telemetry files}

    Distributed telemetry artifacts live beside the queue so parent,
    workers and post-hoc readers agree on the layout: worker [K] spools
    events to [events-w<K>.jsonl], snapshots its metrics registry to
    [metrics-w<K>.json] at shard boundaries, and traces spans to
    [trace-w<K>.jsonl]. *)

val spool_path : t -> worker:int -> string
val metrics_path : t -> worker:int -> string
val trace_path : t -> worker:int -> string

(** {1 Job spec} *)

val write_job : t -> Tmr_obs.Json.t -> unit
(** Atomically (re)write [job.json]. *)

val read_job : t -> (Tmr_obs.Json.t, string) result option
(** [None] when no [job.json] exists (fresh directory). *)

(** {1 The queue} *)

val seed : t -> Shard.range list -> int
(** Enqueue every range that is not already pending, claimed or done;
    returns how many were enqueued.  Idempotent — re-seeding a
    half-finished queue only adds what is missing. *)

val claim : t -> pid:int -> Shard.range option
(** Atomically claim the lowest-id pending range for [pid], or [None]
    when [todo/] is empty.  Safe against concurrent claimers. *)

val complete :
  t ->
  pid:int ->
  Shard.range ->
  lines:string list ->
  manifest:Shard.manifest ->
  unit
(** Persist a finished shard: its result [lines] (in fault-index order,
    one per fault) as [results/<id>.jsonl], then its manifest as
    [done/<id>.json], each via tmp + rename, then drop the claim. *)

val release : t -> pid:int -> Shard.range -> unit
(** Put a claimed range back into [todo/] (orderly shutdown). *)

val reclaim_orphans : t -> int
(** Move every claim whose owner process is dead back into [todo/];
    returns how many were reclaimed.  Claims owned by live processes
    (including the caller) are left alone. *)

(** {1 Reading back} *)

val load_done : t -> (Shard.manifest list, string) result
(** All completed-shard manifests, ascending by id.  A truncated or
    corrupt manifest is an [Error] naming the file — completion writes
    are atomic, so that means external damage, not a crash. *)

val read_results :
  t -> Shard.manifest -> ((int * Campaign.fault_result) array, string) result
(** The per-fault results of one completed shard, in file order.  Checks
    the count against the manifest's range. *)

val pending : t -> int
(** Ranges still in [todo/] plus live claims. *)
