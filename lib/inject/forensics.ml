module Netlist = Tmr_netlist.Netlist
module Device = Tmr_arch.Device
module Impl = Tmr_pnr.Impl
module Pack = Tmr_pnr.Pack
module Place = Tmr_pnr.Place
module Route = Tmr_pnr.Route
module Footprint = Tmr_fabric.Footprint

type attrib = {
  dev : Device.t;
  db : Tmr_arch.Bitdb.t;
  wire_domain : int array;
  wire_part : int array;
  wire_voter : bool array;
  bel_domain : int array;
  bel_part : int array;
  bel_voter : bool array;
  part_names : string array;
}

let attrib_of_impl (impl : Impl.t) =
  let dev = impl.Impl.dev in
  let mapped = impl.Impl.mapped in
  let pack = impl.Impl.pack in
  let place = impl.Impl.place in
  let route = impl.Impl.route in
  let nw = dev.Device.nwires and nb = dev.Device.nbels in
  let wire_domain = Array.make nw (-1) in
  let wire_part = Array.make nw (-1) in
  let wire_voter = Array.make nw false in
  let bel_domain = Array.make nb (-1) in
  let bel_part = Array.make nb (-1) in
  let bel_voter = Array.make nb false in
  (* partition interning: iteration order (nets, then sites) is fixed, so
     ids are deterministic for a given implementation *)
  let tbl = Hashtbl.create 64 in
  let names = ref [] in
  let nnames = ref 0 in
  let intern comp =
    if comp = "" then -1
    else
      match Hashtbl.find_opt tbl comp with
      | Some i -> i
      | None ->
          let i = !nnames in
          incr nnames;
          Hashtbl.add tbl comp i;
          names := comp :: !names;
          i
  in
  let voter c = Netlist.is_voter mapped c in
  (* every routed wire belongs to the net's driving cell *)
  Array.iteri
    (fun i (net : Pack.net) ->
      let c = net.Pack.driver in
      let d = Netlist.domain mapped c in
      let p = intern (Netlist.comp mapped c) in
      let v = voter c in
      Array.iter
        (fun w ->
          wire_domain.(w) <- d;
          wire_part.(w) <- p;
          if v then wire_voter.(w) <- true)
        route.Route.net_wires.(i))
    pack.Pack.nets;
  (* every placed site's bel belongs to the cells it realises *)
  Array.iteri
    (fun s (site : Pack.site) ->
      let bel = place.Place.site_bel.(s) in
      let c = site.Pack.out_cell in
      bel_domain.(bel) <- Netlist.domain mapped c;
      bel_part.(bel) <- intern (Netlist.comp mapped c);
      if
        voter c
        || (match site.Pack.lut with Some l -> voter l | None -> false)
        || (match site.Pack.ff with Some f -> voter f | None -> false)
      then bel_voter.(bel) <- true)
    pack.Pack.sites;
  {
    dev;
    db = impl.Impl.db;
    wire_domain;
    wire_part;
    wire_voter;
    bel_domain;
    bel_part;
    bel_voter;
    part_names = Array.of_list (List.rev !names);
  }

let part_name a p =
  if p >= 0 && p < Array.length a.part_names then a.part_names.(p) else "?"

type t = {
  domain_mask : int;
  cross_domain : bool;
  partitions : int array;
  voter_touch : bool;
  masked_at_voter : bool;
  diverged : int;
  first_diverged_node : int;
  diverge_cycle : int;
  depth : int;
  cone_nodes : int;
}

let structural a bit =
  let fp = Footprint.of_bit a.dev a.db bit in
  let mask = ref 0 in
  let voter = ref false in
  let parts = ref [] in
  let add_domain d = if d >= 0 then mask := !mask lor (1 lsl d) in
  let add_part p = if p >= 0 && not (List.mem p !parts) then parts := p :: !parts in
  let add_wire w =
    add_domain a.wire_domain.(w);
    add_part a.wire_part.(w);
    if a.wire_voter.(w) then voter := true
  in
  Array.iter add_wire fp.Footprint.fp_wires;
  Array.iter
    (fun b ->
      add_domain a.bel_domain.(b);
      add_part a.bel_part.(b);
      if a.bel_voter.(b) then voter := true)
    fp.Footprint.fp_bels;
  Array.iter (fun pad -> add_wire a.dev.Device.pad_wire.(pad)) fp.Footprint.fp_pads;
  let m = !mask in
  let touched = (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1) in
  {
    domain_mask = m;
    cross_domain = touched >= 2;
    partitions = Array.of_list (List.sort compare !parts);
    voter_touch = !voter;
    masked_at_voter = false;
    diverged = -1;
    first_diverged_node = -1;
    diverge_cycle = -1;
    depth = -1;
    cone_nodes = -1;
  }

(* ------------------------------------------------------------------ *)
(* JSONL sink *)

let sink = Tmr_obs.Jsonl.make ()
let to_file path = Tmr_obs.Jsonl.to_file sink path
let close () = Tmr_obs.Jsonl.close sink
let enabled () = Tmr_obs.Jsonl.enabled sink

let emit ~design ~bit ~effect ~wrong ~first_error_cycle a f =
  if enabled () then begin
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"design\":\"%s\",\"bit\":%d,\"effect\":\"%s\",\"outcome\":\"%s\",\"first_error_cycle\":%d"
         (Tmr_obs.Jsonl.escape design)
         bit
         (Tmr_obs.Jsonl.escape effect)
         (if wrong then "wrong_answer" else "silent")
         first_error_cycle);
    Buffer.add_string b (Printf.sprintf ",\"domain_mask\":%d" f.domain_mask);
    Buffer.add_string b ",\"domains\":[";
    let first = ref true in
    for d = 0 to 2 do
      if (f.domain_mask lsr d) land 1 = 1 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b (string_of_int d)
      end
    done;
    Buffer.add_char b ']';
    Buffer.add_string b
      (Printf.sprintf ",\"cross_domain\":%b" f.cross_domain);
    Buffer.add_string b ",\"partitions\":[";
    Array.iteri
      (fun i p ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\"" (Tmr_obs.Jsonl.escape (part_name a p))))
      f.partitions;
    Buffer.add_char b ']';
    Buffer.add_string b
      (Printf.sprintf
         ",\"voter_touch\":%b,\"masked_at_voter\":%b,\"diverged_nodes\":%d,\"first_diverged_node\":%d,\"diverge_cycle\":%d,\"propagation_depth\":%d,\"cone_nodes\":%d}"
         f.voter_touch f.masked_at_voter f.diverged f.first_diverged_node
         f.diverge_cycle f.depth f.cone_nodes);
    Tmr_obs.Jsonl.emit sink (Buffer.contents b)
  end
