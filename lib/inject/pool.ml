(* Fixed-size Domain worker pool with chunked work distribution.

   Work items are the integers [0, total).  Workers claim contiguous
   chunks from a shared cursor under a mutex, so distribution is dynamic
   (a worker stuck on expensive items claims fewer chunks) while the
   per-item bookkeeping stays O(total / chunk).

   Chunk size adapts to the remaining work: a claim takes
   [remaining / (workers * min_chunks_per_worker)] items, clamped to
   [1, chunk_max].  Early in a large run that is [chunk_max] (low
   bookkeeping); near the end — and through the whole run of a short or
   early-stopped campaign — it shrinks so every worker still gets
   several claims, instead of one worker dragging the last oversized
   chunk alone while the rest idle.

   A worker exception cancels the pool: the remaining items are abandoned,
   every domain is joined, and the first exception is re-raised in the
   caller with its original backtrace — the caller never deadlocks and
   never sees a half-torn-down pool. *)

(* Keep at least this many claims per worker in the remaining range, so
   the tail of the run stays load-balanced. *)
let min_chunks_per_worker = 8

type shared = {
  mutex : Mutex.t;
  mutable next : int;  (* first unclaimed item *)
  mutable completed : int;
  mutable reported : int;  (* last progress milestone reported *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  total : int;
  chunk_max : int;
  workers : int;
  milestone : int;  (* report progress at most every this many items *)
  progress : (int -> int -> unit) option;
  should_stop : (unit -> bool) option;
}

let locked s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

(* Time from wanting a chunk to holding it: the cursor mutex is the only
   shared point of the pool, so this histogram is the direct measure of
   worker contention (it also absorbs the progress callback running under
   the same mutex in another worker). *)
let m_claim_wait = Tmr_obs.Metrics.histogram "pool.claim_wait_ns"
let m_chunks = Tmr_obs.Metrics.counter "pool.chunks"

(* Claim the next chunk, or None when done/cancelled/stopped.  The stop
   predicate runs outside the mutex: it is a monotone flag (once true,
   forever true), so the worst a race costs is one extra chunk. *)
let claim s =
  let stopped = match s.should_stop with Some f -> f () | None -> false in
  let t0 = Tmr_obs.Clock.now_ns () in
  let r =
    locked s (fun () ->
        if stopped || s.failure <> None || s.next >= s.total then None
        else begin
          let lo = s.next in
          let remaining = s.total - lo in
          let ch =
            min s.chunk_max
              (max 1 (remaining / (s.workers * min_chunks_per_worker)))
          in
          let hi = min s.total (lo + ch) in
          s.next <- hi;
          Some (lo, hi)
        end)
  in
  Tmr_obs.Metrics.observe m_claim_wait (Tmr_obs.Clock.now_ns () - t0);
  if r <> None then Tmr_obs.Metrics.incr m_chunks;
  r

let complete s n =
  locked s (fun () ->
      s.completed <- s.completed + n;
      match s.progress with
      | Some f when s.completed - s.reported >= s.milestone ->
          s.reported <- s.completed;
          (* called under the mutex: serialized, and rate-limited to one
             call per milestone across all workers *)
          f s.completed s.total
      | _ -> ())

let fail s exn bt =
  locked s (fun () -> if s.failure = None then s.failure <- Some (exn, bt))

(* Worker heartbeats for the live event stream: cumulative busy (chunk
   bodies) / idle (claim waits) split per worker, rate-limited so a
   fast worker does not flood the bus, plus one final beat at exit so
   `tmrtool watch` always sees the end-of-run utilization. *)
let heartbeat_interval_ns = 250_000_000

let worker_loop s wid body =
  let busy = ref 0 and idle = ref 0 and items = ref 0 in
  let last_beat = ref (Tmr_obs.Clock.now_ns ()) in
  let beat ~force now =
    if
      Tmr_obs.Events.enabled ()
      && (force || now - !last_beat >= heartbeat_interval_ns)
    then begin
      last_beat := now;
      Tmr_obs.Events.publish
        (Tmr_obs.Events.Worker_heartbeat
           { worker = wid; busy_ns = !busy; idle_ns = !idle; items = !items })
    end
  in
  let continue = ref true in
  while !continue do
    let t0 = Tmr_obs.Clock.now_ns () in
    match claim s with
    | None -> continue := false
    | Some (lo, hi) -> (
        let t1 = Tmr_obs.Clock.now_ns () in
        idle := !idle + (t1 - t0);
        match
          for i = lo to hi - 1 do
            body i
          done
        with
        | () ->
            let t2 = Tmr_obs.Clock.now_ns () in
            busy := !busy + (t2 - t1);
            items := !items + (hi - lo);
            complete s (hi - lo);
            beat ~force:false t2
        | exception exn ->
            fail s exn (Printexc.get_raw_backtrace ());
            continue := false)
  done;
  beat ~force:true (Tmr_obs.Clock.now_ns ())

let run ?progress ?should_stop ?(chunk = 16) ~workers ~total body =
  if total < 0 then invalid_arg "Pool.run: negative total";
  if workers < 1 then invalid_arg "Pool.run: needs at least one worker";
  if chunk < 1 then invalid_arg "Pool.run: chunk must be positive";
  let s =
    {
      mutex = Mutex.create ();
      next = 0;
      completed = 0;
      reported = 0;
      failure = None;
      total;
      chunk_max = chunk;
      workers;
      milestone = max 1 (min chunk (total / 100));
      progress;
      should_stop;
    }
  in
  if workers = 1 || total <= chunk then
    (* inline: no domains for sequential runs or trivially small batches *)
    worker_loop s 0 (body 0)
  else begin
    let domains =
      Array.init workers (fun wid ->
          Domain.spawn (fun () ->
              (* Minor collections are a stop-the-world rendezvous across
                 all domains; when workers outnumber cores, a descheduled
                 domain stalls every collection for a scheduler timeslice.
                 A larger domain-local minor heap makes collections rare
                 enough that the rendezvous cost stays negligible. *)
              Gc.set { (Gc.get ()) with Gc.minor_heap_size = 32 * 1024 * 1024 };
              match body wid with
              | handler -> worker_loop s wid handler
              | exception exn ->
                  (* per-worker init failed *)
                  fail s exn (Printexc.get_raw_backtrace ())))
    in
    Array.iter Domain.join domains
  end;
  match s.failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None ->
      (* final progress tick so callers always see the end state (100%
         for full runs, the stop point for early-stopped ones) *)
      (match progress with
      | Some f when s.reported < s.completed || s.reported < total ->
          f s.completed total
      | _ -> ())
