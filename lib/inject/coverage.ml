module Bitdb = Tmr_arch.Bitdb
module Json = Tmr_obs.Json

type class_cov = {
  cc_class : Bitdb.bit_class;
  cc_device : int;
  cc_essential : int;
  cc_injected : int;
}

type t = {
  total_bits : int;
  frames : int;
  frame_bits : int;
  essential : int;
  injected : int;
  injected_distinct : int;
  classes : class_cov list;
  rows : int;
  cols : int;
  grid_essential : int array array;
  grid_injected : int array array;
}

let class_order = [ Bitdb.Class_routing; Class_lut; Class_custom; Class_ff ]

let of_faults ~db ~faultlist ~faults =
  let total_bits = Bitdb.num_bits db in
  let frames = Bitdb.num_frames db in
  let frame_bits = Bitdb.frame_bits db in
  (* The grid buckets the (frame, offset) plane, not single frames: a
     paper-scale device has 2,501 frames and no terminal is that wide. *)
  let cols = min 64 (max 1 frames) in
  let rows = min 16 (max 1 frame_bits) in
  let cell bit =
    let frame = Bitdb.frame_of_bit db bit in
    let offset = bit mod frame_bits in
    (offset * rows / frame_bits, frame * cols / frames)
  in
  let grid_essential = Array.make_matrix rows cols 0 in
  let grid_injected = Array.make_matrix rows cols 0 in
  Array.iter
    (fun bit ->
      let r, c = cell bit in
      grid_essential.(r).(c) <- grid_essential.(r).(c) + 1)
    faultlist.Faultlist.bits;
  (* dedup the sample: a bit injected twice covers no more memory *)
  let distinct = Hashtbl.create (Array.length faults) in
  Array.iter
    (fun bit ->
      if not (Hashtbl.mem distinct bit) then begin
        Hashtbl.replace distinct bit ();
        let r, c = cell bit in
        grid_injected.(r).(c) <- grid_injected.(r).(c) + 1
      end)
    faults;
  let count_by_class bits =
    let tbl = Hashtbl.create 8 in
    let bump cls =
      Hashtbl.replace tbl cls (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cls))
    in
    bits (fun bit -> bump (Bitdb.class_of_bit db bit));
    fun cls -> Option.value ~default:0 (Hashtbl.find_opt tbl cls)
  in
  let essential_of =
    count_by_class (fun f -> Array.iter f faultlist.Faultlist.bits)
  in
  let injected_of =
    count_by_class (fun f -> Hashtbl.iter (fun bit () -> f bit) distinct)
  in
  let device_counts = Bitdb.class_counts db in
  let classes =
    List.map
      (fun cls ->
        {
          cc_class = cls;
          cc_device = Option.value ~default:0 (List.assoc_opt cls device_counts);
          cc_essential = essential_of cls;
          cc_injected = injected_of cls;
        })
      class_order
  in
  {
    total_bits;
    frames;
    frame_bits;
    essential = Array.length faultlist.Faultlist.bits;
    injected = Array.length faults;
    injected_distinct = Hashtbl.length distinct;
    classes;
    rows;
    cols;
    grid_essential;
    grid_injected;
  }

let to_json t =
  let num i = Json.Num (float_of_int i) in
  let grid g =
    Json.Arr
      (Array.to_list (Array.map (fun row ->
           Json.Arr (Array.to_list (Array.map num row)))
          g))
  in
  Json.Obj
    [
      ("total_bits", num t.total_bits);
      ("frames", num t.frames);
      ("frame_bits", num t.frame_bits);
      ("essential", num t.essential);
      ("injected", num t.injected);
      ("injected_distinct", num t.injected_distinct);
      ( "classes",
        Json.Arr
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("class", Json.Str (Bitdb.class_name c.cc_class));
                   ("device", num c.cc_device);
                   ("essential", num c.cc_essential);
                   ("injected", num c.cc_injected);
                 ])
             t.classes) );
      ( "grid",
        Json.Obj
          [
            ("rows", num t.rows);
            ("cols", num t.cols);
            ("essential", grid t.grid_essential);
            ("injected", grid t.grid_injected);
          ] );
    ]

let heatmap t =
  let b = Buffer.create ((t.rows + 3) * (t.cols + 8)) in
  Buffer.add_string b
    (Printf.sprintf
       "injected/essential bit density, %d frames x %d bits/frame (%d x %d cells)\n"
       t.frames t.frame_bits t.rows t.cols);
  Buffer.add_string b ("  +" ^ String.make t.cols '-' ^ "+\n");
  for r = 0 to t.rows - 1 do
    Buffer.add_string b "  |";
    for c = 0 to t.cols - 1 do
      let e = t.grid_essential.(r).(c) in
      let i = t.grid_injected.(r).(c) in
      let ch =
        if e = 0 then ' '
        else if i = 0 then '.'
        else if i >= e then '#'
        else Char.chr (Char.code '1' + min 8 (i * 10 / e))
      in
      Buffer.add_char b ch
    done;
    Buffer.add_string b "|\n"
  done;
  Buffer.add_string b ("  +" ^ String.make t.cols '-' ^ "+\n");
  Buffer.add_string b
    "  ' ' outside fault list  '.' uninjected  '1'-'9' injected decile  '#' full\n";
  Buffer.contents b
