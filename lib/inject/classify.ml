module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Device = Tmr_arch.Device
module Impl = Tmr_pnr.Impl
module Bitgen = Tmr_pnr.Bitgen

type effect =
  | Lut_effect
  | Mux_effect
  | Init_effect
  | Open_effect
  | Bridge_effect
  | Antenna_effect
  | Conflict_effect
  | Other_effect

let classify impl bit =
  let db = impl.Impl.db in
  let dev = impl.Impl.dev in
  let bg = impl.Impl.bitgen in
  let used = bg.Bitgen.used_wires in
  match Bitdb.resource db bit with
  | Bitdb.Lut_bit (bel, _) ->
      if bg.Bitgen.used_bels.(bel) then Lut_effect else Other_effect
  | Bitdb.Out_sel bel | Bitdb.Ce_inv bel | Bitdb.In_inv (bel, _) ->
      if bg.Bitgen.used_bels.(bel) then Mux_effect else Other_effect
  | Bitdb.Pad_enable pad | Bitdb.Pad_cfg (pad, _) ->
      if bg.Bitgen.used_pads.(pad) then Mux_effect else Other_effect
  | Bitdb.Ff_init bel | Bitdb.Sr_inv bel ->
      if bg.Bitgen.used_bels.(bel) then Init_effect else Other_effect
  | Bitdb.Pip p ->
      let was_on = Bitstream.get bg.Bitgen.bitstream bit in
      if was_on then Open_effect
      else begin
        let s = dev.Device.pip_src.(p) and d = dev.Device.pip_dst.(p) in
        if dev.Device.pip_bidir.(p) then begin
          (* pass transistor: shorts its two endpoints *)
          if used.(s) && used.(d) then Bridge_effect
          else if used.(s) || used.(d) then Antenna_effect
          else Other_effect
        end
        else if used.(d) then begin
          (* buffered: adds a driver to the destination *)
          if used.(s) then Conflict_effect else Antenna_effect
        end
        else Other_effect
      end

let name = function
  | Lut_effect -> "LUT"
  | Mux_effect -> "MUX"
  | Init_effect -> "Initialization"
  | Open_effect -> "Open"
  | Bridge_effect -> "Bridge"
  | Antenna_effect -> "Input-Antenna"
  | Conflict_effect -> "Conflict"
  | Other_effect -> "Others"

let paper_row = name

let all =
  [ Lut_effect; Mux_effect; Init_effect; Open_effect; Bridge_effect;
    Antenna_effect; Conflict_effect; Other_effect ]

let of_name s = List.find_opt (fun e -> name e = s) all
