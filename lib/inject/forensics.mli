(** Fault forensics: attribute every injected fault to the TMR structure
    it corrupts.

    The paper's explanation of Table 2 — more voters mean more
    inter-domain wiring, and routing upsets bridging two redundancy
    domains defeat the vote — is invisible in a Silent/Wrong_answer
    verdict.  This module maps each fault's structural footprint
    ({!Tmr_fabric.Footprint}) onto the TMR domains and voter partitions
    of the implemented design, and folds in the differential engine's
    divergence observations, producing one explainable record per fault.

    Collection is read-only with respect to the simulation: campaign
    results are bit-identical with forensics on or off (like tracing). *)

(** {1 Structural attribution} *)

type attrib = {
  dev : Tmr_arch.Device.t;
  db : Tmr_arch.Bitdb.t;
  wire_domain : int array;  (** device wire -> TMR domain, -1 unrouted/shared *)
  wire_part : int array;  (** device wire -> partition id, -1 none *)
  wire_voter : bool array;  (** wire carries a voter's output net *)
  bel_domain : int array;  (** device bel -> TMR domain of the site's cells *)
  bel_part : int array;
  bel_voter : bool array;  (** bel realises a majority-voter cell *)
  part_names : string array;  (** partition id -> component label *)
}
(** Domain/partition tags of every device resource the implementation
    uses, derived once per campaign from the netlist attributes
    ([Netlist.domain]/[comp]/[is_voter]) through the pack/place/route
    artefacts.  Unused resources stay [-1]. *)

val attrib_of_impl : Tmr_pnr.Impl.t -> attrib

val part_name : attrib -> int -> string
(** Label of a partition id ("?" when out of range). *)

(** {1 Per-fault record} *)

type t = {
  domain_mask : int;  (** bit [d] set when the fault touches domain [d] *)
  cross_domain : bool;  (** touches two or more redundancy domains *)
  partitions : int array;  (** sorted distinct partition ids touched *)
  voter_touch : bool;  (** footprint includes voter logic or a voter net *)
  masked_at_voter : bool;
      (** the fault visibly corrupted cone state, stayed silent, and at
          least one voter in its fanout cone held its baseline value —
          the divergence was stopped at (or before) a vote *)
  diverged : int;  (** cone nodes that left the baseline; -1 not diffed *)
  first_diverged_node : int;  (** topologically-first divergence, -1 none *)
  diverge_cycle : int;
  depth : int;  (** max BFS propagation depth of the divergence, -1 *)
  cone_nodes : int;  (** fanout-cone size; -1 when not diffed *)
}

val structural : attrib -> int -> t
(** Attribution of one configuration bit from its footprint alone: the
    divergence fields are unknown ([-1]/[false]) until a differential
    run fills them in.  Valid on every plan path. *)

(** {1 JSONL sink}

    [Tmr_obs]-style process-global sink: when registered, campaigns
    stream one JSON object per fault (written post-hoc in fault-index
    order, so the file is deterministic for a fixed fault list). *)

val to_file : string -> unit
val close : unit -> unit
val enabled : unit -> bool

val emit :
  design:string ->
  bit:int ->
  effect:string ->
  wrong:bool ->
  first_error_cycle:int ->
  attrib ->
  t ->
  unit
(** Emit one record.  No-op when no sink is registered. *)
