(** Structural classification of an upset's effect, after [9] (Bellato et
    al., DATE 2004) as used in the paper's Table 4.

    Routing upsets are classified from the golden configuration:
    - [Open_effect]: a programmed PIP is switched off (open connection);
    - [Bridge_effect]: a new PIP shorts two routed nets on a channel wire;
    - [Conflict_effect]: a new PIP drives a used input node (bel pin or
      output pad) from a second used source — a logic conflict propagating
      an unknown value;
    - [Antenna_effect]: a new PIP connects a floating (unused) node onto a
      used net, driving it to an unknown value;
    - CLB upsets map to [Lut_effect] (truth-table bits), [Mux_effect]
      (customization muxes: output select, clock enable, pin inversion,
      pad buffers) and [Init_effect] (flip-flop initialisation);
    - anything that cannot influence the DUT cone is [Other_effect].

    One deviation from the paper is inherent: our bit database is complete
    by construction, so the large "Others" share the paper attributes to
    undecoded bits cannot arise here. *)

type effect =
  | Lut_effect
  | Mux_effect
  | Init_effect
  | Open_effect
  | Bridge_effect
  | Antenna_effect
  | Conflict_effect
  | Other_effect

val classify : Tmr_pnr.Impl.t -> int -> effect
(** Classify a bit address against the implementation's golden state. *)

val name : effect -> string

val all : effect list
(** Table 4 row order: LUT, MUX, Initialization, Open, Bridge,
    Input-Antenna, Conflict, Others. *)

val of_name : string -> effect option
(** Inverse of {!name} — shard result files store effects by name. *)

val paper_row : effect -> string
