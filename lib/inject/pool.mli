(** Fixed-size [Domain] worker pool over an integer work range.

    Built on stdlib [Domain]/[Mutex] only.  Items [0, total) are handed to
    workers in contiguous chunks claimed from a shared cursor; each worker
    runs its own initialisation once (worker-local simulators, scratch
    buffers) and then processes items with the handler it returned.
    Because the caller decides where each item's result lands (typically
    [results.(i) <- ...]), the output is independent of scheduling. *)

val run :
  ?progress:(int -> int -> unit) ->
  ?should_stop:(unit -> bool) ->
  ?chunk:int ->
  workers:int ->
  total:int ->
  (int -> int -> unit) ->
  unit
(** [run ~workers ~total body] processes every item in [0, total).

    [body wid] runs once per worker (worker ids [0, workers)) and returns
    the item handler; with [workers = 1] (or [total <= chunk]) everything
    runs inline in the calling domain with [wid = 0] — no domains are
    spawned.

    [progress] is called as [f completed total], serialized under the pool
    mutex and rate-limited to at most one call per ~1% of [total] (plus a
    final tick at the end state).  It must not raise.

    [should_stop] is polled before each chunk claim (outside the mutex);
    once it returns true no further chunks are handed out and workers
    drain.  The predicate must be monotone — once true, always true.
    In-flight chunks still finish, so more items than strictly necessary
    may complete; the caller decides which prefix of results to keep.

    [chunk] (default 16) is the {e maximum} number of consecutive items
    claimed at a time.  Actual claims shrink with the remaining work —
    roughly [remaining / (workers * 8)], at least 1 — so short campaigns
    and the tail of long (or early-stopped) ones stay load-balanced
    instead of one worker dragging a final oversized chunk alone.

    If a worker raises, the pool stops handing out work, joins every
    domain, and re-raises the first exception in the caller with its
    backtrace; remaining items are left unprocessed.  Completed items are
    unaffected. *)
