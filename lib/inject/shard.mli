(** Deterministic shard planning and merging for distributed campaigns.

    A sharded campaign splits a fault-index space [0, total) into
    contiguous ranges ("shards").  Each shard is simulated independently
    — by another domain pool, another process, or another invocation
    days later — and its per-fault verdicts are persisted as one JSONL
    file plus a small manifest.  Because every per-fault verdict is a
    pure function of the fault bit (never of scheduling, worker count or
    shard boundaries), folding the shard results back together in index
    order reconstructs a campaign bit-identical to the single-process
    run over the same fault list.

    The planner is deterministic: [plan ~total ~shards] always produces
    the same ranges, so a resumed run re-plans, diffs the plan against
    the completed-shard manifests on disk, and only simulates what is
    missing. *)

type range = {
  sh_id : int;  (** shard index, dense from 0 *)
  sh_lo : int;  (** first fault index (inclusive) *)
  sh_hi : int;  (** last fault index (exclusive) *)
}

val plan : total:int -> shards:int -> range array
(** Split [0, total) into at most [shards] contiguous ranges whose sizes
    differ by at most one, in ascending index order.  Fewer ranges come
    back when [total < shards] (never an empty range).  Deterministic:
    a pure function of the two integers.  Raises [Invalid_argument] on
    a non-positive [shards] or negative [total]. *)

val ranges_missing : total:int -> done_ids:(int -> bool) -> shards:int -> range list
(** Re-plan and keep only the ranges whose id is not yet done — the
    resume diff.  [done_ids] is typically membership in the completed
    manifests of a {!Workqueue} directory. *)

(** {1 Per-fault result lines}

    One compact JSON object per fault, in fault-index order within each
    shard.  Concatenating the shard files in shard order yields the
    canonical campaign result stream, byte-identical however the work
    was split. *)

val result_to_line : index:int -> Campaign.fault_result -> string
val result_of_line : string -> (int * Campaign.fault_result, string) result
(** Round-trips everything except [forensics] (sharded runs do not
    collect forensic records; the field comes back [None]). *)

(** {1 Shard manifests} *)

type manifest = {
  sm_id : int;
  sm_lo : int;
  sm_hi : int;
  sm_wrong : int;  (** wrong answers within the range *)
  sm_stats : Campaign.engine_stats;
  sm_wall_ns : int;  (** wall time of the shard's injection loop *)
  sm_busy_ns : int;  (** summed worker busy time of the shard *)
  sm_setup_ns : int;  (** summed worker setup time of the shard *)
  sm_owner : int;  (** pid of the worker that completed the shard *)
  sm_fingerprint : string;
      (** job fingerprint the shard was simulated under; a resume with a
          different fingerprint must refuse to reuse it *)
}

val manifest_to_json : manifest -> Tmr_obs.Json.t
val manifest_of_json : Tmr_obs.Json.t -> (manifest, string) result

val manifest_of_campaign :
  range -> fingerprint:string -> owner:int -> Campaign.t -> manifest
(** Summarise a campaign that ran exactly the range's faults. *)

(** {1 Merging} *)

val merge :
  design:string ->
  total:int ->
  procs:int ->
  wall_ns:int ->
  (manifest * (int * Campaign.fault_result) array) list ->
  Campaign.t
(** Fold completed shards into one campaign.  The shards must tile
    [0, total) exactly (no gap, no overlap — [Invalid_argument]
    otherwise) and each result's index must lie in its shard's range.
    [results] land at their fault index, so the merged array is
    bit-identical to the single-process campaign over the same fault
    list; [wrong] and [stats] are the sums; [wall_ns] is the
    coordinator's wall clock and [procs] the process count, from which
    {!Campaign.utilization} reports fleet utilization (the shards'
    busy + setup time over [procs * wall_ns]). *)
