module Logic = Tmr_logic.Logic
module Netlist = Tmr_netlist.Netlist
module Netsim = Tmr_netlist.Netsim
module Bitstream = Tmr_arch.Bitstream
module Impl = Tmr_pnr.Impl
module Extract = Tmr_fabric.Extract
module Fsim = Tmr_fabric.Fsim
module Fsim_batch = Tmr_fabric.Fsim_batch
module Bitdb = Tmr_arch.Bitdb
module Device = Tmr_arch.Device

type stimulus = {
  cycles : int;
  inputs : (string * int array) list;
}

type outcome =
  | Silent
  | Wrong_answer

type fault_result = {
  bit : int;
  outcome : outcome;
  effect : Classify.effect;
  first_error_cycle : int;
  detect_cycle : int;
      (** first cycle an in-circuit disagreement flag fired, [-1] = never
          (always [-1] on designs without detection voters) *)
  forensics : Forensics.t option;  (** None when collection was off *)
}

(* Four-way detected-vs-silent verdict taxonomy: the functional outcome
   crossed with whether the design's own detection logic flagged the
   upset.  [Silent_wrong] is the silent-data-corruption (SDC) class —
   the design answered wrongly and its voters never noticed. *)
type verdict =
  | Silent_correct
  | Detected_corrected
  | Detected_wrong
  | Silent_wrong

let verdict_of r =
  match (r.outcome, r.detect_cycle >= 0) with
  | Silent, false -> Silent_correct
  | Silent, true -> Detected_corrected
  | Wrong_answer, true -> Detected_wrong
  | Wrong_answer, false -> Silent_wrong

let verdict_name = function
  | Silent_correct -> "silent_correct"
  | Detected_corrected -> "detected_corrected"
  | Detected_wrong -> "detected_wrong"
  | Silent_wrong -> "silent_wrong"

type engine_stats = {
  skipped : int;
  patched : int;
  rerouted : int;
  rebuilt : int;
  diffed : int;
  converged : int;
  batched : int;
}

type t = {
  design : string;
  requested : int;
  injected : int;
  wrong : int;
  results : fault_result array;
  workers : int;
  stats : engine_stats;
  wall_ns : int;
  busy_ns : int array;
  setup_ns : int array;
}

type progress = {
  p_completed : int;
  p_total : int;
  p_wrong : int;
}

let no_stats =
  {
    skipped = 0;
    patched = 0;
    rerouted = 0;
    rebuilt = 0;
    diffed = 0;
    converged = 0;
    batched = 0;
  }

let inject_utilization t =
  if t.wall_ns <= 0 || t.workers <= 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 t.busy_ns)
    /. (float_of_int t.workers *. float_of_int t.wall_ns)

let utilization t =
  if t.wall_ns <= 0 || t.workers <= 0 then 0.0
  else
    float_of_int
      (Array.fold_left ( + ) 0 t.busy_ns + Array.fold_left ( + ) 0 t.setup_ns)
    /. (float_of_int t.workers *. float_of_int t.wall_ns)

(* Per-plan-path fault latency: the four distributions are the engine's
   cost model (silent ≈ ns, patch ≈ µs, reroute ≈ 10µs, rebuild ≈ ms) and
   drift in any of them is a perf regression even when the mean hides it. *)
let m_fault_silent = Tmr_obs.Metrics.histogram "campaign.fault_ns.silent"
let m_fault_patch = Tmr_obs.Metrics.histogram "campaign.fault_ns.patch"
let m_fault_reroute = Tmr_obs.Metrics.histogram "campaign.fault_ns.reroute"
let m_fault_rebuild = Tmr_obs.Metrics.histogram "campaign.fault_ns.rebuild"
let m_fault_diff = Tmr_obs.Metrics.histogram "campaign.fault_ns.diff"

(* Amortised per-fault latency of the bit-parallel batch engine (batch
   wall time / lanes executed), directly comparable to fault_ns.diff. *)
let m_fault_batch = Tmr_obs.Metrics.histogram "campaign.fault_ns.batch"

(* Batch-engine accounting: lanes executed word-parallel, the lane count
   of each executed batch (occupancy — near the width when cone grouping
   packs well), and faults that planned batchable but fell back to the
   scalar engine (overlay ineligible or batch declined). *)
let m_batch_lanes = Tmr_obs.Metrics.counter "campaign.batch_lanes"
let m_batch_occupancy = Tmr_obs.Metrics.histogram "campaign.batch_occupancy"
let m_batch_scalar = Tmr_obs.Metrics.counter "campaign.batch_scalar"

(* Cycle at which a differentially-simulated fault provably converged
   back to the baseline; the distribution shows how much of the stimulus
   the early exit saves. *)
let m_converge = Tmr_obs.Metrics.histogram "campaign.diff_converge_cycle"

(* Latency-to-error distribution: at which stimulus cycle wrong-answer
   faults first disagree with the golden reference. *)
let m_first_error = Tmr_obs.Metrics.histogram "campaign.first_error_cycle"

(* In-circuit detection observability (campaigns whose design carries a
   detecting voter): the four-way verdict split, the detection latency
   distribution (cycles from first internal divergence — when forensics
   recorded one — to the first disagreement flag), and the headline SDC
   rate of the last campaign. *)
let m_det_silent_correct =
  Tmr_obs.Metrics.counter "campaign.detection.silent_correct"
let m_det_corrected =
  Tmr_obs.Metrics.counter "campaign.detection.detected_corrected"
let m_det_wrong = Tmr_obs.Metrics.counter "campaign.detection.detected_wrong"
let m_det_silent_wrong =
  Tmr_obs.Metrics.counter "campaign.detection.silent_wrong"
let m_det_latency =
  Tmr_obs.Metrics.histogram "campaign.detection.latency_cycles"
let m_sdc_rate = Tmr_obs.Metrics.gauge "campaign.detection.sdc_rate"
let m_busy = Tmr_obs.Metrics.counter "campaign.worker_busy_ns"
let m_setup = Tmr_obs.Metrics.counter "campaign.worker_setup_ns"
let m_wall = Tmr_obs.Metrics.gauge "campaign.wall_ns"
let m_util = Tmr_obs.Metrics.gauge "campaign.worker_utilization"

let fault_hist = function
  | Fsim.Path_silent -> m_fault_silent
  | Fsim.Path_patch -> m_fault_patch
  | Fsim.Path_reroute -> m_fault_reroute
  | Fsim.Path_rebuild -> m_fault_rebuild
  | Fsim.Path_diff -> m_fault_diff

let add_stats a b =
  {
    skipped = a.skipped + b.skipped;
    patched = a.patched + b.patched;
    rerouted = a.rerouted + b.rerouted;
    rebuilt = a.rebuilt + b.rebuilt;
    diffed = a.diffed + b.diffed;
    converged = a.converged + b.converged;
    batched = a.batched + b.batched;
  }

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

let golden_outputs nl stimulus =
  List.iter
    (fun (port, samples) ->
      if Array.length samples < stimulus.cycles then
        invalid_arg (Printf.sprintf "Campaign: port %S has too few samples" port))
    stimulus.inputs;
  let sim = Netsim.create nl in
  Netsim.reset sim;
  let ports = Netlist.output_ports nl in
  let record =
    List.map
      (fun (port, bits) ->
        (port, Array.make_matrix stimulus.cycles (Array.length bits) Logic.X))
      ports
  in
  for cycle = 0 to stimulus.cycles - 1 do
    List.iter
      (fun (port, samples) -> Netsim.set_input sim port samples.(cycle))
      stimulus.inputs;
    Netsim.eval sim;
    List.iter
      (fun (port, matrix) ->
        let bits = Netsim.output_bits sim port in
        Array.blit bits 0 matrix.(cycle) 0 (Array.length bits))
      record;
    Netsim.clock sim
  done;
  record

(* The DUT's physical pads for a base input port: the port itself on an
   unprotected design, or its three domain copies on a TMR design. *)
let dut_input_wires impl port =
  let mapped = impl.Impl.mapped in
  let has name = List.mem_assoc name (Netlist.input_ports mapped) in
  let port_wires name =
    let bits = Netlist.find_input_port mapped name in
    Array.init (Array.length bits) (Impl.input_pad_wire impl name)
  in
  if has port then [ port_wires port ]
  else begin
    let copies =
      List.init Tmr_core.Tmr.domains (Tmr_core.Tmr.redundant_port port)
    in
    List.iter
      (fun c ->
        if not (has c) then
          invalid_arg (Printf.sprintf "Campaign: DUT has no input port %S" c))
      copies;
    List.map port_wires copies
  end

let dut_output_wires impl port =
  let bits = Netlist.find_output_port impl.Impl.mapped port in
  Array.init (Array.length bits) (Impl.output_pad_wire impl port)

(* Resolved physical IO of one simulator: pad-node sets per input port,
   (watch nodes, golden matrix) per output port.  Resolving once per
   simulator — instead of once per fault, as [run_dut] used to — keeps
   hash lookups out of the steady-state fault loop entirely. *)
type io = {
  io_ins : (int array list * int array) list;
  io_outs : (int array * Logic.t array array) list;
  io_dets : int array list;
      (* in-circuit detection flag nodes, one array per detect port;
         expected all-zero on the fault-free device *)
}

(* Sequential-stopping monitor.  Results land in arbitrary order, but the
   stopping decision must be a function of the fault *prefix* in index
   order, or the stop point would depend on scheduling.  So: a flag per
   fault, a prefix cursor advanced under a mutex one index at a time, and
   the CI test evaluated at every prefix length exactly once.  The first
   prefix length that satisfies the rule becomes the stop index — the
   same number a sequential run would compute. *)
type monitor = {
  mon_mutex : Mutex.t;
  mon_flags : Bytes.t;  (* '\000' pending, '\001' silent, '\002' wrong *)
  mutable mon_prefix : int;  (* completed prefix length *)
  mutable mon_wrong : int;  (* wrong answers within the prefix *)
  mon_stop : int Atomic.t;  (* stop index; max_int = keep going *)
  mon_rule : Tmr_obs.Stats.stop_rule;
}

let monitor_note m i wrong =
  Mutex.lock m.mon_mutex;
  Bytes.set m.mon_flags i (if wrong then '\002' else '\001');
  let total = Bytes.length m.mon_flags in
  while
    m.mon_prefix < total && Bytes.get m.mon_flags m.mon_prefix <> '\000'
  do
    if Bytes.get m.mon_flags m.mon_prefix = '\002' then
      m.mon_wrong <- m.mon_wrong + 1;
    m.mon_prefix <- m.mon_prefix + 1;
    if
      Atomic.get m.mon_stop = max_int
      && Tmr_obs.Stats.should_stop m.mon_rule ~n:m.mon_prefix ~k:m.mon_wrong
    then Atomic.set m.mon_stop m.mon_prefix
  done;
  Mutex.unlock m.mon_mutex

(* Pool work units: one fault on the scalar engine, or a batch of fault
   indices for the bit-parallel engine (at most [batch_width] of them). *)
type unit_work =
  | Single of int
  | Batch of int array

(* Structural grouping key for batch packing: faults whose fanout cones
   are likely to coincide share a key, so their union cone (what the
   batch engine actually walks) stays close to each individual cone.
   Config bits of one LUT/FF bel share that bel; routing bits share the
   destination wire of the pip they control.  Grouping is an efficiency
   heuristic only — correctness never depends on it, since the batch
   engine evaluates the union cone exactly. *)
let group_key dev db bit =
  match Bitdb.resource db bit with
  | Bitdb.Lut_bit (b, _)
  | Bitdb.Ff_init b
  | Bitdb.Out_sel b
  | Bitdb.Ce_inv b
  | Bitdb.Sr_inv b
  | Bitdb.In_inv (b, _) -> (4 * b) + 0
  | Bitdb.Pip p -> (4 * dev.Device.pip_dst.(p)) + 1
  | Bitdb.Pad_enable p | Bitdb.Pad_cfg (p, _) -> (4 * p) + 2

let run_body ?progress ?workers ?(cone_skip = true) ?(diff = true)
    ?(forensics = false) ?stop_at_ci ?(batch_width = 64) ~name ~impl ~golden
    ~stimulus ~faults () =
  if batch_width <> 0 && batch_width <> 32 && batch_width <> 64 then
    invalid_arg "Campaign.run: batch_width must be 0, 32 or 64";
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  (* a registered forensics sink implies collection, like tracing *)
  let forensics = forensics || Forensics.enabled () in
  (* The batch engine has no forensic instrumentation, and sequential
     stopping needs per-fault completion order; both force the scalar
     engine, as does running without the differential tape or without
     fault planning. *)
  let batch_width =
    if forensics || stop_at_ci <> None || (not diff) || not cone_skip then 0
    else batch_width
  in
  let fattr =
    if forensics then
      Some
        (Tmr_obs.Trace.with_span "forensics_attrib" (fun () ->
             Forensics.attrib_of_impl impl))
    else None
  in
  let golden_ref =
    Tmr_obs.Trace.with_span "golden" (fun () -> golden_outputs golden stimulus)
  in
  (* physical IO map — shared read-only across workers *)
  let input_map =
    List.map
      (fun (port, samples) -> (dut_input_wires impl port, samples))
      stimulus.inputs
  in
  let output_map =
    List.map
      (fun (port, matrix) -> (port, dut_output_wires impl port, matrix))
      golden_ref
  in
  (* In-circuit detection flags: the detecting voter's pairwise
     disagreement ports, when the implemented design carries them.
     Their pad wires ride at the END of [watch_outputs] with an
     all-zero expectation; the engines treat the trailing [ndetect]
     watch entries as detection observables and keep simulating past a
     functional error until the flag verdict resolves (and vice
     versa).  Designs without detection ports get [ndetect = 0] and
     the historical behaviour, bit for bit. *)
  let detect_map =
    List.filter_map
      (fun port ->
        if List.mem_assoc port (Netlist.output_ports impl.Impl.mapped) then
          Some (port, dut_output_wires impl port)
        else None)
      Tmr_core.Voter.detect_ports
  in
  let ndetect =
    List.fold_left (fun n (_, w) -> n + Array.length w) 0 detect_map
  in
  let watch_outputs =
    Array.concat
      (List.map (fun (_, wires, _) -> wires) output_map
      @ List.map snd detect_map)
  in
  let dev = impl.Impl.dev and db = impl.Impl.db in
  let golden_bits = impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream in
  (* Scan the image once; workers clone the derived state ({!Extract.copy})
     instead of re-extracting 1.4M bits each. *)
  let golden_ex =
    Tmr_obs.Trace.with_span "extract" (fun () ->
        Extract.create dev db (Bitstream.copy golden_bits))
  in
  let new_extract () = Extract.copy golden_ex in
  let resolve_io sim =
    {
      io_ins =
        List.map
          (fun (wire_sets, samples) ->
            (List.map (Fsim.pad_nodes sim) wire_sets, samples))
          input_map;
      io_outs =
        List.map
          (fun (_, wires, matrix) -> (Fsim.watch_nodes sim wires, matrix))
          output_map;
      io_dets =
        List.map (fun (_, wires) -> Fsim.watch_nodes sim wires) detect_map;
    }
  in
  let drive sim io c =
    List.iter
      (fun (node_sets, samples) ->
        let v = samples.(c) in
        List.iter
          (fun nodes ->
            Array.iteri
              (fun i n ->
                Fsim.set_node sim n (Logic.of_bool ((v asr i) land 1 = 1)))
              nodes)
          node_sets)
      io.io_ins
  in
  (* Run the DUT through the stimulus; return the first cycle where any
     functional output bit disagrees with the golden reference (or -1)
     paired with the first cycle an in-circuit detection flag left zero
     (or -1).  With detection flags present the run continues past a
     functional error until the flag verdict also resolves — detection
     latency is an observable, not a side effect of when we stopped. *)
  let run_dut sim io =
    Fsim.reset sim;
    let error_cycle = ref (-1) in
    let detect_cycle = ref (-1) in
    let det_pending () = io.io_dets <> [] && !detect_cycle < 0 in
    let cycle = ref 0 in
    while (!error_cycle < 0 || det_pending ()) && !cycle < stimulus.cycles do
      let c = !cycle in
      drive sim io c;
      Fsim.eval sim;
      if !error_cycle < 0 then begin
        let ok =
          List.for_all
            (fun (nodes, matrix) ->
              let expected = matrix.(c) in
              let n = Array.length nodes in
              let rec check i =
                i >= n
                || (Logic.equal (Fsim.node_value sim nodes.(i)) expected.(i)
                    && check (i + 1))
              in
              check 0)
            io.io_outs
        in
        if not ok then error_cycle := c
      end;
      if det_pending () then begin
        let fired =
          List.exists
            (Array.exists (fun n1 ->
                 not (Logic.equal (Fsim.node_value sim n1) Logic.Zero)))
            io.io_dets
        in
        if fired then detect_cycle := c
      end;
      if !error_cycle < 0 || det_pending () then Fsim.clock sim;
      incr cycle
    done;
    (!error_cycle, !detect_cycle)
  in
  (* The fault-free per-cycle value of every node, for the differential
     engine: recorded once per worker, amortised over all its faults. *)
  let record_tape sim io =
    let tape =
      Fsim.tape_create ~nnodes:(Fsim.num_nodes sim) ~cycles:stimulus.cycles
    in
    Fsim.reset sim;
    for c = 0 to stimulus.cycles - 1 do
      drive sim io c;
      Fsim.eval sim;
      Fsim.tape_record tape sim ~cycle:c;
      Fsim.clock sim
    done;
    tape
  in
  (* Golden output matrix flattened per cycle, in [watch_outputs] order:
     the differential engine's cone-aware output check indexes it by
     flat watch position. *)
  let expected_flat =
    let det_zeros = Array.make ndetect Logic.Zero in
    Array.init stimulus.cycles (fun c ->
        Array.concat
          (List.map (fun (_, _, m) -> m.(c)) output_map @ [ det_zeros ]))
  in
  (* baseline: the un-faulted DUT must match the golden device *)
  let check_baseline sim io =
    match run_dut sim io with
    | -1, -1 -> ()
    | -1, d ->
        failwith
          (Printf.sprintf
             "Campaign %s: fault-free DUT raises an in-circuit detection \
              flag at cycle %d"
             name d)
    | c, _ ->
        (* pinpoint the first disagreeing output bit for the message *)
        let detail =
          List.find_map
            (fun (port, wires, matrix) ->
              let expected = matrix.(c) in
              let n = Array.length wires in
              let rec scan i =
                if i >= n then None
                else
                  let got = Fsim.read sim wires.(i) in
                  if not (Logic.equal got expected.(i)) then
                    Some
                      (Printf.sprintf "port %S bit %d: expected %c, got %c"
                         port i
                         (Logic.to_char expected.(i))
                         (Logic.to_char got))
                  else scan (i + 1)
              in
              scan 0)
            output_map
        in
        failwith
          (Printf.sprintf
             "Campaign %s: fault-free DUT disagrees with golden device at \
              cycle %d (%s)"
             name c
             (Option.value detail ~default:"no differing bit re-found"))
  in
  let total = Array.length faults in
  let dummy =
    { bit = -1; outcome = Silent; effect = Classify.Other_effect;
      first_error_cycle = -1; detect_cycle = -1; forensics = None }
  in
  let results = Array.make total dummy in
  (* Batch schedule: one planning pass over the (un-flipped) golden
     extract classifies every fault; patch- and reroute-planned faults
     group by {!group_key} and pack, in first-index order, into batches
     of at most [batch_width] lanes.  Silent and rebuild faults — and
     everything when batching is off — stay scalar singles.  The
     schedule only affects which engine runs each fault, never its
     verdict, so results are independent of it. *)
  let units =
    if batch_width = 0 then Array.init total (fun i -> Single i)
    else
      Tmr_obs.Trace.with_span "batch_plan" (fun () ->
          let pex = new_extract () in
          let pws = Fsim.make_workspace dev in
          let _psim = Fsim.build ~ws:pws pex ~watch_outputs in
          let pcone = Fsim.snapshot_cone pws in
          let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 1024 in
          let order = ref [] in
          let singles = ref [] in
          for i = 0 to total - 1 do
            match Fsim.plan_fault pcone pex faults.(i) with
            | Fsim.Path_patch | Fsim.Path_reroute ->
                let k = group_key dev db faults.(i) in
                (match Hashtbl.find_opt groups k with
                | Some g -> g := i :: !g
                | None ->
                    Hashtbl.add groups k (ref [ i ]);
                    order := k :: !order)
            | _ -> singles := i :: !singles
          done;
          let units = ref [] in
          let buf = Array.make batch_width 0 in
          let nbuf = ref 0 in
          let flush () =
            if !nbuf = 1 then units := Single buf.(0) :: !units
            else if !nbuf > 1 then
              units := Batch (Array.sub buf 0 !nbuf) :: !units;
            nbuf := 0
          in
          (* pack neighbouring keys together: bel and wire indices are
             spatially local, so adjacent keys drive overlapping fanout
             cones and the batch engine walks a tighter union cone *)
          List.iter
            (fun k ->
              List.iter
                (fun i ->
                  buf.(!nbuf) <- i;
                  incr nbuf;
                  if !nbuf = batch_width then flush ())
                (List.rev !(Hashtbl.find groups k)))
            (List.sort compare !order);
          flush ();
          List.iter (fun i -> units := Single i :: !units) !singles;
          Array.of_list (List.rev !units))
  in
  (* fault-level completion count for the progress line — the pool only
     counts units, whose sizes vary from 1 to [batch_width] faults *)
  let faults_done = Atomic.make 0 in
  let monitor =
    Option.map
      (fun rule ->
        {
          mon_mutex = Mutex.create ();
          mon_flags = Bytes.make total '\000';
          mon_prefix = 0;
          mon_wrong = 0;
          mon_stop = Atomic.make max_int;
          mon_rule = rule;
        })
      stop_at_ci
  in
  (* running wrong-answer count for the live progress line; display-only,
     so a moment of slack against [completed] is fine *)
  let wrong_live = Atomic.make 0 in
  let stats_per_worker = Array.make workers no_stats in
  (* per-worker injection and setup time; each cell is written by its
     owner only, and Domain.join publishes it to the caller *)
  let busy_ns = Array.make workers 0 in
  let setup_ns = Array.make workers 0 in
  let worker wid =
    let t_setup = Tmr_obs.Clock.now_ns () in
    (* worker-local simulator state: own bitstream copy, own extract, own
       workspace, plus the golden cone snapshot for the fast paths *)
    let ex = new_extract () in
    let ws = Fsim.make_workspace dev in
    let scratch = Fsim.make_scratch () in
    let base = Fsim.build ~ws ex ~watch_outputs in
    let cone = Fsim.snapshot_cone ws in
    let base_io = resolve_io base in
    if wid = 0 then check_baseline base base_io;
    (* a derived simulator that kept the base IO tables resolves to the
       same node arrays — reuse them without re-hashing *)
    let io_for sim =
      if sim == base || Fsim.same_io base sim then base_io
      else resolve_io sim
    in
    let tape = if diff then Some (record_tape base base_io) else None in
    (* separate diff scratches per plan path: patch faults run on [base]
       whose successor CSR is then cached across the whole campaign,
       instead of being evicted by every interleaved reroute *)
    let dsc_patch = Fsim.make_dscratch () in
    let dsc_reroute = Fsim.make_dscratch () in
    let base_watch =
      Array.concat (List.map fst base_io.io_outs @ base_io.io_dets)
    in
    (* voter bels of the golden cone as simulation nodes, for the
       masked-at-voter verdict *)
    let voter_nodes =
      match fattr with
      | None -> Bytes.empty
      | Some a ->
          let nb = Bytes.make (Fsim.num_nodes base) '\000' in
          Array.iteri
            (fun bel isv ->
              if isv then begin
                let n = Fsim.cone_node_of_bel cone bel in
                if n >= 0 && n < Bytes.length nb then Bytes.set nb n '\001'
              end)
            a.Forensics.bel_voter;
          nb
    in
    let bump f = stats_per_worker.(wid) <- f stats_per_worker.(wid) in
    let note_converge cv =
      if cv >= 0 then begin
        bump (fun s -> { s with converged = s.converged + 1 });
        Tmr_obs.Metrics.observe m_converge cv
      end
    in
    (* The forensic record: structural attribution on every plan path;
       divergence fields from the diff scratch when the fault ran
       differentially.  [masked_at_voter]: the fault corrupted cone
       state yet stayed silent, and some voter in its fanout cone never
       left the baseline — the corruption was out-voted (as opposed to
       logically masked before reaching any voter). *)
    let forensic_of bit error_cycle dsc_opt =
      match fattr with
      | None -> None
      | Some a ->
          let f = Forensics.structural a bit in
          let f =
            match dsc_opt with
            | None -> f
            | Some dsc ->
                let d = Fsim.diff_forensics dsc in
                if not d.Fsim.df_collected then f
                else begin
                  let masked =
                    error_cycle < 0
                    && d.Fsim.df_diverged > 0
                    && Array.exists
                         (fun n ->
                           n < Bytes.length voter_nodes
                           && Bytes.get voter_nodes n <> '\000'
                           && not (Fsim.diff_node_diverged dsc n))
                         (Fsim.diff_cone dsc)
                  in
                  {
                    f with
                    Forensics.masked_at_voter = masked;
                    diverged = d.Fsim.df_diverged;
                    first_diverged_node = d.Fsim.df_first_node;
                    diverge_cycle = d.Fsim.df_first_cycle;
                    depth = d.Fsim.df_depth;
                    cone_nodes = d.Fsim.df_cone;
                  }
                end
          in
          Some f
    in
    let finish ?dsc ?(detect = -1) bit error_cycle =
      if error_cycle >= 0 then Tmr_obs.Metrics.observe m_first_error error_cycle;
      {
        bit;
        outcome = (if error_cycle >= 0 then Wrong_answer else Silent);
        effect = Classify.classify impl bit;
        first_error_cycle = error_cycle;
        detect_cycle = detect;
        forensics = forensic_of bit error_cycle dsc;
      }
    in
    (* returns the result and the path the engine actually took (a failed
       reroute executes as a rebuild and is reported as one) *)
    let inject bit =
      let plan =
        if cone_skip then Fsim.plan_fault cone ex bit else Fsim.Path_rebuild
      in
      match plan with
      | Fsim.Path_silent ->
          bump (fun s -> { s with skipped = s.skipped + 1 });
          (finish bit (-1), Fsim.Path_silent)
      | Fsim.Path_diff -> assert false (* never planned *)
      | Fsim.Path_patch ->
          bump (fun s -> { s with patched = s.patched + 1 });
          Extract.apply_bit_flip ex bit;
          Fun.protect
            ~finally:(fun () -> Extract.apply_bit_flip ex bit)
            (fun () ->
              match tape with
              | Some tape ->
                  bump (fun s -> { s with diffed = s.diffed + 1 });
                  let seed = Fsim.patch_node cone ex bit in
                  let err, cv, det =
                    Fsim.with_patch cone base ex bit (fun sim ->
                        Fsim.diff_run ~ndetect ~forensics ~scratch:dsc_patch
                          ~tape ~base ~sim ~seeds:(Fsim.Seed_node seed)
                          ~watch:base_watch ~base_watch
                          ~expected:expected_flat ())
                  in
                  note_converge cv;
                  (finish ~dsc:dsc_patch ~detect:det bit err, Fsim.Path_diff)
              | None ->
                  let err, det =
                    Fsim.with_patch cone base ex bit (fun sim ->
                        run_dut sim base_io)
                  in
                  (finish ~detect:det bit err, Fsim.Path_patch))
      | Fsim.Path_reroute | Fsim.Path_rebuild ->
          Extract.apply_bit_flip ex bit;
          Fun.protect
            ~finally:(fun () -> Extract.apply_bit_flip ex bit)
            (fun () ->
              let sim =
                match plan with
                | Fsim.Path_reroute -> Fsim.reroute ~scratch cone base ex bit
                | _ -> None
              in
              match sim with
              | Some sim -> (
                  bump (fun s -> { s with rerouted = s.rerouted + 1 });
                  match tape with
                  | Some tape ->
                      bump (fun s -> { s with diffed = s.diffed + 1 });
                      let watch =
                        if Fsim.same_io base sim then base_watch
                        else Fsim.watch_nodes sim watch_outputs
                      in
                      let err, cv, det =
                        Fsim.diff_run ~ndetect ~forensics ~scratch:dsc_reroute
                          ~tape ~base ~sim ~seeds:Fsim.Seed_derived ~watch
                          ~base_watch ~expected:expected_flat ()
                      in
                      note_converge cv;
                      (finish ~dsc:dsc_reroute ~detect:det bit err, Fsim.Path_diff)
                  | None ->
                      let err, det = run_dut sim (io_for sim) in
                      (finish ~detect:det bit err, Fsim.Path_reroute))
              | None ->
                  bump (fun s -> { s with rebuilt = s.rebuilt + 1 });
                  let sim = Fsim.build ~ws ex ~watch_outputs in
                  let err, det = run_dut sim (resolve_io sim) in
                  (finish ~detect:det bit err, Fsim.Path_rebuild))
    in
    let do_fault i =
      let bit = faults.(i) in
      let t0 = Tmr_obs.Clock.now_ns () in
      let r, path = inject bit in
      let dt = Tmr_obs.Clock.now_ns () - t0 in
      busy_ns.(wid) <- busy_ns.(wid) + dt;
      Tmr_obs.Metrics.observe (fault_hist path) dt;
      if Tmr_obs.Trace.enabled () then
        Tmr_obs.Trace.emit_complete
          ~args:
            [ ("bit", string_of_int bit); ("path", Fsim.path_name path) ]
          ~name:"fault" ~start_ns:t0 ~dur_ns:dt ();
      results.(i) <- r;
      let is_wrong = r.outcome = Wrong_answer in
      if is_wrong then ignore (Atomic.fetch_and_add wrong_live 1);
      ignore (Atomic.fetch_and_add faults_done 1);
      Option.iter (fun m -> monitor_note m i is_wrong) monitor
    in
    let batcher =
      if batch_width > 0 then
        Some (Fsim_batch.create base cone ~width:batch_width)
      else None
    in
    (* One batch: derive each lane's structural overlay against the base
       simulator (the extract is flipped only while the delta is taken),
       run every derivable lane word-parallel, and fan the per-lane
       verdicts back out as ordinary scalar-shaped results.  Lanes with
       no derivable overlay — and the whole batch when the union cone is
       ineligible — fall back to the scalar engine fault by fault. *)
    let do_batch idxs =
      match (batcher, tape) with
      | Some bt, Some tape ->
          let t0 = Tmr_obs.Clock.now_ns () in
          let succ_off, succ = Fsim_batch.csr bt in
          let bel_of = Fsim_batch.bel_of bt in
          let n = Array.length idxs in
          let deltas = Array.make n None in
          for j = 0 to n - 1 do
            let bit = faults.(idxs.(j)) in
            match Fsim.plan_fault cone ex bit with
            | (Fsim.Path_patch | Fsim.Path_reroute) as plan ->
                Extract.apply_bit_flip ex bit;
                Fun.protect
                  ~finally:(fun () -> Extract.apply_bit_flip ex bit)
                  (fun () ->
                    let d =
                      match plan with
                      | Fsim.Path_patch -> Some (Fsim.patch_delta cone ex bit)
                      | _ ->
                          Fsim.fault_delta ~scratch cone base ex bit ~succ_off
                            ~succ ~bel_of
                    in
                    match d with
                    | Some d -> deltas.(j) <- Some (plan, d)
                    | None -> ())
            | _ -> ()
          done;
          let lane_js =
            Array.of_seq
              (Seq.filter (fun j -> deltas.(j) <> None) (Seq.init n Fun.id))
          in
          let lanes =
            Array.map (fun j -> snd (Option.get deltas.(j))) lane_js
          in
          let verdicts =
            if Array.length lanes = 0 then None
            else
              Fsim_batch.run bt ~ndetect ~tape ~expected:expected_flat
                ~watch:base_watch ~lanes ()
          in
          (match verdicts with
          | Some vs ->
              let dt = Tmr_obs.Clock.now_ns () - t0 in
              busy_ns.(wid) <- busy_ns.(wid) + dt;
              let nl =
                Array.fold_left
                  (fun acc v -> if v <> None then acc + 1 else acc)
                  0 vs
              in
              if nl > 0 then begin
                Tmr_obs.Metrics.incr ~by:nl m_batch_lanes;
                Tmr_obs.Metrics.observe m_batch_occupancy nl;
                if Tmr_obs.Events.enabled () then
                  Tmr_obs.Events.publish
                    (Tmr_obs.Events.Batch_dispatched { design = name; lanes = nl });
                if Tmr_obs.Trace.enabled () then
                  Tmr_obs.Trace.emit_complete
                    ~args:[ ("lanes", string_of_int nl) ]
                    ~name:"batch" ~start_ns:t0 ~dur_ns:dt ()
              end;
              let per = dt / max 1 nl in
              (* each consumer-visible fault still gets its own trace
                 span: the batch interval is sliced into [nl] adjacent
                 child spans, so per-fault spans nest inside "batch"
                 and tooling that counts faults keeps working *)
              let ks = ref 0 in
              Array.iteri
                (fun k j ->
                  match vs.(k) with
                  | None ->
                      (* lane declined (its rewiring closed a
                         combinational loop): scalar fallback *)
                      deltas.(j) <- None
                  | Some v ->
                      let i = idxs.(j) in
                      let plan, _ = Option.get deltas.(j) in
                      bump (fun s ->
                          let s =
                            match plan with
                            | Fsim.Path_patch ->
                                { s with patched = s.patched + 1 }
                            | _ -> { s with rerouted = s.rerouted + 1 }
                          in
                          {
                            s with
                            diffed = s.diffed + 1;
                            batched = s.batched + 1;
                          });
                      note_converge v.Fsim_batch.bv_converge_cycle;
                      Tmr_obs.Metrics.observe m_fault_batch per;
                      if Tmr_obs.Trace.enabled () then begin
                        Tmr_obs.Trace.emit_complete
                          ~args:
                            [
                              ("bit", string_of_int faults.(i));
                              ("path", Fsim.path_name Fsim.Path_diff);
                            ]
                          ~name:"fault"
                          ~start_ns:(t0 + (!ks * per))
                          ~dur_ns:per ();
                        incr ks
                      end;
                      let r =
                        finish ~detect:v.Fsim_batch.bv_detect_cycle faults.(i)
                          v.Fsim_batch.bv_error_cycle
                      in
                      results.(i) <- r;
                      if r.outcome = Wrong_answer then
                        ignore (Atomic.fetch_and_add wrong_live 1);
                      ignore (Atomic.fetch_and_add faults_done 1))
                lane_js;
              for j = 0 to n - 1 do
                if deltas.(j) = None then begin
                  Tmr_obs.Metrics.incr m_batch_scalar;
                  do_fault idxs.(j)
                end
              done
          | None ->
              (* union cone ineligible (cyclic SCC / overlay cycle):
                 every lane runs scalar; the verdicts are identical
                 either way, only slower *)
              busy_ns.(wid) <- busy_ns.(wid) + (Tmr_obs.Clock.now_ns () - t0);
              Tmr_obs.Metrics.incr ~by:n m_batch_scalar;
              Array.iter do_fault idxs)
      | _ -> Array.iter do_fault idxs
    in
    setup_ns.(wid) <- Tmr_obs.Clock.now_ns () - t_setup;
    fun u ->
      match units.(u) with
      | Single i -> do_fault i
      | Batch idxs -> do_batch idxs
  in
  (* Snapshot the event-bus state once: a sink installed mid-run would
     otherwise see a campaign with no start event. *)
  let emit_events = Tmr_obs.Events.enabled () in
  let pool_progress =
    if Option.is_none progress && not emit_events then None
    else
      Some
        (fun _completed _total ->
          let completed = Atomic.get faults_done in
          let wrong = Atomic.get wrong_live in
          if emit_events then
            Tmr_obs.Events.publish
              (Tmr_obs.Events.Campaign_progress
                 { design = name; completed; total; wrong });
          match progress with
          | Some f ->
              f { p_completed = completed; p_total = total; p_wrong = wrong }
          | None -> ())
  in
  let should_stop =
    Option.map
      (fun m () -> Atomic.get m.mon_stop < max_int)
      monitor
  in
  if emit_events then
    Tmr_obs.Events.publish
      (Tmr_obs.Events.Campaign_started
         { design = name; faults = total; workers });
  let t_start = Tmr_obs.Clock.now_ns () in
  Tmr_obs.Trace.with_span
    ~args:
      [
        ("design", name);
        ("workers", string_of_int workers);
        ("faults", string_of_int total);
      ]
    "campaign"
    (fun () ->
      Pool.run ?progress:pool_progress ?should_stop ~workers
        ~total:(Array.length units) worker);
  let wall_ns = Tmr_obs.Clock.now_ns () - t_start in
  let busy_total = Array.fold_left ( + ) 0 busy_ns in
  let setup_total = Array.fold_left ( + ) 0 setup_ns in
  Tmr_obs.Metrics.incr ~by:busy_total m_busy;
  Tmr_obs.Metrics.incr ~by:setup_total m_setup;
  Tmr_obs.Metrics.set m_wall (float_of_int wall_ns);
  Tmr_obs.Metrics.set m_util
    (if wall_ns > 0 then
       float_of_int (busy_total + setup_total)
       /. (float_of_int workers *. float_of_int wall_ns)
     else 0.0);
  let stats = Array.fold_left add_stats no_stats stats_per_worker in
  (* CI stop: keep exactly the prefix that triggered the rule.  Chunks in
     flight at the stop may have completed faults past the index (that
     work shows in [stats]/[busy_ns]), but the kept results are the
     index-order prefix — bit-identical to a full campaign truncated at
     the same point, whatever the scheduling. *)
  let effective =
    match monitor with
    | Some m when Atomic.get m.mon_stop < max_int -> Atomic.get m.mon_stop
    | _ -> total
  in
  let results =
    if effective < total then Array.sub results 0 effective else results
  in
  let wrong =
    Array.fold_left
      (fun acc r -> if r.outcome = Wrong_answer then acc + 1 else acc)
      0 results
  in
  (* Verdict accounting over the kept prefix, aggregated post-hoc in the
     main thread: deterministic for a fixed fault list (workers racing
     atomic counters past a CI stop would overcount), and only on
     designs that actually carry detection logic.  Detection latency is
     measured from the fault's first recorded internal divergence (the
     forensic provenance) when available, else from injection. *)
  if ndetect > 0 then begin
    let n_sc = ref 0 and n_dc = ref 0 and n_dw = ref 0 and n_sw = ref 0 in
    Array.iter
      (fun r ->
        (match verdict_of r with
        | Silent_correct -> incr n_sc
        | Detected_corrected -> incr n_dc
        | Detected_wrong -> incr n_dw
        | Silent_wrong -> incr n_sw);
        if r.detect_cycle >= 0 then begin
          let from =
            match r.forensics with
            | Some f when f.Forensics.diverge_cycle >= 0 ->
                f.Forensics.diverge_cycle
            | _ -> 0
          in
          Tmr_obs.Metrics.observe m_det_latency (r.detect_cycle - from)
        end)
      results;
    Tmr_obs.Metrics.incr ~by:!n_sc m_det_silent_correct;
    Tmr_obs.Metrics.incr ~by:!n_dc m_det_corrected;
    Tmr_obs.Metrics.incr ~by:!n_dw m_det_wrong;
    Tmr_obs.Metrics.incr ~by:!n_sw m_det_silent_wrong;
    Tmr_obs.Metrics.set m_sdc_rate
      (if effective > 0 then float_of_int !n_sw /. float_of_int effective
       else 0.0);
    if emit_events then
      Tmr_obs.Events.publish
        (Tmr_obs.Events.Campaign_detection
           {
             design = name;
             silent_correct = !n_sc;
             detected_corrected = !n_dc;
             detected_wrong = !n_dw;
             silent_wrong = !n_sw;
           })
  end;
  if emit_events then begin
    Tmr_obs.Events.publish
      (Tmr_obs.Events.Plan_paths
         {
           design = name;
           silent = stats.skipped;
           patched = stats.patched;
           rerouted = stats.rerouted;
           rebuilt = stats.rebuilt;
           diffed = stats.diffed;
           converged = stats.converged;
           batched = stats.batched;
         });
    Tmr_obs.Events.publish
      (Tmr_obs.Events.Campaign_stopped
         { design = name; requested = total; injected = effective; wrong; wall_ns })
  end;
  (* stream the forensic records post-hoc in fault-index order: workers
     never write the sink, so the file is deterministic for a fixed
     fault list regardless of worker count or scheduling *)
  (match fattr with
  | Some a when Forensics.enabled () ->
      Array.iter
        (fun r ->
          match r.forensics with
          | Some f ->
              Forensics.emit ~design:name ~bit:r.bit
                ~effect:(Classify.name r.effect)
                ~wrong:(r.outcome = Wrong_answer)
                ~first_error_cycle:r.first_error_cycle a f
          | None -> ())
        results
  | _ -> ());
  { design = name; requested = total; injected = effective; wrong; results;
    workers; stats; wall_ns; busy_ns; setup_ns }

(* Liveness gauge for the /healthz endpoint: campaigns currently inside
   {!run} in this process.  Forked shard workers keep their own count —
   the probe answers for the process that serves the scrape. *)
let active = Atomic.make 0
let active_campaigns () = Atomic.get active

let run ?progress ?workers ?cone_skip ?diff ?forensics ?stop_at_ci
    ?batch_width ~name ~impl ~golden ~stimulus ~faults () =
  Atomic.incr active;
  Fun.protect
    ~finally:(fun () -> Atomic.decr active)
    (fun () ->
      run_body ?progress ?workers ?cone_skip ?diff ?forensics ?stop_at_ci
        ?batch_width ~name ~impl ~golden ~stimulus ~faults ())

let wrong_percent t =
  if t.injected = 0 then 0.0
  else 100.0 *. float_of_int t.wrong /. float_of_int t.injected

let ci ?confidence t =
  Tmr_obs.Stats.wilson ?confidence ~n:t.injected ~k:t.wrong ()

(* ------------------------------------------------------------------ *)
(* Detection taxonomy aggregation. *)

type detection_counts = {
  dc_silent_correct : int;
  dc_detected_corrected : int;
  dc_detected_wrong : int;
  dc_silent_wrong : int;
}

let detection_counts t =
  Array.fold_left
    (fun acc r ->
      match verdict_of r with
      | Silent_correct -> { acc with dc_silent_correct = acc.dc_silent_correct + 1 }
      | Detected_corrected ->
          { acc with dc_detected_corrected = acc.dc_detected_corrected + 1 }
      | Detected_wrong ->
          { acc with dc_detected_wrong = acc.dc_detected_wrong + 1 }
      | Silent_wrong -> { acc with dc_silent_wrong = acc.dc_silent_wrong + 1 })
    {
      dc_silent_correct = 0;
      dc_detected_corrected = 0;
      dc_detected_wrong = 0;
      dc_silent_wrong = 0;
    }
    t.results

let sdc_percent t =
  if t.injected = 0 then 0.0
  else
    100.0
    *. float_of_int (detection_counts t).dc_silent_wrong
    /. float_of_int t.injected

let detected_percent t =
  if t.injected = 0 then 0.0
  else
    let d = detection_counts t in
    100.0
    *. float_of_int (d.dc_detected_corrected + d.dc_detected_wrong)
    /. float_of_int t.injected

(* ------------------------------------------------------------------ *)
(* Forensic aggregation: the per-design numbers that explain Table 2's
   ordering — how many faults straddle redundancy domains, and how often
   the vote (rather than plain logic masking) absorbed a real upset. *)

type forensic_summary = {
  fs_faults : int;  (* faults carrying a forensic record *)
  fs_cross : int;  (* cross-domain faults *)
  fs_cross_wrong : int;  (* cross-domain among wrong answers *)
  fs_multi_part : int;  (* faults touching >= 2 voter partitions *)
  fs_voter_touch : int;  (* faults touching voter logic or voter nets *)
  fs_diverged : int;  (* faults with observed internal divergence *)
  fs_silent_diverged : int;  (* diverged yet silent *)
  fs_voter_masked : int;  (* silent-diverged absorbed at a voter *)
}

let forensic_summary t =
  let s =
    Array.fold_left
      (fun acc r ->
        match r.forensics with
        | None -> acc
        | Some f ->
            let wrong = r.outcome = Wrong_answer in
            {
              fs_faults = acc.fs_faults + 1;
              fs_cross = (acc.fs_cross + if f.Forensics.cross_domain then 1 else 0);
              fs_cross_wrong =
                (acc.fs_cross_wrong
                + if wrong && f.Forensics.cross_domain then 1 else 0);
              fs_multi_part =
                (acc.fs_multi_part
                + if Array.length f.Forensics.partitions >= 2 then 1 else 0);
              fs_voter_touch =
                (acc.fs_voter_touch + if f.Forensics.voter_touch then 1 else 0);
              fs_diverged =
                (acc.fs_diverged + if f.Forensics.diverged > 0 then 1 else 0);
              fs_silent_diverged =
                (acc.fs_silent_diverged
                + if (not wrong) && f.Forensics.diverged > 0 then 1 else 0);
              fs_voter_masked =
                (acc.fs_voter_masked
                + if f.Forensics.masked_at_voter then 1 else 0);
            })
      {
        fs_faults = 0;
        fs_cross = 0;
        fs_cross_wrong = 0;
        fs_multi_part = 0;
        fs_voter_touch = 0;
        fs_diverged = 0;
        fs_silent_diverged = 0;
        fs_voter_masked = 0;
      }
      t.results
  in
  if s.fs_faults = 0 then None else Some s

(* ------------------------------------------------------------------ *)
(* Machine-readable engine summary (tmrtool inject --json). *)

let summary_json t =
  let b = Buffer.create 512 in
  let i = ci t in
  Buffer.add_string b
    (Printf.sprintf
       "{\"design\":\"%s\",\"requested\":%d,\"injected\":%d,\"wrong\":%d,\"wrong_percent\":%.4f,\"ci\":{\"confidence\":0.95,\"lo\":%.6f,\"hi\":%.6f},\"workers\":%d,\"wall_ns\":%d,\"utilization\":%.4f,\"inject_utilization\":%.4f"
       (Tmr_obs.Jsonl.escape t.design)
       t.requested t.injected t.wrong (wrong_percent t) i.Tmr_obs.Stats.lo
       i.Tmr_obs.Stats.hi t.workers t.wall_ns (utilization t)
       (inject_utilization t));
  Buffer.add_string b
    (Printf.sprintf
       ",\"plan_paths\":{\"silent\":%d,\"patched\":%d,\"rerouted\":%d,\"rebuilt\":%d,\"diffed\":%d,\"converged\":%d,\"batched\":%d}"
       t.stats.skipped t.stats.patched t.stats.rerouted t.stats.rebuilt
       t.stats.diffed t.stats.converged t.stats.batched);
  (* wrong answers per structural effect class, Table 4 row order *)
  Buffer.add_string b ",\"wrong_by_effect\":{";
  List.iteri
    (fun i e ->
      let n =
        Array.fold_left
          (fun acc r ->
            if r.effect = e && r.outcome = Wrong_answer then acc + 1 else acc)
          0 t.results
      in
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%d" (Tmr_obs.Jsonl.escape (Classify.name e)) n))
    Classify.all;
  Buffer.add_char b '}';
  (* the four-way detected-vs-silent verdict split; the four counts
     always sum to [injected] *)
  (let d = detection_counts t in
   Buffer.add_string b
     (Printf.sprintf
        ",\"detection\":{\"silent_correct\":%d,\"detected_corrected\":%d,\"detected_wrong\":%d,\"silent_wrong\":%d,\"sdc_percent\":%.4f,\"detected_percent\":%.4f}"
        d.dc_silent_correct d.dc_detected_corrected d.dc_detected_wrong
        d.dc_silent_wrong (sdc_percent t) (detected_percent t)));
  (match forensic_summary t with
  | None -> Buffer.add_string b ",\"forensics\":null"
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"forensics\":{\"faults\":%d,\"cross_domain\":%d,\"cross_domain_wrong\":%d,\"multi_partition\":%d,\"voter_touch\":%d,\"diverged\":%d,\"silent_diverged\":%d,\"voter_masked\":%d}"
           s.fs_faults s.fs_cross s.fs_cross_wrong s.fs_multi_part
           s.fs_voter_touch s.fs_diverged s.fs_silent_diverged
           s.fs_voter_masked));
  Buffer.add_char b '}';
  Buffer.contents b
