(** Injection-coverage accounting: which part of the configuration memory
    a campaign actually exercised.

    A campaign samples its faults from the essential bits (the fault
    list), which are themselves a sliver of the device's configuration
    memory.  Rate estimates only generalize to the class mix the sample
    respected — the paper's §2 split (82.9 % routing / 7.4 % LUT /
    6.36 % customization / 0.46 % flip-flop) is the reference frame — so
    this module reports, per resource class: device bits, essential
    bits, and distinct injected bits; plus a frame × offset device-grid
    heatmap of essential vs. injected bit density for the eye. *)

type class_cov = {
  cc_class : Tmr_arch.Bitdb.bit_class;
  cc_device : int;  (** configuration bits of this class on the device *)
  cc_essential : int;  (** of those, in the DUT's fault list *)
  cc_injected : int;  (** of those, hit by the campaign (distinct bits) *)
}

type t = {
  total_bits : int;
  frames : int;
  frame_bits : int;
  essential : int;  (** fault-list size *)
  injected : int;  (** faults injected (with multiplicity) *)
  injected_distinct : int;
  classes : class_cov list;  (** routing, LUT, customization, FF order *)
  rows : int;  (** heatmap rows (frame-offset buckets) *)
  cols : int;  (** heatmap columns (frame buckets) *)
  grid_essential : int array array;  (** [rows][cols] essential-bit counts *)
  grid_injected : int array array;  (** [rows][cols] distinct injected bits *)
}

val of_faults : db:Tmr_arch.Bitdb.t -> faultlist:Faultlist.t -> faults:int array -> t
(** [faults] is the campaign's injected sample (possibly truncated by a
    CI stop); duplicates count once toward the distinct totals and the
    grids. *)

val to_json : t -> Tmr_obs.Json.t
(** Full coverage record: totals, per-class table, both grids. *)

val heatmap : t -> string
(** ASCII device grid, one character per (offset-bucket, frame-bucket)
    cell: [' '] no essential bits, ['.'] essential but nothing injected,
    ['1'..'9'] injected decile of the cell's essential bits, ['#'] every
    essential bit hit. *)
