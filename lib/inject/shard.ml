module Json = Tmr_obs.Json

type range = {
  sh_id : int;
  sh_lo : int;
  sh_hi : int;
}

let plan ~total ~shards =
  if shards <= 0 then invalid_arg "Shard.plan: shards must be positive";
  if total < 0 then invalid_arg "Shard.plan: negative total";
  let n = min shards total in
  let base = if n = 0 then 0 else total / n in
  let rem = if n = 0 then 0 else total mod n in
  Array.init n (fun i ->
      (* the first [rem] shards carry one extra fault *)
      let lo = (i * base) + min i rem in
      let hi = lo + base + (if i < rem then 1 else 0) in
      { sh_id = i; sh_lo = lo; sh_hi = hi })

let ranges_missing ~total ~done_ids ~shards =
  Array.to_list (plan ~total ~shards)
  |> List.filter (fun r -> not (done_ids r.sh_id))

(* ------------------------------------------------------------------ *)
(* Per-fault result lines.  One compact JSON object per fault; the
   concatenation over all shards in index order is the canonical result
   stream the CI byte-diffs across process counts. *)

let outcome_name = function
  | Campaign.Silent -> "silent"
  | Campaign.Wrong_answer -> "wrong_answer"

let result_to_line ~index (r : Campaign.fault_result) =
  Printf.sprintf
    "{\"index\":%d,\"bit\":%d,\"outcome\":\"%s\",\"effect\":\"%s\",\"first_error_cycle\":%d,\"detect_cycle\":%d}"
    index r.Campaign.bit
    (outcome_name r.Campaign.outcome)
    (Tmr_obs.Jsonl.escape (Classify.name r.Campaign.effect))
    r.Campaign.first_error_cycle r.Campaign.detect_cycle

let ( let* ) r f = Result.bind r f

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let result_of_line line =
  let* j = Json.parse line in
  let* index = field "index" Json.int j in
  let* bit = field "bit" Json.int j in
  let* outcome_s = field "outcome" Json.str j in
  let* effect_s = field "effect" Json.str j in
  let* first_error_cycle = field "first_error_cycle" Json.int j in
  (* absent on result lines written before the detection taxonomy
     existed: resumed campaigns keep their old spools readable *)
  let detect_cycle =
    Option.value ~default:(-1) (Option.bind (Json.member "detect_cycle" j) Json.int)
  in
  let* outcome =
    match outcome_s with
    | "silent" -> Ok Campaign.Silent
    | "wrong_answer" -> Ok Campaign.Wrong_answer
    | s -> Error (Printf.sprintf "unknown outcome %S" s)
  in
  let* effect =
    match Classify.of_name effect_s with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "unknown effect %S" effect_s)
  in
  Ok
    ( index,
      {
        Campaign.bit;
        outcome;
        effect;
        first_error_cycle;
        detect_cycle;
        forensics = None;
      } )

(* ------------------------------------------------------------------ *)
(* Shard manifests. *)

type manifest = {
  sm_id : int;
  sm_lo : int;
  sm_hi : int;
  sm_wrong : int;
  sm_stats : Campaign.engine_stats;
  sm_wall_ns : int;
  sm_busy_ns : int;
  sm_setup_ns : int;
  sm_owner : int;
  sm_fingerprint : string;
}

let manifest_to_json m =
  let i n = Json.Num (float_of_int n) in
  Json.Obj
    [
      ("id", i m.sm_id);
      ("lo", i m.sm_lo);
      ("hi", i m.sm_hi);
      ("wrong", i m.sm_wrong);
      ( "stats",
        Json.Obj
          [
            ("skipped", i m.sm_stats.Campaign.skipped);
            ("patched", i m.sm_stats.Campaign.patched);
            ("rerouted", i m.sm_stats.Campaign.rerouted);
            ("rebuilt", i m.sm_stats.Campaign.rebuilt);
            ("diffed", i m.sm_stats.Campaign.diffed);
            ("converged", i m.sm_stats.Campaign.converged);
            ("batched", i m.sm_stats.Campaign.batched);
          ] );
      ("wall_ns", i m.sm_wall_ns);
      ("busy_ns", i m.sm_busy_ns);
      ("setup_ns", i m.sm_setup_ns);
      ("owner", i m.sm_owner);
      ("fingerprint", Json.Str m.sm_fingerprint);
    ]

let manifest_of_json j =
  let* sm_id = field "id" Json.int j in
  let* sm_lo = field "lo" Json.int j in
  let* sm_hi = field "hi" Json.int j in
  let* sm_wrong = field "wrong" Json.int j in
  let* stats = field "stats" Option.some j in
  let* skipped = field "skipped" Json.int stats in
  let* patched = field "patched" Json.int stats in
  let* rerouted = field "rerouted" Json.int stats in
  let* rebuilt = field "rebuilt" Json.int stats in
  let* diffed = field "diffed" Json.int stats in
  let* converged = field "converged" Json.int stats in
  let* batched = field "batched" Json.int stats in
  let* sm_wall_ns = field "wall_ns" Json.int j in
  let* sm_busy_ns = field "busy_ns" Json.int j in
  let* sm_setup_ns = field "setup_ns" Json.int j in
  let* sm_owner = field "owner" Json.int j in
  let* sm_fingerprint = field "fingerprint" Json.str j in
  Ok
    {
      sm_id;
      sm_lo;
      sm_hi;
      sm_wrong;
      sm_stats =
        {
          Campaign.skipped;
          patched;
          rerouted;
          rebuilt;
          diffed;
          converged;
          batched;
        };
      sm_wall_ns;
      sm_busy_ns;
      sm_setup_ns;
      sm_owner;
      sm_fingerprint;
    }

let manifest_of_campaign r ~fingerprint ~owner (c : Campaign.t) =
  {
    sm_id = r.sh_id;
    sm_lo = r.sh_lo;
    sm_hi = r.sh_hi;
    sm_wrong = c.Campaign.wrong;
    sm_stats = c.Campaign.stats;
    sm_wall_ns = c.Campaign.wall_ns;
    sm_busy_ns = Array.fold_left ( + ) 0 c.Campaign.busy_ns;
    sm_setup_ns = Array.fold_left ( + ) 0 c.Campaign.setup_ns;
    sm_owner = owner;
    sm_fingerprint = fingerprint;
  }

(* ------------------------------------------------------------------ *)
(* Merging. *)

let no_stats =
  {
    Campaign.skipped = 0;
    patched = 0;
    rerouted = 0;
    rebuilt = 0;
    diffed = 0;
    converged = 0;
    batched = 0;
  }

let add_stats (a : Campaign.engine_stats) (b : Campaign.engine_stats) =
  {
    Campaign.skipped = a.Campaign.skipped + b.Campaign.skipped;
    patched = a.Campaign.patched + b.Campaign.patched;
    rerouted = a.Campaign.rerouted + b.Campaign.rerouted;
    rebuilt = a.Campaign.rebuilt + b.Campaign.rebuilt;
    diffed = a.Campaign.diffed + b.Campaign.diffed;
    converged = a.Campaign.converged + b.Campaign.converged;
    batched = a.Campaign.batched + b.Campaign.batched;
  }

let merge ~design ~total ~procs ~wall_ns shards =
  let shards =
    List.sort (fun (a, _) (b, _) -> compare a.sm_lo b.sm_lo) shards
  in
  (* the shards must tile [0, total) exactly *)
  let edge =
    List.fold_left
      (fun expect (m, _) ->
        if m.sm_lo <> expect then
          invalid_arg
            (Printf.sprintf
               "Shard.merge: shard %d covers [%d,%d) but [%d,...) is next \
                uncovered"
               m.sm_id m.sm_lo m.sm_hi expect);
        m.sm_hi)
      0 shards
  in
  if edge <> total then
    invalid_arg
      (Printf.sprintf "Shard.merge: shards cover [0,%d) of %d faults" edge
         total);
  let dummy =
    {
      Campaign.bit = -1;
      outcome = Campaign.Silent;
      effect = Classify.Other_effect;
      first_error_cycle = -1;
      detect_cycle = -1;
      forensics = None;
    }
  in
  let results = Array.make total dummy in
  let filled = Bytes.make total '\000' in
  List.iter
    (fun (m, rs) ->
      if Array.length rs <> m.sm_hi - m.sm_lo then
        invalid_arg
          (Printf.sprintf
             "Shard.merge: shard %d holds %d results for range [%d,%d)"
             m.sm_id (Array.length rs) m.sm_lo m.sm_hi);
      Array.iter
        (fun (i, r) ->
          if i < m.sm_lo || i >= m.sm_hi then
            invalid_arg
              (Printf.sprintf
                 "Shard.merge: shard %d result index %d outside [%d,%d)"
                 m.sm_id i m.sm_lo m.sm_hi);
          if Bytes.get filled i <> '\000' then
            invalid_arg
              (Printf.sprintf "Shard.merge: duplicate result index %d" i);
          Bytes.set filled i '\001';
          results.(i) <- r)
        rs)
    shards;
  let wrong =
    Array.fold_left
      (fun acc r ->
        if r.Campaign.outcome = Campaign.Wrong_answer then acc + 1 else acc)
      0 results
  in
  let manifest_wrong = List.fold_left (fun a (m, _) -> a + m.sm_wrong) 0 shards in
  if wrong <> manifest_wrong then
    invalid_arg
      (Printf.sprintf
         "Shard.merge: manifests claim %d wrong answers, results hold %d"
         manifest_wrong wrong);
  let stats =
    List.fold_left (fun a (m, _) -> add_stats a m.sm_stats) no_stats shards
  in
  let busy = List.fold_left (fun a (m, _) -> a + m.sm_busy_ns) 0 shards in
  let setup = List.fold_left (fun a (m, _) -> a + m.sm_setup_ns) 0 shards in
  let procs = max 1 procs in
  (* a resumed run's coordinator wall excludes the earlier invocations'
     work, so floor the wall at the summed shard walls spread over the
     processes — keeps the utilization ratio meaningful (<= ~1) *)
  let shard_wall =
    List.fold_left (fun a (m, _) -> a + m.sm_wall_ns) 0 shards
  in
  let wall_ns = max wall_ns ((shard_wall + procs - 1) / procs) in
  {
    Campaign.design;
    requested = total;
    injected = total;
    wrong;
    results;
    workers = procs;
    stats;
    wall_ns;
    busy_ns = [| busy |];
    setup_ns = [| setup |];
  }
