(** Fault Injection Manager (paper §4, module 2).

    For each fault in the list: flip the bit in the configuration image,
    re-derive the circuit the fabric now implements, run the test pattern,
    and compare every output bit of every clock cycle against the golden
    device (a netlist-level simulation of the unprotected design).  Any
    difference — including an unknown value — classifies the fault as a
    Wrong Answer; the fault is then reverted (scrubbing) and the next one
    is injected.

    Campaigns run on a {!Pool} of OCaml domains: each worker owns a
    private bitstream copy, extractor and simulator workspace, and writes
    its results into the shared array by fault index, so the result is
    byte-identical to a sequential run regardless of scheduling.  Inside
    each worker, cone-aware fast paths ({!Tmr_fabric.Fsim.plan_fault})
    skip, patch or locally reroute faults instead of rebuilding the
    simulator per fault; the fast paths are exact, so they change only the
    throughput, never the results.

    On top of the fast paths, the differential engine (default) records
    one fault-free baseline tape per worker and then simulates each patch
    or reroute fault only inside the fanout cone of its faulted nodes
    ({!Tmr_fabric.Fsim.diff_run}): non-cone inputs are replayed from the
    tape, unchanged cone nodes are skipped event-driven, and a fault is
    abandoned at the first cycle boundary where it provably converged
    back to the baseline.  Also exact — bit-identical results, only
    faster.

    On top of the differential engine, the bit-parallel batch engine
    ({!Tmr_fabric.Fsim_batch}, default on) packs up to 64 patch/reroute
    faults with structurally close fanout cones into the bit lanes of
    one word-parallel cone walk, amortising the event-driven evaluation
    across the whole batch.  Still exact: per-fault verdicts are
    bit-identical to the scalar engines. *)

type stimulus = {
  cycles : int;
  inputs : (string * int array) list;
      (** per base input port, one sample per cycle.  A TMR DUT's
          triplicated copies of the port are driven identically. *)
}

type outcome =
  | Silent
  | Wrong_answer

type fault_result = {
  bit : int;
  outcome : outcome;
  effect : Classify.effect;
  first_error_cycle : int;  (** -1 when silent *)
  detect_cycle : int;
      (** first cycle an in-circuit detection flag (a detecting voter's
          pairwise disagreement output) fired; [-1] when it never did —
          always [-1] on designs without detection voters *)
  forensics : Forensics.t option;
      (** per-fault forensic record; [None] when collection was off.
          Collection never changes [bit]/[outcome]/[effect]/
          [first_error_cycle] — results are bit-identical either way. *)
}

(** Four-way detected-vs-silent verdict taxonomy: the functional outcome
    crossed with whether the design's own detection logic flagged the
    upset.  [Silent_wrong] is the silent-data-corruption (SDC) class —
    a wrong answer the circuit never noticed. *)
type verdict =
  | Silent_correct  (** output correct, no flag — masked or out-voted *)
  | Detected_corrected  (** output correct, flag fired — TMR repaired it *)
  | Detected_wrong  (** output wrong, but the flag fired *)
  | Silent_wrong  (** output wrong, no flag — SDC *)

val verdict_of : fault_result -> verdict
val verdict_name : verdict -> string

type engine_stats = {
  skipped : int;  (** classified [Silent] without building or simulating *)
  patched : int;  (** simulated by patching the base simulator in place *)
  rerouted : int;  (** simulated on a locally rewired copy of the base *)
  rebuilt : int;  (** full per-fault simulator rebuild *)
  diffed : int;
      (** patch/reroute faults executed on the differential engine
          (subset of [patched + rerouted]) *)
  converged : int;
      (** differential faults abandoned early after provably converging
          back to the baseline (subset of [diffed]) *)
  batched : int;
      (** differential faults executed word-parallel by the bit-sliced
          batch engine ({!Tmr_fabric.Fsim_batch}), rather than one
          scalar diff each (subset of [diffed]) *)
}

type t = {
  design : string;
  requested : int;  (** length of the fault list the campaign was given *)
  injected : int;
      (** faults whose results were kept: [requested], or the CI stop
          index when [?stop_at_ci] fired ([= Array.length results]) *)
  wrong : int;
  results : fault_result array;
  workers : int;  (** worker count the campaign actually used *)
  stats : engine_stats;
      (** covers all work the engine performed — on a CI-stopped campaign
          that can exceed [injected] (in-flight chunks past the stop) *)
  wall_ns : int;  (** wall-clock time of the injection loop *)
  busy_ns : int array;
      (** per-worker time spent injecting (length [workers]); the gap to
          [workers * wall_ns] is per-worker setup ({!field-setup_ns}),
          claim contention and pool ramp-down *)
  setup_ns : int array;
      (** per-worker one-time initialisation (bitstream clone, simulator
          build, baseline tape, batch engine) before the first fault.
          Counted separately from [busy_ns] so the injection throughput
          stays comparable across engines, but included in
          {!utilization} — on fast engines the setup dominates the
          worker's wall time and ignoring it made utilization
          under-report (the 0.19 "parallel-batched" artifact). *)
}

type progress = {
  p_completed : int;  (** faults completed so far *)
  p_total : int;  (** faults requested *)
  p_wrong : int;
      (** wrong answers observed so far — read from a live counter, so it
          may trail [p_completed] by the few faults still in flight *)
}
(** Snapshot handed to the progress callback: enough to render a live
    wrong-answer rate ± CI next to the bar. *)

val utilization : t -> float
(** [(sum busy_ns + sum setup_ns) / (workers * wall_ns)] in [0,1] — how
    busy the average worker was while the campaign ran, counting both
    one-time setup and injection work.  The remainder is claim
    contention plus pool ramp-down. *)

val inject_utilization : t -> float
(** [sum busy_ns / (workers * wall_ns)] — injection work only, setup
    excluded.  This is what {!utilization} used to report; on the
    batched engine it is dominated by how small the per-fault work got
    relative to the fixed per-worker setup, so read it as an engine
    speed signal, not as idle workers. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val dut_input_wires : Tmr_pnr.Impl.t -> string -> int array list
(** Physical PadIn wires for a base input port: one wire set on an
    unprotected design, three (one per redundancy domain) on a TMR one. *)

val dut_output_wires : Tmr_pnr.Impl.t -> string -> int array

val golden_outputs :
  Tmr_netlist.Netlist.t ->
  stimulus ->
  (string * Tmr_logic.Logic.t array array) list
(** Reference response of a netlist: for each output port, the per-cycle
    bit values sampled combinationally (before each clock edge). *)

val run :
  ?progress:(progress -> unit) ->
  ?workers:int ->
  ?cone_skip:bool ->
  ?diff:bool ->
  ?forensics:bool ->
  ?stop_at_ci:Tmr_obs.Stats.stop_rule ->
  ?batch_width:int ->
  name:string ->
  impl:Tmr_pnr.Impl.t ->
  golden:Tmr_netlist.Netlist.t ->
  stimulus:stimulus ->
  faults:int array ->
  unit ->
  t
(** [workers] defaults to {!default_workers}; [cone_skip] (default [true])
    enables the cone-aware fast paths — disabling it forces a full rebuild
    per fault (the legacy engine, useful as a differential oracle).
    [diff] (default [true]) runs patch/reroute faults on the differential
    engine (baseline tape + cone-restricted event-driven evaluation +
    convergence early-exit); disabling it replays the full DUT per fault.

    [forensics] (default [false]) attaches a {!Forensics.t} record to
    every result: structural domain/partition attribution on all plan
    paths, divergence observations on differentially-executed faults.  A
    registered {!Forensics} sink implies collection; the records are then
    also streamed as JSONL, in fault-index order, after the injection
    loop finishes (so the file is deterministic for a fixed fault list).
    Collection is read-only: outcomes are bit-identical with it on or
    off.

    [stop_at_ci] enables sequential stopping: the campaign terminates as
    soon as the Wilson CI of the wrong-answer rate over the completed
    fault *prefix* (in fault-index order) narrows to the rule's half
    width.  The stop index is a pure function of the fault list — never
    of worker count or scheduling — so a stopped campaign's [results]
    are bit-identical to the same full campaign truncated at
    [injected].  Workers finish in-flight chunks before draining; that
    overshoot appears in [stats] and [busy_ns] but not in [results].

    [batch_width] (default 64) packs patch/reroute faults that share a
    structural cone key (same LUT/FF bel, same pip destination wire)
    into lanes of the bit-parallel batch engine, up to [batch_width]
    faults per machine word per cone walk; 0 (or [tmrtool]'s
    [--no-batch]) disables batching and runs every differential fault
    on the scalar engine.  Only 0, 32 and 64 are accepted
    ([Invalid_argument] otherwise).  Batching is exact — per-fault
    verdicts are bit-identical to the scalar engine — and is forced off
    when it cannot be ([forensics], [stop_at_ci], [diff = false] or
    [cone_skip = false]).  Lanes the batch engine declines fall back to
    the scalar engine automatically.

    [progress] is called with a {!progress} snapshot from worker
    domains, serialized and rate-limited by the pool.

    Raises [Failure] if the un-faulted DUT does not match the golden
    device (an implementation-flow bug, not a fault); the message names
    the first disagreeing port, bit and expected/actual values. *)

val active_campaigns : unit -> int
(** Campaigns currently inside {!run} in this process — the liveness
    probe behind the exposition server's [/healthz] endpoint. *)

val wrong_percent : t -> float

val ci : ?confidence:float -> t -> Tmr_obs.Stats.interval
(** Wilson CI (default 95 %) on the campaign's wrong-answer rate. *)

(** {1 Detection taxonomy} *)

type detection_counts = {
  dc_silent_correct : int;
  dc_detected_corrected : int;
  dc_detected_wrong : int;
  dc_silent_wrong : int;
}
(** The four {!verdict} class sizes; they always sum to [injected]. *)

val detection_counts : t -> detection_counts

val sdc_percent : t -> float
(** Share of injected faults in the {!Silent_wrong} (SDC) class, in
    percent.  On designs without detection logic this equals
    {!wrong_percent} — every wrong answer is silent. *)

val detected_percent : t -> float
(** Share of injected faults whose detection flag fired (detected and
    corrected plus detected but wrong), in percent. *)

(** {1 Forensic aggregation} *)

type forensic_summary = {
  fs_faults : int;  (** faults carrying a forensic record *)
  fs_cross : int;  (** cross-domain faults (footprint spans >= 2 domains) *)
  fs_cross_wrong : int;  (** cross-domain among wrong answers *)
  fs_multi_part : int;  (** faults touching >= 2 voter partitions *)
  fs_voter_touch : int;  (** faults touching voter logic or voter nets *)
  fs_diverged : int;  (** faults with observed internal divergence *)
  fs_silent_diverged : int;  (** diverged internally yet stayed silent *)
  fs_voter_masked : int;  (** silent-diverged faults absorbed at a voter *)
}

val forensic_summary : t -> forensic_summary option
(** Aggregate over the campaign's forensic records; [None] when the
    campaign ran without forensics. *)

val summary_json : t -> string
(** One-line JSON engine summary: requested/injected/wrong/wrong_percent
    with its 95 % Wilson CI, worker utilization, plan-path breakdown,
    wrong answers per effect class, the four-way detection verdict split
    and the forensic aggregate (or [null]) — [tmrtool inject --json]. *)
