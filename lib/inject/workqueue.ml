module Json = Tmr_obs.Json

type t = { root : string }

let dir t = t.root

let subdirs = [ "todo"; "claims"; "done"; "results" ]

let mkdir_p path =
  let rec make p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      make (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make path

let create ~dir =
  mkdir_p dir;
  List.iter (fun d -> mkdir_p (Filename.concat dir d)) subdirs;
  { root = dir }

let path t parts = List.fold_left Filename.concat t.root parts
let id_name id = Printf.sprintf "%05d.json" id
let results_name id = Printf.sprintf "%05d.jsonl" id
let claim_name id pid = Printf.sprintf "%05d.pid-%d.json" id pid

(* Canonical per-worker telemetry paths inside the queue directory.
   Defined here so the forking parent (Service), the workers and any
   post-hoc reader (tests, CI) agree on the layout without threading
   paths around. *)
let spool_path t ~worker =
  Filename.concat t.root (Printf.sprintf "events-w%d.jsonl" worker)

let metrics_path t ~worker =
  Filename.concat t.root (Printf.sprintf "metrics-w%d.json" worker)

let trace_path t ~worker =
  Filename.concat t.root (Printf.sprintf "trace-w%d.jsonl" worker)

(* Atomic whole-file write: tmp in the same directory, then rename. *)
let write_file ~final body =
  let tmp = final ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc body);
  Sys.rename tmp final

let read_file p =
  let ic = open_in_bin p in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Job spec. *)

let job_path t = Filename.concat t.root "job.json"
let write_job t j = write_file ~final:(job_path t) (Json.to_string j ^ "\n")

let read_job t =
  if not (Sys.file_exists (job_path t)) then None
  else
    Some
      (try Json.parse (read_file (job_path t))
       with Sys_error e -> Error e)

(* ------------------------------------------------------------------ *)
(* Range files. *)

let range_to_json (r : Shard.range) =
  Json.Obj
    [
      ("id", Json.Num (float_of_int r.Shard.sh_id));
      ("lo", Json.Num (float_of_int r.Shard.sh_lo));
      ("hi", Json.Num (float_of_int r.Shard.sh_hi));
    ]

let range_of_json j =
  match
    ( Option.bind (Json.member "id" j) Json.int,
      Option.bind (Json.member "lo" j) Json.int,
      Option.bind (Json.member "hi" j) Json.int )
  with
  | Some sh_id, Some sh_lo, Some sh_hi -> Ok { Shard.sh_id; sh_lo; sh_hi }
  | _ -> Error "range file missing id/lo/hi"

(* ids present in a subdirectory; claim files parse the id prefix *)
let ids_in t sub =
  Array.fold_left
    (fun acc name ->
      match int_of_string_opt (String.sub name 0 (min 5 (String.length name))) with
      | Some id when String.length name >= 5 -> id :: acc
      | _ -> acc)
    []
    (Sys.readdir (path t [ sub ]))

let seed t ranges =
  let taken =
    List.concat_map (ids_in t) subdirs |> List.sort_uniq compare
  in
  let added = ref 0 in
  List.iter
    (fun (r : Shard.range) ->
      if not (List.mem r.Shard.sh_id taken) then begin
        write_file
          ~final:(path t [ "todo"; id_name r.Shard.sh_id ])
          (Json.to_string (range_to_json r) ^ "\n");
        incr added
      end)
    ranges;
  !added

let claim t ~pid =
  (* lowest id first: merged output order then matches plan order and the
     early shards (which gate resume progress) finish first *)
  let rec try_ids = function
    | [] -> None
    | id :: rest -> (
        let src = path t [ "todo"; id_name id ] in
        let dst = path t [ "claims"; claim_name id pid ] in
        match Unix.rename src dst with
        | () -> (
            match range_of_json (Json.parse_exn (read_file dst)) with
            | Ok r -> Some r
            | Error e -> failwith ("Workqueue.claim: " ^ e)
            | exception Failure e -> failwith ("Workqueue.claim: " ^ e))
        | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
            (* another worker won the rename race; take the next id *)
            try_ids rest)
  in
  try_ids (List.sort compare (ids_in t "todo"))

let complete t ~pid (r : Shard.range) ~lines ~manifest =
  let b = Buffer.create 4096 in
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    lines;
  write_file
    ~final:(path t [ "results"; results_name r.Shard.sh_id ])
    (Buffer.contents b);
  write_file
    ~final:(path t [ "done"; id_name r.Shard.sh_id ])
    (Json.to_string (Shard.manifest_to_json manifest) ^ "\n");
  (* the claim falls only after both artifacts are durable: a crash in
     between leaves the claim for reclaim, which re-runs the shard and
     harmlessly rewrites the same bytes *)
  try Sys.remove (path t [ "claims"; claim_name r.Shard.sh_id pid ])
  with Sys_error _ -> ()

let release t ~pid (r : Shard.range) =
  try
    Unix.rename
      (path t [ "claims"; claim_name r.Shard.sh_id pid ])
      (path t [ "todo"; id_name r.Shard.sh_id ])
  with Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* claim file name -> (id, pid) *)
let parse_claim name =
  match String.index_opt name '.' with
  | Some dot -> (
      let id = int_of_string_opt (String.sub name 0 dot) in
      let rest = String.sub name dot (String.length name - dot) in
      let pfx = ".pid-" and sfx = ".json" in
      if
        String.length rest > String.length pfx + String.length sfx
        && String.sub rest 0 (String.length pfx) = pfx
        && Filename.check_suffix rest sfx
      then
        let pid =
          int_of_string_opt
            (String.sub rest (String.length pfx)
               (String.length rest - String.length pfx - String.length sfx))
        in
        match (id, pid) with
        | Some id, Some pid -> Some (id, pid)
        | _ -> None
      else None)
  | None -> None

(* a zombie still answers kill(pid, 0) but will never complete its
   claim — when the parent died first (kill -9 of a whole process
   group) the worker can linger unreaped, so check its state too *)
let zombie pid =
  match
    let ic = open_in (Printf.sprintf "/proc/%d/stat" pid) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> input_line ic)
  with
  | line -> (
      (* state is the first field after the parenthesised command, which
         may itself contain ')' — scan from the right *)
      match String.rindex_opt line ')' with
      | Some i when i + 2 < String.length line -> line.[i + 2] = 'Z'
      | _ -> false)
  | exception Sys_error _ -> false

let alive pid =
  match Unix.kill pid 0 with
  | () -> not (zombie pid)
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true

let reclaim_orphans t =
  Array.fold_left
    (fun acc name ->
      match parse_claim name with
      | Some (id, pid) when not (alive pid) -> (
          match
            Unix.rename
              (path t [ "claims"; name ])
              (path t [ "todo"; id_name id ])
          with
          | () -> acc + 1
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> acc)
      | _ -> acc)
    0
    (Sys.readdir (path t [ "claims" ]))

(* ------------------------------------------------------------------ *)
(* Reading back. *)

let load_done t =
  let ids = List.sort compare (ids_in t "done") in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | id :: rest -> (
        let p = path t [ "done"; id_name id ] in
        match
          Result.bind (Json.parse (read_file p)) Shard.manifest_of_json
        with
        | Ok m -> go (m :: acc) rest
        | Error e -> Error (Printf.sprintf "%s: %s" p e)
        | exception Sys_error e -> Error e)
  in
  go [] ids

let read_results t (m : Shard.manifest) =
  let p = path t [ "results"; results_name m.Shard.sm_id ] in
  match read_file p with
  | exception Sys_error e -> Error e
  | body ->
      let lines =
        String.split_on_char '\n' body |> List.filter (fun l -> l <> "")
      in
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | l :: rest -> (
            match Shard.result_of_line l with
            | Ok r -> go (r :: acc) rest
            | Error e -> Error (Printf.sprintf "%s: %s" p e))
      in
      Result.bind (go [] lines) (fun rs ->
          let expect = m.Shard.sm_hi - m.Shard.sm_lo in
          if Array.length rs <> expect then
            Error
              (Printf.sprintf "%s: %d results for a %d-fault shard" p
                 (Array.length rs) expect)
          else Ok rs)

let pending t = List.length (ids_in t "todo") + List.length (ids_in t "claims")
