(** Simulator for whatever circuit a (possibly faulty) configuration
    actually implements.

    Built per fault from the {!Extract} state by walking backward from the
    watched output pads: wires collapse onto their single driver,
    multi-driven wires become resolution nodes (agreement or [X]), floating
    wires read [X], and fault-created combinational loops are iterated to
    their Kleene fixpoint.  Bels evaluate their (possibly corrupted) LUT
    table with pin-inversion muxes applied; registered bels expose the
    flip-flop, whose clock-enable and initialisation come from the
    configuration. *)

type t

type workspace
(** Reusable scratch arrays sized for one device; lets a fault-injection
    campaign build thousands of simulators without re-allocating. *)

val make_workspace : Tmr_arch.Device.t -> workspace

val build : ?ws:workspace -> Extract.t -> watch_outputs:int array -> t
(** [watch_outputs] are PadOut wires (the design's output pads).  The
    simulator covers exactly the logic cone observable from them. *)

val reset : t -> unit
(** Flip-flops to their configuration-load state (a scrub/reconfiguration
    boundary). *)

val set_pad : t -> int -> Tmr_logic.Logic.t -> unit
(** Drive a PadIn wire.  Ignored when the cone does not observe that pad. *)

val eval : t -> unit

val clock : t -> unit
(** Latch every flip-flop from the latest {!eval} (edge only). *)

val step : t -> unit
(** {!eval}, {!clock}, then {!eval} again. *)

val read : t -> int -> Tmr_logic.Logic.t
(** Value of a watched PadOut wire after the latest {!eval}/{!step}. *)

val watch_nodes : t -> int array -> int array
(** Node ids of watched PadOut wires.  Resolving once per simulator keeps
    the per-cycle IO loop free of hash lookups; read with {!node_value}. *)

val pad_nodes : t -> int array -> int array
(** Node ids of PadIn wires; [-1] when the cone does not observe a pad
    (driving it with {!set_node} is then a no-op, like {!set_pad}). *)

val node_value : t -> int -> Tmr_logic.Logic.t
(** Value of a node from {!watch_nodes} after the latest {!eval}. *)

val set_node : t -> int -> Tmr_logic.Logic.t -> unit
(** Drive a node from {!pad_nodes}; ignored when the id is [-1]. *)

val num_nodes : t -> int
(** Size of the collapsed simulation graph (diagnostics). *)

val has_comb_loop : t -> bool
(** True when the configuration contains a fault-induced combinational
    cycle (diagnostics for effect classification). *)

(** {1 Cone-aware fault fast paths}

    A fault-injection campaign builds one golden simulator, snapshots the
    observable cone it covered, and then uses {!plan_fault} to decide per
    fault bit whether a full rebuild is needed at all.  Every fast path is
    exact: it produces the same watched behaviour a rebuild would. *)

type cone
(** Snapshot of what the last {!build} through a workspace observed: the
    marked wires, the wire->node resolution, and the cone bels.  Valid for
    the simulator returned by that build; later builds reusing the same
    workspace do not invalidate an already-taken snapshot. *)

val snapshot_cone : workspace -> cone
(** Capture the cone of the most recent {!build} run with this workspace. *)

val cone_wire_count : cone -> int
val cone_bel_count : cone -> int

val cone_node_of_bel : cone -> int -> int
(** Node id the cone assigned to a device bel, [-1] when the bel is
    outside the cone.  Lets a campaign map structural attributes (TMR
    domain, voter-ness) computed per bel onto simulation nodes. *)

val cone_touches_bit : cone -> Extract.t -> int -> bool
(** Whether a configuration bit controls a resource adjacent to the cone
    (a pip with a cone endpoint, a cone bel's cell, a cone pad). *)

val cone_frames : cone -> Extract.t -> bool array
(** Per configuration frame: true when the frame holds at least one bit
    the cone reads ({!cone_touches_bit}).  One entry per {!Tmr_arch.Bitdb}
    frame. *)

type fault_path =
  | Path_silent
      (** the flip provably cannot change any watched output: classify
          without building or simulating *)
  | Path_patch
      (** cell-content change of an existing node: mutate the base
          simulator in place ({!with_patch}) *)
  | Path_reroute
      (** local graph repair: derive a simulator from the base one
          ({!reroute}) instead of rebuilding — routing changes,
          support-widening LUT bits, out_sel flips *)
  | Path_rebuild  (** anything unprovable: full {!build} *)
  | Path_diff
      (** execution outcome only (never returned by {!plan_fault}): a
          patch or reroute fault that ran on the differential engine
          ({!diff_run}) instead of a full DUT replay *)

val path_name : fault_path -> string

val plan_fault : cone -> Extract.t -> int -> fault_path
(** Decide against the golden (un-flipped) extract state how the flip of
    one bit can be handled. *)

val with_patch : cone -> t -> Extract.t -> int -> (t -> 'a) -> 'a
(** [with_patch cone base ex bit f] applies a [Path_patch] fault (already
    flipped in [ex]) to the base simulator in place, runs [f], and undoes
    the patch — also on exception. *)

type scratch
(** Caller-owned buffers for {!reroute}: one per worker lets every derived
    simulator reuse the same arrays, so the steady-state fault loop
    allocates almost nothing (under multiple domains every minor
    collection is a stop-the-world rendezvous). *)

val make_scratch : unit -> scratch

val reroute : scratch:scratch -> cone -> t -> Extract.t -> int -> t option
(** [reroute ~scratch cone base ex bit] derives the fault simulator for a
    [Path_reroute] bit (already flipped in [ex]): the affected electrical
    components are re-resolved and stale readers remapped on a copy of the
    base node graph, skipping the full cone walk.  [None] when the fault
    reaches resources the base cone never saw — fall back to {!build}.
    The returned simulator aliases the scratch buffers and is only valid
    until the next [reroute] with the same scratch. *)

val patch_node : cone -> Extract.t -> int -> int
(** The node whose cell content a [Path_patch] bit edits — the seed of
    its fanout cone for {!diff_run}. *)

val same_io : t -> t -> bool
(** Whether two simulators share their pad and watch wire->node tables
    physically (true for the base and any derived simulator {!reroute}
    did not watch-remap) — resolved pad/watch node arrays can then be
    reused as-is. *)

(** {1 Graph view and fault overlays}

    The bit-parallel batched engine ({!Fsim_batch}) evaluates many
    faults per machine word over the {e base} graph plus per-lane
    overlays, instead of materialising one derived simulator per
    fault.  These accessors expose the base graph read-only and turn a
    planned fault into such an overlay. *)

type view = {
  v_nnodes : int;
  v_kind : int array;  (** per node: one of the [kind_*] codes *)
  v_inputs : int array array;
      (** per node: input rows — 4 pins for bels ([-1] = unused),
          drivers for resolve nodes *)
  v_table : int array;
  v_inv : int array;
  v_ce_frozen : bool array;
  v_q_init : Tmr_logic.Logic.t array;
  v_nsccs : int;
  v_scc_off : int array;
  v_scc_nodes : int array;  (** evaluation order, grouped by SCC *)
  v_scc_cyclic : Bytes.t;  (** per SCC: ['\001'] when cyclic *)
}
(** Shares the simulator's arrays (no copy); treat as immutable. *)

val view : t -> view

val kind_constx : int
val kind_pad : int
val kind_bel_comb : int
val kind_bel_reg : int
val kind_resolve : int

val reader_csr : t -> int array * int array
(** [(off, succ)]: reverse CSR over [inputs] — the readers of node [n]
    are [succ.(off.(n)) .. succ.(off.(n+1)-1)].  Built once per worker
    for the batch engine (content patches never change the edge set). *)

val bel_map : cone -> t -> int array
(** Per node: the device bel whose output it is, [-1] otherwise (the
    inverse of {!cone_node_of_bel}). *)

type cell_patch =
  | Cp_table of int  (** replacement truth table *)
  | Cp_inv of int  (** replacement pin-inversion mask *)
  | Cp_qinit of Tmr_logic.Logic.t  (** replacement flip-flop init *)
  | Cp_ce of bool  (** replacement clock-enable freeze *)

type delta = {
  dl_cell : (int * cell_patch) option;  (** cell-content override *)
  dl_rows : (int * int array) array;
      (** existing nodes whose input row the fault replaces *)
  dl_extras : (int array * int array) array;
      (** appended resolve nodes, id [nnodes + index]:
          [(inputs, res_wires)] *)
}
(** One fault as an overlay over the base graph.  A lane's effective
    circuit is the base with these substitutions applied. *)

val patch_delta : cone -> Extract.t -> int -> delta
(** A [Path_patch] bit (already flipped in [ex]) as an overlay:
    mirrors {!with_patch}'s cell dispatch, never fails. *)

val fault_delta :
  scratch:scratch ->
  cone ->
  t ->
  Extract.t ->
  int ->
  succ_off:int array ->
  succ:int array ->
  bel_of:int array ->
  delta option
(** A [Path_reroute] bit (already flipped in [ex]) as an overlay: the
    affected components are re-resolved exactly as {!reroute} does, but
    only the changed rows are recorded — stale readers are found
    through the base {!reader_csr} ([succ_off]/[succ], with [bel_of]
    from {!bel_map}) instead of an O(n) scan.  [None] whenever
    {!reroute} would fall back to a rebuild, and additionally on
    [Out_sel] kind changes or an orphaned watch node (the batch engine
    shares kinds and watch resolution across lanes) — the caller runs
    those faults on the scalar engine. *)

(** {1 Differential fault simulation}

    Run the fault-free DUT once per worker, recording every node's
    per-cycle value on a {e baseline tape}; then simulate each fault
    only inside the static fanout cone of its faulted nodes, reading
    non-cone inputs from the tape, skipping cone nodes whose inputs did
    not change (event-driven), and abandoning the fault at the first
    cycle boundary where it provably converged back to the baseline. *)

type tape
(** Per-cycle values of every node of one simulator, 2-bit packed. *)

val tape_create : nnodes:int -> cycles:int -> tape
(** All values start as [Zero] (code 0); record or set before reading. *)

val tape_nnodes : tape -> int
val tape_cycles : tape -> int
val tape_set : tape -> cycle:int -> node:int -> Tmr_logic.Logic.t -> unit
val tape_get : tape -> cycle:int -> node:int -> Tmr_logic.Logic.t

val tape_get_u : tape -> int -> int -> Tmr_logic.Logic.t
(** [tape_get_u tape cycle node], unchecked: for per-cycle hot loops
    whose bounds are established once per fault ({!Fsim_batch}). *)

val tape_record : tape -> t -> cycle:int -> unit
(** Pack the simulator's current post-{!eval} values as [cycle]. *)

type dscratch
(** Caller-owned buffers for {!diff_run} (cone closure, successor CSR,
    dirty stamps, replay overlays): one per worker. *)

val make_dscratch : unit -> dscratch

type dseeds =
  | Seed_node of int  (** a [Path_patch] fault: {!patch_node} *)
  | Seed_derived
      (** a {!reroute}d simulator: seeds are every node whose cell
          content or pin wiring differs from the base, plus every
          appended node *)

val diff_run :
  ?ndetect:int ->
  forensics:bool ->
  scratch:dscratch ->
  tape:tape ->
  base:t ->
  sim:t ->
  seeds:dseeds ->
  watch:int array ->
  base_watch:int array ->
  expected:Tmr_logic.Logic.t array array ->
  unit ->
  int * int * int
(** [diff_run ~scratch ~tape ~base ~sim ~seeds ~watch ~base_watch
    ~expected] simulates the fault differentially against the baseline
    [tape] (recorded from [base], which must already match the golden
    [expected] watch matrix — [expected.(cycle).(i)] for watch node
    [watch.(i)], with [base_watch] the base simulator's resolution of
    the same wires).  [sim] is [base] itself under {!with_patch} or a
    {!reroute}d derivation.  Returns
    [(first_error_cycle, converge_cycle, first_detect_cycle)], each [-1]
    when absent; the result is bit-identical to a full DUT replay of
    [sim].  Scribbles over [sim]'s value/state arrays.

    [ndetect] (default 0) marks the last [ndetect] watch entries as
    {e detection} nodes (voter disagreement flags whose expected rows
    are all-Zero): a mismatch there sets [first_detect_cycle] instead of
    [first_error_cycle], and the run keeps simulating past a functional
    error until detection also resolves (fires, provably converges away,
    or the stimulus ends) — and vice versa.  With [ndetect = 0] the
    behaviour is exactly the historical two-result contract.

    With [~forensics:true] it additionally compares the settled
    cone against the tape every cycle, recording which nodes diverged
    from the baseline ({!diff_forensics}, {!diff_node_diverged}).  The
    scan is read-only with respect to simulation state: the returned
    cycles are bit-identical with forensics on or off. *)

(** {2 Divergence forensics} *)

type diff_forensics = {
  df_collected : bool;  (** last run had [~forensics:true] *)
  df_cone : int;  (** cone size (valid regardless of [df_collected]) *)
  df_seeds : int;
  df_frontier : int;
  df_diverged : int;  (** distinct cone nodes that left the baseline *)
  df_first_node : int;
      (** topologically-first diverging node on the first diverging
          cycle; [-1] when the fault never visibly diverged *)
  df_first_cycle : int;
  df_depth : int;
      (** max BFS distance (from the seed set) of any diverged node —
          how deep the corruption propagated structurally *)
}
(** Counters are [-1] when the last run did not collect forensics. *)

val diff_forensics : dscratch -> diff_forensics
(** Forensic summary of the last {!diff_run} with this scratch. *)

val diff_node_diverged : dscratch -> int -> bool
(** Whether a node diverged from the baseline during the last
    forensics-enabled {!diff_run} (false when forensics was off). *)

val diff_cone : dscratch -> int array
(** The cone (faulted nodes' fanout closure) computed by the last
    {!diff_run} with this scratch, in evaluation order (test hook). *)

val diff_cone_is_closed : dscratch -> t -> bool
(** Whether no node outside the last computed cone reads a cone node —
    the closure property the engine's soundness rests on (test hook). *)
