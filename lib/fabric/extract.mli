(** Derived view of a configuration image.

    Where the design tools go netlist -> bitstream, this module goes the
    other way: it maintains, for an arbitrary (possibly corrupted)
    bitstream, the electrical structure the fabric would actually realise —
    per-wire driver lists, per-bel LUT tables and mux settings, pad
    enables.  Fault injection flips one bit at a time through
    {!apply_bit_flip}, which updates the derived state incrementally (and
    is an involution, so applying it again reverts the fault). *)

type t

val create : Tmr_arch.Device.t -> Tmr_arch.Bitdb.t -> Tmr_arch.Bitstream.t -> t
(** Scans the whole image once.  The bitstream is captured by reference and
    mutated by {!apply_bit_flip}. *)

val copy : t -> t
(** Snapshot of the derived state, including a private copy of the
    bitstream — orders of magnitude cheaper than re-scanning the image
    with {!create}.  Campaign workers clone one golden extract each. *)

val device : t -> Tmr_arch.Device.t
val database : t -> Tmr_arch.Bitdb.t

val bit_is_set : t -> int -> bool
(** Current state of one configuration bit in the captured image. *)

val fanouts : t -> int -> int list
(** Destination wires of ON buffered pips leaving the given wire — the
    forward counterpart of {!drivers}, computed on demand from the device
    adjacency. *)

val apply_bit_flip : t -> int -> unit
(** Flip one configuration bit and update the derived state. *)

val drivers : t -> int -> int list
(** Wires currently driving the given wire through ON buffered pips. *)

val links : t -> int -> int list
(** Wires currently shorted to the given wire by ON pass-transistor pips;
    shorted wires form one electrical node. *)

val lut_table : t -> int -> int
val out_sel : t -> int -> bool
val ce_inv : t -> int -> bool
val in_inv_mask : t -> int -> int
val ff_init : t -> int -> Tmr_logic.Logic.t
(** Configuration-load state of the bel's flip-flop ([Ff_init] xor
    [Sr_inv]). *)

val pad_enabled : t -> int -> bool
