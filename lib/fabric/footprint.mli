(** Structural footprint of one configuration bit: the device resources
    (wires, bels, pads) a flip of that bit electrically touches,
    independent of any netlist knowledge.  The forensics layer maps this
    footprint onto TMR domains and voter partitions to attribute each
    fault to the redundancy structure it corrupts. *)

type t = {
  fp_wires : int array;  (** device wires touched (pip endpoints, pad wires) *)
  fp_bels : int array;  (** device bels whose cell configuration is edited *)
  fp_pads : int array;  (** device pads whose IO configuration is edited *)
}

val of_bit : Tmr_arch.Device.t -> Tmr_arch.Bitdb.t -> int -> t
(** Decode the bit's resource into its footprint.  A pip bit touches both
    endpoints (for a buffered pip the destination gains/loses the source
    as driver; for a pass pip the two wires are shorted/split), a bel
    cell bit touches exactly its bel, a pad bit touches the pad and its
    fabric wire. *)

val describe : Tmr_arch.Device.t -> t -> string
(** Human-readable one-line rendering ([explain] output). *)
