(** Value-representation backends for the fabric simulators.

    The fault engines share gate semantics (4-input LUTs with per-pin
    inversion, multi-driver resolution with a pessimistic glitch rule,
    3-valued Kleene logic) but differ in how a signal sample is
    represented:

    - {!Scalar} carries one fault per simulator as a plain
      {!Tmr_logic.Logic.t} — the representation of {!Fsim}'s full and
      differential engines;
    - {!Lanes} packs up to {!Lanes.word_bits} faults per machine word
      as "possibility planes" — the representation of {!Fsim_batch}.

    Both satisfy {!S}; the engines use the wider concrete interfaces
    below. *)

module type S = sig
  type t
  (** One packed signal sample (every lane's value of one node). *)

  val x : t
  val zero : t
  val one : t

  val broadcast : Tmr_logic.Logic.t -> t
  (** The sample carrying the scalar value in every lane. *)

  val equal : t -> t -> bool
end

module Scalar : sig
  include S with type t = Tmr_logic.Logic.t

  val logic_code : Tmr_logic.Logic.t -> int
  (** 2-bit packed code (Zero 0, One 1, X 2) — the baseline-tape
      representation. *)

  val code_logic : int -> Tmr_logic.Logic.t

  val lut_scan :
    Tmr_logic.Logic.t array -> int array -> int -> int -> int -> int
  (** [lut_scan values pins inv j acc] scans pins [j..3], packing the
      LUT index of the defined pins into bits 0-3 of [acc] and a mask
      of X pins into bits 4-7.  Unused pins ([< 0]) are skipped. *)

  val lut_x_const : int -> int -> int -> int -> int -> bool
  (** [lut_x_const table idx xmask s first]: is the table bit equal to
      [first] for every completion [s] of the X pins? *)

  val lut_of_acc : int -> int -> Tmr_logic.Logic.t
  (** Finish a {!lut_scan} accumulator against a truth table. *)

  val lut_eval :
    values:Tmr_logic.Logic.t array ->
    pins:int array ->
    table:int ->
    inv:int ->
    Tmr_logic.Logic.t

  val resolve_settle :
    Tmr_logic.Logic.t array ->
    int array ->
    int ->
    int ->
    Tmr_logic.Logic.t ->
    Tmr_logic.Logic.t
  (** Fold {!Tmr_logic.Logic.resolve} over drivers [i..len-1]. *)

  val resolve_glitch :
    Tmr_logic.Logic.t array ->
    int array ->
    int ->
    int ->
    Tmr_logic.Logic.t ->
    Tmr_logic.Logic.t
  (** Pessimistic skew rule: a settled fight still reads X this cycle
      if any driver transitioned (its [last] differs from the
      agreement). *)
end

module Lanes : sig
  type t = { h : int; l : int }
  (** Plane words: lane [i] is One on [(1,0)], Zero on [(0,1)], X on
      [(1,1)]; [(0,0)] is unreachable. *)

  val x : t
  val zero : t
  val one : t
  val broadcast : Tmr_logic.Logic.t -> t
  val equal : t -> t -> bool

  val word_bits : int
  (** 32 — plane words stay immediate integers everywhere, and two of
      them form a 64-lane batch. *)

  val full : int
  (** All-lanes mask, [2^word_bits - 1]. *)

  val broadcast_h : Tmr_logic.Logic.t -> int
  val broadcast_l : Tmr_logic.Logic.t -> int
  (** Plane words of {!broadcast}, for callers keeping H and L in
      separate flat arrays. *)

  val lane : h:int -> l:int -> int -> Tmr_logic.Logic.t
  (** Decode lane [i] of a plane pair. *)

  val mismatch : h:int -> l:int -> Tmr_logic.Logic.t -> int
  (** Mask of lanes whose value differs from the scalar [v]. *)

  val lut_planes : ph:int array -> pl:int array -> t1:int array -> t
  (** LUT over planes.  [ph]/[pl]: four per-pin plane words with any
      per-lane pin inversion already applied; an unused pin must be the
      constant-Zero planes [(0, full)].  [t1]: per minterm, the mask of
      lanes whose (possibly patched) truth table has that bit set.
      Equals the scalar LUT (including Kleene completion over X pins)
      lane by lane. *)

  val resolve_planes :
    n:int -> h:int array -> l:int array -> lh:int array -> ll:int array -> t
  (** Resolve [n] drivers given their current ([h]/[l]) and previous
      ([lh]/[ll]) plane words, with the scalar engine's pessimistic
      glitch rule folded in.  [n = 0] is X (matching the scalar
      engine). *)
end
