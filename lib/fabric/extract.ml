module Logic = Tmr_logic.Logic
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream

type t = {
  dev : Device.t;
  db : Bitdb.t;
  bs : Bitstream.t;
  drivers : int list array;  (* wire -> src wires of ON buffered pips into it *)
  links : int list array;  (* wire -> wires shorted to it by ON pass pips *)
  lut_tables : int array;  (* bel -> 16-bit table *)
  out_sels : bool array;
  ce_invs : bool array;
  sr_invs : bool array;
  ff_inits : bool array;
  in_invs : int array;  (* bel -> 4-bit pin inversion mask *)
  pad_enables : bool array;
}

let create dev db bs =
  let t =
    {
      dev;
      db;
      bs;
      drivers = Array.make dev.Device.nwires [];
      links = Array.make dev.Device.nwires [];
      lut_tables = Array.make dev.Device.nbels 0;
      out_sels = Array.make dev.Device.nbels false;
      ce_invs = Array.make dev.Device.nbels false;
      sr_invs = Array.make dev.Device.nbels false;
      ff_inits = Array.make dev.Device.nbels false;
      in_invs = Array.make dev.Device.nbels 0;
      pad_enables = Array.make dev.Device.npads false;
    }
  in
  for a = 0 to Bitstream.length bs - 1 do
    if Bitstream.get bs a then
      match Bitdb.resource db a with
      | Bitdb.Pip p ->
          let sw = dev.Device.pip_src.(p) and dw = dev.Device.pip_dst.(p) in
          if dev.Device.pip_bidir.(p) then begin
            t.links.(sw) <- dw :: t.links.(sw);
            t.links.(dw) <- sw :: t.links.(dw)
          end
          else t.drivers.(dw) <- sw :: t.drivers.(dw)
      | Bitdb.Lut_bit (b, idx) -> t.lut_tables.(b) <- t.lut_tables.(b) lor (1 lsl idx)
      | Bitdb.Ff_init b -> t.ff_inits.(b) <- true
      | Bitdb.Out_sel b -> t.out_sels.(b) <- true
      | Bitdb.Ce_inv b -> t.ce_invs.(b) <- true
      | Bitdb.Sr_inv b -> t.sr_invs.(b) <- true
      | Bitdb.In_inv (b, pin) -> t.in_invs.(b) <- t.in_invs.(b) lor (1 lsl pin)
      | Bitdb.Pad_enable pad -> t.pad_enables.(pad) <- true
      | Bitdb.Pad_cfg _ -> ()
  done;
  t

let copy t =
  {
    dev = t.dev;
    db = t.db;
    bs = Bitstream.copy t.bs;
    drivers = Array.copy t.drivers;
    links = Array.copy t.links;
    lut_tables = Array.copy t.lut_tables;
    out_sels = Array.copy t.out_sels;
    ce_invs = Array.copy t.ce_invs;
    sr_invs = Array.copy t.sr_invs;
    ff_inits = Array.copy t.ff_inits;
    in_invs = Array.copy t.in_invs;
    pad_enables = Array.copy t.pad_enables;
  }

let device t = t.dev
let database t = t.db
let bit_is_set t a = Bitstream.get t.bs a

let fanouts t w =
  (* ON buffered pips out of [w], as destination wires *)
  let out = t.dev.Device.wire_out.(w) in
  let acc = ref [] in
  Array.iter
    (fun p ->
      if (not t.dev.Device.pip_bidir.(p)) && t.dev.Device.pip_src.(p) = w then
        if Bitstream.get t.bs (Bitdb.pip_bit t.db p) then
          acc := t.dev.Device.pip_dst.(p) :: !acc)
    out;
  !acc

let apply_bit_flip t a =
  Bitstream.flip t.bs a;
  let now = Bitstream.get t.bs a in
  match Bitdb.resource t.db a with
  | Bitdb.Pip p ->
      let s = t.dev.Device.pip_src.(p) and d = t.dev.Device.pip_dst.(p) in
      let rec remove v = function
        | [] -> []
        | x :: rest -> if x = v then rest else x :: remove v rest
      in
      if t.dev.Device.pip_bidir.(p) then
        if now then begin
          t.links.(s) <- d :: t.links.(s);
          t.links.(d) <- s :: t.links.(d)
        end
        else begin
          t.links.(s) <- remove d t.links.(s);
          t.links.(d) <- remove s t.links.(d)
        end
      else if now then t.drivers.(d) <- s :: t.drivers.(d)
      else t.drivers.(d) <- remove s t.drivers.(d)
  | Bitdb.Lut_bit (b, idx) -> t.lut_tables.(b) <- t.lut_tables.(b) lxor (1 lsl idx)
  | Bitdb.Ff_init b -> t.ff_inits.(b) <- now
  | Bitdb.Out_sel b -> t.out_sels.(b) <- now
  | Bitdb.Ce_inv b -> t.ce_invs.(b) <- now
  | Bitdb.Sr_inv b -> t.sr_invs.(b) <- now
  | Bitdb.In_inv (b, pin) -> t.in_invs.(b) <- t.in_invs.(b) lxor (1 lsl pin)
  | Bitdb.Pad_enable pad -> t.pad_enables.(pad) <- now
  | Bitdb.Pad_cfg _ -> ()

let drivers t w = t.drivers.(w)
let links t w = t.links.(w)
let lut_table t b = t.lut_tables.(b)
let out_sel t b = t.out_sels.(b)
let ce_inv t b = t.ce_invs.(b)
let in_inv_mask t b = t.in_invs.(b)

let ff_init t b =
  Logic.of_bool (t.ff_inits.(b) <> t.sr_invs.(b))

let pad_enabled t pad = t.pad_enables.(pad)
