module Logic = Tmr_logic.Logic
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb

(* Node kinds, encoded for tight loops. *)
let k_constx = 0
let k_pad = 1
let k_bel_comb = 2
let k_bel_reg = 3
let k_resolve = 4

(* Node 0 is always the constant-X node (first allocation in [build]). *)
let x_node_id = 0

(* Scratch arrays for the SCC pass, reused across invocations so the
   per-fault path stays allocation-free (minor-GC barriers are
   stop-the-world across every domain). *)
type scc_scratch = {
  mutable sc_cap : int;  (* node capacity of the arrays below *)
  mutable sc_index : int array;
  mutable sc_low : int array;
  mutable sc_onstack : Bytes.t;
  mutable sc_sstack : int array;  (* Tarjan value stack *)
  mutable sc_cnode : int array;  (* DFS call stack: node *)
  mutable sc_ci : int array;  (* DFS call stack: next child index *)
  mutable sc_off : int array;  (* nsccs+1 offsets into sc_nodes *)
  mutable sc_nodes : int array;  (* SCC members, evaluation order *)
  mutable sc_cyclic : Bytes.t;  (* per SCC: '\001' when cyclic *)
}

let make_scc_scratch () =
  {
    sc_cap = 0;
    sc_index = [||];
    sc_low = [||];
    sc_onstack = Bytes.empty;
    sc_sstack = [||];
    sc_cnode = [||];
    sc_ci = [||];
    sc_off = [||];
    sc_nodes = [||];
    sc_cyclic = Bytes.empty;
  }

let scc_ensure s n =
  if s.sc_cap < n then begin
    let cap = max n (max 256 (2 * s.sc_cap)) in
    s.sc_cap <- cap;
    s.sc_index <- Array.make cap 0;
    s.sc_low <- Array.make cap 0;
    s.sc_onstack <- Bytes.make cap '\000';
    s.sc_sstack <- Array.make cap 0;
    s.sc_cnode <- Array.make cap 0;
    s.sc_ci <- Array.make cap 0;
    s.sc_off <- Array.make (cap + 1) 0;
    s.sc_nodes <- Array.make cap 0;
    s.sc_cyclic <- Bytes.make cap '\000'
  end

type workspace = {
  ws_dev : Device.t;
  mutable epoch : int;
  wire_mark : int array;  (* cone membership stamp *)
  bel_mark : int array;
  res_stamp : int array;  (* wire -> epoch of res_node validity *)
  res_node : int array;  (* wire -> node id *)
  ing_stamp : int array;  (* wire -> epoch when in-progress *)
  bel_node_stamp : int array;
  bel_node_id : int array;
  ws_scc : scc_scratch;
}

let make_workspace dev =
  {
    ws_dev = dev;
    epoch = 0;
    wire_mark = Array.make dev.Device.nwires 0;
    bel_mark = Array.make dev.Device.nbels 0;
    res_stamp = Array.make dev.Device.nwires 0;
    res_node = Array.make dev.Device.nwires 0;
    ing_stamp = Array.make dev.Device.nwires 0;
    bel_node_stamp = Array.make dev.Device.nbels 0;
    bel_node_id = Array.make dev.Device.nbels 0;
    ws_scc = make_scc_scratch ();
  }

type t = {
  nnodes : int;
  kind : int array;
  inputs : int array array;  (* resolve inputs; bel pin nodes (len 4, -1 unused) *)
  res_wires : int array array;
      (* resolve nodes: the driver wire behind each input — lets a fault
         re-derive the inputs when routing changes upstream *)
  table : int array;  (* bel nodes: LUT table *)
  inv : int array;  (* bel nodes: pin inversion mask *)
  ce_frozen : bool array;  (* bel nodes: clock-enable inverted *)
  q_init : Logic.t array;
  q : Logic.t array;
  values : Logic.t array;
  last : Logic.t array;
      (* settled value of each node at the end of the previous cycle; used
         by the drive-conflict glitch rule on shorted nodes *)
  nsccs : int;
  scc_off : int array;  (* nsccs+1 offsets into scc_nodes (may have slack) *)
  scc_nodes : int array;  (* flat SCC members, evaluation order *)
  scc_cyclic : Bytes.t;  (* per SCC *)
  reg_nodes : int array;  (* node ids with kind = k_bel_reg, ascending *)
  pad_node : (int, int) Hashtbl.t;  (* PadIn wire -> node *)
  watch_node : (int, int) Hashtbl.t;  (* PadOut wire -> node *)
  has_loop : bool;
}

(* The registered-bel index: [clock] used to scan every node testing
   [kind = k_bel_reg] each cycle; the membership is fixed at build time
   (only an Out_sel fault moves it, handled by [reroute]). *)
let collect_reg_nodes kind n =
  let c = ref 0 in
  for node = 0 to n - 1 do
    if kind.(node) = k_bel_reg then incr c
  done;
  let regs = Array.make !c 0 in
  let i = ref 0 in
  for node = 0 to n - 1 do
    if kind.(node) = k_bel_reg then begin
      regs.(!i) <- node;
      incr i
    end
  done;
  regs

let support_mask table =
  let m = ref 0 in
  for j = 0 to 3 do
    let differs = ref false in
    for idx = 0 to 15 do
      if (table lsr idx) land 1 <> (table lsr (idx lxor (1 lsl j))) land 1 then
        differs := true
    done;
    if !differs then m := !m lor (1 lsl j)
  done;
  !m

(* Growable node store. *)
type builder = {
  mutable n : int;
  mutable b_kind : int array;
  mutable b_table : int array;
  mutable b_inv : int array;
  mutable b_ce : bool array;
  mutable b_qi : Logic.t array;
}

let builder_create () =
  {
    n = 0;
    b_kind = Array.make 256 0;
    b_table = Array.make 256 0;
    b_inv = Array.make 256 0;
    b_ce = Array.make 256 false;
    b_qi = Array.make 256 Logic.X;
  }

let builder_alloc b k ~table ~inv ~ce ~qi =
  if b.n >= Array.length b.b_kind then begin
    let grow a fill = Array.append a (Array.make (Array.length a) fill) in
    b.b_kind <- grow b.b_kind 0;
    b.b_table <- grow b.b_table 0;
    b.b_inv <- grow b.b_inv 0;
    b.b_ce <- grow b.b_ce false;
    b.b_qi <- grow b.b_qi Logic.X
  end;
  let id = b.n in
  b.b_kind.(id) <- k;
  b.b_table.(id) <- table;
  b.b_inv.(id) <- inv;
  b.b_ce.(id) <- ce;
  b.b_qi.(id) <- qi;
  b.n <- id + 1;
  id

(* SCC decomposition of the combinational graph (iterative Tarjan).
   Combinational dependencies: resolve -> inputs; comb bel -> pins.
   Registered bels, pads and constants are sources.  Tarjan emits an SCC
   only after everything it depends on has been emitted, so the emission
   order written to [sc_nodes] is already inputs-first.  Works entirely in
   [scratch]; returns [(nsccs, has_loop)]. *)
let rec self_dep deps node i =
  i < Array.length deps && (deps.(i) = node || self_dep deps node (i + 1))

let compute_sccs ~scratch:s ~nnodes:n ~kind ~inputs =
  scc_ensure s n;
  let index = s.sc_index and low = s.sc_low and onstack = s.sc_onstack in
  Array.fill index 0 n (-1);
  Bytes.fill onstack 0 n '\000';
  let dep node =
    let k = kind.(node) in
    if k = k_resolve || k = k_bel_comb then inputs.(node) else [||]
  in
  let counter = ref 0 in
  let sp = ref 0 in (* Tarjan value stack top *)
  let nsccs = ref 0 in
  let out = ref 0 in (* write position in sc_nodes *)
  let has_loop = ref false in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let csp = ref 0 in
      let push v =
        index.(v) <- !counter;
        low.(v) <- !counter;
        incr counter;
        s.sc_sstack.(!sp) <- v;
        incr sp;
        Bytes.set onstack v '\001';
        s.sc_cnode.(!csp) <- v;
        s.sc_ci.(!csp) <- 0;
        incr csp
      in
      push root;
      while !csp > 0 do
        let node = s.sc_cnode.(!csp - 1) in
        let i = s.sc_ci.(!csp - 1) in
        let deps = dep node in
        if i < Array.length deps then begin
          s.sc_ci.(!csp - 1) <- i + 1;
          let child = deps.(i) in
          if child >= 0 then begin
            if index.(child) < 0 then push child
            else if Bytes.get onstack child <> '\000' then
              low.(node) <- min low.(node) index.(child)
          end
        end
        else begin
          decr csp;
          if !csp > 0 then begin
            let parent = s.sc_cnode.(!csp - 1) in
            low.(parent) <- min low.(parent) low.(node)
          end;
          if low.(node) = index.(node) then begin
            let start = !out in
            let continue = ref true in
            while !continue do
              decr sp;
              let w = s.sc_sstack.(!sp) in
              Bytes.set onstack w '\000';
              s.sc_nodes.(!out) <- w;
              incr out;
              if w = node then continue := false
            done;
            let cyc =
              !out - start > 1
              || self_dep (dep s.sc_nodes.(start)) s.sc_nodes.(start) 0
            in
            s.sc_off.(!nsccs) <- start;
            Bytes.set s.sc_cyclic !nsccs (if cyc then '\001' else '\000');
            if cyc then has_loop := true;
            incr nsccs
          end
        end
      done
    end
  done;
  s.sc_off.(!nsccs) <- !out;
  (!nsccs, !has_loop)

let build ?ws ex ~watch_outputs =
  let dev = Extract.device ex in
  let ws =
    match ws with
    | Some w ->
        if w.ws_dev != dev then
          invalid_arg "Fsim.build: workspace built for another device";
        w
    | None -> make_workspace dev
  in
  ws.epoch <- ws.epoch + 1;
  let ep = ws.epoch in
  (* ---- Phase 1: collect the observable cone (wires and bels) ---- *)
  let bel_list = ref [] in
  let stack = ref [] in
  let push_wire w =
    if ws.wire_mark.(w) <> ep then begin
      ws.wire_mark.(w) <- ep;
      stack := w :: !stack
    end
  in
  Array.iter push_wire watch_outputs;
  let visit_bel b =
    if ws.bel_mark.(b) <> ep then begin
      ws.bel_mark.(b) <- ep;
      let mask = support_mask (Extract.lut_table ex b) in
      bel_list := (b, mask) :: !bel_list;
      Array.iteri
        (fun j pinw -> if (mask lsr j) land 1 = 1 then push_wire pinw)
        dev.Device.bel_in.(b)
    end
  in
  let rec drain () =
    match !stack with
    | [] -> ()
    | w :: rest ->
        stack := rest;
        (match dev.Device.wkind.(w) with
        | Device.BelOut -> visit_bel dev.Device.wire_bel.(w)
        | Device.PadIn -> ()
        | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
        | Device.HLong | Device.VLong | Device.BelIn | Device.PadOut ->
            List.iter push_wire (Extract.drivers ex w);
            List.iter push_wire (Extract.links ex w));
        drain ()
  in
  drain ();
  (* ---- Phase 2: allocate nodes ---- *)
  let bld = builder_create () in
  let alloc = builder_alloc bld in
  let x_node = alloc k_constx ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
  List.iter
    (fun (b, _mask) ->
      let registered = Extract.out_sel ex b in
      let id =
        alloc
          (if registered then k_bel_reg else k_bel_comb)
          ~table:(Extract.lut_table ex b)
          ~inv:(Extract.in_inv_mask ex b)
          ~ce:(Extract.ce_inv ex b)
          ~qi:(Extract.ff_init ex b)
      in
      ws.bel_node_stamp.(b) <- ep;
      ws.bel_node_id.(b) <- id)
    !bel_list;
  let pad_node = Hashtbl.create 64 in
  let resolve_inputs = Hashtbl.create 64 in
  let resolve_wires = Hashtbl.create 64 in
  let set_resolved w n =
    ws.res_stamp.(w) <- ep;
    ws.res_node.(w) <- n
  in
  let rec wire_node w =
    if ws.res_stamp.(w) = ep then ws.res_node.(w)
    else if ws.ing_stamp.(w) = ep then x_node (* pure driver loop: floats *)
    else begin
      match dev.Device.wkind.(w) with
      | Device.PadIn ->
          let pad = dev.Device.wire_pad.(w) in
          let n =
            if Extract.pad_enabled ex pad then begin
              match Hashtbl.find_opt pad_node w with
              | Some n -> n
              | None ->
                  let n = alloc k_pad ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
                  Hashtbl.add pad_node w n;
                  n
            end
            else x_node
          in
          set_resolved w n;
          n
      | Device.BelOut ->
          let b = dev.Device.wire_bel.(w) in
          let n =
            if ws.bel_node_stamp.(b) = ep then ws.bel_node_id.(b)
            else x_node (* outside the collected cone *)
          in
          set_resolved w n;
          n
      | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
      | Device.HLong | Device.VLong | Device.BelIn | Device.PadOut ->
          (* The electrical node is the whole component of wires shorted
             together by ON pass pips; its drivers are every buffered
             driver of any member. *)
          let members = ref [] in
          let rec collect u =
            if ws.ing_stamp.(u) <> ep then begin
              ws.ing_stamp.(u) <- ep;
              members := u :: !members;
              List.iter collect (Extract.links ex u)
            end
          in
          collect w;
          let members = !members in
          let drvs = List.concat_map (fun u -> Extract.drivers ex u) members in
          let finish n =
            List.iter (fun u -> set_resolved u n) members;
            n
          in
          (match drvs with
          | [] -> finish x_node
          | [ u ] ->
              let n = wire_node u in
              finish n
          | us ->
              let n = alloc k_resolve ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
              (* register before resolving inputs so cycles hit the node,
                 not infinite recursion *)
              ignore (finish n);
              Hashtbl.replace resolve_wires n (Array.of_list us);
              Hashtbl.replace resolve_inputs n
                (Array.of_list (List.map wire_node us));
              n)
    end
  in
  (* bel pins *)
  let bel_pins = Hashtbl.create 256 in
  List.iter
    (fun (b, mask) ->
      let pins =
        Array.init 4 (fun j ->
            if (mask lsr j) land 1 = 1 then wire_node dev.Device.bel_in.(b).(j)
            else -1)
      in
      Hashtbl.add bel_pins ws.bel_node_id.(b) pins)
    !bel_list;
  let watch_node = Hashtbl.create 32 in
  Array.iter
    (fun w ->
      let pad = dev.Device.wire_pad.(w) in
      let n =
        if pad >= 0 && not (Extract.pad_enabled ex pad) then x_node
        else wire_node w
      in
      Hashtbl.replace watch_node w n)
    watch_outputs;
  let n = bld.n in
  let kind = Array.sub bld.b_kind 0 n in
  let table = Array.sub bld.b_table 0 n in
  let inv = Array.sub bld.b_inv 0 n in
  let ce_frozen = Array.sub bld.b_ce 0 n in
  let q_init = Array.sub bld.b_qi 0 n in
  let inputs = Array.make n [||] in
  let res_wires = Array.make n [||] in
  Hashtbl.iter (fun node ins -> inputs.(node) <- ins) resolve_inputs;
  Hashtbl.iter (fun node ws_ -> res_wires.(node) <- ws_) resolve_wires;
  Hashtbl.iter (fun node pins -> inputs.(node) <- pins) bel_pins;
  (* ---- Phase 3: evaluation order ---- *)
  let nsccs, has_loop =
    compute_sccs ~scratch:ws.ws_scc ~nnodes:n ~kind ~inputs
  in
  (* copy exact-size out of the workspace scratch: this simulator must
     survive later builds/reroutes that reuse the same workspace *)
  {
    nnodes = n;
    kind;
    inputs;
    res_wires;
    table;
    inv;
    ce_frozen;
    q_init;
    q = Array.copy q_init;
    values = Array.make n Logic.X;
    last = Array.make n Logic.X;
    nsccs;
    scc_off = Array.sub ws.ws_scc.sc_off 0 (nsccs + 1);
    scc_nodes = Array.sub ws.ws_scc.sc_nodes 0 n;
    scc_cyclic = Bytes.sub ws.ws_scc.sc_cyclic 0 nsccs;
    reg_nodes = collect_reg_nodes kind n;
    pad_node;
    watch_node;
    has_loop;
  }

let num_nodes t = t.nnodes
let has_comb_loop t = t.has_loop

let reset t =
  Array.blit t.q_init 0 t.q 0 t.nnodes;
  Array.fill t.values 0 t.nnodes Logic.X;
  Array.fill t.last 0 t.nnodes Logic.X

let set_pad t wire v =
  match Hashtbl.find_opt t.pad_node wire with
  | Some n -> t.values.(n) <- v
  | None -> ()

(* LUT evaluation on node values with inversion mask; X-aware.

   The value-representation primitives (pin scan, Kleene completion over
   X pins, driver resolution with the glitch rule) live in
   {!Fsim_backend.Scalar}, shared as semantics-of-record with the
   bit-sliced lane backend ({!Fsim_backend.Lanes}) that {!Fsim_batch}
   evaluates 32 faults at a time.  Calls are fully qualified so ocamlopt
   keeps them direct (and inlines the small ones) — this is the
   simulator's innermost loop. *)

let lut_x_const = Fsim_backend.Scalar.lut_x_const

let lut_eval t node =
  Fsim_backend.Scalar.lut_eval ~values:t.values ~pins:t.inputs.(node)
    ~table:t.table.(node) ~inv:t.inv.(node)

let resolve_settle = Fsim_backend.Scalar.resolve_settle
let resolve_glitch = Fsim_backend.Scalar.resolve_glitch

let eval_node t node =
  let k = t.kind.(node) in
  if k = k_resolve then begin
    (* A multiply-driven node: the drivers fight.  The settled value is
       their agreement; beyond that we are pessimistic about skew — if any
       driver transitioned this cycle, the fight glitches and the node
       reads unknown (two copies of the same TMR signal are shorted
       harmlessly in a zero-delay model, but not in silicon). *)
    let ins = t.inputs.(node) in
    let len = Array.length ins in
    if len = 0 then Logic.X
    else
      let v = resolve_settle t.values ins 1 len t.values.(ins.(0)) in
      match v with
      | Logic.X -> Logic.X
      | Logic.Zero | Logic.One -> resolve_glitch t.last ins 0 len v
  end
  else if k = k_bel_comb then lut_eval t node
  else if k = k_bel_reg then t.q.(node)
  else if k = k_constx then Logic.X
  else (* k_pad *) t.values.(node)

let eval t =
  let off = t.scc_off and nodes = t.scc_nodes in
  for si = 0 to t.nsccs - 1 do
    if Bytes.get t.scc_cyclic si = '\000' then begin
      let node = nodes.(off.(si)) in
      t.values.(node) <- eval_node t node
    end
    else begin
      (* Kleene iteration from X *)
      let lo = off.(si) and hi = off.(si + 1) in
      for i = lo to hi - 1 do
        t.values.(nodes.(i)) <- Logic.X
      done;
      let changed = ref true in
      let guard = ref ((3 * (hi - lo)) + 4) in
      while !changed && !guard > 0 do
        changed := false;
        decr guard;
        for i = lo to hi - 1 do
          let node = nodes.(i) in
          let v = eval_node t node in
          if not (Logic.equal v t.values.(node)) then begin
            t.values.(node) <- v;
            changed := true
          end
        done
      done
    end
  done

let clock t =
  (* Only registered bels ever read [q]; combinational bels re-evaluate
     from their pins on every [eval]. *)
  let regs = t.reg_nodes in
  for i = 0 to Array.length regs - 1 do
    let node = regs.(i) in
    if not t.ce_frozen.(node) then t.q.(node) <- lut_eval t node
  done;
  Array.blit t.values 0 t.last 0 t.nnodes

let step t =
  eval t;
  clock t;
  eval t

let read t wire =
  match Hashtbl.find_opt t.watch_node wire with
  | Some n -> t.values.(n)
  | None -> invalid_arg "Fsim.read: wire is not watched"

(* Node-id access: resolving wires to node ids once per simulator keeps
   the per-cycle IO loop free of hash lookups (and their option cells). *)

let watch_nodes t wires =
  Array.map
    (fun w ->
      match Hashtbl.find_opt t.watch_node w with
      | Some n -> n
      | None -> invalid_arg "Fsim.watch_nodes: wire is not watched")
    wires

let pad_nodes t wires =
  Array.map
    (fun w ->
      match Hashtbl.find_opt t.pad_node w with Some n -> n | None -> -1)
    wires

let node_value t n = t.values.(n)
let set_node t n v = if n >= 0 then t.values.(n) <- v

(* ------------------------------------------------------------------ *)
(* Cone snapshot: what the last [build] in a workspace observed.       *)

type cone = {
  c_dev : Device.t;
  c_marked : Bytes.t;  (* wire -> '\001' when in the observable cone *)
  c_wire_node : int array;  (* wire -> node id, -1 when unresolved *)
  c_bels : int array;  (* cone bels *)
  c_bel_node : int array;  (* bel -> node id, -1 outside the cone *)
}

let snapshot_cone ws =
  let dev = ws.ws_dev in
  let ep = ws.epoch in
  let nw = dev.Device.nwires in
  let marked = Bytes.make nw '\000' in
  let wire_node = Array.make nw (-1) in
  for w = 0 to nw - 1 do
    if ws.wire_mark.(w) = ep then Bytes.set marked w '\001';
    if ws.res_stamp.(w) = ep then wire_node.(w) <- ws.res_node.(w)
  done;
  let bels = ref [] in
  let bel_node = Array.make dev.Device.nbels (-1) in
  for b = dev.Device.nbels - 1 downto 0 do
    if ws.bel_node_stamp.(b) = ep then begin
      bel_node.(b) <- ws.bel_node_id.(b);
      bels := b :: !bels
    end
  done;
  {
    c_dev = dev;
    c_marked = marked;
    c_wire_node = wire_node;
    c_bels = Array.of_list !bels;
    c_bel_node = bel_node;
  }

let cone_marked c w = Bytes.get c.c_marked w <> '\000'
let cone_node_of_bel c b = c.c_bel_node.(b)

let cone_wire_count c =
  let n = ref 0 in
  Bytes.iter (fun ch -> if ch <> '\000' then incr n) c.c_marked;
  !n

let cone_bel_count c = Array.length c.c_bels

let cone_touches_bit c ex bit =
  let dev = Extract.device ex in
  let db = Extract.database ex in
  match Bitdb.resource db bit with
  | Bitdb.Pip p ->
      cone_marked c dev.Device.pip_src.(p)
      || cone_marked c dev.Device.pip_dst.(p)
  | Bitdb.Lut_bit (b, _)
  | Bitdb.Ff_init b
  | Bitdb.Out_sel b
  | Bitdb.Ce_inv b
  | Bitdb.Sr_inv b
  | Bitdb.In_inv (b, _) ->
      c.c_bel_node.(b) >= 0
  | Bitdb.Pad_enable pad -> cone_marked c dev.Device.pad_wire.(pad)
  | Bitdb.Pad_cfg _ -> false

let cone_frames c ex =
  let db = Extract.database ex in
  let frames = Array.make (Bitdb.num_frames db) false in
  for bit = 0 to Bitdb.num_bits db - 1 do
    if cone_touches_bit c ex bit then frames.(Bitdb.frame_of_bit db bit) <- true
  done;
  frames

(* ------------------------------------------------------------------ *)
(* Per-fault planning: how cheaply can one bit flip be simulated?      *)

type fault_path =
  | Path_silent
  | Path_patch
  | Path_reroute
  | Path_rebuild
  | Path_diff
      (* execution outcome, never returned by [plan_fault]: a patch or
         reroute fault that ran on the differential engine *)

let path_name = function
  | Path_silent -> "silent"
  | Path_patch -> "patch"
  | Path_reroute -> "reroute"
  | Path_rebuild -> "rebuild"
  | Path_diff -> "diff"

(* Decide, against the *golden* (un-flipped) extract state, how the flip
   of [bit] can be handled.  Every branch below is exact: [Path_silent]
   means a full rebuild would produce a simulator with identical watched
   behaviour, [Path_patch] means the change is a pure cell-content edit of
   an existing node, [Path_reroute] means only wire-component structure
   changes.  Anything unprovable falls back to [Path_rebuild]. *)
let plan_fault c ex bit =
  let dev = Extract.device ex in
  let db = Extract.database ex in
  let marked w = cone_marked c w in
  match Bitdb.resource db bit with
  | Bitdb.Pad_cfg _ -> Path_silent  (* electrically benign *)
  | Bitdb.Pad_enable pad ->
      if marked dev.Device.pad_wire.(pad) then Path_rebuild else Path_silent
  | Bitdb.Lut_bit (b, idx) ->
      if c.c_bel_node.(b) < 0 then Path_silent
      else
        let old_t = Extract.lut_table ex b in
        let new_t = old_t lxor (1 lsl idx) in
        (* a shrinking support keeps every wired pin valid (the table just
           ignores it); a growing support needs pins the cone never wired,
           which [reroute] resolves incrementally *)
        if support_mask new_t land lnot (support_mask old_t) = 0 then
          Path_patch
        else Path_reroute
  | Bitdb.In_inv (b, _) ->
      if c.c_bel_node.(b) < 0 then Path_silent else Path_patch
  | Bitdb.Ff_init b | Bitdb.Sr_inv b | Bitdb.Ce_inv b ->
      if c.c_bel_node.(b) < 0 then Path_silent
      else if Extract.out_sel ex b then Path_patch
      else Path_silent (* flip-flop state is never read on a comb bel *)
  | Bitdb.Out_sel b ->
      (* comb <-> reg retargets one node's kind; the wiring (pins are
         collected independently of registered-ness) is untouched *)
      if c.c_bel_node.(b) < 0 then Path_silent else Path_reroute
  | Bitdb.Pip p ->
      let s = dev.Device.pip_src.(p) and d = dev.Device.pip_dst.(p) in
      let on = Extract.bit_is_set ex bit in
      if dev.Device.pip_bidir.(p) then
        if on then
          (* removing a short *)
          if marked s || marked d then Path_reroute else Path_silent
        else begin
          (* adding a short *)
          match (marked s, marked d) with
          | false, false -> Path_silent
          | true, true -> Path_reroute
          | ms, _ ->
              (* antenna: shorting an isolated floating wire onto a cone
                 wire adds a driverless member to its component — the
                 resolved node is unchanged and nothing in the cone reads
                 the floating side *)
              let u = if ms then d else s in
              if Extract.drivers ex u = [] && Extract.links ex u = [] then
                Path_silent
              else Path_reroute
        end
      else if marked d then Path_reroute
      else Path_silent (* only [drivers dst] changes, and the cone never
                          reads it *)

(* Apply a bel-content fault in place on [base], run [f], undo.  The bit
   must already be flipped in [ex]; [plan_fault] must have said
   [Path_patch]. *)
let with_patch c base ex bit f =
  let db = Extract.database ex in
  let patch_cell arr node v =
    let old = arr.(node) in
    arr.(node) <- v;
    Fun.protect ~finally:(fun () -> arr.(node) <- old) (fun () -> f base)
  in
  match Bitdb.resource db bit with
  | Bitdb.Lut_bit (b, _) ->
      patch_cell base.table c.c_bel_node.(b) (Extract.lut_table ex b)
  | Bitdb.In_inv (b, _) ->
      patch_cell base.inv c.c_bel_node.(b) (Extract.in_inv_mask ex b)
  | Bitdb.Ff_init b | Bitdb.Sr_inv b ->
      patch_cell base.q_init c.c_bel_node.(b) (Extract.ff_init ex b)
  | Bitdb.Ce_inv b ->
      patch_cell base.ce_frozen c.c_bel_node.(b) (Extract.ce_inv ex b)
  | _ -> invalid_arg "Fsim.with_patch: not a patchable bit"

(* The single node whose cell content a [Path_patch] fault edits — the
   differential engine seeds its fanout cone from it. *)
let patch_node c ex bit =
  let db = Extract.database ex in
  match Bitdb.resource db bit with
  | Bitdb.Lut_bit (b, _)
  | Bitdb.In_inv (b, _)
  | Bitdb.Ff_init b
  | Bitdb.Sr_inv b
  | Bitdb.Ce_inv b ->
      let n = c.c_bel_node.(b) in
      if n < 0 then invalid_arg "Fsim.patch_node: bel outside the cone";
      n
  | _ -> invalid_arg "Fsim.patch_node: not a patchable bit"

(* ------------------------------------------------------------------ *)
(* Reroute: derive a fault simulator from [base] without a full rebuild.
   The flipped bit is already applied to [ex].  For a routing bit only
   the electrical components containing the pip endpoints changed: we
   re-resolve those components, remap every reader whose resolution
   passed through them, and re-run the SCC pass on the (slightly grown)
   node graph.  A support-widening LUT bit or an out_sel flip changes no
   wiring at all — just one cell's pins/kind — but still needs the
   incremental resolution and SCC machinery, so it lands here too.
   Returns [None] when the change reaches outside what the base cone
   knows (new bels, live out-of-cone nets, driver loops) — the caller
   falls back to a full rebuild.

   With [?scratch], all large per-call arrays live in the caller-owned
   scratch and are reused: the returned simulator is valid only until the
   next [reroute] with the same scratch.  This keeps the per-fault
   allocation near zero, which matters under multiple domains: every
   minor collection is a stop-the-world rendezvous. *)

exception Too_hard

type scratch = {
  s_scc : scc_scratch;
  mutable s_cap : int;
  mutable s_kind : int array;
  mutable s_table : int array;
  mutable s_inv : int array;
  mutable s_ce : bool array;
  mutable s_qi : Logic.t array;
  mutable s_q : Logic.t array;
  mutable s_values : Logic.t array;
  mutable s_last : Logic.t array;
  mutable s_inputs : int array array;
  mutable s_res_wires : int array array;
  (* Epoch-stamped per-wire and per-node maps replacing what would
     otherwise be six fresh hashtables per fault. *)
  mutable s_epoch : int;
  mutable s_wcap : int;
  mutable s_wn_stamp : int array;  (* wire -> epoch of s_wn validity *)
  mutable s_wn : int array;  (* wire -> resolved node (memo + override) *)
  mutable s_wc_stamp : int array;  (* wire -> epoch of s_wc validity *)
  mutable s_wc : int array;  (* wire -> affected component index *)
  mutable s_ing : int array;  (* wire -> epoch when resolution in progress *)
  mutable s_orph_cap : int;
  mutable s_orph : int array;  (* old node id -> epoch when orphaned *)
}

let make_scratch () =
  {
    s_scc = make_scc_scratch ();
    s_cap = 0;
    s_kind = [||];
    s_table = [||];
    s_inv = [||];
    s_ce = [||];
    s_qi = [||];
    s_q = [||];
    s_values = [||];
    s_last = [||];
    s_inputs = [||];
    s_res_wires = [||];
    s_epoch = 0;
    s_wcap = 0;
    s_wn_stamp = [||];
    s_wn = [||];
    s_wc_stamp = [||];
    s_wc = [||];
    s_ing = [||];
    s_orph_cap = 0;
    s_orph = [||];
  }

let scratch_ensure s n =
  if s.s_cap < n then begin
    let cap = max n (max 1024 (2 * s.s_cap)) in
    s.s_cap <- cap;
    s.s_kind <- Array.make cap 0;
    s.s_table <- Array.make cap 0;
    s.s_inv <- Array.make cap 0;
    s.s_ce <- Array.make cap false;
    s.s_qi <- Array.make cap Logic.X;
    s.s_q <- Array.make cap Logic.X;
    s.s_values <- Array.make cap Logic.X;
    s.s_last <- Array.make cap Logic.X;
    s.s_inputs <- Array.make cap [||];
    s.s_res_wires <- Array.make cap [||]
  end

let scratch_wires_ensure s nw =
  if s.s_wcap < nw then begin
    s.s_wcap <- nw;
    s.s_wn_stamp <- Array.make nw 0;
    s.s_wn <- Array.make nw 0;
    s.s_wc_stamp <- Array.make nw 0;
    s.s_wc <- Array.make nw 0;
    s.s_ing <- Array.make nw 0
  end

let scratch_orph_ensure s n =
  if s.s_orph_cap < n then begin
    s.s_orph_cap <- max n (2 * s.s_orph_cap);
    s.s_orph <- Array.make s.s_orph_cap 0
  end

(* Phase A, shared between {!reroute} (which then materialises a whole
   derived simulator) and {!fault_delta} (which only records the
   overlay): re-resolve the electrical components affected by the flip
   under the post-flip extract, memoising wire->node resolutions and
   reserving appended resolve nodes.  Raises [Too_hard] whenever the
   change reaches outside what the base cone knows. *)

type phase_a = {
  pa_n_extra : int;
  pa_extras : (int, int array * int array ref) Hashtbl.t;
      (* appended node id -> (driver wires, resolved inputs) *)
  pa_cell : [ `None | `Lut of int * int * int array | `Out of int * bool ];
  pa_node_of : int -> int;  (* valid until the scratch's next epoch *)
  pa_orphaned : int -> bool;
  pa_orph : int list;  (* old node ids whose resolution went stale *)
  pa_have_orphans : bool;
}

let phase_a ~scratch:s c base ex bit =
  let dev = Extract.device ex in
  let db = Extract.database ex in
  let seeds, cell =
    match Bitdb.resource db bit with
    | Bitdb.Pip p ->
        let sw = dev.Device.pip_src.(p) and dw = dev.Device.pip_dst.(p) in
        ((if dev.Device.pip_bidir.(p) then [ sw; dw ] else [ dw ]), `None)
    | Bitdb.Lut_bit (b, _) -> ([], `Lut b)
    | Bitdb.Out_sel b -> ([], `Out b)
    | _ -> invalid_arg "Fsim.reroute: bit is not reroutable"
  in
  scratch_wires_ensure s dev.Device.nwires;
  scratch_orph_ensure s base.nnodes;
  s.s_epoch <- s.s_epoch + 1;
  let ep = s.s_epoch in
  (* the affected components under the post-flip extract *)
  let comps = ref [] in
    let ncomps = ref 0 in
    let add_comp seed =
      if s.s_wc_stamp.(seed) <> ep then begin
        let members = ref [] in
        let rec collect u =
          if s.s_wc_stamp.(u) <> ep then begin
            s.s_wc_stamp.(u) <- ep;
            s.s_wc.(u) <- !ncomps;
            members := u :: !members;
            List.iter collect (Extract.links ex u)
          end
        in
        collect seed;
        let members = List.rev !members in
        let drivers = List.concat_map (fun u -> Extract.drivers ex u) members in
        comps := (members, drivers) :: !comps;
        incr ncomps
      end
    in
    List.iter add_comp seeds;
    let comp_arr = Array.of_list (List.rev !comps) in
    (* Old node ids whose wire->node association may now be stale: every
       reader that resolved through an affected component got that
       component's old node id (single-driver chains collapse onto it). *)
    let norph = ref 0 in
    let orph = ref [] in
    Array.iter
      (fun (members, _) ->
        List.iter
          (fun w ->
            let n = c.c_wire_node.(w) in
            if n >= 0 && s.s_orph.(n) <> ep then begin
              s.s_orph.(n) <- ep;
              orph := n :: !orph;
              incr norph
            end)
          members)
      comp_arr;
    let orphaned n = n < base.nnodes && s.s_orph.(n) = ep in
    (* New resolve nodes appended past the base graph *)
    let n_extra = ref 0 in
    let extras = Hashtbl.create 8 in (* id -> (driver wires, inputs ref) *)
    let reserve_resolve us =
      let id = base.nnodes + !n_extra in
      incr n_extra;
      Hashtbl.replace extras id (us, ref [||]);
      id
    in
    let set_node w n =
      s.s_wn_stamp.(w) <- ep;
      s.s_wn.(w) <- n
    in
    let comp_state = Array.make (Array.length comp_arr) 0 in
    let rec node_of w =
      if s.s_wn_stamp.(w) = ep then s.s_wn.(w) (* memo and overrides *)
      else if s.s_wc_stamp.(w) = ep then begin
        process_comp s.s_wc.(w);
        s.s_wn.(w)
      end
      else begin
        if s.s_ing.(w) = ep then raise Too_hard;
        s.s_ing.(w) <- ep;
        let n =
          match dev.Device.wkind.(w) with
          | Device.PadIn ->
              let old = c.c_wire_node.(w) in
              if old >= 0 then old
              else
                let pad = dev.Device.wire_pad.(w) in
                if pad >= 0 && Extract.pad_enabled ex pad then
                  raise Too_hard (* live pad the base never saw *)
                else x_node_id
          | Device.BelOut ->
              let b = dev.Device.wire_bel.(w) in
              let bn = c.c_bel_node.(b) in
              if bn >= 0 then bn
              else raise Too_hard (* bel outside the base cone *)
          | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
          | Device.HLong | Device.VLong | Device.BelIn | Device.PadOut -> (
              let old = c.c_wire_node.(w) in
              if old >= 0 && not (orphaned old) then old
              else begin
                (* this component's own structure is unchanged (it
                   contains no pip endpoint), but its resolution may pass
                   through affected ones *)
                let members = ref [] in
                let rec collect u =
                  if not (List.mem u !members) then begin
                    members := u :: !members;
                    List.iter collect (Extract.links ex u)
                  end
                in
                collect w;
                let drvs =
                  List.concat_map (fun u -> Extract.drivers ex u) !members
                in
                match drvs with
                | [] -> x_node_id
                | [ u ] -> node_of u
                | _ ->
                    (* multi-driven: its private resolve node still stands
                       (inputs are fixed by the global remap below) *)
                    if old >= 0 then old else raise Too_hard
              end)
        in
        set_node w n;
        n
      end
    and process_comp ci =
      if comp_state.(ci) = 1 then raise Too_hard (* pure driver loop *)
      else if comp_state.(ci) = 0 then begin
        comp_state.(ci) <- 1;
        let members, drvs = comp_arr.(ci) in
        (match drvs with
        | [] ->
            List.iter (fun u -> set_node u x_node_id) members;
            comp_state.(ci) <- 2
        | [ u ] ->
            let n = node_of u in
            List.iter (fun m -> set_node m n) members;
            comp_state.(ci) <- 2
        | us ->
            (* register the node first so combinational cycles through the
               component terminate on it, as in [build] *)
            let us = Array.of_list us in
            let id = reserve_resolve us in
            List.iter (fun m -> set_node m id) members;
            comp_state.(ci) <- 2;
            let _, ins = Hashtbl.find extras id in
            ins := Array.map node_of us)
      end
    in
    for ci = 0 to Array.length comp_arr - 1 do
      process_comp ci
    done;
    (* Resolve the cell override (may raise Too_hard, may touch memo but
       never allocates extras) while [n_extra] is still growing — after
       this point the node count is final. *)
    let cell =
      match cell with
      | `None -> `None
      | `Lut b ->
          let table = Extract.lut_table ex b in (* post-flip *)
          let mask = support_mask table in
          let row =
            Array.init 4 (fun j ->
                if (mask lsr j) land 1 = 1 then
                  node_of dev.Device.bel_in.(b).(j)
                else -1)
          in
          `Lut (c.c_bel_node.(b), table, row)
      | `Out b ->
          `Out (c.c_bel_node.(b), Extract.out_sel ex b)
    in
    {
      pa_n_extra = !n_extra;
      pa_extras = extras;
      pa_cell = cell;
      pa_node_of = node_of;
      pa_orphaned = orphaned;
      pa_orph = !orph;
      pa_have_orphans = !norph > 0;
    }

let reroute ~scratch:s c base ex bit =
  let dev = Extract.device ex in
  if dev != c.c_dev then invalid_arg "Fsim.reroute: cone from another device";
  try
    let pa = phase_a ~scratch:s c base ex bit in
    let node_of = pa.pa_node_of
    and orphaned = pa.pa_orphaned
    and extras = pa.pa_extras
    and cell = pa.pa_cell in
    (* Phase B/C: size the derived arrays (scratch-backed when given),
       then remap every reader whose resolution went stale. *)
    let n = base.nnodes + pa.pa_n_extra in
    scratch_ensure s n;
    Array.blit base.kind 0 s.s_kind 0 base.nnodes;
    Array.fill s.s_kind base.nnodes (n - base.nnodes) k_resolve;
    Array.blit base.table 0 s.s_table 0 base.nnodes;
    Array.blit base.inv 0 s.s_inv 0 base.nnodes;
    Array.blit base.ce_frozen 0 s.s_ce 0 base.nnodes;
    Array.blit base.q_init 0 s.s_qi 0 base.nnodes;
    Array.fill s.s_qi base.nnodes (n - base.nnodes) Logic.X;
    Array.blit base.inputs 0 s.s_inputs 0 base.nnodes;
    Array.blit base.res_wires 0 s.s_res_wires 0 base.nnodes;
    let kind, table, inv, ce_frozen, q_init, q, values, last, inputs', res_wires,
        scc =
      ( s.s_kind, s.s_table, s.s_inv, s.s_ce, s.s_qi, s.s_q, s.s_values,
        s.s_last, s.s_inputs, s.s_res_wires, s.s_scc )
    in
    for id = base.nnodes to n - 1 do
      let us, ins = Hashtbl.find extras id in
      inputs'.(id) <- !ins;
      res_wires.(id) <- us
    done;
    let have_orphans = pa.pa_have_orphans in
    let stale row =
      let st = ref false in
      Array.iter (fun nd -> if nd >= 0 && orphaned nd then st := true) row;
      !st
    in
    if have_orphans then begin
      Array.iteri
        (fun node wires ->
          if Array.length wires > 0 && stale base.inputs.(node) then
            inputs'.(node) <- Array.map node_of wires)
        base.res_wires;
      Array.iter
        (fun b ->
          let node = c.c_bel_node.(b) in
          let pins = base.inputs.(node) in
          if stale pins then
            inputs'.(node) <-
              Array.mapi
                (fun j p ->
                  if p < 0 then -1 else node_of dev.Device.bel_in.(b).(j))
                pins)
        c.c_bels
    end;
    (match cell with
    | `None -> ()
    | `Lut (node, t', row) ->
        table.(node) <- t';
        inputs'.(node) <- row
    | `Out (node, registered) ->
        kind.(node) <- (if registered then k_bel_reg else k_bel_comb));
    let watch_node =
      let needs_remap =
        have_orphans
        && Hashtbl.fold
             (fun _ nd acc -> acc || orphaned nd)
             base.watch_node false
      in
      if not needs_remap then base.watch_node
      else begin
        let tbl = Hashtbl.create (Hashtbl.length base.watch_node) in
        Hashtbl.iter
          (fun w nd ->
            let nd' =
              if not (orphaned nd) then nd
              else
                let pad = dev.Device.wire_pad.(w) in
                if pad >= 0 && not (Extract.pad_enabled ex pad) then x_node_id
                else node_of w
            in
            Hashtbl.replace tbl w nd')
          base.watch_node;
        tbl
      end
    in
    let nsccs, has_loop =
      compute_sccs ~scratch:scc ~nnodes:n ~kind ~inputs:inputs'
    in
    let reg_nodes =
      (* extras are resolve nodes; only an Out_sel cell flip can move the
         registered-bel membership *)
      match cell with
      | `Out _ -> collect_reg_nodes kind n
      | `None | `Lut _ -> base.reg_nodes
    in
    Array.blit q_init 0 q 0 n;
    Array.fill values 0 n Logic.X;
    Array.fill last 0 n Logic.X;
    Some
      {
        nnodes = n;
        kind;
        inputs = inputs';
        res_wires;
        table;
        inv;
        ce_frozen;
        q_init;
        q;
        values;
        last;
        nsccs;
        scc_off = scc.sc_off;
        scc_nodes = scc.sc_nodes;
        scc_cyclic = scc.sc_cyclic;
        reg_nodes;
        pad_node = base.pad_node;
        watch_node;
        has_loop;
      }
  with Too_hard -> None

(* A derived simulator shares [base]'s pad/watch wire->node tables
   physically unless [reroute] had to remap an orphaned watch node. *)
let same_io a b = a.pad_node == b.pad_node && a.watch_node == b.watch_node

(* ------------------------------------------------------------------ *)
(* Read-only graph view + fault overlays: what the bit-parallel batched
   engine ({!Fsim_batch}) needs from a base simulator.  The view shares
   the arrays (no copy); treat them as immutable. *)

type view = {
  v_nnodes : int;
  v_kind : int array;
  v_inputs : int array array;
  v_table : int array;
  v_inv : int array;
  v_ce_frozen : bool array;
  v_q_init : Logic.t array;
  v_nsccs : int;
  v_scc_off : int array;
  v_scc_nodes : int array;
  v_scc_cyclic : Bytes.t;
}

let view t =
  {
    v_nnodes = t.nnodes;
    v_kind = t.kind;
    v_inputs = t.inputs;
    v_table = t.table;
    v_inv = t.inv;
    v_ce_frozen = t.ce_frozen;
    v_q_init = t.q_init;
    v_nsccs = t.nsccs;
    v_scc_off = t.scc_off;
    v_scc_nodes = t.scc_nodes;
    v_scc_cyclic = t.scc_cyclic;
  }

let kind_constx = k_constx
let kind_pad = k_pad
let kind_bel_comb = k_bel_comb
let kind_bel_reg = k_bel_reg
let kind_resolve = k_resolve

(* Reverse CSR over [inputs] (successors of each node), standalone: the
   batch engine builds it once per worker over the base graph and keeps
   it for the whole campaign. *)
let reader_csr sim =
  let n = sim.nnodes in
  let off = Array.make (n + 1) 0 in
  for node = 0 to n - 1 do
    let ins = sim.inputs.(node) in
    for j = 0 to Array.length ins - 1 do
      let p = ins.(j) in
      if p >= 0 then off.(p + 1) <- off.(p + 1) + 1
    done
  done;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let succ = Array.make (max 1 off.(n)) 0 in
  let cursor = Array.copy off in
  for node = 0 to n - 1 do
    let ins = sim.inputs.(node) in
    for j = 0 to Array.length ins - 1 do
      let p = ins.(j) in
      if p >= 0 then begin
        succ.(cursor.(p)) <- node;
        cursor.(p) <- cursor.(p) + 1
      end
    done
  done;
  (off, succ)

(* Inverse of the cone's bel -> node map, for resolving which device bel
   a comb/reg node came from (bel pins live on the device, not the
   graph).  Built once per worker. *)
let bel_map c base =
  let m = Array.make base.nnodes (-1) in
  Array.iter
    (fun b ->
      let n = c.c_bel_node.(b) in
      if n >= 0 && n < base.nnodes then m.(n) <- b)
    c.c_bels;
  m

type cell_patch =
  | Cp_table of int
  | Cp_inv of int
  | Cp_qinit of Logic.t
  | Cp_ce of bool

type delta = {
  dl_cell : (int * cell_patch) option;
  dl_rows : (int * int array) array;
  dl_extras : (int array * int array) array;
}

(* A [Path_patch] fault as an overlay: one cell-content override,
   mirroring [with_patch]'s dispatch.  The bit is already flipped in
   [ex]. *)
let patch_delta c ex bit =
  let db = Extract.database ex in
  let cell =
    match Bitdb.resource db bit with
    | Bitdb.Lut_bit (b, _) ->
        (c.c_bel_node.(b), Cp_table (Extract.lut_table ex b))
    | Bitdb.In_inv (b, _) ->
        (c.c_bel_node.(b), Cp_inv (Extract.in_inv_mask ex b))
    | Bitdb.Ff_init b | Bitdb.Sr_inv b ->
        (c.c_bel_node.(b), Cp_qinit (Extract.ff_init ex b))
    | Bitdb.Ce_inv b -> (c.c_bel_node.(b), Cp_ce (Extract.ce_inv ex b))
    | _ -> invalid_arg "Fsim.patch_delta: not a patchable bit"
  in
  { dl_cell = Some cell; dl_rows = [||]; dl_extras = [||] }

(* A [Path_reroute] fault as an overlay over the *base* graph: runs
   phase A only, then finds the stale reader rows through the base
   reader CSR from the orphaned nodes instead of [reroute]'s O(n)
   scan — the remap itself is identical ([node_of] over the same
   wires).  [None] falls back to the scalar engine: the places
   [reroute] would bail, plus an [Out_sel] kind change (lanes share
   node kinds) and an orphaned watch node (lanes share the watch
   resolution). *)
let fault_delta ~scratch:s c base ex bit ~succ_off ~succ ~bel_of =
  let dev = Extract.device ex in
  if dev != c.c_dev then
    invalid_arg "Fsim.fault_delta: cone from another device";
  try
    let pa = phase_a ~scratch:s c base ex bit in
    let node_of = pa.pa_node_of and orphaned = pa.pa_orphaned in
    let cell =
      match pa.pa_cell with
      | `Out _ -> raise Too_hard
      | `None -> None
      | `Lut (node, table, _) -> Some (node, Cp_table table)
    in
    if pa.pa_have_orphans then
      Hashtbl.iter
        (fun _ nd -> if orphaned nd then raise Too_hard)
        base.watch_node;
    let rows = ref [] in
    let row_done = Hashtbl.create 8 in
    let add_cell_row () =
      match pa.pa_cell with
      | `Lut (node, _, row) ->
          Hashtbl.add row_done node ();
          rows := (node, row) :: !rows
      | `None | `Out _ -> ()
    in
    add_cell_row ();
    let add_row node =
      if not (Hashtbl.mem row_done node) then begin
        Hashtbl.add row_done node ();
        if Array.length base.res_wires.(node) > 0 then
          rows := (node, Array.map node_of base.res_wires.(node)) :: !rows
        else
          let k = base.kind.(node) in
          if k = k_bel_comb || k = k_bel_reg then begin
            let b = bel_of.(node) in
            if b < 0 then raise Too_hard;
            let pins = base.inputs.(node) in
            let row =
              Array.mapi
                (fun j p ->
                  if p < 0 then -1 else node_of dev.Device.bel_in.(b).(j))
                pins
            in
            rows := (node, row) :: !rows
          end
          (* pads and constants have no input rows *)
      end
    in
    List.iter
      (fun n ->
        for e = succ_off.(n) to succ_off.(n + 1) - 1 do
          add_row succ.(e)
        done)
      pa.pa_orph;
    let extras =
      Array.init pa.pa_n_extra (fun i ->
          let us, ins = Hashtbl.find pa.pa_extras (base.nnodes + i) in
          (!ins, us))
    in
    Some { dl_cell = cell; dl_rows = Array.of_list !rows; dl_extras = extras }
  with Too_hard -> None

(* ------------------------------------------------------------------ *)
(* Baseline tape: the fault-free per-cycle value of every node, packed
   2 bits per three-valued logic value.  One tape per worker amortises
   the single fault-free run over every fault the worker executes. *)

type tape = {
  tp_nnodes : int;
  tp_cycles : int;
  tp_stride : int;  (* bytes per cycle *)
  tp_data : Bytes.t;
}

let logic_code = Fsim_backend.Scalar.logic_code
let code_logic = Fsim_backend.Scalar.code_logic

let tape_create ~nnodes ~cycles =
  if nnodes < 0 || cycles < 0 then invalid_arg "Fsim.tape_create";
  let stride = (nnodes + 3) / 4 in
  {
    tp_nnodes = nnodes;
    tp_cycles = cycles;
    tp_stride = stride;
    tp_data = Bytes.make (max 1 (stride * cycles)) '\000';
  }

let tape_nnodes tp = tp.tp_nnodes
let tape_cycles tp = tp.tp_cycles

let tape_set tp ~cycle ~node v =
  if cycle < 0 || cycle >= tp.tp_cycles || node < 0 || node >= tp.tp_nnodes
  then invalid_arg "Fsim.tape_set";
  let i = (tp.tp_stride * cycle) + (node lsr 2) in
  let sh = (node land 3) * 2 in
  let b = Char.code (Bytes.get tp.tp_data i) in
  Bytes.set tp.tp_data i
    (Char.chr ((b land lnot (3 lsl sh)) lor (logic_code v lsl sh)))

(* Unchecked read for the per-cycle hot loops below; bounds are
   established once per fault. *)
let tape_get_u tp cycle node =
  let b =
    Char.code
      (Bytes.unsafe_get tp.tp_data ((tp.tp_stride * cycle) + (node lsr 2)))
  in
  code_logic ((b lsr ((node land 3) * 2)) land 3)

let tape_get tp ~cycle ~node =
  if cycle < 0 || cycle >= tp.tp_cycles || node < 0 || node >= tp.tp_nnodes
  then invalid_arg "Fsim.tape_get";
  tape_get_u tp cycle node

let tape_record tp t ~cycle =
  if t.nnodes <> tp.tp_nnodes then
    invalid_arg "Fsim.tape_record: tape sized for another simulator";
  if cycle < 0 || cycle >= tp.tp_cycles then invalid_arg "Fsim.tape_record";
  let base = tp.tp_stride * cycle in
  let n = t.nnodes in
  let v = t.values in
  let node = ref 0 in
  let i = ref 0 in
  while !node < n do
    let lim = min 4 (n - !node) in
    let b = ref 0 in
    for j = 0 to lim - 1 do
      b := !b lor (logic_code v.(!node + j) lsl (j * 2))
    done;
    Bytes.set tp.tp_data (base + !i) (Char.chr !b);
    incr i;
    node := !node + 4
  done

(* ------------------------------------------------------------------ *)
(* Differential fault simulation.

   A fault disturbs only the static fanout cone of its seed nodes: the
   transitive closure over graph successors (reverse edges of [inputs],
   which covers resolve inputs, comb pins *and* register pins, so the
   closure crosses register boundaries).  The engine simulates only the
   cone; any input read from outside it comes from the baseline tape.
   Within the cone a dirty-stamp event scheme skips nodes whose inputs
   did not change this cycle, and a convergence check at each cycle
   boundary abandons the fault early once it provably can no longer
   diverge from the baseline.

   Convergence needs care because the fault is *persistent* (the flipped
   configuration bit stays flipped): cone state equal to the baseline at
   cycle c does not by itself imply equality forever — a flipped LUT row
   may first be exercised at a later cycle.  The sound rule used here is
   state equality (cone values and cone register state match the tape at
   the boundary) *plus* a seed replay: only the seed nodes are evaluated
   against pure tape inputs for every remaining cycle, and each old-node
   seed must reproduce its taped value.  If so, every non-seed cone node
   keeps seeing baseline inputs and the whole cone provably tracks the
   tape; the fault's outcome is decided.  The replay is skipped (no
   early exit) when a seed sits in a cyclic SCC, where single-node
   re-evaluation is not the fixpoint the full engine computes. *)

type dscratch = {
  mutable dd_csr_for : t option;  (* simulator the CSR below was built for *)
  mutable dd_ncap : int;  (* node capacity *)
  mutable dd_off : int array;  (* CSR row offsets, nnodes+1 *)
  mutable dd_cursor : int array;
  mutable dd_ecap : int;
  mutable dd_succ : int array;  (* CSR successor lists *)
  mutable dd_mark : Bytes.t;  (* '\001' = cone member *)
  mutable dd_fmark : Bytes.t;  (* '\001' = frontier member *)
  mutable dd_smark : Bytes.t;  (* '\001' = seed *)
  mutable dd_cone : int array;  (* cone nodes, evaluation order *)
  mutable dd_ncone : int;
  mutable dd_grp : int array;  (* group starts into dd_cone, dd_ngrp+1 *)
  mutable dd_gcyc : Bytes.t;  (* per group: cyclic SCC *)
  mutable dd_ngrp : int;
  mutable dd_regs : int array;  (* cone registers *)
  mutable dd_nregs : int;
  mutable dd_frontier : int array;  (* non-cone inputs of cone nodes *)
  mutable dd_nfrontier : int;
  mutable dd_seeds : int array;  (* seeds, evaluation order *)
  mutable dd_nseeds : int;
  mutable dd_suspect : int array;  (* watch indices that can differ *)
  mutable dd_scap : int;
  mutable dd_nsuspect : int;
  mutable dd_dirty : int array;  (* per node: tick stamp of dirtiness *)
  mutable dd_rdirty : int array;  (* per register: tick stamp *)
  mutable dd_tick : int;  (* monotone across faults *)
  mutable dd_old : Logic.t array;  (* cyclic-group pre-eval values *)
  mutable dd_rv : Logic.t array;  (* replay overlay: value *)
  mutable dd_rvl : Logic.t array;  (* replay overlay: last *)
  mutable dd_rq : Logic.t array;  (* replay overlay: register state *)
  mutable dd_depth : int array;  (* per node: BFS depth from the seeds *)
  mutable dd_divmark : Bytes.t;  (* '\001' = diverged from the tape *)
  (* forensic summary of the last forensics-enabled [diff_run] *)
  mutable dd_fcollect : bool;
  mutable dd_fdiverged : int;
  mutable dd_ffirst_node : int;
  mutable dd_ffirst_cycle : int;
  mutable dd_fdepth : int;
}

let make_dscratch () =
  {
    dd_csr_for = None;
    dd_ncap = 0;
    dd_off = [||];
    dd_cursor = [||];
    dd_ecap = 0;
    dd_succ = [||];
    dd_mark = Bytes.empty;
    dd_fmark = Bytes.empty;
    dd_smark = Bytes.empty;
    dd_cone = [||];
    dd_ncone = 0;
    dd_grp = [||];
    dd_gcyc = Bytes.empty;
    dd_ngrp = 0;
    dd_regs = [||];
    dd_nregs = 0;
    dd_frontier = [||];
    dd_nfrontier = 0;
    dd_seeds = [||];
    dd_nseeds = 0;
    dd_suspect = [||];
    dd_scap = 0;
    dd_nsuspect = 0;
    dd_dirty = [||];
    dd_rdirty = [||];
    dd_tick = 0;
    dd_old = [||];
    dd_rv = [||];
    dd_rvl = [||];
    dd_rq = [||];
    dd_depth = [||];
    dd_divmark = Bytes.empty;
    dd_fcollect = false;
    dd_fdiverged = 0;
    dd_ffirst_node = -1;
    dd_ffirst_cycle = -1;
    dd_fdepth = -1;
  }

let dscratch_ensure d n =
  if d.dd_ncap < n then begin
    let cap = max n (max 1024 (2 * d.dd_ncap)) in
    d.dd_ncap <- cap;
    d.dd_off <- Array.make (cap + 1) 0;
    d.dd_cursor <- Array.make (cap + 1) 0;
    d.dd_mark <- Bytes.make cap '\000';
    d.dd_fmark <- Bytes.make cap '\000';
    d.dd_smark <- Bytes.make cap '\000';
    d.dd_cone <- Array.make cap 0;
    d.dd_grp <- Array.make (cap + 1) 0;
    d.dd_gcyc <- Bytes.make cap '\000';
    d.dd_regs <- Array.make cap 0;
    d.dd_frontier <- Array.make cap 0;
    d.dd_seeds <- Array.make cap 0;
    (* fresh stamp arrays start at 0 < any live tick: never stale-dirty *)
    d.dd_dirty <- Array.make cap 0;
    d.dd_rdirty <- Array.make cap 0;
    d.dd_old <- Array.make cap Logic.X;
    d.dd_rv <- Array.make cap Logic.X;
    d.dd_rvl <- Array.make cap Logic.X;
    d.dd_rq <- Array.make cap Logic.X;
    d.dd_depth <- Array.make cap 0;
    d.dd_divmark <- Bytes.make cap '\000';
    d.dd_csr_for <- None
  end

let dscratch_suspect_ensure d n =
  if d.dd_scap < n then begin
    d.dd_scap <- max n (2 * d.dd_scap);
    d.dd_suspect <- Array.make d.dd_scap 0
  end

(* Reverse CSR over [inputs]: successors of each node.  Cached while the
   physical simulator is unchanged — cell-content patches ([with_patch])
   never alter the edge set, so the base simulator's CSR survives a whole
   campaign; derived reroute simulators get a rebuild. *)
let build_csr d sim =
  let n = sim.nnodes in
  let off = d.dd_off in
  Array.fill off 0 (n + 1) 0;
  for node = 0 to n - 1 do
    let ins = sim.inputs.(node) in
    for j = 0 to Array.length ins - 1 do
      let p = ins.(j) in
      if p >= 0 then off.(p + 1) <- off.(p + 1) + 1
    done
  done;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let e = off.(n) in
  if d.dd_ecap < e then begin
    d.dd_ecap <- max e (2 * d.dd_ecap);
    d.dd_succ <- Array.make d.dd_ecap 0
  end;
  Array.blit off 0 d.dd_cursor 0 (n + 1);
  for node = 0 to n - 1 do
    let ins = sim.inputs.(node) in
    for j = 0 to Array.length ins - 1 do
      let p = ins.(j) in
      if p >= 0 then begin
        d.dd_succ.(d.dd_cursor.(p)) <- node;
        d.dd_cursor.(p) <- d.dd_cursor.(p) + 1
      end
    done
  done

(* Allocation-free LUT evaluation over an arbitrary pin-value reader,
   for the seed replay (values come from overlays or the tape). *)
let replay_lut t node rv0 rv1 rv2 rv3 =
  let table = t.table.(node) in
  let inv = t.inv.(node) in
  let pins = t.inputs.(node) in
  let acc = ref 0 in
  for j = 0 to 3 do
    if pins.(j) >= 0 then begin
      let v = if j = 0 then rv0 else if j = 1 then rv1 else if j = 2 then rv2 else rv3 in
      (match v with
      | Logic.Zero -> acc := !acc lor (((inv lsr j) land 1) lsl j)
      | Logic.One -> acc := !acc lor ((1 - ((inv lsr j) land 1)) lsl j)
      | Logic.X -> acc := !acc lor (1 lsl (j + 4)))
    end
  done;
  let idx = !acc land 0xf and xmask = !acc lsr 4 in
  let first = (table lsr idx) land 1 in
  if xmask = 0 then Logic.of_bool (first = 1)
  else if lut_x_const table idx xmask xmask first then Logic.of_bool (first = 1)
  else Logic.X

type dseeds = Seed_node of int | Seed_derived

let diff_run ?(ndetect = 0) ~forensics ~scratch:d ~tape:tp ~base ~sim ~seeds
    ~watch ~base_watch ~expected () =
  let n = sim.nnodes in
  let cycles = tp.tp_cycles in
  if tp.tp_nnodes <> base.nnodes then
    invalid_arg "Fsim.diff_run: tape recorded for another simulator";
  if Array.length expected <> cycles then
    invalid_arg "Fsim.diff_run: expected matrix / tape cycle mismatch";
  if Array.length watch <> Array.length base_watch then
    invalid_arg "Fsim.diff_run: watch array length mismatch";
  if ndetect < 0 || ndetect > Array.length watch then
    invalid_arg "Fsim.diff_run: ndetect out of range";
  (* watch layout: functional outputs first, then [ndetect] detection
     nodes (voter disagreement flags, expected Zero on the baseline) *)
  let nfunc = Array.length watch - ndetect in
  dscratch_ensure d n;
  dscratch_suspect_ensure d (Array.length watch);
  (match d.dd_csr_for with
  | Some s when s == sim -> ()  (* content patches keep the edge set *)
  | _ ->
      build_csr d sim;
      d.dd_csr_for <- Some sim);
  Bytes.fill d.dd_mark 0 n '\000';
  Bytes.fill d.dd_fmark 0 n '\000';
  Bytes.fill d.dd_smark 0 n '\000';
  d.dd_fcollect <- forensics;
  if forensics then begin
    Bytes.fill d.dd_divmark 0 n '\000';
    d.dd_fdiverged <- 0;
    d.dd_ffirst_node <- -1;
    d.dd_ffirst_cycle <- -1;
    d.dd_fdepth <- -1
  end;
  (* ---- seeds and cone closure (BFS over the CSR).  The queue is
     emptied in FIFO order, so the depth recorded at first visit is the
     BFS distance from the seed set. ---- *)
  let qtail = ref 0 in
  let queue = d.dd_cone in (* BFS visit list; rebuilt in eval order below *)
  let push v dep =
    if Bytes.get d.dd_mark v = '\000' then begin
      Bytes.set d.dd_mark v '\001';
      d.dd_depth.(v) <- dep;
      queue.(!qtail) <- v;
      incr qtail
    end
  in
  let seed v =
    if Bytes.get d.dd_smark v = '\000' then begin
      Bytes.set d.dd_smark v '\001';
      push v 0
    end
  in
  (match seeds with
  | Seed_node s -> seed s
  | Seed_derived ->
      (* every node whose cell content or pin wiring differs from the
         base, plus every appended node *)
      let bn = base.nnodes in
      for node = 0 to bn - 1 do
        if
          sim.kind.(node) <> base.kind.(node)
          || sim.table.(node) <> base.table.(node)
          || sim.inv.(node) <> base.inv.(node)
          || sim.ce_frozen.(node) <> base.ce_frozen.(node)
          || (not (Logic.equal sim.q_init.(node) base.q_init.(node)))
          || sim.inputs.(node) != base.inputs.(node)
             && sim.inputs.(node) <> base.inputs.(node)
        then seed node
      done;
      for node = bn to n - 1 do
        seed node
      done);
  let qhead = ref 0 in
  while !qhead < !qtail do
    let v = queue.(!qhead) in
    incr qhead;
    let dep = d.dd_depth.(v) + 1 in
    for e = d.dd_off.(v) to d.dd_off.(v + 1) - 1 do
      push d.dd_succ.(e) dep
    done
  done;
  (* ---- cone in evaluation order, grouped by the simulator's SCCs.
     SCC edges are a subset of CSR edges, so reaching one member of a
     cyclic SCC reaches them all: groups are never split. ---- *)
  d.dd_ncone <- 0;
  d.dd_ngrp <- 0;
  d.dd_nregs <- 0;
  d.dd_nseeds <- 0;
  let no_replay = ref false in
  let off = sim.scc_off and snodes = sim.scc_nodes in
  for si = 0 to sim.nsccs - 1 do
    let lo = off.(si) and hi = off.(si + 1) in
    let any = ref false in
    for i = lo to hi - 1 do
      if Bytes.get d.dd_mark snodes.(i) <> '\000' then any := true
    done;
    if !any then begin
      let cyc = Bytes.get sim.scc_cyclic si <> '\000' in
      d.dd_grp.(d.dd_ngrp) <- d.dd_ncone;
      Bytes.set d.dd_gcyc d.dd_ngrp (if cyc then '\001' else '\000');
      d.dd_ngrp <- d.dd_ngrp + 1;
      for i = lo to hi - 1 do
        let node = snodes.(i) in
        d.dd_cone.(d.dd_ncone) <- node;
        d.dd_ncone <- d.dd_ncone + 1;
        if sim.kind.(node) = k_bel_reg then begin
          d.dd_regs.(d.dd_nregs) <- node;
          d.dd_nregs <- d.dd_nregs + 1
        end;
        if Bytes.get d.dd_smark node <> '\000' then begin
          d.dd_seeds.(d.dd_nseeds) <- node;
          d.dd_nseeds <- d.dd_nseeds + 1;
          if cyc then no_replay := true
        end
      done
    end
  done;
  d.dd_grp.(d.dd_ngrp) <- d.dd_ncone;
  (* ---- frontier: non-cone inputs of cone nodes ---- *)
  d.dd_nfrontier <- 0;
  for i = 0 to d.dd_ncone - 1 do
    let ins = sim.inputs.(d.dd_cone.(i)) in
    for j = 0 to Array.length ins - 1 do
      let p = ins.(j) in
      if
        p >= 0
        && Bytes.get d.dd_mark p = '\000'
        && Bytes.get d.dd_fmark p = '\000'
      then begin
        Bytes.set d.dd_fmark p '\001';
        d.dd_frontier.(d.dd_nfrontier) <- p;
        d.dd_nfrontier <- d.dd_nfrontier + 1
      end
    done
  done;
  (* ---- suspect watch indices: remapped by [reroute] or inside the
     cone; every other watched node provably reads its taped value ---- *)
  d.dd_nsuspect <- 0;
  let remapped_old = ref false and remapped_extra = ref false in
  for i = 0 to Array.length watch - 1 do
    let w = watch.(i) in
    let rm = w <> base_watch.(i) in
    if rm || Bytes.get d.dd_mark w <> '\000' then begin
      d.dd_suspect.(d.dd_nsuspect) <- i;
      d.dd_nsuspect <- d.dd_nsuspect + 1;
      if rm then
        if w >= tp.tp_nnodes then remapped_extra := true
        else remapped_old := true
    end
  done;
  (* ---- initial state: X values, q_init registers, fresh dirty ticks
     (everything in the cone is dirty at cycle 0) ---- *)
  let values = sim.values and last = sim.last and q = sim.q in
  for i = 0 to d.dd_ncone - 1 do
    let node = d.dd_cone.(i) in
    values.(node) <- Logic.X;
    last.(node) <- Logic.X
  done;
  for i = 0 to d.dd_nfrontier - 1 do
    let f = d.dd_frontier.(i) in
    values.(f) <- Logic.X;
    last.(f) <- Logic.X
  done;
  for i = 0 to d.dd_nregs - 1 do
    let r = d.dd_regs.(i) in
    q.(r) <- sim.q_init.(r)
  done;
  let tick0 = d.dd_tick + 1 in
  d.dd_tick <- tick0 + cycles + 2;
  for i = 0 to d.dd_ncone - 1 do
    d.dd_dirty.(d.dd_cone.(i)) <- tick0
  done;
  for i = 0 to d.dd_nregs - 1 do
    d.dd_rdirty.(d.dd_regs.(i)) <- tick0
  done;
  (* A node's settled value changed at [tick]: schedule its readers.
     Registers re-latch at this cycle's clock; resolve readers also
     re-evaluate next cycle because the glitch rule reads [last]. *)
  let mark_readers node tick =
    for e = d.dd_off.(node) to d.dd_off.(node + 1) - 1 do
      let s = d.dd_succ.(e) in
      if Bytes.get d.dd_mark s <> '\000' then begin
        let k = sim.kind.(s) in
        if k = k_bel_reg then begin
          if d.dd_rdirty.(s) < tick then d.dd_rdirty.(s) <- tick
        end
        else begin
          let target = if k = k_resolve then tick + 1 else tick in
          if d.dd_dirty.(s) < target then d.dd_dirty.(s) <- target
        end
      end
    done
  in
  (* Seed replay: from a boundary where the cone state equals the tape,
     evaluate only the seeds against taped inputs for every remaining
     cycle.  Old-node seeds must reproduce their taped values; then no
     non-seed cone node can ever see a non-baseline input again. *)
  let rv = d.dd_rv and rvl = d.dd_rvl and rq = d.dd_rq in
  let getv cy p =
    if Bytes.get d.dd_smark p <> '\000' then rv.(p) else tape_get_u tp cy p
  in
  let getl cy p =
    if Bytes.get d.dd_smark p <> '\000' then rvl.(p)
    else tape_get_u tp (cy - 1) p
  in
  let replay_eval cy s =
    let k = sim.kind.(s) in
    if k = k_bel_reg then rq.(s)
    else if k = k_bel_comb then begin
      let pins = sim.inputs.(s) in
      let pv j = if pins.(j) < 0 then Logic.X else getv cy pins.(j) in
      replay_lut sim s (pv 0) (pv 1) (pv 2) (pv 3)
    end
    else if k = k_resolve then begin
      let ins = sim.inputs.(s) in
      let len = Array.length ins in
      if len = 0 then Logic.X
      else begin
        let v = ref (getv cy ins.(0)) in
        for i = 1 to len - 1 do
          v := Logic.resolve !v (getv cy ins.(i))
        done;
        match !v with
        | Logic.X -> Logic.X
        | (Logic.Zero | Logic.One) as sv ->
            let glitch = ref false in
            for i = 0 to len - 1 do
              if not (Logic.equal (getl cy ins.(i)) sv) then glitch := true
            done;
            if !glitch then Logic.X else sv
      end
    end
    else Logic.X (* constx; pads and constants are never seeds *)
  in
  let replay_converges cy =
    for i = 0 to d.dd_nseeds - 1 do
      let s = d.dd_seeds.(i) in
      rv.(s) <- values.(s);
      rvl.(s) <- last.(s);
      if sim.kind.(s) = k_bel_reg then rq.(s) <- q.(s)
    done;
    let ok = ref true in
    let cy' = ref (cy + 1) in
    while !ok && !cy' < cycles do
      let cc = !cy' in
      let i = ref 0 in
      while !ok && !i < d.dd_nseeds do
        let s = d.dd_seeds.(!i) in
        let v = replay_eval cc s in
        rv.(s) <- v;
        if s < tp.tp_nnodes && not (Logic.equal v (tape_get_u tp cc s)) then
          ok := false;
        incr i
      done;
      if !ok then begin
        for i = 0 to d.dd_nseeds - 1 do
          let s = d.dd_seeds.(i) in
          if sim.kind.(s) = k_bel_reg && not sim.ce_frozen.(s) then begin
            let pins = sim.inputs.(s) in
            let pv j = if pins.(j) < 0 then Logic.X else getv cc pins.(j) in
            rq.(s) <- replay_lut sim s (pv 0) (pv 1) (pv 2) (pv 3)
          end
        done;
        for i = 0 to d.dd_nseeds - 1 do
          let s = d.dd_seeds.(i) in
          rvl.(s) <- rv.(s)
        done
      end;
      incr cy'
    done;
    !ok
  in
  let state_matches cy =
    let bn = tp.tp_nnodes in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < d.dd_ncone do
      let node = d.dd_cone.(!i) in
      if node < bn && not (Logic.equal values.(node) (tape_get_u tp cy node))
      then ok := false;
      incr i
    done;
    let i = ref 0 in
    while !ok && !i < d.dd_nregs do
      let r = d.dd_regs.(!i) in
      (* cone registers are base nodes; the tape holds the baseline's q
         at the *next* boundary via its settled value then *)
      if not (Logic.equal q.(r) (tape_get_u tp (cy + 1) r)) then ok := false;
      incr i
    done;
    !ok
  in
  (* ---- the per-cycle loop ---- *)
  let error_cycle = ref (-1) in
  let converge_cycle = ref (-1) in
  (* first cycle a detection watch node left Zero; the loop keeps running
     past a functional error until detection also resolves (fires,
     converges away, or the stimulus ends) — and vice versa *)
  let detect_cycle = ref (-1) in
  let det_pending () = ndetect > 0 && !detect_cycle < 0 in
  let cy = ref 0 in
  while
    (!error_cycle < 0 || det_pending ())
    && !converge_cycle < 0
    && !cy < cycles
  do
    let c = !cy in
    let tick = tick0 + c in
    (* frontier values come from the tape; a change schedules readers *)
    for i = 0 to d.dd_nfrontier - 1 do
      let f = d.dd_frontier.(i) in
      let v = tape_get_u tp c f in
      if not (Logic.equal v values.(f)) then begin
        values.(f) <- v;
        mark_readers f tick
      end
    done;
    (* event-driven cone evaluation in SCC order *)
    for g = 0 to d.dd_ngrp - 1 do
      let lo = d.dd_grp.(g) and hi = d.dd_grp.(g + 1) in
      if Bytes.get d.dd_gcyc g = '\000' then begin
        let node = d.dd_cone.(lo) in
        if d.dd_dirty.(node) >= tick then begin
          let v = eval_node sim node in
          if not (Logic.equal v values.(node)) then begin
            values.(node) <- v;
            mark_readers node tick
          end
        end
      end
      else begin
        let dirty = ref false in
        for i = lo to hi - 1 do
          if d.dd_dirty.(d.dd_cone.(i)) >= tick then dirty := true
        done;
        if !dirty then begin
          for i = lo to hi - 1 do
            let node = d.dd_cone.(i) in
            d.dd_old.(node) <- values.(node);
            values.(node) <- Logic.X
          done;
          let changed = ref true in
          let guard = ref ((3 * (hi - lo)) + 4) in
          while !changed && !guard > 0 do
            changed := false;
            decr guard;
            for i = lo to hi - 1 do
              let node = d.dd_cone.(i) in
              let v = eval_node sim node in
              if not (Logic.equal v values.(node)) then begin
                values.(node) <- v;
                changed := true
              end
            done
          done;
          for i = lo to hi - 1 do
            let node = d.dd_cone.(i) in
            if not (Logic.equal values.(node) d.dd_old.(node)) then
              mark_readers node tick
          done
        end
      end
    done;
    (* forensic divergence scan: compare the settled cone against the
       baseline tape.  Read-only with respect to the simulation state, so
       results are bit-identical whether or not it runs. *)
    if forensics then begin
      let bn = tp.tp_nnodes in
      for i = 0 to d.dd_ncone - 1 do
        let node = d.dd_cone.(i) in
        if
          node < bn
          && Bytes.get d.dd_divmark node = '\000'
          && not (Logic.equal values.(node) (tape_get_u tp c node))
        then begin
          Bytes.set d.dd_divmark node '\001';
          d.dd_fdiverged <- d.dd_fdiverged + 1;
          if d.dd_ffirst_node < 0 then begin
            (* dd_cone is in evaluation order: the first hit on the first
               diverging cycle is the topologically-first divergence *)
            d.dd_ffirst_node <- node;
            d.dd_ffirst_cycle <- c
          end;
          if d.dd_depth.(node) > d.dd_fdepth then
            d.dd_fdepth <- d.dd_depth.(node)
        end
      done
    end;
    (* cone-aware output check: only suspects can differ from golden *)
    let exp = expected.(c) in
    let i = ref 0 in
    while (!error_cycle < 0 || det_pending ()) && !i < d.dd_nsuspect do
      let wi = d.dd_suspect.(!i) in
      let w = watch.(wi) in
      let v =
        if Bytes.get d.dd_mark w <> '\000' then values.(w)
        else tape_get_u tp c w
      in
      if not (Logic.equal v exp.(wi)) then
        if wi < nfunc then begin
          if !error_cycle < 0 then error_cycle := c
        end
        else if !detect_cycle < 0 then detect_cycle := c;
      incr i
    done;
    if !error_cycle < 0 || det_pending () then begin
      (* clock the cone registers; a q change dirties readers next cycle *)
      for i = 0 to d.dd_nregs - 1 do
        let r = d.dd_regs.(i) in
        if d.dd_rdirty.(r) >= tick && not sim.ce_frozen.(r) then begin
          let nq = lut_eval sim r in
          if not (Logic.equal nq q.(r)) then begin
            q.(r) <- nq;
            if d.dd_dirty.(r) < tick + 1 then d.dd_dirty.(r) <- tick + 1
          end
        end
      done;
      for i = 0 to d.dd_ncone - 1 do
        let node = d.dd_cone.(i) in
        last.(node) <- values.(node)
      done;
      for i = 0 to d.dd_nfrontier - 1 do
        let f = d.dd_frontier.(i) in
        last.(f) <- values.(f)
      done;
      (* convergence early-exit *)
      if
        c < cycles - 1
        && (not !no_replay)
        && (not !remapped_extra)
        && state_matches c
        && replay_converges c
      then begin
        converge_cycle := c;
        (* a remapped watch keeps reading a different (old) node than
           the baseline run compared: scan its taped values over the
           skipped cycles *)
        if !remapped_old then begin
          let c' = ref (c + 1) in
          while (!error_cycle < 0 || det_pending ()) && !c' < cycles do
            let exp = expected.(!c') in
            let si = ref 0 in
            while (!error_cycle < 0 || det_pending ()) && !si < d.dd_nsuspect
            do
              let wi = d.dd_suspect.(!si) in
              let w = watch.(wi) in
              if
                w <> base_watch.(wi)
                && not (Logic.equal (tape_get_u tp !c' w) exp.(wi))
              then
                if wi < nfunc then begin
                  if !error_cycle < 0 then error_cycle := !c'
                end
                else if !detect_cycle < 0 then detect_cycle := !c';
              incr si
            done;
            incr c'
          done
        end
      end
    end;
    incr cy
  done;
  (!error_cycle, !converge_cycle, !detect_cycle)

(* Forensic view of the last [diff_run]. *)
type diff_forensics = {
  df_collected : bool;
  df_cone : int;
  df_seeds : int;
  df_frontier : int;
  df_diverged : int;
  df_first_node : int;
  df_first_cycle : int;
  df_depth : int;
}

let diff_forensics d =
  {
    df_collected = d.dd_fcollect;
    df_cone = d.dd_ncone;
    df_seeds = d.dd_nseeds;
    df_frontier = d.dd_nfrontier;
    df_diverged = (if d.dd_fcollect then d.dd_fdiverged else -1);
    df_first_node = (if d.dd_fcollect then d.dd_ffirst_node else -1);
    df_first_cycle = (if d.dd_fcollect then d.dd_ffirst_cycle else -1);
    df_depth = (if d.dd_fcollect then d.dd_fdepth else -1);
  }

let diff_node_diverged d node =
  d.dd_fcollect
  && node < Bytes.length d.dd_divmark
  && Bytes.get d.dd_divmark node <> '\000'

(* Test hooks: the cone computed by the last [diff_run]. *)
let diff_cone d = Array.sub d.dd_cone 0 d.dd_ncone

let diff_cone_is_closed d sim =
  let ok = ref true in
  for node = 0 to sim.nnodes - 1 do
    if Bytes.get d.dd_mark node = '\000' then begin
      let ins = sim.inputs.(node) in
      for j = 0 to Array.length ins - 1 do
        let p = ins.(j) in
        if p >= 0 && Bytes.get d.dd_mark p <> '\000' then ok := false
      done
    end
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Telemetry: shadowing wrappers so every caller is measured.  The
   histograms are process-global Tmr_obs instruments; recording is one
   atomic add per call and needs no registered sink. *)

let m_build_ns = Tmr_obs.Metrics.histogram "fsim.build_ns"
let m_reroute_ns = Tmr_obs.Metrics.histogram "fsim.reroute_ns"
let m_reroute_fallback = Tmr_obs.Metrics.counter "fsim.reroute_fallback"

let build ?ws ex ~watch_outputs =
  let t0 = Tmr_obs.Clock.now_ns () in
  let t = build ?ws ex ~watch_outputs in
  Tmr_obs.Metrics.observe m_build_ns (Tmr_obs.Clock.now_ns () - t0);
  t

let reroute ~scratch c base ex bit =
  let t0 = Tmr_obs.Clock.now_ns () in
  let r = reroute ~scratch c base ex bit in
  Tmr_obs.Metrics.observe m_reroute_ns (Tmr_obs.Clock.now_ns () - t0);
  if Option.is_none r then Tmr_obs.Metrics.incr m_reroute_fallback;
  r
