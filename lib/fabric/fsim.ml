module Logic = Tmr_logic.Logic
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb

(* Node kinds, encoded for tight loops. *)
let k_constx = 0
let k_pad = 1
let k_bel_comb = 2
let k_bel_reg = 3
let k_resolve = 4

(* Node 0 is always the constant-X node (first allocation in [build]). *)
let x_node_id = 0

(* Scratch arrays for the SCC pass, reused across invocations so the
   per-fault path stays allocation-free (minor-GC barriers are
   stop-the-world across every domain). *)
type scc_scratch = {
  mutable sc_cap : int;  (* node capacity of the arrays below *)
  mutable sc_index : int array;
  mutable sc_low : int array;
  mutable sc_onstack : Bytes.t;
  mutable sc_sstack : int array;  (* Tarjan value stack *)
  mutable sc_cnode : int array;  (* DFS call stack: node *)
  mutable sc_ci : int array;  (* DFS call stack: next child index *)
  mutable sc_off : int array;  (* nsccs+1 offsets into sc_nodes *)
  mutable sc_nodes : int array;  (* SCC members, evaluation order *)
  mutable sc_cyclic : Bytes.t;  (* per SCC: '\001' when cyclic *)
}

let make_scc_scratch () =
  {
    sc_cap = 0;
    sc_index = [||];
    sc_low = [||];
    sc_onstack = Bytes.empty;
    sc_sstack = [||];
    sc_cnode = [||];
    sc_ci = [||];
    sc_off = [||];
    sc_nodes = [||];
    sc_cyclic = Bytes.empty;
  }

let scc_ensure s n =
  if s.sc_cap < n then begin
    let cap = max n (max 256 (2 * s.sc_cap)) in
    s.sc_cap <- cap;
    s.sc_index <- Array.make cap 0;
    s.sc_low <- Array.make cap 0;
    s.sc_onstack <- Bytes.make cap '\000';
    s.sc_sstack <- Array.make cap 0;
    s.sc_cnode <- Array.make cap 0;
    s.sc_ci <- Array.make cap 0;
    s.sc_off <- Array.make (cap + 1) 0;
    s.sc_nodes <- Array.make cap 0;
    s.sc_cyclic <- Bytes.make cap '\000'
  end

type workspace = {
  ws_dev : Device.t;
  mutable epoch : int;
  wire_mark : int array;  (* cone membership stamp *)
  bel_mark : int array;
  res_stamp : int array;  (* wire -> epoch of res_node validity *)
  res_node : int array;  (* wire -> node id *)
  ing_stamp : int array;  (* wire -> epoch when in-progress *)
  bel_node_stamp : int array;
  bel_node_id : int array;
  ws_scc : scc_scratch;
}

let make_workspace dev =
  {
    ws_dev = dev;
    epoch = 0;
    wire_mark = Array.make dev.Device.nwires 0;
    bel_mark = Array.make dev.Device.nbels 0;
    res_stamp = Array.make dev.Device.nwires 0;
    res_node = Array.make dev.Device.nwires 0;
    ing_stamp = Array.make dev.Device.nwires 0;
    bel_node_stamp = Array.make dev.Device.nbels 0;
    bel_node_id = Array.make dev.Device.nbels 0;
    ws_scc = make_scc_scratch ();
  }

type t = {
  nnodes : int;
  kind : int array;
  inputs : int array array;  (* resolve inputs; bel pin nodes (len 4, -1 unused) *)
  res_wires : int array array;
      (* resolve nodes: the driver wire behind each input — lets a fault
         re-derive the inputs when routing changes upstream *)
  table : int array;  (* bel nodes: LUT table *)
  inv : int array;  (* bel nodes: pin inversion mask *)
  ce_frozen : bool array;  (* bel nodes: clock-enable inverted *)
  q_init : Logic.t array;
  q : Logic.t array;
  values : Logic.t array;
  last : Logic.t array;
      (* settled value of each node at the end of the previous cycle; used
         by the drive-conflict glitch rule on shorted nodes *)
  nsccs : int;
  scc_off : int array;  (* nsccs+1 offsets into scc_nodes (may have slack) *)
  scc_nodes : int array;  (* flat SCC members, evaluation order *)
  scc_cyclic : Bytes.t;  (* per SCC *)
  pad_node : (int, int) Hashtbl.t;  (* PadIn wire -> node *)
  watch_node : (int, int) Hashtbl.t;  (* PadOut wire -> node *)
  has_loop : bool;
}

let support_mask table =
  let m = ref 0 in
  for j = 0 to 3 do
    let differs = ref false in
    for idx = 0 to 15 do
      if (table lsr idx) land 1 <> (table lsr (idx lxor (1 lsl j))) land 1 then
        differs := true
    done;
    if !differs then m := !m lor (1 lsl j)
  done;
  !m

(* Growable node store. *)
type builder = {
  mutable n : int;
  mutable b_kind : int array;
  mutable b_table : int array;
  mutable b_inv : int array;
  mutable b_ce : bool array;
  mutable b_qi : Logic.t array;
}

let builder_create () =
  {
    n = 0;
    b_kind = Array.make 256 0;
    b_table = Array.make 256 0;
    b_inv = Array.make 256 0;
    b_ce = Array.make 256 false;
    b_qi = Array.make 256 Logic.X;
  }

let builder_alloc b k ~table ~inv ~ce ~qi =
  if b.n >= Array.length b.b_kind then begin
    let grow a fill = Array.append a (Array.make (Array.length a) fill) in
    b.b_kind <- grow b.b_kind 0;
    b.b_table <- grow b.b_table 0;
    b.b_inv <- grow b.b_inv 0;
    b.b_ce <- grow b.b_ce false;
    b.b_qi <- grow b.b_qi Logic.X
  end;
  let id = b.n in
  b.b_kind.(id) <- k;
  b.b_table.(id) <- table;
  b.b_inv.(id) <- inv;
  b.b_ce.(id) <- ce;
  b.b_qi.(id) <- qi;
  b.n <- id + 1;
  id

(* SCC decomposition of the combinational graph (iterative Tarjan).
   Combinational dependencies: resolve -> inputs; comb bel -> pins.
   Registered bels, pads and constants are sources.  Tarjan emits an SCC
   only after everything it depends on has been emitted, so the emission
   order written to [sc_nodes] is already inputs-first.  Works entirely in
   [scratch]; returns [(nsccs, has_loop)]. *)
let rec self_dep deps node i =
  i < Array.length deps && (deps.(i) = node || self_dep deps node (i + 1))

let compute_sccs ~scratch:s ~nnodes:n ~kind ~inputs =
  scc_ensure s n;
  let index = s.sc_index and low = s.sc_low and onstack = s.sc_onstack in
  Array.fill index 0 n (-1);
  Bytes.fill onstack 0 n '\000';
  let dep node =
    let k = kind.(node) in
    if k = k_resolve || k = k_bel_comb then inputs.(node) else [||]
  in
  let counter = ref 0 in
  let sp = ref 0 in (* Tarjan value stack top *)
  let nsccs = ref 0 in
  let out = ref 0 in (* write position in sc_nodes *)
  let has_loop = ref false in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let csp = ref 0 in
      let push v =
        index.(v) <- !counter;
        low.(v) <- !counter;
        incr counter;
        s.sc_sstack.(!sp) <- v;
        incr sp;
        Bytes.set onstack v '\001';
        s.sc_cnode.(!csp) <- v;
        s.sc_ci.(!csp) <- 0;
        incr csp
      in
      push root;
      while !csp > 0 do
        let node = s.sc_cnode.(!csp - 1) in
        let i = s.sc_ci.(!csp - 1) in
        let deps = dep node in
        if i < Array.length deps then begin
          s.sc_ci.(!csp - 1) <- i + 1;
          let child = deps.(i) in
          if child >= 0 then begin
            if index.(child) < 0 then push child
            else if Bytes.get onstack child <> '\000' then
              low.(node) <- min low.(node) index.(child)
          end
        end
        else begin
          decr csp;
          if !csp > 0 then begin
            let parent = s.sc_cnode.(!csp - 1) in
            low.(parent) <- min low.(parent) low.(node)
          end;
          if low.(node) = index.(node) then begin
            let start = !out in
            let continue = ref true in
            while !continue do
              decr sp;
              let w = s.sc_sstack.(!sp) in
              Bytes.set onstack w '\000';
              s.sc_nodes.(!out) <- w;
              incr out;
              if w = node then continue := false
            done;
            let cyc =
              !out - start > 1
              || self_dep (dep s.sc_nodes.(start)) s.sc_nodes.(start) 0
            in
            s.sc_off.(!nsccs) <- start;
            Bytes.set s.sc_cyclic !nsccs (if cyc then '\001' else '\000');
            if cyc then has_loop := true;
            incr nsccs
          end
        end
      done
    end
  done;
  s.sc_off.(!nsccs) <- !out;
  (!nsccs, !has_loop)

let build ?ws ex ~watch_outputs =
  let dev = Extract.device ex in
  let ws =
    match ws with
    | Some w ->
        if w.ws_dev != dev then
          invalid_arg "Fsim.build: workspace built for another device";
        w
    | None -> make_workspace dev
  in
  ws.epoch <- ws.epoch + 1;
  let ep = ws.epoch in
  (* ---- Phase 1: collect the observable cone (wires and bels) ---- *)
  let bel_list = ref [] in
  let stack = ref [] in
  let push_wire w =
    if ws.wire_mark.(w) <> ep then begin
      ws.wire_mark.(w) <- ep;
      stack := w :: !stack
    end
  in
  Array.iter push_wire watch_outputs;
  let visit_bel b =
    if ws.bel_mark.(b) <> ep then begin
      ws.bel_mark.(b) <- ep;
      let mask = support_mask (Extract.lut_table ex b) in
      bel_list := (b, mask) :: !bel_list;
      Array.iteri
        (fun j pinw -> if (mask lsr j) land 1 = 1 then push_wire pinw)
        dev.Device.bel_in.(b)
    end
  in
  let rec drain () =
    match !stack with
    | [] -> ()
    | w :: rest ->
        stack := rest;
        (match dev.Device.wkind.(w) with
        | Device.BelOut -> visit_bel dev.Device.wire_bel.(w)
        | Device.PadIn -> ()
        | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
        | Device.HLong | Device.VLong | Device.BelIn | Device.PadOut ->
            List.iter push_wire (Extract.drivers ex w);
            List.iter push_wire (Extract.links ex w));
        drain ()
  in
  drain ();
  (* ---- Phase 2: allocate nodes ---- *)
  let bld = builder_create () in
  let alloc = builder_alloc bld in
  let x_node = alloc k_constx ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
  List.iter
    (fun (b, _mask) ->
      let registered = Extract.out_sel ex b in
      let id =
        alloc
          (if registered then k_bel_reg else k_bel_comb)
          ~table:(Extract.lut_table ex b)
          ~inv:(Extract.in_inv_mask ex b)
          ~ce:(Extract.ce_inv ex b)
          ~qi:(Extract.ff_init ex b)
      in
      ws.bel_node_stamp.(b) <- ep;
      ws.bel_node_id.(b) <- id)
    !bel_list;
  let pad_node = Hashtbl.create 64 in
  let resolve_inputs = Hashtbl.create 64 in
  let resolve_wires = Hashtbl.create 64 in
  let set_resolved w n =
    ws.res_stamp.(w) <- ep;
    ws.res_node.(w) <- n
  in
  let rec wire_node w =
    if ws.res_stamp.(w) = ep then ws.res_node.(w)
    else if ws.ing_stamp.(w) = ep then x_node (* pure driver loop: floats *)
    else begin
      match dev.Device.wkind.(w) with
      | Device.PadIn ->
          let pad = dev.Device.wire_pad.(w) in
          let n =
            if Extract.pad_enabled ex pad then begin
              match Hashtbl.find_opt pad_node w with
              | Some n -> n
              | None ->
                  let n = alloc k_pad ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
                  Hashtbl.add pad_node w n;
                  n
            end
            else x_node
          in
          set_resolved w n;
          n
      | Device.BelOut ->
          let b = dev.Device.wire_bel.(w) in
          let n =
            if ws.bel_node_stamp.(b) = ep then ws.bel_node_id.(b)
            else x_node (* outside the collected cone *)
          in
          set_resolved w n;
          n
      | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
      | Device.HLong | Device.VLong | Device.BelIn | Device.PadOut ->
          (* The electrical node is the whole component of wires shorted
             together by ON pass pips; its drivers are every buffered
             driver of any member. *)
          let members = ref [] in
          let rec collect u =
            if ws.ing_stamp.(u) <> ep then begin
              ws.ing_stamp.(u) <- ep;
              members := u :: !members;
              List.iter collect (Extract.links ex u)
            end
          in
          collect w;
          let members = !members in
          let drvs = List.concat_map (fun u -> Extract.drivers ex u) members in
          let finish n =
            List.iter (fun u -> set_resolved u n) members;
            n
          in
          (match drvs with
          | [] -> finish x_node
          | [ u ] ->
              let n = wire_node u in
              finish n
          | us ->
              let n = alloc k_resolve ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
              (* register before resolving inputs so cycles hit the node,
                 not infinite recursion *)
              ignore (finish n);
              Hashtbl.replace resolve_wires n (Array.of_list us);
              Hashtbl.replace resolve_inputs n
                (Array.of_list (List.map wire_node us));
              n)
    end
  in
  (* bel pins *)
  let bel_pins = Hashtbl.create 256 in
  List.iter
    (fun (b, mask) ->
      let pins =
        Array.init 4 (fun j ->
            if (mask lsr j) land 1 = 1 then wire_node dev.Device.bel_in.(b).(j)
            else -1)
      in
      Hashtbl.add bel_pins ws.bel_node_id.(b) pins)
    !bel_list;
  let watch_node = Hashtbl.create 32 in
  Array.iter
    (fun w ->
      let pad = dev.Device.wire_pad.(w) in
      let n =
        if pad >= 0 && not (Extract.pad_enabled ex pad) then x_node
        else wire_node w
      in
      Hashtbl.replace watch_node w n)
    watch_outputs;
  let n = bld.n in
  let kind = Array.sub bld.b_kind 0 n in
  let table = Array.sub bld.b_table 0 n in
  let inv = Array.sub bld.b_inv 0 n in
  let ce_frozen = Array.sub bld.b_ce 0 n in
  let q_init = Array.sub bld.b_qi 0 n in
  let inputs = Array.make n [||] in
  let res_wires = Array.make n [||] in
  Hashtbl.iter (fun node ins -> inputs.(node) <- ins) resolve_inputs;
  Hashtbl.iter (fun node ws_ -> res_wires.(node) <- ws_) resolve_wires;
  Hashtbl.iter (fun node pins -> inputs.(node) <- pins) bel_pins;
  (* ---- Phase 3: evaluation order ---- *)
  let nsccs, has_loop =
    compute_sccs ~scratch:ws.ws_scc ~nnodes:n ~kind ~inputs
  in
  (* copy exact-size out of the workspace scratch: this simulator must
     survive later builds/reroutes that reuse the same workspace *)
  {
    nnodes = n;
    kind;
    inputs;
    res_wires;
    table;
    inv;
    ce_frozen;
    q_init;
    q = Array.copy q_init;
    values = Array.make n Logic.X;
    last = Array.make n Logic.X;
    nsccs;
    scc_off = Array.sub ws.ws_scc.sc_off 0 (nsccs + 1);
    scc_nodes = Array.sub ws.ws_scc.sc_nodes 0 n;
    scc_cyclic = Bytes.sub ws.ws_scc.sc_cyclic 0 nsccs;
    pad_node;
    watch_node;
    has_loop;
  }

let num_nodes t = t.nnodes
let has_comb_loop t = t.has_loop

let reset t =
  Array.blit t.q_init 0 t.q 0 t.nnodes;
  Array.fill t.values 0 t.nnodes Logic.X;
  Array.fill t.last 0 t.nnodes Logic.X

let set_pad t wire v =
  match Hashtbl.find_opt t.pad_node wire with
  | Some n -> t.values.(n) <- v
  | None -> ()

(* LUT evaluation on node values with inversion mask; X-aware.

   This is the simulator's innermost loop (every comb node per [eval],
   every reg node per [clock]), so it must not allocate: closures or refs
   here dominate the minor-GC rate, and under multiple domains every
   minor collection is a stop-the-world barrier.  All helpers are
   top-level functions threading plain integers. *)

(* Scan the four pins, packing the LUT index of the defined pins into
   bits 0-3 of the accumulator and a mask of X pins into bits 4-7. *)
let rec lut_scan values pins inv j acc =
  if j >= 4 then acc
  else
    let p = pins.(j) in
    if p < 0 then lut_scan values pins inv (j + 1) acc
    else
      let acc =
        match values.(p) with
        | Logic.Zero -> acc lor (((inv lsr j) land 1) lsl j)
        | Logic.One -> acc lor ((1 - ((inv lsr j) land 1)) lsl j)
        | Logic.X -> acc lor (1 lsl (j + 4))
      in
      lut_scan values pins inv (j + 1) acc

(* Is the table bit equal to [first] for every completion of the X pins?
   [s] walks the submasks of [xmask] via (s - 1) land xmask. *)
let rec lut_x_const table idx xmask s first =
  if (table lsr (idx lor s)) land 1 <> first then false
  else if s = 0 then true
  else lut_x_const table idx xmask ((s - 1) land xmask) first

let lut_eval t node =
  let pins = t.inputs.(node) in
  let table = t.table.(node) in
  let acc = lut_scan t.values pins t.inv.(node) 0 0 in
  let idx = acc land 0xf and xmask = acc lsr 4 in
  let first = (table lsr idx) land 1 in
  if xmask = 0 then Logic.of_bool (first = 1)
  else if lut_x_const table idx xmask xmask first then Logic.of_bool (first = 1)
  else Logic.X

let rec resolve_settle values ins i len v =
  if i >= len then v
  else resolve_settle values ins (i + 1) len (Logic.resolve v values.(ins.(i)))

(* Pessimistic skew rule: a settled fight still reads X this cycle if any
   driver transitioned (its [last] differs from the agreement). *)
let rec resolve_glitch last ins i len v =
  if i >= len then v
  else if not (Logic.equal last.(ins.(i)) v) then Logic.X
  else resolve_glitch last ins (i + 1) len v

let eval_node t node =
  let k = t.kind.(node) in
  if k = k_resolve then begin
    (* A multiply-driven node: the drivers fight.  The settled value is
       their agreement; beyond that we are pessimistic about skew — if any
       driver transitioned this cycle, the fight glitches and the node
       reads unknown (two copies of the same TMR signal are shorted
       harmlessly in a zero-delay model, but not in silicon). *)
    let ins = t.inputs.(node) in
    let len = Array.length ins in
    if len = 0 then Logic.X
    else
      let v = resolve_settle t.values ins 1 len t.values.(ins.(0)) in
      match v with
      | Logic.X -> Logic.X
      | Logic.Zero | Logic.One -> resolve_glitch t.last ins 0 len v
  end
  else if k = k_bel_comb then lut_eval t node
  else if k = k_bel_reg then t.q.(node)
  else if k = k_constx then Logic.X
  else (* k_pad *) t.values.(node)

let eval t =
  let off = t.scc_off and nodes = t.scc_nodes in
  for si = 0 to t.nsccs - 1 do
    if Bytes.get t.scc_cyclic si = '\000' then begin
      let node = nodes.(off.(si)) in
      t.values.(node) <- eval_node t node
    end
    else begin
      (* Kleene iteration from X *)
      let lo = off.(si) and hi = off.(si + 1) in
      for i = lo to hi - 1 do
        t.values.(nodes.(i)) <- Logic.X
      done;
      let changed = ref true in
      let guard = ref ((3 * (hi - lo)) + 4) in
      while !changed && !guard > 0 do
        changed := false;
        decr guard;
        for i = lo to hi - 1 do
          let node = nodes.(i) in
          let v = eval_node t node in
          if not (Logic.equal v t.values.(node)) then begin
            t.values.(node) <- v;
            changed := true
          end
        done
      done
    end
  done

let clock t =
  (* Only registered bels ever read [q]; combinational bels re-evaluate
     from their pins on every [eval]. *)
  for node = 0 to t.nnodes - 1 do
    if t.kind.(node) = k_bel_reg then
      if not t.ce_frozen.(node) then t.q.(node) <- lut_eval t node
  done;
  Array.blit t.values 0 t.last 0 t.nnodes

let step t =
  eval t;
  clock t;
  eval t

let read t wire =
  match Hashtbl.find_opt t.watch_node wire with
  | Some n -> t.values.(n)
  | None -> invalid_arg "Fsim.read: wire is not watched"

(* Node-id access: resolving wires to node ids once per simulator keeps
   the per-cycle IO loop free of hash lookups (and their option cells). *)

let watch_nodes t wires =
  Array.map
    (fun w ->
      match Hashtbl.find_opt t.watch_node w with
      | Some n -> n
      | None -> invalid_arg "Fsim.watch_nodes: wire is not watched")
    wires

let pad_nodes t wires =
  Array.map
    (fun w ->
      match Hashtbl.find_opt t.pad_node w with Some n -> n | None -> -1)
    wires

let node_value t n = t.values.(n)
let set_node t n v = if n >= 0 then t.values.(n) <- v

(* ------------------------------------------------------------------ *)
(* Cone snapshot: what the last [build] in a workspace observed.       *)

type cone = {
  c_dev : Device.t;
  c_marked : Bytes.t;  (* wire -> '\001' when in the observable cone *)
  c_wire_node : int array;  (* wire -> node id, -1 when unresolved *)
  c_bels : int array;  (* cone bels *)
  c_bel_node : int array;  (* bel -> node id, -1 outside the cone *)
}

let snapshot_cone ws =
  let dev = ws.ws_dev in
  let ep = ws.epoch in
  let nw = dev.Device.nwires in
  let marked = Bytes.make nw '\000' in
  let wire_node = Array.make nw (-1) in
  for w = 0 to nw - 1 do
    if ws.wire_mark.(w) = ep then Bytes.set marked w '\001';
    if ws.res_stamp.(w) = ep then wire_node.(w) <- ws.res_node.(w)
  done;
  let bels = ref [] in
  let bel_node = Array.make dev.Device.nbels (-1) in
  for b = dev.Device.nbels - 1 downto 0 do
    if ws.bel_node_stamp.(b) = ep then begin
      bel_node.(b) <- ws.bel_node_id.(b);
      bels := b :: !bels
    end
  done;
  {
    c_dev = dev;
    c_marked = marked;
    c_wire_node = wire_node;
    c_bels = Array.of_list !bels;
    c_bel_node = bel_node;
  }

let cone_marked c w = Bytes.get c.c_marked w <> '\000'

let cone_wire_count c =
  let n = ref 0 in
  Bytes.iter (fun ch -> if ch <> '\000' then incr n) c.c_marked;
  !n

let cone_bel_count c = Array.length c.c_bels

let cone_touches_bit c ex bit =
  let dev = Extract.device ex in
  let db = Extract.database ex in
  match Bitdb.resource db bit with
  | Bitdb.Pip p ->
      cone_marked c dev.Device.pip_src.(p)
      || cone_marked c dev.Device.pip_dst.(p)
  | Bitdb.Lut_bit (b, _)
  | Bitdb.Ff_init b
  | Bitdb.Out_sel b
  | Bitdb.Ce_inv b
  | Bitdb.Sr_inv b
  | Bitdb.In_inv (b, _) ->
      c.c_bel_node.(b) >= 0
  | Bitdb.Pad_enable pad -> cone_marked c dev.Device.pad_wire.(pad)
  | Bitdb.Pad_cfg _ -> false

let cone_frames c ex =
  let db = Extract.database ex in
  let frames = Array.make (Bitdb.num_frames db) false in
  for bit = 0 to Bitdb.num_bits db - 1 do
    if cone_touches_bit c ex bit then frames.(Bitdb.frame_of_bit db bit) <- true
  done;
  frames

(* ------------------------------------------------------------------ *)
(* Per-fault planning: how cheaply can one bit flip be simulated?      *)

type fault_path = Path_silent | Path_patch | Path_reroute | Path_rebuild

let path_name = function
  | Path_silent -> "silent"
  | Path_patch -> "patch"
  | Path_reroute -> "reroute"
  | Path_rebuild -> "rebuild"

(* Decide, against the *golden* (un-flipped) extract state, how the flip
   of [bit] can be handled.  Every branch below is exact: [Path_silent]
   means a full rebuild would produce a simulator with identical watched
   behaviour, [Path_patch] means the change is a pure cell-content edit of
   an existing node, [Path_reroute] means only wire-component structure
   changes.  Anything unprovable falls back to [Path_rebuild]. *)
let plan_fault c ex bit =
  let dev = Extract.device ex in
  let db = Extract.database ex in
  let marked w = cone_marked c w in
  match Bitdb.resource db bit with
  | Bitdb.Pad_cfg _ -> Path_silent  (* electrically benign *)
  | Bitdb.Pad_enable pad ->
      if marked dev.Device.pad_wire.(pad) then Path_rebuild else Path_silent
  | Bitdb.Lut_bit (b, idx) ->
      if c.c_bel_node.(b) < 0 then Path_silent
      else
        let old_t = Extract.lut_table ex b in
        let new_t = old_t lxor (1 lsl idx) in
        (* a shrinking support keeps every wired pin valid (the table just
           ignores it); a growing support needs pins the cone never wired,
           which [reroute] resolves incrementally *)
        if support_mask new_t land lnot (support_mask old_t) = 0 then
          Path_patch
        else Path_reroute
  | Bitdb.In_inv (b, _) ->
      if c.c_bel_node.(b) < 0 then Path_silent else Path_patch
  | Bitdb.Ff_init b | Bitdb.Sr_inv b | Bitdb.Ce_inv b ->
      if c.c_bel_node.(b) < 0 then Path_silent
      else if Extract.out_sel ex b then Path_patch
      else Path_silent (* flip-flop state is never read on a comb bel *)
  | Bitdb.Out_sel b ->
      (* comb <-> reg retargets one node's kind; the wiring (pins are
         collected independently of registered-ness) is untouched *)
      if c.c_bel_node.(b) < 0 then Path_silent else Path_reroute
  | Bitdb.Pip p ->
      let s = dev.Device.pip_src.(p) and d = dev.Device.pip_dst.(p) in
      let on = Extract.bit_is_set ex bit in
      if dev.Device.pip_bidir.(p) then
        if on then
          (* removing a short *)
          if marked s || marked d then Path_reroute else Path_silent
        else begin
          (* adding a short *)
          match (marked s, marked d) with
          | false, false -> Path_silent
          | true, true -> Path_reroute
          | ms, _ ->
              (* antenna: shorting an isolated floating wire onto a cone
                 wire adds a driverless member to its component — the
                 resolved node is unchanged and nothing in the cone reads
                 the floating side *)
              let u = if ms then d else s in
              if Extract.drivers ex u = [] && Extract.links ex u = [] then
                Path_silent
              else Path_reroute
        end
      else if marked d then Path_reroute
      else Path_silent (* only [drivers dst] changes, and the cone never
                          reads it *)

(* Apply a bel-content fault in place on [base], run [f], undo.  The bit
   must already be flipped in [ex]; [plan_fault] must have said
   [Path_patch]. *)
let with_patch c base ex bit f =
  let db = Extract.database ex in
  let patch_cell arr node v =
    let old = arr.(node) in
    arr.(node) <- v;
    Fun.protect ~finally:(fun () -> arr.(node) <- old) (fun () -> f base)
  in
  match Bitdb.resource db bit with
  | Bitdb.Lut_bit (b, _) ->
      patch_cell base.table c.c_bel_node.(b) (Extract.lut_table ex b)
  | Bitdb.In_inv (b, _) ->
      patch_cell base.inv c.c_bel_node.(b) (Extract.in_inv_mask ex b)
  | Bitdb.Ff_init b | Bitdb.Sr_inv b ->
      patch_cell base.q_init c.c_bel_node.(b) (Extract.ff_init ex b)
  | Bitdb.Ce_inv b ->
      patch_cell base.ce_frozen c.c_bel_node.(b) (Extract.ce_inv ex b)
  | _ -> invalid_arg "Fsim.with_patch: not a patchable bit"

(* ------------------------------------------------------------------ *)
(* Reroute: derive a fault simulator from [base] without a full rebuild.
   The flipped bit is already applied to [ex].  For a routing bit only
   the electrical components containing the pip endpoints changed: we
   re-resolve those components, remap every reader whose resolution
   passed through them, and re-run the SCC pass on the (slightly grown)
   node graph.  A support-widening LUT bit or an out_sel flip changes no
   wiring at all — just one cell's pins/kind — but still needs the
   incremental resolution and SCC machinery, so it lands here too.
   Returns [None] when the change reaches outside what the base cone
   knows (new bels, live out-of-cone nets, driver loops) — the caller
   falls back to a full rebuild.

   With [?scratch], all large per-call arrays live in the caller-owned
   scratch and are reused: the returned simulator is valid only until the
   next [reroute] with the same scratch.  This keeps the per-fault
   allocation near zero, which matters under multiple domains: every
   minor collection is a stop-the-world rendezvous. *)

exception Too_hard

type scratch = {
  s_scc : scc_scratch;
  mutable s_cap : int;
  mutable s_kind : int array;
  mutable s_table : int array;
  mutable s_inv : int array;
  mutable s_ce : bool array;
  mutable s_qi : Logic.t array;
  mutable s_q : Logic.t array;
  mutable s_values : Logic.t array;
  mutable s_last : Logic.t array;
  mutable s_inputs : int array array;
  mutable s_res_wires : int array array;
  (* Epoch-stamped per-wire and per-node maps replacing what would
     otherwise be six fresh hashtables per fault. *)
  mutable s_epoch : int;
  mutable s_wcap : int;
  mutable s_wn_stamp : int array;  (* wire -> epoch of s_wn validity *)
  mutable s_wn : int array;  (* wire -> resolved node (memo + override) *)
  mutable s_wc_stamp : int array;  (* wire -> epoch of s_wc validity *)
  mutable s_wc : int array;  (* wire -> affected component index *)
  mutable s_ing : int array;  (* wire -> epoch when resolution in progress *)
  mutable s_orph_cap : int;
  mutable s_orph : int array;  (* old node id -> epoch when orphaned *)
}

let make_scratch () =
  {
    s_scc = make_scc_scratch ();
    s_cap = 0;
    s_kind = [||];
    s_table = [||];
    s_inv = [||];
    s_ce = [||];
    s_qi = [||];
    s_q = [||];
    s_values = [||];
    s_last = [||];
    s_inputs = [||];
    s_res_wires = [||];
    s_epoch = 0;
    s_wcap = 0;
    s_wn_stamp = [||];
    s_wn = [||];
    s_wc_stamp = [||];
    s_wc = [||];
    s_ing = [||];
    s_orph_cap = 0;
    s_orph = [||];
  }

let scratch_ensure s n =
  if s.s_cap < n then begin
    let cap = max n (max 1024 (2 * s.s_cap)) in
    s.s_cap <- cap;
    s.s_kind <- Array.make cap 0;
    s.s_table <- Array.make cap 0;
    s.s_inv <- Array.make cap 0;
    s.s_ce <- Array.make cap false;
    s.s_qi <- Array.make cap Logic.X;
    s.s_q <- Array.make cap Logic.X;
    s.s_values <- Array.make cap Logic.X;
    s.s_last <- Array.make cap Logic.X;
    s.s_inputs <- Array.make cap [||];
    s.s_res_wires <- Array.make cap [||]
  end

let scratch_wires_ensure s nw =
  if s.s_wcap < nw then begin
    s.s_wcap <- nw;
    s.s_wn_stamp <- Array.make nw 0;
    s.s_wn <- Array.make nw 0;
    s.s_wc_stamp <- Array.make nw 0;
    s.s_wc <- Array.make nw 0;
    s.s_ing <- Array.make nw 0
  end

let scratch_orph_ensure s n =
  if s.s_orph_cap < n then begin
    s.s_orph_cap <- max n (2 * s.s_orph_cap);
    s.s_orph <- Array.make s.s_orph_cap 0
  end

let reroute ~scratch:s c base ex bit =
  let dev = Extract.device ex in
  let db = Extract.database ex in
  if dev != c.c_dev then invalid_arg "Fsim.reroute: cone from another device";
  let seeds, cell =
    match Bitdb.resource db bit with
    | Bitdb.Pip p ->
        let sw = dev.Device.pip_src.(p) and dw = dev.Device.pip_dst.(p) in
        ((if dev.Device.pip_bidir.(p) then [ sw; dw ] else [ dw ]), `None)
    | Bitdb.Lut_bit (b, _) -> ([], `Lut b)
    | Bitdb.Out_sel b -> ([], `Out b)
    | _ -> invalid_arg "Fsim.reroute: bit is not reroutable"
  in
  scratch_wires_ensure s dev.Device.nwires;
  scratch_orph_ensure s base.nnodes;
  s.s_epoch <- s.s_epoch + 1;
  let ep = s.s_epoch in
  try
    (* Phase A: the affected components under the post-flip extract *)
    let comps = ref [] in
    let ncomps = ref 0 in
    let add_comp seed =
      if s.s_wc_stamp.(seed) <> ep then begin
        let members = ref [] in
        let rec collect u =
          if s.s_wc_stamp.(u) <> ep then begin
            s.s_wc_stamp.(u) <- ep;
            s.s_wc.(u) <- !ncomps;
            members := u :: !members;
            List.iter collect (Extract.links ex u)
          end
        in
        collect seed;
        let members = List.rev !members in
        let drivers = List.concat_map (fun u -> Extract.drivers ex u) members in
        comps := (members, drivers) :: !comps;
        incr ncomps
      end
    in
    List.iter add_comp seeds;
    let comp_arr = Array.of_list (List.rev !comps) in
    (* Old node ids whose wire->node association may now be stale: every
       reader that resolved through an affected component got that
       component's old node id (single-driver chains collapse onto it). *)
    let norph = ref 0 in
    Array.iter
      (fun (members, _) ->
        List.iter
          (fun w ->
            let n = c.c_wire_node.(w) in
            if n >= 0 && s.s_orph.(n) <> ep then begin
              s.s_orph.(n) <- ep;
              incr norph
            end)
          members)
      comp_arr;
    let orphaned n = n < base.nnodes && s.s_orph.(n) = ep in
    (* New resolve nodes appended past the base graph *)
    let n_extra = ref 0 in
    let extras = Hashtbl.create 8 in (* id -> (driver wires, inputs ref) *)
    let reserve_resolve us =
      let id = base.nnodes + !n_extra in
      incr n_extra;
      Hashtbl.replace extras id (us, ref [||]);
      id
    in
    let set_node w n =
      s.s_wn_stamp.(w) <- ep;
      s.s_wn.(w) <- n
    in
    let comp_state = Array.make (Array.length comp_arr) 0 in
    let rec node_of w =
      if s.s_wn_stamp.(w) = ep then s.s_wn.(w) (* memo and overrides *)
      else if s.s_wc_stamp.(w) = ep then begin
        process_comp s.s_wc.(w);
        s.s_wn.(w)
      end
      else begin
        if s.s_ing.(w) = ep then raise Too_hard;
        s.s_ing.(w) <- ep;
        let n =
          match dev.Device.wkind.(w) with
          | Device.PadIn ->
              let old = c.c_wire_node.(w) in
              if old >= 0 then old
              else
                let pad = dev.Device.wire_pad.(w) in
                if pad >= 0 && Extract.pad_enabled ex pad then
                  raise Too_hard (* live pad the base never saw *)
                else x_node_id
          | Device.BelOut ->
              let b = dev.Device.wire_bel.(w) in
              let bn = c.c_bel_node.(b) in
              if bn >= 0 then bn
              else raise Too_hard (* bel outside the base cone *)
          | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
          | Device.HLong | Device.VLong | Device.BelIn | Device.PadOut -> (
              let old = c.c_wire_node.(w) in
              if old >= 0 && not (orphaned old) then old
              else begin
                (* this component's own structure is unchanged (it
                   contains no pip endpoint), but its resolution may pass
                   through affected ones *)
                let members = ref [] in
                let rec collect u =
                  if not (List.mem u !members) then begin
                    members := u :: !members;
                    List.iter collect (Extract.links ex u)
                  end
                in
                collect w;
                let drvs =
                  List.concat_map (fun u -> Extract.drivers ex u) !members
                in
                match drvs with
                | [] -> x_node_id
                | [ u ] -> node_of u
                | _ ->
                    (* multi-driven: its private resolve node still stands
                       (inputs are fixed by the global remap below) *)
                    if old >= 0 then old else raise Too_hard
              end)
        in
        set_node w n;
        n
      end
    and process_comp ci =
      if comp_state.(ci) = 1 then raise Too_hard (* pure driver loop *)
      else if comp_state.(ci) = 0 then begin
        comp_state.(ci) <- 1;
        let members, drvs = comp_arr.(ci) in
        (match drvs with
        | [] ->
            List.iter (fun u -> set_node u x_node_id) members;
            comp_state.(ci) <- 2
        | [ u ] ->
            let n = node_of u in
            List.iter (fun m -> set_node m n) members;
            comp_state.(ci) <- 2
        | us ->
            (* register the node first so combinational cycles through the
               component terminate on it, as in [build] *)
            let us = Array.of_list us in
            let id = reserve_resolve us in
            List.iter (fun m -> set_node m id) members;
            comp_state.(ci) <- 2;
            let _, ins = Hashtbl.find extras id in
            ins := Array.map node_of us)
      end
    in
    for ci = 0 to Array.length comp_arr - 1 do
      process_comp ci
    done;
    (* Resolve the cell override (may raise Too_hard, may touch memo but
       never allocates extras) while [n_extra] is still growing — after
       this point the node count is final. *)
    let cell =
      match cell with
      | `None -> `None
      | `Lut b ->
          let table = Extract.lut_table ex b in (* post-flip *)
          let mask = support_mask table in
          let row =
            Array.init 4 (fun j ->
                if (mask lsr j) land 1 = 1 then
                  node_of dev.Device.bel_in.(b).(j)
                else -1)
          in
          `Lut (c.c_bel_node.(b), table, row)
      | `Out b ->
          `Out (c.c_bel_node.(b), Extract.out_sel ex b)
    in
    (* Phase B/C: size the derived arrays (scratch-backed when given),
       then remap every reader whose resolution went stale. *)
    let n = base.nnodes + !n_extra in
    scratch_ensure s n;
    Array.blit base.kind 0 s.s_kind 0 base.nnodes;
    Array.fill s.s_kind base.nnodes (n - base.nnodes) k_resolve;
    Array.blit base.table 0 s.s_table 0 base.nnodes;
    Array.blit base.inv 0 s.s_inv 0 base.nnodes;
    Array.blit base.ce_frozen 0 s.s_ce 0 base.nnodes;
    Array.blit base.q_init 0 s.s_qi 0 base.nnodes;
    Array.fill s.s_qi base.nnodes (n - base.nnodes) Logic.X;
    Array.blit base.inputs 0 s.s_inputs 0 base.nnodes;
    Array.blit base.res_wires 0 s.s_res_wires 0 base.nnodes;
    let kind, table, inv, ce_frozen, q_init, q, values, last, inputs', res_wires,
        scc =
      ( s.s_kind, s.s_table, s.s_inv, s.s_ce, s.s_qi, s.s_q, s.s_values,
        s.s_last, s.s_inputs, s.s_res_wires, s.s_scc )
    in
    for id = base.nnodes to n - 1 do
      let us, ins = Hashtbl.find extras id in
      inputs'.(id) <- !ins;
      res_wires.(id) <- us
    done;
    let have_orphans = !norph > 0 in
    let stale row =
      let st = ref false in
      Array.iter (fun nd -> if nd >= 0 && orphaned nd then st := true) row;
      !st
    in
    if have_orphans then begin
      Array.iteri
        (fun node wires ->
          if Array.length wires > 0 && stale base.inputs.(node) then
            inputs'.(node) <- Array.map node_of wires)
        base.res_wires;
      Array.iter
        (fun b ->
          let node = c.c_bel_node.(b) in
          let pins = base.inputs.(node) in
          if stale pins then
            inputs'.(node) <-
              Array.mapi
                (fun j p ->
                  if p < 0 then -1 else node_of dev.Device.bel_in.(b).(j))
                pins)
        c.c_bels
    end;
    (match cell with
    | `None -> ()
    | `Lut (node, t', row) ->
        table.(node) <- t';
        inputs'.(node) <- row
    | `Out (node, registered) ->
        kind.(node) <- (if registered then k_bel_reg else k_bel_comb));
    let watch_node =
      let needs_remap =
        have_orphans
        && Hashtbl.fold
             (fun _ nd acc -> acc || orphaned nd)
             base.watch_node false
      in
      if not needs_remap then base.watch_node
      else begin
        let tbl = Hashtbl.create (Hashtbl.length base.watch_node) in
        Hashtbl.iter
          (fun w nd ->
            let nd' =
              if not (orphaned nd) then nd
              else
                let pad = dev.Device.wire_pad.(w) in
                if pad >= 0 && not (Extract.pad_enabled ex pad) then x_node_id
                else node_of w
            in
            Hashtbl.replace tbl w nd')
          base.watch_node;
        tbl
      end
    in
    let nsccs, has_loop =
      compute_sccs ~scratch:scc ~nnodes:n ~kind ~inputs:inputs'
    in
    Array.blit q_init 0 q 0 n;
    Array.fill values 0 n Logic.X;
    Array.fill last 0 n Logic.X;
    Some
      {
        nnodes = n;
        kind;
        inputs = inputs';
        res_wires;
        table;
        inv;
        ce_frozen;
        q_init;
        q;
        values;
        last;
        nsccs;
        scc_off = scc.sc_off;
        scc_nodes = scc.sc_nodes;
        scc_cyclic = scc.sc_cyclic;
        pad_node = base.pad_node;
        watch_node;
        has_loop;
      }
  with Too_hard -> None

(* ------------------------------------------------------------------ *)
(* Telemetry: shadowing wrappers so every caller is measured.  The
   histograms are process-global Tmr_obs instruments; recording is one
   atomic add per call and needs no registered sink. *)

let m_build_ns = Tmr_obs.Metrics.histogram "fsim.build_ns"
let m_reroute_ns = Tmr_obs.Metrics.histogram "fsim.reroute_ns"
let m_reroute_fallback = Tmr_obs.Metrics.counter "fsim.reroute_fallback"

let build ?ws ex ~watch_outputs =
  let t0 = Tmr_obs.Clock.now_ns () in
  let t = build ?ws ex ~watch_outputs in
  Tmr_obs.Metrics.observe m_build_ns (Tmr_obs.Clock.now_ns () - t0);
  t

let reroute ~scratch c base ex bit =
  let t0 = Tmr_obs.Clock.now_ns () in
  let r = reroute ~scratch c base ex bit in
  Tmr_obs.Metrics.observe m_reroute_ns (Tmr_obs.Clock.now_ns () - t0);
  if Option.is_none r then Tmr_obs.Metrics.incr m_reroute_fallback;
  r
