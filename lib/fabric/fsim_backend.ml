module Logic = Tmr_logic.Logic

module type S = sig
  type t

  val x : t
  val zero : t
  val one : t
  val broadcast : Logic.t -> t
  val equal : t -> t -> bool
end

(* ------------------------------------------------------------------ *)
(* Scalar: one fault per simulator, values are plain [Logic.t].

   These are the innermost loops of [Fsim.eval]/[Fsim.clock] (every comb
   node per eval, every reg node per clock), so they must not allocate:
   closures or refs here dominate the minor-GC rate, and under multiple
   domains every minor collection is a stop-the-world barrier.  All
   helpers are top-level functions threading plain integers. *)

module Scalar = struct
  type t = Logic.t

  let x = Logic.X
  let zero = Logic.Zero
  let one = Logic.One
  let broadcast v = v
  let equal = Logic.equal

  (* 2-bit packed codes: the baseline-tape representation. *)
  let logic_code = function Logic.Zero -> 0 | Logic.One -> 1 | Logic.X -> 2

  let code_logic c =
    if c = 0 then Logic.Zero else if c = 1 then Logic.One else Logic.X

  (* Scan the four pins, packing the LUT index of the defined pins into
     bits 0-3 of the accumulator and a mask of X pins into bits 4-7. *)
  let rec lut_scan values pins inv j acc =
    if j >= 4 then acc
    else
      let p = pins.(j) in
      if p < 0 then lut_scan values pins inv (j + 1) acc
      else
        let acc =
          match values.(p) with
          | Logic.Zero -> acc lor (((inv lsr j) land 1) lsl j)
          | Logic.One -> acc lor ((1 - ((inv lsr j) land 1)) lsl j)
          | Logic.X -> acc lor (1 lsl (j + 4))
        in
        lut_scan values pins inv (j + 1) acc

  (* Is the table bit equal to [first] for every completion of the X
     pins?  [s] walks the submasks of [xmask] via (s - 1) land xmask. *)
  let rec lut_x_const table idx xmask s first =
    if (table lsr (idx lor s)) land 1 <> first then false
    else if s = 0 then true
    else lut_x_const table idx xmask ((s - 1) land xmask) first

  let lut_of_acc table acc =
    let idx = acc land 0xf and xmask = acc lsr 4 in
    let first = (table lsr idx) land 1 in
    if xmask = 0 then Logic.of_bool (first = 1)
    else if lut_x_const table idx xmask xmask first then
      Logic.of_bool (first = 1)
    else Logic.X

  let lut_eval ~values ~pins ~table ~inv =
    lut_of_acc table (lut_scan values pins inv 0 0)

  let rec resolve_settle values ins i len v =
    if i >= len then v
    else resolve_settle values ins (i + 1) len (Logic.resolve v values.(ins.(i)))

  (* Pessimistic skew rule: a settled fight still reads X this cycle if
     any driver transitioned (its [last] differs from the agreement). *)
  let rec resolve_glitch last ins i len v =
    if i >= len then v
    else if not (Logic.equal last.(ins.(i)) v) then Logic.X
    else resolve_glitch last ins (i + 1) len v
end

module Check_scalar : S with type t = Logic.t = Scalar

(* ------------------------------------------------------------------ *)
(* Lanes: up to [word_bits] faults per machine word as possibility
   planes.  A node's packed sample is a pair of plane words (H, L):
   lane i reads One when (H_i, L_i) = (1, 0), Zero when (0, 1) and X
   when (1, 1) — "may be high" / "may be low".  (0, 0) is unreachable.
   The planes encoding makes Kleene gates pure word-parallel boolean
   algebra, evaluating every lane of a word at once. *)

module Lanes = struct
  type t = { h : int; l : int }

  let word_bits = 32
  let full = 0xffffffff

  let x = { h = full; l = full }
  let zero = { h = 0; l = full }
  let one = { h = full; l = 0 }

  let broadcast = function
    | Logic.Zero -> zero
    | Logic.One -> one
    | Logic.X -> x

  let equal a b = a.h = b.h && a.l = b.l

  (* Split plane words of a scalar value, for callers that keep H and L
     in separate flat arrays rather than as pairs. *)
  let broadcast_h = function Logic.Zero -> 0 | Logic.One | Logic.X -> full
  let broadcast_l = function Logic.One -> 0 | Logic.Zero | Logic.X -> full

  let lane ~h ~l i =
    let bh = (h lsr i) land 1 and bl = (l lsr i) land 1 in
    if bh = bl then Logic.X else if bh = 1 then Logic.One else Logic.Zero

  (* Lanes whose value differs from the scalar [v]: a plane word equals
     the broadcast of [v] exactly on the agreeing lanes. *)
  let mismatch ~h ~l v = (h lxor broadcast_h v) lor (l lxor broadcast_l v)

  (* LUT over planes.  [ph]/[pl] hold the four per-pin plane words with
     any per-lane pin inversion already applied; an unused pin is the
     constant-Zero planes (0, full) so minterms selecting it drop out,
     exactly as the scalar scan skips the pin (its index bit stays 0).
     [t1] holds, per minterm, the mask of lanes whose (possibly
     patched) truth table has that bit set.  A lane may read 1 iff some
     1-minterm is selectable under its pin possibilities, may read 0
     iff some 0-minterm is; both at once is X — literally Kleene
     completion over the X pins, which is what the scalar
     [lut_x_const] submask walk computes one completion at a time. *)
  let lut_planes ~ph ~pl ~t1 =
    let h = ref 0 and l = ref 0 in
    for m = 0 to 15 do
      let sel =
        (if m land 1 = 1 then ph.(0) else pl.(0))
        land (if m land 2 = 2 then ph.(1) else pl.(1))
        land (if m land 4 = 4 then ph.(2) else pl.(2))
        land (if m land 8 = 8 then ph.(3) else pl.(3))
      in
      let t = t1.(m) in
      h := !h lor (t land sel);
      l := !l lor (lnot t land sel)
    done;
    { h = !h land full; l = !l land full }

  (* Resolve over planes, with the scalar engine's pessimistic skew
     rule folded in: a lane settles One only when every driver is
     definitely One now AND was definitely One last cycle (no driver
     transitioned); symmetrically for Zero; anything else is X. *)
  let resolve_planes ~n ~h ~l ~lh ~ll =
    if n = 0 then x
    else begin
      let one_ng = ref full and zero_ng = ref full in
      for i = 0 to n - 1 do
        one_ng := !one_ng land h.(i) land lnot l.(i) land lh.(i)
                  land lnot ll.(i);
        zero_ng := !zero_ng land l.(i) land lnot h.(i) land ll.(i)
                   land lnot lh.(i)
      done;
      { h = full land lnot !zero_ng; l = full land lnot !one_ng }
    end
end

module Check_lanes : S with type t = Lanes.t = Lanes
