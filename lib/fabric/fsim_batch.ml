(* Bit-parallel batched differential fault simulation.

   Packs up to [width] faults into the lanes of 32-bit "possibility
   plane" words ({!Fsim_backend.Lanes}) and runs ONE event-driven cone
   evaluation over the union of the lanes' fanout cones against the
   shared baseline tape, instead of one scalar [Fsim.diff_run] per
   fault.  Each lane's effective circuit is the base graph plus its
   fault overlay ({!Fsim.delta}): truth-table / inversion / init /
   clock-enable cell patches apply word-parallel through per-lane
   masks, while rewired input rows and appended resolve nodes are
   spliced per lane (scalar evaluation of just that lane's bit).

   Verdicts are bit-identical to the scalar differential engine fault
   by fault: the per-cycle plane values of a lane equal the values the
   scalar engine computes for that fault (the union cone is a closed
   superset of each lane's own cone, and nodes a fault does not reach
   reproduce the tape exactly), the watched-output check runs at the
   same point of the cycle, and the per-lane convergence early-exit
   replays the same seed set under the same rules.

   The union graph may be cyclic even though every lane's effective
   circuit is acyclic: lane A's rewired row can read a node that is
   downstream of lane B's cone.  Such cycles are harmless — the
   per-cycle evaluation sweeps the members until no plane changes, and
   since every lane's own dependency graph is acyclic the sweeps reach
   each lane's unique (scalar-identical) fixpoint.  What IS rejected
   ([run] returns [None], scalar fallback): any union-cone node in a
   cyclic SCC of the base graph (the scalar engine iterates those to a
   Kleene fixpoint with different intra-cycle semantics), and any lane
   whose own effective circuit is cyclic (a bridge fault closing a
   combinational loop). *)

module Logic = Tmr_logic.Logic
module Lanemask = Tmr_logic.Bitvec.Lanemask
module Lanes = Fsim_backend.Lanes
module Scalar = Fsim_backend.Scalar
module F = Fsim

exception Ineligible

let debug =
  match Sys.getenv_opt "FSIM_BATCH_DEBUG" with Some "" | None -> false | Some _ -> true

let bail msg =
  if debug then Printf.eprintf "[fsim_batch] bail: %s\n%!" msg;
  raise Ineligible

type verdict = {
  bv_error_cycle : int;
  bv_converge_cycle : int;
  bv_detect_cycle : int;
}

type t = {
  base : F.t;
  view : F.view;
  width : int;
  stride : int;  (* plane words per node, width / 32 *)
  csr_off : int array;
  csr_succ : int array;
  bel_of : int array;
  cyc_node : Bytes.t;  (* per base node: in a cyclic SCC *)
  base_pos : int array;  (* per base node: base evaluation-order index *)
  (* capacity-managed per-node state (base nodes + appended extras) *)
  mutable cap : int;
  mutable h : int array;  (* value planes, node * stride + sub *)
  mutable l : int array;
  mutable lh : int array;  (* previous-cycle planes (glitch rule) *)
  mutable ll : int array;
  mutable qh : int array;  (* register state planes *)
  mutable ql : int array;
  mutable mark : Bytes.t;  (* '\001' = union-cone member *)
  mutable fmark : Bytes.t;  (* '\001' = frontier *)
  mutable dirty : int array;  (* per node: tick stamp *)
  mutable rdirty : int array;  (* per register: tick stamp *)
  mutable rstamp : int array;  (* per node: replay epoch stamp *)
  mutable order : int array;  (* members in topological order *)
  mutable pos : int array;  (* member -> topological index *)
  mutable indeg : int array;
  mutable queue : int array;
  mutable members : int array;
  mutable frontier : int array;
  mutable regs : int array;
  mutable tick : int;  (* monotone across runs *)
  mutable repoch : int;  (* monotone across replays *)
  mutable rv : Logic.t array;  (* replay overlay: value *)
  mutable rvl : Logic.t array;  (* replay overlay: last *)
  mutable rq : Logic.t array;  (* replay overlay: register state *)
  (* evaluation scratch *)
  t1s : int array;  (* 16: per-minterm table lane-masks of one sub *)
  phs : int array;  (* 4: per-pin H planes, inversion applied *)
  pls : int array;
  newh : int array;  (* stride: the value being built *)
  newl : int array;
  mutable resh : int array;  (* growable resolve-driver scratch *)
  mutable resl : int array;
  mutable reslh : int array;
  mutable resll : int array;
  (* divergence state, all-zero between runs (each run clears the
     entries of its own members on the way out) *)
  mutable dv : int array;  (* per node: lanes diverged from the tape *)
  mutable dvl : int array;  (* divergence as of the last boundary *)
  mutable dq : int array;  (* register-state divergence *)
  mutable dmark : Bytes.t;  (* '\001' = on [dlist] *)
  mutable dlist : int array;  (* nodes with a non-empty [dv] word *)
  (* tape-value broadcast memo, stamped by cycle; valid across runs
     while the worker keeps handing in the same tape *)
  tb_h : int array;
  tb_l : int array;
  tb_c : int array;
  tpb_h : int array;
  tpb_l : int array;
  tpb_c : int array;
  mutable last_tape : F.tape option;
  mutable last_cone : int array;  (* test hook *)
  mutable last_nm : int;
}

let ensure t n =
  if t.cap < n then begin
    let cap = max n (max 1024 (2 * t.cap)) in
    t.cap <- cap;
    let ps = cap * t.stride in
    t.h <- Array.make ps 0;
    t.l <- Array.make ps 0;
    t.lh <- Array.make ps 0;
    t.ll <- Array.make ps 0;
    t.qh <- Array.make ps 0;
    t.ql <- Array.make ps 0;
    t.mark <- Bytes.make cap '\000';
    t.fmark <- Bytes.make cap '\000';
    (* fresh stamps start at 0 < any live tick/epoch: never stale *)
    t.dirty <- Array.make cap 0;
    t.rdirty <- Array.make cap 0;
    t.rstamp <- Array.make cap 0;
    t.order <- Array.make cap 0;
    t.pos <- Array.make cap 0;
    t.indeg <- Array.make cap 0;
    t.queue <- Array.make cap 0;
    t.members <- Array.make cap 0;
    t.frontier <- Array.make cap 0;
    t.regs <- Array.make cap 0;
    t.rv <- Array.make cap Logic.X;
    t.rvl <- Array.make cap Logic.X;
    t.rq <- Array.make cap Logic.X;
    t.dv <- Array.make ps 0;
    t.dvl <- Array.make ps 0;
    t.dq <- Array.make ps 0;
    t.dmark <- Bytes.make cap '\000';
    t.dlist <- Array.make (cap + 1) 0
  end

let res_ensure t n =
  if Array.length t.resh < n then begin
    let c = max n ((2 * Array.length t.resh) + 8) in
    t.resh <- Array.make c 0;
    t.resl <- Array.make c 0;
    t.reslh <- Array.make c 0;
    t.resll <- Array.make c 0
  end

let create base cone ~width =
  if width <> 32 && width <> 64 then
    invalid_arg "Fsim_batch.create: width must be 32 or 64";
  let v = F.view base in
  let csr_off, csr_succ = F.reader_csr base in
  let bel_of = F.bel_map cone base in
  let bn = v.F.v_nnodes in
  let cyc_node = Bytes.make (max 1 bn) '\000' in
  for si = 0 to v.F.v_nsccs - 1 do
    if Bytes.get v.F.v_scc_cyclic si <> '\000' then
      for i = v.F.v_scc_off.(si) to v.F.v_scc_off.(si + 1) - 1 do
        Bytes.set cyc_node v.F.v_scc_nodes.(i) '\001'
      done
  done;
  let base_pos = Array.make (max 1 bn) 0 in
  Array.iteri (fun i u -> base_pos.(u) <- i) v.F.v_scc_nodes;
  let stride = width / 32 in
  let t =
    {
      base;
      view = v;
      width;
      stride;
      csr_off;
      csr_succ;
      bel_of;
      cyc_node;
      base_pos;
      cap = 0;
      h = [||];
      l = [||];
      lh = [||];
      ll = [||];
      qh = [||];
      ql = [||];
      mark = Bytes.empty;
      fmark = Bytes.empty;
      dirty = [||];
      rdirty = [||];
      rstamp = [||];
      order = [||];
      pos = [||];
      indeg = [||];
      queue = [||];
      members = [||];
      frontier = [||];
      regs = [||];
      tick = 0;
      repoch = 0;
      rv = [||];
      rvl = [||];
      rq = [||];
      t1s = Array.make 16 0;
      phs = Array.make 4 0;
      pls = Array.make 4 0;
      newh = Array.make stride 0;
      newl = Array.make stride 0;
      resh = [||];
      resl = [||];
      reslh = [||];
      resll = [||];
      dv = [||];
      dvl = [||];
      dq = [||];
      dmark = Bytes.empty;
      dlist = [||];
      tb_h = Array.make (max 1 bn) 0;
      tb_l = Array.make (max 1 bn) 0;
      tb_c = Array.make (max 1 bn) (-1);
      tpb_h = Array.make (max 1 bn) 0;
      tpb_l = Array.make (max 1 bn) 0;
      tpb_c = Array.make (max 1 bn) (-1);
      last_tape = None;
      last_cone = [||];
      last_nm = 0;
    }
  in
  ensure t (bn + 64);
  t

let width t = t.width
let csr t = (t.csr_off, t.csr_succ)
let bel_of t = t.bel_of
let last_cone t = Array.sub t.last_cone 0 t.last_nm

(* Index of the single set bit of [m] (an isolated power of two). *)
let rec bit_index m i = if m land 1 = 1 then i else bit_index (m lsr 1) (i + 1)

let run t ?(ndetect = 0) ~tape ~expected ~watch ~lanes () =
  let v = t.view in
  let bn = v.F.v_nnodes in
  let nlanes = Array.length lanes in
  if nlanes = 0 || nlanes > t.width then
    invalid_arg "Fsim_batch.run: lane count out of range";
  if ndetect < 0 || ndetect > Array.length watch then
    invalid_arg "Fsim_batch.run: ndetect out of range";
  let nfunc = Array.length watch - ndetect in
  if F.tape_nnodes tape <> bn then
    invalid_arg "Fsim_batch.run: tape recorded for another simulator";
  let cycles = F.tape_cycles tape in
  if Array.length expected <> cycles then
    invalid_arg "Fsim_batch.run: expected matrix / tape cycle mismatch";
  let ns = (nlanes + 31) / 32 in
  let stride = t.stride in
  let fullw = Lanes.full in
  let t_start = if debug then Sys.time () else 0. in
  try
    (* ---- lane address space: extras of lane i live at
       [lane_extbase.(i) ..], after every base node ---- *)
    let lane_extbase = Array.make nlanes 0 in
    let tot = ref 0 in
    Array.iteri
      (fun li d ->
        lane_extbase.(li) <- bn + !tot;
        tot := !tot + Array.length d.F.dl_extras)
      lanes;
    let tot_extras = !tot in
    let nn = bn + tot_extras in
    ensure t nn;
    let ext_row = Array.make (max 1 tot_extras) [||] in
    let ext_lane = Array.make (max 1 tot_extras) 0 in
    (* ---- per-lane overlays ---- *)
    let tbl_t1 : (int, int array) Hashtbl.t = Hashtbl.create 8 in
    let tbl_im : (int, int array) Hashtbl.t = Hashtbl.create 4 in
    let tbl_ce : (int, int array) Hashtbl.t = Hashtbl.create 4 in
    let tbl_qi : (int, int array * int array) Hashtbl.t = Hashtbl.create 4 in
    let tbl_rows : (int, (int * int array) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let radj : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
    let radj_add p r =
      match Hashtbl.find_opt radj p with
      | Some lst -> lst := r :: !lst
      | None -> Hashtbl.add radj p (ref [ r ])
    in
    let lane_cell = Array.make nlanes None in
    let lane_rows : (int * int array) list array = Array.make nlanes [] in
    let lane_seeds : int list array = Array.make nlanes [] in
    let t1_of node =
      match Hashtbl.find_opt tbl_t1 node with
      | Some a -> a
      | None ->
          let table = v.F.v_table.(node) in
          let a =
            Array.init (16 * ns) (fun i ->
                if (table lsr (i / ns)) land 1 = 1 then fullw else 0)
          in
          Hashtbl.add tbl_t1 node a;
          a
    in
    let im_of node =
      match Hashtbl.find_opt tbl_im node with
      | Some a -> a
      | None ->
          let inv = v.F.v_inv.(node) in
          let a =
            Array.init (4 * ns) (fun i ->
                if (inv lsr (i / ns)) land 1 = 1 then fullw else 0)
          in
          Hashtbl.add tbl_im node a;
          a
    in
    let ce_of node =
      match Hashtbl.find_opt tbl_ce node with
      | Some a -> a
      | None ->
          let a =
            Array.make ns (if v.F.v_ce_frozen.(node) then fullw else 0)
          in
          Hashtbl.add tbl_ce node a;
          a
    in
    let qi_of node =
      match Hashtbl.find_opt tbl_qi node with
      | Some p -> p
      | None ->
          let q = v.F.v_q_init.(node) in
          let p =
            ( Array.make ns (Lanes.broadcast_h q),
              Array.make ns (Lanes.broadcast_l q) )
          in
          Hashtbl.add tbl_qi node p;
          p
    in
    Array.iteri
      (fun li d ->
        let sub = li lsr 5 and bit = li land 31 in
        let m = 1 lsl bit in
        let seeds = ref [] in
        (match d.F.dl_cell with
        | None -> ()
        | Some (node, p) ->
            if node < 0 || node >= bn then bail "node out of range";
            lane_cell.(li) <- Some (node, p);
            seeds := node :: !seeds;
            (match p with
            | F.Cp_table tbl ->
                let a = t1_of node in
                for mt = 0 to 15 do
                  let i = (mt * ns) + sub in
                  if (tbl lsr mt) land 1 = 1 then a.(i) <- a.(i) lor m
                  else a.(i) <- a.(i) land lnot m
                done
            | F.Cp_inv iv ->
                let a = im_of node in
                for j = 0 to 3 do
                  let i = (j * ns) + sub in
                  if (iv lsr j) land 1 = 1 then a.(i) <- a.(i) lor m
                  else a.(i) <- a.(i) land lnot m
                done
            | F.Cp_qinit q ->
                let ah, al = qi_of node in
                if Lanes.broadcast_h q <> 0 then ah.(sub) <- ah.(sub) lor m
                else ah.(sub) <- ah.(sub) land lnot m;
                if Lanes.broadcast_l q <> 0 then al.(sub) <- al.(sub) lor m
                else al.(sub) <- al.(sub) land lnot m
            | F.Cp_ce b ->
                let a = ce_of node in
                if b then a.(sub) <- a.(sub) lor m
                else a.(sub) <- a.(sub) land lnot m));
        let remap p =
          if p < 0 then -1
          else if p < bn then p
          else lane_extbase.(li) + (p - bn)
        in
        Array.iter
          (fun (node, row) ->
            if node < 0 || node >= bn then bail "node out of range";
            let rrow = Array.map remap row in
            (match Hashtbl.find_opt tbl_rows node with
            | Some r -> r := (li, rrow) :: !r
            | None -> Hashtbl.add tbl_rows node (ref [ (li, rrow) ]));
            lane_rows.(li) <- (node, rrow) :: lane_rows.(li);
            seeds := node :: !seeds;
            Array.iter (fun p -> if p >= 0 then radj_add p node) rrow)
          d.F.dl_rows;
        Array.iteri
          (fun i (ins, _res_wires) ->
            let uid = lane_extbase.(li) + i in
            let rins = Array.map remap ins in
            ext_row.(uid - bn) <- rins;
            ext_lane.(uid - bn) <- li;
            seeds := uid :: !seeds;
            Array.iter (fun p -> if p >= 0 then radj_add p uid) rins)
          d.F.dl_extras;
        lane_seeds.(li) <- !seeds)
      lanes;
    (* ---- union cone: BFS closure of every lane's seeds over the base
       reader CSR plus the overlay reader edges ---- *)
    Bytes.fill t.mark 0 nn '\000';
    Bytes.fill t.fmark 0 nn '\000';
    let qhd = ref 0 and qtl = ref 0 in
    let push u =
      if Bytes.get t.mark u = '\000' then begin
        Bytes.set t.mark u '\001';
        t.queue.(!qtl) <- u;
        incr qtl
      end
    in
    Array.iter (fun sl -> List.iter push sl) lane_seeds;
    while !qhd < !qtl do
      let u = t.queue.(!qhd) in
      incr qhd;
      if u < bn then
        for e = t.csr_off.(u) to t.csr_off.(u + 1) - 1 do
          push t.csr_succ.(e)
        done;
      match Hashtbl.find_opt radj u with
      | Some lst -> List.iter push !lst
      | None -> ()
    done;
    let nm = !qtl in
    Array.blit t.queue 0 t.members 0 nm;
    (* cyclic SCCs need per-fault Kleene iteration: scalar fallback *)
    for i = 0 to nm - 1 do
      let u = t.members.(i) in
      if u < bn && Bytes.get t.cyc_node u <> '\000' then bail "cyclic SCC member"
    done;
    (* ---- edges of a member: base row, overlay rows, extra inputs ---- *)
    let iter_edges r f =
      (if r < bn then begin
         let ins = v.F.v_inputs.(r) in
         for j = 0 to Array.length ins - 1 do
           if ins.(j) >= 0 then f ins.(j)
         done
       end
       else
         let ins = ext_row.(r - bn) in
         for j = 0 to Array.length ins - 1 do
           if ins.(j) >= 0 then f ins.(j)
         done);
      match Hashtbl.find_opt tbl_rows r with
      | Some rl ->
          List.iter
            (fun (_, row) -> Array.iter (fun p -> if p >= 0 then f p) row)
            !rl
      | None -> ()
    in
    (* ---- topological order (Kahn) over member-internal combinational
       edges.  Registers are sources, exactly as in the base engine's
       Tarjan ([dep] of a register is empty): their per-cycle value is
       the q planes, and their input row is read only at the clock
       edge, after every combinational member settled.  A leftover is a
       cycle in the UNION graph; the nodes involved are appended at the
       end of the order and settled by extra evaluation sweeps — exact
       as long as each lane's own circuit is acyclic, which is checked
       below. ---- *)
    let is_reg u = u < bn && v.F.v_kind.(u) = F.kind_bel_reg in
    for i = 0 to nm - 1 do
      let r = t.members.(i) in
      if is_reg r then t.indeg.(r) <- 0
      else begin
        let c = ref 0 in
        iter_edges r (fun p -> if Bytes.get t.mark p <> '\000' then incr c);
        t.indeg.(r) <- !c
      end
    done;
    let khd = ref 0 and ktl = ref 0 in
    for i = 0 to nm - 1 do
      let u = t.members.(i) in
      if t.indeg.(u) = 0 then begin
        t.queue.(!ktl) <- u;
        incr ktl
      end
    done;
    let ot = ref 0 in
    while !khd < !ktl do
      let u = t.queue.(!khd) in
      incr khd;
      t.order.(!ot) <- u;
      t.pos.(u) <- !ot;
      incr ot;
      let dec s =
        if Bytes.get t.mark s <> '\000' && not (is_reg s) then begin
          t.indeg.(s) <- t.indeg.(s) - 1;
          if t.indeg.(s) = 0 then begin
            t.queue.(!ktl) <- s;
            incr ktl
          end
        end
      in
      if u < bn then
        for e = t.csr_off.(u) to t.csr_off.(u + 1) - 1 do
          dec t.csr_succ.(e)
        done;
      match Hashtbl.find_opt radj u with
      | Some lst -> List.iter dec !lst
      | None -> ()
    done;
    (* effective input row of [u] in lane [li]'s circuit (combinational
       reads; a register has none — its row is read at the clock) *)
    let eff_row_of li u =
      if u >= bn then ext_row.(u - bn)
      else if v.F.v_kind.(u) = F.kind_bel_reg then [||]
      else
        match List.assoc_opt u lane_rows.(li) with
        | Some r -> r
        | None -> v.F.v_inputs.(u)
    in
    let lane_dead = Array.make nlanes false in
    let kahn_len = !ot in
    let have_backedges = !ot < nm in
    let scc_starts = ref [||] in
    if have_backedges then begin
      (* Append the leftover (union-cycle) nodes grouped by the SCCs of
         the leftover subgraph, dependencies first (successors = inputs,
         mirroring the base engine's Tarjan): the per-cycle loop then
         settles each SCC locally instead of re-sweeping the whole
         suffix, and cross-SCC re-marks can only point forward.
         Exactness needs every lane's OWN circuit to be acyclic — any
         per-lane cycle lies entirely inside the leftover set (Kahn
         peels everything not on or downstream of a cycle), so DFS each
         lane's effective edges restricted to it.  A lane whose
         rewiring closed a real feedback loop (bridges can) is declined
         alone: its bits stay frozen at X and the caller reruns just
         that fault on the scalar engine. *)
      let leftover = ref [] in
      for i = nm - 1 downto 0 do
        let u = t.members.(i) in
        if Bytes.get t.mark u <> '\000' && t.indeg.(u) > 0 then
          leftover := u :: !leftover
      done;
      let in_lo p = Bytes.get t.mark p <> '\000' && t.indeg.(p) > 0 in
      let lsucc = Array.make nn [] in
      List.iter
        (fun u ->
          let acc = ref [] in
          iter_edges u (fun p -> if in_lo p then acc := p :: !acc);
          lsucc.(u) <- !acc)
        !leftover;
      let idxa = Array.make nn (-1) in
      let lowa = Array.make nn 0 in
      let onst = Bytes.make nn '\000' in
      let tstk = ref [] in
      let nidx = ref 0 in
      let starts = ref [] in
      let frames : (int * int list ref) Stack.t = Stack.create () in
      let start u =
        idxa.(u) <- !nidx;
        lowa.(u) <- !nidx;
        incr nidx;
        tstk := u :: !tstk;
        Bytes.set onst u '\001';
        Stack.push (u, ref lsucc.(u)) frames
      in
      let visit_root r =
        if idxa.(r) < 0 then begin
          start r;
          while not (Stack.is_empty frames) do
            let u, rest = Stack.top frames in
            match !rest with
            | p :: tl ->
                rest := tl;
                if idxa.(p) < 0 then start p
                else if Bytes.get onst p = '\001' && idxa.(p) < lowa.(u) then
                  lowa.(u) <- idxa.(p)
            | [] ->
                ignore (Stack.pop frames);
                let lu = lowa.(u) in
                (match Stack.top_opt frames with
                | Some (par, _) -> if lu < lowa.(par) then lowa.(par) <- lu
                | None -> ());
                if lu = idxa.(u) then begin
                  let s0 = !ot in
                  starts := s0 :: !starts;
                  let brk = ref false in
                  while not !brk do
                    match !tstk with
                    | x :: tl ->
                        tstk := tl;
                        Bytes.set onst x '\000';
                        t.order.(!ot) <- x;
                        incr ot;
                        if x = u then brk := true
                    | [] -> brk := true
                  done;
                  (* within the SCC, base evaluation order makes every
                     base edge forward — only the handful of overlay
                     back edges force extra local iterations.  An extra
                     node slots just before its first reader. *)
                  if !ot - s0 > 1 then begin
                    let key x =
                      if x < bn then 2 * t.base_pos.(x)
                      else
                        match Hashtbl.find_opt radj x with
                        | Some lst ->
                            List.fold_left
                              (fun acc r ->
                                if r < bn then
                                  min acc ((2 * t.base_pos.(r)) - 1)
                                else acc)
                              max_int !lst
                        | None -> max_int
                    in
                    let chunk = Array.sub t.order s0 (!ot - s0) in
                    Array.sort (fun a b -> compare (key a) (key b)) chunk;
                    Array.blit chunk 0 t.order s0 (!ot - s0)
                  end;
                  for i = s0 to !ot - 1 do
                    t.pos.(t.order.(i)) <- i
                  done
                end
          done
        end
      in
      List.iter visit_root !leftover;
      scc_starts := Array.of_list (List.rev !starts);
      let in_l u =
        u >= 0 && Bytes.get t.mark u <> '\000' && t.indeg.(u) > 0
      in
      let exception Lane_cycle in
      (* the base graph is acyclic here (a cyclic-SCC member bails the
         whole batch), so a lane's effective circuit can only close a
         cycle through one of its OWN overlay edges — a rerouted input
         row or an extra node's reads — and the cycle lies entirely
         inside the leftover set.  A lane with no overlay source node
         in the leftover needs no acyclicity check at all, which skips
         the DFS for every pure cell-content lane. *)
      let needs_check = Array.make nlanes false in
      for li = 0 to nlanes - 1 do
        if List.exists (fun (u, _) -> in_l u) lane_rows.(li) then
          needs_check.(li) <- true
      done;
      Array.iteri
        (fun j li -> if in_l (bn + j) then needs_check.(li) <- true)
        ext_lane;
      (* colors, epoch-stamped: [ep lsl 1] done, [(ep lsl 1) lor 1] on
         stack, older epoch = unvisited *)
      let col = Array.make nn 0 in
      let epoch = ref 0 in
      for li = 0 to nlanes - 1 do
        if needs_check.(li) then begin
          incr epoch;
          let ep = !epoch in
          let rec visit u =
            let cu = col.(u) in
            if cu asr 1 = ep then begin
              if cu land 1 = 1 then raise Lane_cycle
            end
            else if
              (* own-lane circuit only: skip other lanes' extras *)
              u < bn || ext_lane.(u - bn) = li
            then begin
              col.(u) <- (ep lsl 1) lor 1;
              Array.iter (fun p -> if in_l p then visit p) (eff_row_of li u);
              col.(u) <- ep lsl 1
            end
            else col.(u) <- ep lsl 1
          in
          try
            (* any cycle passes through an overlay edge of this lane,
               so DFS only from the overlay source nodes: the cycle is
               reachable from (in fact contains) one of them *)
            List.iter (fun (u, _) -> if in_l u then visit u) lane_rows.(li);
            for j = 0 to tot_extras - 1 do
              if ext_lane.(j) = li && in_l (bn + j) then visit (bn + j)
            done
          with Lane_cycle ->
            if debug then
              Printf.eprintf
                "[fsim_batch] lane %d declined: effective circuit cyclic\n%!"
                li;
            lane_dead.(li) <- true
        end
      done
    end;
    t.last_nm <- nm;
    t.last_cone <- Array.sub t.order 0 nm;
    (* live lane bits: declined lanes are masked out of every value
       commit, so their (possibly oscillating) cyclic circuits stay
       frozen at the initial X and cannot stall the sweeps *)
    let live = Array.make ns fullw in
    Array.iteri
      (fun li d ->
        if d then
          live.(li lsr 5) <- live.(li lsr 5) land lnot (1 lsl (li land 31)))
      lane_dead;
    (* ---- registers and frontier ---- *)
    let nregs = ref 0 in
    for i = 0 to nm - 1 do
      let u = t.members.(i) in
      if u < bn && v.F.v_kind.(u) = F.kind_bel_reg then begin
        t.regs.(!nregs) <- u;
        incr nregs
      end
    done;
    let nregs = !nregs in
    let nfrontier = ref 0 in
    for i = 0 to nm - 1 do
      iter_edges t.members.(i) (fun p ->
          if Bytes.get t.mark p = '\000' && Bytes.get t.fmark p = '\000'
          then begin
            Bytes.set t.fmark p '\001';
            t.frontier.(!nfrontier) <- p;
            incr nfrontier
          end)
    done;
    let nfrontier = !nfrontier in
    if debug then
      Printf.eprintf
        "[fsim_batch] batch: %d lanes, union cone %d of %d nodes, frontier \
         %d, leftover %d\n\
         %!"
        nlanes nm bn nfrontier
        (let k = ref 0 in
         for i = 0 to nm - 1 do
           let u = t.members.(i) in
           if Bytes.get t.mark u <> '\000' && t.indeg.(u) > 0 then incr k
         done;
         !k);
    (* per-lane seeds, deduplicated, ordered for replay: the scalar
       replay evaluates seeds in the fault's own cone order, but only
       DIRECT seed->seed effective edges constrain it (non-seed inputs
       read the tape).  Union positions respect lane edges everywhere
       except inside the leftover set, so refine there with a stable
       seed-level Kahn over each lane's direct effective edges
       (registers read their row at the clock - no incoming edge) *)
    let lane_seed_arr =
      Array.mapi
        (fun li sl ->
          let a = Array.of_list (List.sort_uniq compare sl) in
          Array.sort (fun x y -> compare t.pos.(x) t.pos.(y)) a;
          let nsd = Array.length a in
          if lane_dead.(li) || (not have_backedges) || nsd <= 1 then a
          else begin
            let idx s =
              let r = ref (-1) in
              for j = 0 to nsd - 1 do
                if a.(j) = s then r := j
              done;
              !r
            in
            let row = Array.map (fun s -> eff_row_of li s) a in
            let done_ = Array.make nsd false in
            let out = Array.make nsd 0 in
            for k = 0 to nsd - 1 do
              let pick = ref (-1) in
              let j = ref 0 in
              while !pick < 0 && !j < nsd do
                if not done_.(!j) then begin
                  let ready = ref true in
                  Array.iter
                    (fun p ->
                      let pj = idx p in
                      if pj >= 0 && not done_.(pj) then ready := false)
                    row.(!j);
                  if !ready then pick := !j
                end;
                incr j
              done;
              if !pick < 0 then bail "cyclic seed set";
              done_.(!pick) <- true;
              out.(k) <- a.(!pick)
            done;
            out
          end)
        lane_seeds
    in
    (* suspect watch indices: inside the union cone (the engine never
       accepts watch-remapping faults, so there are no others) *)
    let suspects = ref [] in
    Array.iteri
      (fun wi w ->
        if w >= 0 && w < bn && Bytes.get t.mark w <> '\000' then
          suspects := wi :: !suspects)
      watch;
    let suspects = Array.of_list (List.rev !suspects) in
    (* ---- divergence state (PROOFS-style difference simulation).
       Stored planes are meaningful only on the lanes recorded in the
       per-node divergence word [dv]; every other lane implicitly holds
       the tape value of the current cycle, so tape switching costs
       nothing — work is proportional to actual divergence, not to cone
       activity.  [dvl] is the divergence word as of the last boundary
       (glitch-rule reads), [dq] the register-state divergence against
       the next boundary's tape.  [mcnt] counts diverged base members
       per lane — the convergence test's "cone equals the tape" is then
       a zero check.  [dlist] is the active set: nodes with a non-empty
       divergence word, woken (with their readers) at each cycle start
       because their tape-following inputs may move. *)
    let h = t.h and l = t.l and lh = t.lh and ll = t.ll in
    let dv = t.dv and dvl = t.dvl and dq = t.dq in
    let mcnt = Array.make nlanes 0 in
    let dmark = t.dmark in
    let dlist = t.dlist in
    let ndl = ref 0 in
    let dpush u =
      if Bytes.get dmark u = '\000' then begin
        Bytes.set dmark u '\001';
        dlist.(!ndl) <- u;
        incr ndl
      end
    in
    let cur_c = ref 0 in
    (* extras exist only in their own lane's circuit: permanently
       diverged there (they have no tape value), implicitly X to every
       other lane *)
    for e = 0 to tot_extras - 1 do
      let u = bn + e in
      if Bytes.get t.mark u <> '\000' then begin
        let li = ext_lane.(e) in
        let w = 1 lsl (li land 31) in
        dv.((u * stride) + (li lsr 5)) <- w;
        dvl.((u * stride) + (li lsr 5)) <- w;
        dpush u
      end
    done;
    let tick0 = t.tick + 1 in
    t.tick <- tick0 + cycles + 2;
    for i = 0 to nregs - 1 do
      let r = t.regs.(i) in
      let b = r * stride in
      (match Hashtbl.find_opt tbl_qi r with
      | Some (ah, al) ->
          for s = 0 to ns - 1 do
            t.qh.(b + s) <- ah.(s);
            t.ql.(b + s) <- al.(s)
          done
      | None ->
          let hh = Lanes.broadcast_h v.F.v_q_init.(r)
          and lw = Lanes.broadcast_l v.F.v_q_init.(r) in
          for s = 0 to ns - 1 do
            t.qh.(b + s) <- hh;
            t.ql.(b + s) <- lw
          done);
      (* initial register-state divergence (patched q-init) *)
      let tv = F.tape_get_u tape 0 r in
      let nz = ref false in
      for s = 0 to ns - 1 do
        let d =
          Lanes.mismatch ~h:t.qh.(b + s) ~l:t.ql.(b + s) tv land live.(s)
        in
        dq.(b + s) <- d;
        if d <> 0 then nz := true
      done;
      if !nz then t.dirty.(r) <- tick0
    done;
    (* fault sites, deduplicated across live lanes: woken every cycle —
       their patched logic computes from tape-following inputs, so
       divergence can (re)appear there at any cycle without any event *)
    let seed_nodes =
      let smark = Bytes.make nn '\000' in
      let acc = ref [] in
      Array.iteri
        (fun li sl ->
          if not lane_dead.(li) then
            List.iter
              (fun u ->
                if Bytes.get smark u = '\000' then begin
                  Bytes.set smark u '\001';
                  acc := u :: !acc
                end)
              sl)
        lane_seeds;
      Array.of_list !acc
    in
    let nseednodes = Array.length seed_nodes in
    (* ---- event scheme (mirrors the scalar engine's mark_readers).
       [pu] is the marking node's topological position: marking a
       combinational member at or behind it is a union-graph back edge,
       so the current sweep must run again to settle it. ---- *)
    let sweep_again = ref false in
    let mark_readers u tick ~pu =
      let m1 s =
        if Bytes.get t.mark s <> '\000' then begin
          let k = if s < bn then v.F.v_kind.(s) else F.kind_resolve in
          if k = F.kind_bel_reg then begin
            if t.rdirty.(s) < tick then t.rdirty.(s) <- tick
          end
          else begin
            let tg = if k = F.kind_resolve then tick + 1 else tick in
            if t.dirty.(s) < tg then t.dirty.(s) <- tg;
            if t.pos.(s) <= pu then sweep_again := true
          end
        end
      in
      if u < bn then
        for e = t.csr_off.(u) to t.csr_off.(u + 1) - 1 do
          m1 t.csr_succ.(e)
        done;
      match Hashtbl.find_opt radj u with
      | Some lst -> List.iter m1 !lst
      | None -> ()
    in
    (* ---- per-lane effective circuit (row splices and replay) ---- *)
    let eff_table li u =
      match lane_cell.(li) with
      | Some (n, F.Cp_table tb) when n = u -> tb
      | _ -> v.F.v_table.(u)
    in
    let eff_inv li u =
      match lane_cell.(li) with
      | Some (n, F.Cp_inv iv) when n = u -> iv
      | _ -> v.F.v_inv.(u)
    in
    let eff_frozen li u =
      match lane_cell.(li) with
      | Some (n, F.Cp_ce b) when n = u -> b
      | _ -> v.F.v_ce_frozen.(u)
    in
    (* single-lane reads (scalar splice paths and replay): an
       undiverged lane holds the tape value implicitly *)
    let lane_v p sub bit =
      let bp = (p * stride) + sub in
      if dv.(bp) land (1 lsl bit) <> 0 then Lanes.lane ~h:h.(bp) ~l:l.(bp) bit
      else if p < bn then F.tape_get_u tape !cur_c p
      else Logic.X
    in
    let lane_lv p sub bit =
      let bp = (p * stride) + sub in
      if dvl.(bp) land (1 lsl bit) <> 0 then
        Lanes.lane ~h:lh.(bp) ~l:ll.(bp) bit
      else if p < bn && !cur_c > 0 then F.tape_get_u tape (!cur_c - 1) p
      else Logic.X
    in
    let splice vv sub bit =
      let m = 1 lsl bit in
      t.newh.(sub) <-
        t.newh.(sub) land lnot m lor (Lanes.broadcast_h vv land m);
      t.newl.(sub) <-
        t.newl.(sub) land lnot m lor (Lanes.broadcast_l vv land m)
    in
    let scalar_resolve row sub bit =
      let n = Array.length row in
      if n = 0 then Logic.X
      else begin
        let vr = ref (lane_v row.(0) sub bit) in
        for i = 1 to n - 1 do
          vr := Logic.resolve !vr (lane_v row.(i) sub bit)
        done;
        match !vr with
        | Logic.X -> Logic.X
        | (Logic.Zero | Logic.One) as sv ->
            let g = ref false in
            for i = 0 to n - 1 do
              if not (Logic.equal (lane_lv row.(i) sub bit) sv) then g := true
            done;
            if !g then Logic.X else sv
      end
    in
    (* tape-value broadcast planes, memoized per node per cycle: every
       undiverged lane of [p] reads the same tape bit, and a node is
       read by several members within one cycle.  The memo survives
       across runs as long as the worker keeps the same tape. *)
    (match t.last_tape with
    | Some tp when tp == tape -> ()
    | _ ->
        Array.fill t.tb_c 0 bn (-1);
        Array.fill t.tpb_c 0 bn (-1);
        t.last_tape <- Some tape);
    let tb_h = t.tb_h and tb_l = t.tb_l and tb_c = t.tb_c in
    let tape_bcast p =
      if tb_c.(p) <> !cur_c then begin
        let tv = F.tape_get_u tape !cur_c p in
        tb_h.(p) <- Lanes.broadcast_h tv;
        tb_l.(p) <- Lanes.broadcast_l tv;
        tb_c.(p) <- !cur_c
      end
    in
    let tpb_h = t.tpb_h and tpb_l = t.tpb_l and tpb_c = t.tpb_c in
    let tape_bcast_prev p =
      (* caller guarantees [!cur_c > 0] *)
      if tpb_c.(p) <> !cur_c then begin
        let tv = F.tape_get_u tape (!cur_c - 1) p in
        tpb_h.(p) <- Lanes.broadcast_h tv;
        tpb_l.(p) <- Lanes.broadcast_l tv;
        tpb_c.(p) <- !cur_c
      end
    in
    (* word-parallel LUT of node [u] into newh/newl, per-lane table and
       inversion masks applied, then per-lane row splices.  Also the
       next-state function of registers. *)
    let comb_planes u =
      let row = v.F.v_inputs.(u) in
      let table = v.F.v_table.(u) and inv = v.F.v_inv.(u) in
      let t1o = Hashtbl.find_opt tbl_t1 u in
      let imo = Hashtbl.find_opt tbl_im u in
      for s = 0 to ns - 1 do
        (match t1o with
        | Some a ->
            for mt = 0 to 15 do
              t.t1s.(mt) <- a.((mt * ns) + s)
            done
        | None ->
            for mt = 0 to 15 do
              t.t1s.(mt) <- (if (table lsr mt) land 1 = 1 then fullw else 0)
            done);
        for j = 0 to 3 do
          let p = row.(j) in
          if p < 0 then begin
            (* unused pin: constant Zero, as the scalar scan skips it *)
            t.phs.(j) <- 0;
            t.pls.(j) <- fullw
          end
          else begin
            let bp = (p * stride) + s in
            let d = dv.(bp) in
            let ph =
              if d = fullw then h.(bp)
              else begin
                tape_bcast p;
                if d = 0 then tb_h.(p)
                else h.(bp) land d lor (tb_h.(p) land lnot d)
              end
            in
            let pl =
              if d = fullw then l.(bp)
              else if d = 0 then tb_l.(p)
              else l.(bp) land d lor (tb_l.(p) land lnot d)
            in
            let im =
              match imo with
              | Some a -> a.((j * ns) + s)
              | None -> if (inv lsr j) land 1 = 1 then fullw else 0
            in
            t.phs.(j) <- ph land lnot im lor (pl land im);
            t.pls.(j) <- pl land lnot im lor (ph land im)
          end
        done;
        let r = Lanes.lut_planes ~ph:t.phs ~pl:t.pls ~t1:t.t1s in
        t.newh.(s) <- r.Lanes.h;
        t.newl.(s) <- r.Lanes.l
      done;
      match Hashtbl.find_opt tbl_rows u with
      | None -> ()
      | Some rl ->
          List.iter
            (fun (li, rrow) ->
              let sub = li lsr 5 and bit = li land 31 in
              let tb = eff_table li u and iv = eff_inv li u in
              let acc = ref 0 in
              for j = 0 to 3 do
                let p = rrow.(j) in
                if p >= 0 then
                  match lane_v p sub bit with
                  | Logic.Zero ->
                      acc := !acc lor (((iv lsr j) land 1) lsl j)
                  | Logic.One ->
                      acc := !acc lor ((1 - ((iv lsr j) land 1)) lsl j)
                  | Logic.X -> acc := !acc lor (1 lsl (j + 4))
              done;
              splice (Scalar.lut_of_acc tb !acc) sub bit)
            !rl
    in
    let res_planes u =
      let row = v.F.v_inputs.(u) in
      let n = Array.length row in
      res_ensure t n;
      for s = 0 to ns - 1 do
        for i = 0 to n - 1 do
          let p = row.(i) in
          let bp = (p * stride) + s in
          let d = dv.(bp) and dl = dvl.(bp) in
          (if d = fullw then begin
             t.resh.(i) <- h.(bp);
             t.resl.(i) <- l.(bp)
           end
           else begin
             tape_bcast p;
             if d = 0 then begin
               t.resh.(i) <- tb_h.(p);
               t.resl.(i) <- tb_l.(p)
             end
             else begin
               t.resh.(i) <- h.(bp) land d lor (tb_h.(p) land lnot d);
               t.resl.(i) <- l.(bp) land d lor (tb_l.(p) land lnot d)
             end
           end);
          if dl = fullw then begin
            t.reslh.(i) <- lh.(bp);
            t.resll.(i) <- ll.(bp)
          end
          else begin
            let bh, bl =
              if !cur_c > 0 then begin
                tape_bcast_prev p;
                (tpb_h.(p), tpb_l.(p))
              end
              else (fullw, fullw)
            in
            if dl = 0 then begin
              t.reslh.(i) <- bh;
              t.resll.(i) <- bl
            end
            else begin
              t.reslh.(i) <- lh.(bp) land dl lor (bh land lnot dl);
              t.resll.(i) <- ll.(bp) land dl lor (bl land lnot dl)
            end
          end
        done;
        let r =
          Lanes.resolve_planes ~n ~h:t.resh ~l:t.resl ~lh:t.reslh ~ll:t.resll
        in
        t.newh.(s) <- r.Lanes.h;
        t.newl.(s) <- r.Lanes.l
      done;
      match Hashtbl.find_opt tbl_rows u with
      | None -> ()
      | Some rl ->
          List.iter
            (fun (li, rrow) ->
              let sub = li lsr 5 and bit = li land 31 in
              splice (scalar_resolve rrow sub bit) sub bit)
            !rl
    in
    let extra_planes u =
      let li = ext_lane.(u - bn) in
      let sub = li lsr 5 and bit = li land 31 in
      for s = 0 to ns - 1 do
        t.newh.(s) <- fullw;
        t.newl.(s) <- fullw
      done;
      splice (scalar_resolve ext_row.(u - bn) sub bit) sub bit
    in
    (* nodes whose value planes changed this cycle: only those need
       their previous-cycle (glitch-rule) planes refreshed at the
       boundary, instead of copying the whole union cone every cycle *)
    let dbg_evals = ref 0 in
    let dbg_commits = ref 0 in
    let chmark = Bytes.make nn '\000' in
    let chlist = Array.make (nm + nfrontier + 1) 0 in
    let nch = ref 0 in
    let note_changed u =
      if Bytes.get chmark u = '\000' then begin
        Bytes.set chmark u '\001';
        chlist.(!nch) <- u;
        incr nch
      end
    in
    let commit u tick =
      let b = u * stride in
      let obs = ref false in
      (if u >= bn then
         (* extras: divergence word is fixed (own lane); dead lanes are
            masked so a declined cyclic circuit cannot oscillate *)
         for s = 0 to ns - 1 do
           let nh = t.newh.(s) and nl = t.newl.(s) in
           let dw =
             ((h.(b + s) lxor nh) lor (l.(b + s) lxor nl)) land live.(s)
           in
           if dw <> 0 then begin
             obs := true;
             h.(b + s) <- nh;
             l.(b + s) <- nl
           end
         done
       else begin
         let tv = F.tape_get_u tape !cur_c u in
         for s = 0 to ns - 1 do
           let nh = t.newh.(s) and nl = t.newl.(s) in
           let nd = Lanes.mismatch ~h:nh ~l:nl tv land live.(s) in
           let od = dv.(b + s) in
           (* observable to readers: a lane entering/leaving divergence,
              or a value change on a diverged lane — undiverged lanes
              are read from the tape, so their stored bits don't matter *)
           let dw = ((h.(b + s) lxor nh) lor (l.(b + s) lxor nl)) land nd in
           if nd <> od || dw <> 0 then begin
             obs := true;
             h.(b + s) <- nh;
             l.(b + s) <- nl;
             if nd <> od then begin
               dv.(b + s) <- nd;
               if nd <> 0 then dpush u;
               let m = ref (nd lxor od) in
               while !m <> 0 do
                 let lsb = !m land - !m in
                 let li = (s * 32) + bit_index lsb 0 in
                 if nd land lsb <> 0 then mcnt.(li) <- mcnt.(li) + 1
                 else mcnt.(li) <- mcnt.(li) - 1;
                 m := !m land (!m - 1)
               done
             end
           end
         done
       end);
      if !obs then begin
        if debug then incr dbg_commits;
        note_changed u;
        mark_readers u tick ~pu:t.pos.(u)
      end
    in
    let eval_member u tick =
      if t.dirty.(u) >= tick then begin
        if debug then incr dbg_evals;
        (* consume the event so extra sweeps only revisit re-marked
           nodes; a tick+1 stamp (resolve next-cycle rule) survives *)
        if t.dirty.(u) = tick then t.dirty.(u) <- tick - 1;
        if u >= bn then begin
          extra_planes u;
          commit u tick
        end
        else begin
          let k = v.F.v_kind.(u) in
          if k = F.kind_bel_reg then begin
            let b = u * stride in
            let tv = F.tape_get_u tape !cur_c u in
            let bh = Lanes.broadcast_h tv and bl = Lanes.broadcast_l tv in
            for s = 0 to ns - 1 do
              let d = dq.(b + s) in
              t.newh.(s) <- (t.qh.(b + s) land d) lor (bh land lnot d);
              t.newl.(s) <- (t.ql.(b + s) land d) lor (bl land lnot d)
            done;
            commit u tick
          end
          else if k = F.kind_bel_comb then begin
            comb_planes u;
            commit u tick
          end
          else if k = F.kind_resolve then begin
            res_planes u;
            commit u tick
          end
        end
      end
    in
    (* ---- per-lane convergence replay (mirrors the scalar engine's
       replay exactly, over the lane's effective circuit) ---- *)
    let replay_converges li c =
      t.repoch <- t.repoch + 1;
      let ep = t.repoch in
      let seeds = lane_seed_arr.(li) in
      let nseeds = Array.length seeds in
      let sub = li lsr 5 and bit = li land 31 in
      for i = 0 to nseeds - 1 do
        let s0 = seeds.(i) in
        t.rstamp.(s0) <- ep;
        t.rv.(s0) <- lane_v s0 sub bit;
        t.rvl.(s0) <- lane_lv s0 sub bit;
        if s0 < bn && v.F.v_kind.(s0) = F.kind_bel_reg then
          t.rq.(s0) <-
            (if dq.((s0 * stride) + sub) land (1 lsl bit) <> 0 then
               Lanes.lane
                 ~h:t.qh.((s0 * stride) + sub)
                 ~l:t.ql.((s0 * stride) + sub)
                 bit
             else F.tape_get_u tape (c + 1) s0)
      done;
      let getv cy p =
        if t.rstamp.(p) = ep then t.rv.(p) else F.tape_get_u tape cy p
      in
      let getl cy p =
        if t.rstamp.(p) = ep then t.rvl.(p) else F.tape_get_u tape (cy - 1) p
      in
      let eff_row u =
        if u >= bn then ext_row.(u - bn)
        else
          match List.assoc_opt u lane_rows.(li) with
          | Some r -> r
          | None -> v.F.v_inputs.(u)
      in
      let replay_lut cy u =
        let row = eff_row u in
        let tb = eff_table li u and iv = eff_inv li u in
        let acc = ref 0 in
        for j = 0 to 3 do
          let p = row.(j) in
          if p >= 0 then
            match getv cy p with
            | Logic.Zero -> acc := !acc lor (((iv lsr j) land 1) lsl j)
            | Logic.One -> acc := !acc lor ((1 - ((iv lsr j) land 1)) lsl j)
            | Logic.X -> acc := !acc lor (1 lsl (j + 4))
        done;
        Scalar.lut_of_acc tb !acc
      in
      let replay_eval cy s =
        let k = if s < bn then v.F.v_kind.(s) else F.kind_resolve in
        if k = F.kind_bel_reg then t.rq.(s)
        else if k = F.kind_bel_comb then replay_lut cy s
        else if k = F.kind_resolve then begin
          let ins = eff_row s in
          let len = Array.length ins in
          if len = 0 then Logic.X
          else begin
            let vr = ref (getv cy ins.(0)) in
            for i = 1 to len - 1 do
              vr := Logic.resolve !vr (getv cy ins.(i))
            done;
            match !vr with
            | Logic.X -> Logic.X
            | (Logic.Zero | Logic.One) as sv ->
                let g = ref false in
                for i = 0 to len - 1 do
                  if not (Logic.equal (getl cy ins.(i)) sv) then g := true
                done;
                if !g then Logic.X else sv
          end
        end
        else Logic.X
      in
      let ok = ref true in
      let cy' = ref (c + 1) in
      while !ok && !cy' < cycles do
        let cc = !cy' in
        let i = ref 0 in
        while !ok && !i < nseeds do
          let s = seeds.(!i) in
          let vv = replay_eval cc s in
          t.rv.(s) <- vv;
          if s < bn && not (Logic.equal vv (F.tape_get_u tape cc s)) then
            ok := false;
          incr i
        done;
        if !ok then begin
          for i = 0 to nseeds - 1 do
            let s = seeds.(i) in
            if
              s < bn
              && v.F.v_kind.(s) = F.kind_bel_reg
              && not (eff_frozen li s)
            then t.rq.(s) <- replay_lut cc s
          done;
          for i = 0 to nseeds - 1 do
            t.rvl.(seeds.(i)) <- t.rv.(seeds.(i))
          done
        end;
        incr cy'
      done;
      !ok
    in
    (* a decided lane (watch error or confirmed convergence) no longer
       needs simulating: drop it from the live mask and scrub its
       divergence bits, so the active set shrinks as verdicts land
       instead of dragging every decided lane's divergence to the last
       cycle *)
    let purge_lane li =
      let s = li lsr 5 in
      let m = 1 lsl (li land 31) in
      live.(s) <- live.(s) land lnot m;
      for i = 0 to !ndl - 1 do
        let b = (dlist.(i) * stride) + s in
        dv.(b) <- dv.(b) land lnot m
      done;
      for i = 0 to nregs - 1 do
        let b = (t.regs.(i) * stride) + s in
        dq.(b) <- dq.(b) land lnot m
      done
    in
    (* ---- the per-cycle loop ---- *)
    let t_setup = if debug then Sys.time () else 0. in
    let err_cy = Array.make nlanes (-1) in
    let conv_cy = Array.make nlanes (-1) in
    let det_cy = Array.make nlanes (-1) in
    let dbg_sweeps = ref 0 in
    let und = Lanemask.create nlanes in
    Lanemask.set_all und;
    Array.iteri (fun li d -> if d then Lanemask.clear und li) lane_dead;
    let cy = ref 0 in
    while (not (Lanemask.is_empty und)) && !cy < cycles do
      let c = !cy in
      let tick = tick0 + c in
      cur_c := c;
      (* wake the active set.  Fault sites recompute every cycle: their
         patched logic can diverge from the moving tape at any time
         without an upstream event (a fault-site register also clocks
         every cycle — a patched clock-enable or rerouted D input makes
         its state drift with no divergence event on the D cone) *)
      for i = 0 to nseednodes - 1 do
        let u = seed_nodes.(i) in
        if
          u < bn
          && v.F.v_kind.(u) = F.kind_bel_reg
          && t.rdirty.(u) < tick
        then t.rdirty.(u) <- tick;
        if t.dirty.(u) < tick then t.dirty.(u) <- tick
      done;
      (* diverged nodes and their readers recompute too: their
         tape-following inputs move under them (the list self-compacts
         as divergence words empty out) *)
      let j = ref 0 in
      for i = 0 to !ndl - 1 do
        let u = dlist.(i) in
        let b = u * stride in
        let nz = ref false in
        for s = 0 to ns - 1 do
          if dv.(b + s) <> 0 then nz := true
        done;
        if !nz then begin
          dlist.(!j) <- u;
          incr j;
          if t.dirty.(u) < tick then t.dirty.(u) <- tick;
          mark_readers u tick ~pu:(-1)
        end
        else Bytes.set dmark u '\000'
      done;
      ndl := !j;
      (* event-driven evaluation: the Kahn prefix in topological order
         (never re-marked behind the scan), then each leftover SCC
         iterated to its fixpoint — union-graph back edges live inside
         an SCC, so local sweeps settle every lane to its own acyclic
         circuit's unique values, and cross-SCC marks only point
         forward *)
      for i = 0 to kahn_len - 1 do
        eval_member t.order.(i) tick
      done;
      let starts = !scc_starts in
      let nscc = Array.length starts in
      for g = 0 to nscc - 1 do
        let s0 = starts.(g) in
        let s1 = if g + 1 < nscc then starts.(g + 1) else nm in
        sweep_again := true;
        while !sweep_again do
          sweep_again := false;
          for i = s0 to s1 - 1 do
            eval_member t.order.(i) tick
          done;
          if debug && !sweep_again then incr dbg_sweeps
        done
      done;
      (* watched-output check (before the clock, like the scalar
         engine).  Functional entries ([wi < nfunc]) record the first
         error; trailing detection entries record the first disagreement
         flag.  A lane is decided — and leaves the batch — once its
         functional verdict landed and no detection verdict is still
         pending, mirroring the scalar engine's continue-past-error
         rule; with [ndetect = 0] this degenerates to the historical
         retire-on-first-error behaviour. *)
      let exp = expected.(c) in
      for si = 0 to Array.length suspects - 1 do
        let wi = suspects.(si) in
        let w = watch.(wi) in
        let b = w * stride in
        let ev = exp.(wi) in
        let tv = F.tape_get_u tape c w in
        let bm =
          Lanes.mismatch ~h:(Lanes.broadcast_h tv) ~l:(Lanes.broadcast_l tv)
            ev
        in
        for s = 0 to ns - 1 do
          let d = dv.(b + s) in
          let mism =
            ((Lanes.mismatch ~h:h.(b + s) ~l:l.(b + s) ev land d)
            lor (bm land lnot d))
            land Lanemask.word und s
          in
          if mism <> 0 then begin
            let m = ref mism in
            while !m <> 0 do
              let lsb = !m land - !m in
              let li = (s * 32) + bit_index lsb 0 in
              (if wi < nfunc then begin
                 if err_cy.(li) < 0 then err_cy.(li) <- c
               end
               else if det_cy.(li) < 0 then det_cy.(li) <- c);
              if err_cy.(li) >= 0 && (ndetect = 0 || det_cy.(li) >= 0)
              then begin
                Lanemask.clear und li;
                purge_lane li
              end;
              m := !m land (!m - 1)
            done
          end
        done
      done;
      (* clock the cone registers.  A register clocks when divergence
         events reached its D cone ([rdirty]) or its state is already
         diverged ([dq], it may converge back); otherwise its next state
         tracks the tape exactly and no work is needed — the stored q
         planes go stale on undiverged lanes, which is fine because
         every read blends them through [dq].  The last cycle's next
         state is never read, so the clock is skipped entirely. *)
      if c < cycles - 1 then
        for i = 0 to nregs - 1 do
          let r = t.regs.(i) in
          let b = r * stride in
          let dqnz = ref false in
          for s = 0 to ns - 1 do
            if dq.(b + s) <> 0 then dqnz := true
          done;
          if t.rdirty.(r) >= tick || !dqnz then begin
            let fzo = Hashtbl.find_opt tbl_ce r in
            let basefz = v.F.v_ce_frozen.(r) in
            if not (basefz && fzo = None) then begin
              comb_planes r;
              let tvq = F.tape_get_u tape c r in
              let tvn = F.tape_get_u tape (c + 1) r in
              let kh = Lanes.broadcast_h tvq and kl = Lanes.broadcast_l tvq in
              let mark = ref false in
              for s = 0 to ns - 1 do
                let fzw =
                  match fzo with
                  | Some a -> a.(s)
                  | None -> if basefz then fullw else 0
                in
                let od = dq.(b + s) in
                (* a frozen lane keeps its current state: stored planes
                   where diverged, the tape's value where not *)
                let keep_h = t.qh.(b + s) land od lor (kh land lnot od) in
                let keep_l = t.ql.(b + s) land od lor (kl land lnot od) in
                let nh = t.newh.(s) land lnot fzw lor (keep_h land fzw) in
                let nl = t.newl.(s) land lnot fzw lor (keep_l land fzw) in
                let nd = Lanes.mismatch ~h:nh ~l:nl tvn land live.(s) in
                t.qh.(b + s) <- nh;
                t.ql.(b + s) <- nl;
                if nd <> 0 || od <> 0 then mark := true;
                dq.(b + s) <- nd
              done;
              if !mark && t.dirty.(r) < tick + 1 then t.dirty.(r) <- tick + 1
            end
          end
        done;
      (* previous-cycle planes and divergence words for the glitch
         rule: only nodes that committed this cycle can differ from
         their boundary copy *)
      for i = 0 to !nch - 1 do
        let u = chlist.(i) in
        Bytes.set chmark u '\000';
        let b = u * stride in
        for s = 0 to ns - 1 do
          lh.(b + s) <- h.(b + s);
          ll.(b + s) <- l.(b + s);
          dvl.(b + s) <- dv.(b + s)
        done
      done;
      nch := 0;
      (* per-lane convergence early-exit: a candidate lane has no
         diverged member ([mcnt]) and no diverged register state
         ([dq]); the scalar replay rule then confirms it *)
      if c < cycles - 1 && not (Lanemask.is_empty und) then begin
        let cand = Array.init ns (fun s -> Lanemask.word und s) in
        for li = 0 to nlanes - 1 do
          if mcnt.(li) <> 0 then
            cand.(li lsr 5) <- cand.(li lsr 5) land lnot (1 lsl (li land 31))
        done;
        let nonzero = ref false in
        for s = 0 to ns - 1 do
          if cand.(s) <> 0 then nonzero := true
        done;
        let i = ref 0 in
        while !nonzero && !i < nregs do
          let r = t.regs.(!i) in
          let b = r * stride in
          nonzero := false;
          for s = 0 to ns - 1 do
            cand.(s) <- cand.(s) land lnot dq.(b + s);
            if cand.(s) <> 0 then nonzero := true
          done;
          incr i
        done;
        if !nonzero then
          for s = 0 to ns - 1 do
            let m = ref cand.(s) in
            while !m <> 0 do
              let lsb = !m land - !m in
              m := !m land (!m - 1);
              let li = (s * 32) + bit_index lsb 0 in
              if replay_converges li c then begin
                conv_cy.(li) <- c;
                Lanemask.clear und li;
                purge_lane li
              end
            done
          done
      end;
      incr cy
    done;
    if debug then
      Printf.eprintf
        "[fsim_batch] ran %d cycles, %d extra sweeps, %d evals, %d commits, \
         %d diverged at end (setup %.2fms loop %.2fms)\n\
         %!"
        !cy !dbg_sweeps !dbg_evals !dbg_commits !ndl
        ((t_setup -. t_start) *. 1e3)
        ((Sys.time () -. t_setup) *. 1e3);
    (* restore the all-zero divergence invariant for the next run:
       every touched [dv]/[dvl]/[dq]/[dmark] entry is a member's *)
    for i = 0 to nm - 1 do
      let u = t.members.(i) in
      Bytes.set dmark u '\000';
      let b = u * stride in
      for s = 0 to stride - 1 do
        dv.(b + s) <- 0;
        dvl.(b + s) <- 0;
        dq.(b + s) <- 0
      done
    done;
    Some
      (Array.init nlanes (fun li ->
           if lane_dead.(li) then None
           else
             Some
               {
                 bv_error_cycle = err_cy.(li);
                 bv_converge_cycle = conv_cy.(li);
                 bv_detect_cycle = det_cy.(li);
               }))
  with Ineligible -> None
