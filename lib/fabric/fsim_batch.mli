(** Bit-parallel batched differential fault simulation.

    Packs up to 64 faults into the lanes of possibility-plane words
    ({!Fsim_backend.Lanes}) and runs one event-driven cone evaluation
    over the union of the lanes' fanout cones against the shared
    baseline tape, instead of one scalar {!Fsim.diff_run} per fault.
    Cell-content patches (truth table, pin inversion, flip-flop init,
    clock-enable) apply word-parallel through per-lane masks; rewired
    input rows and appended resolve nodes are spliced per lane.

    Per-lane verdicts are bit-identical to the scalar differential
    engine fault by fault: same first error cycle, same convergence
    cycle, under the same pessimistic-glitch and seed-replay rules. *)

type t
(** Per-worker batch context over one base simulator: the base reader
    CSR, the bel map and the plane/state arrays, reused across every
    batch the worker executes. *)

val create : Fsim.t -> Fsim.cone -> width:int -> t
(** [create base cone ~width] with [width] 32 or 64 (lanes per batch).
    [base] is the worker's golden simulator; [cone] the snapshot its
    build produced.  Raises [Invalid_argument] on any other width. *)

val width : t -> int

val csr : t -> int array * int array
(** The base reader CSR [(off, succ)], for handing to
    {!Fsim.fault_delta}. *)

val bel_of : t -> int array
(** The base {!Fsim.bel_map}, for handing to {!Fsim.fault_delta}. *)

type verdict = {
  bv_error_cycle : int;  (** first watched-output error, [-1] = silent *)
  bv_converge_cycle : int;
      (** convergence early-exit boundary, [-1] = ran every cycle *)
  bv_detect_cycle : int;
      (** first cycle a trailing detection watch entry left its all-zero
          expectation, [-1] = never (always [-1] when [ndetect = 0]) *)
}
(** Exactly {!Fsim.diff_run}'s
    [(first_error_cycle, converge_cycle, detect_cycle)] triple for the
    lane's fault. *)

val run :
  t ->
  ?ndetect:int ->
  tape:Fsim.tape ->
  expected:Tmr_logic.Logic.t array array ->
  watch:int array ->
  lanes:Fsim.delta array ->
  unit ->
  verdict option array option
(** [run t ~tape ~expected ~watch ~lanes ()] simulates all faults of
    [lanes] (at most [width t], each a {!Fsim.patch_delta} or
    {!Fsim.fault_delta} overlay) in one batch against the baseline
    [tape]; [watch] are the base simulator's watch nodes and
    [expected.(cycle).(i)] the golden value of [watch.(i)] — the same
    arrays a scalar {!Fsim.diff_run} of these faults would receive.

    [ndetect] marks the last [ndetect] entries of [watch] as in-circuit
    detection flags with all-zero expected rows, exactly as in
    {!Fsim.diff_run}: a lane whose functional verdict has landed keeps
    simulating while a detection verdict is still pending, and vice
    versa, so detection latency matches the scalar engine bit for bit.
    Defaults to [0] (every watch entry functional — the historical
    contract).

    A [None] element declines that single lane: its rewiring makes the
    lane's own effective circuit combinationally cyclic (a bridge can
    close a feedback loop), which needs the scalar engine's per-SCC
    Kleene iteration.  The lane's bits are frozen at X for the whole
    batch, so the other lanes are unaffected.

    An overall [None] declines the whole batch (a union-cone node in a
    cyclic SCC of the {e base} graph): the caller runs every lane on
    the scalar engine instead. *)

val last_cone : t -> int array
(** The union cone of the last {!run}, in evaluation order (test
    hook). *)
