module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb

type t = { fp_wires : int array; fp_bels : int array; fp_pads : int array }

let of_bit dev db bit =
  match Bitdb.resource db bit with
  | Bitdb.Pip p ->
      {
        fp_wires = [| dev.Device.pip_src.(p); dev.Device.pip_dst.(p) |];
        fp_bels = [||];
        fp_pads = [||];
      }
  | Bitdb.Lut_bit (b, _)
  | Bitdb.Ff_init b
  | Bitdb.Out_sel b
  | Bitdb.Ce_inv b
  | Bitdb.Sr_inv b
  | Bitdb.In_inv (b, _) ->
      { fp_wires = [||]; fp_bels = [| b |]; fp_pads = [||] }
  | Bitdb.Pad_enable pad ->
      {
        fp_wires = [| dev.Device.pad_wire.(pad) |];
        fp_bels = [||];
        fp_pads = [| pad |];
      }
  | Bitdb.Pad_cfg (pad, _) ->
      { fp_wires = [||]; fp_bels = [||]; fp_pads = [| pad |] }

let describe dev fp =
  let b = Buffer.create 64 in
  let sep () = if Buffer.length b > 0 then Buffer.add_string b ", " in
  Array.iter
    (fun w ->
      sep ();
      Buffer.add_string b (Device.describe_wire dev w))
    fp.fp_wires;
  Array.iter
    (fun bel ->
      sep ();
      Buffer.add_string b (Printf.sprintf "bel %d" bel))
    fp.fp_bels;
  Array.iter
    (fun pad ->
      sep ();
      Buffer.add_string b (Printf.sprintf "pad %d" pad))
    fp.fp_pads;
  if Buffer.length b = 0 then "(no fabric resource)" else Buffer.contents b
