(** The five filter versions of the paper's evaluation (§3, Table 2/3/4). *)

val build :
  ?params:Fir.params ->
  ?voter:Tmr_core.Voter.variant ->
  Tmr_core.Partition.strategy ->
  Tmr_netlist.Netlist.t
(** The filter protected by the given strategy (default: the paper's
    11-tap 9-bit filter, plain majority voters). *)

val description : Tmr_core.Partition.strategy -> string
(** The paper's wording for each version. *)
