module Partition = Tmr_core.Partition

let build ?(params = Fir.paper_params) ?voter strategy =
  Partition.protect ?voter (Fir.build params) strategy

let description = function
  | Partition.Unprotected -> "standard filter, no protection"
  | Partition.Max_partition ->
      "TMR with maximum logic partition: voters after every multiplier and \
       adder, voted registers"
  | Partition.Medium_partition ->
      "TMR with medium logic partition: voters after each tap block, voted \
       registers"
  | Partition.Min_partition ->
      "TMR with minimum partition: voted registers and output voters only"
  | Partition.Min_partition_nv ->
      "TMR with minimum partition and unvoted registers: output voters only"
  | Partition.Custom (n, _) -> "custom partition: " ^ n
