type t = {
  w : int;
  v : int; (* invariant: 0 <= v < 2^w *)
}

let mask w = (1 lsl w) - 1

let width t = t.w

let create ~width v =
  if width < 1 || width > 62 then
    invalid_arg (Printf.sprintf "Bitvec.create: width %d out of [1,62]" width);
  { w = width; v = v land mask width }

let zero ~width = create ~width 0
let one ~width = create ~width 1

let to_unsigned t = t.v

let to_signed t =
  let sign = 1 lsl (t.w - 1) in
  if t.v land sign = 0 then t.v else t.v - (1 lsl t.w)

let of_signed ~width v = create ~width v

let equal a b = a.w = b.w && a.v = b.v

let check_width op a b =
  if a.w <> b.w then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch %d vs %d" op a.w b.w)

let bit t i =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.bit: index out of range";
  (t.v lsr i) land 1 = 1

let set_bit t i b =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.set_bit: index out of range";
  let v = if b then t.v lor (1 lsl i) else t.v land lnot (1 lsl i) in
  { t with v }

let add a b =
  check_width "add" a b;
  { w = a.w; v = (a.v + b.v) land mask a.w }

let neg a = { w = a.w; v = -a.v land mask a.w }

let sub a b =
  check_width "sub" a b;
  { w = a.w; v = (a.v - b.v) land mask a.w }

let mul a b =
  check_width "mul" a b;
  { w = a.w; v = a.v * b.v land mask a.w }

let mul_wide a b =
  let w = a.w + b.w in
  if w > 62 then invalid_arg "Bitvec.mul_wide: result wider than 62 bits";
  create ~width:w (to_signed a * to_signed b)

let shift_left a n =
  if n < 0 then invalid_arg "Bitvec.shift_left: negative shift";
  { w = a.w; v = (a.v lsl n) land mask a.w }

let resize t ~width = create ~width (to_signed t)

let concat_bits bits_lsb_first =
  let w = List.length bits_lsb_first in
  let v, _ =
    List.fold_left
      (fun (acc, i) b -> ((if b then acc lor (1 lsl i) else acc), i + 1))
      (0, 0) bits_lsb_first
  in
  create ~width:(max w 1) v

let bits t = List.init t.w (fun i -> bit t i)

let to_string t = String.init t.w (fun i -> if bit t (t.w - 1 - i) then '1' else '0')

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Lanemask = struct
  (* 32 bits per array word so a mask word always fits the tagged-int
     range on every platform the batch engine targets; the tail word
     keeps its unused high bits zero as an invariant, so popcount and
     word-level union/intersection never need defensive masking. *)
  let bits_per_word = 32

  type nonrec t = {
    n : int;
    words : int array; (* invariant: bits >= n are 0 *)
  }

  let nwords n = (n + bits_per_word - 1) / bits_per_word

  let word_mask n w =
    let hi = min bits_per_word (n - (w * bits_per_word)) in
    (1 lsl hi) - 1

  let create n =
    if n < 1 then invalid_arg "Bitvec.Lanemask.create: length < 1";
    { n; words = Array.make (nwords n) 0 }

  let length t = t.n
  let num_words t = Array.length t.words

  let check t i op =
    if i < 0 || i >= t.n then
      invalid_arg (Printf.sprintf "Bitvec.Lanemask.%s: lane %d out of [0,%d)" op i t.n)

  let get t i =
    check t i "get";
    (t.words.(i lsr 5) lsr (i land 31)) land 1 = 1

  let set t i =
    check t i "set";
    let w = i lsr 5 in
    t.words.(w) <- t.words.(w) lor (1 lsl (i land 31))

  let clear t i =
    check t i "clear";
    let w = i lsr 5 in
    t.words.(w) <- t.words.(w) land lnot (1 lsl (i land 31))

  let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

  let set_all t =
    for w = 0 to Array.length t.words - 1 do
      t.words.(w) <- word_mask t.n w
    done

  let word t w = t.words.(w)

  let set_word t w v =
    (* stores only the bits that exist: the tail word is masked so the
       zero-padding invariant holds whatever [v] carries above it *)
    t.words.(w) <- v land word_mask t.n w

  let pop_int v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
    go v 0

  let popcount t = Array.fold_left (fun acc w -> acc + pop_int w) 0 t.words

  let is_empty t = Array.for_all (fun w -> w = 0) t.words

  let first_set t =
    let rec scan w =
      if w = Array.length t.words then -1
      else if t.words.(w) = 0 then scan (w + 1)
      else
        let rec bit i = if (t.words.(w) lsr i) land 1 = 1 then i else bit (i + 1) in
        (w * bits_per_word) + bit 0
    in
    scan 0

  let check_pair a b op =
    if a.n <> b.n then
      invalid_arg
        (Printf.sprintf "Bitvec.Lanemask.%s: length mismatch %d vs %d" op a.n b.n)

  let union_into ~into src =
    check_pair into src "union_into";
    for w = 0 to Array.length into.words - 1 do
      into.words.(w) <- into.words.(w) lor src.words.(w)
    done

  let inter_into ~into src =
    check_pair into src "inter_into";
    for w = 0 to Array.length into.words - 1 do
      into.words.(w) <- into.words.(w) land src.words.(w)
    done

  let diff_into ~into src =
    check_pair into src "diff_into";
    for w = 0 to Array.length into.words - 1 do
      into.words.(w) <- into.words.(w) land lnot src.words.(w)
    done

  let copy t = { n = t.n; words = Array.copy t.words }

  let equal a b = a.n = b.n && a.words = b.words

  let iter f t =
    for w = 0 to Array.length t.words - 1 do
      let bits = ref t.words.(w) in
      while !bits <> 0 do
        let i = !bits land - !bits in
        f ((w * bits_per_word) + pop_int (i - 1));
        bits := !bits land lnot i
      done
    done
end
