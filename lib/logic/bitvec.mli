(** Fixed-width two's-complement bit vectors backed by native [int].

    Used by the software golden models (reference FIR filter, truth-table
    computation) and by tests.  Widths are limited to 62 bits so that every
    value fits in an OCaml immediate integer. *)

type t

val width : t -> int

val create : width:int -> int -> t
(** [create ~width v] truncates [v] to [width] bits.  [width] must be in
    [1, 62]. *)

val zero : width:int -> t
val one : width:int -> t

val to_unsigned : t -> int
(** Value read as an unsigned [width]-bit integer. *)

val to_signed : t -> int
(** Value read as a two's-complement [width]-bit integer. *)

val of_signed : width:int -> int -> t
(** Like {!create}; named for call-site clarity with negative values. *)

val equal : t -> t -> bool

val bit : t -> int -> bool
(** [bit v i] is bit [i] (LSB is 0).  Raises [Invalid_argument] when out of
    range. *)

val set_bit : t -> int -> bool -> t

val add : t -> t -> t
(** Wrapping addition; both operands must share a width. *)

val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Wrapping multiplication at the operands' common width. *)

val mul_wide : t -> t -> t
(** Full-precision signed product; result width is the sum of the operand
    widths. *)

val shift_left : t -> int -> t

val resize : t -> width:int -> t
(** Sign-extending (or truncating) resize. *)

val concat_bits : bool list -> t
(** Build from a list of bits, LSB first. *)

val bits : t -> bool list
(** Bits LSB first. *)

val to_string : t -> string
(** Binary, MSB first. *)

val pp : Format.formatter -> t -> unit

(** Mutable fixed-length bitsets over 32-bit array words.

    Used by the bit-parallel batched fault simulator to track per-lane
    state (active, diverged, converged lanes) where one lane is one
    fault packed into a machine-word bit position.  Lengths are
    arbitrary; the final partial word keeps its unused high bits zero
    as an invariant, so {!Lanemask.popcount}, {!Lanemask.is_empty} and
    word-level boolean updates need no tail masking at use sites. *)
module Lanemask : sig
  type t

  val bits_per_word : int
  (** 32: mask words stay immediate integers on every platform. *)

  val create : int -> t
  (** [create n] is an all-clear mask of [n >= 1] lanes. *)

  val length : t -> int
  val num_words : t -> int

  val get : t -> int -> bool
  val set : t -> int -> unit
  val clear : t -> int -> unit
  val set_all : t -> unit
  val clear_all : t -> unit

  val word : t -> int -> int
  (** Raw 32-bit word [w]; bits beyond [length] are always zero. *)

  val set_word : t -> int -> int -> unit
  (** [set_word t w v] stores [v] into word [w], masking off any bits
      beyond [length t] so the zero-tail invariant is preserved. *)

  val popcount : t -> int
  val is_empty : t -> bool

  val first_set : t -> int
  (** Lowest set lane index, or [-1] when empty. *)

  val union_into : into:t -> t -> unit
  val inter_into : into:t -> t -> unit

  val diff_into : into:t -> t -> unit
  (** [diff_into ~into src] clears every lane of [src] in [into]. *)

  val copy : t -> t
  val equal : t -> t -> bool

  val iter : (int -> unit) -> t -> unit
  (** Calls [f] on each set lane index in increasing order. *)
end
