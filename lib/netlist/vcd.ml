module Logic = Tmr_logic.Logic

(* VCD identifier codes: printable characters '!'..'~' in a varint-like
   scheme. *)
let code_of_int n =
  let base = 94 in
  let rec go n acc =
    let digit = Char.chr (33 + (n mod base)) in
    let acc = String.make 1 digit ^ acc in
    if n < base then acc else go ((n / base) - 1) acc
  in
  go n ""

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '[' | ']' -> c
      | _ -> '_')
    label

(* ------------------------------------------------------------------ *)
(* Generic writer: signals hold caller-supplied Logic values; [tick]
   renders the change block of one cycle.  The Netsim-backed tracer below
   and fabric-level waveform dumps (tmrtool explain) both sit on top. *)

type sig_id = int

type wsignal = {
  w_label : string;
  w_code : string;
  w_cur : Logic.t array;  (* LSB first *)
  mutable w_last : string option;
}

type writer = {
  mutable w_signals : wsignal list;  (* reversed *)
  mutable w_next : int;
  mutable w_cycles : string list;  (* rendered change blocks, reversed *)
  mutable w_nticks : int;
  mutable w_started : bool;
}

let writer () =
  { w_signals = []; w_next = 0; w_cycles = []; w_nticks = 0; w_started = false }

let add_signal w ~label ~width =
  if w.w_started then invalid_arg "Vcd.add_signal: sampling already started";
  if width <= 0 then invalid_arg "Vcd.add_signal: width must be positive";
  let code = code_of_int w.w_next in
  w.w_next <- w.w_next + 1;
  w.w_signals <-
    { w_label = label; w_code = code; w_cur = Array.make width Logic.X;
      w_last = None }
    :: w.w_signals;
  List.length w.w_signals - 1

let nth_signal w id =
  let n = List.length w.w_signals in
  if id < 0 || id >= n then invalid_arg "Vcd: unknown signal";
  List.nth w.w_signals (n - 1 - id)

let set w id values =
  let s = nth_signal w id in
  if Array.length values <> Array.length s.w_cur then
    invalid_arg "Vcd.set: width mismatch";
  Array.blit values 0 s.w_cur 0 (Array.length values)

let set_bit w id i v =
  let s = nth_signal w id in
  s.w_cur.(i) <- v

let value_string s =
  (* VCD bit strings are MSB first *)
  let n = Array.length s.w_cur in
  String.init n (fun i ->
      match s.w_cur.(n - 1 - i) with
      | Logic.Zero -> '0'
      | Logic.One -> '1'
      | Logic.X -> 'x')

let tick w =
  w.w_started <- true;
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "#%d\n" w.w_nticks);
  w.w_nticks <- w.w_nticks + 1;
  List.iter
    (fun s ->
      let v = value_string s in
      if s.w_last <> Some v then begin
        s.w_last <- Some v;
        if Array.length s.w_cur = 1 then
          Buffer.add_string buf (Printf.sprintf "%s%s\n" v s.w_code)
        else Buffer.add_string buf (Printf.sprintf "b%s %s\n" v s.w_code)
      end)
    (List.rev w.w_signals);
  w.w_cycles <- Buffer.contents buf :: w.w_cycles

let writer_to_string w =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version tmr-fpga Vcd $end\n";
  Buffer.add_string buf "$timescale 1 ns $end\n";
  Buffer.add_string buf "$scope module dut $end\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n"
           (Array.length s.w_cur) s.w_code (sanitize s.w_label)))
    (List.rev w.w_signals);
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  List.iter (Buffer.add_string buf) (List.rev w.w_cycles);
  Buffer.contents buf

let writer_save w path =
  let oc = open_out path in
  output_string oc (writer_to_string w);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Netsim-backed tracer *)

type t = {
  sim : Netsim.t;
  w : writer;
  mutable cells : (sig_id * Netlist.id array) list;  (* reversed *)
}

let create sim nl =
  let t = { sim; w = writer (); cells = [] } in
  let add label cells =
    let id = add_signal t.w ~label ~width:(Array.length cells) in
    t.cells <- (id, cells) :: t.cells
  in
  List.iter (fun (port, bits) -> add port bits) (Netlist.input_ports nl);
  List.iter (fun (port, bits) -> add port bits) (Netlist.output_ports nl);
  t

let watch_cell t ~label cell =
  let id = add_signal t.w ~label ~width:1 in
  t.cells <- (id, [| cell |]) :: t.cells

let sample t =
  List.iter
    (fun (id, cells) ->
      Array.iteri
        (fun i c -> set_bit t.w id i (Netsim.value t.sim c))
        cells)
    t.cells;
  tick t.w

let to_string t = writer_to_string t.w
let save t path = writer_save t.w path
