(** Value-change-dump (VCD) trace writer.

    One timescale unit per clock cycle; X values are emitted as VCD [x].
    Two layers: a generic {!writer} fed arbitrary {!Tmr_logic.Logic}
    values (used by [tmrtool explain] to dump fabric-level faulty-run
    waveforms), and a {!Netsim}-backed tracer on top that records the
    port values of a netlist simulation for GTKWave & co. *)

(** {1 Generic writer} *)

type writer
type sig_id

val writer : unit -> writer

val add_signal : writer -> label:string -> width:int -> sig_id
(** Declare one signal (bit order LSB first).  Must precede the first
    {!tick}. *)

val set : writer -> sig_id -> Tmr_logic.Logic.t array -> unit
(** Set the signal's current value (length must match the width). *)

val set_bit : writer -> sig_id -> int -> Tmr_logic.Logic.t -> unit

val tick : writer -> unit
(** Close the current cycle: emit the change block of every signal whose
    value differs from the previously emitted one. *)

val writer_to_string : writer -> string
val writer_save : writer -> string -> unit

(** {1 Netlist-simulation tracer} *)

type t

val create : Netsim.t -> Netlist.t -> t
(** Traces every input and output port of the netlist. *)

val watch_cell : t -> label:string -> Netlist.id -> unit
(** Additionally trace one internal net (e.g. a flip-flop under SEU
    attack).  Must be called before the first {!sample}. *)

val sample : t -> unit
(** Record the current simulator values as the next cycle. *)

val to_string : t -> string
(** Render the full VCD document (header + value changes). *)

val save : t -> string -> unit
