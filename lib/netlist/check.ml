let lut_is_maj3 table =
  let expected = Netlist.lut_of_fun ~arity:3 (fun v ->
      (v.(0) && v.(1)) || (v.(0) && v.(2)) || (v.(1) && v.(2)))
  in
  table = expected.Netlist.table

let run nl =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match Levelize.run nl with
  | Ok _ -> ()
  | Error msg -> err "%s" msg);
  Netlist.iter_cells nl (fun c ->
      let d = Netlist.domain nl c in
      if d < -1 || d > 2 then err "cell %d: domain %d out of range" c d;
      if Netlist.is_voter nl c then begin
        match Netlist.kind nl c with
        | Netlist.Maj3 -> ()
        | Netlist.Lut { arity = 3; table } when lut_is_maj3 table -> ()
        (* voter macros beyond the single majority gate: the improved
           voter's 2-input gate decomposition and the detecting voter's
           pairwise disagreement XORs *)
        | Netlist.And2 | Netlist.Or2 | Netlist.Xor2 -> ()
        | Netlist.Lut { arity = 2; _ } -> ()
        | k ->
            err "cell %d: voter flag on non-majority cell (%s)" c
              (Format.asprintf "%a" Netlist.pp_kind k)
      end;
      (* TMR isolation: a cell assigned to a domain must not read logic of a
         different domain, unless it is a voter (voters read all three). *)
      if d >= 0 && not (Netlist.is_voter nl c) then
        Array.iter
          (fun src ->
            let ds = Netlist.domain nl src in
            if ds >= 0 && ds <> d then
              err "cell %d (domain %d) reads cell %d of domain %d" c d src ds)
          (Netlist.fanins nl c));
  List.iter
    (fun (port_name, bits) ->
      if Array.length bits = 0 then err "output port %S is empty" port_name)
    (Netlist.output_ports nl);
  match !errors with
  | [] -> Ok ()
  | es -> Error (List.rev es)

let run_exn nl =
  match run nl with
  | Ok () -> ()
  | Error es ->
      failwith ("Check: " ^ String.concat "; " es)
