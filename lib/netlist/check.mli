(** Netlist well-formedness lint.

    Run after construction and after every transformation (triplication,
    voter insertion, technology mapping) to catch rewiring mistakes
    early. *)

val run : Netlist.t -> (unit, string list) result
(** Checks: no combinational loops; output ports driven; domains within
    [-1, 2]; voter-flagged cells are majority functions or 2-input voter
    macro gates (the improved voter's decomposition, the detecting
    voter's disagreement XORs); LUT tables within range; TMR invariant —
    a non-voter cell never reads a net from a different non-negative
    domain. *)

val run_exn : Netlist.t -> unit
