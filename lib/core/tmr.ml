module Netlist = Tmr_netlist.Netlist

type spec = {
  barrier : Netlist.t -> int -> bool;
  vote_registers : bool;
  voter : Voter.variant;
}

let no_barriers =
  { barrier = (fun _ _ -> false); vote_registers = false; voter = Voter.Majority }

let domains = 3

let redundant_port port d = Printf.sprintf "%s~%d" port d

let triplicate src spec =
  Netlist.iter_cells src (fun c ->
      if Netlist.domain src c >= 0 then
        invalid_arg "Tmr.triplicate: input is already triplicated");
  let dst = Netlist.create () in
  let n = Netlist.num_cells src in
  (* raw domain copies, and the representative downstream consumers read
     (the copy itself, or its domain voter at a barrier) *)
  let copy = Array.init domains (fun _ -> Array.make n (-1)) in
  let repr = Array.init domains (fun _ -> Array.make n (-1)) in
  let placeholder = ref (-1) in
  let get_placeholder () =
    if !placeholder < 0 then
      placeholder :=
        Netlist.add_cell dst (Netlist.Const Tmr_logic.Logic.Zero) ~fanins:[||];
    !placeholder
  in
  let vote_cell c =
    match Netlist.kind src c with
    | Netlist.Ff _ -> spec.vote_registers || spec.barrier src c
    | Netlist.Input | Netlist.Output -> false
    | Netlist.Const _ -> false
    | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2 | Netlist.Mux2
    | Netlist.Maj3 | Netlist.Lut _ ->
        spec.barrier src c
  in
  (* per-voted-bit pairwise disagreement detectors (Detecting voter),
     collected in cell-index order and OR-reduced into the tmr_err_*
     output ports after the regular ports *)
  let det_ab = ref [] and det_bc = ref [] and det_ac = ref [] in
  let add_detect comp name a b c =
    Netlist.set_comp dst comp;
    let ab, bc, ac = Voter.emit_detect dst ~name ~a ~b ~c in
    det_ab := ab :: !det_ab;
    det_bc := bc :: !det_bc;
    det_ac := ac :: !det_ac
  in
  let add_voters c =
    for d = 0 to domains - 1 do
      Netlist.set_comp dst (Netlist.comp src c ^ "/vote");
      let v =
        Voter.emit_vote spec.voter dst
          ~name:(Printf.sprintf "%s/vote~%d" (Netlist.name src c) d)
          ~domain:d ~a:copy.(0).(c) ~b:copy.(1).(c) ~c:copy.(2).(c) ()
      in
      repr.(d).(c) <- v
    done;
    if Voter.has_detection spec.voter then
      add_detect
        (Netlist.comp src c ^ "/vote")
        (Netlist.name src c ^ "/vote")
        copy.(0).(c) copy.(1).(c) copy.(2).(c)
  in
  for c = 0 to n - 1 do
    let kind = Netlist.kind src c in
    let name = Netlist.name src c in
    Netlist.set_comp dst (Netlist.comp src c);
    (match kind with
    | Netlist.Output -> () (* handled with output ports below *)
    | Netlist.Input ->
        for d = 0 to domains - 1 do
          let id =
            Netlist.add_cell dst
              ~name:(Printf.sprintf "%s~%d" name d)
              ~domain:d Netlist.Input ~fanins:[||]
          in
          copy.(d).(c) <- id;
          repr.(d).(c) <- id
        done
    | Netlist.Ff init ->
        (* the D driver may be created later (feedback); fix up in pass 2 *)
        for d = 0 to domains - 1 do
          let id =
            Netlist.add_cell dst
              ~name:(Printf.sprintf "%s~%d" name d)
              ~domain:d (Netlist.Ff init)
              ~fanins:[| get_placeholder () |]
          in
          copy.(d).(c) <- id;
          repr.(d).(c) <- id
        done;
        if vote_cell c then add_voters c
    | Netlist.Const _ | Netlist.Not | Netlist.And2 | Netlist.Or2
    | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3 | Netlist.Lut _ ->
        for d = 0 to domains - 1 do
          let fanins =
            Array.map (fun s -> repr.(d).(s)) (Netlist.fanins src c)
          in
          Array.iter
            (fun f ->
              if f < 0 then
                invalid_arg
                  "Tmr.triplicate: combinational fanin precedes definition")
            fanins;
          let id =
            Netlist.add_cell dst
              ~name:(Printf.sprintf "%s~%d" name d)
              ~domain:d kind ~fanins
          in
          copy.(d).(c) <- id;
          repr.(d).(c) <- id
        done;
        if vote_cell c then add_voters c)
  done;
  (* pass 2: flip-flop D fix-ups *)
  for c = 0 to n - 1 do
    match Netlist.kind src c with
    | Netlist.Ff _ ->
        let d_src = (Netlist.fanins src c).(0) in
        for d = 0 to domains - 1 do
          Netlist.set_fanin dst copy.(d).(c) 0 repr.(d).(d_src)
        done
    | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Not
    | Netlist.And2 | Netlist.Or2 | Netlist.Xor2 | Netlist.Mux2
    | Netlist.Maj3 | Netlist.Lut _ ->
        ()
  done;
  (* ports *)
  List.iter
    (fun (port, bits) ->
      for d = 0 to domains - 1 do
        Netlist.add_input_port dst (redundant_port port d)
          (Array.map (fun c -> copy.(d).(c)) bits)
      done)
    (Netlist.input_ports src);
  List.iter
    (fun (port, bits) ->
      let out_bits =
        Array.map
          (fun ocell ->
            let s = (Netlist.fanins src ocell).(0) in
            Netlist.set_comp dst "output/vote";
            let v =
              Voter.emit_vote spec.voter dst
                ~name:(Netlist.name src ocell ^ "/vote")
                ~a:copy.(0).(s) ~b:copy.(1).(s) ~c:copy.(2).(s) ()
            in
            if Voter.has_detection spec.voter then
              add_detect "output/vote"
                (Netlist.name src ocell ^ "/vote")
                copy.(0).(s) copy.(1).(s) copy.(2).(s);
            Netlist.set_comp dst "output";
            Netlist.add_cell dst ~name:(Netlist.name src ocell) Netlist.Output
              ~fanins:[| v |])
          bits
      in
      Netlist.add_output_port dst port out_bits)
    (Netlist.output_ports src);
  (* detection aggregation: one single-bit error port per disagreeing
     pair, OR over every voted bit's detector (emission order) *)
  if Voter.has_detection spec.voter then
    List.iter2
      (fun port dets ->
        match List.rev !dets with
        | [] -> ()
        | ids ->
            Netlist.set_comp dst "detect";
            let root = Voter.or_tree dst ~name:port ids in
            let o =
              Netlist.add_cell dst ~name:port Netlist.Output ~fanins:[| root |]
            in
            Netlist.add_output_port dst port [| o |])
      Voter.detect_ports
      [ det_ab; det_bc; det_ac ];
  dst
