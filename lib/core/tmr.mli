(** Triple Modular Redundancy transformation — the paper's subject.

    [triplicate] builds, from a flat design, the TMR version the paper's
    fig. 1-3 describe:

    - every cell is copied into three redundancy domains (0, 1, 2), each
      domain with its own input pads (no single point of failure at the
      inputs);
    - at every {e barrier} — a cell selected by the partition spec — the
      three copies are voted by {e three} majority voters (one per domain,
      each a single LUT after mapping), and each domain's downstream logic
      reads its own voter: this is the paper's "logic partition by voters"
      (fig. 3) and its TMR register with voters and refresh (fig. 2);
    - every output port converges through one final majority voter to a
      single off-chip signal (fig. 1's output logic block).

    More barriers means shorter distance between voter walls (better
    containment of routing upsets) but more inter-domain nets (more places
    where a routing upset can connect two domains) — the trade-off the
    paper quantifies. *)

type spec = {
  barrier : Tmr_netlist.Netlist.t -> int -> bool;
      (** vote the output of this (non-register) cell *)
  vote_registers : bool;
      (** insert voter triples after every flip-flop (fig. 2); when false
          the registers are merely triplicated — the paper's TMR_p3_nv *)
  voter : Voter.variant;
      (** voter microarchitecture instantiated at every barrier, register
          and output voter.  {!Voter.Detecting} additionally exports the
          [tmr_err_ab]/[tmr_err_bc]/[tmr_err_ac] single-bit output ports:
          one pairwise-disagreement OR over every voted bit. *)
}

val no_barriers : spec
(** Triplication with final output voters only and unvoted registers
    (plain {!Voter.Majority} voters). *)

val triplicate : Tmr_netlist.Netlist.t -> spec -> Tmr_netlist.Netlist.t
(** The input must be a flat (untriplicated) design: every cell with
    domain [-1].  The result passes {!Tmr_netlist.Check.run} and computes
    the same function as the input when the three input-port copies are
    driven identically. *)

val redundant_port : string -> int -> string
(** [redundant_port p d] is the name of domain [d]'s copy of input port
    [p] in the triplicated netlist. *)

val domains : int
(** 3. *)
