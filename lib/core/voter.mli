(** Pluggable voter library.

    The paper treats the voter as an opaque majority gate; this module
    makes the voter microarchitecture a design axis (Balasubramanian &
    Prasad's fault-tolerance-improved voter; a self-checking voter with
    pairwise disagreement outputs).  {!Tmr.triplicate} instantiates the
    selected variant at every barrier, register and output voter; the
    {!Detecting} variant additionally exports three single-bit error
    ports ([tmr_err_ab]/[tmr_err_bc]/[tmr_err_ac]) that fault campaigns
    observe as in-circuit detection telemetry. *)

type variant =
  | Majority  (** plain 3-input majority — the paper's voter *)
  | Improved
      (** [v = ab + (a+b)c] as four 2-input gates (Balasubramanian &
          Prasad): deeper but with no internal fanout-of-two node *)
  | Detecting
      (** majority vote plus pairwise A/B, B/C, A/C disagreement
          detectors aggregated into the [tmr_err_*] output ports *)

val all : variant list
val name : variant -> string
val of_name : string -> variant option
val description : variant -> string

val has_detection : variant -> bool

val detect_ports : string list
(** [["tmr_err_ab"; "tmr_err_bc"; "tmr_err_ac"]] — the single-bit error
    ports a {!Detecting} design exports, in emission order. *)

val is_detect_port : string -> bool

type cost = {
  vote_cells : int;  (** gate cells per voted bit per redundancy domain *)
  detect_cells : int;
      (** disagreement cells per voted bit, shared across the domains *)
  levels : int;  (** combinational depth of the vote function *)
  delay_ns : float;  (** [levels] post-map LUT delays *)
}

val cost : variant -> cost
(** Area/delay model per voted bit, derived from the {!Tmr_pnr.Timing}
    LUT delay.  The full flow needs no separate model — the variants emit
    real cells, so techmap and timing see the true structure — but the
    model lets reports compare variants without re-implementing. *)

(** {1 Emission} — used by {!Tmr.triplicate}. *)

val emit_vote :
  variant ->
  Tmr_netlist.Netlist.t ->
  name:string ->
  ?domain:int ->
  a:Tmr_netlist.Netlist.id ->
  b:Tmr_netlist.Netlist.id ->
  c:Tmr_netlist.Netlist.id ->
  unit ->
  Tmr_netlist.Netlist.id
(** Emit one voted bit over the copy triple [(a, b, c)]; returns the cell
    downstream logic reads.  Every emitted cell carries the voter flag. *)

val emit_detect :
  Tmr_netlist.Netlist.t ->
  name:string ->
  a:Tmr_netlist.Netlist.id ->
  b:Tmr_netlist.Netlist.id ->
  c:Tmr_netlist.Netlist.id ->
  Tmr_netlist.Netlist.id * Tmr_netlist.Netlist.id * Tmr_netlist.Netlist.id
(** Pairwise disagreement XORs [(ab, bc, ac)] for one voted bit, shared
    across the three domain voters. *)

val or_tree :
  Tmr_netlist.Netlist.t ->
  name:string ->
  Tmr_netlist.Netlist.id list ->
  Tmr_netlist.Netlist.id
(** Balanced OR reduction of the per-bit detectors into one error net.
    Raises [Invalid_argument] on an empty list. *)
