module Netlist = Tmr_netlist.Netlist

type strategy =
  | Unprotected
  | Max_partition
  | Medium_partition
  | Min_partition
  | Min_partition_nv
  | Custom of string * Tmr.spec

let name = function
  | Unprotected -> "standard"
  | Max_partition -> "tmr_p1"
  | Medium_partition -> "tmr_p2"
  | Min_partition -> "tmr_p3"
  | Min_partition_nv -> "tmr_p3_nv"
  | Custom (n, _) -> n

let paper_name = function
  | Unprotected -> "Standard Filter"
  | Max_partition -> "TMR_p1"
  | Medium_partition -> "TMR_p2"
  | Min_partition -> "TMR_p3"
  | Min_partition_nv -> "TMR_p3_nv"
  | Custom (n, _) -> n

let all_paper_designs =
  [ Unprotected; Max_partition; Medium_partition; Min_partition;
    Min_partition_nv ]

let component_group comp = comp

let block_group comp =
  match String.index_opt comp '/' with
  | Some i -> String.sub comp 0 i
  | None -> comp

let boundary_cells ~group_of nl =
  let n = Netlist.num_cells nl in
  let result = Array.make n false in
  let fanouts = Netlist.compute_fanouts nl in
  Netlist.iter_cells nl (fun c ->
      match Netlist.kind nl c with
      | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Ff _ -> ()
      | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2
      | Netlist.Mux2 | Netlist.Maj3 | Netlist.Lut _ ->
          let g = group_of (Netlist.comp nl c) in
          if
            List.exists
              (fun r -> group_of (Netlist.comp nl r) <> g)
              fanouts.(c)
          then result.(c) <- true);
  result

let spec_for ?voter nl strategy =
  let v = Option.value ~default:Voter.Majority voter in
  match strategy with
  | Unprotected -> None
  | Max_partition ->
      let b = boundary_cells ~group_of:component_group nl in
      Some { Tmr.barrier = (fun _ c -> b.(c)); vote_registers = true; voter = v }
  | Medium_partition ->
      let b = boundary_cells ~group_of:block_group nl in
      Some { Tmr.barrier = (fun _ c -> b.(c)); vote_registers = true; voter = v }
  | Min_partition ->
      Some { Tmr.barrier = (fun _ _ -> false); vote_registers = true; voter = v }
  | Min_partition_nv -> Some { Tmr.no_barriers with Tmr.voter = v }
  | Custom (_, spec) -> (
      (* a Custom spec owns its voter choice unless the caller overrides *)
      match voter with
      | Some v -> Some { spec with Tmr.voter = v }
      | None -> Some spec)

let protect ?voter nl strategy =
  match spec_for ?voter nl strategy with
  | None -> nl
  | Some spec -> Tmr.triplicate nl spec
