(** Voter-partition strategies — the four TMR organisations the paper
    compares (fig. 4), expressed over the component labels the circuit
    builder attached to its cells.

    Components are named hierarchically with ["/"] (e.g. ["tap03/mult"],
    ["tap03/add"], ["tap03/reg"]).  A {e barrier} is placed on the boundary
    cells of a logic group: cells read by a cell of a different group (or
    by an output).  The strategy decides what a "group" is:

    - {!Max_partition} (TMR_p1): every component is a group — voters after
      every multiplier and every adder, plus voted registers;
    - {!Medium_partition} (TMR_p2): the first path segment is the group —
      voters after each tap block, plus voted registers;
    - {!Min_partition} (TMR_p3): no combinational barriers — voted
      registers and the final output voters only;
    - {!Min_partition_nv} (TMR_p3_nv): triplication with final output
      voters only; registers unvoted. *)

type strategy =
  | Unprotected
  | Max_partition
  | Medium_partition
  | Min_partition
  | Min_partition_nv
  | Custom of string * Tmr.spec  (** name, spec *)

val name : strategy -> string
(** Short label used in reports: ["standard"], ["tmr_p1"], ... *)

val paper_name : strategy -> string
(** The paper's label: ["Standard Filter"], ["TMR_p1"], ... *)

val all_paper_designs : strategy list
(** The five versions of Table 2/3/4, in paper order. *)

val boundary_cells :
  group_of:(string -> string) ->
  Tmr_netlist.Netlist.t ->
  bool array
(** [boundary_cells ~group_of nl].(c) is true when combinational cell [c]
    is read by logic of a different group.  [group_of] maps a component
    label to its group. *)

val component_group : string -> string
(** Identity on the component label (maximum partition granularity). *)

val block_group : string -> string
(** First ["/"]-separated segment (tap-block granularity). *)

val spec_for :
  ?voter:Voter.variant -> Tmr_netlist.Netlist.t -> strategy -> Tmr.spec option
(** [None] for {!Unprotected}.  [voter] (default {!Voter.Majority})
    selects the voter microarchitecture for the built-in strategies; a
    {!Custom} spec keeps its own voter unless explicitly overridden. *)

val protect :
  ?voter:Voter.variant ->
  Tmr_netlist.Netlist.t ->
  strategy ->
  Tmr_netlist.Netlist.t
(** Apply the strategy ({!Unprotected} returns the input unchanged). *)
