module Netlist = Tmr_netlist.Netlist

type variant =
  | Majority
  | Improved
  | Detecting

let all = [ Majority; Improved; Detecting ]

let name = function
  | Majority -> "majority"
  | Improved -> "improved"
  | Detecting -> "detecting"

let of_name = function
  | "majority" -> Some Majority
  | "improved" -> Some Improved
  | "detecting" -> Some Detecting
  | _ -> None

let description = function
  | Majority -> "plain 3-input majority gate (one LUT per voted bit)"
  | Improved ->
      "fault-tolerance-improved majority: v = ab + (a+b)c as four 2-input \
       gates, no internal node feeds two gate inputs of the same path"
  | Detecting ->
      "majority vote plus pairwise A/B, B/C, A/C disagreement detectors \
       aggregated into tmr_err_* outputs"

let has_detection = function Detecting -> true | Majority | Improved -> false

let detect_ports = [ "tmr_err_ab"; "tmr_err_bc"; "tmr_err_ac" ]

let is_detect_port p = List.mem p detect_ports

type cost = {
  vote_cells : int;  (** gate cells per voted bit per redundancy domain *)
  detect_cells : int;
      (** pairwise-disagreement cells per voted bit, shared across the
          three domain voters (the OR aggregation tree is amortised) *)
  levels : int;  (** combinational depth of the vote function, in gates *)
  delay_ns : float;  (** [levels] post-map LUT delays *)
}

let cost variant =
  let lut = Tmr_pnr.Timing.lut_delay in
  match variant with
  | Majority -> { vote_cells = 1; detect_cells = 0; levels = 1; delay_ns = lut }
  | Improved ->
      (* ab | (a|b)&c: the ab and (a|b) gates share level 1 *)
      { vote_cells = 4; detect_cells = 0; levels = 3; delay_ns = 3.0 *. lut }
  | Detecting ->
      (* the vote path is a plain majority; detection rides beside it *)
      { vote_cells = 1; detect_cells = 3; levels = 1; delay_ns = lut }

(* Emit one voted bit.  All cells carry the [voter] flag: the checker and
   the forensic attribution treat the whole macro as voter logic, and the
   flag exempts the per-domain gates from the TMR isolation lint (a voter
   legitimately reads all three domains). *)
let emit_vote variant nl ~name ?domain ~a ~b ~c () =
  let cell kind fanins nm =
    match domain with
    | Some d -> Netlist.add_cell nl ~name:nm ~domain:d ~voter:true kind ~fanins
    | None -> Netlist.add_cell nl ~name:nm ~voter:true kind ~fanins
  in
  match variant with
  | Majority | Detecting -> cell Netlist.Maj3 [| a; b; c |] name
  | Improved ->
      let ab = cell Netlist.And2 [| a; b |] (name ^ "/ab") in
      let a_or_b = cell Netlist.Or2 [| a; b |] (name ^ "/a+b") in
      let sel_c = cell Netlist.And2 [| a_or_b; c |] (name ^ "/(a+b)c") in
      cell Netlist.Or2 [| ab; sel_c |] name

(* Pairwise disagreement detectors for one voted bit.  Emitted once per
   voted source cell (not per domain): all three domain voters read the
   same copy triple, so the XORs are shared.  Domain stays -1 — the
   detectors feed the global error aggregation, like the output voters. *)
let emit_detect nl ~name ~a ~b ~c =
  let x nm p q =
    Netlist.add_cell nl ~name:nm ~voter:true Netlist.Xor2 ~fanins:[| p; q |]
  in
  (x (name ^ "/err_ab") a b, x (name ^ "/err_bc") b c, x (name ^ "/err_ac") a c)

(* Balanced OR reduction: logarithmic depth, deterministic shape for a
   fixed emission order. *)
let or_tree nl ~name ids =
  let rec reduce level = function
    | [] -> invalid_arg "Voter.or_tree: empty"
    | [ x ] -> x
    | xs ->
        let rec pair i acc = function
          | a :: b :: tl ->
              let o =
                Netlist.add_cell nl
                  ~name:(Printf.sprintf "%s/or%d_%d" name level i)
                  Netlist.Or2 ~fanins:[| a; b |]
              in
              pair (i + 1) (o :: acc) tl
          | [ a ] -> pair i (a :: acc) []
          | [] -> List.rev acc
        in
        reduce (level + 1) (pair 0 [] xs)
  in
  reduce 0 ids
