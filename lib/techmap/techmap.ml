module Logic = Tmr_logic.Logic
module Netlist = Tmr_netlist.Netlist
module Levelize = Tmr_netlist.Levelize

type result = {
  mapped : Netlist.t;
  cell_map : int array;
}

let is_gate nl c =
  match Netlist.kind nl c with
  | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2 | Netlist.Mux2
  | Netlist.Maj3 | Netlist.Lut _ ->
      true
  | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Ff _ -> false

let is_const nl c =
  match Netlist.kind nl c with
  | Netlist.Const _ -> true
  | _ -> false

(* A gate can be absorbed into the (unique) cone reading it when it is not a
   root itself.  Roots: voters, gates with fanout <> 1, and gates whose only
   reader is not a same-domain non-voter gate. *)
let compute_roots nl fanouts =
  let n = Netlist.num_cells nl in
  let root = Array.make n false in
  Netlist.iter_cells nl (fun c ->
      if is_gate nl c then
        let absorbable =
          (not (Netlist.is_voter nl c))
          &&
          match fanouts.(c) with
          | [ reader ] ->
              is_gate nl reader
              && (not (Netlist.is_voter nl reader))
              && Netlist.domain nl reader = Netlist.domain nl c
          | [] | _ :: _ :: _ -> false
        in
        root.(c) <- not absorbable);
  root

(* Expand the cone of [root_cell]: returns the support (leaf ids, in
   deterministic order).  Constants are always folded; absorbable gates are
   folded while the support stays within 4 leaves. *)
let expand_cone nl fanouts roots root_cell =
  ignore fanouts;
  let support = ref (Array.to_list (Netlist.fanins nl root_cell)) in
  (* dedupe while preserving order *)
  let dedupe l =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun c ->
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.add seen c ();
          true
        end)
      l
  in
  support := dedupe !support;
  let changed = ref true in
  while !changed do
    changed := false;
    let try_expand c =
      if is_const nl c then Some [||]
      else if is_gate nl c && not roots.(c) then Some (Netlist.fanins nl c)
      else None
    in
    let rec scan before = function
      | [] -> ()
      | c :: after -> (
          match try_expand c with
          | Some fanins ->
              let candidate =
                dedupe (List.rev_append before (Array.to_list fanins @ after))
              in
              if List.length candidate <= 4 || is_const nl c then begin
                support := candidate;
                changed := true
              end
              else scan (c :: before) after
          | None -> scan (c :: before) after)
    in
    scan [] !support
  done;
  !support

(* Evaluate the boolean function of [root_cell] given values for its support
   leaves, by recursive memoized evaluation within the cone. *)
let eval_cone nl support_values root_cell =
  let memo = Hashtbl.create 16 in
  let rec value c =
    match Hashtbl.find_opt support_values c with
    | Some v -> v
    | None -> (
        match Hashtbl.find_opt memo c with
        | Some v -> v
        | None ->
            let k = Netlist.kind nl c in
            let v =
              match k with
              | Netlist.Const cv -> cv
              | Netlist.Input | Netlist.Ff _ ->
                  invalid_arg "Techmap.eval_cone: leaf missing from support"
              | Netlist.Output | Netlist.Not | Netlist.And2 | Netlist.Or2
              | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3 | Netlist.Lut _ ->
                  let vs = Array.map value (Netlist.fanins nl c) in
                  Netlist.eval_kind k vs
            in
            Hashtbl.add memo c v;
            v)
  in
  value root_cell

let cone_truth_table nl support root_cell =
  let arity = List.length support in
  let table = ref 0 in
  let support = Array.of_list support in
  for idx = 0 to (1 lsl arity) - 1 do
    let support_values = Hashtbl.create 8 in
    Array.iteri
      (fun i leaf ->
        Hashtbl.replace support_values leaf
          (Logic.of_bool ((idx lsr i) land 1 = 1)))
      support;
    match eval_cone nl support_values root_cell with
    | Logic.One -> table := !table lor (1 lsl idx)
    | Logic.Zero -> ()
    | Logic.X -> invalid_arg "Techmap: X constant in mapped cone"
  done;
  !table

let run nl =
  let n = Netlist.num_cells nl in
  let fanouts = Netlist.compute_fanouts nl in
  let roots = compute_roots nl fanouts in
  let lev = Levelize.run_exn nl in
  let mapped = Netlist.create () in
  let cell_map = Array.make n (-1) in
  let add_like c ?voter kind ~fanins =
    Netlist.with_comp mapped (Netlist.comp nl c) (fun () ->
        Netlist.add_cell mapped ~name:(Netlist.name nl c)
          ~domain:(Netlist.domain nl c)
          ?voter kind ~fanins)
  in
  (* Pass 1: inputs, constants and flip-flops (flip-flops get a placeholder
     fanin fixed up after their drivers exist). *)
  let placeholder = ref (-1) in
  let get_placeholder () =
    if !placeholder < 0 then
      placeholder :=
        Netlist.add_cell mapped (Netlist.Const Logic.Zero) ~fanins:[||];
    !placeholder
  in
  Netlist.iter_cells nl (fun c ->
      match Netlist.kind nl c with
      | Netlist.Input -> cell_map.(c) <- add_like c Netlist.Input ~fanins:[||]
      | Netlist.Const v ->
          cell_map.(c) <- add_like c (Netlist.Const v) ~fanins:[||]
      | Netlist.Ff init ->
          cell_map.(c) <-
            add_like c (Netlist.Ff init) ~fanins:[| get_placeholder () |]
      | Netlist.Output | Netlist.Not | Netlist.And2 | Netlist.Or2
      | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3 | Netlist.Lut _ ->
          ());
  (* Pass 2: cone roots, in topological order so leaves are mapped first.
     A support leaf can itself be an unmapped non-root gate when the
     4-leaf limit kept it out of its reader's cone (deep fanout-1 chains,
     e.g. a wide OR reduction); such a leaf becomes a cone of its own,
     mapped depth-first before the cell that reads it. *)
  let rec map_cone c =
    if cell_map.(c) < 0 then begin
      let support = expand_cone nl fanouts roots c in
      match support with
      | [] ->
          (* Constant cone. *)
          let v = eval_cone nl (Hashtbl.create 1) c in
          cell_map.(c) <- add_like c (Netlist.Const v) ~fanins:[||]
      | _ :: _ ->
          let table = cone_truth_table nl support c in
          let arity = List.length support in
          let fanins =
            Array.of_list
              (List.map
                 (fun leaf ->
                   map_cone leaf;
                   let m = cell_map.(leaf) in
                   if m < 0 then
                     invalid_arg "Techmap: support leaf not yet mapped";
                   m)
                 support)
          in
          cell_map.(c) <-
            add_like c
              ~voter:(Netlist.is_voter nl c)
              (Netlist.Lut { arity; table })
              ~fanins
    end
  in
  Array.iter
    (fun c -> if is_gate nl c && roots.(c) then map_cone c)
    lev.Levelize.order;
  (* Pass 3: outputs and flip-flop D fix-ups. *)
  Netlist.iter_cells nl (fun c ->
      match Netlist.kind nl c with
      | Netlist.Output ->
          let src = (Netlist.fanins nl c).(0) in
          let m = cell_map.(src) in
          if m < 0 then invalid_arg "Techmap: output driver unmapped";
          cell_map.(c) <- add_like c Netlist.Output ~fanins:[| m |]
      | Netlist.Ff _ ->
          let d = (Netlist.fanins nl c).(0) in
          let m = cell_map.(d) in
          if m < 0 then invalid_arg "Techmap: flip-flop driver unmapped";
          Netlist.set_fanin mapped cell_map.(c) 0 m
      | Netlist.Input | Netlist.Const _ | Netlist.Not | Netlist.And2
      | Netlist.Or2 | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3
      | Netlist.Lut _ ->
          ());
  (* Ports. *)
  List.iter
    (fun (port_name, bits) ->
      Netlist.add_input_port mapped port_name
        (Array.map (fun c -> cell_map.(c)) bits))
    (Netlist.input_ports nl);
  List.iter
    (fun (port_name, bits) ->
      Netlist.add_output_port mapped port_name
        (Array.map (fun c -> cell_map.(c)) bits))
    (Netlist.output_ports nl);
  { mapped; cell_map }

let check_only_mapped_kinds nl =
  Netlist.fold_cells nl ~init:true ~f:(fun acc c ->
      acc
      &&
      match Netlist.kind nl c with
      | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Lut _
      | Netlist.Ff _ ->
          true
      | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2
      | Netlist.Mux2 | Netlist.Maj3 ->
          false)
