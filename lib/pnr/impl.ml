module Netlist = Tmr_netlist.Netlist
module Device = Tmr_arch.Device
module Arch = Tmr_arch.Arch

type t = {
  source : Netlist.t;
  mapped : Netlist.t;
  dev : Device.t;
  db : Tmr_arch.Bitdb.t;
  pack : Pack.t;
  place : Place.t;
  route : Route.result;
  bitgen : Bitgen.t;
  timing : Timing.report;
  seed : int;
}

(* Per-CAD-phase wall time: one histogram per phase (so repeated
   implementations accumulate a distribution) plus a trace span each, all
   under an enclosing "implement" span. *)
let m_phase =
  List.map
    (fun p -> (p, Tmr_obs.Metrics.histogram ("impl.phase_ns." ^ p)))
    [ "techmap"; "pack"; "place"; "route"; "bitgen"; "timing" ]

let phase name f =
  let h = List.assoc name m_phase in
  Tmr_obs.Trace.with_span name (fun () ->
      let t0 = Tmr_obs.Clock.now_ns () in
      let r = f () in
      Tmr_obs.Metrics.observe h (Tmr_obs.Clock.now_ns () - t0);
      r)

let implement ?(seed = 1) ?moves_per_site ?floorplan ?max_route_iters dev db nl =
  Tmr_obs.Trace.with_span ~args:[ ("seed", string_of_int seed) ] "implement"
  @@ fun () ->
  match Tmr_netlist.Check.run nl with
  | Error es -> Error ("design check failed: " ^ String.concat "; " es)
  | Ok () ->
      let { Tmr_techmap.Techmap.mapped; _ } =
        phase "techmap" (fun () -> Tmr_techmap.Techmap.run nl)
      in
      (match Tmr_netlist.Check.run mapped with
      | Error es -> Error ("mapped check failed: " ^ String.concat "; " es)
      | Ok () -> (
          let pack = phase "pack" (fun () -> Pack.run mapped) in
          match
            phase "place" (fun () ->
                Place.run ~seed ?moves_per_site ?floorplan dev pack mapped)
          with
          | exception Failure msg -> Error msg
          | place -> (
              match
                phase "route" (fun () ->
                    Route.run ?max_iters:max_route_iters dev pack place)
              with
              | Error msg -> Error ("route: " ^ msg)
              | Ok route ->
                  let bitgen =
                    phase "bitgen" (fun () ->
                        Bitgen.run dev db pack place route mapped)
                  in
                  let timing =
                    phase "timing" (fun () ->
                        Timing.analyze dev pack place route mapped)
                  in
                  Ok
                    {
                      source = nl;
                      mapped;
                      dev;
                      db;
                      pack;
                      place;
                      route;
                      bitgen;
                      timing;
                      seed;
                    })))

let implement_exn ?seed ?moves_per_site ?floorplan ?max_route_iters dev db nl =
  match implement ?seed ?moves_per_site ?floorplan ?max_route_iters dev db nl with
  | Ok t -> t
  | Error msg -> failwith ("Impl.implement: " ^ msg)

let port_pad_wire t find_port port bit =
  let bits = find_port t.mapped port in
  if bit < 0 || bit >= Array.length bits then
    invalid_arg (Printf.sprintf "Impl: port %S has no bit %d" port bit);
  let cell = bits.(bit) in
  let pad = t.place.Place.pad_of_cell.(cell) in
  if pad < 0 then invalid_arg (Printf.sprintf "Impl: port %S bit %d unplaced" port bit);
  t.dev.Device.pad_wire.(pad)

let input_pad_wire t port bit = port_pad_wire t Netlist.find_input_port port bit
let output_pad_wire t port bit = port_pad_wire t Netlist.find_output_port port bit

let used_slices t =
  let p = t.dev.Device.params in
  let luts_per_slice = p.Arch.luts_per_slice in
  let seen = Hashtbl.create 512 in
  Array.iter
    (fun bel ->
      let slice_of_bel = bel / luts_per_slice in
      Hashtbl.replace seen slice_of_bel ())
    t.place.Place.site_bel;
  Hashtbl.length seen

let used_luts t = Array.length t.pack.Pack.sites

let used_ffs t =
  Array.fold_left
    (fun acc site -> match site.Pack.ff with Some _ -> acc + 1 | None -> acc)
    0 t.pack.Pack.sites
