(** Static timing estimate over the placed-and-routed design.

    Delay model: LUT 0.6 ns, flip-flop clock-to-out 0.5 ns and setup
    0.4 ns, pad 0.8 ns, net delay 0.3 ns + 0.12 ns per PIP + 0.05 ns per
    tile of wire span (taken from the router's per-sink statistics).  The
    paper reports "estimated performance" from the vendor tools; what must
    be preserved is the ordering between the five filter versions. *)

val lut_delay : float
(** One LUT's propagation delay (ns) — exported so voter-variant cost
    models ([Tmr_core.Voter.cost]) stay consistent with the timing
    analysis they predict. *)

type report = {
  critical_ns : float;
  mhz : float;
  logic_levels : int;  (** LUT levels on the critical path *)
}

val analyze :
  Tmr_arch.Device.t ->
  Pack.t ->
  Place.t ->
  Route.result ->
  Tmr_netlist.Netlist.t ->
  report
