(* Offline aggregation of Trace's Chrome-trace JSONL.  All times here
   are microseconds (the trace unit); nesting is reconstructed per tid
   by interval containment, which is exact for the single-writer
   per-domain spans Trace emits. *)

(* A lane is (pid, tid): in a merged fleet trace each forked worker
   contributes its own pid, and domain ids collide across processes, so
   nesting must be reconstructed per process AND per domain. *)
type span = {
  s_name : string;
  s_ts : float;
  s_dur : float;
  s_pid : int;
  s_tid : int;
}

type agg = {
  mutable a_count : int;
  mutable a_total : float;
  mutable a_self : float;
  mutable a_min : float;
  mutable a_max : float;
}

type t = {
  nspans : int;
  t0 : float;  (* earliest span start *)
  t1 : float;  (* latest span end *)
  by_name : (string * agg) list;  (* sorted by self time, descending *)
  stacks : (string * float) list;  (* collapsed path -> self µs, sorted *)
  top_level : ((int * int) * (float * float) list) list;
      (* (pid, tid) -> busy intervals *)
}

(* --- parsing ---------------------------------------------------------- *)

let parse_span line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> (
      match Json.(member "ph" j |> Option.map (fun v -> str v)) with
      | Some (Some "X") -> (
          let name = Option.bind (Json.member "name" j) Json.str in
          let ts = Option.bind (Json.member "ts" j) Json.num in
          let dur = Option.bind (Json.member "dur" j) Json.num in
          let tid = Option.bind (Json.member "tid" j) Json.int in
          let pid =
            (* tolerate pid-less traces from other emitters *)
            Option.value ~default:0 (Option.bind (Json.member "pid" j) Json.int)
          in
          match (name, ts, dur, tid) with
          | Some s_name, Some s_ts, Some s_dur, Some s_tid ->
              Ok (Some { s_name; s_ts; s_dur; s_pid = pid; s_tid })
          | _ -> Error "profile: complete event missing name/ts/dur/tid")
      | _ -> Ok None (* not a complete-span event: ignore *))

(* --- nesting reconstruction ------------------------------------------- *)

(* Timestamps carry 3 decimals (nanosecond resolution in µs); the
   epsilon absorbs that rounding when deciding containment. *)
let eps = 0.0005

type frame = {
  f_name : string;
  f_end : float;
  f_dur : float;
  f_path : string;
  mutable f_child : float;  (* direct children's total duration *)
}

let of_lines lines =
  let exception Bad of string in
  try
    let spans =
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else
            match parse_span line with
            | Ok s -> s
            | Error e -> raise (Bad e))
        lines
    in
    if spans = [] then Error "profile: no complete-span events in trace"
    else begin
      let names : (string, agg) Hashtbl.t = Hashtbl.create 32 in
      let stacks : (string, float ref) Hashtbl.t = Hashtbl.create 64 in
      let tops : (int * int, (float * float) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let agg_of name =
        match Hashtbl.find_opt names name with
        | Some a -> a
        | None ->
            let a =
              { a_count = 0; a_total = 0.; a_self = 0.; a_min = infinity; a_max = 0. }
            in
            Hashtbl.add names name a;
            a
      in
      let finalize f =
        let a = agg_of f.f_name in
        let self = Float.max 0. (f.f_dur -. f.f_child) in
        a.a_self <- a.a_self +. self;
        let r =
          match Hashtbl.find_opt stacks f.f_path with
          | Some r -> r
          | None ->
              let r = ref 0. in
              Hashtbl.add stacks f.f_path r;
              r
        in
        r := !r +. self
      in
      let by_lane : (int * int, span list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let lane = (s.s_pid, s.s_tid) in
          match Hashtbl.find_opt by_lane lane with
          | Some l -> l := s :: !l
          | None -> Hashtbl.add by_lane lane (ref [ s ]))
        spans;
      Hashtbl.iter
        (fun lane l ->
          let arr = Array.of_list !l in
          (* start ascending; on equal starts the longer span is the
             parent and must be visited first *)
          Array.sort
            (fun a b ->
              match Float.compare a.s_ts b.s_ts with
              | 0 -> Float.compare b.s_dur a.s_dur
              | c -> c)
            arr;
          let stack = ref [] in
          let top_intervals = ref [] in
          Array.iter
            (fun s ->
              let rec unwind () =
                match !stack with
                | f :: rest when s.s_ts >= f.f_end -. eps ->
                    finalize f;
                    stack := rest;
                    unwind ()
                | _ -> ()
              in
              unwind ();
              let a = agg_of s.s_name in
              a.a_count <- a.a_count + 1;
              a.a_total <- a.a_total +. s.s_dur;
              a.a_min <- Float.min a.a_min s.s_dur;
              a.a_max <- Float.max a.a_max s.s_dur;
              let path =
                match !stack with
                | [] ->
                    top_intervals := (s.s_ts, s.s_ts +. s.s_dur) :: !top_intervals;
                    s.s_name
                | parent :: _ ->
                    parent.f_child <- parent.f_child +. s.s_dur;
                    parent.f_path ^ ";" ^ s.s_name
              in
              stack :=
                {
                  f_name = s.s_name;
                  f_end = s.s_ts +. s.s_dur;
                  f_dur = s.s_dur;
                  f_path = path;
                  f_child = 0.;
                }
                :: !stack)
            arr;
          List.iter finalize !stack;
          Hashtbl.add tops lane (ref (List.rev !top_intervals)))
        by_lane;
      let t0 = List.fold_left (fun acc s -> Float.min acc s.s_ts) infinity spans in
      let t1 =
        List.fold_left (fun acc s -> Float.max acc (s.s_ts +. s.s_dur)) 0. spans
      in
      let by_name =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) names []
        |> List.sort (fun (_, a) (_, b) -> Float.compare b.a_self a.a_self)
      in
      let stacks =
        Hashtbl.fold (fun k v acc -> (k, !v) :: acc) stacks []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let top_level =
        Hashtbl.fold (fun k v acc -> (k, !v) :: acc) tops []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Ok { nspans = List.length spans; t0; t1; by_name; stacks; top_level }
    end
  with Bad e -> Error e

let load_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      of_lines (List.rev !lines)

(* --- rendering -------------------------------------------------------- *)

let dur_pp us =
  if us >= 1e6 then Printf.sprintf "%.2fs" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.2fms" (us /. 1e3)
  else Printf.sprintf "%.1fus" us

let span_table t =
  let b = Buffer.create 1024 in
  let total_self = List.fold_left (fun acc (_, a) -> acc +. a.a_self) 0. t.by_name in
  Buffer.add_string b
    (Printf.sprintf "%-18s %8s %10s %10s %6s %10s %10s %10s\n" "span" "count"
       "total" "self" "self%" "mean" "min" "max");
  List.iter
    (fun (name, a) ->
      let pct = if total_self > 0. then 100. *. a.a_self /. total_self else 0. in
      Buffer.add_string b
        (Printf.sprintf "%-18s %8d %10s %10s %5.1f%% %10s %10s %10s\n" name
           a.a_count (dur_pp a.a_total) (dur_pp a.a_self) pct
           (dur_pp (a.a_total /. float_of_int (max 1 a.a_count)))
           (dur_pp a.a_min) (dur_pp a.a_max)))
    t.by_name;
  Buffer.contents b

let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let npids t =
  List.map (fun ((p, _), _) -> p) t.top_level
  |> List.sort_uniq compare |> List.length

let timeline ?(width = 60) t =
  let b = Buffer.create 1024 in
  let span = Float.max eps (t.t1 -. t.t0) in
  let bucket_us = span /. float_of_int width in
  let fleet = npids t > 1 in
  Buffer.add_string b
    (Printf.sprintf "per-%s utilization (%d buckets of %s):\n"
       (if fleet then "worker" else "tid")
       width (dur_pp bucket_us));
  List.iter
    (fun ((pid, tid), intervals) ->
      let cover = Array.make width 0. in
      let busy = ref 0. in
      List.iter
        (fun (lo, hi) ->
          busy := !busy +. (hi -. lo);
          let b0 = int_of_float ((lo -. t.t0) /. bucket_us) in
          let b1 = int_of_float ((hi -. t.t0) /. bucket_us) in
          for i = max 0 b0 to min (width - 1) b1 do
            let blo = t.t0 +. (float_of_int i *. bucket_us) in
            let bhi = blo +. bucket_us in
            let o = Float.min hi bhi -. Float.max lo blo in
            if o > 0. then cover.(i) <- cover.(i) +. (o /. bucket_us)
          done)
        intervals;
      let row =
        String.init width (fun i ->
            let f = Float.min 1. cover.(i) in
            shades.(min (Array.length shades - 1) (int_of_float (f *. 10.))))
      in
      let label =
        (* lanes are pid-qualified only when the trace actually spans
           several processes, so single-process output is unchanged *)
        if fleet then Printf.sprintf "  pid %-7d tid %-4d" pid tid
        else Printf.sprintf "  tid %-4d" tid
      in
      Buffer.add_string b
        (Printf.sprintf "%s [%s] %3.0f%%\n" label row (100. *. !busy /. span)))
    t.top_level;
  Buffer.contents b

let collapsed t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, self) ->
      Buffer.add_string b
        (Printf.sprintf "%s %d\n" path (max 1 (int_of_float (Float.round self)))))
    t.stacks;
  Buffer.contents b

let report t =
  let lanes = List.length t.top_level in
  let np = npids t in
  let header =
    if np > 1 then
      Printf.sprintf "%d spans across %d lanes in %d processes, wall-clock %s"
        t.nspans lanes np
        (dur_pp (t.t1 -. t.t0))
    else
      Printf.sprintf "%d spans across %d tids, wall-clock %s" t.nspans lanes
        (dur_pp (t.t1 -. t.t0))
  in
  Printf.sprintf "%s\n\n%s\n%s" header (span_table t) (timeline t)
