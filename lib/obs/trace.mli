(** Span tracing in Chrome trace-event format, one JSON object per line.

    A span is a named interval on the calling domain's timeline.  With no
    sink registered every entry point is a cheap no-op — {!with_span}
    costs one atomic load and does not even read the clock — so
    instrumentation can stay in hot paths permanently.  With a sink
    ({!to_file}), each completed span is emitted as one self-contained
    [ph:"X"] (complete) event line: [ts]/[dur] in microseconds on the
    monotonic clock, [tid] the OCaml domain id, so spans from worker
    domains land on separate tracks and nest correctly per track.

    The output is plain JSONL.  Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev})
    opens it directly; for the legacy [chrome://tracing] viewer wrap it
    into an array first ([jq -s . t.jsonl > t.json]). *)

val to_file : string -> unit
(** Open [path] (truncating) and start emitting spans to it.  Replaces
    any previously registered sink (which is flushed and closed). *)

val close : unit -> unit
(** Flush and close the sink; subsequent spans are no-ops again.
    Safe to call when no sink is registered. *)

val detach : unit -> unit
(** Forget the sink without flushing or closing it — for forked
    children, which share the channel with the parent.  Follow with
    {!to_file} to give the child its own trace file. *)

val emit_raw : string -> unit
(** Write one already-rendered span line verbatim to the sink (no
    newline in [line]).  Used to stitch forked workers' trace files
    into the parent's trace.  No-op when tracing is off. *)

val enabled : unit -> bool
(** True when a sink is registered.  Lets instrumentation skip building
    span arguments entirely when tracing is off. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when tracing is enabled, emits the
    span covering its execution — also when [f] raises.  [args] become
    the event's [args] object (string values). *)

val emit_complete :
  ?args:(string * string) list -> name:string -> start_ns:int -> dur_ns:int ->
  unit -> unit
(** Low-level emission for callers that already measured the interval
    (avoids a closure allocation per event in per-fault loops).  No-op
    when tracing is off.  [start_ns] must come from {!Clock.now_ns}. *)
