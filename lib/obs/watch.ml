type campaign = {
  mutable c_workers : int;
  mutable c_total : int;
  mutable c_completed : int;
  mutable c_wrong : int;
  mutable c_started_ts : int;  (* ts_ns of campaign_started *)
  mutable c_last_ts : int;  (* ts_ns of the latest event seen *)
  mutable c_stopped : bool;
  mutable c_requested : int;
  mutable c_wall_ns : int;
  mutable c_ci : (float * float * float) option;  (* confidence, lo, hi *)
  mutable c_batches : int;
  mutable c_lanes : int;
  mutable c_plan : (int * int * int * int * int * int * int) option;
  mutable c_manifest : string option;
  mutable c_shards_done : int;
  mutable c_shards_pending : int;  (* latest pending count seen *)
}

type worker_state = {
  mutable w_busy : int;
  mutable w_idle : int;
  mutable w_items : int;
}

type t = {
  campaigns : (string, campaign) Hashtbl.t;
  mutable order : string list;  (* reverse arrival order *)
  workers : (int, worker_state) Hashtbl.t;
  mutable last_seq : int;
  mutable gap_total : int;
  mutable nevents : int;
  mutable jobs_queued : int;
  mutable jobs_done : int;
}

let create () =
  {
    campaigns = Hashtbl.create 4;
    order = [];
    workers = Hashtbl.create 8;
    last_seq = -1;
    gap_total = 0;
    nevents = 0;
    jobs_queued = 0;
    jobs_done = 0;
  }

let campaign_of t design =
  match Hashtbl.find_opt t.campaigns design with
  | Some c -> c
  | None ->
      let c =
        {
          c_workers = 0;
          c_total = 0;
          c_completed = 0;
          c_wrong = 0;
          c_started_ts = 0;
          c_last_ts = 0;
          c_stopped = false;
          c_requested = 0;
          c_wall_ns = 0;
          c_ci = None;
          c_batches = 0;
          c_lanes = 0;
          c_plan = None;
          c_manifest = None;
          c_shards_done = 0;
          c_shards_pending = 0;
        }
      in
      Hashtbl.add t.campaigns design c;
      t.order <- design :: t.order;
      c

let worker_of t wid =
  match Hashtbl.find_opt t.workers wid with
  | Some w -> w
  | None ->
      let w = { w_busy = 0; w_idle = 0; w_items = 0 } in
      Hashtbl.add t.workers wid w;
      w

let feed t (p : Events.parsed) =
  t.nevents <- t.nevents + 1;
  if p.Events.p_seq > t.last_seq + 1 && t.last_seq >= -1 then
    t.gap_total <- t.gap_total + (p.Events.p_seq - t.last_seq - 1);
  if p.Events.p_seq > t.last_seq then t.last_seq <- p.Events.p_seq;
  let ts = p.Events.p_ts_ns in
  match p.Events.p_event with
  | Events.Campaign_started { design; faults; workers } ->
      let c = campaign_of t design in
      c.c_total <- faults;
      c.c_requested <- faults;
      c.c_workers <- workers;
      c.c_started_ts <- ts;
      c.c_last_ts <- ts
  | Events.Campaign_progress { design; completed; total; wrong } ->
      let c = campaign_of t design in
      c.c_total <- total;
      (* late progress ticks from chunks in flight at a CI stop may
         read lower than the final count; progress is monotone *)
      if completed > c.c_completed then c.c_completed <- completed;
      if wrong > c.c_wrong then c.c_wrong <- wrong;
      c.c_last_ts <- ts
  | Events.Campaign_ci { design; n = _; wrong = _; confidence; lo; hi } ->
      let c = campaign_of t design in
      c.c_ci <- Some (confidence, lo, hi);
      c.c_last_ts <- ts
  | Events.Campaign_stopped { design; requested; injected; wrong; wall_ns } ->
      let c = campaign_of t design in
      c.c_stopped <- true;
      c.c_requested <- requested;
      (* the final verdict counts are authoritative: a CI-stopped run
         keeps only the triggering prefix, which can be smaller than
         the faults completed by chunks still in flight *)
      c.c_completed <- injected;
      c.c_wrong <- wrong;
      c.c_wall_ns <- wall_ns;
      c.c_last_ts <- ts
  | Events.Batch_dispatched { design; lanes } ->
      let c = campaign_of t design in
      c.c_batches <- c.c_batches + 1;
      c.c_lanes <- c.c_lanes + lanes;
      c.c_last_ts <- ts
  | Events.Worker_heartbeat { worker; busy_ns; idle_ns; items } ->
      let w = worker_of t worker in
      (* heartbeats carry cumulative totals; keep the latest *)
      w.w_busy <- busy_ns;
      w.w_idle <- idle_ns;
      w.w_items <- items
  | Events.Plan_paths { design; silent; patched; rerouted; rebuilt; diffed; converged; batched = _ } ->
      let c = campaign_of t design in
      c.c_plan <- Some (silent, patched, rerouted, rebuilt, diffed, converged, 0);
      c.c_last_ts <- ts
  | Events.Manifest_written { design; path } ->
      let c = campaign_of t design in
      c.c_manifest <- Some path
  | Events.Shard_done { design; shard = _; lo = _; hi = _; wrong = _; pending }
    ->
      let c = campaign_of t design in
      c.c_shards_done <- c.c_shards_done + 1;
      c.c_shards_pending <- pending;
      c.c_last_ts <- ts
  | Events.Job_queued _ -> t.jobs_queued <- t.jobs_queued + 1
  | Events.Job_started _ -> ()
  | Events.Job_done _ -> t.jobs_done <- t.jobs_done + 1

let finished t =
  Hashtbl.length t.campaigns > 0
  && Hashtbl.fold (fun _ c acc -> acc && c.c_stopped) t.campaigns true

let events_seen t = t.nevents
let gaps t = t.gap_total

let ordered t =
  List.rev_map (fun d -> (d, Hashtbl.find t.campaigns d)) t.order

(* --- rendering -------------------------------------------------------- *)

let bar width frac =
  let full = int_of_float (frac *. float_of_int width) in
  let full = max 0 (min width full) in
  String.make full '#' ^ String.make (width - full) '-'

let rate_of c =
  let elapsed_ns =
    if c.c_stopped && c.c_wall_ns > 0 then c.c_wall_ns
    else c.c_last_ts - c.c_started_ts
  in
  if elapsed_ns <= 0 then 0.0
  else float_of_int c.c_completed *. 1e9 /. float_of_int elapsed_ns

let render ?(confidence = 0.95) t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (design, c) ->
      let frac =
        if c.c_total = 0 then 0.0
        else float_of_int c.c_completed /. float_of_int c.c_total
      in
      let rate = rate_of c in
      let status =
        if c.c_stopped then
          if c.c_completed < c.c_requested then "stopped early" else "done"
        else if rate > 0.0 then
          Printf.sprintf "eta %.0fs"
            (float_of_int (c.c_total - c.c_completed) /. rate)
        else "starting"
      in
      let n = c.c_completed and k = c.c_wrong in
      let ci =
        match (c.c_stopped, c.c_ci) with
        | false, Some (_, lo, hi) -> (lo, hi)
        | _ ->
            let i = Stats.wilson ~confidence ~n ~k () in
            (i.Stats.lo, i.Stats.hi)
      in
      let pct = if n = 0 then 0.0 else 100.0 *. float_of_int k /. float_of_int n in
      Buffer.add_string b
        (Printf.sprintf "%-12s [%s] %6d/%-6d %6.1f/s  wrong %d (%.2f%% [%.2f%%, %.2f%%])  %s\n"
           design
           (bar 20 frac)
           c.c_completed c.c_total rate k pct
           (100.0 *. fst ci) (100.0 *. snd ci)
           status);
      (match c.c_plan with
      | Some (silent, patched, rerouted, rebuilt, diffed, converged, _) ->
          Buffer.add_string b
            (Printf.sprintf
               "             paths: silent %d patch %d reroute %d rebuild %d (diffed %d, converged %d)\n"
               silent patched rerouted rebuilt diffed converged)
      | None -> ());
      if c.c_batches > 0 then
        Buffer.add_string b
          (Printf.sprintf "             batches: %d dispatched, avg occupancy %.1f lanes\n"
             c.c_batches
             (float_of_int c.c_lanes /. float_of_int c.c_batches));
      if c.c_shards_done > 0 then
        Buffer.add_string b
          (Printf.sprintf "             shards: %d done, %d pending\n"
             c.c_shards_done c.c_shards_pending);
      match c.c_manifest with
      | Some p ->
          Buffer.add_string b (Printf.sprintf "             manifest: %s\n" p)
      | None -> ())
    (ordered t);
  if Hashtbl.length t.workers > 0 then begin
    let ws =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.workers []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Buffer.add_string b "workers:";
    List.iter
      (fun (wid, w) ->
        let tot = w.w_busy + w.w_idle in
        let pct =
          if tot = 0 then 0.0
          else 100.0 *. float_of_int w.w_busy /. float_of_int tot
        in
        Buffer.add_string b
          (Printf.sprintf "  w%d %.0f%% busy (%d items)" wid pct w.w_items))
      ws;
    Buffer.add_char b '\n'
  end;
  if t.jobs_queued > 0 then
    Buffer.add_string b
      (Printf.sprintf "jobs: %d queued, %d done\n" t.jobs_queued t.jobs_done);
  Buffer.add_string b
    (Printf.sprintf "stream: %d events, last seq %d, %d dropped\n" t.nevents
       t.last_seq t.gap_total);
  Buffer.contents b

let summary_json ?(confidence = 0.95) t =
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i (design, c) ->
      if i > 0 then Buffer.add_char b ',';
      let n = c.c_completed and k = c.c_wrong in
      let i' = Stats.wilson ~confidence ~n ~k () in
      let pct =
        if n = 0 then 0.0 else 100.0 *. float_of_int k /. float_of_int n
      in
      (* field names and formats mirror Campaign.summary_json so the
         watch-side summary is comparable field-by-field *)
      Buffer.add_string b
        (Printf.sprintf
           "{\"design\":\"%s\",\"requested\":%d,\"injected\":%d,\"wrong\":%d,\"wrong_percent\":%.4f,\"ci\":{\"confidence\":%g,\"lo\":%.6f,\"hi\":%.6f},\"stopped\":%b,\"events\":%d,\"dropped\":%d}"
           (Jsonl.escape design) c.c_requested n k pct confidence i'.Stats.lo
           i'.Stats.hi c.c_stopped t.nevents t.gap_total))
    (ordered t);
  Buffer.add_string b "]\n";
  Buffer.contents b
