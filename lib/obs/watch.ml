type campaign = {
  mutable c_workers : int;
  mutable c_total : int;
  mutable c_completed : int;
  mutable c_wrong : int;
  mutable c_started_ts : int;  (* ts_ns of campaign_started *)
  mutable c_last_ts : int;  (* ts_ns of the latest event seen *)
  mutable c_stopped : bool;
  mutable c_requested : int;
  mutable c_wall_ns : int;
  mutable c_ci : (float * float * float) option;  (* confidence, lo, hi *)
  mutable c_batches : int;
  mutable c_lanes : int;
  mutable c_plan : (int * int * int * int * int * int * int) option;
  mutable c_detection : (int * int * int * int) option;
      (* silent-correct, detected-corrected, detected-wrong, silent-wrong *)
  mutable c_manifest : string option;
  mutable c_shards_done : int;
  mutable c_shards_pending : int;  (* latest pending count seen *)
  mutable c_sharded : bool;
      (* any shard-done or origin-stamped campaign event seen: progress
         is then base (merged shards) + per-worker in-flight *)
  mutable c_base_completed : int;  (* faults in shards merged so far *)
  mutable c_base_wrong : int;
}

type worker_state = {
  mutable w_busy : int;
  mutable w_idle : int;
  mutable w_items : int;
}

(* One forked campaign worker process, keyed by origin pid.  Shard-local
   campaign events (stamped with an origin) land here instead of on the
   fleet-level campaign row: the origin-less events published by the
   sharded driver stay authoritative for totals and the final verdict. *)
type fleet_worker = {
  fw_pid : int;
  mutable fw_worker : int;  (* worker slot (0 = the parent itself) *)
  mutable fw_shards : int;  (* shard-local campaign_stopped count *)
  mutable fw_injected : int;  (* faults injected across its shards *)
  mutable fw_wall_ns : int;  (* sum of its shards' wall clocks *)
  mutable fw_inflight : int;  (* progress inside the current shard *)
  mutable fw_inflight_wrong : int;
  mutable fw_design : string;  (* design of the in-flight shard *)
  mutable fw_last_ts : int;  (* ts_ns of its latest event *)
  mutable fw_oseq_next : int;  (* next expected worker-local seq *)
  mutable fw_gaps : int;  (* worker-local seqs never observed *)
  mutable fw_events : int;
}

type t = {
  campaigns : (string, campaign) Hashtbl.t;
  mutable order : string list;  (* reverse arrival order *)
  workers : (int * int, worker_state) Hashtbl.t;  (* (origin pid, wid) *)
  fleet : (int, fleet_worker) Hashtbl.t;  (* origin pid *)
  mutable last_seq : int;
  mutable gap_total : int;
  mutable nevents : int;
  mutable max_ts : int;  (* latest ts_ns on the stream *)
  mutable jobs_queued : int;
  mutable jobs_done : int;
}

let create () =
  {
    campaigns = Hashtbl.create 4;
    order = [];
    workers = Hashtbl.create 8;
    fleet = Hashtbl.create 4;
    last_seq = -1;
    gap_total = 0;
    nevents = 0;
    max_ts = 0;
    jobs_queued = 0;
    jobs_done = 0;
  }

let campaign_of t design =
  match Hashtbl.find_opt t.campaigns design with
  | Some c -> c
  | None ->
      let c =
        {
          c_workers = 0;
          c_total = 0;
          c_completed = 0;
          c_wrong = 0;
          c_started_ts = 0;
          c_last_ts = 0;
          c_stopped = false;
          c_requested = 0;
          c_wall_ns = 0;
          c_ci = None;
          c_batches = 0;
          c_lanes = 0;
          c_plan = None;
          c_detection = None;
          c_manifest = None;
          c_shards_done = 0;
          c_shards_pending = 0;
          c_sharded = false;
          c_base_completed = 0;
          c_base_wrong = 0;
        }
      in
      Hashtbl.add t.campaigns design c;
      t.order <- design :: t.order;
      c

let worker_of t key =
  match Hashtbl.find_opt t.workers key with
  | Some w -> w
  | None ->
      let w = { w_busy = 0; w_idle = 0; w_items = 0 } in
      Hashtbl.add t.workers key w;
      w

let fleet_of t (o : Events.origin) =
  match Hashtbl.find_opt t.fleet o.Events.o_pid with
  | Some fw -> fw
  | None ->
      let fw =
        {
          fw_pid = o.Events.o_pid;
          fw_worker = o.Events.o_worker;
          fw_shards = 0;
          fw_injected = 0;
          fw_wall_ns = 0;
          fw_inflight = 0;
          fw_inflight_wrong = 0;
          fw_design = "";
          fw_last_ts = 0;
          fw_oseq_next = 0;
          fw_gaps = 0;
          fw_events = 0;
        }
      in
      Hashtbl.add t.fleet o.Events.o_pid fw;
      fw

let feed t (p : Events.parsed) =
  t.nevents <- t.nevents + 1;
  if p.Events.p_seq > t.last_seq + 1 && t.last_seq >= -1 then
    t.gap_total <- t.gap_total + (p.Events.p_seq - t.last_seq - 1);
  if p.Events.p_seq > t.last_seq then t.last_seq <- p.Events.p_seq;
  let ts = p.Events.p_ts_ns in
  if ts > t.max_ts then t.max_ts <- ts;
  (* per-origin bookkeeping: worker-local sequence density and liveness *)
  (match p.Events.p_origin with
  | Some o ->
      let fw = fleet_of t o in
      fw.fw_worker <- o.Events.o_worker;
      fw.fw_events <- fw.fw_events + 1;
      if o.Events.o_seq > fw.fw_oseq_next then
        fw.fw_gaps <- fw.fw_gaps + (o.Events.o_seq - fw.fw_oseq_next);
      if o.Events.o_seq >= fw.fw_oseq_next then
        fw.fw_oseq_next <- o.Events.o_seq + 1;
      if ts > fw.fw_last_ts then fw.fw_last_ts <- ts
  | None -> ());
  let origin = p.Events.p_origin in
  match p.Events.p_event with
  | Events.Campaign_started { design; faults; workers } -> (
      let c = campaign_of t design in
      c.c_last_ts <- ts;
      match origin with
      | Some o ->
          (* a worker starting one shard, not the fleet campaign *)
          c.c_sharded <- true;
          let fw = fleet_of t o in
          fw.fw_design <- design;
          fw.fw_inflight <- 0;
          fw.fw_inflight_wrong <- 0;
          ignore faults;
          ignore workers
      | None ->
          c.c_total <- faults;
          c.c_requested <- faults;
          c.c_workers <- workers;
          c.c_started_ts <- ts)
  | Events.Campaign_progress { design; completed; total; wrong } -> (
      let c = campaign_of t design in
      c.c_last_ts <- ts;
      match origin with
      | Some o ->
          c.c_sharded <- true;
          let fw = fleet_of t o in
          fw.fw_design <- design;
          fw.fw_inflight <- completed;
          fw.fw_inflight_wrong <- wrong;
          ignore total
      | None ->
          c.c_total <- total;
          (* late progress ticks from chunks in flight at a CI stop may
             read lower than the final count; progress is monotone *)
          if completed > c.c_completed then c.c_completed <- completed;
          if wrong > c.c_wrong then c.c_wrong <- wrong)
  | Events.Campaign_ci { design; n = _; wrong = _; confidence; lo; hi } ->
      let c = campaign_of t design in
      if origin = None then c.c_ci <- Some (confidence, lo, hi);
      c.c_last_ts <- ts
  | Events.Campaign_stopped { design; requested; injected; wrong; wall_ns }
    -> (
      let c = campaign_of t design in
      c.c_last_ts <- ts;
      match origin with
      | Some o ->
          (* one shard finished on that worker; the merged totals arrive
             via shard_done (relayed once by the parent) and the final
             verdict via the origin-less campaign_stopped *)
          c.c_sharded <- true;
          let fw = fleet_of t o in
          fw.fw_shards <- fw.fw_shards + 1;
          fw.fw_injected <- fw.fw_injected + injected;
          fw.fw_wall_ns <- fw.fw_wall_ns + wall_ns;
          fw.fw_inflight <- 0;
          fw.fw_inflight_wrong <- 0;
          ignore requested
      | None ->
          c.c_stopped <- true;
          c.c_requested <- requested;
          (* the final verdict counts are authoritative: a CI-stopped run
             keeps only the triggering prefix, which can be smaller than
             the faults completed by chunks still in flight *)
          c.c_completed <- injected;
          c.c_wrong <- wrong;
          c.c_wall_ns <- wall_ns)
  | Events.Campaign_detection
      { design; silent_correct; detected_corrected; detected_wrong;
        silent_wrong } ->
      let c = campaign_of t design in
      (* accumulate across shards, like plan_paths *)
      let sc0, dc0, dw0, sw0 =
        match c.c_detection with Some v -> v | None -> (0, 0, 0, 0)
      in
      c.c_detection <-
        Some
          ( sc0 + silent_correct,
            dc0 + detected_corrected,
            dw0 + detected_wrong,
            sw0 + silent_wrong );
      c.c_last_ts <- ts
  | Events.Batch_dispatched { design; lanes } ->
      let c = campaign_of t design in
      c.c_batches <- c.c_batches + 1;
      c.c_lanes <- c.c_lanes + lanes;
      c.c_last_ts <- ts
  | Events.Worker_heartbeat { worker; busy_ns; idle_ns; items } ->
      let pid = match origin with Some o -> o.Events.o_pid | None -> 0 in
      let w = worker_of t (pid, worker) in
      (* heartbeats carry cumulative totals; keep the latest *)
      w.w_busy <- busy_ns;
      w.w_idle <- idle_ns;
      w.w_items <- items
  | Events.Plan_paths { design; silent; patched; rerouted; rebuilt; diffed; converged; batched = _ } ->
      let c = campaign_of t design in
      (* accumulate: a sharded stream carries one plan-path record per
         shard (a plain campaign exactly one, so sum = replace there) *)
      let s0, p0, rr0, rb0, d0, cv0, x0 =
        match c.c_plan with Some v -> v | None -> (0, 0, 0, 0, 0, 0, 0)
      in
      c.c_plan <-
        Some
          ( s0 + silent,
            p0 + patched,
            rr0 + rerouted,
            rb0 + rebuilt,
            d0 + diffed,
            cv0 + converged,
            x0 );
      c.c_last_ts <- ts
  | Events.Manifest_written { design; path } ->
      let c = campaign_of t design in
      c.c_manifest <- Some path
  | Events.Shard_done { design; shard = _; lo; hi; wrong; pending } ->
      let c = campaign_of t design in
      c.c_sharded <- true;
      c.c_shards_done <- c.c_shards_done + 1;
      c.c_shards_pending <- pending;
      c.c_base_completed <- c.c_base_completed + (hi - lo);
      c.c_base_wrong <- c.c_base_wrong + wrong;
      c.c_last_ts <- ts
  | Events.Job_queued _ -> t.jobs_queued <- t.jobs_queued + 1
  | Events.Job_started _ -> ()
  | Events.Job_done _ -> t.jobs_done <- t.jobs_done + 1

let finished t =
  Hashtbl.length t.campaigns > 0
  && Hashtbl.fold (fun _ c acc -> acc && c.c_stopped) t.campaigns true

let events_seen t = t.nevents
let gaps t = t.gap_total

let fleet_workers t = Hashtbl.length t.fleet

let origin_gaps t =
  Hashtbl.fold (fun _ fw acc -> acc + fw.fw_gaps) t.fleet 0

let ordered t =
  List.rev_map (fun d -> (d, Hashtbl.find t.campaigns d)) t.order

(* Live counts: authoritative once stopped (and on plain streams);
   merged-shards base plus per-worker in-flight progress while a
   sharded campaign is running. *)
let live_counts t design c =
  if c.c_stopped || not c.c_sharded then (c.c_completed, c.c_wrong)
  else
    Hashtbl.fold
      (fun _ fw (n, k) ->
        if fw.fw_design = design then
          (n + fw.fw_inflight, k + fw.fw_inflight_wrong)
        else (n, k))
      t.fleet
      (c.c_base_completed, c.c_base_wrong)

(* --- rendering -------------------------------------------------------- *)

let bar width frac =
  let full = int_of_float (frac *. float_of_int width) in
  let full = max 0 (min width full) in
  String.make full '#' ^ String.make (width - full) '-'

let rate_of c completed =
  let elapsed_ns =
    if c.c_stopped && c.c_wall_ns > 0 then c.c_wall_ns
    else c.c_last_ts - c.c_started_ts
  in
  if elapsed_ns <= 0 then 0.0
  else float_of_int completed *. 1e9 /. float_of_int elapsed_ns

let render ?(confidence = 0.95) ?worker_timeout t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (design, c) ->
      let n, k = live_counts t design c in
      let frac =
        if c.c_total = 0 then 0.0
        else float_of_int n /. float_of_int c.c_total
      in
      let rate = rate_of c n in
      let status =
        if c.c_stopped then
          if c.c_completed < c.c_requested then "stopped early" else "done"
        else if rate > 0.0 then
          Printf.sprintf "eta %.0fs" (float_of_int (c.c_total - n) /. rate)
        else "starting"
      in
      let ci =
        match (c.c_stopped, c.c_ci) with
        | false, Some (_, lo, hi) -> (lo, hi)
        | _ ->
            let i = Stats.wilson ~confidence ~n ~k () in
            (i.Stats.lo, i.Stats.hi)
      in
      let pct = if n = 0 then 0.0 else 100.0 *. float_of_int k /. float_of_int n in
      Buffer.add_string b
        (Printf.sprintf "%-12s [%s] %6d/%-6d %6.1f/s  wrong %d (%.2f%% [%.2f%%, %.2f%%])  %s\n"
           design
           (bar 20 frac)
           n c.c_total rate k pct
           (100.0 *. fst ci) (100.0 *. snd ci)
           status);
      (match c.c_plan with
      | Some (silent, patched, rerouted, rebuilt, diffed, converged, _) ->
          Buffer.add_string b
            (Printf.sprintf
               "             paths: silent %d patch %d reroute %d rebuild %d (diffed %d, converged %d)\n"
               silent patched rerouted rebuilt diffed converged)
      | None -> ());
      (match c.c_detection with
      | Some (sc, dc, dw, sw) ->
          let tot = sc + dc + dw + sw in
          Buffer.add_string b
            (Printf.sprintf
               "             detection: corrected %d, detected-wrong %d, SDC %d (%.2f%%)\n"
               dc dw sw
               (if tot = 0 then 0.0
                else 100.0 *. float_of_int sw /. float_of_int tot))
      | None -> ());
      if c.c_batches > 0 then
        Buffer.add_string b
          (Printf.sprintf "             batches: %d dispatched, avg occupancy %.1f lanes\n"
             c.c_batches
             (float_of_int c.c_lanes /. float_of_int c.c_batches));
      if c.c_shards_done > 0 then
        Buffer.add_string b
          (Printf.sprintf "             shards: %d done, %d pending\n"
             c.c_shards_done c.c_shards_pending);
      match c.c_manifest with
      | Some p ->
          Buffer.add_string b (Printf.sprintf "             manifest: %s\n" p)
      | None -> ())
    (ordered t);
  (* per-process fleet table of a forked campaign *)
  if Hashtbl.length t.fleet > 0 then begin
    let fws =
      Hashtbl.fold (fun _ fw acc -> fw :: acc) t.fleet []
      |> List.sort (fun a b ->
             compare (a.fw_worker, a.fw_pid) (b.fw_worker, b.fw_pid))
    in
    Buffer.add_string b
      (Printf.sprintf "fleet: %d workers\n" (List.length fws));
    List.iter
      (fun fw ->
        let fps =
          if fw.fw_wall_ns <= 0 then 0.0
          else float_of_int fw.fw_injected *. 1e9 /. float_of_int fw.fw_wall_ns
        in
        let stale =
          (* only a live run can have stale workers: a replayed finished
             stream ends long after its last heartbeat by construction *)
          match worker_timeout with
          | Some timeout when not (finished t) ->
              let age_s =
                float_of_int (t.max_ts - fw.fw_last_ts) /. 1e9
              in
              if age_s > timeout then
                Printf.sprintf "  STALE (last event %.1fs ago)" age_s
              else ""
          | _ -> ""
        in
        Buffer.add_string b
          (Printf.sprintf
             "  w%-2d pid %-7d shards %-3d inflight %-6d injected %-7d %8.1f faults/s  spool %d ev, %d gaps%s\n"
             fw.fw_worker fw.fw_pid fw.fw_shards fw.fw_inflight fw.fw_injected
             fps fw.fw_events fw.fw_gaps stale))
      fws
  end;
  if Hashtbl.length t.workers > 0 then begin
    let ws =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.workers []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Buffer.add_string b "workers:";
    List.iter
      (fun ((pid, wid), w) ->
        let tot = w.w_busy + w.w_idle in
        let pct =
          if tot = 0 then 0.0
          else 100.0 *. float_of_int w.w_busy /. float_of_int tot
        in
        let label =
          (* origin-less streams keep the single-process label *)
          if pid = 0 then Printf.sprintf "w%d" wid
          else Printf.sprintf "p%d.w%d" pid wid
        in
        Buffer.add_string b
          (Printf.sprintf "  %s %.0f%% busy (%d items)" label pct w.w_items))
      ws;
    Buffer.add_char b '\n'
  end;
  if t.jobs_queued > 0 then
    Buffer.add_string b
      (Printf.sprintf "jobs: %d queued, %d done\n" t.jobs_queued t.jobs_done);
  Buffer.add_string b
    (Printf.sprintf "stream: %d events, last seq %d, %d dropped\n" t.nevents
       t.last_seq t.gap_total);
  if Hashtbl.length t.fleet > 0 && origin_gaps t > 0 then
    Buffer.add_string b
      (Printf.sprintf "origin gaps: %d worker events missing\n"
         (origin_gaps t));
  Buffer.contents b

let summary_json ?(confidence = 0.95) t =
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i (design, c) ->
      if i > 0 then Buffer.add_char b ',';
      let n, k = live_counts t design c in
      let i' = Stats.wilson ~confidence ~n ~k () in
      let pct =
        if n = 0 then 0.0 else 100.0 *. float_of_int k /. float_of_int n
      in
      (* field names and formats mirror Campaign.summary_json so the
         watch-side summary is comparable field-by-field *)
      Buffer.add_string b
        (Printf.sprintf
           "{\"design\":\"%s\",\"requested\":%d,\"injected\":%d,\"wrong\":%d,\"wrong_percent\":%.4f,\"ci\":{\"confidence\":%g,\"lo\":%.6f,\"hi\":%.6f},\"stopped\":%b,\"events\":%d,\"dropped\":%d}"
           (Jsonl.escape design) c.c_requested n k pct confidence i'.Stats.lo
           i'.Stats.hi c.c_stopped t.nevents t.gap_total))
    (ordered t);
  Buffer.add_string b "]\n";
  Buffer.contents b
