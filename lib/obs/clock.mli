(** Monotonic clock shared by every telemetry layer.

    Wall-clock time ([Unix.gettimeofday]) can jump under NTP adjustment,
    which would corrupt latency histograms and produce negative span
    durations; everything in {!Tmr_obs} therefore timestamps with the
    kernel monotonic clock. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary (boot-time) origin.  Only differences
    are meaningful.  A 63-bit int holds ~292 years of nanoseconds, so
    the value never wraps in practice. *)
