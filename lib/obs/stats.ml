type interval = {
  lo : float;
  hi : float;
}

(* ---- normal distribution ------------------------------------------- *)

let normal_cdf x = 0.5 *. Float.erfc (-.x /. Float.sqrt 2.0)

(* Acklam's rational approximation to the inverse normal CDF, refined by
   one Halley step against [normal_cdf].  Good to ~1e-12 everywhere we
   care (confidence levels between 0.5 and 0.9999). *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Stats.normal_quantile: p outside (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let poly coeffs x =
    Array.fold_left (fun acc c -> (acc *. x) +. c) 0. coeffs
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then
      let q = sqrt (-2. *. log p) in
      poly c q /. ((poly d q *. q) +. 1.)
    else if p <= 1. -. p_low then
      let q = p -. 0.5 in
      let r = q *. q in
      poly a r *. q /. ((poly b r *. r) +. 1.)
    else
      let q = sqrt (-2. *. log (1. -. p)) in
      -.(poly c q) /. ((poly d q *. q) +. 1.)
  in
  (* Halley refinement: e = F(x) - p, u = e / phi(x). *)
  let e = normal_cdf x -. p in
  let u = e *. Float.sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

let z_of confidence =
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Stats.z_of: confidence outside (0, 1)";
  normal_quantile (0.5 +. (confidence /. 2.))

let clamp01 x = Float.min 1. (Float.max 0. x)

(* ---- Wilson score interval ----------------------------------------- *)

let wilson ?(confidence = 0.95) ~n ~k () =
  if n <= 0 then { lo = 0.; hi = 1. }
  else begin
    let z = z_of confidence in
    let nf = float_of_int n and kf = float_of_int k in
    let p = kf /. nf in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. nf) in
    let centre = p +. (z2 /. (2. *. nf)) in
    let spread =
      z *. sqrt ((p *. (1. -. p) /. nf) +. (z2 /. (4. *. nf *. nf)))
    in
    {
      lo = clamp01 ((centre -. spread) /. denom);
      hi = clamp01 ((centre +. spread) /. denom);
    }
  end

(* ---- Clopper–Pearson via the regularized incomplete beta ------------ *)

(* Lanczos approximation, g = 7, n = 9 (Numerical Recipes coefficients). *)
let ln_gamma x =
  let cof =
    [| 57.1562356658629235; -59.5979603554754912; 14.1360979747417471;
       -0.491913816097620199; 0.339946499848118887e-4; 0.465236289270485756e-4;
       -0.983744753048795646e-4; 0.158088703224912494e-3;
       -0.210264441724104883e-3; 0.217439618115212643e-3;
       -0.164318106536763890e-3; 0.844182239838527433e-4;
       -0.261908384015814087e-4; 0.368991826595316234e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.24218750000000000 in
  let tmp = ((x +. 0.5) *. log tmp) -. tmp in
  let ser = ref 0.999999999999997092 in
  for j = 0 to Array.length cof - 1 do
    y := !y +. 1.;
    ser := !ser +. (cof.(j) /. !y)
  done;
  tmp +. log (2.5066282746310005 *. !ser /. x)

(* Continued-fraction evaluation of the incomplete beta (NR betacf). *)
let betacf a b x =
  let maxit = 200 in
  let eps = 3e-12 in
  let fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  (try
     for m = 1 to maxit do
       let mf = float_of_int m in
       let m2 = 2. *. mf in
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       h := !h *. !d *. !c;
       let aa =
         -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
       in
       d := 1. +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1. +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  !h

(* Regularized incomplete beta I_x(a, b). *)
let betai a b x =
  if x <= 0. then 0.
  else if x >= 1. then 1.
  else begin
    let bt =
      exp
        (ln_gamma (a +. b) -. ln_gamma a -. ln_gamma b
        +. (a *. log x)
        +. (b *. log (1. -. x)))
    in
    if x < (a +. 1.) /. (a +. b +. 2.) then bt *. betacf a b x /. a
    else 1. -. (bt *. betacf b a (1. -. x) /. b)
  end

(* Invert I_x(a, b) = p by bisection — robust and plenty fast for the few
   calls per campaign. *)
let betai_inv a b p =
  if p <= 0. then 0.
  else if p >= 1. then 1.
  else begin
    let lo = ref 0. and hi = ref 1. in
    for _ = 1 to 100 do
      let mid = 0.5 *. (!lo +. !hi) in
      if betai a b mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let clopper_pearson ?(confidence = 0.95) ~n ~k () =
  if n <= 0 then { lo = 0.; hi = 1. }
  else begin
    let alpha = 1. -. confidence in
    let nf = float_of_int n and kf = float_of_int k in
    let lo =
      if k <= 0 then 0. else betai_inv kf (nf -. kf +. 1.) (alpha /. 2.)
    in
    let hi =
      if k >= n then 1.
      else betai_inv (kf +. 1.) (nf -. kf) (1. -. (alpha /. 2.))
    in
    { lo = clamp01 lo; hi = clamp01 hi }
  end

(* ---- comparisons ---------------------------------------------------- *)

let overlap a b = a.lo <= b.hi && b.lo <= a.hi

let two_proportion_z ~n1 ~k1 ~n2 ~k2 =
  if n1 <= 0 || n2 <= 0 then 0.
  else begin
    let n1f = float_of_int n1 and n2f = float_of_int n2 in
    let p1 = float_of_int k1 /. n1f and p2 = float_of_int k2 /. n2f in
    let pool = float_of_int (k1 + k2) /. (n1f +. n2f) in
    let var = pool *. (1. -. pool) *. ((1. /. n1f) +. (1. /. n2f)) in
    if var <= 0. then 0. else (p1 -. p2) /. sqrt var
  end

let p_value z = Float.erfc (Float.abs z /. Float.sqrt 2.0)

let compatible ?(confidence = 0.95) ~n1 ~k1 ~n2 ~k2 () =
  let i1 = wilson ~confidence ~n:n1 ~k:k1 () in
  let i2 = wilson ~confidence ~n:n2 ~k:k2 () in
  let z = two_proportion_z ~n1 ~k1 ~n2 ~k2 in
  overlap i1 i2 && Float.abs z < z_of confidence

(* ---- sequential stopping -------------------------------------------- *)

type stop_rule = {
  sr_confidence : float;
  sr_half_width : float;
  sr_min_n : int;
}

let stop_rule ?(confidence = 0.95) ?(min_n = 100) ~half_width () =
  if not (half_width > 0.) then
    invalid_arg "Stats.stop_rule: half_width must be positive";
  { sr_confidence = confidence; sr_half_width = half_width; sr_min_n = min_n }

let should_stop r ~n ~k =
  n >= r.sr_min_n
  &&
  let i = wilson ~confidence:r.sr_confidence ~n ~k () in
  (i.hi -. i.lo) /. 2. <= r.sr_half_width
