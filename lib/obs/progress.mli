(** TTY-aware progress rendering with rate and ETA.

    On a terminal the renderer redraws one line in place (carriage
    return, no scrollback spam) at most every ~100 ms; on a pipe or CI
    log it prints one full line per ~10% step instead.  Rate and ETA
    come from the monotonic clock. *)

type t

val create : ?out:out_channel -> label:string -> total:int -> unit -> t
(** [out] defaults to [stderr]. *)

val update : t -> int -> unit
(** [update t done_] renders [done_]/total.  Monotone in [done_];
    rate-limited internally, so callers may invoke it as often as they
    like. *)

val set_note : t -> string -> unit
(** Free-form suffix appended to the rendered line (after the ETA) —
    the campaign progress uses it for the running wrong-answer rate
    ± CI.  Empty string removes it. *)

val finish : ?at:int -> t -> unit
(** Render the final state and release the line (newline on a TTY).
    [at] overrides the final count (default [total]) — for campaigns
    stopped early by a CI rule.  Idempotent. *)

val callback : ?out:out_channel -> unit -> string -> int -> int -> unit
(** A labelled progress callback compatible with
    [Tmr_experiments.Runs.campaign_design ~progress].  Renders one bar
    per label; when the label changes (the next campaign of a multi-run
    starts) the previous bar is finished first, and a bar is finished as
    soon as its count reaches its total. *)

val callback_note :
  ?out:out_channel ->
  unit ->
  (string -> string -> int -> int -> unit) * (unit -> unit)
(** Like {!callback} with a per-update note: the first component is
    called as [cb label note done_ total].  The second finishes the
    current bar at its last seen count — call it after a campaign that
    may have stopped early (a CI stop never delivers [done_ = total], so
    the bar would otherwise hold the line open). *)
