type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail !pos (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail !pos (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail !pos "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail !pos "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail !pos "bad \\u escape"
            in
            (* Encode the code point as UTF-8; surrogates land verbatim,
               which is fine for the machine-written JSON we read. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match float_of_string_opt str with
    | Some f -> Num f
    | None -> fail start (Printf.sprintf "bad number %S" str)
  in
  (* Containers recurse, so bound the nesting depth: unbounded input
     (hostile or corrupt) must yield a parse error, never a native
     stack overflow. *)
  let max_depth = 512 in
  let rec parse_value depth =
    if depth > max_depth then fail !pos "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail !pos "expected , or } in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail !pos "expected , or ] in array"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character %c" c)
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage after document";
  v

let parse_exn s =
  try parse_exn s with Parse_error msg -> failwith ("Json.parse: " ^ msg)

let parse s =
  try Ok (parse_exn s) with Failure msg -> Error msg

let escape = Jsonl.escape

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let arr = function Arr items -> items | _ -> []
