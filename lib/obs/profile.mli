(** Offline aggregation of Chrome-trace JSONL emitted by {!Trace}.

    {!Trace} writes one complete-span event per line
    ([ph:"X"], [ts]/[dur] in microseconds, [tid] = domain id).  This
    module reconstructs span nesting per thread by interval containment
    (spans on one tid sorted by start time, longer-first on ties: a
    span starting inside the currently open span is its child) and
    aggregates three views:

    - a per-span-name table of count, total time and {e self} time
      (total minus direct children — where the time actually went);
    - a per-worker utilization timeline (fraction of wall-clock each
      tid spent inside a top-level span, bucketed);
    - a collapsed-stack export ([root;child;leaf <self-µs>] per line)
      consumable by standard flamegraph tooling.

    Self-time methodology: each span's children are the spans it
    directly contains on the same lane; [self = dur - Σ children.dur].
    Cross-domain causality is not reconstructed — a worker's spans root
    at that worker's lane.

    Lanes are pid-qualified: a merged fleet trace (forked workers'
    trace files stitched into the parent's) contains several processes
    whose domain ids collide, so spans are grouped by [(pid, tid)] and
    the timeline labels each process's lanes separately.  Lines without
    a [pid] field group under pid 0. *)

type t

val of_lines : string list -> (t, string) result
(** Parse trace lines.  Lines that are not [ph:"X"] objects are
    ignored; a malformed JSON line is an error.  Errors out on an empty
    trace. *)

val load_file : string -> (t, string) result

val span_table : t -> string
(** Per-name aggregate table, sorted by self time, with count,
    total/self time, share of total self time, and mean/min/max span
    duration. *)

val timeline : ?width:int -> t -> string
(** Per-lane utilization timeline over the trace's wall-clock span,
    [width] buckets (default 60), one row per [(pid, tid)] lane,
    darker = busier, with the overall busy fraction per lane.  Rows
    carry the pid only when the trace spans several processes. *)

val collapsed : t -> string
(** Collapsed stacks: one [path;to;span <count>] line per distinct
    stack, where the count is the stack's total self time in integer
    microseconds (flamegraph.pl / inferno compatible).  Stacks whose
    self time rounds to zero are kept at 1 µs so they stay visible. *)

val report : t -> string
(** Header (spans, tids, wall-clock) + {!span_table} + {!timeline}. *)
