(** A minimal JSON tree: parser and printer.

    The observability layer emits JSON all over (metrics snapshots, trace
    events, campaign summaries, run-store manifests) and until now only
    the tests could read it back.  The run store needs a library-side
    parser, so here is one — strict enough for machine-written JSON,
    with no dependencies. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document.  Trailing whitespace is allowed, trailing
    garbage is an error. *)

val parse_exn : string -> t
(** Like {!parse}; raises [Failure] with the parse error. *)

val to_string : t -> string
(** Compact one-line rendering.  Numbers that hold integral values print
    without a decimal point. *)

(** {1 Accessors}

    All return [None] / [[]] rather than raising when the shape is not
    what was asked for. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val int : t -> int option
val bool : t -> bool option
val arr : t -> t list
