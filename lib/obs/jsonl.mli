(** Line-oriented JSON sinks shared by the observability emitters.

    A sink is an atomically-swappable output channel plus a mutex; with
    none registered every emission is one atomic load.  {!Trace} (span
    events) and the fault-forensics stream ([Tmr_inject.Forensics]) are
    both instances: each owns one {!t} and renders its own line format,
    while registration, locking, escaping and teardown live here. *)

type t

val make : unit -> t
(** A sink handle with no destination registered. *)

val to_file : t -> string -> unit
(** Open [path] (truncating) and direct subsequent emissions to it.
    Replaces any previously registered destination (flushed, closed). *)

val close : t -> unit
(** Flush and close; emissions become no-ops again.  Safe when no
    destination is registered. *)

val detach : t -> unit
(** Forget the destination {e without} flushing or closing it.  For
    forked children, which share the channel buffer and file offset
    with the parent: one atomic store, no locks. *)

val enabled : t -> bool

val emit : t -> string -> unit
(** Write one line ([line] must not contain the trailing newline) under
    the sink mutex; whole-line writes keep concurrent emitters from
    interleaving.  No-op without a destination; a destination closed
    concurrently is ignored. *)

val escape : string -> string
(** JSON string-content escaping (no surrounding quotes). *)
