(* Prometheus text format v0.0.4 over a deliberately small HTTP/1.1
   server: one thread, one connection at a time, GET only.  A scrape
   renders from a Metrics snapshot, so it never blocks recorders. *)

let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
    name

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* # HELP text per metric family — promtool lint wants every family
   introduced by a HELP line before its TYPE line.  Names missing from
   the table fall back to a generic line instead of failing a scrape. *)
let help_for name =
  match name with
  | "campaign.batch_lanes" -> "Faults executed word-parallel as batch lanes"
  | "campaign.batch_scalar" ->
      "Batchable faults that fell back to the scalar differential engine"
  | "campaign.batch_occupancy" -> "Lane count of each executed batch"
  | "campaign.detection.silent_correct" ->
      "Faults with correct outputs and no disagreement flag"
  | "campaign.detection.detected_corrected" ->
      "Faults corrected by the vote whose disagreement flags still fired"
  | "campaign.detection.detected_wrong" ->
      "Wrong-answer faults the in-circuit detectors flagged"
  | "campaign.detection.silent_wrong" ->
      "Silent data corruption: wrong answers no detector flagged"
  | "campaign.detection.latency_cycles" ->
      "Cycles from first internal divergence to the first disagreement flag"
  | "campaign.detection.sdc_rate" ->
      "Silent-wrong share of the last campaign's injected faults"
  | "campaign.diff_converge_cycle" ->
      "Cycle at which a differentially simulated fault rejoined the baseline"
  | "campaign.fault_ns.silent" -> "Per-fault latency, silent plan path"
  | "campaign.fault_ns.patch" -> "Per-fault latency, patch plan path"
  | "campaign.fault_ns.reroute" -> "Per-fault latency, reroute plan path"
  | "campaign.fault_ns.rebuild" -> "Per-fault latency, rebuild plan path"
  | "campaign.fault_ns.diff" -> "Per-fault latency, differential engine"
  | "campaign.fault_ns.batch" -> "Amortised per-fault latency, batch engine"
  | "campaign.first_error_cycle" ->
      "Stimulus cycle at which wrong-answer faults first disagreed"
  | "campaign.wall_ns" -> "Wall time of the last campaign"
  | "campaign.worker_busy_ns" -> "Summed worker busy time"
  | "campaign.worker_setup_ns" -> "Summed worker setup time"
  | "campaign.worker_utilization" -> "Busy share of the last campaign's workers"
  | "fsim.build_ns" -> "Fabric simulator build time"
  | "fsim.reroute_ns" -> "Incremental reroute time"
  | "fsim.reroute_fallback" -> "Reroutes that fell back to a full rebuild"
  | "pool.chunks" -> "Work chunks claimed by campaign workers"
  | "pool.claim_wait_ns" -> "Time workers waited to claim a chunk"
  | "service.queue_depth" -> "Jobs waiting in the service queue"
  | "service.shards_done" -> "Completed shards of the running job"
  | "service.orphan_reclaims" -> "Crashed workers' shard claims reclaimed"
  | "service.claim_ns" -> "Shard claim latency"
  | "service.jobs_active" -> "Jobs currently executing"
  | "service.jobs_completed" -> "Jobs completed since the service started"
  | "service.clients" -> "Connected event-stream clients"
  | _ -> "tmrtool metric " ^ name

(* Extra snapshot sources folded into every scrape: the campaign parent
   registers a reader over its workers' metrics files here, so /metrics
   reports fleet-wide totals rather than the parent's (mostly idle)
   registry alone. *)
let extra_snapshots : (unit -> Metrics.snapshot list) option Atomic.t =
  Atomic.make None

let set_extra_snapshots f = Atomic.set extra_snapshots f

(* How many campaigns this process is currently running — wired by the
   host binary (the obs layer cannot see the inject layer). *)
let active_probe : (unit -> int) option Atomic.t = Atomic.make None
let set_active_probe f = Atomic.set active_probe f

let fleet_snapshot () =
  let own = Metrics.snapshot () in
  match Atomic.get extra_snapshots with
  | None -> own
  | Some f -> List.fold_left Metrics.merge own (try f () with _ -> [])

let render () =
  let snap = fleet_snapshot () in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      line "# HELP %s %s" n (help_for name);
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    snap.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      line "# HELP %s %s" n (help_for name);
      line "# TYPE %s gauge" n;
      line "%s %s" n (fmt_float v))
    snap.Metrics.gauges;
  List.iter
    (fun (name, (s : Metrics.hist_summary)) ->
      let n = sanitize name in
      line "# HELP %s %s" n (help_for name);
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      Array.iter
        (fun (bound, count) ->
          cum := !cum + count;
          (* the catch-all bucket has no finite bound; +Inf below covers it *)
          if bound <> max_int then line "%s_bucket{le=\"%d\"} %d" n bound !cum)
        s.Metrics.buckets;
      line "%s_bucket{le=\"+Inf\"} %d" n s.Metrics.count;
      line "%s_sum %d" n s.Metrics.sum;
      line "%s_count %d" n s.Metrics.count;
      line "# HELP %s_min Smallest observation of %s" n n;
      line "# TYPE %s_min gauge" n;
      line "%s_min %d" n s.Metrics.min;
      line "# HELP %s_max Largest observation of %s" n n;
      line "# TYPE %s_max gauge" n;
      line "%s_max %d" n s.Metrics.max)
    snap.Metrics.histograms;
  (* event-bus liveness: how far the stream is, and what was lost *)
  line "# HELP events_bus_published Events accepted onto the bus";
  line "# TYPE events_bus_published gauge";
  line "events_bus_published %d" (Events.published ());
  line "# HELP events_bus_dropped Events dropped by the bounded buffer";
  line "# TYPE events_bus_dropped gauge";
  line "events_bus_dropped %d" (Events.dropped ());
  line "# HELP events_bus_last_seq Sequence number of the newest event";
  line "# TYPE events_bus_last_seq gauge";
  line "events_bus_last_seq %d" (Events.last_seq ());
  line "# HELP events_bus_clients Connected event-stream clients";
  line "# TYPE events_bus_clients gauge";
  line "events_bus_clients %d" (Events.clients ());
  Buffer.contents b

(* --- server ----------------------------------------------------------- *)

type server = {
  fd : Unix.file_descr;
  thread : Thread.t;
  s_port : int;
  stop_flag : bool Atomic.t;
  started_at : float;
}

let current : server option ref = ref None
let current_mutex = Mutex.create ()

(* readiness probe: liveness facts only, cheap enough to poll hard —
   no registry snapshot, no file reads *)
let healthz_body () =
  let uptime =
    Mutex.lock current_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock current_mutex)
      (fun () ->
        match !current with
        | Some s -> Unix.gettimeofday () -. s.started_at
        | None -> 0.0)
  in
  let active =
    match Atomic.get active_probe with
    | Some f -> ( try f () with _ -> 0)
    | None -> 0
  in
  Printf.sprintf
    "{\"status\":\"ok\",\"uptime_s\":%.3f,\"bus\":{\"enabled\":%b,\"published\":%d,\"dropped\":%d,\"clients\":%d},\"active_campaigns\":%d}\n"
    uptime (Events.enabled ()) (Events.published ()) (Events.dropped ())
    (Events.clients ()) active

let respond client =
  let buf = Bytes.create 2048 in
  let n = try Unix.read client buf 0 2048 with _ -> 0 in
  let req = Bytes.sub_string buf 0 n in
  let path =
    match String.split_on_char ' ' req with
    | _meth :: path :: _ -> path
    | _ -> "/"
  in
  let status, ctype, body =
    let prom = "text/plain; version=0.0.4; charset=utf-8" in
    match path with
    | "/" | "/metrics" -> ("200 OK", prom, render ())
    | "/healthz" -> ("200 OK", "application/json", healthz_body ())
    | _ -> ("404 Not Found", prom, "not found\n")
  in
  let resp =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: \
       %d\r\nConnection: close\r\n\r\n%s"
      status ctype (String.length body) body
  in
  let bytes = Bytes.of_string resp in
  let len = Bytes.length bytes in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write client bytes !off (len - !off)
    done
  with _ -> ()

(* Polling accept: a thread parked in a blocking accept() is not
   reliably woken when another thread closes the listen fd, so the
   serve thread polls and watches a stop flag instead — worst-case
   50 ms of extra scrape latency, no join deadlock on shutdown. *)
let serve (fd, stop_flag) =
  Unix.set_nonblock fd;
  while not (Atomic.get stop_flag) do
    match Unix.accept fd with
    | client, _ ->
        (try Unix.clear_nonblock client with _ -> ());
        (try Unix.setsockopt_float client Unix.SO_RCVTIMEO 2.0 with _ -> ());
        (try respond client with _ -> ());
        (try Unix.close client with _ -> ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Thread.delay 0.05
    | exception _ -> Atomic.set stop_flag true
  done

let listen ?(host = "127.0.0.1") port =
  Mutex.lock current_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock current_mutex)
    (fun () ->
      if !current <> None then
        invalid_arg "Expose.listen: server already running";
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 16;
      let s_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      let stop_flag = Atomic.make false in
      let thread = Thread.create serve (fd, stop_flag) in
      current :=
        Some
          { fd; thread; s_port; stop_flag; started_at = Unix.gettimeofday () };
      s_port)

let stop () =
  let s =
    Mutex.lock current_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock current_mutex)
      (fun () ->
        let s = !current in
        current := None;
        s)
  in
  match s with
  | None -> ()
  | Some s ->
      Atomic.set s.stop_flag true;
      Thread.join s.thread;
      (try Unix.close s.fd with _ -> ())

let port () =
  Mutex.lock current_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock current_mutex)
    (fun () -> Option.map (fun s -> s.s_port) !current)
