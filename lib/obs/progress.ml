type t = {
  label : string;
  total : int;
  out : out_channel;
  tty : bool;
  start_ns : int;
  mutable base_done : int;
      (* count already done when the bar appeared; -1 until the first
         update.  Rate is computed over the work actually witnessed, so a
         bar attached mid-run does not report an absurd first rate. *)
  mutable last_render_ns : int;  (* 0 = never rendered *)
  mutable last_decile : int;  (* non-tty: last 10%-step printed *)
  mutable last_width : int;  (* tty: printed width to blank out *)
  mutable finished : bool;
  mutable note : string;  (* free-form suffix, e.g. running rate ± CI *)
  mutable last_done : int;  (* latest count seen, for early-stop finish *)
}

let create ?(out = stderr) ~label ~total () =
  let tty = try Unix.isatty (Unix.descr_of_out_channel out) with _ -> false in
  {
    label;
    total;
    out;
    tty;
    start_ns = Clock.now_ns ();
    base_done = -1;
    last_render_ns = 0;
    last_decile = -1;
    last_width = 0;
    finished = false;
    note = "";
    last_done = 0;
  }

let set_note t note = t.note <- note

let eta_string seconds =
  if Float.is_nan seconds || seconds < 0.0 then "?"
  else if seconds < 90.0 then Printf.sprintf "%.0fs" seconds
  else if seconds < 5400.0 then
    let s = int_of_float seconds in
    Printf.sprintf "%dm%02ds" (s / 60) (s mod 60)
  else Printf.sprintf "%.1fh" (seconds /. 3600.0)

let line t done_ =
  if t.base_done < 0 then t.base_done <- done_;
  let elapsed = float_of_int (Clock.now_ns () - t.start_ns) /. 1e9 in
  let witnessed = done_ - t.base_done in
  let rate =
    if elapsed > 0.0 && witnessed > 0 then float_of_int witnessed /. elapsed
    else 0.0
  in
  let pct =
    if t.total <= 0 then 100.0
    else 100.0 *. float_of_int done_ /. float_of_int t.total
  in
  let eta =
    if done_ >= t.total then "0s"
    else if rate <= 0.0 then "?"
    else eta_string (float_of_int (t.total - done_) /. rate)
  in
  Printf.sprintf "%s: %d/%d (%.0f%%) %.1f/s eta %s%s" t.label done_ t.total pct
    rate eta
    (if t.note = "" then "" else "  " ^ t.note)

let render t done_ =
  if t.tty then begin
    let s = line t done_ in
    let padding = max 0 (t.last_width - String.length s) in
    Printf.fprintf t.out "\r%s%s%!" s (String.make padding ' ');
    t.last_width <- String.length s
  end
  else begin
    (* one line per 10% step keeps CI logs readable *)
    let decile =
      if t.total <= 0 then 10 else done_ * 10 / max 1 t.total
    in
    if decile > t.last_decile then begin
      t.last_decile <- decile;
      Printf.fprintf t.out "%s\n%!" (line t done_)
    end
  end

let update t done_ =
  if not t.finished then begin
    t.last_done <- done_;
    let now = Clock.now_ns () in
    if (not t.tty) || now - t.last_render_ns > 100_000_000 then begin
      t.last_render_ns <- now;
      render t done_
    end
  end

let finish ?at t =
  if not t.finished then begin
    t.finished <- true;
    let final = Option.value at ~default:t.total in
    if t.tty then begin
      render t final;
      Printf.fprintf t.out "\n%!"
    end
    else if t.last_decile < 10 then begin
      t.last_decile <- 10;
      Printf.fprintf t.out "%s\n%!" (line t final)
    end
  end

let callback_note ?out () =
  let current = ref None in
  let cb label note done_ total =
    let bar =
      match !current with
      | Some bar when bar.label = label && not bar.finished -> bar
      | Some bar ->
          if not bar.finished then finish ~at:bar.last_done bar;
          let bar = create ?out ~label ~total () in
          current := Some bar;
          bar
      | None ->
          let bar = create ?out ~label ~total () in
          current := Some bar;
          bar
    in
    set_note bar note;
    if done_ >= total then finish bar else update bar done_
  in
  let flush () =
    match !current with
    | Some bar when not bar.finished -> finish ~at:bar.last_done bar
    | _ -> ()
  in
  (cb, flush)

let callback ?out () =
  let cb, _flush = callback_note ?out () in
  fun label done_ total -> cb label "" done_ total
