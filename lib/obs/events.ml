type event =
  | Campaign_started of { design : string; faults : int; workers : int }
  | Campaign_progress of {
      design : string;
      completed : int;
      total : int;
      wrong : int;
    }
  | Campaign_ci of {
      design : string;
      n : int;
      wrong : int;
      confidence : float;
      lo : float;
      hi : float;
    }
  | Campaign_stopped of {
      design : string;
      requested : int;
      injected : int;
      wrong : int;
      wall_ns : int;
    }
  | Campaign_detection of {
      design : string;
      silent_correct : int;
      detected_corrected : int;
      detected_wrong : int;
      silent_wrong : int;
    }
  | Batch_dispatched of { design : string; lanes : int }
  | Worker_heartbeat of {
      worker : int;
      busy_ns : int;
      idle_ns : int;
      items : int;
    }
  | Plan_paths of {
      design : string;
      silent : int;
      patched : int;
      rerouted : int;
      rebuilt : int;
      diffed : int;
      converged : int;
      batched : int;
    }
  | Manifest_written of { design : string; path : string }
  | Shard_done of {
      design : string;
      shard : int;
      lo : int;
      hi : int;
      wrong : int;
      pending : int;
    }
  | Job_queued of { job : string; design : string }
  | Job_started of { job : string; design : string }
  | Job_done of {
      job : string;
      design : string;
      injected : int;
      wrong : int;
      wall_ns : int;
    }

let type_name = function
  | Campaign_started _ -> "campaign_started"
  | Campaign_progress _ -> "campaign_progress"
  | Campaign_ci _ -> "campaign_ci"
  | Campaign_stopped _ -> "campaign_stopped"
  | Campaign_detection _ -> "campaign_detection"
  | Batch_dispatched _ -> "batch_dispatched"
  | Worker_heartbeat _ -> "worker_heartbeat"
  | Plan_paths _ -> "plan_paths"
  | Manifest_written _ -> "manifest_written"
  | Shard_done _ -> "shard_done"
  | Job_queued _ -> "job_queued"
  | Job_started _ -> "job_started"
  | Job_done _ -> "job_done"

(* Everything after the "ts_ns" field: ,"type":...,<fields>} — built by
   the producer outside the ring lock; seq and ts are prepended by the
   writer thread, which is the only place the full line exists. *)
let payload_of ev =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf ",\"type\":%S" (type_name ev));
  let str k v = Buffer.add_string b (Printf.sprintf ",\"%s\":\"%s\"" k (Jsonl.escape v)) in
  let int k v = Buffer.add_string b (Printf.sprintf ",\"%s\":%d" k v) in
  let flt k v = Buffer.add_string b (Printf.sprintf ",\"%s\":%.6f" k v) in
  (match ev with
  | Campaign_started { design; faults; workers } ->
      str "design" design;
      int "faults" faults;
      int "workers" workers
  | Campaign_progress { design; completed; total; wrong } ->
      str "design" design;
      int "completed" completed;
      int "total" total;
      int "wrong" wrong
  | Campaign_ci { design; n; wrong; confidence; lo; hi } ->
      str "design" design;
      int "n" n;
      int "wrong" wrong;
      flt "confidence" confidence;
      flt "lo" lo;
      flt "hi" hi
  | Campaign_stopped { design; requested; injected; wrong; wall_ns } ->
      str "design" design;
      int "requested" requested;
      int "injected" injected;
      int "wrong" wrong;
      int "wall_ns" wall_ns
  | Campaign_detection
      { design; silent_correct; detected_corrected; detected_wrong;
        silent_wrong } ->
      str "design" design;
      int "silent_correct" silent_correct;
      int "detected_corrected" detected_corrected;
      int "detected_wrong" detected_wrong;
      int "silent_wrong" silent_wrong
  | Batch_dispatched { design; lanes } ->
      str "design" design;
      int "lanes" lanes
  | Worker_heartbeat { worker; busy_ns; idle_ns; items } ->
      int "worker" worker;
      int "busy_ns" busy_ns;
      int "idle_ns" idle_ns;
      int "items" items
  | Plan_paths { design; silent; patched; rerouted; rebuilt; diffed; converged; batched } ->
      str "design" design;
      int "silent" silent;
      int "patched" patched;
      int "rerouted" rerouted;
      int "rebuilt" rebuilt;
      int "diffed" diffed;
      int "converged" converged;
      int "batched" batched
  | Manifest_written { design; path } ->
      str "design" design;
      str "path" path
  | Shard_done { design; shard; lo; hi; wrong; pending } ->
      str "design" design;
      int "shard" shard;
      int "lo" lo;
      int "hi" hi;
      int "wrong" wrong;
      int "pending" pending
  | Job_queued { job; design } ->
      str "job" job;
      str "design" design
  | Job_started { job; design } ->
      str "job" job;
      str "design" design
  | Job_done { job; design; injected; wrong; wall_ns } ->
      str "job" job;
      str "design" design;
      int "injected" injected;
      int "wrong" wrong;
      int "wall_ns" wall_ns);
  Buffer.add_char b '}';
  Buffer.contents b

let render ~seq ~ts_ns ev =
  Printf.sprintf "{\"seq\":%d,\"ts_ns\":%d%s" seq ts_ns (payload_of ev)

(* --- origin context --------------------------------------------------- *)

type origin = {
  o_pid : int;
  o_worker : int;
  o_shard : int;
  o_job : string;
  o_seq : int;
}

(* Ambient per-process origin: once set, every published event carries an
   ["origin"] object naming the process, logical worker slot, currently
   running shard and the job correlation id minted by the parent.  The
   pid is captured when the context is set, so a context installed after
   [fork] names the child, never the parent. *)
type ctx = {
  cx_pid : int;
  cx_worker : int;
  cx_job : string;
  mutable cx_shard : int;
}

let context : ctx option Atomic.t = Atomic.make None

let set_context ~worker ~job =
  Atomic.set context
    (Some { cx_pid = Unix.getpid (); cx_worker = worker; cx_job = job; cx_shard = -1 })

let clear_context () = Atomic.set context None

let set_shard shard =
  match Atomic.get context with Some c -> c.cx_shard <- shard | None -> ()

(* Nested object rather than extra top-level fields: several events
   already own keys named "worker" or "shard", and the origin must not
   shadow them. *)
let origin_suffix () =
  match Atomic.get context with
  | None -> ""
  | Some c ->
      Printf.sprintf
        ",\"origin\":{\"pid\":%d,\"worker\":%d,\"shard\":%d,\"job\":\"%s\"}"
        c.cx_pid c.cx_worker c.cx_shard (Jsonl.escape c.cx_job)

let stamped_payload ev =
  let p = payload_of ev in
  match origin_suffix () with
  | "" -> p
  | sfx -> String.sub p 0 (String.length p - 1) ^ sfx ^ "}"

(* --- the bus ---------------------------------------------------------- *)

let default_capacity = 4096

type entry = { e_seq : int; e_ts : int; e_payload : string }

type bus = {
  mutex : Mutex.t;
  cond : Condition.t;
  capacity : int;
  ring : entry array;
  mutable head : int;  (* oldest undrained entry *)
  mutable len : int;
  mutable next_seq : int;
  mutable stopping : bool;
  mutable file : out_channel option;
  mutable listen_fd : Unix.file_descr option;
  mutable sock_path : string option;
  mutable peers : Unix.file_descr list;
  mutable writer : Thread.t option;
  mutable acceptor : Thread.t option;
}

let state : bus option Atomic.t = Atomic.make None

(* A spool is the forked-worker counterpart of the bus: a plain append
   channel with no threads at all, so it is trivially safe to install
   right after [fork].  Writes are synchronous — one whole line plus
   flush per event under the spool mutex — which keeps every line a
   single [write(2)] (lines are far below the 64 KiB channel buffer), so
   a tailer reading the file never observes a torn line. *)
type spool = {
  sp_mutex : Mutex.t;
  sp_oc : out_channel;
  mutable sp_seq : int;
}

let spool_state : spool option Atomic.t = Atomic.make None

(* Totals survive [close] so manifests written after teardown can still
   record the final sequence number. *)
let total_seq = Atomic.make 0
let total_dropped = Atomic.make 0

let enabled () =
  Atomic.get state <> None || Atomic.get spool_state <> None

let published () = Atomic.get total_seq
let dropped () = Atomic.get total_dropped
let last_seq () = Atomic.get total_seq - 1

let clients () =
  match Atomic.get state with
  | None -> 0
  | Some b ->
      Mutex.lock b.mutex;
      let n = List.length b.peers in
      Mutex.unlock b.mutex;
      n

let enqueue b payload =
  Mutex.lock b.mutex;
  (* seq and ts assigned under the ring lock: sequence order, ring
     order and timestamp order all agree *)
  let seq = b.next_seq in
  b.next_seq <- seq + 1;
  Atomic.incr total_seq;
  if b.len >= b.capacity then Atomic.incr total_dropped
  else begin
    b.ring.((b.head + b.len) mod b.capacity) <-
      { e_seq = seq; e_ts = Clock.now_ns (); e_payload = payload };
    b.len <- b.len + 1;
    Condition.signal b.cond
  end;
  Mutex.unlock b.mutex

let spool_write s payload =
  Mutex.lock s.sp_mutex;
  let seq = s.sp_seq in
  s.sp_seq <- seq + 1;
  Atomic.incr total_seq;
  let line =
    Printf.sprintf "{\"seq\":%d,\"ts_ns\":%d%s\n" seq (Clock.now_ns ()) payload
  in
  (try
     output_string s.sp_oc line;
     flush s.sp_oc
   with Sys_error _ -> ());
  Mutex.unlock s.sp_mutex

let publish ev =
  match Atomic.get spool_state with
  | Some s -> spool_write s (stamped_payload ev)
  | None -> (
      match Atomic.get state with
      | None -> ()
      | Some b -> enqueue b (stamped_payload ev))

(* Republish a pre-rendered payload (everything after the "ts_ns" field)
   onto the bus under a fresh sequence number — how the tailer folds
   spooled worker events into the parent stream. *)
let publish_payload payload =
  match Atomic.get state with
  | None -> ()
  | Some b -> enqueue b payload

(* --- writer thread ---------------------------------------------------- *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let writer_loop b =
  let finished = ref false in
  while not !finished do
    Mutex.lock b.mutex;
    while b.len = 0 && not b.stopping do
      Condition.wait b.cond b.mutex
    done;
    let n = b.len in
    let batch = Array.init n (fun i -> b.ring.((b.head + i) mod b.capacity)) in
    b.head <- (b.head + n) mod b.capacity;
    b.len <- 0;
    let peers = b.peers in
    let file = b.file in
    if b.stopping && n = 0 then finished := true;
    Mutex.unlock b.mutex;
    if n > 0 then begin
      let buf = Buffer.create (n * 160) in
      Array.iter
        (fun e ->
          Buffer.add_string buf
            (Printf.sprintf "{\"seq\":%d,\"ts_ns\":%d%s\n" e.e_seq e.e_ts
               e.e_payload))
        batch;
      let text = Buffer.contents buf in
      (match file with
      | Some oc -> ( try output_string oc text; flush oc with Sys_error _ -> ())
      | None -> ());
      let bytes = Bytes.of_string text in
      let dead =
        List.filter
          (fun fd ->
            match write_all fd bytes with
            | () -> false
            | exception _ -> true)
          peers
      in
      if dead <> [] then begin
        Mutex.lock b.mutex;
        b.peers <- List.filter (fun fd -> not (List.memq fd dead)) b.peers;
        Mutex.unlock b.mutex;
        List.iter (fun fd -> try Unix.close fd with _ -> ()) dead
      end
    end
  done

(* Polling accept: a thread parked in a blocking accept() is not
   reliably woken when another thread closes the listen fd, so the
   acceptor polls and watches the stopping flag instead. *)
let accept_loop b fd =
  Unix.set_nonblock fd;
  let running = ref true in
  while !running do
    (match Unix.accept fd with
    | c, _ ->
        (try Unix.clear_nonblock c with _ -> ());
        (* a peer that stops reading must never stall the writer thread
           for long: bound the send and drop the peer on timeout *)
        (try Unix.setsockopt_float c Unix.SO_SNDTIMEO 0.5 with _ -> ());
        Mutex.lock b.mutex;
        b.peers <- c :: b.peers;
        Mutex.unlock b.mutex
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Thread.delay 0.05
    | exception _ -> running := false);
    Mutex.lock b.mutex;
    if b.stopping then running := false;
    Mutex.unlock b.mutex
  done

(* --- lifecycle -------------------------------------------------------- *)

let ensure_bus capacity =
  match Atomic.get state with
  | Some b -> b
  | None ->
      let capacity = max 1 capacity in
      let b =
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          capacity;
          ring = Array.make capacity { e_seq = 0; e_ts = 0; e_payload = "" };
          head = 0;
          len = 0;
          next_seq = 0;
          stopping = false;
          file = None;
          listen_fd = None;
          sock_path = None;
          peers = [];
          writer = None;
          acceptor = None;
        }
      in
      (* each stream numbers from 0, so gaps measure this stream's drops *)
      Atomic.set total_seq 0;
      Atomic.set total_dropped 0;
      b.writer <- Some (Thread.create writer_loop b);
      Atomic.set state (Some b);
      b

let to_file ?(capacity = default_capacity) path =
  let b = ensure_bus capacity in
  let oc = open_out path in
  Mutex.lock b.mutex;
  let old = b.file in
  b.file <- Some oc;
  Mutex.unlock b.mutex;
  Option.iter (fun oc -> try close_out oc with Sys_error _ -> ()) old

let listen_unix ?(capacity = default_capacity) path =
  let b = ensure_bus capacity in
  (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  Mutex.lock b.mutex;
  b.listen_fd <- Some fd;
  b.sock_path <- Some path;
  Mutex.unlock b.mutex;
  b.acceptor <- Some (Thread.create (accept_loop b) fd)

(* Fork safety: a forked child inherits the bus record but not the
   writer/acceptor threads, and shares the sinks' file offsets with the
   parent.  Publishing from the child would queue into a ring nobody
   drains (or worse, interleave bytes into the parent's stream), so a
   child must disown the bus before doing anything else — one atomic
   store, no locks taken, safe even if the fork happened while another
   thread held the ring mutex.  An inherited spool channel is equally
   foreign (its buffer and file offset belong to the process that opened
   it) and is forgotten the same way. *)
let detach () =
  Atomic.set state None;
  Atomic.set spool_state None;
  clear_context ()

let spool ~path ~worker ~job =
  Atomic.set state None;
  (match Atomic.exchange spool_state None with
  | Some s -> ( try close_out s.sp_oc with Sys_error _ -> ())
  | None -> ());
  set_context ~worker ~job;
  let oc = open_out path in
  (* a spool is its own stream: seq dense from 0 per worker *)
  Atomic.set total_seq 0;
  Atomic.set total_dropped 0;
  Atomic.set spool_state
    (Some { sp_mutex = Mutex.create (); sp_oc = oc; sp_seq = 0 })

(* Forking while the bus threads are live is unsafe: on a busy bus the
   writer is parked in (or racing through) a runtime condition wait at
   almost any instant, and a child forked at that moment inherits a
   poisoned systhreads state — it runs fine until its first forced
   yield, then blocks forever on a condition variable nobody will ever
   signal.  [pause] drains the ring and joins the writer and acceptor
   threads while keeping every sink open (file channel, listen fd,
   connected peers, sequence counter); [resume] restarts the threads.
   Events published in between simply accumulate in the ring.  A parent
   about to fork brackets the fork with the pair; both are no-ops when
   no bus is active. *)
let pause () =
  match Atomic.get state with
  | None -> ()
  | Some b ->
      Mutex.lock b.mutex;
      b.stopping <- true;
      Condition.broadcast b.cond;
      Mutex.unlock b.mutex;
      Option.iter Thread.join b.writer;
      Option.iter Thread.join b.acceptor;
      b.writer <- None;
      b.acceptor <- None

let resume () =
  match Atomic.get state with
  | None -> ()
  | Some b ->
      Mutex.lock b.mutex;
      b.stopping <- false;
      Mutex.unlock b.mutex;
      b.writer <- Some (Thread.create writer_loop b);
      match b.listen_fd with
      | Some fd -> b.acceptor <- Some (Thread.create (accept_loop b) fd)
      | None -> ()

let close () =
  (match Atomic.exchange spool_state None with
  | Some s ->
      Mutex.lock s.sp_mutex;
      (try close_out s.sp_oc with Sys_error _ -> ());
      Mutex.unlock s.sp_mutex;
      clear_context ()
  | None -> ());
  match Atomic.exchange state None with
  | None -> ()
  | Some b ->
      Mutex.lock b.mutex;
      b.stopping <- true;
      Condition.broadcast b.cond;
      Mutex.unlock b.mutex;
      (* the writer drains whatever is still in the ring before exiting;
         the acceptor notices the stopping flag on its next poll tick *)
      Option.iter Thread.join b.writer;
      Option.iter Thread.join b.acceptor;
      (match b.listen_fd with
      | Some fd -> ( try Unix.close fd with _ -> ())
      | None -> ());
      (match b.file with
      | Some oc -> ( try close_out oc with Sys_error _ -> ())
      | None -> ());
      List.iter (fun fd -> try Unix.close fd with _ -> ()) b.peers;
      (match b.sock_path with
      | Some p -> ( try Sys.remove p with Sys_error _ -> ())
      | None -> ())

(* --- re-sequencing spooled lines -------------------------------------- *)

(* Turn one spool line back into a bus payload: strip the worker-local
   "seq"/"ts_ns" prefix (the bus assigns fresh ones) and append the
   worker-local sequence number as "oseq", so per-origin density is
   still checkable on the merged stream.  Pure string surgery — the
   tailer must not pay a JSON parse per relayed event. *)
let respool_line line =
  let n = String.length line in
  let pfx = "{\"seq\":" in
  let plen = String.length pfx in
  if n < plen + 2 || String.sub line 0 plen <> pfx || line.[n - 1] <> '}' then
    None
  else
    match String.index_from_opt line plen ',' with
    | None -> None
    | Some c1 -> (
        match int_of_string_opt (String.sub line plen (c1 - plen)) with
        | None -> None
        | Some oseq ->
            let tpfx = "\"ts_ns\":" in
            let tlen = String.length tpfx in
            let tstart = c1 + 1 in
            if n < tstart + tlen || String.sub line tstart tlen <> tpfx then
              None
            else
              (match String.index_from_opt line (tstart + tlen) ',' with
              | None -> None
              | Some c2 ->
                  let body = String.sub line c2 (n - 1 - c2) in
                  Some (oseq, Printf.sprintf "%s,\"oseq\":%d}" body oseq)))

(* --- reading a stream back -------------------------------------------- *)

type parsed = {
  p_seq : int;
  p_ts_ns : int;
  p_event : event;
  p_origin : origin option;
}

let parse_line line =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* j = Json.parse line in
  let req name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "events: missing field %S" name)
  in
  let int_f name =
    let* v = req name in
    match Json.int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "events: field %S is not an int" name)
  in
  let str_f name =
    let* v = req name in
    match Json.str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "events: field %S is not a string" name)
  in
  let flt_f name =
    let* v = req name in
    match Json.num v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "events: field %S is not a number" name)
  in
  let* seq = int_f "seq" in
  let* ts = int_f "ts_ns" in
  let* ty = str_f "type" in
  let* ev =
    match ty with
    | "campaign_started" ->
        let* design = str_f "design" in
        let* faults = int_f "faults" in
        let* workers = int_f "workers" in
        Ok (Campaign_started { design; faults; workers })
    | "campaign_progress" ->
        let* design = str_f "design" in
        let* completed = int_f "completed" in
        let* total = int_f "total" in
        let* wrong = int_f "wrong" in
        Ok (Campaign_progress { design; completed; total; wrong })
    | "campaign_ci" ->
        let* design = str_f "design" in
        let* n = int_f "n" in
        let* wrong = int_f "wrong" in
        let* confidence = flt_f "confidence" in
        let* lo = flt_f "lo" in
        let* hi = flt_f "hi" in
        Ok (Campaign_ci { design; n; wrong; confidence; lo; hi })
    | "campaign_stopped" ->
        let* design = str_f "design" in
        let* requested = int_f "requested" in
        let* injected = int_f "injected" in
        let* wrong = int_f "wrong" in
        let* wall_ns = int_f "wall_ns" in
        Ok (Campaign_stopped { design; requested; injected; wrong; wall_ns })
    | "campaign_detection" ->
        let* design = str_f "design" in
        let* silent_correct = int_f "silent_correct" in
        let* detected_corrected = int_f "detected_corrected" in
        let* detected_wrong = int_f "detected_wrong" in
        let* silent_wrong = int_f "silent_wrong" in
        Ok
          (Campaign_detection
             { design; silent_correct; detected_corrected; detected_wrong;
               silent_wrong })
    | "batch_dispatched" ->
        let* design = str_f "design" in
        let* lanes = int_f "lanes" in
        Ok (Batch_dispatched { design; lanes })
    | "worker_heartbeat" ->
        let* worker = int_f "worker" in
        let* busy_ns = int_f "busy_ns" in
        let* idle_ns = int_f "idle_ns" in
        let* items = int_f "items" in
        Ok (Worker_heartbeat { worker; busy_ns; idle_ns; items })
    | "plan_paths" ->
        let* design = str_f "design" in
        let* silent = int_f "silent" in
        let* patched = int_f "patched" in
        let* rerouted = int_f "rerouted" in
        let* rebuilt = int_f "rebuilt" in
        let* diffed = int_f "diffed" in
        let* converged = int_f "converged" in
        let* batched = int_f "batched" in
        Ok
          (Plan_paths
             { design; silent; patched; rerouted; rebuilt; diffed; converged; batched })
    | "manifest_written" ->
        let* design = str_f "design" in
        let* path = str_f "path" in
        Ok (Manifest_written { design; path })
    | "shard_done" ->
        let* design = str_f "design" in
        let* shard = int_f "shard" in
        let* lo = int_f "lo" in
        let* hi = int_f "hi" in
        let* wrong = int_f "wrong" in
        let* pending = int_f "pending" in
        Ok (Shard_done { design; shard; lo; hi; wrong; pending })
    | "job_queued" ->
        let* job = str_f "job" in
        let* design = str_f "design" in
        Ok (Job_queued { job; design })
    | "job_started" ->
        let* job = str_f "job" in
        let* design = str_f "design" in
        Ok (Job_started { job; design })
    | "job_done" ->
        let* job = str_f "job" in
        let* design = str_f "design" in
        let* injected = int_f "injected" in
        let* wrong = int_f "wrong" in
        let* wall_ns = int_f "wall_ns" in
        Ok (Job_done { job; design; injected; wrong; wall_ns })
    | other -> Error (Printf.sprintf "events: unknown event type %S" other)
  in
  let origin =
    match Json.member "origin" j with
    | None -> None
    | Some o ->
        let geti k d =
          match Option.bind (Json.member k o) Json.int with
          | Some v -> v
          | None -> d
        in
        let gets k d =
          match Option.bind (Json.member k o) Json.str with
          | Some v -> v
          | None -> d
        in
        (* relayed lines carry the worker-local seq as top-level "oseq";
           a raw spool line's own seq is already worker-local *)
        let o_seq =
          match Option.bind (Json.member "oseq" j) Json.int with
          | Some v -> v
          | None -> seq
        in
        Some
          {
            o_pid = geti "pid" 0;
            o_worker = geti "worker" 0;
            o_shard = geti "shard" (-1);
            o_job = gets "job" "";
            o_seq;
          }
  in
  Ok { p_seq = seq; p_ts_ns = ts; p_event = ev; p_origin = origin }
