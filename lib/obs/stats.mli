(** Campaign statistics: binomial confidence intervals, two-campaign
    compatibility tests, and the CI-width sequential stopping rule.

    A fault-injection campaign estimates a wrong-answer {e rate} from [k]
    wrong answers in [n] injected faults — a binomial proportion.  The
    paper's Table 3 rates (97.10 / 4.03 / 0.98 / 1.56 / 12.60 %) are
    point estimates of exactly this kind; everything here exists to say
    how much those points can be trusted and whether two of them differ.

    All functions are pure, allocation-light and domain-safe. *)

type interval = {
  lo : float;
  hi : float;
}
(** A two-sided confidence interval on a proportion, both ends in
    [0, 1]. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_quantile : float -> float
(** Inverse of {!normal_cdf} on (0, 1) (Acklam's approximation plus one
    Halley refinement; absolute error well under 1e-9).  Raises
    [Invalid_argument] outside (0, 1). *)

val z_of : float -> float
(** [z_of confidence] is the two-sided critical value: [z_of 0.95] ≈
    1.95996.  [confidence] must be in (0, 1). *)

val wilson : ?confidence:float -> n:int -> k:int -> unit -> interval
(** Wilson score interval for [k] successes in [n] trials (default 95 %).
    Never degenerate at [k = 0] or [k = n], which is what a campaign
    needs: a TMR design with zero observed wrong answers still gets a
    finite upper bound.  [n <= 0] yields the vacuous [0, 1]. *)

val clopper_pearson : ?confidence:float -> n:int -> k:int -> unit -> interval
(** Exact (conservative) Clopper–Pearson interval, via the regularized
    incomplete beta function.  Always at least as wide as {!wilson};
    guaranteed coverage at any [n].  [n <= 0] yields [0, 1]. *)

val overlap : interval -> interval -> bool

val two_proportion_z : n1:int -> k1:int -> n2:int -> k2:int -> float
(** Two-proportion z statistic with pooled variance: positive when
    campaign 1's rate is higher.  0 when either [n] is non-positive or
    the pooled variance vanishes (both rates 0 or both 1). *)

val p_value : float -> float
(** Two-sided p-value of a z statistic. *)

val compatible :
  ?confidence:float -> n1:int -> k1:int -> n2:int -> k2:int -> unit -> bool
(** Are two campaigns' wrong-answer rates statistically compatible at the
    given confidence (default 95 %)?  True iff their Wilson intervals
    overlap {e and} the two-proportion z statistic stays below the
    critical value — the conjunction is stricter than either test alone
    and is what the regression report uses. *)

(** {1 Sequential stopping} *)

type stop_rule = {
  sr_confidence : float;  (** CI confidence level, e.g. 0.95 *)
  sr_half_width : float;
      (** target CI half-width on the rate, as a fraction (0.005 = ±0.5
          percentage points) *)
  sr_min_n : int;  (** never stop before this many faults *)
}
(** Stop a campaign once the wrong-answer rate is known to ± half-width:
    checked against the Wilson interval over the injected prefix. *)

val stop_rule :
  ?confidence:float -> ?min_n:int -> half_width:float -> unit -> stop_rule
(** Defaults: 95 % confidence, [min_n] 100. *)

val should_stop : stop_rule -> n:int -> k:int -> bool
(** [should_stop rule ~n ~k]: has the Wilson CI of [k]/[n] shrunk to the
    requested half-width (and [n >= sr_min_n])? *)
