(** Event-stream aggregation behind [tmrtool watch].

    Feed parsed {!Events} lines (from a JSONL file or a live socket) in
    stream order; the state tracks every campaign seen (multi-campaign
    streams render one row each), per-worker heartbeats, batch
    occupancy and stream health (sequence gaps = dropped events).

    The wrong-rate confidence interval is recomputed from the event
    counts with {!Stats.wilson} — the same code the injection engine
    uses — so a finished stream reproduces the engine's final
    n/wrong/CI exactly, with no access to the run itself. *)

type t

val create : unit -> t

val feed : t -> Events.parsed -> unit
(** Ingest one event.  Events may arrive for several campaigns
    interleaved; sequence numbers must be fed in stream order for gap
    accounting to be exact. *)

val finished : t -> bool
(** At least one campaign seen, and every campaign seen has stopped. *)

val events_seen : t -> int

val gaps : t -> int
(** Events missing from the stream (sum of sequence-number gaps). *)

val render : ?confidence:float -> t -> string
(** Multi-campaign dashboard: one block per campaign (progress bar,
    rate, ETA, wrong rate ± Wilson CI, plan-path counts, batch
    occupancy), worker heartbeat rows, and a stream-health footer. *)

val summary_json : ?confidence:float -> t -> string
(** JSON array, one object per campaign, with the same fields and
    number formatting as [tmrtool inject --json]
    ([design]/[requested]/[injected]/[wrong]/[wrong_percent]/[ci]) so
    the two can be compared byte-for-byte field-wise. *)
