(** Event-stream aggregation behind [tmrtool watch].

    Feed parsed {!Events} lines (from a JSONL file or a live socket) in
    stream order; the state tracks every campaign seen (multi-campaign
    streams render one row each), per-worker heartbeats, batch
    occupancy and stream health (sequence gaps = dropped events).

    The wrong-rate confidence interval is recomputed from the event
    counts with {!Stats.wilson} — the same code the injection engine
    uses — so a finished stream reproduces the engine's final
    n/wrong/CI exactly, with no access to the run itself. *)

type t

val create : unit -> t

val feed : t -> Events.parsed -> unit
(** Ingest one event.  Events may arrive for several campaigns
    interleaved; sequence numbers must be fed in stream order for gap
    accounting to be exact.

    Origin-stamped campaign events (from the workers of a forked
    [--procs] run, relayed onto the merged stream) are {e shard-local}:
    they feed the per-worker fleet table and in-flight progress, while
    the origin-less [campaign_started] / [campaign_stopped] published
    by the sharded driver stay authoritative for the totals and the
    final verdict — so {!summary_json} of a merged fleet stream still
    reproduces the engine's exact n/wrong/CI. *)

val finished : t -> bool
(** At least one campaign seen, and every campaign seen has stopped. *)

val events_seen : t -> int

val gaps : t -> int
(** Events missing from the stream (sum of sequence-number gaps). *)

val fleet_workers : t -> int
(** Distinct origin pids seen — forked worker processes. *)

val origin_gaps : t -> int
(** Worker-local sequence numbers never observed, summed over the
    fleet: events lost between a worker's spool and the merged
    stream. *)

val render : ?confidence:float -> ?worker_timeout:float -> t -> string
(** Multi-campaign dashboard: one block per campaign (progress bar,
    rate, ETA, wrong rate ± Wilson CI, plan-path counts, batch
    occupancy), a per-process fleet table on merged [--procs] streams
    (shards done, in-flight progress, faults/s, spool health), worker
    heartbeat rows, and a stream-health footer.

    [worker_timeout] (seconds): while the run is live, a fleet worker
    whose latest event is older than this (against the newest stream
    timestamp) is flagged [STALE] — a wedged or killed process.  No
    flagging once every campaign has stopped. *)

val summary_json : ?confidence:float -> t -> string
(** JSON array, one object per campaign, with the same fields and
    number formatting as [tmrtool inject --json]
    ([design]/[requested]/[injected]/[wrong]/[wrong_percent]/[ci]) so
    the two can be compared byte-for-byte field-wise. *)
