(** Process-global, domain-safe metrics registry.

    Three instrument kinds: monotonic {e counters}, set-wins {e gauges},
    and log-bucketed latency {e histograms}.  Recording is always on and
    is designed to be cheap enough for per-fault hot paths: every
    instrument is sharded per domain (slot = domain id mod shard count),
    so concurrent recorders hit disjoint atomics and never contend, and
    the record path allocates nothing.  Shards are merged only by
    {!snapshot}; nothing is formatted and no I/O happens unless a caller
    asks for a snapshot — with no consumer, telemetry costs one atomic
    add per event.

    Instruments are interned by name: calling {!counter} twice with the
    same name returns the same instrument.  Create instruments once at
    module initialisation and keep the handle; the registry lookup takes
    a lock and is not meant for hot paths. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Intern (or create) the counter [name]. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to the counter.  Domain-safe, exact. *)

val set : gauge -> float -> unit
(** Last write wins. *)

val observe : histogram -> int -> unit
(** Record one non-negative sample (conventionally nanoseconds).
    Samples [<= 0] land in the first bucket.  Domain-safe, exact counts
    and sums; the bucket resolution is [2^(1/3)] (~26%), which bounds
    the percentile error. *)

(** {1 Snapshots} *)

type hist_summary = {
  count : int;
  sum : int;
  mean : float;  (** [sum/count], exact; 0 when empty *)
  p50 : float;
  p95 : float;
  p99 : float;
      (** upper bound of the bucket holding the percentile rank — an
          over-estimate by at most the bucket ratio (~26%); 0 when the
          histogram is empty *)
  min : int;
  max : int;
      (** exact smallest/largest sample ever observed (not
          bucket-derived); both 0 when the histogram is empty *)
  buckets : (int * int) array;
      (** occupied buckets only, ascending, as [(upper_bound, count)];
          counts sum to [count].  The catch-all last bucket's bound is
          [max_int].  In the JSON snapshot this renders as
          [[[bound, count], ...]] with the catch-all bound as [-1], so
          external tools can re-plot the full latency distribution. *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}
(** All association lists are sorted by instrument name. *)

val snapshot : unit -> snapshot
(** Merge every shard of every registered instrument.  Concurrent
    recorders may land either side of the merge; each event is counted
    exactly once overall. *)

val percentile : histogram -> float -> float
(** [percentile h q] with [q] in [0,1], against the live shards (merged
    on the fly).  Mostly for tests; prefer {!snapshot}. *)

val reset : unit -> unit
(** Zero every registered instrument (instruments stay registered).
    For benchmarks that isolate one phase; not domain-safe against
    concurrent recorders. *)

val to_json_string : ?indent:int -> snapshot -> string
(** Render as a JSON object [{"counters": {...}, "gauges": {...},
    "histograms": {...}}].  [indent] (default 2) is the number of spaces
    per nesting level. *)

val write_file : string -> unit
(** [write_file path] = take a snapshot and write its JSON to [path].
    Atomic (tmp + rename in the same directory): a concurrent reader
    sees either the previous snapshot or the new one, never a torn
    file — forked workers rewrite their snapshot at shard boundaries
    while the parent folds the files into live scrapes. *)

(** {1 Cross-process aggregation}

    Forked campaign workers cannot share the in-memory registry, so
    each serializes its snapshot with {!write_file} and the parent
    reads the files back and folds them over its own live snapshot —
    fleet-wide totals from per-process parts. *)

val of_json_string : string -> (snapshot, string) result
(** Parse a snapshot back from its {!to_json_string} rendering. *)

val read_file : string -> (snapshot, string) result
(** Read and parse one snapshot file. *)

val merge : snapshot -> snapshot -> snapshot
(** Fold two snapshots: counters add; gauges keep the right operand's
    value (last-write-wins across processes); histograms sum counts
    and bucket contents, keep exact extrema, and recompute mean and
    percentiles from the merged buckets. *)
