let sink = Jsonl.make ()
let close () = Jsonl.close sink
let to_file path = Jsonl.to_file sink path
let detach () = Jsonl.detach sink
let enabled () = Jsonl.enabled sink
let escape = Jsonl.escape

(* Relay an already-rendered span line (e.g. read back from a forked
   worker's trace file) into this process's sink verbatim. *)
let emit_raw line = Jsonl.emit sink line

let emit_complete ?(args = []) ~name ~start_ns ~dur_ns () =
  if Jsonl.enabled sink then begin
    (* format outside the lock; the sink writes the whole line in one
       call so worker domains never interleave *)
    let b = Buffer.create 160 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"tmr\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d"
         (escape name)
         (float_of_int start_ns /. 1e3)
         (float_of_int (max 0 dur_ns) /. 1e3)
         (* read fresh each time (it is one vsyscall): a cached pid
            captured before [fork] would mislabel child spans *)
         (Unix.getpid ())
         ((Domain.self () :> int)));
    if args <> [] then begin
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
        args;
      Buffer.add_char b '}'
    end;
    Buffer.add_char b '}';
    Jsonl.emit sink (Buffer.contents b)
  end

let with_span ?args name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        emit_complete ?args ~name ~start_ns:t0
          ~dur_ns:(Clock.now_ns () - t0) ())
      f
  end
