type sink = { oc : out_channel; mutex : Mutex.t }

let sink : sink option Atomic.t = Atomic.make None

let pid = lazy (Unix.getpid ())

let close () =
  match Atomic.exchange sink None with
  | None -> ()
  | Some s ->
      Mutex.lock s.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.mutex)
        (fun () -> close_out s.oc)

let to_file path =
  let oc = open_out path in
  close ();
  Atomic.set sink (Some { oc; mutex = Mutex.create () })

let enabled () = Atomic.get sink <> None

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_complete ?(args = []) ~name ~start_ns ~dur_ns () =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      (* format outside the lock; write the whole line in one call *)
      let b = Buffer.create 160 in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"tmr\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d"
           (escape name)
           (float_of_int start_ns /. 1e3)
           (float_of_int (max 0 dur_ns) /. 1e3)
           (Lazy.force pid)
           ((Domain.self () :> int)));
      if args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
          args;
        Buffer.add_char b '}'
      end;
      Buffer.add_string b "}\n";
      let line = Buffer.contents b in
      Mutex.lock s.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.mutex)
        (fun () ->
          (* the sink may have been swapped/closed since the atomic read;
             the old channel object is still valid to write to only if
             open — guard with the registered check *)
          try output_string s.oc line
          with Sys_error _ -> ())

let with_span ?args name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        emit_complete ?args ~name ~start_ns:t0
          ~dur_ns:(Clock.now_ns () - t0) ())
      f
  end
