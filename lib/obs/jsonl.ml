type sink = { oc : out_channel; mutex : Mutex.t }
type t = sink option Atomic.t

let make () : t = Atomic.make None

let close (t : t) =
  match Atomic.exchange t None with
  | None -> ()
  | Some s ->
      Mutex.lock s.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.mutex)
        (fun () -> close_out s.oc)

let to_file t path =
  let oc = open_out path in
  close t;
  Atomic.set t (Some { oc; mutex = Mutex.create () })

(* Forget the destination without flushing or closing it: a forked
   child shares the channel's buffer and file offset with the parent,
   so touching it at all would corrupt the parent's stream. *)
let detach (t : t) = Atomic.set t None

let enabled t = Atomic.get t <> None

let emit t line =
  match Atomic.get t with
  | None -> ()
  | Some s ->
      Mutex.lock s.mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.mutex)
        (fun () ->
          (* the sink may have been swapped/closed since the atomic
             read — a write to the stale channel then raises *)
          try
            output_string s.oc line;
            output_char s.oc '\n'
          with Sys_error _ -> ())

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
