(* Sharded instruments: one atomic cell (or bucket array) per shard, shard
   picked by domain id.  Recorders therefore never share a cache line with
   another domain in the common case, and even on a slot collision
   [Atomic.fetch_and_add] keeps the totals exact.  The shard count is a
   power of two so the slot computation is a mask, not a division. *)

let nshards = 32

let slot () = (Domain.self () :> int) land (nshards - 1)

(* --- log buckets ----------------------------------------------------- *)

(* Geometric buckets with ratio 2^(1/3) (~1.26).  128 buckets cover
   [1, 2^43) ns — about 2.4 hours — before the catch-all last bucket.
   Small bounds are deduplicated by bumping (1,2,3,4,5,6,8,10,13,...). *)

let nbuckets = 128

let bounds =
  let b = Array.make nbuckets 0 in
  let prev = ref 0 in
  for i = 0 to nbuckets - 1 do
    let v = Float.to_int (Float.round (Float.pow 2.0 (float_of_int (i + 1) /. 3.0))) in
    let v = if v <= !prev then !prev + 1 else v in
    b.(i) <- v;
    prev := v
  done;
  b.(nbuckets - 1) <- max_int;
  b

(* smallest bucket whose upper bound is >= v *)
let bucket_of v =
  if v <= bounds.(0) then 0
  else begin
    let lo = ref 0 and hi = ref (nbuckets - 1) in
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if bounds.(mid) < v then lo := mid else hi := mid
    done;
    !hi
  end

(* --- instruments ----------------------------------------------------- *)

type counter = { c_shards : int Atomic.t array }
type gauge = { g_cell : float Atomic.t }

type histogram = {
  h_buckets : int Atomic.t array array;  (* shard -> bucket -> count *)
  h_count : int Atomic.t array;  (* shard *)
  h_sum : int Atomic.t array;  (* shard *)
  h_min : int Atomic.t array;  (* shard; max_int = no sample yet *)
  h_max : int Atomic.t array;  (* shard; min_int = no sample yet *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let intern name make =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> i
      | None ->
          let i = make () in
          Hashtbl.replace registry name i;
          i)

let atomic_row n = Array.init n (fun _ -> Atomic.make 0)
let sentinel_row n v = Array.init n (fun _ -> Atomic.make v)

let counter name =
  match intern name (fun () -> Counter { c_shards = atomic_row nshards }) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)

let gauge name =
  match intern name (fun () -> Gauge { g_cell = Atomic.make 0.0 }) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)

let histogram name =
  match
    intern name (fun () ->
        Histogram
          {
            h_buckets = Array.init nshards (fun _ -> atomic_row nbuckets);
            h_count = atomic_row nshards;
            h_sum = atomic_row nshards;
            h_min = sentinel_row nshards max_int;
            h_max = sentinel_row nshards min_int;
          })
  with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_shards.(slot ()) by)
let set g v = Atomic.set g.g_cell v

(* CAS races only against same-slot recorders (rare: slots are
   per-domain) and converges in one round trip in the common case where
   the extremum doesn't move. *)
let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let observe h v =
  let s = slot () in
  ignore (Atomic.fetch_and_add h.h_buckets.(s).(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.h_count.(s) 1);
  ignore (Atomic.fetch_and_add h.h_sum.(s) (max 0 v));
  atomic_min h.h_min.(s) v;
  atomic_max h.h_max.(s) v

(* --- snapshots ------------------------------------------------------- *)

type hist_summary = {
  count : int;
  sum : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  min : int;
  max : int;
  buckets : (int * int) array;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let sum_row row = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 row

let merge_buckets h =
  let merged = Array.make nbuckets 0 in
  Array.iter
    (fun shard ->
      Array.iteri (fun i a -> merged.(i) <- merged.(i) + Atomic.get a) shard)
    h.h_buckets;
  merged

(* q-th percentile as the upper bound of the bucket holding the q-rank
   sample (nearest-rank definition: rank = ceil (q * count), >= 1). *)
let percentile_of_buckets merged total q =
  if total = 0 then 0.0
  else begin
    let rank = max 1 (min total (Float.to_int (Float.ceil (q *. float_of_int total)))) in
    let i = ref 0 and acc = ref 0 in
    while !acc + merged.(!i) < rank do
      acc := !acc + merged.(!i);
      i := !i + 1
    done;
    (* the last bucket is a catch-all; report the largest finite bound *)
    float_of_int (if !i = nbuckets - 1 then bounds.(nbuckets - 2) else bounds.(!i))
  end

(* Keep only occupied buckets: 128 mostly-zero rows per histogram would
   swamp the snapshot, and the boundaries are reconstructible from the
   (bound, count) pairs alone. *)
let occupied_buckets merged =
  let occupied = ref [] in
  for i = nbuckets - 1 downto 0 do
    if merged.(i) > 0 then occupied := (bounds.(i), merged.(i)) :: !occupied
  done;
  Array.of_list !occupied

let summarize h =
  let merged = merge_buckets h in
  let count = sum_row h.h_count in
  let sum = sum_row h.h_sum in
  let fold f init row = Array.fold_left (fun acc a -> f acc (Atomic.get a)) init row in
  let mn = fold min max_int h.h_min and mx = fold max min_int h.h_max in
  {
    count;
    sum;
    mean = (if count = 0 then 0.0 else float_of_int sum /. float_of_int count);
    p50 = percentile_of_buckets merged count 0.50;
    p95 = percentile_of_buckets merged count 0.95;
    p99 = percentile_of_buckets merged count 0.99;
    (* exact observed extrema, unlike the bucket-derived percentiles;
       0 (the sentinels) when no sample was ever recorded *)
    min = (if mn = max_int then 0 else mn);
    max = (if mx = min_int then 0 else mx);
    buckets = occupied_buckets merged;
  }

let percentile h q =
  let merged = merge_buckets h in
  percentile_of_buckets merged (Array.fold_left ( + ) 0 merged) q

let snapshot () =
  let items =
    Mutex.lock registry_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_mutex)
      (fun () -> Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [])
  in
  let items = List.sort (fun (a, _) (b, _) -> compare a b) items in
  List.fold_right
    (fun (name, i) acc ->
      match i with
      | Counter c -> { acc with counters = (name, sum_row c.c_shards) :: acc.counters }
      | Gauge g -> { acc with gauges = (name, Atomic.get g.g_cell) :: acc.gauges }
      | Histogram h ->
          { acc with histograms = (name, summarize h) :: acc.histograms })
    items
    { counters = []; gauges = []; histograms = [] }

let reset () =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> Array.iter (fun a -> Atomic.set a 0) c.c_shards
          | Gauge g -> Atomic.set g.g_cell 0.0
          | Histogram h ->
              Array.iter (fun a -> Atomic.set a 0) h.h_count;
              Array.iter (fun a -> Atomic.set a 0) h.h_sum;
              Array.iter (fun a -> Atomic.set a max_int) h.h_min;
              Array.iter (fun a -> Atomic.set a min_int) h.h_max;
              Array.iter (Array.iter (fun a -> Atomic.set a 0)) h.h_buckets)
        registry)

(* --- JSON ------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_json_string ?(indent = 2) snap =
  let b = Buffer.create 1024 in
  let pad n = String.make (n * indent) ' ' in
  let obj level fields =
    if fields = [] then Buffer.add_string b "{}"
    else begin
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, emit) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (level + 1));
          Buffer.add_string b ("\"" ^ escape k ^ "\": ");
          emit ())
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad level);
      Buffer.add_char b '}'
    end
  in
  let summary_fields level (s : hist_summary) =
    obj level
      [
        ("count", fun () -> Buffer.add_string b (string_of_int s.count));
        ("sum", fun () -> Buffer.add_string b (string_of_int s.sum));
        ("mean", fun () -> Buffer.add_string b (json_float s.mean));
        ("p50", fun () -> Buffer.add_string b (json_float s.p50));
        ("p95", fun () -> Buffer.add_string b (json_float s.p95));
        ("p99", fun () -> Buffer.add_string b (json_float s.p99));
        ("min", fun () -> Buffer.add_string b (string_of_int s.min));
        ("max", fun () -> Buffer.add_string b (string_of_int s.max));
        ( "buckets",
          fun () ->
            (* [[upper_bound, count], ...] — occupied buckets only; the
               catch-all bucket's bound prints as -1 rather than
               max_int, which no JSON reader would survive. *)
            Buffer.add_char b '[';
            Array.iteri
              (fun i (bound, count) ->
                if i > 0 then Buffer.add_char b ',';
                let bound = if bound = max_int then -1 else bound in
                Buffer.add_string b (Printf.sprintf "[%d,%d]" bound count))
              s.buckets;
            Buffer.add_char b ']' );
      ]
  in
  obj 0
    [
      ( "counters",
        fun () ->
          obj 1
            (List.map
               (fun (k, v) ->
                 (k, fun () -> Buffer.add_string b (string_of_int v)))
               snap.counters) );
      ( "gauges",
        fun () ->
          obj 1
            (List.map
               (fun (k, v) -> (k, fun () -> Buffer.add_string b (json_float v)))
               snap.gauges) );
      ( "histograms",
        fun () ->
          obj 1
            (List.map
               (fun (k, s) -> (k, fun () -> summary_fields 2 s))
               snap.histograms) );
    ];
  Buffer.add_char b '\n';
  Buffer.contents b

(* Atomic (tmp + rename): forked workers rewrite their per-worker
   snapshot at every shard boundary while the parent folds the same
   files into its scrape responses, so a reader must never observe a
   half-written file. *)
let write_file path =
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json_string (snapshot ())));
  Sys.rename tmp path

(* --- reading snapshots back and folding them -------------------------- *)

let ( let* ) r f = Result.bind r f

let collect f items =
  List.fold_right
    (fun it acc ->
      let* acc = acc in
      let* v = f it in
      Ok (v :: acc))
    items (Ok [])

let summary_of_json name j =
  let int_f k =
    match Option.bind (Json.member k j) Json.int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram %S: missing int %S" name k)
  in
  let flt_f k =
    match Option.bind (Json.member k j) Json.num with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram %S: missing number %S" name k)
  in
  let* count = int_f "count" in
  let* sum = int_f "sum" in
  let* mean = flt_f "mean" in
  let* p50 = flt_f "p50" in
  let* p95 = flt_f "p95" in
  let* p99 = flt_f "p99" in
  let* min = int_f "min" in
  let* max = int_f "max" in
  let* buckets =
    match Json.member "buckets" j with
    | Some (Json.Arr items) ->
        collect
          (fun it ->
            match it with
            | Json.Arr [ bv; cv ] -> (
                match (Json.int bv, Json.int cv) with
                | Some b, Some c ->
                    (* the catch-all bound serializes as -1 *)
                    Ok ((if b = -1 then max_int else b), c)
                | _ ->
                    Error (Printf.sprintf "histogram %S: bad bucket pair" name))
            | _ -> Error (Printf.sprintf "histogram %S: bad bucket entry" name))
          items
    | _ -> Error (Printf.sprintf "histogram %S: missing buckets" name)
  in
  Ok { count; sum; mean; p50; p95; p99; min; max; buckets = Array.of_list buckets }

let of_json_string s =
  let* j = Json.parse s in
  let fields_of k =
    match Json.member k j with
    | Some (Json.Obj fields) -> Ok fields
    | None -> Ok []
    | Some _ -> Error (Printf.sprintf "metrics: %S is not an object" k)
  in
  let* counter_fields = fields_of "counters" in
  let* gauge_fields = fields_of "gauges" in
  let* hist_fields = fields_of "histograms" in
  let* counters =
    collect
      (fun (k, v) ->
        match Json.int v with
        | Some n -> Ok (k, n)
        | None -> Error (Printf.sprintf "counter %S is not an int" k))
      counter_fields
  in
  let* gauges =
    collect
      (fun (k, v) ->
        match Json.num v with
        | Some f -> Ok (k, f)
        | None -> Error (Printf.sprintf "gauge %S is not a number" k))
      gauge_fields
  in
  let* histograms =
    collect
      (fun (k, v) ->
        let* s = summary_of_json k v in
        Ok (k, s))
      hist_fields
  in
  Ok { counters; gauges; histograms }

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | body -> of_json_string body

(* union of two name-sorted association lists, combining on collision *)
let merge_assoc combine a b =
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
        if ka = kb then go ((ka, combine va vb) :: acc) ta tb
        else if ka < kb then go ((ka, va) :: acc) ta b
        else go ((kb, vb) :: acc) a tb
  in
  go [] a b

let merge_summary a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else begin
    let pairs =
      (* both bucket arrays ascend by bound (catch-all max_int last) *)
      let rec go acc xa xb =
        match (xa, xb) with
        | [], rest | rest, [] -> List.rev_append acc rest
        | (ba, ca) :: ta, (bb, cb) :: tb ->
            if ba = bb then go ((ba, ca + cb) :: acc) ta tb
            else if ba < bb then go ((ba, ca) :: acc) ta xb
            else go ((bb, cb) :: acc) xa tb
      in
      go [] (Array.to_list a.buckets) (Array.to_list b.buckets)
    in
    let count = a.count + b.count and sum = a.sum + b.sum in
    let pct q =
      let rank =
        max 1 (min count (Float.to_int (Float.ceil (q *. float_of_int count))))
      in
      let rec walk acc = function
        | [] -> 0.0
        | (bound, c) :: rest ->
            if acc + c >= rank then
              float_of_int
                (if bound = max_int then bounds.(nbuckets - 2) else bound)
            else walk (acc + c) rest
      in
      walk 0 pairs
    in
    {
      count;
      sum;
      mean = float_of_int sum /. float_of_int count;
      p50 = pct 0.50;
      p95 = pct 0.95;
      p99 = pct 0.99;
      min = min a.min b.min;
      max = max a.max b.max;
      buckets = Array.of_list pairs;
    }
  end

let merge a b =
  {
    counters = merge_assoc ( + ) a.counters b.counters;
    (* a gauge is a last-write-wins cell; across processes "the other
       snapshot's value" is as good a tiebreak as any, so the right
       operand (conventionally the fresher snapshot) wins *)
    gauges = merge_assoc (fun _ v -> v) a.gauges b.gauges;
    histograms = merge_assoc merge_summary a.histograms b.histograms;
  }
