(** Metrics exposition: Prometheus text format v0.0.4 over HTTP.

    {!render} turns the live {!Metrics} registry (plus event-bus
    liveness gauges from {!Events}) into the Prometheus text format, and
    {!listen} serves it from a single background thread so a running
    campaign can be scraped or curl-polled mid-flight:

    {v tmrtool inject --listen 9464 ...   # then
       curl http://127.0.0.1:9464/metrics v}

    The server is deliberately tiny: one thread, one connection at a
    time, [GET /metrics] (or [/]) plus a [GET /healthz] readiness
    probe.  Rendering takes a registry snapshot, so a scrape never
    blocks recorders. *)

val render : unit -> string
(** The current registry as Prometheus text format v0.0.4.  Metric
    names are sanitized (dots become underscores); histograms emit
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count] and
    exact [_min]/[_max] gauges; the event bus contributes
    [events_bus_published]/[events_bus_dropped]/[events_bus_last_seq]/
    [events_bus_clients].  When extra snapshot sources are registered
    ({!set_extra_snapshots}) they are folded in with {!Metrics.merge},
    so a distributed campaign scrape reports fleet-wide totals. *)

val set_extra_snapshots : (unit -> Metrics.snapshot list) option -> unit
(** Register (or clear, with [None]) a producer of additional metric
    snapshots folded into every {!render} — typically a reader over
    forked workers' on-disk snapshot files.  Exceptions from the
    producer are swallowed (the scrape then reports local data only). *)

val set_active_probe : (unit -> int) option -> unit
(** Register (or clear) the active-campaign counter reported by
    [/healthz].  Wired by the host binary, since this layer cannot
    depend on the campaign engine. *)

val healthz_body : unit -> string
(** The [/healthz] response body: one JSON object with [status],
    [uptime_s] (0 when no server runs), bus liveness
    ([enabled]/[published]/[dropped]/[clients]) and
    [active_campaigns].  Exposed for tests. *)

val listen : ?host:string -> int -> int
(** Bind [host] (default 127.0.0.1) at the given port, start the serve
    thread, and return the bound port — pass port 0 to let the kernel
    pick one.  At most one server per process; raises
    [Invalid_argument] if one is already running. *)

val stop : unit -> unit
(** Shut the server down and join its thread.  Idempotent. *)

val port : unit -> int option
(** The bound port while the server runs. *)
