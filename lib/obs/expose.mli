(** Metrics exposition: Prometheus text format v0.0.4 over HTTP.

    {!render} turns the live {!Metrics} registry (plus event-bus
    liveness gauges from {!Events}) into the Prometheus text format, and
    {!listen} serves it from a single background thread so a running
    campaign can be scraped or curl-polled mid-flight:

    {v tmrtool inject --listen 9464 ...   # then
       curl http://127.0.0.1:9464/metrics v}

    The server is deliberately tiny: one thread, one connection at a
    time, [GET /metrics] (or [/]) only.  Rendering takes a registry
    snapshot, so a scrape never blocks recorders. *)

val render : unit -> string
(** The current registry as Prometheus text format v0.0.4.  Metric
    names are sanitized (dots become underscores); histograms emit
    cumulative [_bucket{le="..."}] series plus [_sum]/[_count] and
    exact [_min]/[_max] gauges; the event bus contributes
    [events_bus_published]/[events_bus_dropped]/[events_bus_last_seq]/
    [events_bus_clients]. *)

val listen : ?host:string -> int -> int
(** Bind [host] (default 127.0.0.1) at the given port, start the serve
    thread, and return the bound port — pass port 0 to let the kernel
    pick one.  At most one server per process; raises
    [Invalid_argument] if one is already running. *)

val stop : unit -> unit
(** Shut the server down and join its thread.  Idempotent. *)

val port : unit -> int option
(** The bound port while the server runs. *)
