(** Typed, lock-light structured event bus for live campaign telemetry.

    Producers (Campaign, Pool, Store, tmrtool) publish typed events;
    a single writer thread renders them to JSONL and fans them out to
    the registered sinks — a file, a Unix-domain socket server, or
    both.  The design goal is that the fault loop never blocks on
    telemetry:

    - {!publish} only formats the payload and takes one short ring
      mutex; all I/O happens on the writer thread.
    - The ring is bounded.  When it is full the event is dropped and
      counted — its sequence number is still consumed, so a gap in the
      [seq] field of the stream is an exact record of what was lost.
    - Socket clients that stop reading are disconnected rather than
      back-pressuring the bus.

    Every line is one JSON object
    [{"seq":N,"ts_ns":T,"type":"...",...}] with [seq] dense from 0 per
    stream and [ts_ns] monotonic ({!Clock.now_ns}, read under the same
    lock that assigns [seq], so timestamp order matches sequence
    order).

    With no sink installed, {!publish} is one atomic load — the
    instrumented hot paths stay free. *)

type event =
  | Campaign_started of { design : string; faults : int; workers : int }
  | Campaign_progress of {
      design : string;
      completed : int;
      total : int;
      wrong : int;
    }
  | Campaign_ci of {
      design : string;
      n : int;
      wrong : int;
      confidence : float;
      lo : float;
      hi : float;
    }
  | Campaign_stopped of {
      design : string;
      requested : int;
      injected : int;
      wrong : int;
      wall_ns : int;
    }
  | Batch_dispatched of { design : string; lanes : int }
  | Worker_heartbeat of {
      worker : int;
      busy_ns : int;
      idle_ns : int;
      items : int;
    }
  | Plan_paths of {
      design : string;
      silent : int;
      patched : int;
      rerouted : int;
      rebuilt : int;
      diffed : int;
      converged : int;
      batched : int;
    }
  | Manifest_written of { design : string; path : string }
  | Shard_done of {
      design : string;
      shard : int;
      lo : int;  (** first fault index of the range (inclusive) *)
      hi : int;  (** last fault index of the range (exclusive) *)
      wrong : int;  (** wrong answers within the range *)
      pending : int;  (** ranges still queued or claimed *)
    }  (** one checkpointed shard of a distributed campaign completed *)
  | Job_queued of { job : string; design : string }
      (** a campaign job entered the [tmrtool serve] queue *)
  | Job_started of { job : string; design : string }
  | Job_done of {
      job : string;
      design : string;
      injected : int;
      wrong : int;
      wall_ns : int;
    }

val enabled : unit -> bool
(** Is any sink installed?  Producers may use this to skip building
    event arguments, but {!publish} is already a no-op when false. *)

val publish : event -> unit
(** Enqueue one event.  Never blocks on I/O; drops (counted) when the
    ring is full.  Domain-safe. *)

val to_file : ?capacity:int -> string -> unit
(** Start (or reuse) the bus and stream events to [path] as JSONL,
    truncating it.  [capacity] (default 4096) bounds the ring and is
    only honoured by the call that creates the bus. *)

val listen_unix : ?capacity:int -> string -> unit
(** Start (or reuse) the bus and serve the event stream on a
    Unix-domain socket bound at [path] (an existing socket file is
    replaced).  Clients see events published after they connect; a
    client that falls behind is disconnected. *)

val close : unit -> unit
(** Drain the ring, flush and close every sink, join the bus threads
    and disable publishing.  Idempotent. *)

val detach : unit -> unit
(** Disown the bus {e without} draining, closing or joining anything:
    publishing becomes a no-op in this process, every sink stays
    untouched.  For forked children — they inherit the bus record but
    not its threads, and share the sinks' file descriptors with the
    parent, so the only safe move is to forget the bus entirely.  Lock
    free (one atomic store), hence safe immediately after [fork] even
    if the fork split another thread mid-[publish]. *)

val published : unit -> int
(** Events assigned a sequence number since the bus was (last)
    created — written plus dropped. *)

val dropped : unit -> int
(** Events whose sequence numbers are missing from the stream. *)

val last_seq : unit -> int
(** Highest sequence number assigned, or [-1] when none.  Survives
    {!close}, so a run manifest can record the final sequence number
    after teardown. *)

val clients : unit -> int
(** Currently connected socket clients. *)

val type_name : event -> string
(** The [type] field value, e.g. ["campaign_progress"]. *)

(** {1 Reading a stream back}

    [tmrtool watch] and the tests re-ingest the JSONL stream. *)

type parsed = { p_seq : int; p_ts_ns : int; p_event : event }

val parse_line : string -> (parsed, string) result
(** Parse one stream line back into a typed event. *)

val render : seq:int -> ts_ns:int -> event -> string
(** The exact line {!publish} would emit (without the newline).
    Exposed for tests. *)
