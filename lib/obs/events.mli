(** Typed, lock-light structured event bus for live campaign telemetry.

    Producers (Campaign, Pool, Store, tmrtool) publish typed events;
    a single writer thread renders them to JSONL and fans them out to
    the registered sinks — a file, a Unix-domain socket server, or
    both.  The design goal is that the fault loop never blocks on
    telemetry:

    - {!publish} only formats the payload and takes one short ring
      mutex; all I/O happens on the writer thread.
    - The ring is bounded.  When it is full the event is dropped and
      counted — its sequence number is still consumed, so a gap in the
      [seq] field of the stream is an exact record of what was lost.
    - Socket clients that stop reading are disconnected rather than
      back-pressuring the bus.

    Every line is one JSON object
    [{"seq":N,"ts_ns":T,"type":"...",...}] with [seq] dense from 0 per
    stream and [ts_ns] monotonic ({!Clock.now_ns}, read under the same
    lock that assigns [seq], so timestamp order matches sequence
    order).

    With no sink installed, {!publish} is one atomic load — the
    instrumented hot paths stay free. *)

type event =
  | Campaign_started of { design : string; faults : int; workers : int }
  | Campaign_progress of {
      design : string;
      completed : int;
      total : int;
      wrong : int;
    }
  | Campaign_ci of {
      design : string;
      n : int;
      wrong : int;
      confidence : float;
      lo : float;
      hi : float;
    }
  | Campaign_stopped of {
      design : string;
      requested : int;
      injected : int;
      wrong : int;
      wall_ns : int;
    }
  | Campaign_detection of {
      design : string;
      silent_correct : int;
      detected_corrected : int;
      detected_wrong : int;
      silent_wrong : int;
    }
      (** four-way detected-vs-silent verdict split of a finished
          campaign on a design with in-circuit detection voters; the
          counts sum to the campaign's injected faults *)
  | Batch_dispatched of { design : string; lanes : int }
  | Worker_heartbeat of {
      worker : int;
      busy_ns : int;
      idle_ns : int;
      items : int;
    }
  | Plan_paths of {
      design : string;
      silent : int;
      patched : int;
      rerouted : int;
      rebuilt : int;
      diffed : int;
      converged : int;
      batched : int;
    }
  | Manifest_written of { design : string; path : string }
  | Shard_done of {
      design : string;
      shard : int;
      lo : int;  (** first fault index of the range (inclusive) *)
      hi : int;  (** last fault index of the range (exclusive) *)
      wrong : int;  (** wrong answers within the range *)
      pending : int;  (** ranges still queued or claimed *)
    }  (** one checkpointed shard of a distributed campaign completed *)
  | Job_queued of { job : string; design : string }
      (** a campaign job entered the [tmrtool serve] queue *)
  | Job_started of { job : string; design : string }
  | Job_done of {
      job : string;
      design : string;
      injected : int;
      wrong : int;
      wall_ns : int;
    }

val enabled : unit -> bool
(** Is any sink installed (bus or spool)?  Producers may use this to
    skip building event arguments, but {!publish} is already a no-op
    when false. *)

val publish : event -> unit
(** Enqueue one event.  Never blocks on I/O; drops (counted) when the
    ring is full.  Domain-safe.  In spool mode the event is written
    synchronously to the spool file instead (one whole line per write,
    so a concurrent tailer never sees a torn line). *)

(** {1 Origin context}

    In a distributed campaign every process stamps its events with an
    ["origin"] object — [{"pid":…,"worker":…,"shard":…,"job":"…"}] —
    so the merged fleet stream stays attributable per worker.  The
    context is ambient process state: set once per worker, updated with
    {!set_shard} at shard boundaries, carried by both bus and spool
    sinks.  With no context set the wire format is unchanged. *)

val set_context : worker:int -> job:string -> unit
(** Stamp subsequent events with this origin.  [job] is the correlation
    id minted by the campaign parent; the pid is captured here, so call
    this {e after} [fork]. *)

val clear_context : unit -> unit

val set_shard : int -> unit
(** Record the shard the process is currently running ([-1] between
    shards).  No-op without a context. *)

val spool : path:string -> worker:int -> job:string -> unit
(** Switch this process to spool mode: disown any inherited bus, set
    the origin context, and append every published event to [path]
    (truncating) as JSONL with a worker-local dense [seq] from 0.
    Thread-less and lock-light, hence safe right after [fork]; the
    parent's tailer follows the file live.  {!close} flushes and
    closes the spool. *)

val publish_payload : string -> unit
(** Enqueue a pre-rendered payload (everything after the ["ts_ns"]
    field, starting with a comma) under a fresh bus sequence number.
    Used by the tailer to relay spooled worker events; no-op without a
    bus. *)

val respool_line : string -> (int * string) option
(** [respool_line line] converts one spool line into
    [(worker_seq, payload)] for {!publish_payload}: the worker-local
    prefix is stripped and re-appended as a top-level ["oseq"] field.
    [None] when [line] is not a well-formed spool line. *)

val to_file : ?capacity:int -> string -> unit
(** Start (or reuse) the bus and stream events to [path] as JSONL,
    truncating it.  [capacity] (default 4096) bounds the ring and is
    only honoured by the call that creates the bus. *)

val listen_unix : ?capacity:int -> string -> unit
(** Start (or reuse) the bus and serve the event stream on a
    Unix-domain socket bound at [path] (an existing socket file is
    replaced).  Clients see events published after they connect; a
    client that falls behind is disconnected. *)

val close : unit -> unit
(** Drain the ring, flush and close every sink, join the bus threads
    and disable publishing.  Idempotent. *)

val pause : unit -> unit
(** Drain the ring and join the writer and acceptor threads while
    keeping every sink open (file channel, listen socket, connected
    peers) and the sequence counter intact.  Events published while
    paused accumulate in the ring and flow once {!resume} restarts the
    threads.  A process about to [fork] must bracket the fork with
    [pause]/[resume]: a child forked while the writer thread is live
    inherits a poisoned threads runtime and can block forever at its
    first forced yield.  No-op without a bus. *)

val resume : unit -> unit
(** Restart the bus threads after {!pause}.  No-op without a bus. *)

val detach : unit -> unit
(** Disown the bus {e without} draining, closing or joining anything:
    publishing becomes a no-op in this process, every sink stays
    untouched.  For forked children — they inherit the bus record but
    not its threads, and share the sinks' file descriptors with the
    parent, so the only safe move is to forget the bus entirely.  Lock
    free (one atomic store), hence safe immediately after [fork] even
    if the fork split another thread mid-[publish]. *)

val published : unit -> int
(** Events assigned a sequence number since the bus was (last)
    created — written plus dropped. *)

val dropped : unit -> int
(** Events whose sequence numbers are missing from the stream. *)

val last_seq : unit -> int
(** Highest sequence number assigned, or [-1] when none.  Survives
    {!close}, so a run manifest can record the final sequence number
    after teardown. *)

val clients : unit -> int
(** Currently connected socket clients. *)

val type_name : event -> string
(** The [type] field value, e.g. ["campaign_progress"]. *)

(** {1 Reading a stream back}

    [tmrtool watch] and the tests re-ingest the JSONL stream. *)

type origin = {
  o_pid : int;  (** producing process *)
  o_worker : int;  (** logical worker slot (0 = the parent itself) *)
  o_shard : int;  (** shard being run when emitted, [-1] between shards *)
  o_job : string;  (** correlation id minted by the campaign parent *)
  o_seq : int;
      (** worker-local sequence number: dense from 0 per origin, also on
          the merged stream (where the top-level [seq] is the parent's) *)
}

type parsed = {
  p_seq : int;
  p_ts_ns : int;
  p_event : event;
  p_origin : origin option;  (** [None] on origin-less (legacy) lines *)
}

val parse_line : string -> (parsed, string) result
(** Parse one stream line back into a typed event. *)

val render : seq:int -> ts_ns:int -> event -> string
(** The exact line {!publish} would emit (without the newline).
    Exposed for tests. *)
