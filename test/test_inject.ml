module Logic = Tmr_logic.Logic
module Arch = Tmr_arch.Arch
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Partition = Tmr_core.Partition
module Impl = Tmr_pnr.Impl
module Faultlist = Tmr_inject.Faultlist
module Campaign = Tmr_inject.Campaign
module Classify = Tmr_inject.Classify
module Fir = Tmr_filter.Fir

let dev = lazy (Device.build Arch.small)
let db = lazy (Bitdb.build (Lazy.force dev))

let impl_of strategy =
  let nl = Tmr_filter.Designs.build ~params:Fir.tiny_params strategy in
  Impl.implement_exn ~seed:3 (Lazy.force dev) (Lazy.force db) nl

let standard_impl = lazy (impl_of Partition.Unprotected)
let tmr_impl = lazy (impl_of Partition.Medium_partition)

let stimulus cycles =
  { Campaign.cycles;
    inputs = [ ("x", Fir.stimulus ~cycles ~seed:7 Fir.tiny_params) ] }

let golden_nl = lazy (Fir.build Fir.tiny_params)

let test_faultlist_sane () =
  let impl = Lazy.force standard_impl in
  let fl = Faultlist.of_impl impl in
  Alcotest.(check bool) "non-empty" true (Array.length fl.Faultlist.bits > 0);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 fl.Faultlist.by_class in
  Alcotest.(check int) "by_class sums to total" (Array.length fl.Faultlist.bits)
    total;
  (* every listed ON routing bit really is programmed *)
  Array.iter
    (fun b ->
      Alcotest.(check bool) "in range" true
        (b >= 0 && b < Bitdb.num_bits (Lazy.force db)))
    fl.Faultlist.bits

let test_faultlist_sample_deterministic () =
  let impl = Lazy.force standard_impl in
  let fl = Faultlist.of_impl impl in
  let s1 = Faultlist.sample fl ~seed:5 ~count:50 in
  let s2 = Faultlist.sample fl ~seed:5 ~count:50 in
  Alcotest.(check (array int)) "same seed same sample" s1 s2;
  let s3 = Faultlist.sample fl ~seed:6 ~count:50 in
  Alcotest.(check bool) "different seed differs" true (s1 <> s3);
  (* distinct *)
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun b ->
      Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl b);
      Hashtbl.add tbl b ())
    s1

let test_classify_invariants () =
  let impl = Lazy.force standard_impl in
  let fl = Faultlist.of_impl impl in
  let d = Lazy.force dev and database = Lazy.force db in
  Array.iter
    (fun bit ->
      let eff = Classify.classify impl bit in
      match Bitdb.resource database bit with
      | Bitdb.Pip p ->
          if Bitstream.get impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream bit then
            Alcotest.(check string) "on pip is open" "Open" (Classify.name eff)
          else begin
            let used = impl.Impl.bitgen.Tmr_pnr.Bitgen.used_wires in
            let s = d.Device.pip_src.(p) and dd = d.Device.pip_dst.(p) in
            if d.Device.pip_bidir.(p) && used.(s) && used.(dd) then
              Alcotest.(check string) "used-used short is bridge" "Bridge"
                (Classify.name eff)
          end
      | Bitdb.Lut_bit (bel, _) ->
          if impl.Impl.bitgen.Tmr_pnr.Bitgen.used_bels.(bel) then
            Alcotest.(check string) "lut bit" "LUT" (Classify.name eff)
      | Bitdb.Ff_init _ | Bitdb.Sr_inv _ ->
          Alcotest.(check bool) "init class" true
            (Classify.name eff = "Initialization" || Classify.name eff = "Others")
      | Bitdb.Out_sel _ | Bitdb.Ce_inv _ | Bitdb.In_inv _ | Bitdb.Pad_enable _
      | Bitdb.Pad_cfg _ ->
          Alcotest.(check bool) "custom class" true
            (Classify.name eff = "MUX" || Classify.name eff = "Others"))
    fl.Faultlist.bits

let test_classify_antenna_and_conflict () =
  (* a routed design must expose both "new driver onto a used node" cases:
     antennas (floating source) and conflicts (second used source) — and
     every such verdict must re-derive from the golden configuration *)
  let d = Lazy.force dev and database = Lazy.force db in
  let antennas = ref 0 and conflicts = ref 0 in
  List.iter
    (fun impl ->
      let bg = impl.Impl.bitgen in
      let used = bg.Tmr_pnr.Bitgen.used_wires in
      let fl = Faultlist.of_impl impl in
      Array.iter
        (fun bit ->
          let off_pip () =
            Alcotest.(check bool) "pip bit is off in the golden image" false
              (Bitstream.get bg.Tmr_pnr.Bitgen.bitstream bit);
            match Bitdb.resource database bit with
            | Bitdb.Pip p -> p
            | _ -> Alcotest.fail "antenna/conflict must be a pip bit"
          in
          match Classify.classify impl bit with
          | Classify.Antenna_effect ->
              incr antennas;
              let p = off_pip () in
              let s = d.Device.pip_src.(p) and dst = d.Device.pip_dst.(p) in
              if d.Device.pip_bidir.(p) then
                Alcotest.(check bool) "pass antenna: exactly one end used"
                  true
                  (used.(s) <> used.(dst))
              else begin
                Alcotest.(check bool) "buffered antenna: destination used"
                  true used.(dst);
                Alcotest.(check bool) "buffered antenna: source floating"
                  false used.(s)
              end
          | Classify.Conflict_effect ->
              incr conflicts;
              let p = off_pip () in
              let s = d.Device.pip_src.(p) and dst = d.Device.pip_dst.(p) in
              Alcotest.(check bool) "conflict pip is buffered" false
                d.Device.pip_bidir.(p);
              Alcotest.(check bool) "conflict: both ends used" true
                (used.(s) && used.(dst))
          | _ -> ())
        fl.Faultlist.bits)
    [ Lazy.force standard_impl; Lazy.force tmr_impl ];
  Alcotest.(check bool) "classification produces antenna bits" true
    (!antennas > 0);
  Alcotest.(check bool) "classification produces conflict bits" true
    (!conflicts > 0)

let test_campaign_standard_vs_tmr () =
  let stim = stimulus 20 in
  let run impl =
    let fl = Faultlist.of_impl impl in
    let faults = Faultlist.sample fl ~seed:11 ~count:250 in
    Campaign.run ~name:"t" ~impl ~golden:(Lazy.force golden_nl) ~stimulus:stim
      ~faults ()
  in
  let c_std = run (Lazy.force standard_impl) in
  let c_tmr = run (Lazy.force tmr_impl) in
  Alcotest.(check bool)
    (Printf.sprintf "standard (%.1f%%) much worse than TMR (%.1f%%)"
       (Campaign.wrong_percent c_std) (Campaign.wrong_percent c_tmr))
    true
    (Campaign.wrong_percent c_std > 5.0 *. Campaign.wrong_percent c_tmr);
  Alcotest.(check bool) "standard has many wrong answers" true
    (Campaign.wrong_percent c_std > 20.0);
  (* every result carries a classification and silent faults have no error
     cycle *)
  Array.iter
    (fun r ->
      match r.Campaign.outcome with
      | Campaign.Silent ->
          Alcotest.(check int) "silent no cycle" (-1) r.Campaign.first_error_cycle
      | Campaign.Wrong_answer ->
          Alcotest.(check bool) "error cycle set" true
            (r.Campaign.first_error_cycle >= 0))
    c_std.Campaign.results

let test_campaign_no_lut_errors_in_tmr () =
  (* the paper: "No upsets in the LUTs could provoke an error in the TMR" *)
  let impl = Lazy.force tmr_impl in
  let fl = Faultlist.of_impl impl in
  let lut_bits =
    Array.of_list
      (List.filter
         (fun b -> Bitdb.class_of_bit (Lazy.force db) b = Bitdb.Class_lut)
         (Array.to_list fl.Faultlist.bits))
  in
  let subset = Array.sub lut_bits 0 (min 150 (Array.length lut_bits)) in
  let c =
    Campaign.run ~name:"lut" ~impl ~golden:(Lazy.force golden_nl)
      ~stimulus:(stimulus 20) ~faults:subset ()
  in
  Alcotest.(check int) "no LUT upset defeats TMR" 0 c.Campaign.wrong

let test_campaign_golden_matches_golden_module () =
  let stim = stimulus 20 in
  let outs = Campaign.golden_outputs (Lazy.force golden_nl) stim in
  let y = List.assoc "y" outs in
  let expected =
    Tmr_filter.Golden.run Fir.tiny_params (List.assoc "x" stim.Campaign.inputs)
  in
  Array.iteri
    (fun cycle bits ->
      let v = ref 0 in
      Array.iteri
        (fun i b -> if Logic.equal b Logic.One then v := !v lor (1 lsl i))
        bits;
      let signed =
        let w = Array.length bits in
        if !v land (1 lsl (w - 1)) <> 0 then !v - (1 lsl w) else !v
      in
      Alcotest.(check int)
        (Printf.sprintf "cycle %d" cycle)
        expected.(cycle) signed)
    y

let test_campaign_rejects_missing_port () =
  let impl = Lazy.force standard_impl in
  Alcotest.(check bool) "bad stimulus port" true
    (try
       ignore
         (Campaign.run ~name:"bad" ~impl ~golden:(Lazy.force golden_nl)
            ~stimulus:
              { Campaign.cycles = 4; inputs = [ ("nope", Array.make 4 0) ] }
            ~faults:[||] ());
       false
     with Invalid_argument _ -> true)

let test_scrub_accumulation () =
  let stim = stimulus 16 in
  let measure impl =
    let fl = Tmr_inject.Faultlist.of_impl impl in
    Tmr_inject.Scrub.accumulate ~trials:8 ~cap:30 ~seed:4 ~impl
      ~golden:(Lazy.force golden_nl) ~stimulus:stim ~faultlist:fl ()
  in
  let std = measure (Lazy.force standard_impl) in
  let tmr = measure (Lazy.force tmr_impl) in
  Alcotest.(check bool)
    (Printf.sprintf "TMR absorbs more accumulated upsets (%.1f) than standard (%.1f)"
       tmr.Tmr_inject.Scrub.mean std.Tmr_inject.Scrub.mean)
    true
    (tmr.Tmr_inject.Scrub.mean > std.Tmr_inject.Scrub.mean);
  Alcotest.(check int) "trial count" 8
    (Array.length std.Tmr_inject.Scrub.upsets_to_failure);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "within cap+1" true (v >= 1 && v <= 31))
    std.Tmr_inject.Scrub.upsets_to_failure

let test_scrub_deterministic () =
  let stim = stimulus 16 in
  let impl = Lazy.force tmr_impl in
  let fl = Tmr_inject.Faultlist.of_impl impl in
  let run () =
    (Tmr_inject.Scrub.accumulate ~trials:4 ~cap:20 ~seed:9 ~impl
       ~golden:(Lazy.force golden_nl) ~stimulus:stim ~faultlist:fl ())
      .Tmr_inject.Scrub.upsets_to_failure
  in
  Alcotest.(check (array int)) "same seed same trace" (run ()) (run ())

let () =
  Alcotest.run "tmr_inject"
    [
      ( "scrub",
        [
          Alcotest.test_case "accumulation favours TMR" `Quick
            test_scrub_accumulation;
          Alcotest.test_case "deterministic" `Quick test_scrub_deterministic;
        ] );
      ( "faultlist",
        [
          Alcotest.test_case "sane" `Quick test_faultlist_sane;
          Alcotest.test_case "deterministic sampling" `Quick
            test_faultlist_sample_deterministic;
        ] );
      ( "classify",
        [
          Alcotest.test_case "class invariants" `Quick test_classify_invariants;
          Alcotest.test_case "antenna and conflict bits arise and re-derive"
            `Quick test_classify_antenna_and_conflict;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "standard vs TMR" `Quick
            test_campaign_standard_vs_tmr;
          Alcotest.test_case "no LUT errors in TMR" `Quick
            test_campaign_no_lut_errors_in_tmr;
          Alcotest.test_case "golden outputs match software model" `Quick
            test_campaign_golden_matches_golden_module;
          Alcotest.test_case "missing port rejected" `Quick
            test_campaign_rejects_missing_port;
        ] );
    ]
