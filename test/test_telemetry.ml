(* Live telemetry: event-bus ordering and drop accounting, torn-line
   freedom of the shared JSONL sink under domain concurrency, the
   Prometheus exposition endpoint, the offline span profiler, exact
   histogram extrema, and end-to-end exactness — a campaign's event
   stream alone reproduces the engine's final verdict. *)

module Metrics = Tmr_obs.Metrics
module Events = Tmr_obs.Events
module Expose = Tmr_obs.Expose
module Profile = Tmr_obs.Profile
module Watch = Tmr_obs.Watch
module Jsonl = Tmr_obs.Jsonl
module Stats = Tmr_obs.Stats
module Campaign = Tmr_inject.Campaign
module Workqueue = Tmr_inject.Workqueue
module Partition = Tmr_core.Partition
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Service = Tmr_experiments.Service

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let parse_exn line =
  match Events.parse_line line with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse_line %S: %s" line e

(* ------------------------------------------------------------------ *)
(* Jsonl: concurrent writers from several domains never tear lines. *)

let test_jsonl_concurrent () =
  let path = Filename.temp_file "tmr_jsonl" ".jsonl" in
  let sink = Jsonl.make () in
  Jsonl.to_file sink path;
  let domains = 4 and per_domain = 5_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* long enough that a torn write would be visible *)
              Jsonl.emit sink
                (Printf.sprintf "{\"domain\":%d,\"i\":%d,\"pad\":%S}" d i
                   (String.make 64 (Char.chr (Char.code 'a' + d))))
            done))
  in
  Array.iter Domain.join workers;
  Jsonl.close sink;
  let lines = read_lines path in
  Alcotest.(check int) "every line written" (domains * per_domain)
    (List.length lines);
  let seen = Array.make_matrix domains (per_domain + 1) false in
  List.iter
    (fun line ->
      (* a torn or interleaved line fails this exact-shape scan *)
      Scanf.sscanf line "{\"domain\":%d,\"i\":%d,\"pad\":%S}" (fun d i pad ->
          Alcotest.(check int) "pad intact" 64 (String.length pad);
          Alcotest.(check char) "pad is the writer's byte"
            (Char.chr (Char.code 'a' + d))
            pad.[0];
          if seen.(d).(i) then Alcotest.failf "duplicate line %d/%d" d i;
          seen.(d).(i) <- true))
    lines;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Event bus: every variant round-trips through the stream; sequence
   numbers are dense and timestamps monotone. *)

let all_events =
  [
    Events.Campaign_started { design = "tmr_p2"; faults = 150; workers = 4 };
    Events.Campaign_progress
      { design = "tmr_p2"; completed = 50; total = 150; wrong = 2 };
    Events.Campaign_ci
      {
        design = "tmr_p2";
        n = 100;
        wrong = 3;
        confidence = 0.95;
        lo = 0.0103;
        hi = 0.0851;
      };
    Events.Campaign_stopped
      {
        design = "tmr_p2";
        requested = 150;
        injected = 150;
        wrong = 5;
        wall_ns = 1_234_567_890;
      };
    Events.Batch_dispatched { design = "tmr_p2"; lanes = 64 };
    Events.Worker_heartbeat
      { worker = 2; busy_ns = 900_000; idle_ns = 100_000; items = 17 };
    Events.Plan_paths
      {
        design = "tmr_p2";
        silent = 80;
        patched = 30;
        rerouted = 20;
        rebuilt = 10;
        diffed = 8;
        converged = 6;
        batched = 64;
      };
    Events.Manifest_written { design = "tmr_p2"; path = "/tmp/x.json" };
  ]

let test_event_roundtrip () =
  let path = Filename.temp_file "tmr_events" ".jsonl" in
  Events.to_file path;
  List.iter Events.publish all_events;
  Events.close ();
  let lines = read_lines path in
  Alcotest.(check int) "one line per event" (List.length all_events)
    (List.length lines);
  let parsed = List.map parse_exn lines in
  List.iteri
    (fun i p ->
      Alcotest.(check int) "seq dense from 0" i p.Events.p_seq;
      if i > 0 then
        Alcotest.(check bool) "ts monotone" true
          (p.Events.p_ts_ns
          >= (List.nth parsed (i - 1)).Events.p_ts_ns))
    parsed;
  List.iter2
    (fun sent p ->
      if sent <> p.Events.p_event then
        Alcotest.failf "event %s did not round-trip" (Events.type_name sent))
    all_events parsed;
  Alcotest.(check int) "published counts all" (List.length all_events)
    (Events.published ());
  Alcotest.(check int) "nothing dropped" 0 (Events.dropped ());
  Alcotest.(check int) "last_seq survives close"
    (List.length all_events - 1)
    (Events.last_seq ());
  Sys.remove path

let test_render_parse_inverse () =
  List.iteri
    (fun i ev ->
      let line = Events.render ~seq:i ~ts_ns:(1000 + i) ev in
      let p = parse_exn line in
      Alcotest.(check int) "seq" i p.Events.p_seq;
      Alcotest.(check int) "ts_ns" (1000 + i) p.Events.p_ts_ns;
      if p.Events.p_event <> ev then
        Alcotest.failf "render/parse not inverse for %s"
          (Events.type_name ev))
    all_events

(* Drop accounting: a tiny ring under a firehose loses events, but the
   stream records the loss exactly — written + dropped = published, and
   the missing sequence numbers are precisely the dropped count. *)
let test_event_drops_exact () =
  let path = Filename.temp_file "tmr_events_drop" ".jsonl" in
  Events.to_file ~capacity:8 path;
  let total = 50_000 in
  let domains = 4 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to total / domains do
              Events.publish
                (Events.Campaign_progress
                   {
                     design = "firehose";
                     completed = i;
                     total = total / domains;
                     wrong = d;
                   })
            done))
  in
  Array.iter Domain.join workers;
  Events.close ();
  let lines = read_lines path in
  let published = Events.published () in
  let dropped = Events.dropped () in
  Alcotest.(check int) "published = every publish call" total published;
  Alcotest.(check int) "written + dropped = published" published
    (List.length lines + dropped);
  let seqs = List.map (fun l -> (parse_exn l).Events.p_seq) lines in
  let rec check_sorted gaps = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "seq strictly increasing" true (b > a);
        check_sorted (gaps + (b - a - 1)) rest
    | [ last ] -> (gaps, last)
    | [] -> (gaps, -1)
  in
  let interior_gaps, last = check_sorted 0 seqs in
  let head_gap = match seqs with s :: _ -> s | [] -> 0 in
  let tail_gap = published - 1 - last in
  Alcotest.(check int) "stream gaps = drop counter exactly" dropped
    (head_gap + interior_gaps + tail_gap);
  Sys.remove path

let test_event_socket_sink () =
  let sock = Filename.temp_file "tmr_events" ".sock" in
  Sys.remove sock;
  Events.listen_unix sock;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX sock);
  (* let the acceptor register the client before publishing *)
  let rec wait n =
    if Events.clients () = 0 && n > 0 then begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 100;
  Alcotest.(check int) "client connected" 1 (Events.clients ());
  List.iter Events.publish all_events;
  Events.close ();
  let buf = Buffer.create 1024 in
  let bytes = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd bytes 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf bytes 0 n;
        drain ()
  in
  drain ();
  Unix.close fd;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "socket client sees every event"
    (List.length all_events) (List.length lines);
  List.iter2
    (fun sent line ->
      if (parse_exn line).Events.p_event <> sent then
        Alcotest.failf "socket stream mismatch for %s"
          (Events.type_name sent))
    all_events lines

(* ------------------------------------------------------------------ *)
(* Exposition *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_expose_render () =
  let c = Metrics.counter "test.expose.counter" in
  Metrics.incr ~by:7 c;
  let h = Metrics.histogram "test.expose.hist" in
  Metrics.observe h 5;
  Metrics.observe h 9000;
  let text = Expose.render () in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "exposition contains %S" needle)
        true
        (contains ~needle text))
    [
      "# HELP test_expose_counter tmrtool metric test.expose.counter";
      "# TYPE test_expose_counter counter";
      "test_expose_counter 7";
      "# HELP test_expose_hist tmrtool metric test.expose.hist";
      "# TYPE test_expose_hist histogram";
      "test_expose_hist_bucket{le=\"+Inf\"} 2";
      "test_expose_hist_sum 9005";
      "test_expose_hist_count 2";
      "# HELP test_expose_hist_min Smallest observation of test_expose_hist";
      "test_expose_hist_min 5";
      "test_expose_hist_max 9000";
      "# HELP events_bus_published Events accepted onto the bus";
      "# TYPE events_bus_published gauge";
      "events_bus_clients 0";
    ];
  (* every # TYPE family line is introduced by a # HELP line for the
     same family, in HELP-then-TYPE order (what promtool lint checks) *)
  let lines = String.split_on_char '\n' text in
  let prev = ref "" in
  List.iter
    (fun l ->
      if String.length l > 7 && String.sub l 0 7 = "# TYPE " then begin
        let fam =
          match String.index_from_opt l 7 ' ' with
          | Some i -> String.sub l 7 (i - 7)
          | None -> String.sub l 7 (String.length l - 7)
        in
        Alcotest.(check bool)
          (Printf.sprintf "HELP precedes TYPE for %s" fam)
          true
          (String.length !prev > 8 + String.length fam
          && String.sub !prev 0 (8 + String.length fam) = "# HELP " ^ fam ^ " ")
      end;
      prev := l)
    lines;
  (* cumulative buckets: each le count is >= the previous one *)
  let bucket_counts =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           if
             String.length l > 0
             && contains ~needle:"test_expose_hist_bucket{le=" l
           then
             match String.rindex_opt l ' ' with
             | Some i ->
                 int_of_string_opt
                   (String.sub l (i + 1) (String.length l - i - 1))
             | None -> None
           else None)
  in
  Alcotest.(check bool) "at least two bucket lines" true
    (List.length bucket_counts >= 2);
  let rec cumulative = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "buckets cumulative" true (b >= a);
        cumulative rest
    | _ -> ()
  in
  cumulative bucket_counts

let test_expose_http () =
  let port = Expose.listen 0 in
  Alcotest.(check bool) "kernel picked a port" true (port > 0);
  Alcotest.(check (option int)) "port is reported" (Some port) (Expose.port ());
  let c = Metrics.counter "test.expose.http" in
  Metrics.incr ~by:3 c;
  let fetch path =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
        let req =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            path
        in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 4096 in
        let bytes = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd bytes 0 4096 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf bytes 0 n;
              drain ()
        in
        drain ();
        Buffer.contents buf)
  in
  let resp = fetch "/metrics" in
  Alcotest.(check bool) "200 OK" true (contains ~needle:"200 OK" resp);
  Alcotest.(check bool) "prometheus content type" true
    (contains ~needle:"text/plain; version=0.0.4" resp);
  Alcotest.(check bool) "body has the counter" true
    (contains ~needle:"test_expose_http 3" resp);
  let missing = fetch "/nope" in
  Alcotest.(check bool) "404 elsewhere" true
    (contains ~needle:"404" missing);
  Expose.stop ();
  Alcotest.(check (option int)) "stopped" None (Expose.port ())

(* ------------------------------------------------------------------ *)
(* Profiler: hand-built trace with known nesting. *)

let span ~name ~ts ~dur ~tid =
  Printf.sprintf "{\"name\":%S,\"cat\":\"flow\",\"ph\":\"X\",\"ts\":%f,\"dur\":%f,\"pid\":1,\"tid\":%d,\"args\":{}}"
    name ts dur tid

let test_profile_nesting () =
  (* tid 0: outer [0,100] containing a[10,30] and b[40,20];
     tid 1: solo [0,50].  Self(outer) = 100-30-20 = 50. *)
  let lines =
    [
      span ~name:"outer" ~ts:0.0 ~dur:100.0 ~tid:0;
      span ~name:"a" ~ts:10.0 ~dur:30.0 ~tid:0;
      span ~name:"b" ~ts:40.0 ~dur:20.0 ~tid:0;
      span ~name:"solo" ~ts:0.0 ~dur:50.0 ~tid:1;
      "{\"not\":\"a span\"}";
    ]
  in
  let t =
    match Profile.of_lines lines with
    | Ok t -> t
    | Error e -> Alcotest.failf "of_lines: %s" e
  in
  let table = Profile.span_table t in
  Alcotest.(check bool) "table lists outer" true
    (contains ~needle:"outer" table);
  let collapsed = Profile.collapsed t in
  let stacks =
    String.split_on_char '\n' collapsed |> List.filter (fun l -> l <> "")
  in
  let find path =
    match
      List.find_opt
        (fun l -> contains ~needle:(path ^ " ") l)
        stacks
    with
    | Some l ->
        let i = String.rindex l ' ' in
        int_of_string (String.sub l (i + 1) (String.length l - i - 1))
    | None -> Alcotest.failf "stack %S missing from %s" path collapsed
  in
  Alcotest.(check int) "outer self = dur - children" 50 (find "outer");
  Alcotest.(check int) "child a self" 30 (find "outer;a");
  Alcotest.(check int) "child b self" 20 (find "outer;b");
  Alcotest.(check int) "solo root on its own tid" 50 (find "solo");
  let report = Profile.report t in
  Alcotest.(check bool) "report mentions both tids" true
    (contains ~needle:"2 tids" report
    || contains ~needle:"tids: 2" report
    || contains ~needle:"tid" report)

let test_profile_errors () =
  (match Profile.of_lines [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace should error");
  match Profile.of_lines [ "{broken" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON should error"

(* ------------------------------------------------------------------ *)
(* Histogram extrema are exact, also under concurrency. *)

let test_hist_min_max () =
  let h = Metrics.histogram "test.extrema.empty" in
  let s =
    List.assoc "test.extrema.empty" (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "empty min" 0 s.Metrics.min;
  Alcotest.(check int) "empty max" 0 s.Metrics.max;
  Metrics.observe h 573;
  let s =
    List.assoc "test.extrema.empty" (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "single sample min" 573 s.Metrics.min;
  Alcotest.(check int) "single sample max" 573 s.Metrics.max;
  let hc = Metrics.histogram "test.extrema.concurrent" in
  let domains = 4 and per_domain = 10_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* the global extremes 1 and 40_000 appear on specific
                 iterations of specific domains *)
              Metrics.observe hc ((d * per_domain) + i)
            done))
  in
  Array.iter Domain.join workers;
  let s =
    List.assoc "test.extrema.concurrent"
      (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "concurrent min exact" 1 s.Metrics.min;
  Alcotest.(check int) "concurrent max exact" (domains * per_domain)
    s.Metrics.max

(* ------------------------------------------------------------------ *)
(* Distributed telemetry: per-worker spools, the respool relay,
   cross-process metrics folding, /healthz, and watch-side fleet
   accounting.  Anything that forks lives in test_fleet.ml: this
   binary spawns domains, and Unix.fork is unavailable after that. *)

(* spool mode: line-per-event file with a worker-local dense seq and an
   origin stamp carrying pid/worker/shard/job *)
let test_spool_roundtrip () =
  let path = Filename.temp_file "tmr_spool" ".jsonl" in
  Events.spool ~path ~worker:3 ~job:"jobX";
  Alcotest.(check bool) "spool mode counts as enabled" true (Events.enabled ());
  Events.publish (List.nth all_events 0);
  Events.set_shard 7;
  Events.publish (List.nth all_events 1);
  Events.set_shard (-1);
  Events.publish (List.nth all_events 2);
  Events.close ();
  let parsed = List.map parse_exn (read_lines path) in
  Alcotest.(check int) "three lines" 3 (List.length parsed);
  let me = Unix.getpid () in
  List.iteri
    (fun i p ->
      Alcotest.(check int) "spool seq dense from 0" i p.Events.p_seq;
      match p.Events.p_origin with
      | None -> Alcotest.fail "spool line lost its origin"
      | Some o ->
          Alcotest.(check int) "origin pid" me o.Events.o_pid;
          Alcotest.(check int) "origin worker" 3 o.Events.o_worker;
          Alcotest.(check string) "origin job" "jobX" o.Events.o_job;
          Alcotest.(check int) "origin seq mirrors spool seq" i
            o.Events.o_seq;
          Alcotest.(check int) "shard tracks set_shard"
            (if i = 1 then 7 else -1)
            o.Events.o_shard)
    parsed;
  Sys.remove path

(* respool_line + publish_payload: relaying a spool through a bus
   re-sequences the line, keeps the origin and records the worker-local
   seq as oseq *)
let test_respool_merge () =
  let spool = Filename.temp_file "tmr_respool_in" ".jsonl" in
  Events.spool ~path:spool ~worker:2 ~job:"relay";
  List.iter Events.publish all_events;
  Events.close ();
  let spool_lines = read_lines spool in
  let merged = Filename.temp_file "tmr_respool_out" ".jsonl" in
  Events.to_file merged;
  List.iter
    (fun line ->
      match Events.respool_line line with
      | Some (_oseq, payload) -> Events.publish_payload payload
      | None -> Alcotest.failf "respool_line rejected %S" line)
    spool_lines;
  Events.close ();
  let parsed = List.map parse_exn (read_lines merged) in
  Alcotest.(check int) "every line relayed" (List.length all_events)
    (List.length parsed);
  List.iteri
    (fun i p ->
      Alcotest.(check int) "merged seq dense" i p.Events.p_seq;
      (match p.Events.p_origin with
      | None -> Alcotest.fail "relay dropped the origin"
      | Some o ->
          Alcotest.(check int) "oseq = worker-local seq" i o.Events.o_seq;
          Alcotest.(check int) "worker slot survives" 2 o.Events.o_worker);
      if p.Events.p_event <> List.nth all_events i then
        Alcotest.failf "event %d did not survive the relay" i)
    parsed;
  Sys.remove spool;
  Sys.remove merged

(* cross-process metrics: write_file / read_file / merge *)
let test_metrics_merge () =
  let c = Metrics.counter "test.merge.counter" in
  Metrics.incr ~by:5 c;
  let g = Metrics.gauge "test.merge.gauge" in
  Metrics.set g 2.5;
  let h = Metrics.histogram "test.merge.hist" in
  Metrics.observe h 10;
  Metrics.observe h 1000;
  let path = Filename.temp_file "tmr_metrics" ".json" in
  Metrics.write_file path;
  let from_file =
    match Metrics.read_file path with
    | Ok s -> s
    | Error e -> Alcotest.failf "read_file: %s" e
  in
  let live = Metrics.snapshot () in
  let m = Metrics.merge live from_file in
  Alcotest.(check int) "counters add" (2 * List.assoc "test.merge.counter" live.Metrics.counters)
    (List.assoc "test.merge.counter" m.Metrics.counters);
  Alcotest.(check (float 1e-9)) "gauges right-win" 2.5
    (List.assoc "test.merge.gauge" m.Metrics.gauges);
  let hs = List.assoc "test.merge.hist" m.Metrics.histograms in
  Alcotest.(check int) "histogram counts add" 4 hs.Metrics.count;
  Alcotest.(check int) "histogram sums add" 2020 hs.Metrics.sum;
  Alcotest.(check int) "min exact across processes" 10 hs.Metrics.min;
  Alcotest.(check int) "max exact across processes" 1000 hs.Metrics.max;
  Alcotest.(check (float 1e-9)) "mean recomputed" 505.0 hs.Metrics.mean;
  (* buckets still sum to the count after the merge *)
  Alcotest.(check int) "bucket counts sum to count" hs.Metrics.count
    (Array.fold_left (fun a (_, n) -> a + n) 0 hs.Metrics.buckets);
  (* empty merges are identities *)
  let empty = { Metrics.counters = []; gauges = []; histograms = [] } in
  Alcotest.(check int) "merge with empty keeps counters"
    (List.assoc "test.merge.counter" m.Metrics.counters)
    (List.assoc "test.merge.counter" (Metrics.merge m empty).Metrics.counters);
  Sys.remove path

(* /healthz: liveness JSON with uptime, bus state and the campaign probe *)
let test_healthz () =
  Expose.set_active_probe (Some (fun () -> 2));
  let body = Expose.healthz_body () in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "healthz contains %S" needle)
        true
        (contains ~needle body))
    [ "\"status\":\"ok\""; "\"uptime_s\":"; "\"bus\":"; "\"active_campaigns\":2" ];
  Expose.set_active_probe None;
  let port = Expose.listen 0 in
  let fetch path =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
        let req =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            path
        in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 4096 in
        let bytes = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd bytes 0 4096 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf bytes 0 n;
              drain ()
        in
        drain ();
        Buffer.contents buf)
  in
  let resp = fetch "/healthz" in
  Expose.stop ();
  Alcotest.(check bool) "healthz 200" true (contains ~needle:"200 OK" resp);
  Alcotest.(check bool) "healthz is json" true
    (contains ~needle:"application/json" resp);
  Alcotest.(check bool) "healthz body served" true
    (contains ~needle:"\"status\":\"ok\"" resp)

(* watch: origin-stamped shard-local events feed the fleet table and
   in-flight progress; only origin-less events drive the verdict *)
let with_origin ~pid ~worker ~shard ~job ~oseq line =
  String.sub line 0 (String.length line - 1)
  ^ Printf.sprintf
      ",\"origin\":{\"pid\":%d,\"worker\":%d,\"shard\":%d,\"job\":%S},\"oseq\":%d}"
      pid worker shard job oseq

let test_watch_fleet () =
  let w = Watch.create () in
  let feed line = Watch.feed w (parse_exn line) in
  let s = 1_000_000_000 in
  (* origin-less: the fleet campaign *)
  feed
    (Events.render ~seq:0 ~ts_ns:0
       (Events.Campaign_started { design = "d"; faults = 100; workers = 2 }));
  (* worker 1 (pid 41) makes progress, then goes silent *)
  feed
    (with_origin ~pid:41 ~worker:1 ~shard:0 ~job:"j" ~oseq:0
       (Events.render ~seq:1 ~ts_ns:s
          (Events.Campaign_progress
             { design = "d"; completed = 10; total = 25; wrong = 0 })));
  (* worker 2 (pid 42) progresses much later *)
  feed
    (with_origin ~pid:42 ~worker:2 ~shard:1 ~job:"j" ~oseq:0
       (Events.render ~seq:2 ~ts_ns:(30 * s)
          (Events.Campaign_progress
             { design = "d"; completed = 20; total = 25; wrong = 1 })));
  Alcotest.(check int) "two fleet workers" 2 (Watch.fleet_workers w);
  Alcotest.(check int) "no origin gaps yet" 0 (Watch.origin_gaps w);
  (* live display: base (no shards merged yet) + in-flight 10 + 20 *)
  let live = Watch.render ~worker_timeout:5.0 w in
  Alcotest.(check bool) "silent worker flagged STALE" true
    (contains ~needle:"STALE" live);
  Alcotest.(check bool) "progress sums the in-flight shards" true
    (contains ~needle:"    30/100" live);
  (* a worker-local seq jump is per-origin loss accounting *)
  feed
    (with_origin ~pid:42 ~worker:2 ~shard:1 ~job:"j" ~oseq:3
       (Events.render ~seq:3 ~ts_ns:(31 * s)
          (Events.Campaign_progress
             { design = "d"; completed = 22; total = 25; wrong = 1 })));
  Alcotest.(check int) "origin gap recorded" 2 (Watch.origin_gaps w);
  (* shard-local stop: worker bookkeeping only, campaign still live *)
  feed
    (with_origin ~pid:42 ~worker:2 ~shard:1 ~job:"j" ~oseq:4
       (Events.render ~seq:4 ~ts_ns:(32 * s)
          (Events.Campaign_stopped
             { design = "d"; requested = 25; injected = 25; wrong = 1; wall_ns = s })));
  Alcotest.(check bool) "shard-local stop is not the campaign stop" false
    (Watch.finished w);
  (* origin-less stop: authoritative verdict, exact summary *)
  feed
    (Events.render ~seq:5 ~ts_ns:(33 * s)
       (Events.Campaign_stopped
          { design = "d"; requested = 100; injected = 100; wrong = 3; wall_ns = 32 * s }));
  Alcotest.(check bool) "fleet campaign finished" true (Watch.finished w);
  Alcotest.(check bool) "summary carries the authoritative verdict" true
    (contains ~needle:"\"injected\":100,\"wrong\":3"
       (Watch.summary_json w));
  (* once finished, nobody is stale *)
  Alcotest.(check bool) "no STALE after the run" false
    (contains ~needle:"STALE" (Watch.render ~worker_timeout:5.0 w))

(* ------------------------------------------------------------------ *)
(* End to end: events on vs. events off gives bit-identical verdicts,
   and the stream alone reproduces the final n/wrong/CI. *)

let ctx = lazy (Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:40 ())

let test_campaign_events_exact () =
  let ctx = Lazy.force ctx in
  let run = Runs.implement_design ctx Partition.Medium_partition in
  let quiet =
    Option.get
      (Runs.campaign_design ~workers:2 ~batch_width:32 ctx run).Runs.campaign
  in
  let path = Filename.temp_file "tmr_campaign_events" ".jsonl" in
  Events.to_file path;
  let live =
    Fun.protect
      ~finally:(fun () -> Events.close ())
      (fun () ->
        Option.get
          (Runs.campaign_design ~workers:2 ~batch_width:32 ctx run)
            .Runs.campaign)
  in
  Alcotest.(check bool) "verdicts bit-identical with events on" true
    (quiet.Campaign.results = live.Campaign.results);
  let w = Watch.create () in
  List.iter (fun l -> Watch.feed w (parse_exn l)) (read_lines path);
  Alcotest.(check bool) "stream is complete" true (Watch.gaps w = 0);
  Alcotest.(check bool) "watch sees the campaign finish" true
    (Watch.finished w);
  (* the watch-side summary carries the engine's exact n/wrong/CI *)
  let summary = Watch.summary_json w in
  let ci = Campaign.ci live in
  let expected =
    Printf.sprintf
      "\"injected\":%d,\"wrong\":%d,\"wrong_percent\":%.4f,\"ci\":{\"confidence\":%g,\"lo\":%.6f,\"hi\":%.6f}"
      live.Campaign.injected live.Campaign.wrong
      (Campaign.wrong_percent live)
      0.95 ci.Stats.lo ci.Stats.hi
  in
  Alcotest.(check bool)
    (Printf.sprintf "summary %s contains %s" summary expected)
    true
    (contains ~needle:expected summary);
  Sys.remove path

let () =
  Alcotest.run "telemetry"
    [
      ( "jsonl",
        [ Alcotest.test_case "concurrent writers" `Quick test_jsonl_concurrent ]
      );
      ( "events",
        [
          Alcotest.test_case "roundtrip + ordering" `Quick test_event_roundtrip;
          Alcotest.test_case "render/parse inverse" `Quick
            test_render_parse_inverse;
          Alcotest.test_case "drop accounting exact" `Quick
            test_event_drops_exact;
          Alcotest.test_case "unix socket sink" `Quick test_event_socket_sink;
        ] );
      ( "expose",
        [
          Alcotest.test_case "prometheus text" `Quick test_expose_render;
          Alcotest.test_case "http endpoint" `Quick test_expose_http;
        ] );
      ( "profile",
        [
          Alcotest.test_case "nesting + self time" `Quick test_profile_nesting;
          Alcotest.test_case "error paths" `Quick test_profile_errors;
        ] );
      ( "metrics",
        [ Alcotest.test_case "exact min/max" `Quick test_hist_min_max ] );
      ( "campaign",
        [
          Alcotest.test_case "events-on identical + watch exact" `Slow
            test_campaign_events_exact;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "spool origin roundtrip" `Quick
            test_spool_roundtrip;
          Alcotest.test_case "respool relay keeps origin + oseq" `Quick
            test_respool_merge;
          Alcotest.test_case "metrics fold across processes" `Quick
            test_metrics_merge;
          Alcotest.test_case "/healthz" `Quick test_healthz;
          Alcotest.test_case "watch fleet table + staleness" `Quick
            test_watch_fleet;
        ] );
    ]
