(* Live telemetry: event-bus ordering and drop accounting, torn-line
   freedom of the shared JSONL sink under domain concurrency, the
   Prometheus exposition endpoint, the offline span profiler, exact
   histogram extrema, and end-to-end exactness — a campaign's event
   stream alone reproduces the engine's final verdict. *)

module Metrics = Tmr_obs.Metrics
module Events = Tmr_obs.Events
module Expose = Tmr_obs.Expose
module Profile = Tmr_obs.Profile
module Watch = Tmr_obs.Watch
module Jsonl = Tmr_obs.Jsonl
module Stats = Tmr_obs.Stats
module Campaign = Tmr_inject.Campaign
module Partition = Tmr_core.Partition
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let parse_exn line =
  match Events.parse_line line with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse_line %S: %s" line e

(* ------------------------------------------------------------------ *)
(* Jsonl: concurrent writers from several domains never tear lines. *)

let test_jsonl_concurrent () =
  let path = Filename.temp_file "tmr_jsonl" ".jsonl" in
  let sink = Jsonl.make () in
  Jsonl.to_file sink path;
  let domains = 4 and per_domain = 5_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* long enough that a torn write would be visible *)
              Jsonl.emit sink
                (Printf.sprintf "{\"domain\":%d,\"i\":%d,\"pad\":%S}" d i
                   (String.make 64 (Char.chr (Char.code 'a' + d))))
            done))
  in
  Array.iter Domain.join workers;
  Jsonl.close sink;
  let lines = read_lines path in
  Alcotest.(check int) "every line written" (domains * per_domain)
    (List.length lines);
  let seen = Array.make_matrix domains (per_domain + 1) false in
  List.iter
    (fun line ->
      (* a torn or interleaved line fails this exact-shape scan *)
      Scanf.sscanf line "{\"domain\":%d,\"i\":%d,\"pad\":%S}" (fun d i pad ->
          Alcotest.(check int) "pad intact" 64 (String.length pad);
          Alcotest.(check char) "pad is the writer's byte"
            (Char.chr (Char.code 'a' + d))
            pad.[0];
          if seen.(d).(i) then Alcotest.failf "duplicate line %d/%d" d i;
          seen.(d).(i) <- true))
    lines;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Event bus: every variant round-trips through the stream; sequence
   numbers are dense and timestamps monotone. *)

let all_events =
  [
    Events.Campaign_started { design = "tmr_p2"; faults = 150; workers = 4 };
    Events.Campaign_progress
      { design = "tmr_p2"; completed = 50; total = 150; wrong = 2 };
    Events.Campaign_ci
      {
        design = "tmr_p2";
        n = 100;
        wrong = 3;
        confidence = 0.95;
        lo = 0.0103;
        hi = 0.0851;
      };
    Events.Campaign_stopped
      {
        design = "tmr_p2";
        requested = 150;
        injected = 150;
        wrong = 5;
        wall_ns = 1_234_567_890;
      };
    Events.Batch_dispatched { design = "tmr_p2"; lanes = 64 };
    Events.Worker_heartbeat
      { worker = 2; busy_ns = 900_000; idle_ns = 100_000; items = 17 };
    Events.Plan_paths
      {
        design = "tmr_p2";
        silent = 80;
        patched = 30;
        rerouted = 20;
        rebuilt = 10;
        diffed = 8;
        converged = 6;
        batched = 64;
      };
    Events.Manifest_written { design = "tmr_p2"; path = "/tmp/x.json" };
  ]

let test_event_roundtrip () =
  let path = Filename.temp_file "tmr_events" ".jsonl" in
  Events.to_file path;
  List.iter Events.publish all_events;
  Events.close ();
  let lines = read_lines path in
  Alcotest.(check int) "one line per event" (List.length all_events)
    (List.length lines);
  let parsed = List.map parse_exn lines in
  List.iteri
    (fun i p ->
      Alcotest.(check int) "seq dense from 0" i p.Events.p_seq;
      if i > 0 then
        Alcotest.(check bool) "ts monotone" true
          (p.Events.p_ts_ns
          >= (List.nth parsed (i - 1)).Events.p_ts_ns))
    parsed;
  List.iter2
    (fun sent p ->
      if sent <> p.Events.p_event then
        Alcotest.failf "event %s did not round-trip" (Events.type_name sent))
    all_events parsed;
  Alcotest.(check int) "published counts all" (List.length all_events)
    (Events.published ());
  Alcotest.(check int) "nothing dropped" 0 (Events.dropped ());
  Alcotest.(check int) "last_seq survives close"
    (List.length all_events - 1)
    (Events.last_seq ());
  Sys.remove path

let test_render_parse_inverse () =
  List.iteri
    (fun i ev ->
      let line = Events.render ~seq:i ~ts_ns:(1000 + i) ev in
      let p = parse_exn line in
      Alcotest.(check int) "seq" i p.Events.p_seq;
      Alcotest.(check int) "ts_ns" (1000 + i) p.Events.p_ts_ns;
      if p.Events.p_event <> ev then
        Alcotest.failf "render/parse not inverse for %s"
          (Events.type_name ev))
    all_events

(* Drop accounting: a tiny ring under a firehose loses events, but the
   stream records the loss exactly — written + dropped = published, and
   the missing sequence numbers are precisely the dropped count. *)
let test_event_drops_exact () =
  let path = Filename.temp_file "tmr_events_drop" ".jsonl" in
  Events.to_file ~capacity:8 path;
  let total = 50_000 in
  let domains = 4 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to total / domains do
              Events.publish
                (Events.Campaign_progress
                   {
                     design = "firehose";
                     completed = i;
                     total = total / domains;
                     wrong = d;
                   })
            done))
  in
  Array.iter Domain.join workers;
  Events.close ();
  let lines = read_lines path in
  let published = Events.published () in
  let dropped = Events.dropped () in
  Alcotest.(check int) "published = every publish call" total published;
  Alcotest.(check int) "written + dropped = published" published
    (List.length lines + dropped);
  let seqs = List.map (fun l -> (parse_exn l).Events.p_seq) lines in
  let rec check_sorted gaps = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "seq strictly increasing" true (b > a);
        check_sorted (gaps + (b - a - 1)) rest
    | [ last ] -> (gaps, last)
    | [] -> (gaps, -1)
  in
  let interior_gaps, last = check_sorted 0 seqs in
  let head_gap = match seqs with s :: _ -> s | [] -> 0 in
  let tail_gap = published - 1 - last in
  Alcotest.(check int) "stream gaps = drop counter exactly" dropped
    (head_gap + interior_gaps + tail_gap);
  Sys.remove path

let test_event_socket_sink () =
  let sock = Filename.temp_file "tmr_events" ".sock" in
  Sys.remove sock;
  Events.listen_unix sock;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX sock);
  (* let the acceptor register the client before publishing *)
  let rec wait n =
    if Events.clients () = 0 && n > 0 then begin
      Thread.delay 0.02;
      wait (n - 1)
    end
  in
  wait 100;
  Alcotest.(check int) "client connected" 1 (Events.clients ());
  List.iter Events.publish all_events;
  Events.close ();
  let buf = Buffer.create 1024 in
  let bytes = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd bytes 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf bytes 0 n;
        drain ()
  in
  drain ();
  Unix.close fd;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "socket client sees every event"
    (List.length all_events) (List.length lines);
  List.iter2
    (fun sent line ->
      if (parse_exn line).Events.p_event <> sent then
        Alcotest.failf "socket stream mismatch for %s"
          (Events.type_name sent))
    all_events lines

(* ------------------------------------------------------------------ *)
(* Exposition *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_expose_render () =
  let c = Metrics.counter "test.expose.counter" in
  Metrics.incr ~by:7 c;
  let h = Metrics.histogram "test.expose.hist" in
  Metrics.observe h 5;
  Metrics.observe h 9000;
  let text = Expose.render () in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "exposition contains %S" needle)
        true
        (contains ~needle text))
    [
      "# TYPE test_expose_counter counter";
      "test_expose_counter 7";
      "# TYPE test_expose_hist histogram";
      "test_expose_hist_bucket{le=\"+Inf\"} 2";
      "test_expose_hist_sum 9005";
      "test_expose_hist_count 2";
      "test_expose_hist_min 5";
      "test_expose_hist_max 9000";
      "# TYPE events_bus_published gauge";
      "events_bus_clients 0";
    ];
  (* cumulative buckets: each le count is >= the previous one *)
  let bucket_counts =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           if
             String.length l > 0
             && contains ~needle:"test_expose_hist_bucket{le=" l
           then
             match String.rindex_opt l ' ' with
             | Some i ->
                 int_of_string_opt
                   (String.sub l (i + 1) (String.length l - i - 1))
             | None -> None
           else None)
  in
  Alcotest.(check bool) "at least two bucket lines" true
    (List.length bucket_counts >= 2);
  let rec cumulative = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "buckets cumulative" true (b >= a);
        cumulative rest
    | _ -> ()
  in
  cumulative bucket_counts

let test_expose_http () =
  let port = Expose.listen 0 in
  Alcotest.(check bool) "kernel picked a port" true (port > 0);
  Alcotest.(check (option int)) "port is reported" (Some port) (Expose.port ());
  let c = Metrics.counter "test.expose.http" in
  Metrics.incr ~by:3 c;
  let fetch path =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
        let req =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            path
        in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 4096 in
        let bytes = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd bytes 0 4096 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf bytes 0 n;
              drain ()
        in
        drain ();
        Buffer.contents buf)
  in
  let resp = fetch "/metrics" in
  Alcotest.(check bool) "200 OK" true (contains ~needle:"200 OK" resp);
  Alcotest.(check bool) "prometheus content type" true
    (contains ~needle:"text/plain; version=0.0.4" resp);
  Alcotest.(check bool) "body has the counter" true
    (contains ~needle:"test_expose_http 3" resp);
  let missing = fetch "/nope" in
  Alcotest.(check bool) "404 elsewhere" true
    (contains ~needle:"404" missing);
  Expose.stop ();
  Alcotest.(check (option int)) "stopped" None (Expose.port ())

(* ------------------------------------------------------------------ *)
(* Profiler: hand-built trace with known nesting. *)

let span ~name ~ts ~dur ~tid =
  Printf.sprintf "{\"name\":%S,\"cat\":\"flow\",\"ph\":\"X\",\"ts\":%f,\"dur\":%f,\"pid\":1,\"tid\":%d,\"args\":{}}"
    name ts dur tid

let test_profile_nesting () =
  (* tid 0: outer [0,100] containing a[10,30] and b[40,20];
     tid 1: solo [0,50].  Self(outer) = 100-30-20 = 50. *)
  let lines =
    [
      span ~name:"outer" ~ts:0.0 ~dur:100.0 ~tid:0;
      span ~name:"a" ~ts:10.0 ~dur:30.0 ~tid:0;
      span ~name:"b" ~ts:40.0 ~dur:20.0 ~tid:0;
      span ~name:"solo" ~ts:0.0 ~dur:50.0 ~tid:1;
      "{\"not\":\"a span\"}";
    ]
  in
  let t =
    match Profile.of_lines lines with
    | Ok t -> t
    | Error e -> Alcotest.failf "of_lines: %s" e
  in
  let table = Profile.span_table t in
  Alcotest.(check bool) "table lists outer" true
    (contains ~needle:"outer" table);
  let collapsed = Profile.collapsed t in
  let stacks =
    String.split_on_char '\n' collapsed |> List.filter (fun l -> l <> "")
  in
  let find path =
    match
      List.find_opt
        (fun l -> contains ~needle:(path ^ " ") l)
        stacks
    with
    | Some l ->
        let i = String.rindex l ' ' in
        int_of_string (String.sub l (i + 1) (String.length l - i - 1))
    | None -> Alcotest.failf "stack %S missing from %s" path collapsed
  in
  Alcotest.(check int) "outer self = dur - children" 50 (find "outer");
  Alcotest.(check int) "child a self" 30 (find "outer;a");
  Alcotest.(check int) "child b self" 20 (find "outer;b");
  Alcotest.(check int) "solo root on its own tid" 50 (find "solo");
  let report = Profile.report t in
  Alcotest.(check bool) "report mentions both tids" true
    (contains ~needle:"2 tids" report
    || contains ~needle:"tids: 2" report
    || contains ~needle:"tid" report)

let test_profile_errors () =
  (match Profile.of_lines [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace should error");
  match Profile.of_lines [ "{broken" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON should error"

(* ------------------------------------------------------------------ *)
(* Histogram extrema are exact, also under concurrency. *)

let test_hist_min_max () =
  let h = Metrics.histogram "test.extrema.empty" in
  let s =
    List.assoc "test.extrema.empty" (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "empty min" 0 s.Metrics.min;
  Alcotest.(check int) "empty max" 0 s.Metrics.max;
  Metrics.observe h 573;
  let s =
    List.assoc "test.extrema.empty" (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "single sample min" 573 s.Metrics.min;
  Alcotest.(check int) "single sample max" 573 s.Metrics.max;
  let hc = Metrics.histogram "test.extrema.concurrent" in
  let domains = 4 and per_domain = 10_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* the global extremes 1 and 40_000 appear on specific
                 iterations of specific domains *)
              Metrics.observe hc ((d * per_domain) + i)
            done))
  in
  Array.iter Domain.join workers;
  let s =
    List.assoc "test.extrema.concurrent"
      (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "concurrent min exact" 1 s.Metrics.min;
  Alcotest.(check int) "concurrent max exact" (domains * per_domain)
    s.Metrics.max

(* ------------------------------------------------------------------ *)
(* End to end: events on vs. events off gives bit-identical verdicts,
   and the stream alone reproduces the final n/wrong/CI. *)

let ctx = lazy (Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:40 ())

let test_campaign_events_exact () =
  let ctx = Lazy.force ctx in
  let run = Runs.implement_design ctx Partition.Medium_partition in
  let quiet =
    Option.get
      (Runs.campaign_design ~workers:2 ~batch_width:32 ctx run).Runs.campaign
  in
  let path = Filename.temp_file "tmr_campaign_events" ".jsonl" in
  Events.to_file path;
  let live =
    Fun.protect
      ~finally:(fun () -> Events.close ())
      (fun () ->
        Option.get
          (Runs.campaign_design ~workers:2 ~batch_width:32 ctx run)
            .Runs.campaign)
  in
  Alcotest.(check bool) "verdicts bit-identical with events on" true
    (quiet.Campaign.results = live.Campaign.results);
  let w = Watch.create () in
  List.iter (fun l -> Watch.feed w (parse_exn l)) (read_lines path);
  Alcotest.(check bool) "stream is complete" true (Watch.gaps w = 0);
  Alcotest.(check bool) "watch sees the campaign finish" true
    (Watch.finished w);
  (* the watch-side summary carries the engine's exact n/wrong/CI *)
  let summary = Watch.summary_json w in
  let ci = Campaign.ci live in
  let expected =
    Printf.sprintf
      "\"injected\":%d,\"wrong\":%d,\"wrong_percent\":%.4f,\"ci\":{\"confidence\":%g,\"lo\":%.6f,\"hi\":%.6f}"
      live.Campaign.injected live.Campaign.wrong
      (Campaign.wrong_percent live)
      0.95 ci.Stats.lo ci.Stats.hi
  in
  Alcotest.(check bool)
    (Printf.sprintf "summary %s contains %s" summary expected)
    true
    (contains ~needle:expected summary);
  Sys.remove path

let () =
  Alcotest.run "telemetry"
    [
      ( "jsonl",
        [ Alcotest.test_case "concurrent writers" `Quick test_jsonl_concurrent ]
      );
      ( "events",
        [
          Alcotest.test_case "roundtrip + ordering" `Quick test_event_roundtrip;
          Alcotest.test_case "render/parse inverse" `Quick
            test_render_parse_inverse;
          Alcotest.test_case "drop accounting exact" `Quick
            test_event_drops_exact;
          Alcotest.test_case "unix socket sink" `Quick test_event_socket_sink;
        ] );
      ( "expose",
        [
          Alcotest.test_case "prometheus text" `Quick test_expose_render;
          Alcotest.test_case "http endpoint" `Quick test_expose_http;
        ] );
      ( "profile",
        [
          Alcotest.test_case "nesting + self time" `Quick test_profile_nesting;
          Alcotest.test_case "error paths" `Quick test_profile_errors;
        ] );
      ( "metrics",
        [ Alcotest.test_case "exact min/max" `Quick test_hist_min_max ] );
      ( "campaign",
        [
          Alcotest.test_case "events-on identical + watch exact" `Slow
            test_campaign_events_exact;
        ] );
    ]
