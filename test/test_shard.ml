(* Sharded, resumable, multi-process campaigns: planner arithmetic,
   result-line and manifest codecs, the on-disk work queue (claims,
   crash reclaim), and the end-to-end guarantee — the merged sharded
   result is bit-identical to a plain single-process campaign, across
   interruption/resume and across process counts. *)

module Partition = Tmr_core.Partition
module Campaign = Tmr_inject.Campaign
module Classify = Tmr_inject.Classify
module Shard = Tmr_inject.Shard
module Workqueue = Tmr_inject.Workqueue
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Service = Tmr_experiments.Service
module Store = Tmr_experiments.Store
module Events = Tmr_obs.Events

let ctx =
  lazy (Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:40 ())

let run_p2 =
  lazy (Runs.implement_design (Lazy.force ctx) Partition.Medium_partition)

let temp_counter = ref 0

let temp_dir tag =
  incr temp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tmr-shard-%s-%d-%d" tag (Unix.getpid ()) !temp_counter)
  in
  (* stale leftovers from a crashed previous test run *)
  if Sys.file_exists d then
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d)));
  d

(* --- planner ---------------------------------------------------------- *)

let test_plan_tiles () =
  List.iter
    (fun (total, shards) ->
      let plan = Shard.plan ~total ~shards in
      let expect = ref 0 in
      Array.iter
        (fun r ->
          Alcotest.(check int) "contiguous" !expect r.Shard.sh_lo;
          Alcotest.(check bool) "non-empty" true (r.Shard.sh_hi > r.Shard.sh_lo);
          expect := r.Shard.sh_hi)
        plan;
      Alcotest.(check int) "covers the space" total !expect;
      (* balanced: sizes differ by at most one *)
      let sizes =
        Array.map (fun r -> r.Shard.sh_hi - r.Shard.sh_lo) plan
      in
      if Array.length sizes > 0 then begin
        let mn = Array.fold_left min max_int sizes in
        let mx = Array.fold_left max 0 sizes in
        Alcotest.(check bool) "balanced" true (mx - mn <= 1)
      end;
      Alcotest.(check int) "shard count" (min shards total) (Array.length plan))
    [ (0, 4); (1, 4); (4, 4); (5, 4); (100, 7); (1500, 16); (3, 100) ]

let test_plan_invalid () =
  Alcotest.check_raises "shards=0" (Invalid_argument "Shard.plan: shards must be positive")
    (fun () -> ignore (Shard.plan ~total:10 ~shards:0));
  Alcotest.check_raises "total<0" (Invalid_argument "Shard.plan: negative total")
    (fun () -> ignore (Shard.plan ~total:(-1) ~shards:4))

let test_ranges_missing () =
  let missing =
    Shard.ranges_missing ~total:100 ~shards:4 ~done_ids:(fun id -> id = 1)
  in
  Alcotest.(check (list int)) "skips done ids" [ 0; 2; 3 ]
    (List.map (fun r -> r.Shard.sh_id) missing)

(* --- codecs ----------------------------------------------------------- *)

let test_result_line_roundtrip () =
  List.iter
    (fun effect ->
      List.iter
        (fun (outcome, cycle, detect) ->
          let r =
            {
              Campaign.bit = 4242;
              outcome;
              effect;
              first_error_cycle = cycle;
              detect_cycle = detect;
              forensics = None;
            }
          in
          let line = Shard.result_to_line ~index:17 r in
          match Shard.result_of_line line with
          | Error e -> Alcotest.failf "roundtrip failed on %s: %s" line e
          | Ok (i, r') ->
              Alcotest.(check int) "index" 17 i;
              Alcotest.(check bool) "result survives" true (r = r'))
        [
          (Campaign.Silent, -1, -1);
          (Campaign.Wrong_answer, 12, -1);
          (Campaign.Silent, -1, 7);
          (Campaign.Wrong_answer, 12, 3);
        ])
    Classify.all

let test_manifest_roundtrip () =
  let m =
    {
      Shard.sm_id = 3;
      sm_lo = 30;
      sm_hi = 40;
      sm_wrong = 2;
      sm_stats =
        {
          Campaign.skipped = 1;
          patched = 2;
          rerouted = 3;
          rebuilt = 4;
          diffed = 5;
          converged = 6;
          batched = 7;
        };
      sm_wall_ns = 123456;
      sm_busy_ns = 111111;
      sm_setup_ns = 22222;
      sm_owner = 999;
      sm_fingerprint = "cafe1234";
    }
  in
  match Shard.manifest_of_json (Shard.manifest_to_json m) with
  | Error e -> Alcotest.failf "manifest roundtrip: %s" e
  | Ok m' -> Alcotest.(check bool) "manifest survives" true (m = m')

let test_shard_events_roundtrip () =
  List.iter
    (fun ev ->
      let line = Events.render ~seq:5 ~ts_ns:123 ev in
      match Events.parse_line line with
      | Error e -> Alcotest.failf "parse %s: %s" line e
      | Ok p ->
          Alcotest.(check bool)
            (Events.type_name ev ^ " survives")
            true
            (p.Events.p_event = ev))
    [
      Events.Shard_done
        { design = "tmr_p2"; shard = 3; lo = 30; hi = 40; wrong = 1; pending = 2 };
      Events.Job_queued { job = "j1"; design = "tmr_p2" };
      Events.Job_started { job = "j1"; design = "tmr_p2" };
      Events.Job_done
        { job = "j1"; design = "tmr_p2"; injected = 40; wrong = 2; wall_ns = 9 };
    ]

(* --- work queue ------------------------------------------------------- *)

let mk_manifest (r : Shard.range) =
  {
    Shard.sm_id = r.Shard.sh_id;
    sm_lo = r.Shard.sh_lo;
    sm_hi = r.Shard.sh_hi;
    sm_wrong = 0;
    sm_stats =
      {
        Campaign.skipped = 0;
        patched = 0;
        rerouted = 0;
        rebuilt = 0;
        diffed = 0;
        converged = 0;
        batched = 0;
      };
    sm_wall_ns = 1;
    sm_busy_ns = 1;
    sm_setup_ns = 0;
    sm_owner = Unix.getpid ();
    sm_fingerprint = "fp";
  }

let lines_of (r : Shard.range) =
  List.init
    (r.Shard.sh_hi - r.Shard.sh_lo)
    (fun i ->
      Shard.result_to_line ~index:(r.Shard.sh_lo + i)
        {
          Campaign.bit = 100 + r.Shard.sh_lo + i;
          outcome = Campaign.Silent;
          effect = Classify.Other_effect;
          first_error_cycle = -1;
          detect_cycle = -1;
          forensics = None;
        })

(* a pid guaranteed dead: fork a child that exits immediately *)
let dead_pid () =
  match Unix.fork () with
  | 0 -> Unix._exit 0
  | pid ->
      ignore (Unix.waitpid [] pid);
      pid

let test_workqueue_claims () =
  let wq = Workqueue.create ~dir:(temp_dir "wq") in
  let plan = Array.to_list (Shard.plan ~total:40 ~shards:4) in
  Alcotest.(check int) "seeded 4" 4 (Workqueue.seed wq plan);
  Alcotest.(check int) "seed is idempotent" 0 (Workqueue.seed wq plan);
  Alcotest.(check int) "4 pending" 4 (Workqueue.pending wq);
  let pid = Unix.getpid () in
  let r0 =
    match Workqueue.claim wq ~pid with
    | Some r -> r
    | None -> Alcotest.fail "nothing to claim"
  in
  Alcotest.(check int) "lowest id first" 0 r0.Shard.sh_id;
  (* a claimed range stays pending but cannot be claimed twice *)
  let r1 = Option.get (Workqueue.claim wq ~pid) in
  Alcotest.(check int) "next id" 1 r1.Shard.sh_id;
  Alcotest.(check int) "claims count as pending" 4 (Workqueue.pending wq);
  (* release puts it back at the head of the queue *)
  Workqueue.release wq ~pid r0;
  let r0' = Option.get (Workqueue.claim wq ~pid) in
  Alcotest.(check int) "released range comes back" 0 r0'.Shard.sh_id;
  (* complete persists results + manifest and drops the claim *)
  Workqueue.complete wq ~pid r1 ~lines:(lines_of r1) ~manifest:(mk_manifest r1);
  Alcotest.(check int) "one less pending" 3 (Workqueue.pending wq);
  (match Workqueue.load_done wq with
  | Ok [ m ] ->
      Alcotest.(check int) "done manifest id" 1 m.Shard.sm_id;
      (match Workqueue.read_results wq m with
      | Ok rs ->
          Alcotest.(check int) "results count" (m.Shard.sm_hi - m.Shard.sm_lo)
            (Array.length rs)
      | Error e -> Alcotest.failf "read_results: %s" e)
  | Ok ms -> Alcotest.failf "expected 1 done manifest, got %d" (List.length ms)
  | Error e -> Alcotest.failf "load_done: %s" e);
  (* live claims are not reclaimed *)
  Alcotest.(check int) "own claim is not an orphan" 0
    (Workqueue.reclaim_orphans wq)

let test_workqueue_reclaim () =
  let wq = Workqueue.create ~dir:(temp_dir "wq-orphan") in
  let plan = Array.to_list (Shard.plan ~total:40 ~shards:4) in
  ignore (Workqueue.seed wq plan);
  (* simulate a worker that died mid-shard: its claim file survives
     under a pid that is no longer alive *)
  let pid = dead_pid () in
  let r = Option.get (Workqueue.claim wq ~pid) in
  Alcotest.(check int) "claimed by the dead" 0 r.Shard.sh_id;
  Alcotest.(check int) "one orphan reclaimed" 1 (Workqueue.reclaim_orphans wq);
  let r' = Option.get (Workqueue.claim wq ~pid:(Unix.getpid ())) in
  Alcotest.(check int) "orphaned range claimable again" 0 r'.Shard.sh_id;
  (* a worker killed after its parent (kill -9 of the whole group in a
     container with no reaper) lingers as a zombie: kill(pid, 0) still
     succeeds, but the claim must be reclaimed all the same *)
  let zpid =
    match Unix.fork () with 0 -> Unix._exit 0 | pid -> pid
  in
  Unix.sleepf 0.05;
  let rz = Option.get (Workqueue.claim wq ~pid:zpid) in
  Alcotest.(check int) "claimed by the zombie" 1 rz.Shard.sh_id;
  Alcotest.(check int) "zombie's claim reclaimed" 1
    (Workqueue.reclaim_orphans wq);
  ignore (Unix.waitpid [] zpid)

(* --- end-to-end equivalence ------------------------------------------- *)

let result_testable =
  Alcotest.testable
    (fun ppf (r : Campaign.fault_result) ->
      Format.fprintf ppf "{bit=%d; wrong=%b; effect=%s; cycle=%d}"
        r.Campaign.bit
        (r.Campaign.outcome = Campaign.Wrong_answer)
        (Tmr_inject.Classify.name r.Campaign.effect)
        r.Campaign.first_error_cycle)
    ( = )

let check_matches_plain msg (plain : Campaign.t) (merged : Campaign.t) =
  Alcotest.(check int) (msg ^ ": injected") plain.Campaign.injected
    merged.Campaign.injected;
  Alcotest.(check int) (msg ^ ": wrong") plain.Campaign.wrong
    merged.Campaign.wrong;
  Alcotest.(check (array result_testable))
    (msg ^ ": per-fault results")
    plain.Campaign.results merged.Campaign.results;
  Alcotest.(check bool)
    (msg ^ ": plan-path stats")
    true
    (plain.Campaign.stats = merged.Campaign.stats)

(* sharded procs=1 over 4 shards == plain campaign, on all 5 designs *)
let test_sharded_equals_plain_all_designs () =
  let ctx = Lazy.force ctx in
  List.iter
    (fun strategy ->
      let run = Runs.implement_design ctx strategy in
      let plain =
        Option.get (Runs.campaign_design ~workers:1 ctx run).Runs.campaign
      in
      let job =
        Service.job ~scale:Context.Reduced ~seed:2 ~faults:40 ~shards:4
          strategy
      in
      match
        Service.run_sharded
          ~notify:(fun _ -> ())
          ~dir:(temp_dir ("eq-" ^ Partition.name strategy))
          job ctx run
      with
      | Error e -> Alcotest.failf "run_sharded: %s" e
      | Ok (Service.Incomplete _) -> Alcotest.fail "unexpectedly incomplete"
      | Ok (Service.Complete o) ->
          Alcotest.(check int) "all shards fresh" 4 o.Service.o_fresh;
          check_matches_plain (Partition.name strategy) plain
            o.Service.o_campaign)
    Partition.all_paper_designs

(* interrupt after 2 of 4 shards, resume in a second invocation: the
   merge is bit-identical and the finished shards are not re-simulated *)
let test_resume_bit_identical () =
  let ctx = Lazy.force ctx in
  let run = Lazy.force run_p2 in
  let plain =
    Option.get (Runs.campaign_design ~workers:1 ctx run).Runs.campaign
  in
  let job =
    Service.job ~scale:Context.Reduced ~seed:2 ~faults:40 ~shards:4
      Partition.Medium_partition
  in
  let dir = temp_dir "resume" in
  let shard_events = ref 0 in
  let notify = function Events.Shard_done _ -> incr shard_events | _ -> () in
  (match Service.run_sharded ~shard_limit:2 ~notify ~dir job ctx run with
  | Ok (Service.Incomplete { done_shards; pending_shards }) ->
      Alcotest.(check int) "2 shards done" 2 done_shards;
      Alcotest.(check int) "2 shards pending" 2 pending_shards
  | Ok (Service.Complete _) -> Alcotest.fail "shard limit ignored"
  | Error e -> Alcotest.failf "interrupted run: %s" e);
  Alcotest.(check int) "2 shard_done events" 2 !shard_events;
  match Service.run_sharded ~notify ~dir job ctx run with
  | Error e -> Alcotest.failf "resume: %s" e
  | Ok (Service.Incomplete _) -> Alcotest.fail "resume left work behind"
  | Ok (Service.Complete o) ->
      (* resumed shards come from manifests — only the missing two were
         simulated (each firing one more Shard_done) *)
      Alcotest.(check int) "2 shards resumed" 2 o.Service.o_resumed;
      Alcotest.(check int) "2 shards fresh" 2 o.Service.o_fresh;
      Alcotest.(check int) "4 shard_done events total" 4 !shard_events;
      check_matches_plain "resumed merge" plain o.Service.o_campaign

(* two forked worker processes, same verdicts *)
let test_procs2_bit_identical () =
  let ctx = Lazy.force ctx in
  let run = Lazy.force run_p2 in
  let plain =
    Option.get (Runs.campaign_design ~workers:1 ctx run).Runs.campaign
  in
  let job =
    Service.job ~scale:Context.Reduced ~seed:2 ~faults:40 ~shards:4
      Partition.Medium_partition
  in
  match
    Service.run_sharded ~procs:2
      ~notify:(fun _ -> ())
      ~dir:(temp_dir "procs2") job ctx run
  with
  | Error e -> Alcotest.failf "procs=2: %s" e
  | Ok (Service.Incomplete _) -> Alcotest.fail "procs=2 incomplete"
  | Ok (Service.Complete o) ->
      Alcotest.(check int) "merged campaign reports 2 workers" 2
        o.Service.o_campaign.Campaign.workers;
      check_matches_plain "procs=2 merge" plain o.Service.o_campaign

(* a queue directory belonging to a different job is refused — unless
   [fresh] wipes it *)
let test_fingerprint_guard () =
  let ctx = Lazy.force ctx in
  let run = Lazy.force run_p2 in
  let dir = temp_dir "guard" in
  let job20 =
    Service.job ~scale:Context.Reduced ~seed:2 ~faults:20 ~shards:2
      Partition.Medium_partition
  in
  let job40 =
    Service.job ~scale:Context.Reduced ~seed:2 ~faults:40 ~shards:2
      Partition.Medium_partition
  in
  (match Service.run_sharded ~notify:(fun _ -> ()) ~dir job20 ctx run with
  | Ok (Service.Complete _) -> ()
  | Ok (Service.Incomplete _) | Error _ -> Alcotest.fail "seed run failed");
  (match Service.run_sharded ~notify:(fun _ -> ()) ~dir job40 ctx run with
  | Error e ->
      Alcotest.(check bool) "mentions the mismatch" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "foreign queue dir accepted");
  match
    Service.run_sharded ~fresh:true ~notify:(fun _ -> ()) ~dir job40 ctx run
  with
  | Ok (Service.Complete o) ->
      Alcotest.(check int) "fresh wiped the old shards" 2 o.Service.o_fresh;
      Alcotest.(check int) "nothing resumed" 0 o.Service.o_resumed
  | Ok (Service.Incomplete _) | Error _ -> Alcotest.fail "fresh run failed"

(* --- exhaustive + job codec ------------------------------------------- *)

let test_exhaustive_faults () =
  let ctx = Lazy.force ctx in
  let run = Lazy.force run_p2 in
  let sampled =
    Service.faults_of ctx run
      (Service.job ~scale:Context.Reduced ~seed:2 ~faults:40
         Partition.Medium_partition)
  in
  Alcotest.(check int) "sampled size" 40 (Array.length sampled);
  let exhaustive =
    Service.faults_of ctx run
      (Service.job ~scale:Context.Reduced ~seed:2 ~exhaustive:true
         Partition.Medium_partition)
  in
  Alcotest.(check int) "every essential bit"
    (Array.length run.Runs.faultlist.Tmr_inject.Faultlist.bits)
    (Array.length exhaustive);
  (* the two fault spaces fingerprint differently *)
  let j1 =
    Service.job ~scale:Context.Reduced ~seed:2 ~faults:40
      Partition.Medium_partition
  in
  let j2 =
    Service.job ~scale:Context.Reduced ~seed:2 ~exhaustive:true
      Partition.Medium_partition
  in
  Alcotest.(check bool) "distinct fingerprints" false
    (Service.fingerprint j1 sampled = Service.fingerprint j2 exhaustive)

let test_job_json_roundtrip () =
  let j =
    Service.job ~scale:Context.Reduced ~seed:7 ~faults:123 ~exhaustive:true
      ~shards:9 ~workers:3 ~diff:false ~batch_width:32 Partition.Min_partition
  in
  match Service.job_of_json (Service.job_to_json j) with
  | Error e -> Alcotest.failf "job roundtrip: %s" e
  | Ok j' ->
      Alcotest.(check bool) "job survives" true (j = j');
      Alcotest.(check string) "name" "tmr_p3-reduced-seed7-exhaustive"
        (Service.job_name j)

(* --- store hardening rides along -------------------------------------- *)

let write_file path body =
  let oc = open_out path in
  output_string oc body;
  close_out oc

let test_store_load_dir_corrupt () =
  let ctx = Lazy.force ctx in
  let r = Runs.campaign_design ~workers:1 ctx (Lazy.force run_p2) in
  let dir = temp_dir "store" in
  let m = Store.of_run ~confidence:0.95 ~exhaustive:true ctx r in
  ignore (Store.save ~dir m);
  (* one syntactically broken file, one truncated mid-object, one that
     parses but is not a manifest *)
  write_file (Filename.concat dir "aa-corrupt.json") "not json at all";
  write_file (Filename.concat dir "bb-truncated.json")
    "{\"design\":\"tmr_p2\",\"seed\":2,\"scale\":\"red";
  write_file (Filename.concat dir "cc-wrong-shape.json") "{\"hello\":1}";
  let warned = ref [] in
  let ms = Store.load_dir ~warn:(fun s -> warned := s :: !warned) ~dir () in
  Alcotest.(check int) "only the valid manifest survives" 1 (List.length ms);
  Alcotest.(check int) "each bad file warned once" 3 (List.length !warned);
  let m' = List.hd ms in
  Alcotest.(check bool) "exhaustive flag survives the roundtrip" true
    m'.Store.m_exhaustive;
  (* the default warn printer must not raise either *)
  let ms' = Store.load_dir ~dir () in
  Alcotest.(check int) "default warn skips too" 1 (List.length ms')

let () =
  Alcotest.run "shard"
    [
      ( "planner",
        [
          Alcotest.test_case "tiles the fault space" `Quick test_plan_tiles;
          Alcotest.test_case "rejects invalid args" `Quick test_plan_invalid;
          Alcotest.test_case "missing ranges" `Quick test_ranges_missing;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "result line roundtrip" `Quick
            test_result_line_roundtrip;
          Alcotest.test_case "manifest roundtrip" `Quick
            test_manifest_roundtrip;
          Alcotest.test_case "shard/job events roundtrip" `Quick
            test_shard_events_roundtrip;
          Alcotest.test_case "job json roundtrip" `Quick
            test_job_json_roundtrip;
        ] );
      ( "workqueue",
        [
          Alcotest.test_case "seed/claim/complete" `Quick
            test_workqueue_claims;
          Alcotest.test_case "orphan reclaim" `Quick test_workqueue_reclaim;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "sharded == plain, all designs" `Slow
            test_sharded_equals_plain_all_designs;
          Alcotest.test_case "interrupt + resume, bit-identical" `Slow
            test_resume_bit_identical;
          Alcotest.test_case "2 forked procs, bit-identical" `Slow
            test_procs2_bit_identical;
          Alcotest.test_case "fingerprint guard + fresh" `Slow
            test_fingerprint_guard;
          Alcotest.test_case "exhaustive fault space" `Quick
            test_exhaustive_faults;
        ] );
      ( "store",
        [
          Alcotest.test_case "load_dir skips corrupt manifests" `Quick
            test_store_load_dir_corrupt;
        ] );
    ]
