(* Telemetry subsystem: exactness of the sharded metrics under domain
   concurrency, histogram percentile edge cases, Chrome-trace JSONL
   well-formedness and span nesting, and non-perturbation of campaign
   results. *)

module Metrics = Tmr_obs.Metrics
module Trace = Tmr_obs.Trace
module Progress = Tmr_obs.Progress
module Campaign = Tmr_inject.Campaign
module Partition = Tmr_core.Partition
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser — just enough to validate what Tmr_obs emits
   without pulling a JSON dependency into the repo. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= n then '\000' else s.[!pos] in
  let advance () = incr pos in
  let bad msg = raise (Bad_json (Printf.sprintf "%s at %d in %S" msg !pos s)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then bad (Printf.sprintf "expected %C" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> advance (); Buffer.add_char b '"'
          | '\\' -> advance (); Buffer.add_char b '\\'
          | '/' -> advance (); Buffer.add_char b '/'
          | 'n' -> advance (); Buffer.add_char b '\n'
          | 't' -> advance (); Buffer.add_char b '\t'
          | 'r' -> advance (); Buffer.add_char b '\r'
          | 'b' -> advance (); Buffer.add_char b '\b'
          | 'f' -> advance (); Buffer.add_char b '\012'
          | 'u' ->
              advance ();
              for _ = 1 to 4 do
                (match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> bad "bad \\u escape");
                advance ()
              done;
              Buffer.add_char b '?'
          | _ -> bad "bad escape");
          go ()
      | '\000' -> bad "eof in string"
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while num_char (peek ()) do
      advance ()
    done;
    if !pos = start then bad "expected a value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> bad "bad number"
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            if peek () = ',' then begin
              advance ();
              go ()
            end
            else expect '}'
          in
          go ();
          Obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value () :: !items;
            skip_ws ();
            if peek () = ',' then begin
              advance ();
              go ()
            end
            else expect ']'
          in
          go ();
          Arr (List.rev !items)
        end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage";
  v

let member k = function Obj kv -> List.assoc_opt k kv | _ -> None

let num_exn what = function
  | Some (Num f) -> f
  | _ -> Alcotest.failf "%s: missing or non-numeric" what

let str_exn what = function
  | Some (Str s) -> s
  | _ -> Alcotest.failf "%s: missing or non-string" what

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_concurrent_exact () =
  let c = Metrics.counter "test.concurrent.counter" in
  let h = Metrics.histogram "test.concurrent.hist" in
  let domains = 4 and per_domain = 25_000 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.incr c;
              (* spread samples over several buckets *)
              Metrics.observe h (100 * (1 + ((d + i) mod 4)))
            done))
  in
  Array.iter Domain.join workers;
  let snap = Metrics.snapshot () in
  let total = domains * per_domain in
  Alcotest.(check int)
    "counter sums exactly" total
    (List.assoc "test.concurrent.counter" snap.Metrics.counters);
  let hs = List.assoc "test.concurrent.hist" snap.Metrics.histograms in
  Alcotest.(check int) "histogram count sums exactly" total hs.Metrics.count;
  (* sum is exact too: each domain contributes a closed-form total *)
  let expected_sum = ref 0 in
  for d = 0 to domains - 1 do
    for i = 1 to per_domain do
      expected_sum := !expected_sum + (100 * (1 + ((d + i) mod 4)))
    done
  done;
  Alcotest.(check int) "histogram sum sums exactly" !expected_sum hs.Metrics.sum

let test_percentile_edge_cases () =
  (* empty *)
  let h0 = Metrics.histogram "test.pct.empty" in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Metrics.percentile h0 0.5);
  let snap = Metrics.snapshot () in
  let s0 = List.assoc "test.pct.empty" snap.Metrics.histograms in
  Alcotest.(check int) "empty count" 0 s0.Metrics.count;
  Alcotest.(check (float 0.0)) "empty mean" 0.0 s0.Metrics.mean;
  Alcotest.(check (float 0.0)) "empty p99" 0.0 s0.Metrics.p99;
  (* single sample: all percentiles hit the same bucket, whose upper
     bound over-estimates by at most the bucket ratio (~26% + rounding) *)
  let h1 = Metrics.histogram "test.pct.single" in
  Metrics.observe h1 5000;
  let s1 =
    List.assoc "test.pct.single" (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "single count" 1 s1.Metrics.count;
  Alcotest.(check int) "single sum" 5000 s1.Metrics.sum;
  Alcotest.(check (float 0.0)) "single p50 = p99" s1.Metrics.p99 s1.Metrics.p50;
  Alcotest.(check bool) "single p50 >= sample" true (s1.Metrics.p50 >= 5000.0);
  Alcotest.(check bool) "single p50 within bucket ratio" true
    (s1.Metrics.p50 <= 5000.0 *. 1.3);
  (* non-positive samples land in the first bucket instead of crashing *)
  let hz = Metrics.histogram "test.pct.zero" in
  Metrics.observe hz 0;
  Metrics.observe hz (-7);
  let sz =
    List.assoc "test.pct.zero" (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "zero/negative counted" 2 sz.Metrics.count;
  Alcotest.(check int) "negative clamped out of sum" 0 sz.Metrics.sum;
  (* uniform 1..1000: nearest-rank percentiles, within one bucket ratio *)
  let hu = Metrics.histogram "test.pct.uniform" in
  for v = 1 to 1000 do
    Metrics.observe hu v
  done;
  let su =
    List.assoc "test.pct.uniform" (Metrics.snapshot ()).Metrics.histograms
  in
  let in_range what lo hi v =
    if v < lo || v > hi then
      Alcotest.failf "%s: %.1f outside [%.1f, %.1f]" what v lo hi
  in
  in_range "uniform p50" 500.0 650.0 su.Metrics.p50;
  in_range "uniform p95" 950.0 1300.0 su.Metrics.p95;
  in_range "uniform p99" 990.0 1300.0 su.Metrics.p99;
  Alcotest.(check (float 0.001)) "uniform mean exact" 500.5 su.Metrics.mean

let test_hist_buckets () =
  let h = Metrics.histogram "test.buckets.hist" in
  Metrics.observe h 1;
  Metrics.observe h 1000;
  Metrics.observe h 1000;
  Metrics.observe h 1_000_000;
  (* far beyond the last finite bound: lands in the max_int catch-all *)
  Metrics.observe h 1_000_000_000_000_000_000;
  let hs =
    List.assoc "test.buckets.hist" (Metrics.snapshot ()).Metrics.histograms
  in
  Alcotest.(check int) "count" 5 hs.Metrics.count;
  let bsum = Array.fold_left (fun acc (_, c) -> acc + c) 0 hs.Metrics.buckets in
  Alcotest.(check int) "bucket counts sum to count" hs.Metrics.count bsum;
  Array.iter
    (fun (_, c) -> Alcotest.(check bool) "only occupied buckets" true (c > 0))
    hs.Metrics.buckets;
  let bounds = Array.map fst hs.Metrics.buckets in
  Array.iteri
    (fun i b ->
      if i > 0 then
        Alcotest.(check bool) "bounds ascending" true (b > bounds.(i - 1)))
    bounds;
  let last_bound, _ = hs.Metrics.buckets.(Array.length hs.Metrics.buckets - 1) in
  Alcotest.(check int) "huge sample in the catch-all" max_int last_bound;
  (* the JSON snapshot exposes the same buckets, catch-all bound as -1 *)
  let j = parse_json (Metrics.to_json_string (Metrics.snapshot ())) in
  let buckets =
    Option.bind (member "histograms" j) (member "test.buckets.hist")
    |> Fun.flip Option.bind (member "buckets")
  in
  match buckets with
  | Some (Arr pairs) ->
      Alcotest.(check int) "JSON bucket count"
        (Array.length hs.Metrics.buckets)
        (List.length pairs);
      let jsum =
        List.fold_left
          (fun acc p ->
            match p with
            | Arr [ Num bound; Num c ] ->
                Alcotest.(check bool) "JSON bound is -1 or positive" true
                  (bound = -1.0 || bound > 0.0);
                acc + int_of_float c
            | _ -> Alcotest.fail "bucket is not a [bound, count] pair")
          0 pairs
      in
      Alcotest.(check int) "JSON bucket counts sum to count" hs.Metrics.count
        jsum;
      (match List.rev pairs with
      | Arr [ Num bound; Num _ ] :: _ ->
          Alcotest.(check (float 0.0)) "catch-all renders as -1" (-1.0) bound
      | _ -> Alcotest.fail "no last bucket")
  | _ -> Alcotest.fail "buckets missing from JSON snapshot"

let test_snapshot_json_parses () =
  let c = Metrics.counter "test.json.counter\"quoted\"" in
  Metrics.incr ~by:42 c;
  let json = Metrics.to_json_string (Metrics.snapshot ()) in
  match parse_json json with
  | Obj _ as j ->
      let counters = member "counters" j in
      Alcotest.(check (float 0.0))
        "escaped counter round-trips" 42.0
        (num_exn "counter"
           (Option.bind counters (member "test.json.counter\"quoted\"")))
  | _ -> Alcotest.fail "snapshot JSON is not an object"

(* ------------------------------------------------------------------ *)
(* Tracing: a traced reduced-scale campaign produces line-by-line valid
   JSONL whose spans nest properly per thread track. *)

let ctx = lazy (Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:40 ())

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let run_traced_campaign () =
  let path = Filename.temp_file "tmr_trace" ".jsonl" in
  let ctx = Lazy.force ctx in
  Trace.to_file path;
  let campaign =
    Fun.protect
      ~finally:(fun () -> Trace.close ())
      (fun () ->
        let run = Runs.implement_design ctx Partition.Medium_partition in
        Option.get (Runs.campaign_design ~workers:1 ctx run).Runs.campaign)
  in
  (campaign, path)

let test_trace_jsonl () =
  let campaign, path = run_traced_campaign () in
  let lines = read_lines path in
  Alcotest.(check bool) "trace is non-empty" true (List.length lines > 10);
  let events = List.map parse_json lines in
  (* every line is a complete event with the mandatory fields *)
  let spans =
    List.map
      (fun ev ->
        Alcotest.(check string) "ph" "X" (str_exn "ph" (member "ph" ev));
        let name = str_exn "name" (member "name" ev) in
        let ts = num_exn "ts" (member "ts" ev) in
        let dur = num_exn "dur" (member "dur" ev) in
        let tid = num_exn "tid" (member "tid" ev) in
        ignore (num_exn "pid" (member "pid" ev));
        Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
        (name, ts, dur, tid, ev))
      events
  in
  let names = List.map (fun (n, _, _, _, _) -> n) spans in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %S present" expected)
        true (List.mem expected names))
    [ "techmap"; "pack"; "place"; "route"; "bitgen"; "timing"; "implement";
      "golden"; "extract"; "campaign"; "fault" ];
  (* per-fault spans carry their plan path *)
  let fault_paths =
    List.filter_map
      (fun (n, _, _, _, ev) ->
        if n = "fault" then
          Some (str_exn "fault args.path" (Option.bind (member "args" ev) (member "path")))
        else None)
      spans
  in
  Alcotest.(check int) "one fault span per fault"
    campaign.Campaign.injected (List.length fault_paths);
  List.iter
    (fun p ->
      Alcotest.(check bool) "path tag valid" true
        (List.mem p [ "silent"; "patch"; "reroute"; "rebuild"; "diff" ]))
    fault_paths;
  let s = campaign.Campaign.stats in
  Alcotest.(check int) "rebuild tags match engine stats"
    s.Campaign.rebuilt
    (List.length (List.filter (( = ) "rebuild") fault_paths));
  (* spans nest: within one tid, sorted by (ts, -dur), every span lies
     inside the enclosing open span (complete events never partially
     overlap on a track) *)
  let eps = 0.005 (* µs; ts/dur carry ns precision rounded to 3 decimals *) in
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun (_, ts, dur, tid, _) ->
      Hashtbl.replace by_tid tid
        ((ts, dur) :: Option.value ~default:[] (Hashtbl.find_opt by_tid tid)))
    spans;
  Hashtbl.iter
    (fun tid evs ->
      let evs =
        List.sort
          (fun (ts1, d1) (ts2, d2) ->
            if ts1 <> ts2 then compare ts1 ts2 else compare d2 d1)
          evs
      in
      let stack = ref [] in
      List.iter
        (fun (ts, dur) ->
          while
            match !stack with
            | top_end :: rest when ts >= top_end -. eps ->
                stack := rest;
                true
            | _ -> false
          do
            ()
          done;
          (match !stack with
          | top_end :: _ ->
              if ts +. dur > top_end +. eps then
                Alcotest.failf
                  "tid %.0f: span [%f, %f] overlaps its parent ending at %f"
                  tid ts (ts +. dur) top_end
          | [] -> ());
          stack := (ts +. dur) :: !stack)
        evs)
    by_tid;
  Sys.remove path;
  (* the campaign also populated the engine metrics *)
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "pool.chunks counted" true
    (List.assoc "pool.chunks" snap.Metrics.counters > 0);
  let total_latency =
    List.fold_left
      (fun acc path ->
        match
          List.assoc_opt ("campaign.fault_ns." ^ path) snap.Metrics.histograms
        with
        | Some h -> acc + h.Metrics.count
        | None -> acc)
      0
      [ "silent"; "patch"; "reroute"; "rebuild"; "diff"; "batch" ]
  in
  Alcotest.(check bool) "per-path latency histograms cover every fault" true
    (total_latency >= campaign.Campaign.injected)

(* results must be bit-identical with tracing on and off *)
let test_trace_does_not_perturb () =
  let ctx = Lazy.force ctx in
  let run = Runs.implement_design ctx Partition.Medium_partition in
  let path = Filename.temp_file "tmr_trace" ".jsonl" in
  Trace.to_file path;
  let traced =
    Fun.protect
      ~finally:(fun () -> Trace.close ())
      (fun () ->
        Option.get (Runs.campaign_design ~workers:2 ctx run).Runs.campaign)
  in
  Sys.remove path;
  let plain =
    Option.get (Runs.campaign_design ~workers:2 ctx run).Runs.campaign
  in
  Alcotest.(check bool) "results identical traced vs untraced" true
    (traced.Campaign.results = plain.Campaign.results);
  Alcotest.(check int) "same wrong count" plain.Campaign.wrong
    traced.Campaign.wrong;
  (* engine accounting is populated either way *)
  Alcotest.(check bool) "wall time measured" true (plain.Campaign.wall_ns > 0);
  Alcotest.(check int) "one busy cell per worker" plain.Campaign.workers
    (Array.length plain.Campaign.busy_ns);
  let u = Campaign.utilization plain in
  Alcotest.(check bool) "utilization in (0, 1]" true (u > 0.0 && u <= 1.0 +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Progress renderer (non-TTY branch) *)

let test_progress_callback () =
  let path = Filename.temp_file "tmr_progress" ".txt" in
  let out = open_out path in
  let cb = Progress.callback ~out () in
  cb "alpha" 10 100;
  cb "alpha" 50 100;
  cb "alpha" 100 100;
  cb "beta" 400 400;
  close_out out;
  let lines = read_lines path in
  Sys.remove path;
  let has_prefix p l = String.length l >= String.length p
                       && String.sub l 0 (String.length p) = p in
  Alcotest.(check bool) "alpha rendered" true
    (List.exists (has_prefix "alpha: ") lines);
  Alcotest.(check bool) "alpha completed" true
    (List.exists (has_prefix "alpha: 100/100") lines);
  Alcotest.(check bool) "label switch starts a new bar" true
    (List.exists (has_prefix "beta: 400/400") lines)

(* ------------------------------------------------------------------ *)
(* Tmr_obs.Json parser error paths: every malformed input yields
   [Error], never an exception or a mangled tree. *)

let test_json_error_paths () =
  let rejects name input =
    match Tmr_obs.Json.parse input with
    | Error msg ->
        Alcotest.(check bool)
          (name ^ ": error message non-empty")
          true
          (String.length msg > 0)
    | Ok _ -> Alcotest.failf "%s: accepted %S" name input
  in
  (* truncated input *)
  rejects "empty input" "";
  rejects "truncated object" "{\"a\": 1";
  rejects "truncated array" "[1, 2";
  rejects "truncated string" "\"abc";
  rejects "key without value" "{\"a\"";
  rejects "dangling comma" "[1,";
  rejects "truncated escape" "\"\\";
  rejects "truncated unicode escape" "\"\\u12";
  (* bad escapes and tokens *)
  rejects "unknown escape" "\"\\q\"";
  rejects "non-hex unicode escape" "\"\\uzzzz\"";
  rejects "bare minus" "-";
  rejects "double dot number" "1.2.3";
  rejects "misspelled literal" "ture";
  rejects "trailing garbage" "1 2";
  (* deep nesting fails cleanly instead of overflowing the stack *)
  rejects "deep array nesting" (String.make 5000 '[');
  rejects "deep closed nesting"
    (String.make 1000 '[' ^ "1" ^ String.make 1000 ']');
  (match Tmr_obs.Json.parse "{\"a\": [1, {\"b\": null}]}" with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "valid document rejected: %s" msg);
  (* nesting below the limit still parses *)
  (match
     Tmr_obs.Json.parse (String.make 100 '[' ^ "0" ^ String.make 100 ']')
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "100-deep array rejected: %s" msg);
  (* parse_exn converts the same errors into Failure *)
  match Tmr_obs.Json.parse_exn "[1," with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "parse_exn: expected Failure on truncated array"

(* ------------------------------------------------------------------ *)
(* Coverage heatmap on degenerate grids: an empty fault list renders a
   blank (all-spaces) grid, and a zero-density sample renders only
   uninjected marks — never digits, '#' or a crash. *)

let heatmap_grid_lines t text =
  (* interior rows between the +---+ borders, frame stripped *)
  let lines = String.split_on_char '\n' text in
  let interior =
    List.filter
      (fun l ->
        String.length l > 3
        && String.sub l 0 3 = "  |"
        && l.[String.length l - 1] = '|')
      lines
  in
  Alcotest.(check int) "one rendered line per grid row"
    t.Tmr_inject.Coverage.rows (List.length interior);
  List.map
    (fun l -> String.sub l 3 (String.length l - 4))
    interior

let test_coverage_empty_grid () =
  let dev = Tmr_arch.Device.build Tmr_arch.Arch.small in
  let db = Tmr_arch.Bitdb.build dev in
  let empty = { Tmr_inject.Faultlist.bits = [||]; by_class = [] } in
  let cov =
    Tmr_inject.Coverage.of_faults ~db ~faultlist:empty ~faults:[||]
  in
  Alcotest.(check int) "no essential bits" 0 cov.Tmr_inject.Coverage.essential;
  Alcotest.(check int) "no injected bits" 0 cov.Tmr_inject.Coverage.injected;
  Alcotest.(check int) "no distinct bits" 0
    cov.Tmr_inject.Coverage.injected_distinct;
  let text = Tmr_inject.Coverage.heatmap cov in
  List.iter
    (fun row ->
      Alcotest.(check int) "grid row width" cov.Tmr_inject.Coverage.cols
        (String.length row);
      String.iter
        (fun ch ->
          Alcotest.(check char) "empty grid renders spaces only" ' ' ch)
        row)
    (heatmap_grid_lines cov text);
  (* the JSON form of the degenerate record still parses *)
  match
    Tmr_obs.Json.parse
      (Tmr_obs.Json.to_string (Tmr_inject.Coverage.to_json cov))
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "empty coverage JSON rejected: %s" msg

let test_coverage_zero_density () =
  let dev = Tmr_arch.Device.build Tmr_arch.Arch.small in
  let db = Tmr_arch.Bitdb.build dev in
  (* a real fault list but an empty sample: density is zero everywhere *)
  let faultlist =
    {
      Tmr_inject.Faultlist.bits = Array.init 64 (fun i -> i * 7);
      by_class = [];
    }
  in
  let cov = Tmr_inject.Coverage.of_faults ~db ~faultlist ~faults:[||] in
  Alcotest.(check int) "essential bits counted" 64
    cov.Tmr_inject.Coverage.essential;
  Alcotest.(check int) "no injected bits" 0 cov.Tmr_inject.Coverage.injected;
  let saw_dot = ref false in
  List.iter
    (String.iter (fun ch ->
         if ch = '.' then saw_dot := true
         else
           Alcotest.(check char)
             "zero-density grid has no digits or fills"
             ' ' ch))
    (heatmap_grid_lines cov (Tmr_inject.Coverage.heatmap cov));
  Alcotest.(check bool) "essential cells rendered as uninjected" true !saw_dot

(* keep last: wipes every registered instrument *)
let test_reset () =
  let c = Metrics.counter "test.reset.counter" in
  let h = Metrics.histogram "test.reset.hist" in
  Metrics.incr ~by:7 c;
  Metrics.observe h 123;
  Metrics.reset ();
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter zeroed" 0
    (List.assoc "test.reset.counter" snap.Metrics.counters);
  let hs = List.assoc "test.reset.hist" snap.Metrics.histograms in
  Alcotest.(check int) "histogram zeroed" 0 hs.Metrics.count;
  Alcotest.(check (float 0.0)) "percentiles zeroed" 0.0 hs.Metrics.p99

let () =
  Alcotest.run "tmr_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "concurrent increments sum exactly" `Quick
            test_concurrent_exact;
          Alcotest.test_case "percentile edge cases" `Quick
            test_percentile_edge_cases;
          Alcotest.test_case "histogram buckets in snapshot" `Quick
            test_hist_buckets;
          Alcotest.test_case "snapshot JSON parses" `Quick
            test_snapshot_json_parses;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "campaign JSONL parses and nests" `Slow
            test_trace_jsonl;
          Alcotest.test_case "tracing does not perturb results" `Slow
            test_trace_does_not_perturb;
        ] );
      ( "progress",
        [ Alcotest.test_case "labelled callback" `Quick test_progress_callback ] );
      ( "json",
        [
          Alcotest.test_case "parser error paths" `Quick test_json_error_paths;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "heatmap on empty fault list" `Quick
            test_coverage_empty_grid;
          Alcotest.test_case "heatmap on zero-density sample" `Quick
            test_coverage_zero_density;
        ] );
      ( "reset", [ Alcotest.test_case "reset zeroes" `Quick test_reset ] );
    ]
