(* Campaign observatory: Stats numerics against reference values, the
   small JSON codec, injection-coverage invariants, the persistent run
   store with its regression report, and the CI-stop truncation
   equivalence on all five paper designs. *)

module Stats = Tmr_obs.Stats
module Json = Tmr_obs.Json
module Coverage = Tmr_inject.Coverage
module Campaign = Tmr_inject.Campaign
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Store = Tmr_experiments.Store
module Partition = Tmr_core.Partition

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Stats: every number below is a published reference value *)

let check_f what tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.6f, got %.6f" what expected actual

let test_normal () =
  check_f "z_of 0.95" 1e-5 1.959964 (Stats.z_of 0.95);
  check_f "z_of 0.99" 1e-5 2.575829 (Stats.z_of 0.99);
  check_f "z_of 0.80" 1e-5 1.281552 (Stats.z_of 0.80);
  check_f "cdf 0" 1e-9 0.5 (Stats.normal_cdf 0.0);
  check_f "cdf 1.96" 1e-6 0.975002 (Stats.normal_cdf 1.96);
  (* quantile inverts cdf across the range, including the tails *)
  List.iter
    (fun p -> check_f "quantile o cdf" 1e-7 p
        (Stats.normal_cdf (Stats.normal_quantile p)))
    [ 1e-6; 0.001; 0.02; 0.3; 0.5; 0.7; 0.98; 0.999; 1. -. 1e-6 ];
  Alcotest.check_raises "quantile rejects 0"
    (Invalid_argument "Stats.normal_quantile: p outside (0, 1)") (fun () ->
      ignore (Stats.normal_quantile 0.0))

let test_wilson () =
  let i = Stats.wilson ~n:100 ~k:10 () in
  check_f "wilson lo 10/100" 1e-3 0.0552 i.Stats.lo;
  check_f "wilson hi 10/100" 1e-3 0.1744 i.Stats.hi;
  (* never degenerate: zero wrong answers still bound the rate *)
  let z = Stats.wilson ~n:100 ~k:0 () in
  check_f "wilson lo 0/100" 1e-9 0.0 z.Stats.lo;
  Alcotest.(check bool) "wilson hi 0/100 positive, finite" true
    (z.Stats.hi > 0.0 && z.Stats.hi < 0.05);
  let f = Stats.wilson ~n:100 ~k:100 () in
  check_f "wilson hi 100/100" 1e-9 1.0 f.Stats.hi;
  Alcotest.(check bool) "wilson lo 100/100 below 1" true (f.Stats.lo < 1.0);
  let v = Stats.wilson ~n:0 ~k:0 () in
  Alcotest.(check bool) "n=0 vacuous" true (v.Stats.lo = 0.0 && v.Stats.hi = 1.0);
  (* width shrinks with n at a fixed rate *)
  let w n = let i = Stats.wilson ~n ~k:(n / 10) () in i.Stats.hi -. i.Stats.lo in
  Alcotest.(check bool) "width monotone in n" true
    (w 100 > w 1000 && w 1000 > w 10000)

let test_clopper_pearson () =
  let i = Stats.clopper_pearson ~n:100 ~k:10 () in
  check_f "cp lo 10/100" 2e-3 0.0490 i.Stats.lo;
  check_f "cp hi 10/100" 2e-3 0.1762 i.Stats.hi;
  let z = Stats.clopper_pearson ~n:100 ~k:0 () in
  check_f "cp lo 0/100" 1e-9 0.0 z.Stats.lo;
  check_f "cp hi 0/100 (rule of three-ish)" 2e-3 0.0362 z.Stats.hi;
  (* exact interval is at least as wide as Wilson *)
  List.iter
    (fun (n, k) ->
      let w = Stats.wilson ~n ~k () and c = Stats.clopper_pearson ~n ~k () in
      Alcotest.(check bool)
        (Printf.sprintf "cp wider than wilson at %d/%d" k n)
        true
        (c.Stats.hi -. c.Stats.lo >= w.Stats.hi -. w.Stats.lo -. 1e-9))
    [ (50, 1); (100, 10); (500, 250); (2500, 24) ]

let test_compatibility () =
  check_f "two-proportion z" 1e-3 (-1.9803)
    (Stats.two_proportion_z ~n1:100 ~k1:10 ~n2:100 ~k2:20);
  check_f "z symmetric" 1e-9 0.0
    (Stats.two_proportion_z ~n1:100 ~k1:10 ~n2:100 ~k2:20
     +. Stats.two_proportion_z ~n1:100 ~k1:20 ~n2:100 ~k2:10);
  check_f "p-value of 1.96" 1e-3 0.0500 (Stats.p_value 1.96);
  check_f "degenerate z" 1e-9 0.0
    (Stats.two_proportion_z ~n1:100 ~k1:0 ~n2:100 ~k2:0);
  Alcotest.(check bool) "close rates compatible" true
    (Stats.compatible ~n1:1000 ~k1:100 ~n2:1000 ~k2:110 ());
  Alcotest.(check bool) "distant rates incompatible" false
    (Stats.compatible ~n1:1000 ~k1:100 ~n2:1000 ~k2:200 ());
  Alcotest.(check bool) "overlap symmetric" true
    (Stats.overlap { Stats.lo = 0.1; hi = 0.3 } { Stats.lo = 0.25; hi = 0.5 }
     && Stats.overlap { Stats.lo = 0.25; hi = 0.5 } { Stats.lo = 0.1; hi = 0.3 });
  Alcotest.(check bool) "disjoint intervals" false
    (Stats.overlap { Stats.lo = 0.1; hi = 0.2 } { Stats.lo = 0.3; hi = 0.5 })

let test_stop_rule () =
  let r = Stats.stop_rule ~half_width:0.05 ~min_n:100 () in
  Alcotest.(check bool) "min_n gates stopping" false
    (Stats.should_stop r ~n:50 ~k:0);
  Alcotest.(check bool) "wide CI keeps going" false
    (Stats.should_stop r ~n:100 ~k:50);
  Alcotest.(check bool) "narrow CI stops" true
    (Stats.should_stop r ~n:1000 ~k:10);
  (* the rule is exactly the Wilson half-width *)
  let i = Stats.wilson ~n:150 ~k:3 () in
  Alcotest.(check bool) "rule matches wilson half-width"
    ((i.Stats.hi -. i.Stats.lo) /. 2.0 <= 0.05)
    (Stats.should_stop r ~n:150 ~k:3);
  Alcotest.check_raises "half_width must be positive"
    (Invalid_argument "Stats.stop_rule: half_width must be positive")
    (fun () -> ignore (Stats.stop_rule ~half_width:0.0 ()))

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let test_json_roundtrip () =
  let src = {|{"a": [1, 2.5, "x\n\"y\""], "b": {"c": true, "d": null}, "e": -3}|} in
  let j = Json.parse_exn src in
  Alcotest.(check (option string)) "string accessor" (Some "x\n\"y\"")
    (Option.bind
       (Option.bind (Json.member "a" j) (fun a -> List.nth_opt (Json.arr a) 2))
       Json.str);
  Alcotest.(check (option int)) "int accessor" (Some (-3))
    (Option.bind (Json.member "e" j) Json.int);
  Alcotest.(check (option int)) "2.5 is not an int" None
    (Option.bind
       (Option.bind (Json.member "a" j) (fun a -> List.nth_opt (Json.arr a) 1))
       Json.int);
  Alcotest.(check (option bool)) "nested bool" (Some true)
    (Option.bind (Option.bind (Json.member "b" j) (Json.member "c")) Json.bool);
  (* print o parse is the identity on the tree *)
  Alcotest.(check bool) "roundtrip" true
    (Json.parse_exn (Json.to_string j) = j);
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated JSON accepted");
  (match Json.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted")

(* ------------------------------------------------------------------ *)
(* Coverage *)

let ctx =
  lazy (Context.create ~scale:Context.Reduced ~seed:3 ~faults_per_design:200 ())

let p2_run =
  lazy
    (let c = Lazy.force ctx in
     Runs.campaign_design ~workers:1 c
       (Runs.implement_design c Partition.Medium_partition))

let test_coverage_invariants () =
  let run = Lazy.force p2_run in
  let cov = Option.get (Runs.coverage_of run) in
  Alcotest.(check int) "injected = campaign sample" 200 cov.Coverage.injected;
  Alcotest.(check bool) "distinct <= injected" true
    (cov.Coverage.injected_distinct <= cov.Coverage.injected
     && cov.Coverage.injected_distinct > 0);
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 cov.Coverage.classes in
  Alcotest.(check int) "class essential partition the fault list"
    cov.Coverage.essential
    (sum (fun c -> c.Coverage.cc_essential));
  Alcotest.(check int) "class injected partition the distinct sample"
    cov.Coverage.injected_distinct
    (sum (fun c -> c.Coverage.cc_injected));
  List.iter
    (fun c ->
      Alcotest.(check bool) "class injected <= essential <= device" true
        (c.Coverage.cc_injected <= c.Coverage.cc_essential
         && c.Coverage.cc_essential <= c.Coverage.cc_device))
    cov.Coverage.classes;
  let gsum g = Array.fold_left (Array.fold_left ( + )) 0 g in
  Alcotest.(check int) "essential grid mass" cov.Coverage.essential
    (gsum cov.Coverage.grid_essential);
  Alcotest.(check int) "injected grid mass" cov.Coverage.injected_distinct
    (gsum cov.Coverage.grid_injected);
  (* JSON export parses back with consistent headline numbers *)
  let j = Json.parse_exn (Json.to_string (Coverage.to_json cov)) in
  let geti k = Option.bind (Json.member k j) Json.int in
  Alcotest.(check (option int)) "json essential" (Some cov.Coverage.essential)
    (geti "essential");
  Alcotest.(check (option int)) "json distinct"
    (Some cov.Coverage.injected_distinct)
    (geti "injected_distinct");
  (match Option.map Json.arr (Json.member "classes" j) with
  | Some l -> Alcotest.(check int) "four classes" 4 (List.length l)
  | None -> Alcotest.fail "classes missing");
  (* ASCII heatmap: one row per grid row plus borders and the legend *)
  let hm = Coverage.heatmap cov in
  Alcotest.(check int) "heatmap line count" (cov.Coverage.rows + 4)
    (List.length (String.split_on_char '\n' (String.trim hm)));
  Alcotest.(check bool) "heatmap legend" true (contains hm "uninjected")

(* ------------------------------------------------------------------ *)
(* CI stop: bit-identical to the full campaign truncated at the stop
   index, on every design, independent of worker count *)

let test_stop_at_ci_truncation () =
  let c = Lazy.force ctx in
  let rule = Stats.stop_rule ~half_width:0.05 ~min_n:20 () in
  List.iter
    (fun strategy ->
      let name = Partition.name strategy in
      let impl = Runs.implement_design c strategy in
      let full =
        Option.get (Runs.campaign_design ~workers:1 c impl).Runs.campaign
      in
      let stopped w =
        Option.get
          (Runs.campaign_design ~workers:w ~stop_at_ci:rule c impl)
            .Runs.campaign
      in
      let s1 = stopped 1 and s2 = stopped 2 in
      Alcotest.(check int)
        (name ^ ": stop index is worker-independent")
        s1.Campaign.injected s2.Campaign.injected;
      Alcotest.(check int) (name ^ ": requested preserved") 200
        s1.Campaign.requested;
      Alcotest.(check bool) (name ^ ": injected <= requested") true
        (s1.Campaign.injected <= s1.Campaign.requested);
      Alcotest.(check bool)
        (name ^ ": results = full prefix") true
        (s1.Campaign.results
        = Array.sub full.Campaign.results 0 s1.Campaign.injected);
      Alcotest.(check bool)
        (name ^ ": workers agree bit-for-bit") true
        (s1.Campaign.results = s2.Campaign.results);
      let wrong_prefix =
        Array.fold_left
          (fun acc r ->
            if r.Campaign.outcome = Campaign.Wrong_answer then acc + 1 else acc)
          0 s1.Campaign.results
      in
      Alcotest.(check int) (name ^ ": wrong recount") wrong_prefix
        s1.Campaign.wrong;
      (* if the rule fired before the end, the prefix satisfies it *)
      if s1.Campaign.injected < s1.Campaign.requested then
        Alcotest.(check bool) (name ^ ": stop rule satisfied") true
          (Stats.should_stop rule ~n:s1.Campaign.injected ~k:s1.Campaign.wrong))
    Partition.all_paper_designs

(* ------------------------------------------------------------------ *)
(* Run store and regression report *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tmr_store_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_store_roundtrip () =
  let c = Lazy.force ctx in
  let run = Lazy.force p2_run in
  let m = Store.of_run c run in
  Alcotest.(check string) "design" "tmr_p2" m.Store.m_design;
  Alcotest.(check string) "scale" "reduced" m.Store.m_scale;
  Alcotest.(check int) "injected" 200 m.Store.m_injected;
  Alcotest.(check int) "digest is md5 hex" 32
    (String.length m.Store.m_metrics_digest);
  (* to_json / of_json is the identity on the record *)
  (match Store.of_json (Json.parse_exn (Json.to_string (Store.to_json m))) with
  | Ok m' -> Alcotest.(check bool) "manifest roundtrips" true (m = m')
  | Error e -> Alcotest.failf "of_json failed: %s" e);
  (match Store.of_json (Json.parse_exn {|{"design": "x"}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete manifest accepted");
  with_temp_dir (fun dir ->
      let p1 = Store.save ~dir m in
      Alcotest.(check bool) "save path inside dir" true
        (contains p1 "tmr_p2-seed3-");
      let m2 = { m with Store.m_created = m.Store.m_created +. 5.0 } in
      ignore (Store.save ~dir m2);
      match Store.load_dir ~dir () with
      | [ a; b ] ->
          Alcotest.(check bool) "oldest first" true
            (a.Store.m_created < b.Store.m_created);
          Alcotest.(check bool) "baseline is the latest" true
            (Store.baseline_for ~history:[ a; b ] m = Some b)
      | l -> Alcotest.failf "expected 2 manifests, loaded %d" (List.length l));
  Alcotest.(check (list pass)) "missing dir is empty history" []
    (Store.load_dir ~dir:"/nonexistent/tmr-store" ())

let test_report_verdicts () =
  let c = Lazy.force ctx in
  let p2 = Store.of_run c (Lazy.force p2_run) in
  let standard =
    Store.of_run c
      (Runs.campaign_design ~workers:1 c
         (Runs.implement_design c Partition.Unprotected))
  in
  (* no history: everything is new *)
  let fresh = Store.report_markdown ~history:[] [ p2 ] in
  Alcotest.(check bool) "no baseline -> new" true (contains fresh "| new |");
  Alcotest.(check bool) "rate has a CI" true (contains fresh "%] |");
  (* same campaign re-observed: compatible with itself *)
  let again = Store.report_markdown ~history:[ p2 ] [ p2 ] in
  Alcotest.(check bool) "self-compare compatible" true
    (contains again "compatible");
  Alcotest.(check bool) "no spurious regression" false
    (contains again "regression");
  (* a deliberately degraded design: the unprotected campaign's counts
     masquerading as tmr_p2 must be flagged against the tmr_p2 baseline *)
  let degraded = { standard with Store.m_design = p2.Store.m_design } in
  let reg = Store.report_markdown ~history:[ p2 ] [ degraded ] in
  Alcotest.(check bool) "degraded flagged as regression" true
    (contains reg "**regression**");
  (* and the mirror image reads as an improvement *)
  let imp =
    Store.report_markdown ~history:[ degraded ] [ p2 ]
  in
  Alcotest.(check bool) "recovery flagged as improvement" true
    (contains imp "improvement");
  (* throughput collapse is called out even when rates agree *)
  let slow = { p2 with Store.m_faults_per_sec = p2.Store.m_faults_per_sec /. 10. } in
  let thr = Store.report_markdown ~history:[ p2 ] [ slow ] in
  Alcotest.(check bool) "throughput regression noted" true
    (contains thr "throughput regression");
  (* coverage section renders the per-class cells *)
  Alcotest.(check bool) "coverage section" true
    (contains fresh "## Injection coverage")

let () =
  Alcotest.run "tmr_observatory"
    [
      ( "stats",
        [
          Alcotest.test_case "normal quantile/cdf" `Quick test_normal;
          Alcotest.test_case "wilson interval" `Quick test_wilson;
          Alcotest.test_case "clopper-pearson interval" `Quick
            test_clopper_pearson;
          Alcotest.test_case "compatibility tests" `Quick test_compatibility;
          Alcotest.test_case "stop rule" `Quick test_stop_rule;
        ] );
      ( "json",
        [ Alcotest.test_case "parse/print roundtrip" `Quick test_json_roundtrip ]
      );
      ( "coverage",
        [
          Alcotest.test_case "invariants and export" `Slow
            test_coverage_invariants;
        ] );
      ( "stopping",
        [
          Alcotest.test_case "CI stop = truncated full campaign (5 designs)"
            `Slow test_stop_at_ci_truncation;
        ] );
      ( "store",
        [
          Alcotest.test_case "manifest roundtrip and history" `Slow
            test_store_roundtrip;
          Alcotest.test_case "report verdicts" `Slow test_report_verdicts;
        ] );
    ]
