module Logic = Tmr_logic.Logic
module Bitvec = Tmr_logic.Bitvec
module Srand = Tmr_logic.Srand
module Texttab = Tmr_logic.Texttab

let logic = Alcotest.testable Logic.pp Logic.equal

let all = [ Logic.Zero; Logic.One; Logic.X ]

let to_opt = Logic.to_bool_opt

(* A three-valued operator is a sound abstraction of its boolean operator if
   for defined operands it agrees, and for X operands the result is either X
   or the value shared by all completions. *)
let check_abstraction2 op_name op bool_op =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let r = op a b in
          let completions =
            List.concat_map
              (fun av ->
                List.map (fun bv -> bool_op av bv)
                  (match to_opt b with Some v -> [ v ] | None -> [ false; true ]))
              (match to_opt a with Some v -> [ v ] | None -> [ false; true ])
          in
          match to_opt r with
          | Some rv ->
              List.iter
                (fun c ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %c %c sound" op_name (Logic.to_char a)
                       (Logic.to_char b))
                    rv c)
                completions
          | None -> ())
        all)
    all

let test_and_or_xor_sound () =
  check_abstraction2 "and" Logic.( &&& ) ( && );
  check_abstraction2 "or" Logic.( ||| ) ( || );
  check_abstraction2 "xor" Logic.logic_xor (fun a b -> a <> b)

let test_kleene_identities () =
  Alcotest.check logic "0 and X" Logic.Zero Logic.(Zero &&& X);
  Alcotest.check logic "1 and X" Logic.X Logic.(One &&& X);
  Alcotest.check logic "1 or X" Logic.One Logic.(One ||| X);
  Alcotest.check logic "0 or X" Logic.X Logic.(Zero ||| X);
  Alcotest.check logic "not X" Logic.X (Logic.logic_not Logic.X);
  Alcotest.check logic "X xor X" Logic.X (Logic.logic_xor Logic.X Logic.X)

let test_maj3_masks_single_x () =
  List.iter
    (fun v ->
      Alcotest.check logic "maj masks X (pos 0)" v (Logic.maj3 Logic.X v v);
      Alcotest.check logic "maj masks X (pos 1)" v (Logic.maj3 v Logic.X v);
      Alcotest.check logic "maj masks X (pos 2)" v (Logic.maj3 v v Logic.X))
    [ Logic.Zero; Logic.One ];
  Alcotest.check logic "two X" Logic.X (Logic.maj3 Logic.X Logic.X Logic.One)

let test_maj3_truth () =
  let b v = Logic.of_bool v in
  List.iter
    (fun (x, y, z) ->
      let expected = (x && y) || (x && z) || (y && z) in
      Alcotest.check logic "maj3 bool" (b expected) (Logic.maj3 (b x) (b y) (b z)))
    [
      (false, false, false); (false, false, true); (false, true, false);
      (false, true, true); (true, false, false); (true, false, true);
      (true, true, false); (true, true, true);
    ]

let test_mux_x_select () =
  Alcotest.check logic "x-sel same" Logic.One
    (Logic.mux ~sel:Logic.X Logic.One Logic.One);
  Alcotest.check logic "x-sel diff" Logic.X
    (Logic.mux ~sel:Logic.X Logic.Zero Logic.One);
  Alcotest.check logic "sel 0" Logic.Zero
    (Logic.mux ~sel:Logic.Zero Logic.Zero Logic.One);
  Alcotest.check logic "sel 1" Logic.One
    (Logic.mux ~sel:Logic.One Logic.Zero Logic.One)

let test_resolve () =
  Alcotest.check logic "agree 1" Logic.One (Logic.resolve Logic.One Logic.One);
  Alcotest.check logic "agree 0" Logic.Zero (Logic.resolve Logic.Zero Logic.Zero);
  Alcotest.check logic "conflict" Logic.X (Logic.resolve Logic.Zero Logic.One);
  Alcotest.check logic "x wins" Logic.X (Logic.resolve Logic.X Logic.One);
  Alcotest.check logic "floating" Logic.X (Logic.resolve_list []);
  Alcotest.check logic "single" Logic.One (Logic.resolve_list [ Logic.One ]);
  Alcotest.check logic "three conflict" Logic.X
    (Logic.resolve_list [ Logic.One; Logic.One; Logic.Zero ])

let test_char_roundtrip () =
  List.iter
    (fun v ->
      match Logic.of_char (Logic.to_char v) with
      | Some v' -> Alcotest.check logic "roundtrip" v v'
      | None -> Alcotest.fail "of_char failed")
    all;
  Alcotest.(check bool) "bad char" true (Logic.of_char 'q' = None)

(* ------------------------------------------------------------------ *)
(* Bitvec *)

let signed_gen width =
  QCheck.Gen.map
    (fun v -> v - (1 lsl (width - 1)))
    (QCheck.Gen.int_bound ((1 lsl width) - 1))

let in_range width v = v >= -(1 lsl (width - 1)) && v < 1 lsl (width - 1)

let wrap width v =
  let m = 1 lsl width in
  let r = ((v mod m) + m) mod m in
  if r land (1 lsl (width - 1)) <> 0 then r - m else r

let qcheck_bitvec_ops =
  let width = 11 in
  QCheck.Test.make ~count:500 ~name:"bitvec add/sub/mul wrap like ints"
    (QCheck.make (QCheck.Gen.pair (signed_gen width) (signed_gen width)))
    (fun (a, b) ->
      let va = Bitvec.of_signed ~width a and vb = Bitvec.of_signed ~width b in
      Bitvec.to_signed (Bitvec.add va vb) = wrap width (a + b)
      && Bitvec.to_signed (Bitvec.sub va vb) = wrap width (a - b)
      && Bitvec.to_signed (Bitvec.mul va vb) = wrap width (a * b)
      && Bitvec.to_signed (Bitvec.neg va) = wrap width (-a))

let qcheck_bitvec_mul_wide =
  QCheck.Test.make ~count:500 ~name:"bitvec mul_wide is exact"
    (QCheck.make (QCheck.Gen.pair (signed_gen 9) (signed_gen 9)))
    (fun (a, b) ->
      let va = Bitvec.of_signed ~width:9 a and vb = Bitvec.of_signed ~width:9 b in
      Bitvec.to_signed (Bitvec.mul_wide va vb) = a * b)

let qcheck_bitvec_resize =
  QCheck.Test.make ~count:500 ~name:"bitvec resize sign-extends"
    (QCheck.make (signed_gen 9))
    (fun a ->
      let v = Bitvec.of_signed ~width:9 a in
      Bitvec.to_signed (Bitvec.resize v ~width:18) = a)

let test_bitvec_basics () =
  let v = Bitvec.of_signed ~width:9 (-1) in
  Alcotest.(check int) "minus one unsigned" 511 (Bitvec.to_unsigned v);
  Alcotest.(check int) "minus one signed" (-1) (Bitvec.to_signed v);
  Alcotest.(check string) "to_string" "111111111" (Bitvec.to_string v);
  Alcotest.(check bool) "bit 0" true (Bitvec.bit v 0);
  let v2 = Bitvec.set_bit v 0 false in
  Alcotest.(check int) "set_bit" (-2) (Bitvec.to_signed v2);
  Alcotest.(check bool) "in_range helper sane" true (in_range 9 255);
  Alcotest.check_raises "width 0 rejected" (Invalid_argument "Bitvec.create: width 0 out of [1,62]")
    (fun () -> ignore (Bitvec.create ~width:0 0))

let test_bitvec_bits () =
  let v = Bitvec.create ~width:4 0b1010 in
  Alcotest.(check (list bool)) "bits lsb first" [ false; true; false; true ]
    (Bitvec.bits v);
  let v' = Bitvec.concat_bits [ false; true; false; true ] in
  Alcotest.(check bool) "concat_bits roundtrip" true (Bitvec.equal v v')

let test_bitvec_shift () =
  let v = Bitvec.of_signed ~width:8 3 in
  Alcotest.(check int) "shl 2" 12 (Bitvec.to_signed (Bitvec.shift_left v 2));
  Alcotest.(check int) "shl overflow wraps" (-128)
    (Bitvec.to_signed (Bitvec.shift_left (Bitvec.of_signed ~width:8 1) 7))

(* ------------------------------------------------------------------ *)
(* Srand *)

let test_srand_deterministic () =
  let a = Srand.create 42 and b = Srand.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Srand.int a 1000) (Srand.int b 1000)
  done;
  let c = Srand.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Srand.int a 1_000_000 <> Srand.int c 1_000_000 then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_srand_bounds () =
  let r = Srand.create 7 in
  for _ = 1 to 1000 do
    let v = Srand.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_srand_sample () =
  let r = Srand.create 9 in
  (* dense *)
  let s = Srand.sample r 80 100 in
  Alcotest.(check int) "dense size" 80 (Array.length s);
  let seen = Hashtbl.create 128 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "dense distinct" false (Hashtbl.mem seen v);
      Alcotest.(check bool) "dense range" true (v >= 0 && v < 100);
      Hashtbl.add seen v ())
    s;
  (* sparse *)
  let s2 = Srand.sample r 50 1_000_000 in
  Alcotest.(check int) "sparse size" 50 (Array.length s2);
  let seen2 = Hashtbl.create 128 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "sparse distinct" false (Hashtbl.mem seen2 v);
      Hashtbl.add seen2 v ())
    s2;
  (* clamp *)
  Alcotest.(check int) "n > m clamps" 5 (Array.length (Srand.sample r 10 5))

let test_srand_shuffle_permutes () =
  let r = Srand.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Srand.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_srand_split_independent () =
  let parent = Srand.create 5 in
  let child = Srand.split parent in
  let differs = ref false in
  for _ = 1 to 20 do
    if Srand.int parent 1_000_000 <> Srand.int child 1_000_000 then differs := true
  done;
  Alcotest.(check bool) "split differs from parent" true !differs

(* ------------------------------------------------------------------ *)
(* Lanemask: the word-level bitset under the batched fault simulator.
   The edge cases that matter there are lengths that are not a multiple
   of the word size, masking of the final partial word, and
   popcount/first_set across (and on) that partial tail. *)

let test_lanemask_basics () =
  let m = Bitvec.Lanemask.create 70 in
  Alcotest.(check int) "length" 70 (Bitvec.Lanemask.length m);
  Alcotest.(check int) "words for 70 lanes" 3 (Bitvec.Lanemask.num_words m);
  Alcotest.(check bool) "fresh empty" true (Bitvec.Lanemask.is_empty m);
  Alcotest.(check int) "fresh first_set" (-1) (Bitvec.Lanemask.first_set m);
  Bitvec.Lanemask.set m 0;
  Bitvec.Lanemask.set m 31;
  Bitvec.Lanemask.set m 32;
  Bitvec.Lanemask.set m 69;
  List.iter
    (fun i ->
      Alcotest.(check bool) (Printf.sprintf "lane %d set" i) true
        (Bitvec.Lanemask.get m i))
    [ 0; 31; 32; 69 ];
  Alcotest.(check bool) "lane 33 clear" false (Bitvec.Lanemask.get m 33);
  Alcotest.(check int) "popcount" 4 (Bitvec.Lanemask.popcount m);
  Bitvec.Lanemask.clear m 0;
  Alcotest.(check int) "first_set after clear" 31 (Bitvec.Lanemask.first_set m);
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Bitvec.Lanemask.get: lane 70 out of [0,70)") (fun () ->
      ignore (Bitvec.Lanemask.get m 70));
  Alcotest.check_raises "set out of range"
    (Invalid_argument "Bitvec.Lanemask.set: lane -1 out of [0,70)") (fun () ->
      Bitvec.Lanemask.set m (-1))

let test_lanemask_tail_masking () =
  (* 33 lanes: one full word plus a 1-bit tail; set_all and set_word
     must never let bits 33..63 of the storage leak into popcount *)
  let m = Bitvec.Lanemask.create 33 in
  Bitvec.Lanemask.set_all m;
  Alcotest.(check int) "set_all popcount == length" 33
    (Bitvec.Lanemask.popcount m);
  Alcotest.(check int) "tail word holds exactly 1 bit" 1
    (Bitvec.Lanemask.word m 1);
  (* a garbage write into the tail word is truncated to the live lanes *)
  Bitvec.Lanemask.set_word m 1 0x7fffffff;
  Alcotest.(check int) "set_word masks tail" 1 (Bitvec.Lanemask.word m 1);
  Bitvec.Lanemask.set_word m 1 0;
  Alcotest.(check int) "tail cleared" 32 (Bitvec.Lanemask.popcount m);
  (* a full-word-length mask keeps all 32 bits of a non-tail word *)
  Bitvec.Lanemask.set_word m 0 0xffffffff;
  Alcotest.(check int) "non-tail word unmasked" 0xffffffff
    (Bitvec.Lanemask.word m 0)

let test_lanemask_partial_word_scan () =
  (* popcount/first_set landing inside the final partial word *)
  let m = Bitvec.Lanemask.create 70 in
  Bitvec.Lanemask.set m 64;
  Bitvec.Lanemask.set m 69;
  Alcotest.(check int) "tail popcount" 2 (Bitvec.Lanemask.popcount m);
  Alcotest.(check int) "first_set in tail" 64 (Bitvec.Lanemask.first_set m);
  Bitvec.Lanemask.clear m 64;
  Alcotest.(check int) "first_set at last lane" 69
    (Bitvec.Lanemask.first_set m);
  let seen = ref [] in
  Bitvec.Lanemask.set m 2;
  Bitvec.Lanemask.iter (fun i -> seen := i :: !seen) m;
  Alcotest.(check (list int)) "iter order" [ 2; 69 ] (List.rev !seen)

let test_lanemask_set_ops () =
  let a = Bitvec.Lanemask.create 40 and b = Bitvec.Lanemask.create 40 in
  Bitvec.Lanemask.set a 3;
  Bitvec.Lanemask.set a 39;
  Bitvec.Lanemask.set b 39;
  Bitvec.Lanemask.set b 17;
  let u = Bitvec.Lanemask.copy a in
  Bitvec.Lanemask.union_into ~into:u b;
  Alcotest.(check int) "union popcount" 3 (Bitvec.Lanemask.popcount u);
  let i = Bitvec.Lanemask.copy a in
  Bitvec.Lanemask.inter_into ~into:i b;
  Alcotest.(check int) "inter popcount" 1 (Bitvec.Lanemask.popcount i);
  Alcotest.(check int) "inter lane" 39 (Bitvec.Lanemask.first_set i);
  let d = Bitvec.Lanemask.copy a in
  Bitvec.Lanemask.diff_into ~into:d b;
  Alcotest.(check int) "diff lane" 3 (Bitvec.Lanemask.first_set d);
  Alcotest.(check int) "diff popcount" 1 (Bitvec.Lanemask.popcount d);
  Alcotest.(check bool) "copy is equal" true
    (Bitvec.Lanemask.equal a (Bitvec.Lanemask.copy a));
  Alcotest.(check bool) "union differs" false (Bitvec.Lanemask.equal a u);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Bitvec.Lanemask.union_into: length mismatch 40 vs 70")
    (fun () ->
      Bitvec.Lanemask.union_into ~into:a (Bitvec.Lanemask.create 70))

(* ------------------------------------------------------------------ *)
(* Texttab *)

let test_texttab_render () =
  let t =
    Texttab.create ~title:"T" ~header:[ "name"; "n" ] [ Texttab.Left; Texttab.Right ]
  in
  Texttab.add_row t [ "a"; "1" ];
  Texttab.add_separator t;
  Texttab.add_row t [ "bcd"; "22" ];
  let s = Texttab.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  (* right alignment: the "1" row must pad the number column *)
  Alcotest.(check bool) "right aligned" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "a      1"));
  Alcotest.(check bool) "left aligned" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "bcd   22"))

let test_texttab_arity () =
  let t = Texttab.create ~header:[ "a" ] [ Texttab.Left ] in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Texttab.add_row: expected 1 cells, got 2") (fun () ->
      Texttab.add_row t [ "x"; "y" ])

let () =
  Alcotest.run "tmr_logic"
    [
      ( "logic",
        [
          Alcotest.test_case "and/or/xor abstraction soundness" `Quick
            test_and_or_xor_sound;
          Alcotest.test_case "kleene identities" `Quick test_kleene_identities;
          Alcotest.test_case "maj3 masks a single X" `Quick
            test_maj3_masks_single_x;
          Alcotest.test_case "maj3 boolean truth table" `Quick test_maj3_truth;
          Alcotest.test_case "mux with X select" `Quick test_mux_x_select;
          Alcotest.test_case "driver resolution" `Quick test_resolve;
          Alcotest.test_case "char roundtrip" `Quick test_char_roundtrip;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          Alcotest.test_case "bits/concat" `Quick test_bitvec_bits;
          Alcotest.test_case "shift" `Quick test_bitvec_shift;
          QCheck_alcotest.to_alcotest qcheck_bitvec_ops;
          QCheck_alcotest.to_alcotest qcheck_bitvec_mul_wide;
          QCheck_alcotest.to_alcotest qcheck_bitvec_resize;
        ] );
      ( "lanemask",
        [
          Alcotest.test_case "basics / non-multiple-of-64 length" `Quick
            test_lanemask_basics;
          Alcotest.test_case "tail-bit masking" `Quick
            test_lanemask_tail_masking;
          Alcotest.test_case "popcount/first_set on partial word" `Quick
            test_lanemask_partial_word_scan;
          Alcotest.test_case "union/inter/diff" `Quick test_lanemask_set_ops;
        ] );
      ( "srand",
        [
          Alcotest.test_case "deterministic" `Quick test_srand_deterministic;
          Alcotest.test_case "bounds" `Quick test_srand_bounds;
          Alcotest.test_case "sample" `Quick test_srand_sample;
          Alcotest.test_case "shuffle permutes" `Quick test_srand_shuffle_permutes;
          Alcotest.test_case "split independent" `Quick test_srand_split_independent;
        ] );
      ( "texttab",
        [
          Alcotest.test_case "render/align" `Quick test_texttab_render;
          Alcotest.test_case "arity check" `Quick test_texttab_arity;
        ] );
    ]
