(* Bit-parallel batched fault simulation: batched campaigns are
   bit-identical to the scalar differential engine and to the
   full-rebuild oracle on all five paper designs, across worker counts
   and batch widths; and the engine-level lane grouping keeps every
   lane's fault inside a reader-closed union cone. *)

module Logic = Tmr_logic.Logic
module Srand = Tmr_logic.Srand
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Arch = Tmr_arch.Arch
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Impl = Tmr_pnr.Impl
module Extract = Tmr_fabric.Extract
module Fsim = Tmr_fabric.Fsim
module Fsim_batch = Tmr_fabric.Fsim_batch
module Partition = Tmr_core.Partition
module Campaign = Tmr_inject.Campaign
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs

let result_testable =
  Alcotest.testable
    (fun ppf (r : Campaign.fault_result) ->
      Format.fprintf ppf "{bit=%d; wrong=%b; effect=%s; cycle=%d}"
        r.Campaign.bit
        (r.Campaign.outcome = Campaign.Wrong_answer)
        (Tmr_inject.Classify.name r.Campaign.effect)
        r.Campaign.first_error_cycle)
    ( = )

let check_same_results msg (a : Campaign.t) (b : Campaign.t) =
  Alcotest.(check int) (msg ^ ": injected") a.Campaign.injected
    b.Campaign.injected;
  Alcotest.(check (array result_testable))
    (msg ^ ": results array")
    a.Campaign.results b.Campaign.results

(* --- campaign-level: batched == scalar diff == full rebuild, all five
   paper designs, every (workers, width) combination --- *)

let test_batch_vs_scalar_campaigns () =
  let ctx =
    Context.create ~scale:Context.Reduced ~seed:3 ~faults_per_design:90 ()
  in
  let total_batched = ref 0 in
  List.iter
    (fun strategy ->
      let name = Partition.name strategy in
      let run = Runs.implement_design ctx strategy in
      let campaign ?(diff = true) ~workers ~batch_width () =
        Option.get
          (Runs.campaign_design ~workers ~diff ~batch_width ctx run)
            .Runs.campaign
      in
      let scalar = campaign ~workers:2 ~batch_width:0 () in
      let rebuild = campaign ~diff:false ~workers:2 ~batch_width:0 () in
      Alcotest.(check int)
        (name ^ ": scalar reference ran no batches")
        0 scalar.Campaign.stats.Campaign.batched;
      check_same_results (name ^ ": scalar diff vs full rebuild") scalar
        rebuild;
      List.iter
        (fun workers ->
          List.iter
            (fun width ->
              let b = campaign ~workers ~batch_width:width () in
              total_batched := !total_batched + b.Campaign.stats.Campaign.batched;
              check_same_results
                (Printf.sprintf "%s: batched w%d width %d vs scalar" name
                   workers width)
                b scalar)
            [ 32; 64 ])
        [ 1; 2 ])
    Partition.all_paper_designs;
  Alcotest.(check bool) "batch engine exercised" true (!total_batched > 0)

(* --- engine-level: batched verdicts == scalar diff_run verdicts on
   every patchable bit of a small datapath, and the union cone of each
   batch is closed under the reader relation with every lane's seed
   inside it --- *)

let build_datapath () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:6 in
  let b = Word.input nl "b" ~width:6 in
  let s = Word.add nl a b in
  let p = Word.mul_const nl s (-3) ~width:6 in
  let r = Word.reg nl p in
  Word.output nl "r" r;
  nl

let test_engine_verdicts_and_grouping () =
  let dev = Device.build Arch.small in
  let db = Bitdb.build dev in
  let impl = Impl.implement_exn ~seed:5 dev db (build_datapath ()) in
  let out_wires = Array.init 6 (Impl.output_pad_wire impl "r") in
  let a_wires = Array.init 6 (Impl.input_pad_wire impl "a") in
  let b_wires = Array.init 6 (Impl.input_pad_wire impl "b") in
  let ex =
    Extract.create dev db
      (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
  in
  let ws = Fsim.make_workspace dev in
  let base = Fsim.build ~ws ex ~watch_outputs:out_wires in
  let cone = Fsim.snapshot_cone ws in
  let cycles = 24 in
  let rng = Srand.create 7 in
  let stim =
    Array.init cycles (fun _ -> (Srand.int rng 64, Srand.int rng 64))
  in
  let drive sim c =
    let a, b = stim.(c) in
    let set wires v =
      let nodes = Fsim.pad_nodes sim wires in
      Array.iteri
        (fun i n ->
          Fsim.set_node sim n (Logic.of_bool ((v asr i) land 1 = 1)))
        nodes
    in
    set a_wires a;
    set b_wires b
  in
  let watch = Fsim.watch_nodes base out_wires in
  let tape = Fsim.tape_create ~nnodes:(Fsim.num_nodes base) ~cycles in
  let expected = Array.make_matrix cycles 6 Logic.X in
  Fsim.reset base;
  for c = 0 to cycles - 1 do
    drive base c;
    Fsim.eval base;
    Fsim.tape_record tape base ~cycle:c;
    for i = 0 to 5 do
      expected.(c).(i) <- Fsim.node_value base watch.(i)
    done;
    Fsim.clock base
  done;
  (* every patchable bit: scalar verdict + overlay delta + seed node *)
  let dsc = Fsim.make_dscratch () in
  let faults = ref [] in
  for bit = 0 to Bitdb.num_bits db - 1 do
    if Fsim.plan_fault cone ex bit = Fsim.Path_patch then begin
      Extract.apply_bit_flip ex bit;
      Fun.protect
        ~finally:(fun () -> Extract.apply_bit_flip ex bit)
        (fun () ->
          let seed = Fsim.patch_node cone ex bit in
          let delta = Fsim.patch_delta cone ex bit in
          let derr, dcv, _det =
            Fsim.with_patch cone base ex bit (fun sim ->
                Fsim.diff_run ~forensics:false ~scratch:dsc ~tape ~base ~sim
                  ~seeds:(Fsim.Seed_node seed) ~watch ~base_watch:watch
                  ~expected ())
          in
          faults := (bit, seed, delta, derr, dcv) :: !faults)
    end
  done;
  let faults = Array.of_list (List.rev !faults) in
  Alcotest.(check bool) "found patchable bits" true (Array.length faults > 0);
  let width = 32 in
  let bt = Fsim_batch.create base cone ~width in
  let off, succ = Fsim_batch.csr bt in
  let nbase = Fsim.num_nodes base in
  let nchunks = (Array.length faults + width - 1) / width in
  for chunk = 0 to nchunks - 1 do
    let lo = chunk * width in
    let n = min width (Array.length faults - lo) in
    let lanes =
      Array.init n (fun k ->
          let _, _, d, _, _ = faults.(lo + k) in
          d)
    in
    let verdicts =
      match
        Fsim_batch.run bt ~tape ~expected ~watch ~lanes ()
      with
      | Some vs -> vs
      | None -> Alcotest.fail "batch declined a pure-patch batch"
    in
    Array.iteri
      (fun k v ->
        let bit, _, _, derr, dcv = faults.(lo + k) in
        match v with
        | None ->
            Alcotest.failf "bit %d: patch lane declined" bit
        | Some v ->
            Alcotest.(check int)
              (Printf.sprintf "bit %d: first error cycle" bit)
              derr v.Fsim_batch.bv_error_cycle;
            Alcotest.(check int)
              (Printf.sprintf "bit %d: convergence cycle" bit)
              dcv v.Fsim_batch.bv_converge_cycle)
      verdicts;
    (* lane grouping invariant: the union cone is reader-closed (fault
       effects cannot escape it) and contains every lane's seed *)
    let members = Fsim_batch.last_cone bt in
    let in_cone = Array.make (nbase + Array.length members) false in
    Array.iter (fun u -> if u < nbase then in_cone.(u) <- true) members;
    Array.iter
      (fun u ->
        if u < nbase then
          for e = off.(u) to off.(u + 1) - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "reader %d of member %d inside cone" succ.(e) u)
              true in_cone.(succ.(e))
          done)
      members;
    for k = 0 to n - 1 do
      let bit, seed, _, _, _ = faults.(lo + k) in
      Alcotest.(check bool)
        (Printf.sprintf "bit %d: seed %d inside union cone" bit seed)
        true in_cone.(seed)
    done
  done

let () =
  Alcotest.run "tmr_batch"
    [
      ( "campaign",
        [
          Alcotest.test_case "batched == scalar == rebuild (5 designs)"
            `Slow test_batch_vs_scalar_campaigns;
        ] );
      ( "engine",
        [
          Alcotest.test_case "verdicts == diff_run, cone reader-closed"
            `Slow test_engine_verdicts_and_grouping;
        ] );
    ]
