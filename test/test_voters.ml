(* Pluggable voter library: the four-way detected-vs-silent verdict
   taxonomy is deterministic and engine-invariant — batched == scalar
   differential == full rebuild, including detection flags and
   latencies — on all five paper designs built with the detecting
   voter; and the plain-majority voter reproduces the historical
   (pre-library) campaigns bit-for-bit. *)

module Voter = Tmr_core.Voter
module Partition = Tmr_core.Partition
module Campaign = Tmr_inject.Campaign
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs

let result_testable =
  Alcotest.testable
    (fun ppf (r : Campaign.fault_result) ->
      Format.fprintf ppf "{bit=%d; wrong=%b; effect=%s; err=%d; det=%d}"
        r.Campaign.bit
        (r.Campaign.outcome = Campaign.Wrong_answer)
        (Tmr_inject.Classify.name r.Campaign.effect)
        r.Campaign.first_error_cycle r.Campaign.detect_cycle)
    ( = )

let check_same_results msg (a : Campaign.t) (b : Campaign.t) =
  Alcotest.(check int) (msg ^ ": injected") a.Campaign.injected
    b.Campaign.injected;
  Alcotest.(check (array result_testable))
    (msg ^ ": results array")
    a.Campaign.results b.Campaign.results

(* --- library surface: names, detection flags, cost model --- *)

let test_library () =
  Alcotest.(check int) "three variants" 3 (List.length Voter.all);
  List.iter
    (fun v ->
      let n = Voter.name v in
      (match Voter.of_name n with
      | Some v' ->
          Alcotest.(check string)
            (n ^ ": of_name/name round-trip")
            n (Voter.name v')
      | None -> Alcotest.failf "%s: of_name failed" n);
      Alcotest.(check bool)
        (n ^ ": description non-empty")
        true
        (String.length (Voter.description v) > 0);
      let c = Voter.cost v in
      Alcotest.(check bool) (n ^ ": vote cells") true (c.Voter.vote_cells >= 1);
      Alcotest.(check bool) (n ^ ": levels") true (c.Voter.levels >= 1);
      Alcotest.(check bool) (n ^ ": delay") true (c.Voter.delay_ns > 0.0);
      Alcotest.(check bool)
        (n ^ ": detect cells iff detecting")
        (Voter.has_detection v)
        (c.Voter.detect_cells > 0))
    Voter.all;
  Alcotest.(check (option reject)) "unknown voter name" None
    (Voter.of_name "nonesuch");
  Alcotest.(check int) "three detect ports" 3 (List.length Voter.detect_ports);
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ ": is_detect_port") true
        (Voter.is_detect_port p))
    Voter.detect_ports

(* Fold the per-fault verdicts by hand and compare with the campaign's
   own counters; check the four classes partition the injected set. *)
let check_taxonomy name (c : Campaign.t) =
  let dc = Campaign.detection_counts c in
  Alcotest.(check int)
    (name ^ ": verdict classes sum to injected")
    c.Campaign.injected
    (dc.Campaign.dc_silent_correct + dc.Campaign.dc_detected_corrected
   + dc.Campaign.dc_detected_wrong + dc.Campaign.dc_silent_wrong);
  let sc = ref 0 and dcorr = ref 0 and dw = ref 0 and sw = ref 0 in
  Array.iter
    (fun r ->
      match Campaign.verdict_of r with
      | Campaign.Silent_correct -> incr sc
      | Campaign.Detected_corrected -> incr dcorr
      | Campaign.Detected_wrong -> incr dw
      | Campaign.Silent_wrong -> incr sw)
    c.Campaign.results;
  Alcotest.(check int) (name ^ ": silent-correct") !sc
    dc.Campaign.dc_silent_correct;
  Alcotest.(check int) (name ^ ": detected-corrected") !dcorr
    dc.Campaign.dc_detected_corrected;
  Alcotest.(check int) (name ^ ": detected-wrong") !dw
    dc.Campaign.dc_detected_wrong;
  Alcotest.(check int) (name ^ ": silent-wrong") !sw dc.Campaign.dc_silent_wrong

(* --- detecting voter: taxonomy engine-invariant on all five designs --- *)

let test_detecting_engine_invariance () =
  let ctx =
    let base =
      Context.create ~scale:Context.Reduced ~seed:11 ~faults_per_design:60 ()
    in
    (* the detecting voter's disagreement cells push max-partition one
       bel past the stock small device — grow it by one tile row *)
    let arch = Tmr_arch.Arch.scaled Tmr_arch.Arch.small ~rows:13 ~cols:14 in
    let dev = Tmr_arch.Device.build arch in
    let db = Tmr_arch.Bitdb.build dev in
    { base with Context.dev; db }
  in
  let saw_detection = ref false in
  List.iter
    (fun strategy ->
      let name = Partition.name strategy ^ "/detecting" in
      let run = Runs.implement_design ~voter:Voter.Detecting ctx strategy in
      let campaign ?(diff = true) ~batch_width () =
        Option.get
          (Runs.campaign_design ~workers:2 ~diff ~batch_width ctx run)
            .Runs.campaign
      in
      let scalar = campaign ~batch_width:0 () in
      let rebuild = campaign ~diff:false ~batch_width:0 () in
      let batched = campaign ~batch_width:64 () in
      check_same_results (name ^ ": scalar vs rebuild") scalar rebuild;
      check_same_results (name ^ ": batched vs scalar") batched scalar;
      check_taxonomy name scalar;
      let dc = Campaign.detection_counts scalar in
      if strategy = Partition.Unprotected then begin
        (* no voters, so no detection logic: every fault is silent *)
        Alcotest.(check int) (name ^ ": no detected-corrected") 0
          dc.Campaign.dc_detected_corrected;
        Alcotest.(check int) (name ^ ": no detected-wrong") 0
          dc.Campaign.dc_detected_wrong;
        Array.iter
          (fun r ->
            Alcotest.(check int)
              (name ^ ": detect_cycle is -1 without voters")
              (-1) r.Campaign.detect_cycle)
          scalar.Campaign.results
      end
      else if dc.Campaign.dc_detected_corrected + dc.Campaign.dc_detected_wrong
              > 0
      then saw_detection := true;
      (* a fired flag always has a cycle, a silent one never does *)
      Array.iter
        (fun r ->
          match Campaign.verdict_of r with
          | Campaign.Detected_corrected | Campaign.Detected_wrong ->
              Alcotest.(check bool)
                (name ^ ": detected fault has a detect cycle")
                true
                (r.Campaign.detect_cycle >= 0)
          | Campaign.Silent_correct | Campaign.Silent_wrong ->
              Alcotest.(check int)
                (name ^ ": silent fault has no detect cycle")
                (-1) r.Campaign.detect_cycle)
        scalar.Campaign.results)
    Partition.all_paper_designs;
  Alcotest.(check bool)
    "detection observed on at least one TMR design" true !saw_detection

(* --- majority voter: bit-identical to the pre-library default --- *)

let test_majority_reproduces_default () =
  let ctx =
    Context.create ~scale:Context.Reduced ~seed:11 ~faults_per_design:60 ()
  in
  List.iter
    (fun strategy ->
      let name = Partition.name strategy in
      let campaign run =
        Option.get
          (Runs.campaign_design ~workers:2 ~batch_width:0 ctx run)
            .Runs.campaign
      in
      let default_c = campaign (Runs.implement_design ctx strategy) in
      let majority_c =
        campaign (Runs.implement_design ~voter:Voter.Majority ctx strategy)
      in
      check_same_results (name ^ ": majority vs default build") default_c
        majority_c;
      (* a majority design carries no detection logic: the taxonomy
         degenerates to the historical silent/wrong split *)
      let dc = Campaign.detection_counts majority_c in
      Alcotest.(check int) (name ^ ": no detected-corrected") 0
        dc.Campaign.dc_detected_corrected;
      Alcotest.(check int) (name ^ ": no detected-wrong") 0
        dc.Campaign.dc_detected_wrong;
      Alcotest.(check (float 1e-9))
        (name ^ ": SDC rate equals wrong rate")
        (Campaign.wrong_percent majority_c)
        (Campaign.sdc_percent majority_c);
      Array.iter
        (fun r ->
          Alcotest.(check int)
            (name ^ ": detect_cycle always -1")
            (-1) r.Campaign.detect_cycle)
        majority_c.Campaign.results)
    Partition.all_paper_designs

let () =
  Alcotest.run "tmr_voters"
    [
      ( "library",
        [ Alcotest.test_case "variants, names, cost model" `Quick test_library ]
      );
      ( "taxonomy",
        [
          Alcotest.test_case
            "detecting: batched == scalar == rebuild (5 designs)" `Slow
            test_detecting_engine_invariance;
          Alcotest.test_case "majority == historical default (5 designs)"
            `Slow test_majority_reproduces_default;
        ] );
    ]
