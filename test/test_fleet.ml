(* Distributed-telemetry tests that fork.

   This binary must never spawn a domain: OCaml 5 refuses Unix.fork
   once any Domain.spawn has happened, even after the domain joins.
   Everything here runs campaigns through Service with its default
   single worker, so Pool.run stays inline and the process remains
   fork-safe.  Domain-using telemetry tests live in test_telemetry.ml. *)

module Events = Tmr_obs.Events
module Watch = Tmr_obs.Watch
module Campaign = Tmr_inject.Campaign
module Partition = Tmr_core.Partition
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Service = Tmr_experiments.Service

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let parse_exn line =
  match Events.parse_line line with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse_line %S: %s" line e

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let all_events =
  [
    Events.Campaign_started { design = "tmr_p2"; faults = 150; workers = 4 };
    Events.Campaign_progress
      { design = "tmr_p2"; completed = 50; total = 150; wrong = 2 };
    Events.Campaign_ci
      {
        design = "tmr_p2";
        n = 100;
        wrong = 3;
        confidence = 0.95;
        lo = 0.0103;
        hi = 0.0851;
      };
    Events.Campaign_stopped
      {
        design = "tmr_p2";
        requested = 150;
        injected = 150;
        wrong = 5;
        wall_ns = 1_234_567_890;
      };
  ]

let temp_counter = ref 0

let temp_dir tag =
  incr temp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tmr-fleet-%s-%d-%d" tag (Unix.getpid ()) !temp_counter)
  in
  if Sys.file_exists d then
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d)));
  d

(* ------------------------------------------------------------------ *)
(* fork + detach: the bus belongs to the parent; a forked child that
   detaches publishes into the void and the parent's stream stays
   dense. *)

let test_fork_detach () =
  let path = Filename.temp_file "tmr_fork_detach" ".jsonl" in
  Events.to_file path;
  Events.publish (List.nth all_events 0);
  Events.publish (List.nth all_events 1);
  (match Unix.fork () with
  | 0 ->
      Events.detach ();
      (* all of these must be no-ops: the bus belongs to the parent *)
      List.iter Events.publish all_events;
      Unix._exit (if Events.enabled () then 1 else 0)
  | pid -> (
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "detached child saw an enabled bus"));
  Events.publish (List.nth all_events 2);
  Events.publish (List.nth all_events 3);
  Events.close ();
  let parsed = List.map parse_exn (read_lines path) in
  Alcotest.(check int) "only the parent's events" 4 (List.length parsed);
  List.iteri
    (fun i p -> Alcotest.(check int) "parent seq dense" i p.Events.p_seq)
    parsed;
  Sys.remove path

(* a worker killed mid-stream leaves a spool of whole lines only *)
let test_spool_sigterm_no_torn_lines () =
  let path = Filename.temp_file "tmr_spool_kill" ".jsonl" in
  (match Unix.fork () with
  | 0 ->
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Events.spool ~path ~worker:1 ~job:"doomed";
      (* publish until killed *)
      let i = ref 0 in
      while true do
        incr i;
        Events.publish
          (Events.Campaign_progress
             {
               design = "kill-test";
               completed = !i;
               total = 1_000_000;
               wrong = 0;
             })
      done
  | pid ->
      Unix.sleepf 0.15;
      Unix.kill pid Sys.sigterm;
      ignore (Unix.waitpid [] pid));
  let lines = read_lines path in
  Alcotest.(check bool) "child spooled something" true (List.length lines > 0);
  List.iteri
    (fun i line ->
      let p = parse_exn line in
      Alcotest.(check int) "dense up to the kill" i p.Events.p_seq)
    lines;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Fleet end to end, all five designs: a forked sharded campaign with
   events on produces the same merged verdicts as with events off, the
   merged stream carries origin-stamped worker events with dense
   worker-local seqs, and watch reproduces the final verdict. *)

let ctx =
  lazy (Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:40 ())

let test_fleet_stream_all_designs () =
  let ctx = Lazy.force ctx in
  let parent = Unix.getpid () in
  List.iter
    (fun strategy ->
      let dname = Partition.name strategy in
      let run = Runs.implement_design ctx strategy in
      let job =
        Service.job ~scale:Context.Reduced ~seed:2 ~faults:40 ~shards:4
          strategy
      in
      let campaign_of st =
        match st with
        | Ok (Service.Complete o) -> o
        | Ok (Service.Incomplete _) ->
            Alcotest.failf "%s: unexpectedly incomplete" dname
        | Error e -> Alcotest.failf "%s: %s" dname e
      in
      (* events off *)
      let quiet =
        campaign_of
          (Service.run_sharded ~procs:2
             ~notify:(fun _ -> ())
             ~dir:(temp_dir ("off-" ^ dname))
             job ctx run)
      in
      (* events on: merged fleet stream into one file *)
      let stream = Filename.temp_file ("tmr_fleet_" ^ dname) ".jsonl" in
      Events.to_file stream;
      let live =
        Fun.protect
          ~finally:(fun () -> Events.close ())
          (fun () ->
            campaign_of
              (Service.run_sharded ~procs:2
                 ~dir:(temp_dir ("on-" ^ dname))
                 job ctx run))
      in
      Alcotest.(check bool)
        (dname ^ ": verdicts identical with spooling on")
        true
        (quiet.Service.o_campaign.Campaign.results
        = live.Service.o_campaign.Campaign.results);
      (* every spool was fully relayed *)
      List.iter
        (fun (s : Service.spool_info) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: w%d spool gap-free" dname s.Service.sp_worker)
            0 s.Service.sp_gaps)
        live.Service.o_spools;
      let parsed = List.map parse_exn (read_lines stream) in
      (* the merged stream really is a fleet: worker events from child
         pids, stamped with the job id *)
      let child_pids =
        List.filter_map
          (fun p ->
            match p.Events.p_origin with
            | Some o when o.Events.o_pid <> parent -> Some o.Events.o_pid
            | _ -> None)
          parsed
        |> List.sort_uniq compare
      in
      Alcotest.(check bool)
        (dname ^ ": events from forked workers on the stream")
        true
        (child_pids <> []);
      List.iter
        (fun p ->
          match p.Events.p_origin with
          | Some o ->
              Alcotest.(check string)
                (dname ^ ": origin job is the correlation id")
                (Service.job_name job) o.Events.o_job
          | None -> ())
        parsed;
      (* parent re-sequencing is dense, worker-local seqs have no gaps *)
      List.iteri
        (fun i p ->
          Alcotest.(check int) (dname ^ ": merged seq dense") i p.Events.p_seq)
        parsed;
      let w = Watch.create () in
      List.iter (Watch.feed w) parsed;
      Alcotest.(check int) (dname ^ ": no origin gaps") 0 (Watch.origin_gaps w);
      Alcotest.(check bool) (dname ^ ": watch sees the fleet finish") true
        (Watch.finished w);
      (* the watch summary reproduces the merged verdict exactly *)
      let c = live.Service.o_campaign in
      let expected =
        Printf.sprintf "\"injected\":%d,\"wrong\":%d" c.Campaign.injected
          c.Campaign.wrong
      in
      Alcotest.(check bool)
        (dname ^ ": watch summary matches the merged campaign")
        true
        (contains ~needle:expected (Watch.summary_json w));
      Sys.remove stream)
    Partition.all_paper_designs

let () =
  Alcotest.run "fleet"
    [
      ( "fork",
        [
          Alcotest.test_case "fork + detach is a no-op" `Quick test_fork_detach;
          Alcotest.test_case "SIGTERM leaves no torn spool line" `Quick
            test_spool_sigterm_no_torn_lines;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "fleet stream == quiet run, all designs" `Slow
            test_fleet_stream_all_designs;
        ] );
    ]
