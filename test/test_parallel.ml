(* Parallel fault-injection engine: determinism of the domain pool,
   exactness of the cone-aware fast paths, and pool failure handling. *)

module Partition = Tmr_core.Partition
module Campaign = Tmr_inject.Campaign
module Pool = Tmr_inject.Pool
module Faultlist = Tmr_inject.Faultlist
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs

let ctx = lazy (Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:30 ())

let result_testable =
  Alcotest.testable
    (fun ppf (r : Campaign.fault_result) ->
      Format.fprintf ppf "{bit=%d; wrong=%b; effect=%s; cycle=%d}"
        r.Campaign.bit
        (r.Campaign.outcome = Campaign.Wrong_answer)
        (Tmr_inject.Classify.name r.Campaign.effect)
        r.Campaign.first_error_cycle)
    ( = )

let check_same_results msg (a : Campaign.t) (b : Campaign.t) =
  Alcotest.(check int) (msg ^ ": injected") a.Campaign.injected b.Campaign.injected;
  Alcotest.(check (float 0.0)) (msg ^ ": wrong_percent")
    (Campaign.wrong_percent a) (Campaign.wrong_percent b);
  Alcotest.(check (array result_testable))
    (msg ^ ": results array")
    a.Campaign.results b.Campaign.results

(* (a) a 4-worker campaign is byte-identical to workers:1 for all five
   paper designs *)
let test_workers_deterministic () =
  let ctx = Lazy.force ctx in
  List.iter
    (fun strategy ->
      let run = Runs.implement_design ctx strategy in
      let c1 =
        Option.get
          (Runs.campaign_design ~workers:1 ctx run).Runs.campaign
      in
      let c4 =
        Option.get
          (Runs.campaign_design ~workers:4 ctx run).Runs.campaign
      in
      Alcotest.(check int) "used 4 workers" 4 c4.Campaign.workers;
      check_same_results (Partition.name strategy) c1 c4)
    Partition.all_paper_designs

(* (b) the cone-aware fast paths never change a fault's classification:
   run the same fault list through the fast engine and the legacy
   rebuild-everything engine and diff every result *)
let test_cone_skip_exact () =
  let ctx = Lazy.force ctx in
  let ctx = { ctx with Context.faults_per_design = 150 } in
  let run = Runs.implement_design ctx Partition.Medium_partition in
  let fast =
    Option.get
      (Runs.campaign_design ~workers:1 ~cone_skip:true ctx run).Runs.campaign
  in
  let oracle =
    Option.get
      (Runs.campaign_design ~workers:1 ~cone_skip:false ctx run).Runs.campaign
  in
  (* the fast engine must actually have taken fast paths *)
  let s = fast.Campaign.stats in
  Alcotest.(check bool) "some faults skipped" true (s.Campaign.skipped > 0);
  Alcotest.(check bool) "some faults avoided a rebuild" true
    (s.Campaign.skipped + s.Campaign.patched + s.Campaign.rerouted > 0);
  Alcotest.(check int) "oracle rebuilt everything"
    oracle.Campaign.injected oracle.Campaign.stats.Campaign.rebuilt;
  check_same_results "fast vs oracle" fast oracle

(* (c) a worker exception propagates to the caller without hanging *)
let test_pool_exception () =
  Alcotest.check_raises "worker failure re-raised"
    (Failure "boom on 7")
    (fun () ->
      Pool.run ~workers:4 ~chunk:2 ~total:64 (fun _wid i ->
          if i = 7 then failwith "boom on 7"));
  (* a failing worker-local init propagates too *)
  Alcotest.check_raises "init failure re-raised" (Failure "init boom")
    (fun () ->
      Pool.run ~workers:3 ~total:64 (fun wid ->
          if wid = 1 then failwith "init boom";
          fun _i -> Domain.cpu_relax ()))

let test_pool_covers_all_items () =
  List.iter
    (fun (workers, total, chunk) ->
      let hits = Array.make (max total 1) 0 in
      let mutex = Mutex.create () in
      Pool.run ~workers ~chunk ~total (fun _wid i ->
          Mutex.lock mutex;
          hits.(i) <- hits.(i) + 1;
          Mutex.unlock mutex);
      if total > 0 then
        Alcotest.(check (array int))
          (Printf.sprintf "w=%d t=%d c=%d: each item once" workers total chunk)
          (Array.make total 1) hits)
    [ (1, 40, 16); (4, 40, 3); (4, 1, 16); (3, 0, 16); (8, 5, 2) ]

let test_pool_progress () =
  let calls = ref [] in
  Pool.run ~workers:4 ~chunk:4 ~total:200
    ~progress:(fun done_ total ->
      Alcotest.(check int) "total" 200 total;
      calls := done_ :: !calls)
    (fun _wid _i -> ());
  let calls = List.rev !calls in
  Alcotest.(check bool) "progress was reported" true (calls <> []);
  Alcotest.(check bool) "monotone non-decreasing" true
    (List.for_all2 ( <= ) calls (List.tl calls @ [ max_int ]));
  Alcotest.(check int) "final tick is 100%" 200
    (List.fold_left (fun _ x -> x) 0 calls)

let () =
  Alcotest.run "tmr_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "covers all items" `Quick test_pool_covers_all_items;
          Alcotest.test_case "progress" `Quick test_pool_progress;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "4 workers == 1 worker" `Slow
            test_workers_deterministic;
          Alcotest.test_case "cone-skip == full rebuild" `Slow
            test_cone_skip_exact;
        ] );
    ]
