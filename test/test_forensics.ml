(* Fault forensics: footprint decoding, domain/partition attribution,
   bit-identical campaign results with collection on or off, voter-masking
   verdicts and the JSONL sink. *)

module Arch = Tmr_arch.Arch
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Footprint = Tmr_fabric.Footprint
module Partition = Tmr_core.Partition
module Impl = Tmr_pnr.Impl
module Campaign = Tmr_inject.Campaign
module Faultlist = Tmr_inject.Faultlist
module Forensics = Tmr_inject.Forensics
module Metrics = Tmr_obs.Metrics
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Fir = Tmr_filter.Fir

let dev = lazy (Device.build Arch.small)
let db = lazy (Bitdb.build (Lazy.force dev))

let impl_of strategy =
  let nl = Tmr_filter.Designs.build ~params:Fir.tiny_params strategy in
  Impl.implement_exn ~seed:3 (Lazy.force dev) (Lazy.force db) nl

let standard_impl = lazy (impl_of Partition.Unprotected)
let tmr_impl = lazy (impl_of Partition.Medium_partition)

let stimulus cycles =
  { Campaign.cycles;
    inputs = [ ("x", Fir.stimulus ~cycles ~seed:7 Fir.tiny_params) ] }

let golden_nl = lazy (Fir.build Fir.tiny_params)

(* --- structural footprint: every configuration bit decodes into
   in-range device resources of the right shape --- *)

let test_footprint_decodes_every_bit () =
  let d = Lazy.force dev and database = Lazy.force db in
  for bit = 0 to Bitdb.num_bits database - 1 do
    let fp = Footprint.of_bit d database bit in
    Array.iter
      (fun w ->
        if w < 0 || w >= d.Device.nwires then
          Alcotest.failf "bit %d: wire %d out of range" bit w)
      fp.Footprint.fp_wires;
    Array.iter
      (fun b ->
        if b < 0 || b >= d.Device.nbels then
          Alcotest.failf "bit %d: bel %d out of range" bit b)
      fp.Footprint.fp_bels;
    Array.iter
      (fun p ->
        if p < 0 || p >= d.Device.npads then
          Alcotest.failf "bit %d: pad %d out of range" bit p)
      fp.Footprint.fp_pads;
    let shape =
      ( Array.length fp.Footprint.fp_wires,
        Array.length fp.Footprint.fp_bels,
        Array.length fp.Footprint.fp_pads )
    in
    let expect =
      match Bitdb.resource database bit with
      | Bitdb.Pip _ -> (2, 0, 0)
      | Bitdb.Lut_bit _ | Bitdb.Ff_init _ | Bitdb.Out_sel _ | Bitdb.Ce_inv _
      | Bitdb.Sr_inv _ | Bitdb.In_inv _ ->
          (0, 1, 0)
      | Bitdb.Pad_enable _ -> (1, 0, 1)
      | Bitdb.Pad_cfg _ -> (0, 0, 1)
    in
    if shape <> expect then
      Alcotest.failf "bit %d: footprint shape mismatch" bit
  done

(* --- domain / partition attribution --- *)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let test_attrib_invariants () =
  let a_std = Forensics.attrib_of_impl (Lazy.force standard_impl) in
  let a_tmr = Forensics.attrib_of_impl (Lazy.force tmr_impl) in
  Alcotest.(check bool) "TMR design has voter bels" true
    (Array.exists Fun.id a_tmr.Forensics.bel_voter);
  Alcotest.(check bool) "unprotected design has no voter bels" false
    (Array.exists Fun.id a_std.Forensics.bel_voter);
  Alcotest.(check bool) "TMR design has voter nets" true
    (Array.exists Fun.id a_tmr.Forensics.wire_voter);
  (* the TMR implementation places cells of all three redundancy domains *)
  List.iter
    (fun dom ->
      Alcotest.(check bool)
        (Printf.sprintf "TMR domain %d placed" dom)
        true
        (Array.exists (Int.equal dom) a_tmr.Forensics.bel_domain))
    [ 0; 1; 2 ];
  (* tags stay within range *)
  Array.iter
    (fun p ->
      Alcotest.(check bool) "wire partition id in range" true
        (p >= -1 && p < Array.length a_tmr.Forensics.part_names))
    a_tmr.Forensics.wire_part;
  Array.iter
    (fun d ->
      Alcotest.(check bool) "bel domain in range" true (d >= -1 && d <= 2))
    a_tmr.Forensics.bel_domain

let check_structural a bit =
  let st = Forensics.structural a bit in
  Alcotest.(check bool) "mask uses only domains 0-2" true
    (st.Forensics.domain_mask land lnot 7 = 0);
  Alcotest.(check bool) "cross-domain iff >= 2 domains"
    st.Forensics.cross_domain
    (popcount st.Forensics.domain_mask >= 2);
  let parts = st.Forensics.partitions in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "partition ids sorted distinct" true
        (i = 0 || parts.(i - 1) < p);
      Alcotest.(check bool) "partition id names resolve" true
        (Forensics.part_name a p <> "?"))
    parts;
  (* structural-only record: divergence fields are unknown *)
  Alcotest.(check int) "no divergence count yet" (-1) st.Forensics.diverged;
  Alcotest.(check bool) "not voter-masked yet" false
    st.Forensics.masked_at_voter;
  st

let test_structural_attribution () =
  let a_std = Forensics.attrib_of_impl (Lazy.force standard_impl) in
  let a_tmr = Forensics.attrib_of_impl (Lazy.force tmr_impl) in
  let fl_std = Faultlist.of_impl (Lazy.force standard_impl) in
  Array.iter
    (fun bit ->
      let st = check_structural a_std bit in
      Alcotest.(check bool) "unprotected design: never cross-domain" false
        st.Forensics.cross_domain)
    fl_std.Faultlist.bits;
  let fl_tmr = Faultlist.of_impl (Lazy.force tmr_impl) in
  let cross = ref 0 and attributed = ref 0 in
  Array.iter
    (fun bit ->
      let st = check_structural a_tmr bit in
      if st.Forensics.cross_domain then incr cross;
      if st.Forensics.domain_mask <> 0 then incr attributed)
    fl_tmr.Faultlist.bits;
  Alcotest.(check bool) "TMR DUT bits mostly attributed to a domain" true
    (!attributed > 0);
  Alcotest.(check bool) "TMR routing exposes cross-domain bits" true
    (!cross > 0)

(* --- campaigns: results are bit-identical with forensics on or off --- *)

let strip (r : Campaign.fault_result) = { r with Campaign.forensics = None }

let result_testable =
  Alcotest.testable
    (fun ppf (r : Campaign.fault_result) ->
      Format.fprintf ppf "{bit=%d; wrong=%b; effect=%s; cycle=%d}"
        r.Campaign.bit
        (r.Campaign.outcome = Campaign.Wrong_answer)
        (Tmr_inject.Classify.name r.Campaign.effect)
        r.Campaign.first_error_cycle)
    ( = )

let test_forensics_bit_identical_campaigns () =
  let ctx =
    Context.create ~scale:Context.Reduced ~seed:4 ~faults_per_design:100 ()
  in
  List.iter
    (fun strategy ->
      let name = Partition.name strategy in
      let run = Runs.implement_design ctx strategy in
      let f =
        Option.get
          (Runs.campaign_design ~workers:2 ~forensics:true ctx run)
            .Runs.campaign
      in
      let o =
        Option.get
          (Runs.campaign_design ~workers:2 ~forensics:false ctx run)
            .Runs.campaign
      in
      Alcotest.(check int) (name ^ ": same injected") f.Campaign.injected
        o.Campaign.injected;
      Alcotest.(check (array result_testable))
        (name ^ ": identical results modulo the forensic record")
        (Array.map strip f.Campaign.results)
        (Array.map strip o.Campaign.results);
      Array.iter
        (fun r ->
          Alcotest.(check bool) (name ^ ": record present when on") true
            (r.Campaign.forensics <> None))
        f.Campaign.results;
      Array.iter
        (fun r ->
          Alcotest.(check bool) (name ^ ": no record when off") true
            (r.Campaign.forensics = None))
        o.Campaign.results;
      Alcotest.(check bool) (name ^ ": summary present when on") true
        (Campaign.forensic_summary f <> None);
      Alcotest.(check bool) (name ^ ": no summary when off") true
        (Campaign.forensic_summary o = None))
    Partition.all_paper_designs

(* --- forensic content on a TMR campaign --- *)

let test_forensic_records_tmr () =
  let ctx =
    Context.create ~scale:Context.Reduced ~seed:1 ~faults_per_design:150 ()
  in
  let before =
    match List.assoc_opt "campaign.first_error_cycle"
            (Metrics.snapshot ()).Metrics.histograms with
    | Some h -> h.Metrics.count
    | None -> 0
  in
  let run ?(forensics = true) strategy =
    Option.get
      (Runs.campaign_design ~workers:2 ~forensics ctx
         (Runs.implement_design ctx strategy))
        .Runs.campaign
  in
  let tmr = run Partition.Max_partition in
  (* per-record invariants *)
  Array.iter
    (fun (r : Campaign.fault_result) ->
      match r.Campaign.forensics with
      | None -> Alcotest.fail "missing forensic record"
      | Some f ->
          if f.Forensics.masked_at_voter then begin
            Alcotest.(check bool) "voter-masked implies silent" true
              (r.Campaign.outcome = Campaign.Silent);
            Alcotest.(check bool) "voter-masked implies divergence" true
              (f.Forensics.diverged > 0)
          end;
          if r.Campaign.outcome = Campaign.Silent then
            Alcotest.(check int) "silent has no error cycle" (-1)
              r.Campaign.first_error_cycle)
    tmr.Campaign.results;
  let s = Option.get (Campaign.forensic_summary tmr) in
  Alcotest.(check int) "every fault carries a record" tmr.Campaign.injected
    s.Campaign.fs_faults;
  Alcotest.(check bool) "TMR_p1 exposes cross-domain faults" true
    (s.Campaign.fs_cross > 0);
  Alcotest.(check bool) "voter masking observed" true
    (s.Campaign.fs_voter_masked > 0);
  Alcotest.(check bool) "voter-masked is a subset of silent-diverged" true
    (s.Campaign.fs_voter_masked <= s.Campaign.fs_silent_diverged);
  Alcotest.(check bool) "silent-diverged is a subset of diverged" true
    (s.Campaign.fs_silent_diverged <= s.Campaign.fs_diverged);
  (* the unprotected design has no redundancy to cross and no voters *)
  let std = run Partition.Unprotected in
  let s_std = Option.get (Campaign.forensic_summary std) in
  Alcotest.(check int) "unprotected: no cross-domain faults" 0
    s_std.Campaign.fs_cross;
  Alcotest.(check int) "unprotected: no voter masking" 0
    s_std.Campaign.fs_voter_masked;
  (* the first_error_cycle histogram collected every wrong answer *)
  let after =
    match List.assoc_opt "campaign.first_error_cycle"
            (Metrics.snapshot ()).Metrics.histograms with
    | Some h -> h.Metrics.count
    | None -> 0
  in
  Alcotest.(check int) "first_error_cycle histogram observes wrong answers"
    (tmr.Campaign.wrong + std.Campaign.wrong)
    (after - before)

(* --- JSONL sink --- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let contains line sub =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  go 0

let run_tiny_campaign () =
  let impl = Lazy.force tmr_impl in
  let fl = Faultlist.of_impl impl in
  let faults = Faultlist.sample fl ~seed:11 ~count:60 in
  Campaign.run ~name:"tmr_p2" ~impl ~golden:(Lazy.force golden_nl)
    ~stimulus:(stimulus 20) ~faults ()

let test_jsonl_emission () =
  let path = Filename.temp_file "forensics" ".jsonl" in
  Forensics.to_file path;
  let c =
    Fun.protect ~finally:Forensics.close (fun () -> run_tiny_campaign ())
  in
  let lines = read_lines path in
  Alcotest.(check int) "one record per injected fault" c.Campaign.injected
    (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "record is a JSON object" true
        (String.length line > 1 && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      List.iter
        (fun field ->
          Alcotest.(check bool) (Printf.sprintf "record has %s" field) true
            (contains line (Printf.sprintf "\"%s\":" field)))
        [ "design"; "bit"; "effect"; "outcome"; "first_error_cycle";
          "domain_mask"; "cross_domain"; "masked_at_voter" ])
    lines;
  (* emission order is the fault-index order of the campaign *)
  List.iteri
    (fun i line ->
      let bit = c.Campaign.results.(i).Campaign.bit in
      Alcotest.(check bool)
        (Printf.sprintf "record %d is fault %d" i bit)
        true
        (contains line (Printf.sprintf "\"bit\":%d," bit)))
    lines;
  (* a second identical run streams identical bytes *)
  let path2 = Filename.temp_file "forensics" ".jsonl" in
  Forensics.to_file path2;
  ignore
    (Fun.protect ~finally:Forensics.close (fun () -> run_tiny_campaign ()));
  Alcotest.(check (list string)) "deterministic stream" lines
    (read_lines path2);
  Sys.remove path;
  Sys.remove path2

let () =
  Alcotest.run "tmr_forensics"
    [
      ( "footprint",
        [
          Alcotest.test_case "every bit decodes in range" `Quick
            test_footprint_decodes_every_bit;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "attrib invariants" `Quick test_attrib_invariants;
          Alcotest.test_case "structural attribution" `Quick
            test_structural_attribution;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "bit-identical with forensics on/off (5 designs)"
            `Slow test_forensics_bit_identical_campaigns;
          Alcotest.test_case "TMR forensic records and summary" `Slow
            test_forensic_records_tmr;
        ] );
      ( "jsonl",
        [ Alcotest.test_case "stream per fault" `Quick test_jsonl_emission ] );
    ]
