(* Differential fault-simulation engine: baseline-tape packing, cone
   closure on a hand-built fabric, and bit-identical campaign results
   against the full-replay engine on all five paper designs. *)

module Logic = Tmr_logic.Logic
module Srand = Tmr_logic.Srand
module Netlist = Tmr_netlist.Netlist
module Word = Tmr_netlist.Word
module Arch = Tmr_arch.Arch
module Device = Tmr_arch.Device
module Bitdb = Tmr_arch.Bitdb
module Bitstream = Tmr_arch.Bitstream
module Impl = Tmr_pnr.Impl
module Extract = Tmr_fabric.Extract
module Fsim = Tmr_fabric.Fsim
module Partition = Tmr_core.Partition
module Campaign = Tmr_inject.Campaign
module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs

let dev = lazy (Device.build Arch.small)
let db = lazy (Bitdb.build (Lazy.force dev))

(* --- tape pack/unpack --- *)

let logic_testable =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_char ppf (Logic.to_char v))
    Logic.equal

let test_tape_roundtrip () =
  let nnodes = 13 and cycles = 7 in
  let tape = Fsim.tape_create ~nnodes ~cycles in
  Alcotest.(check int) "nnodes" nnodes (Fsim.tape_nnodes tape);
  Alcotest.(check int) "cycles" cycles (Fsim.tape_cycles tape);
  (* a dense pseudo-random pattern over all three values, written twice
     (the second write overwrites in place) *)
  let vals = [| Logic.Zero; Logic.One; Logic.X |] in
  let at pass c n = vals.(((pass * 11) + (c * 31) + (n * 7)) mod 3) in
  for pass = 0 to 1 do
    for c = 0 to cycles - 1 do
      for n = 0 to nnodes - 1 do
        Fsim.tape_set tape ~cycle:c ~node:n (at pass c n)
      done
    done
  done;
  for c = 0 to cycles - 1 do
    for n = 0 to nnodes - 1 do
      Alcotest.check logic_testable
        (Printf.sprintf "cycle %d node %d" c n)
        (at 1 c n)
        (Fsim.tape_get tape ~cycle:c ~node:n)
    done
  done;
  Alcotest.check_raises "cycle out of range"
    (Invalid_argument "Fsim.tape_get") (fun () ->
      ignore (Fsim.tape_get tape ~cycle:cycles ~node:0));
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Fsim.tape_set") (fun () ->
      Fsim.tape_set tape ~cycle:0 ~node:nnodes Logic.One)

(* --- cone closure + differential == full replay on a hand-built
   fabric: every patchable bit of a small implemented datapath --- *)

let build_datapath () =
  let nl = Netlist.create () in
  let a = Word.input nl "a" ~width:6 in
  let b = Word.input nl "b" ~width:6 in
  let s = Word.add nl a b in
  let p = Word.mul_const nl s (-3) ~width:6 in
  let r = Word.reg nl p in
  Word.output nl "r" r;
  nl

let test_patch_diff_matches_oracle () =
  let dev = Lazy.force dev and db = Lazy.force db in
  let impl =
    Impl.implement_exn ~seed:5 dev db (build_datapath ())
  in
  let out_wires = Array.init 6 (Impl.output_pad_wire impl "r") in
  let a_wires = Array.init 6 (Impl.input_pad_wire impl "a") in
  let b_wires = Array.init 6 (Impl.input_pad_wire impl "b") in
  let ex =
    Extract.create dev db
      (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
  in
  let ws = Fsim.make_workspace dev in
  let base = Fsim.build ~ws ex ~watch_outputs:out_wires in
  let cone = Fsim.snapshot_cone ws in
  let cycles = 24 in
  let rng = Srand.create 7 in
  let stim = Array.init cycles (fun _ -> (Srand.int rng 64, Srand.int rng 64)) in
  let drive sim c =
    let a, b = stim.(c) in
    let set wires v =
      let nodes = Fsim.pad_nodes sim wires in
      Array.iteri
        (fun i n -> Fsim.set_node sim n (Logic.of_bool ((v asr i) land 1 = 1)))
        nodes
    in
    set a_wires a;
    set b_wires b
  in
  (* the baseline tape and the expected (fault-free) watch matrix *)
  let watch = Fsim.watch_nodes base out_wires in
  let tape = Fsim.tape_create ~nnodes:(Fsim.num_nodes base) ~cycles in
  let expected = Array.make_matrix cycles 6 Logic.X in
  Fsim.reset base;
  for c = 0 to cycles - 1 do
    drive base c;
    Fsim.eval base;
    Fsim.tape_record tape base ~cycle:c;
    for i = 0 to 5 do
      expected.(c).(i) <- Fsim.node_value base watch.(i)
    done;
    Fsim.clock base
  done;
  (* tape_record round-trips through the packing *)
  Array.iteri
    (fun i w ->
      Alcotest.check logic_testable
        (Printf.sprintf "tape holds watch bit %d" i)
        expected.(cycles - 1).(i)
        (Fsim.tape_get tape ~cycle:(cycles - 1) ~node:w))
    watch;
  (* full-replay oracle: a fresh simulator on the flipped extract *)
  let oracle () =
    let sim = Fsim.build ex ~watch_outputs:out_wires in
    let w = Fsim.watch_nodes sim out_wires in
    Fsim.reset sim;
    let err = ref (-1) in
    let c = ref 0 in
    while !err < 0 && !c < cycles do
      drive sim !c;
      Fsim.eval sim;
      for i = 0 to 5 do
        if
          !err < 0
          && not (Logic.equal (Fsim.node_value sim w.(i)) expected.(!c).(i))
        then err := !c
      done;
      if !err < 0 then begin
        Fsim.clock sim;
        incr c
      end
    done;
    !err
  in
  let dsc = Fsim.make_dscratch () in
  let tested = ref 0 in
  for bit = 0 to Bitdb.num_bits db - 1 do
    if Fsim.plan_fault cone ex bit = Fsim.Path_patch then begin
      incr tested;
      Extract.apply_bit_flip ex bit;
      Fun.protect
        ~finally:(fun () -> Extract.apply_bit_flip ex bit)
        (fun () ->
          let seed = Fsim.patch_node cone ex bit in
          let derr, _cv, _det =
            Fsim.with_patch cone base ex bit (fun sim ->
                Fsim.diff_run ~forensics:false ~scratch:dsc ~tape ~base ~sim
                  ~seeds:(Fsim.Seed_node seed) ~watch ~base_watch:watch
                  ~expected ())
          in
          Alcotest.(check bool)
            (Printf.sprintf "bit %d: cone closed under successors" bit)
            true
            (Fsim.diff_cone_is_closed dsc base);
          Alcotest.(check bool)
            (Printf.sprintf "bit %d: seed inside the cone" bit)
            true
            (Array.exists (fun n -> n = seed) (Fsim.diff_cone dsc));
          Alcotest.(check int)
            (Printf.sprintf "bit %d: first error cycle" bit)
            (oracle ()) derr)
    end
  done;
  Alcotest.(check bool) "exercised some patch faults" true (!tested > 0)

(* --- campaign-level: diff on == diff off, all five paper designs over
   a shared fault sample --- *)

let result_testable =
  Alcotest.testable
    (fun ppf (r : Campaign.fault_result) ->
      Format.fprintf ppf "{bit=%d; wrong=%b; effect=%s; cycle=%d}"
        r.Campaign.bit
        (r.Campaign.outcome = Campaign.Wrong_answer)
        (Tmr_inject.Classify.name r.Campaign.effect)
        r.Campaign.first_error_cycle)
    ( = )

let check_same_results msg (a : Campaign.t) (b : Campaign.t) =
  Alcotest.(check int) (msg ^ ": injected") a.Campaign.injected
    b.Campaign.injected;
  Alcotest.(check (array result_testable))
    (msg ^ ": results array")
    a.Campaign.results b.Campaign.results

let test_diff_vs_rebuild_campaigns () =
  let ctx =
    Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:120 ()
  in
  let total_diffed = ref 0 and total_converged = ref 0 in
  List.iter
    (fun strategy ->
      let name = Partition.name strategy in
      let run = Runs.implement_design ctx strategy in
      let d =
        Option.get
          (Runs.campaign_design ~workers:2 ~diff:true ctx run).Runs.campaign
      in
      let o =
        Option.get
          (Runs.campaign_design ~workers:2 ~diff:false ctx run).Runs.campaign
      in
      let s = d.Campaign.stats in
      total_diffed := !total_diffed + s.Campaign.diffed;
      total_converged := !total_converged + s.Campaign.converged;
      Alcotest.(check int)
        (name ^ ": differential engine covers every patch/reroute fault")
        (s.Campaign.patched + s.Campaign.rerouted)
        s.Campaign.diffed;
      Alcotest.(check bool)
        (name ^ ": converged <= diffed")
        true
        (s.Campaign.converged <= s.Campaign.diffed);
      Alcotest.(check int)
        (name ^ ": no-diff ran nothing differentially")
        0 o.Campaign.stats.Campaign.diffed;
      check_same_results name d o)
    Partition.all_paper_designs;
  Alcotest.(check bool) "diff engine exercised" true (!total_diffed > 0);
  Alcotest.(check bool) "some faults converged early" true
    (!total_converged > 0)

let () =
  Alcotest.run "tmr_diff"
    [
      ( "tape",
        [ Alcotest.test_case "pack/unpack round-trip" `Quick test_tape_roundtrip ] );
      ( "engine",
        [
          Alcotest.test_case "patch faults: diff == oracle, cone closed"
            `Slow test_patch_diff_matches_oracle;
          Alcotest.test_case "campaigns: diff == full replay (5 designs)"
            `Slow test_diff_vs_rebuild_campaigns;
        ] );
    ]
