(* End-to-end smoke tests of the experiment layer at reduced scale. *)

module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Tables = Tmr_experiments.Tables
module Figures = Tmr_experiments.Figures
module Reports = Tmr_experiments.Reports
module Ablation = Tmr_experiments.Ablation
module Partition = Tmr_core.Partition
module Campaign = Tmr_inject.Campaign

let ctx =
  lazy (Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:120 ())

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_reports () =
  let c = Lazy.force ctx in
  let dr = Reports.device_report c in
  Alcotest.(check bool) "device report mentions frames" true
    (contains dr "frames");
  Alcotest.(check bool) "device report cites the paper value" true
    (contains dr "1,442,016");
  let mr = Reports.memory_report c in
  Alcotest.(check bool) "memory report has routing row" true
    (contains mr "routing");
  Alcotest.(check bool) "memory report cites 82.9" true (contains mr "82.9")

(* Golden assertions against the paper's XC2S200E constants: the report
   must quote them verbatim, and at paper scale the model's own geometry
   must land on (or near) them. *)
let test_paper_constants () =
  let c = Context.create ~scale:Context.Paper ~seed:1 () in
  let dr = Reports.device_report c in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "device report cites %S" s)
        true (contains dr s))
    [ "28 x 42"; "1,442,016"; "2,501"; "576"; "4,704 (2,352 slices x 2)" ];
  let p = c.Context.dev.Tmr_arch.Device.params in
  Alcotest.(check int) "CLB rows" 28 p.Tmr_arch.Arch.rows;
  Alcotest.(check int) "CLB cols" 42 p.Tmr_arch.Arch.cols;
  Alcotest.(check int) "frame bits exactly the paper's" 576
    (Tmr_arch.Bitdb.frame_bits c.Context.db);
  let mr = Reports.memory_report c in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "memory report cites %S" s)
        true (contains mr s))
    [ "routing"; "LUT"; "customization"; "flip-flop";
      "82.9"; "7.4"; "6.36"; "0.46" ];
  (* the model's composition tracks the paper's split *)
  let counts = Tmr_arch.Bitdb.class_counts c.Context.db in
  let total = float_of_int (Tmr_arch.Bitdb.num_bits c.Context.db) in
  let pct cls = 100.0 *. float_of_int (List.assoc cls counts) /. total in
  let near what paper tol actual =
    if Float.abs (actual -. paper) > tol then
      Alcotest.failf "%s: %.2f%% not within %.1f of the paper's %.2f%%" what
        actual tol paper
  in
  near "routing share" 82.9 5.0 (pct Tmr_arch.Bitdb.Class_routing);
  near "LUT share" 7.4 2.0 (pct Tmr_arch.Bitdb.Class_lut);
  near "customization share" 6.36 3.0 (pct Tmr_arch.Bitdb.Class_custom);
  near "flip-flop share" 0.46 0.5 (pct Tmr_arch.Bitdb.Class_ff)

let runs =
  lazy
    (let c = Lazy.force ctx in
     List.map
       (fun s -> Runs.campaign_design c (Runs.implement_design c s))
       [ Partition.Unprotected; Partition.Medium_partition ])

let test_table2_table3 () =
  let rs = Lazy.force runs in
  let t2 = Tables.table2 rs in
  Alcotest.(check bool) "table2 lists standard" true
    (contains t2 "Standard Filter");
  Alcotest.(check bool) "table2 lists p2" true (contains t2 "TMR_p2");
  let t3 = Tables.table3 rs in
  Alcotest.(check bool) "table3 cites the paper's 0.98" true
    (contains t3 "0.98");
  (* standard must be far more sensitive than TMR in the campaign *)
  let pct name =
    let run =
      List.find (fun r -> Partition.name r.Runs.strategy = name) rs
    in
    match run.Runs.campaign with
    | Some c -> Campaign.wrong_percent c
    | None -> Alcotest.fail "campaign missing"
  in
  Alcotest.(check bool) "standard >> tmr_p2" true
    (pct "standard" > 4.0 *. pct "tmr_p2")

let test_table4 () =
  let rs = Lazy.force runs in
  let t4 = Tables.table4 rs in
  Alcotest.(check bool) "table4 has bridge row" true (contains t4 "Bridge");
  Alcotest.(check bool) "table4 has totals" true (contains t4 "Total")

let test_fig2 () =
  let c = Lazy.force ctx in
  let s = Figures.fig2 c in
  (* the voted variant must report zero output errors after both upsets *)
  Alcotest.(check bool) "fig2 voted row present" true (contains s "voted (fig 2)");
  Alcotest.(check bool) "fig2 explains recovery" true
    (contains s "re-converge")

let test_fig4_and_wire_domains () =
  let rs = Lazy.force runs in
  let f4 = Figures.fig4 rs in
  Alcotest.(check bool) "fig4 lists voter stages" true
    (contains f4 "voter stages");
  (* wire_domains: every routed wire of the TMR design belongs to a domain
     or -1; unused wires are -2 *)
  let tmr = List.nth rs 1 in
  let domains = Figures.wire_domains tmr in
  let used = ref 0 in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "domain in range" true (d >= -2 && d <= 2);
      if d >= -1 then incr used)
    domains;
  Alcotest.(check bool) "some wires used" true (!used > 0)

let test_short_experiment_direction () =
  let c = Lazy.force ctx in
  let nv = Runs.implement_design c Partition.Min_partition_nv in
  let i_same, w_same = Figures.short_experiment c nv ~same_domain:true ~n:60 in
  let i_diff, w_diff = Figures.short_experiment c nv ~same_domain:false ~n:60 in
  Alcotest.(check bool) "candidates exist" true (i_same > 0 && i_diff > 0);
  let pct w i = float_of_int w /. float_of_int (max i 1) in
  Alcotest.(check bool)
    (Printf.sprintf "inter-domain shorts (%d/%d) worse than intra (%d/%d)"
       w_diff i_diff w_same i_same)
    true
    (pct w_diff i_diff > pct w_same i_same)

let test_ablation_renders () =
  let c =
    Context.create ~scale:Context.Reduced ~seed:2 ~faults_per_design:60 ()
  in
  let fp = Ablation.floorplan c Partition.Medium_partition in
  Alcotest.(check bool) "floorplan table" true (contains fp "per-domain");
  let sc = Ablation.scrub c in
  Alcotest.(check bool) "scrub table" true (contains sc "upsets")

let () =
  Alcotest.run "tmr_experiments"
    [
      ( "experiments",
        [
          Alcotest.test_case "SS2/SS4 reports" `Quick test_reports;
          Alcotest.test_case "paper XC2S200E constants" `Quick
            test_paper_constants;
          Alcotest.test_case "tables 2 and 3" `Quick test_table2_table3;
          Alcotest.test_case "table 4" `Quick test_table4;
          Alcotest.test_case "fig 2" `Quick test_fig2;
          Alcotest.test_case "fig 4 + wire domains" `Quick
            test_fig4_and_wire_domains;
          Alcotest.test_case "fig 1/3 short experiments" `Quick
            test_short_experiment_direction;
          Alcotest.test_case "ablations render" `Quick test_ablation_renders;
        ] );
    ]
