(* Benchmark harness: regenerates every table and figure of the paper and
   runs Bechamel micro-benchmarks of the flow stages.

   Usage:
     dune exec bench/main.exe                    # everything, paper scale
     dune exec bench/main.exe -- table3 fig1     # selected experiments
     dune exec bench/main.exe -- quick           # everything, reduced scale
     dune exec bench/main.exe -- micro           # Bechamel micro-benchmarks

   TMR_FAULTS=<n> overrides the faults-per-design sample size.
   TMR_JOBS=<n> overrides the campaign worker-domain count. *)

module Context = Tmr_experiments.Context
module Runs = Tmr_experiments.Runs
module Tables = Tmr_experiments.Tables
module Figures = Tmr_experiments.Figures
module Reports = Tmr_experiments.Reports
module Partition = Tmr_core.Partition
module Campaign = Tmr_inject.Campaign
module Service = Tmr_experiments.Service
module Stats = Tmr_obs.Stats
module Events = Tmr_obs.Events

let say fmt = Printf.printf (fmt ^^ "\n%!")

let int_env name =
  match Sys.getenv_opt name with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Some n
      | None ->
          Printf.eprintf "bench: %s must be an integer, got %S\n" name v;
          exit 2)

let jobs () = int_env "TMR_JOBS"

let time name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  say "[%s: %.1fs]" name (Unix.gettimeofday () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Experiment registry *)

type wants = {
  mutable device : bool;
  mutable memory : bool;
  mutable t1 : bool;
  mutable t2 : bool;
  mutable t3 : bool;
  mutable t4 : bool;
  mutable f1 : bool;
  mutable f2 : bool;
  mutable f3 : bool;
  mutable f4 : bool;
  mutable micro : bool;
  mutable ablation : bool;
  mutable scrub : bool;
  mutable scale : Context.scale;
}

let needs_runs w = w.t3 || w.t4
let needs_impls w = needs_runs w || w.t1 || w.t2 || w.f1 || w.f3 || w.f4

let run_experiments w ~faults ~seed =
  let ctx = Context.create ~scale:w.scale ~seed ~faults_per_design:faults () in
  say "device: %s"
    (Format.asprintf "%a" Tmr_arch.Arch.pp ctx.Context.dev.Tmr_arch.Device.params);
  if w.device then begin
    print_string (Reports.device_report ctx);
    print_newline ()
  end;
  if w.memory then begin
    print_string (Reports.memory_report ctx);
    print_newline ()
  end;
  if w.f2 then begin
    print_string (time "fig2" (fun () -> Figures.fig2 ctx));
    print_newline ()
  end;
  if needs_impls w then begin
    let impls =
      time "implement 5 designs" (fun () ->
          List.map (Runs.implement_design ctx) Partition.all_paper_designs)
    in
    let find strategy = List.find (fun r -> r.Runs.strategy = strategy) impls in
    if w.t1 then begin
      print_string
        (time "table1" (fun () ->
             Tables.table1 ctx (find Partition.Medium_partition)));
      print_newline ()
    end;
    if w.f1 then begin
      print_string
        (time "fig1" (fun () ->
             Figures.fig1 ctx (find Partition.Min_partition_nv)));
      print_newline ()
    end;
    if w.f3 then begin
      print_string
        (time "fig3" (fun () ->
             Figures.fig3 ctx
               (find Partition.Min_partition_nv)
               (find Partition.Medium_partition)));
      print_newline ()
    end;
    if w.f4 then begin
      print_string (Figures.fig4 impls);
      print_newline ()
    end;
    if w.t2 then begin
      print_string (Tables.table2 impls);
      print_newline ()
    end;
    if needs_runs w then begin
      let last_design = ref "" in
      (* the pool already rate-limits the callback; print every tick *)
      let progress name (p : Campaign.progress) =
        if name <> !last_design then begin
          say "campaign %s: %d faults..." name p.Campaign.p_total;
          last_design := name
        end;
        say "  %s: %d/%d (%d wrong)" name p.Campaign.p_completed
          p.Campaign.p_total p.Campaign.p_wrong
      in
      let runs =
        time "fault-injection campaigns" (fun () ->
            List.map (Runs.campaign_design ~progress ?workers:(jobs ()) ctx) impls)
      in
      if w.t3 then begin
        print_string (Tables.table3 runs);
        print_newline ()
      end;
      if w.t4 then begin
        print_string (Tables.table4 runs);
        print_newline ()
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Parallel-campaign throughput: BENCH_campaign.json *)

(* One measured campaign configuration.  Every row of the throughput
   table runs through [measure_row], so the five rows stay comparable:
   same GC leveling, same telemetry isolation, same console line. *)
type crow = {
  cr_name : string;
  cr_cone_skip : bool;
  cr_diff : bool;
  cr_c : Campaign.t;
  cr_dt : float;
  cr_fps : float;
  cr_snap : Tmr_obs.Metrics.snapshot;
}

let measure_row ?(forensics = false) ?stop_at_ci ?(batch_width = 0)
    ?(repeat = 1) ~name ~workers ~cone_skip ~diff ctx run =
  (* level the field between rows: the sequential oracle leaves a major
     heap full of dead simulators that would slow later rows' GC; the
     telemetry reset isolates each row's snapshot to its own engine.
     Rows that finish in a few seconds are noise-dominated on a loaded
     runner, so they report the best of [repeat] runs (campaigns are
     deterministic, only the clock varies); minute-long rows
     self-average and run once. *)
  let once () =
    Gc.compact ();
    Tmr_obs.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let r =
      Runs.campaign_design ~workers ~cone_skip ~diff ~forensics ?stop_at_ci
        ~batch_width ctx run
    in
    let dt = Unix.gettimeofday () -. t0 in
    let snap = Tmr_obs.Metrics.snapshot () in
    (r, dt, snap)
  in
  let best = ref (once ()) in
  for _ = 2 to repeat do
    let (_, dt, _) as m = once () in
    let _, best_dt, _ = !best in
    if dt < best_dt then best := m
  done;
  let r, dt, snap = !best in
  let c = Option.get r.Runs.campaign in
  let fps = float_of_int c.Campaign.injected /. dt in
  say
    "  %-24s workers=%d cone_skip=%b diff=%b: %.2fs, %.1f faults/s (skipped \
     %d, patched %d, rerouted %d, rebuilt %d, diffed %d, converged %d)"
    name workers cone_skip diff dt fps c.Campaign.stats.Campaign.skipped
    c.Campaign.stats.Campaign.patched c.Campaign.stats.Campaign.rerouted
    c.Campaign.stats.Campaign.rebuilt c.Campaign.stats.Campaign.diffed
    c.Campaign.stats.Campaign.converged;
  {
    cr_name = name;
    cr_cone_skip = cone_skip;
    cr_diff = diff;
    cr_c = c;
    cr_dt = dt;
    cr_fps = fps;
    cr_snap = snap;
  }

let row_json r =
  let c = r.cr_c in
  Printf.sprintf
    "    { \"name\": %S, \"workers\": %d, \"cone_skip\": %b, \"diff\": %b, \
     \"seconds\": %.3f, \"faults_per_sec\": %.2f,\n\
    \      \"requested\": %d, \"injected\": %d, \"skipped\": %d, \"patched\": \
     %d, \"rerouted\": %d, \"rebuilt\": %d, \"diffed\": %d, \"converged\": \
     %d,\n\
    \      \"wrong_percent\": %.3f, \"worker_utilization\": %.3f, \
     \"inject_utilization\": %.3f }"
    r.cr_name c.Campaign.workers r.cr_cone_skip r.cr_diff r.cr_dt r.cr_fps
    c.Campaign.requested c.Campaign.injected c.Campaign.stats.Campaign.skipped
    c.Campaign.stats.Campaign.patched c.Campaign.stats.Campaign.rerouted
    c.Campaign.stats.Campaign.rebuilt c.Campaign.stats.Campaign.diffed
    c.Campaign.stats.Campaign.converged
    (Campaign.wrong_percent c)
    (Campaign.utilization c)
    (Campaign.inject_utilization c)

(* Multi-process sharded throughput: the same exhaustive fault space
   pushed through the shard queue at 1, 2 and 4 worker processes.
   Exhaustive on the reduced device keeps one measurement in the
   seconds range while still covering every essential bit; each
   configuration reports the best of three runs (the verdicts are
   deterministic, only the clock varies). *)
let distributed_bench () =
  say "distributed exhaustive campaign (reduced-scale %s, every essential bit):"
    (Partition.name Partition.Medium_partition);
  let ctx = Context.create ~scale:Context.Reduced ~seed:1 () in
  let run =
    time "implement (reduced)" (fun () ->
        Runs.implement_design ctx Partition.Medium_partition)
  in
  let job =
    Service.job ~scale:Context.Reduced ~seed:1 ~exhaustive:true ~shards:16
      ?workers:(jobs ()) Partition.Medium_partition
  in
  let total = Array.length (Service.faults_of ctx run job) in
  let bench_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tmr-bench-shards-%d" (Unix.getpid ()))
  in
  let measure ?(events = false) procs =
    let label =
      if events then "distributed-spooled" else "distributed-exhaustive"
    in
    let best_dt = ref infinity in
    let best_c = ref None in
    for i = 1 to 3 do
      (* a fresh queue directory per run: resume must never hide work *)
      let dir =
        Filename.concat bench_root
          (Printf.sprintf "%s-p%d-r%d" (if events then "ev" else "plain")
             procs i)
      in
      Gc.compact ();
      (* with events on, the timed region includes the per-worker spool
         writes and the parent's tail-and-relay of the merged stream *)
      let stream =
        if events then begin
          let s = Filename.temp_file "tmr_bench_fleet" ".jsonl" in
          Events.to_file s;
          Some s
        end
        else None
      in
      let t0 = Unix.gettimeofday () in
      (match
         Service.run_sharded ~procs ~notify:(fun _ -> ()) ~dir job ctx run
       with
      | Ok (Service.Complete o) ->
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best_dt then begin
            best_dt := dt;
            best_c := Some o.Service.o_campaign
          end
      | Ok (Service.Incomplete _) -> failwith "distributed bench: incomplete"
      | Error e -> failwith ("distributed bench: " ^ e));
      Option.iter
        (fun s ->
          Events.close ();
          Sys.remove s)
        stream;
      ignore
        (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
    done;
    let c = Option.get !best_c in
    let fps = float_of_int total /. !best_dt in
    say
      "  %-24s procs=%d: %.2fs, %.1f faults/s, utilization %.3f, wrong %d"
      label procs !best_dt fps
      (Campaign.utilization c) c.Campaign.wrong;
    (!best_dt, fps, c)
  in
  let d1, fps1, c1 = measure 1 in
  let d2, fps2, c2 = measure 2 in
  let d4, fps4, c4 = measure 4 in
  let dev, fps_ev, cev = measure ~events:true 2 in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote bench_root)));
  let identical =
    c1.Campaign.results = c2.Campaign.results
    && c1.Campaign.results = c4.Campaign.results
    && c1.Campaign.results = cev.Campaign.results
  in
  let spool_overhead_pct = 100.0 *. (1.0 -. (fps_ev /. fps2)) in
  let spool_ok = fps_ev >= 0.97 *. fps2 in
  say
    "  exact wrong rate %.4f%% over %d essential bits; 2-proc speedup \
     %.2fx, 4-proc %.2fx, identical results: %b"
    (Campaign.wrong_percent c1)
    total (fps2 /. fps1) (fps4 /. fps1) identical;
  say
    "  spooled telemetry at procs=2: %.1f vs %.1f faults/s (%.1f%% \
     overhead)%s"
    fps_ev fps2 spool_overhead_pct
    (if spool_ok then "" else "  ** exceeds 3% budget **");
  let row name procs dt fps (c : Campaign.t) =
    Printf.sprintf
      "    { \"name\": %S, \"procs\": %d, \"shards\": 16, \"seconds\": \
       %.3f, \"faults_per_sec\": %.2f, \"wrong\": %d, \
       \"worker_utilization\": %.3f }"
      name procs dt fps c.Campaign.wrong (Campaign.utilization c)
  in
  Printf.sprintf
    "{\n\
    \    \"design\": %S, \"scale\": \"reduced\", \"exhaustive\": true, \
     \"faults\": %d,\n\
    \    \"rows\": [\n\
     %s,\n\
     %s,\n\
     %s,\n\
     %s\n\
    \    ],\n\
    \    \"wrong_percent_exact\": %.4f,\n\
    \    \"speedup_2procs\": %.3f,\n\
    \    \"speedup_4procs\": %.3f,\n\
    \    \"spool_overhead_percent\": %.2f,\n\
    \    \"spool_overhead_ok\": %b,\n\
    \    \"identical_results\": %b\n\
    \  }"
    (Partition.name Partition.Medium_partition)
    total
    (row "distributed-exhaustive" 1 d1 fps1 c1)
    (row "distributed-exhaustive" 2 d2 fps2 c2)
    (row "distributed-exhaustive" 4 d4 fps4 c4)
    (row "distributed-spooled" 2 dev fps_ev cev)
    (Campaign.wrong_percent c1)
    (fps2 /. fps1) (fps4 /. fps1) spool_overhead_pct spool_ok identical

let campaign_bench () =
  let faults =
    match int_env "TMR_FAULTS" with Some n -> n | None -> 1000
  in
  let parallel_workers = match jobs () with Some j -> j | None -> 4 in
  say "campaign throughput (paper-scale FIR, %s, %d faults):"
    (Partition.name Partition.Medium_partition)
    faults;
  let ctx = Context.create ~scale:Context.Paper ~seed:1 ~faults_per_design:faults () in
  let run =
    time "implement" (fun () ->
        Runs.implement_design ctx Partition.Medium_partition)
  in
  let measure = measure_row ctx run in
  let base = measure ~name:"sequential-rebuild" ~workers:1 ~cone_skip:false ~diff:false in
  let par =
    measure ~name:"parallel-cone-aware" ~workers:parallel_workers
      ~cone_skip:true ~diff:false
  in
  let diff =
    measure_row ~repeat:3 ~name:"parallel-diff" ~workers:parallel_workers
      ~cone_skip:true ~diff:true ctx run
  in
  let batched =
    measure_row ~repeat:3 ~batch_width:64 ~name:"parallel-batched"
      ~workers:parallel_workers ~cone_skip:true ~diff:true ctx run
  in
  let forn =
    measure_row ~repeat:3 ~forensics:true ~name:"parallel-diff-forensics"
      ~workers:parallel_workers ~cone_skip:true ~diff:true ctx run
  in
  (* sequential stopping: same fault list, stop once the Wilson CI of the
     wrong-answer rate narrows to ±1.5 percentage points *)
  let stop_rule = Stats.stop_rule ~half_width:0.015 ~min_n:100 () in
  let cstop =
    measure_row ~repeat:3 ~stop_at_ci:stop_rule ~name:"ci-stop"
      ~workers:parallel_workers ~cone_skip:true ~diff:true ctx run
  in
  (* live telemetry cost: same batched configuration with the event bus
     publishing every progress tick, batch dispatch and heartbeat to a
     JSONL sink.  The bus formats payloads outside its lock and hands
     I/O to a writer thread, so the fault loop should pay ≤3%. *)
  let events_path = Filename.temp_file "tmr_bench_events" ".jsonl" in
  Tmr_obs.Events.to_file events_path;
  let ev =
    Fun.protect
      ~finally:(fun () -> Tmr_obs.Events.close ())
      (fun () ->
        measure_row ~repeat:3 ~batch_width:64 ~name:"parallel-batched-events"
          ~workers:parallel_workers ~cone_skip:true ~diff:true ctx run)
  in
  let ev_published = Tmr_obs.Events.published () in
  let ev_dropped = Tmr_obs.Events.dropped () in
  Sys.remove events_path;
  (* detecting-voter cost: the self-checking voter adds pairwise
     disagreement detectors and an OR tree, and the campaign watches
     three extra error ports per cycle — throughput should stay within
     5% of the plain-majority batched row, and the four-way taxonomy
     must refine, never change, the functional wrong/silent split. *)
  let det_run =
    time "implement (detecting voter)" (fun () ->
        Runs.implement_design ~voter:Tmr_core.Voter.Detecting ctx
          Partition.Medium_partition)
  in
  let det =
    measure_row ~repeat:3 ~batch_width:64 ~name:"detecting-voter"
      ~workers:parallel_workers ~cone_skip:true ~diff:true ctx det_run
  in
  let strip (r : Campaign.fault_result) =
    { r with Campaign.forensics = None }
  in
  let identical =
    base.cr_c.Campaign.results = par.cr_c.Campaign.results
    && base.cr_c.Campaign.results = diff.cr_c.Campaign.results
    && base.cr_c.Campaign.results = batched.cr_c.Campaign.results
    && base.cr_c.Campaign.results
       = Array.map strip forn.cr_c.Campaign.results
  in
  let events_identical =
    base.cr_c.Campaign.results = ev.cr_c.Campaign.results
  in
  let events_overhead = batched.cr_fps /. ev.cr_fps in
  let events_ok = ev.cr_fps >= 0.97 *. batched.cr_fps in
  let ci_c = cstop.cr_c in
  let ci_prefix_identical =
    ci_c.Campaign.injected <= Array.length base.cr_c.Campaign.results
    && ci_c.Campaign.results
       = Array.sub base.cr_c.Campaign.results 0 ci_c.Campaign.injected
  in
  let distributed = distributed_bench () in
  let ci = Campaign.ci ci_c in
  let paper_rate =
    match List.assoc_opt "tmr_p2" Tables.paper_table3 with
    | Some (injected, wrong, _) -> float_of_int wrong /. float_of_int injected
    | None -> nan
  in
  let paper_in_ci =
    paper_rate >= ci.Stats.lo && paper_rate <= ci.Stats.hi
  in
  let speedup = par.cr_fps /. base.cr_fps in
  let diff_speedup = diff.cr_fps /. par.cr_fps in
  let batch_speedup = batched.cr_fps /. diff.cr_fps in
  let skip_rate =
    float_of_int par.cr_c.Campaign.stats.Campaign.skipped
    /. float_of_int (max 1 par.cr_c.Campaign.injected)
  in
  let converge_rate =
    float_of_int diff.cr_c.Campaign.stats.Campaign.converged
    /. float_of_int (max 1 diff.cr_c.Campaign.stats.Campaign.diffed)
  in
  let forensics_overhead = forn.cr_dt /. diff.cr_dt in
  let fs = Option.get (Campaign.forensic_summary forn.cr_c) in
  let det_overhead = batched.cr_fps /. det.cr_fps in
  let det_ok = det.cr_fps >= 0.95 *. batched.cr_fps in
  let det_counts = Campaign.detection_counts det.cr_c in
  let det_wrong =
    Array.fold_left
      (fun acc (r : Campaign.fault_result) ->
        if r.Campaign.outcome = Campaign.Wrong_answer then acc + 1 else acc)
      0 det.cr_c.Campaign.results
  in
  let det_split_identical =
    det_counts.Campaign.dc_detected_wrong + det_counts.Campaign.dc_silent_wrong
    = det_wrong
    && det_counts.Campaign.dc_silent_correct
       + det_counts.Campaign.dc_detected_corrected
       = det.cr_c.Campaign.injected - det_wrong
  in
  say
    "  speedup %.2fx, diff speedup %.2fx over cone-aware, batch speedup \
     %.2fx over diff, skip-rate %.1f%%, converge-rate %.1f%%, identical \
     results: %b"
    speedup diff_speedup batch_speedup (100. *. skip_rate)
    (100. *. converge_rate) identical;
  say
    "  forensics: %.2fx overhead (%.1f faults/s), cross-domain %d, \
     voter-masked %d of %d silent-diverged"
    forensics_overhead forn.cr_fps fs.Campaign.fs_cross
    fs.Campaign.fs_voter_masked fs.Campaign.fs_silent_diverged;
  say
    "  events: %.3fx overhead (%.1f faults/s vs %.1f), within 3%%: %b, \
     %d published, %d dropped, identical results: %b"
    events_overhead ev.cr_fps batched.cr_fps events_ok ev_published ev_dropped
    events_identical;
  say
    "  detecting voter: %.3fx overhead (%.1f faults/s vs %.1f), within 5%%: \
     %b, corrected %d, detected-wrong %d, SDC %d (%.2f%%), wrong/silent \
     split identical: %b"
    det_overhead det.cr_fps batched.cr_fps det_ok
    det_counts.Campaign.dc_detected_corrected
    det_counts.Campaign.dc_detected_wrong det_counts.Campaign.dc_silent_wrong
    (Campaign.sdc_percent det.cr_c)
    det_split_identical;
  say
    "  ci-stop: %d of %d faults, rate %.2f%% CI [%.2f%%, %.2f%%], paper \
     tmr_p2 %.2f%% in CI: %b, prefix-identical: %b"
    ci_c.Campaign.injected ci_c.Campaign.requested
    (Campaign.wrong_percent ci_c)
    (100. *. ci.Stats.lo) (100. *. ci.Stats.hi) (100. *. paper_rate)
    paper_in_ci ci_prefix_identical;
  (* nest the snapshots under the top-level object's 2-space indent *)
  let indent_json snap =
    String.concat "\n  "
      (String.split_on_char '\n'
         (String.trim (Tmr_obs.Metrics.to_json_string snap)))
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"fault-injection campaign\",\n\
      \  \"design\": %S,\n\
      \  \"scale\": \"paper\",\n\
      \  \"faults\": %d,\n\
      \  \"rows\": [\n\
       %s,\n\
       %s,\n\
       %s,\n\
       %s,\n\
       %s,\n\
       %s,\n\
       %s,\n\
       %s\n\
      \  ],\n\
      \  \"speedup\": %.3f,\n\
      \  \"diff_speedup\": %.3f,\n\
      \  \"batch_speedup\": %.3f,\n\
      \  \"skip_rate\": %.4f,\n\
      \  \"converge_rate\": %.4f,\n\
      \  \"identical_results\": %b,\n\
      \  \"ci_stop\": { \"half_width\": %.4f, \"min_n\": %d, \"requested\": \
       %d, \"injected\": %d, \"rate\": %.6f, \"ci_lo\": %.6f, \"ci_hi\": \
       %.6f, \"paper_rate\": %.6f, \"paper_rate_in_ci\": %b, \
       \"prefix_identical\": %b },\n\
      \  \"forensics\": { \"overhead\": %.3f, \"faults\": %d, \
       \"cross_domain\": %d, \"cross_domain_wrong\": %d, \
       \"multi_partition\": %d, \"voter_touch\": %d, \"diverged\": %d, \
       \"silent_diverged\": %d, \"voter_masked\": %d },\n\
      \  \"events\": { \"overhead\": %.4f, \"overhead_ok\": %b, \
       \"published\": %d, \"dropped\": %d, \"identical_results\": %b },\n\
      \  \"detection\": { \"overhead\": %.4f, \"overhead_ok\": %b, \
       \"silent_correct\": %d, \"detected_corrected\": %d, \
       \"detected_wrong\": %d, \"silent_wrong\": %d, \"sdc_percent\": %.4f, \
       \"detected_percent\": %.4f, \"wrong_split_identical\": %b },\n\
      \  \"distributed\": %s,\n\
      \  \"metrics\": %s,\n\
      \  \"metrics_diff\": %s,\n\
      \  \"metrics_batch\": %s\n\
       }\n"
      (Partition.name Partition.Medium_partition)
      faults (row_json base) (row_json par) (row_json diff)
      (row_json batched) (row_json ev) (row_json forn) (row_json det)
      (row_json cstop)
      speedup diff_speedup batch_speedup skip_rate converge_rate identical
      stop_rule.Stats.sr_half_width stop_rule.Stats.sr_min_n
      ci_c.Campaign.requested ci_c.Campaign.injected
      (Campaign.wrong_percent ci_c /. 100.)
      ci.Stats.lo ci.Stats.hi paper_rate paper_in_ci ci_prefix_identical
      forensics_overhead fs.Campaign.fs_faults fs.Campaign.fs_cross
      fs.Campaign.fs_cross_wrong fs.Campaign.fs_multi_part
      fs.Campaign.fs_voter_touch fs.Campaign.fs_diverged
      fs.Campaign.fs_silent_diverged fs.Campaign.fs_voter_masked
      events_overhead events_ok ev_published ev_dropped events_identical
      det_overhead det_ok det_counts.Campaign.dc_silent_correct
      det_counts.Campaign.dc_detected_corrected
      det_counts.Campaign.dc_detected_wrong det_counts.Campaign.dc_silent_wrong
      (Campaign.sdc_percent det.cr_c)
      (Campaign.detected_percent det.cr_c)
      det_split_identical distributed
      (indent_json par.cr_snap) (indent_json diff.cr_snap)
      (indent_json batched.cr_snap)
  in
  let oc = open_out "BENCH_campaign.json" in
  output_string oc json;
  close_out oc;
  say "  wrote BENCH_campaign.json"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the flow stages *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  say "micro-benchmarks (reduced device, 3-tap filter):";
  let dev = Tmr_arch.Device.build Tmr_arch.Arch.small in
  let db = Tmr_arch.Bitdb.build dev in
  let params = Tmr_filter.Fir.tiny_params in
  let nl = Tmr_filter.Designs.build ~params Partition.Medium_partition in
  let impl = Tmr_pnr.Impl.implement_exn ~seed:4 dev db nl in
  let faultlist = Tmr_inject.Faultlist.of_impl impl in
  let faults = Tmr_inject.Faultlist.sample faultlist ~seed:5 ~count:16 in
  let golden_nl = Tmr_filter.Fir.build params in
  let stimulus =
    {
      Tmr_inject.Campaign.cycles = 16;
      inputs = [ ("x", Tmr_filter.Fir.stimulus ~cycles:16 ~seed:3 params) ];
    }
  in
  let mapped () = Tmr_techmap.Techmap.run nl in
  let packed () = Tmr_pnr.Pack.run impl.Tmr_pnr.Impl.mapped in
  let placed () =
    Tmr_pnr.Place.run ~seed:4 ~moves_per_site:16 dev impl.Tmr_pnr.Impl.pack
      impl.Tmr_pnr.Impl.mapped
  in
  let routed () =
    match
      Tmr_pnr.Route.run dev impl.Tmr_pnr.Impl.pack impl.Tmr_pnr.Impl.place
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  let ex =
    Tmr_fabric.Extract.create dev db
      (Tmr_arch.Bitstream.copy impl.Tmr_pnr.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
  in
  let out_wires =
    let bits = Tmr_netlist.Netlist.find_output_port impl.Tmr_pnr.Impl.mapped "y" in
    Array.init (Array.length bits) (Tmr_pnr.Impl.output_pad_wire impl "y")
  in
  let ws = Tmr_fabric.Fsim.make_workspace dev in
  let fsim_build () = Tmr_fabric.Fsim.build ~ws ex ~watch_outputs:out_wires in
  let campaign () =
    Tmr_inject.Campaign.run ~name:"micro" ~impl ~golden:golden_nl ~stimulus
      ~faults ()
  in
  let tests =
    [
      Test.make ~name:"techmap tmr_p2 (tiny)" (Staged.stage mapped);
      Test.make ~name:"pack tmr_p2 (tiny)" (Staged.stage packed);
      Test.make ~name:"place tmr_p2 (tiny)" (Staged.stage placed);
      Test.make ~name:"route tmr_p2 (tiny)" (Staged.stage routed);
      Test.make ~name:"fsim build per fault" (Staged.stage fsim_build);
      Test.make ~name:"campaign of 16 faults" (Staged.stage campaign);
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> say "%-28s %12.0f ns/run" name est
          | Some _ | None -> say "%-28s (no estimate)" name)
        results)
    tests;
  campaign_bench ()

(* ------------------------------------------------------------------ *)

let () =
  let w =
    {
      device = false; memory = false; t1 = false; t2 = false; t3 = false;
      t4 = false; f1 = false; f2 = false; f3 = false; f4 = false;
      micro = false; ablation = false; scrub = false; scale = Context.Paper;
    }
  in
  let all () =
    w.device <- true; w.memory <- true; w.t1 <- true; w.t2 <- true;
    w.t3 <- true; w.t4 <- true; w.f1 <- true; w.f2 <- true; w.f3 <- true;
    w.f4 <- true; w.ablation <- true; w.scrub <- true
  in
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then all ()
  else
    List.iter
      (function
        | "all" -> all ()
        | "quick" ->
            all ();
            w.scale <- Context.Reduced
        | "device" -> w.device <- true
        | "memory" -> w.memory <- true
        | "table1" -> w.t1 <- true
        | "table2" -> w.t2 <- true
        | "table3" -> w.t3 <- true
        | "table4" -> w.t4 <- true
        | "fig1" -> w.f1 <- true
        | "fig2" -> w.f2 <- true
        | "fig3" -> w.f3 <- true
        | "fig4" -> w.f4 <- true
        | "micro" -> w.micro <- true
        | "ablation" -> w.ablation <- true
        | "scrub" -> w.scrub <- true
        | "reduced" -> w.scale <- Context.Reduced
        | other ->
            Printf.eprintf
              "unknown experiment %S (device memory table1-4 fig1-4 \
               ablation scrub micro quick all reduced)\n"
              other;
            exit 2)
      args;
  let faults =
    match int_env "TMR_FAULTS" with
    | Some n -> n
    | None -> if w.scale = Context.Paper then 1500 else 400
  in
  if w.device || w.memory || needs_impls w || w.f2 then
    run_experiments w ~faults ~seed:1;
  if w.ablation || w.scrub then begin
    let ctx = Context.create ~scale:w.scale ~seed:1 ~faults_per_design:faults () in
    if w.ablation then begin
      print_string
        (time "ablation" (fun () ->
             Tmr_experiments.Ablation.floorplan ctx Partition.Medium_partition));
      print_newline ()
    end;
    if w.scrub then begin
      print_string (time "scrub" (fun () -> Tmr_experiments.Ablation.scrub ctx));
      print_newline ()
    end
  end;
  if w.micro then micro ()
