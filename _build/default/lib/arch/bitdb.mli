(** Configuration-bit database: every programmable cell of the device, its
    address, and the resource it controls.

    This is the equivalent of the paper's reverse-engineered "data base of
    the programmed resources (LUTs and configuration routing cells)": it
    lets the fault list manager know what each bit does, and lets the
    fabric extractor re-interpret a (possibly corrupted) bitstream.

    Bits are laid out column-major (all resources of tile column 0, then
    column 1, ...) and grouped into fixed-height frames like the Xilinx
    configuration memory. *)

type resource =
  | Pip of int  (** routing: one programmable interconnect point *)
  | Lut_bit of int * int  (** bel id, truth-table position 0..15 *)
  | Ff_init of int  (** flip-flop configuration-load state *)
  | Out_sel of int  (** bel output mux: 0 = LUT, 1 = registered *)
  | Ce_inv of int  (** clock-enable inversion: 1 freezes the flip-flop *)
  | Sr_inv of int  (** set/reset polarity: 1 inverts the init value *)
  | In_inv of int * int  (** bel id, pin; 1 inverts the LUT input *)
  | Pad_enable of int  (** pad id; 0 disables the buffer (pad floats) *)
  | Pad_cfg of int * int
      (** pad id, attribute 0..2 (slew / pull-up / delay) — electrically
          benign in this model, present so the customization class has its
          realistic share of silent bits *)

type bit_class =
  | Class_routing
  | Class_lut
  | Class_custom  (** CLB customization muxes and pad buffers *)
  | Class_ff  (** flip-flop bits *)

type t

val build : Device.t -> t

val num_bits : t -> int
val num_frames : t -> int
val frame_bits : t -> int

val resource : t -> int -> resource
val class_of_bit : t -> int -> bit_class
val frame_of_bit : t -> int -> int

val pip_bit : t -> int -> int
(** Bit address controlling a pip. *)

val lut_bit : t -> bel:int -> idx:int -> int
val ff_init_bit : t -> bel:int -> int
val out_sel_bit : t -> bel:int -> int
val ce_inv_bit : t -> bel:int -> int
val sr_inv_bit : t -> bel:int -> int
val in_inv_bit : t -> bel:int -> pin:int -> int
val pad_enable_bit : t -> pad:int -> int
val pad_cfg_bit : t -> pad:int -> attr:int -> int

val class_counts : t -> (bit_class * int) list
(** Composition of the configuration memory, for the paper's §2 percentage
    report (routing / LUT / customization / flip-flop). *)

val class_name : bit_class -> string
