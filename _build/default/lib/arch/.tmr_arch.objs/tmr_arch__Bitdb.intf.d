lib/arch/bitdb.mli: Device
