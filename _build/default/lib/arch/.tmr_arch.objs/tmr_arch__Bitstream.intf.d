lib/arch/bitstream.mli:
