lib/arch/device.mli: Arch
