lib/arch/bitstream.ml: Buffer Bytes Char Printf String
