lib/arch/bitdb.ml: Arch Array Device
