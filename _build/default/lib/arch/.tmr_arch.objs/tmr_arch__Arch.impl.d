lib/arch/arch.ml: Format
