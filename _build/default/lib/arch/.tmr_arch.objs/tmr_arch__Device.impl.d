lib/arch/device.ml: Arch Array Hashtbl List Printf
