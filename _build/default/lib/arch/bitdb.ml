type resource =
  | Pip of int
  | Lut_bit of int * int
  | Ff_init of int
  | Out_sel of int
  | Ce_inv of int
  | Sr_inv of int
  | In_inv of int * int
  | Pad_enable of int
  | Pad_cfg of int * int

type bit_class =
  | Class_routing
  | Class_lut
  | Class_custom
  | Class_ff

type t = {
  resources : resource array;
  frame_bits : int;
  pip_bits : int array;
  lut_bits : int array;  (* bel -> base address of its 16 table bits *)
  ff_init_bits : int array;
  out_sel_bits : int array;
  ce_inv_bits : int array;
  sr_inv_bits : int array;
  in_inv_bits : int array;  (* bel -> base of 4 consecutive pin-invert bits *)
  pad_bits : int array;
  pad_cfg_bits : int array;  (* pad -> base of 3 consecutive attr bits *)
}

(* Column key used to give the bit layout a Xilinx-like column-major
   organisation: resources are sorted by the column they sit in. *)
let pip_col dev i =
  let s = dev.Device.pip_src.(i) and d = dev.Device.pip_dst.(i) in
  min dev.Device.wcol.(s) dev.Device.wcol.(d)

let build dev =
  let nbels = dev.Device.nbels in
  let npips = dev.Device.npips in
  let npads = dev.Device.npads in
  (* (column, ordinal, resource) list; ordinal keeps the sort stable. *)
  let entries = ref [] in
  let add col r = entries := (col, r) :: !entries in
  for i = npips - 1 downto 0 do
    add (pip_col dev i) (Pip i)
  done;
  for b = nbels - 1 downto 0 do
    let col = dev.Device.bel_col.(b) in
    for pin = 3 downto 0 do
      add col (In_inv (b, pin))
    done;
    add col (Sr_inv b);
    add col (Ce_inv b);
    add col (Out_sel b);
    add col (Ff_init b);
    for idx = 15 downto 0 do
      add col (Lut_bit (b, idx))
    done
  done;
  for pad = npads - 1 downto 0 do
    let col = dev.Device.wcol.(dev.Device.pad_wire.(pad)) in
    for attr = 2 downto 0 do
      add col (Pad_cfg (pad, attr))
    done;
    add col (Pad_enable pad)
  done;
  let arr = Array.of_list !entries in
  (* stable sort by column only *)
  let tagged = Array.mapi (fun i (col, r) -> (col, i, r)) arr in
  Array.sort
    (fun (c1, i1, _) (c2, i2, _) -> if c1 <> c2 then compare c1 c2 else compare i1 i2)
    tagged;
  let resources = Array.map (fun (_, _, r) -> r) tagged in
  let n = Array.length resources in
  let pip_bits = Array.make npips (-1) in
  let lut_bits = Array.make nbels (-1) in
  let ff_init_bits = Array.make nbels (-1) in
  let out_sel_bits = Array.make nbels (-1) in
  let ce_inv_bits = Array.make nbels (-1) in
  let sr_inv_bits = Array.make nbels (-1) in
  let in_inv_bits = Array.make nbels (-1) in
  let pad_bits = Array.make npads (-1) in
  let pad_cfg_bits = Array.make npads (-1) in
  for a = 0 to n - 1 do
    match resources.(a) with
    | Pip i -> pip_bits.(i) <- a
    | Lut_bit (b, idx) -> if idx = 0 then lut_bits.(b) <- a
    | Ff_init b -> ff_init_bits.(b) <- a
    | Out_sel b -> out_sel_bits.(b) <- a
    | Ce_inv b -> ce_inv_bits.(b) <- a
    | Sr_inv b -> sr_inv_bits.(b) <- a
    | In_inv (b, pin) -> if pin = 0 then in_inv_bits.(b) <- a
    | Pad_enable pad -> pad_bits.(pad) <- a
    | Pad_cfg (pad, attr) -> if attr = 0 then pad_cfg_bits.(pad) <- a
  done;
  (* LUT table bits must be contiguous ascending from their base for
     [lut_bit] to be a simple offset; verify. *)
  Array.iteri
    (fun a r ->
      match r with
      | Lut_bit (b, idx) ->
          if a <> lut_bits.(b) + idx then
            failwith "Bitdb.build: LUT bits not contiguous"
      | In_inv (b, pin) ->
          if a <> in_inv_bits.(b) + pin then
            failwith "Bitdb.build: pin-invert bits not contiguous"
      | Pad_cfg (pad, attr) ->
          if a <> pad_cfg_bits.(pad) + attr then
            failwith "Bitdb.build: pad attr bits not contiguous"
      | Pip _ | Ff_init _ | Out_sel _ | Ce_inv _ | Sr_inv _ | Pad_enable _ -> ())
    resources;
  {
    resources;
    frame_bits = dev.Device.params.Arch.frame_bits;
    pip_bits;
    lut_bits;
    ff_init_bits;
    out_sel_bits;
    ce_inv_bits;
    sr_inv_bits;
    in_inv_bits;
    pad_bits;
    pad_cfg_bits;
  }

let num_bits t = Array.length t.resources
let frame_bits t = t.frame_bits
let num_frames t = (num_bits t + t.frame_bits - 1) / t.frame_bits
let resource t a = t.resources.(a)
let frame_of_bit t a = a / t.frame_bits

let class_of_resource = function
  | Pip _ -> Class_routing
  | Lut_bit _ -> Class_lut
  | Out_sel _ | Ce_inv _ | Sr_inv _ | In_inv _ | Pad_enable _ | Pad_cfg _ ->
      Class_custom
  | Ff_init _ -> Class_ff

let class_of_bit t a = class_of_resource t.resources.(a)

let pip_bit t i = t.pip_bits.(i)
let lut_bit t ~bel ~idx = t.lut_bits.(bel) + idx
let ff_init_bit t ~bel = t.ff_init_bits.(bel)
let out_sel_bit t ~bel = t.out_sel_bits.(bel)
let ce_inv_bit t ~bel = t.ce_inv_bits.(bel)
let sr_inv_bit t ~bel = t.sr_inv_bits.(bel)
let in_inv_bit t ~bel ~pin = t.in_inv_bits.(bel) + pin
let pad_enable_bit t ~pad = t.pad_bits.(pad)
let pad_cfg_bit t ~pad ~attr = t.pad_cfg_bits.(pad) + attr

let class_counts t =
  let routing = ref 0 and lut = ref 0 and custom = ref 0 and ff = ref 0 in
  Array.iter
    (fun r ->
      match class_of_resource r with
      | Class_routing -> incr routing
      | Class_lut -> incr lut
      | Class_custom -> incr custom
      | Class_ff -> incr ff)
    t.resources;
  [
    (Class_routing, !routing);
    (Class_lut, !lut);
    (Class_custom, !custom);
    (Class_ff, !ff);
  ]

let class_name = function
  | Class_routing -> "routing"
  | Class_lut -> "LUT"
  | Class_custom -> "customization"
  | Class_ff -> "flip-flop"
