(** Architecture parameters for the island-style SRAM FPGA model.

    The model follows the Spartan-II organisation the paper targets: an
    array of CLB tiles, each holding [slices_per_clb] slices of
    [luts_per_slice] LUT4+FF pairs ("bels"); segmented routing channels of
    single-, double- and long-length wires joined by switch boxes; and
    connection boxes tying bel pins and IO pads to the channels.  Every
    programmable interconnect point (PIP), LUT bit, CLB customization mux
    and flip-flop init cell is one configuration-memory bit. *)

type params = {
  rows : int;  (** CLB tile rows *)
  cols : int;  (** CLB tile columns *)
  slices_per_clb : int;
  luts_per_slice : int;
  lut_inputs : int;  (** fixed at 4 in this release *)
  ch_singles : int;  (** single-length wires per channel segment *)
  ch_doubles : int;  (** double-length wires per channel segment *)
  ch_longs : int;  (** long lines per row / column *)
  cb_in_singles : int;  (** single-wire choices per bel input pin *)
  cb_out_singles : int;  (** single wires drivable per bel output, per channel *)
  pads_per_position : int;  (** IO pairs per perimeter channel position *)
  long_tap_period : int;  (** switch-point spacing of long-line taps *)
  frame_bits : int;  (** configuration frame height, 576 on the XC2S200E *)
}

val xc2s200e : params
(** Parameters sized after the paper's Spartan-II XC2S200E-PQ208: a
    28 x 42 array (the paper's "28 x 42 slices"), 4 LUT/FF bels per tile,
    576-bit frames, and channel widths chosen so the configuration-memory
    composition approaches the paper's 82.9 % routing / 7.4 % LUT split. *)

val small : params
(** A tiny device for unit tests (fast to build and route). *)

val bels_per_tile : params -> int
val num_tiles : params -> int
val num_bels : params -> int

val scaled : params -> rows:int -> cols:int -> params
(** Same fabric style at a different array size. *)

val pp : Format.formatter -> params -> unit
