type params = {
  rows : int;
  cols : int;
  slices_per_clb : int;
  luts_per_slice : int;
  lut_inputs : int;
  ch_singles : int;
  ch_doubles : int;
  ch_longs : int;
  cb_in_singles : int;
  cb_out_singles : int;
  pads_per_position : int;
  long_tap_period : int;
  frame_bits : int;
}

let xc2s200e =
  {
    rows = 28;
    cols = 42;
    slices_per_clb = 2;
    luts_per_slice = 2;
    lut_inputs = 4;
    ch_singles = 32;
    ch_doubles = 12;
    ch_longs = 2;
    cb_in_singles = 8;
    cb_out_singles = 6;
    pads_per_position = 1;
    long_tap_period = 4;
    frame_bits = 576;
  }

let small =
  {
    rows = 12;
    cols = 14;
    slices_per_clb = 2;
    luts_per_slice = 2;
    lut_inputs = 4;
    ch_singles = 14;
    ch_doubles = 6;
    ch_longs = 2;
    cb_in_singles = 5;
    cb_out_singles = 4;
    pads_per_position = 2;
    long_tap_period = 2;
    frame_bits = 576;
  }

let bels_per_tile p = p.slices_per_clb * p.luts_per_slice
let num_tiles p = p.rows * p.cols
let num_bels p = num_tiles p * bels_per_tile p

let scaled p ~rows ~cols = { p with rows; cols }

let pp ppf p =
  Format.fprintf ppf
    "%dx%d CLBs, %d bels/tile (%d LUT4+FF), channels %ds+%dd+%dl, frame %d b"
    p.rows p.cols (bels_per_tile p) (num_bels p) p.ch_singles p.ch_doubles
    p.ch_longs p.frame_bits
