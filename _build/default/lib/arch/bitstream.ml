type t = {
  nbits : int;
  data : Bytes.t;
}

let create ~nbits = { nbits; data = Bytes.make ((nbits + 7) / 8) '\000' }

let length t = t.nbits

let check t a =
  if a < 0 || a >= t.nbits then
    invalid_arg (Printf.sprintf "Bitstream: address %d out of %d" a t.nbits)

let get t a =
  check t a;
  Char.code (Bytes.get t.data (a lsr 3)) land (1 lsl (a land 7)) <> 0

let set t a v =
  check t a;
  let byte = Char.code (Bytes.get t.data (a lsr 3)) in
  let mask = 1 lsl (a land 7) in
  let byte' = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.data (a lsr 3) (Char.chr (byte' land 0xff))

let flip t a = set t a (not (get t a))

let copy t = { nbits = t.nbits; data = Bytes.copy t.data }

let popcount t =
  let count = ref 0 in
  for i = 0 to Bytes.length t.data - 1 do
    let b = Char.code (Bytes.get t.data i) in
    let rec pop v acc = if v = 0 then acc else pop (v lsr 1) (acc + (v land 1)) in
    count := !count + pop b 0
  done;
  !count

let diff a b =
  if a.nbits <> b.nbits then invalid_arg "Bitstream.diff: size mismatch";
  let out = ref [] in
  for i = a.nbits - 1 downto 0 do
    if get a i <> get b i then out := i :: !out
  done;
  !out

let to_hex t =
  let buf = Buffer.create (2 * Bytes.length t.data) in
  Bytes.iter (fun b -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code b))) t.data;
  Buffer.contents buf

let of_hex ~nbits text =
  let compact = String.concat "" (String.split_on_char '\n' text) in
  let compact = String.concat "" (String.split_on_char ' ' compact) in
  let t = create ~nbits in
  let expected = Bytes.length t.data in
  if String.length compact <> 2 * expected then
    Error
      (Printf.sprintf "hex image has %d bytes, expected %d"
         (String.length compact / 2) expected)
  else begin
    let bad = ref None in
    for i = 0 to expected - 1 do
      match int_of_string_opt ("0x" ^ String.sub compact (2 * i) 2) with
      | Some v -> Bytes.set t.data i (Char.chr v)
      | None -> if !bad = None then bad := Some i
    done;
    match !bad with
    | Some i -> Error (Printf.sprintf "bad hex at byte %d" i)
    | None -> Ok t
  end

let save t path =
  let oc = open_out path in
  Printf.fprintf oc "tmrbits %d\n" t.nbits;
  (* wrap at 64 hex chars for readability *)
  let hex = to_hex t in
  let n = String.length hex in
  let rec dump i =
    if i < n then begin
      output_string oc (String.sub hex i (min 64 (n - i)));
      output_char oc '\n';
      dump (i + 64)
    end
  in
  dump 0;
  close_out oc

let load path =
  let ic = open_in path in
  let header = input_line ic in
  let rest = really_input_string ic (in_channel_length ic - String.length header - 1) in
  close_in ic;
  match String.split_on_char ' ' header with
  | [ "tmrbits"; n ] -> (
      match int_of_string_opt n with
      | Some nbits -> of_hex ~nbits rest
      | None -> Error "bad bit count in header")
  | _ -> Error "bad header"
