(** The device resource graph: wires, PIPs, bels and pads.

    Wires are graph nodes; directional PIPs (programmable interconnect
    points) are the configurable edges.  Bel output pins and input pads are
    the only non-PIP drivers.  The router, the bitstream generator and the
    faulty-fabric extractor all work on this graph. *)

type wire_kind =
  | HSingle
  | VSingle
  | HDouble
  | VDouble
  | HLong
  | VLong
  | BelIn  (** LUT input pin; widx is the pin number *)
  | BelOut  (** bel output pin *)
  | PadIn  (** input pad driver *)
  | PadOut  (** output pad sink *)

type t = {
  params : Arch.params;
  nwires : int;
  wkind : wire_kind array;
  wrow : int array;  (** anchor row (channel coordinate for channel wires) *)
  wcol : int array;
  widx : int array;  (** index within its group (channel track / pin number) *)
  npips : int;
  pip_src : int array;
  pip_dst : int array;
  pip_bidir : bool array;
      (** pass-transistor pips (switch boxes): when on, the endpoints are
          electrically shorted.  Buffered pips (connection boxes, pads)
          drive [pip_dst] from [pip_src]. *)
  wire_out : int array array;
      (** wire -> traversable pips (bidirectional pips appear on both
          endpoints; use {!pip_other} for the far end) *)
  wire_in : int array array;  (** wire -> pips that can drive it *)
  nbels : int;
  bel_row : int array;
  bel_col : int array;
  bel_slot : int array;
  bel_in : int array array;  (** bel -> input pin wires *)
  bel_out : int array;  (** bel -> output pin wire *)
  wire_bel : int array;  (** pin wire -> owning bel, -1 otherwise *)
  npads : int;
  pad_wire : int array;
  pad_is_input : bool array;
  wire_pad : int array;  (** pad wire -> pad id, -1 otherwise *)
}

val build : Arch.params -> t

val bel_at : t -> row:int -> col:int -> slot:int -> int
val wire_span : t -> int -> int
(** Physical length in tiles (1 for singles and pins, 2 for doubles, full
    row/column for longs). *)

val pip_other : t -> int -> int -> int
(** [pip_other t pip w] is the endpoint of [pip] that is not [w]. *)

val describe_wire : t -> int -> string
val describe_pip : t -> int -> string

val input_pads : t -> int array
val output_pads : t -> int array

val check_invariants : t -> (unit, string list) result
(** Graph sanity: pip endpoints valid, adjacency arrays consistent with the
    pip list, pin wires owned by their bel, pad wires registered, channel
    wires within coordinates. *)
