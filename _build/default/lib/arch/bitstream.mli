(** Configuration memory image: a flat array of bits addressed by the
    {!Bitdb} layout.  Fault injection flips exactly one bit of a copy. *)

type t

val create : nbits:int -> t
(** All-zero configuration (the erased device). *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> bool -> unit
val flip : t -> int -> unit

val copy : t -> t

val popcount : t -> int
(** Number of programmed (1) bits. *)

val diff : t -> t -> int list
(** Addresses where the two images differ (ascending). *)

val to_hex : t -> string
(** Hex dump, two characters per byte, LSB-first bit order within bytes. *)

val of_hex : nbits:int -> string -> (t, string) result
(** Inverse of {!to_hex}; whitespace is ignored. *)

val save : t -> string -> unit
(** Write [nbits] and the hex image to a file. *)

val load : string -> (t, string) result
