type wire_kind =
  | HSingle
  | VSingle
  | HDouble
  | VDouble
  | HLong
  | VLong
  | BelIn
  | BelOut
  | PadIn
  | PadOut

type t = {
  params : Arch.params;
  nwires : int;
  wkind : wire_kind array;
  wrow : int array;
  wcol : int array;
  widx : int array;
  npips : int;
  pip_src : int array;
  pip_dst : int array;
  pip_bidir : bool array;
  wire_out : int array array;
  wire_in : int array array;
  nbels : int;
  bel_row : int array;
  bel_col : int array;
  bel_slot : int array;
  bel_in : int array array;
  bel_out : int array;
  wire_bel : int array;
  npads : int;
  pad_wire : int array;
  pad_is_input : bool array;
  wire_pad : int array;
}

(* Growable int vector, used while the final sizes are unknown. *)
module Ivec = struct
  type t = {
    mutable a : int array;
    mutable n : int;
  }

  let create () = { a = Array.make 1024 0; n = 0 }

  let push t v =
    if t.n >= Array.length t.a then
      t.a <- Array.append t.a (Array.make (Array.length t.a) 0);
    t.a.(t.n) <- v;
    t.n <- t.n + 1

  let to_array t = Array.sub t.a 0 t.n
end

(* Wire id layout: contiguous blocks per wire family, with closed-form
   id computation so construction never needs a lookup table. *)
type layout = {
  p : Arch.params;
  hs_base : int;
  vs_base : int;
  hd_base : int;
  vd_base : int;
  hl_base : int;
  vl_base : int;
  pin_base : int;
  pad_base : int;
  total : int;
  pad_positions : int;
}

let layout p =
  let open Arch in
  let hs = (p.rows + 1) * p.cols * p.ch_singles in
  let vs = (p.cols + 1) * p.rows * p.ch_singles in
  let hd = (p.rows + 1) * p.cols * p.ch_doubles in
  let vd = (p.cols + 1) * p.rows * p.ch_doubles in
  let hl = (p.rows + 1) * p.ch_longs in
  let vl = (p.cols + 1) * p.ch_longs in
  let pins = num_bels p * (p.lut_inputs + 1) in
  let pad_positions = (2 * p.cols) + (2 * p.rows) in
  let pads = pad_positions * p.pads_per_position * 2 in
  let hs_base = 0 in
  let vs_base = hs_base + hs in
  let hd_base = vs_base + vs in
  let vd_base = hd_base + hd in
  let hl_base = vd_base + vd in
  let vl_base = hl_base + hl in
  let pin_base = vl_base + vl in
  let pad_base = pin_base + pins in
  let total = pad_base + pads in
  { p; hs_base; vs_base; hd_base; vd_base; hl_base; vl_base; pin_base;
    pad_base; total; pad_positions }

(* Horizontal channel y in 0..rows, segment x in 0..cols-1, track i. *)
let hs l y x i =
  assert (y >= 0 && y <= l.p.Arch.rows && x >= 0 && x < l.p.Arch.cols);
  l.hs_base + (((y * l.p.Arch.cols) + x) * l.p.Arch.ch_singles) + i

(* Vertical channel x in 0..cols, segment y in 0..rows-1, track i. *)
let vs l x y i =
  assert (x >= 0 && x <= l.p.Arch.cols && y >= 0 && y < l.p.Arch.rows);
  l.vs_base + (((x * l.p.Arch.rows) + y) * l.p.Arch.ch_singles) + i

let hd l y x j =
  assert (y >= 0 && y <= l.p.Arch.rows && x >= 0 && x < l.p.Arch.cols);
  l.hd_base + (((y * l.p.Arch.cols) + x) * l.p.Arch.ch_doubles) + j

let vd l x y j =
  assert (x >= 0 && x <= l.p.Arch.cols && y >= 0 && y < l.p.Arch.rows);
  l.vd_base + (((x * l.p.Arch.rows) + y) * l.p.Arch.ch_doubles) + j

let hl l y k =
  assert (y >= 0 && y <= l.p.Arch.rows);
  l.hl_base + (y * l.p.Arch.ch_longs) + k

let vl l x k =
  assert (x >= 0 && x <= l.p.Arch.cols);
  l.vl_base + (x * l.p.Arch.ch_longs) + k

let bel_id l r c slot =
  ((r * l.p.Arch.cols) + c) * Arch.bels_per_tile l.p + slot

let pin l b j = l.pin_base + (b * (l.p.Arch.lut_inputs + 1)) + j

let pad_id_wire l pos k is_input =
  let per_pos = l.p.Arch.pads_per_position * 2 in
  l.pad_base + (pos * per_pos) + (k * 2) + if is_input then 0 else 1

(* Perimeter position coordinates: positions 0..cols-1 top (H channel 0),
   cols..2cols-1 bottom (H channel rows), then left (V channel 0) and right
   (V channel cols). *)
let pad_channel_anchor p pos =
  let open Arch in
  if pos < p.cols then `H (0, pos)
  else if pos < 2 * p.cols then `H (p.rows, pos - p.cols)
  else if pos < (2 * p.cols) + p.rows then `V (0, pos - (2 * p.cols))
  else `V (p.cols, pos - (2 * p.cols) - p.rows)

let build p =
  let l = layout p in
  let open Arch in
  let nwires = l.total in
  let wkind = Array.make nwires HSingle in
  let wrow = Array.make nwires 0 in
  let wcol = Array.make nwires 0 in
  let widx = Array.make nwires 0 in
  (* Fill wire attributes per family. *)
  for y = 0 to p.rows do
    for x = 0 to p.cols - 1 do
      for i = 0 to p.ch_singles - 1 do
        let w = hs l y x i in
        wkind.(w) <- HSingle; wrow.(w) <- y; wcol.(w) <- x; widx.(w) <- i
      done;
      for j = 0 to p.ch_doubles - 1 do
        let w = hd l y x j in
        wkind.(w) <- HDouble; wrow.(w) <- y; wcol.(w) <- x; widx.(w) <- j
      done
    done;
    for k = 0 to p.ch_longs - 1 do
      let w = hl l y k in
      wkind.(w) <- HLong; wrow.(w) <- y; wcol.(w) <- 0; widx.(w) <- k
    done
  done;
  for x = 0 to p.cols do
    for y = 0 to p.rows - 1 do
      for i = 0 to p.ch_singles - 1 do
        let w = vs l x y i in
        wkind.(w) <- VSingle; wrow.(w) <- y; wcol.(w) <- x; widx.(w) <- i
      done;
      for j = 0 to p.ch_doubles - 1 do
        let w = vd l x y j in
        wkind.(w) <- VDouble; wrow.(w) <- y; wcol.(w) <- x; widx.(w) <- j
      done
    done;
    for k = 0 to p.ch_longs - 1 do
      let w = vl l x k in
      wkind.(w) <- VLong; wrow.(w) <- 0; wcol.(w) <- x; widx.(w) <- k
    done
  done;
  let nbels = num_bels p in
  let bpt = bels_per_tile p in
  let bel_row = Array.make nbels 0 in
  let bel_col = Array.make nbels 0 in
  let bel_slot = Array.make nbels 0 in
  let bel_in = Array.make nbels [||] in
  let bel_out = Array.make nbels 0 in
  let wire_bel = Array.make nwires (-1) in
  for r = 0 to p.rows - 1 do
    for c = 0 to p.cols - 1 do
      for slot = 0 to bpt - 1 do
        let b = bel_id l r c slot in
        bel_row.(b) <- r;
        bel_col.(b) <- c;
        bel_slot.(b) <- slot;
        bel_in.(b) <- Array.init p.lut_inputs (fun j -> pin l b j);
        bel_out.(b) <- pin l b p.lut_inputs;
        Array.iteri
          (fun j w ->
            wkind.(w) <- BelIn; wrow.(w) <- r; wcol.(w) <- c; widx.(w) <- j;
            wire_bel.(w) <- b)
          bel_in.(b);
        let ow = bel_out.(b) in
        wkind.(ow) <- BelOut; wrow.(ow) <- r; wcol.(ow) <- c;
        widx.(ow) <- p.lut_inputs;
        wire_bel.(ow) <- b
      done
    done
  done;
  let npads = l.pad_positions * p.pads_per_position * 2 in
  let pad_wire = Array.make npads 0 in
  let pad_is_input = Array.make npads false in
  let wire_pad = Array.make nwires (-1) in
  for pos = 0 to l.pad_positions - 1 do
    for k = 0 to p.pads_per_position - 1 do
      List.iter
        (fun is_input ->
          let w = pad_id_wire l pos k is_input in
          let pid = w - l.pad_base in
          pad_wire.(pid) <- w;
          pad_is_input.(pid) <- is_input;
          wire_pad.(w) <- pid;
          wkind.(w) <- (if is_input then PadIn else PadOut);
          (match pad_channel_anchor p pos with
          | `H (y, x) -> (wrow.(w) <- y; wcol.(w) <- x)
          | `V (x, y) -> (wrow.(w) <- y; wcol.(w) <- x));
          widx.(w) <- k)
        [ true; false ]
    done
  done;
  (* ---------------- PIPs ---------------- *)
  let src_v = Ivec.create () and dst_v = Ivec.create () in
  let bid_v = Ivec.create () in
  (* directional (buffered) pip: a drives b *)
  let pip a b = Ivec.push src_v a; Ivec.push dst_v b; Ivec.push bid_v 0 in
  (* bidirectional (pass-transistor) pip: a and b are shorted when on.
     Canonical endpoint order avoids duplicates. *)
  let bidir a b =
    let a, b = if a <= b then (a, b) else (b, a) in
    Ivec.push src_v a; Ivec.push dst_v b; Ivec.push bid_v 1
  in
  (* Switch boxes: points (y, x), y in 0..rows, x in 0..cols. *)
  for y = 0 to p.rows do
    for x = 0 to p.cols do
      (* disjoint pattern: same-track clique across the four sides *)
      for i = 0 to p.ch_singles - 1 do
        let incident = ref [] in
        if x - 1 >= 0 then incident := hs l y (x - 1) i :: !incident;
        if x <= p.cols - 1 then incident := hs l y x i :: !incident;
        if y - 1 >= 0 then incident := vs l x (y - 1) i :: !incident;
        if y <= p.rows - 1 then incident := vs l x y i :: !incident;
        let ws = !incident in
        List.iter
          (fun a -> List.iter (fun b -> if a < b then bidir a b) ws)
          ws
      done;
      (* Wilton-style rotating turns: track i turns onto track i+1, so the
         graph is not partitioned per track index *)
      for i = 0 to p.ch_singles - 1 do
        let i' = (i + 1) mod p.ch_singles in
        if x - 1 >= 0 && y <= p.rows - 1 then
          bidir (hs l y (x - 1) i) (vs l x y i');
        if x <= p.cols - 1 && y - 1 >= 0 then
          bidir (hs l y x i) (vs l x (y - 1) i')
      done;
      (* doubles: straight-through, turns, and transfers to singles *)
      for j = 0 to p.ch_doubles - 1 do
        let hw = if x - 2 >= 0 then Some (hd l y (x - 2) j) else None in
        let he = if x <= p.cols - 1 then Some (hd l y x j) else None in
        let vsou = if y - 2 >= 0 then Some (vd l x (y - 2) j) else None in
        let vno = if y <= p.rows - 1 then Some (vd l x y j) else None in
        let opt2 f a b = match a, b with Some a, Some b -> f a b | _ -> () in
        opt2 bidir hw he;
        opt2 bidir vsou vno;
        opt2 bidir hw vno;
        opt2 bidir he vsou;
        (* transfer to the same-index single at this point *)
        let single_here =
          if x <= p.cols - 1 then Some (hs l y x j)
          else if x - 1 >= 0 then Some (hs l y (x - 1) j)
          else None
        in
        let vsingle_here =
          if y <= p.rows - 1 then Some (vs l x y j)
          else if y - 1 >= 0 then Some (vs l x (y - 1) j)
          else None
        in
        List.iter
          (fun d ->
            opt2 bidir d single_here;
            opt2 bidir d vsingle_here)
          [ hw; he; vsou; vno ]
        |> ignore
      done;
      (* long-line taps *)
      if x mod p.long_tap_period = 0 then
        for k = 0 to p.ch_longs - 1 do
          if x <= p.cols - 1 then bidir (hl l y k) (hs l y x k)
        done;
      if y mod p.long_tap_period = 0 then
        for k = 0 to p.ch_longs - 1 do
          if y <= p.rows - 1 then bidir (vl l x k) (vs l x y k)
        done
    done
  done;
  (* Connection boxes: tile (r, c) uses H channel y=r segment x=c and
     V channel x=c segment y=r. *)
  let scatter base span salt = (base + salt) mod span in
  for r = 0 to p.rows - 1 do
    for c = 0 to p.cols - 1 do
      for slot = 0 to bpt - 1 do
        let b = bel_id l r c slot in
        (* input pins: odd stride over the tracks so the option set of each
           pin mixes parities and differs across slots and pins *)
        for j = 0 to p.lut_inputs - 1 do
          let pw = bel_in.(b).(j) in
          let salt = (slot * 7) + (j * 5) + r + c in
          for k = 0 to p.cb_in_singles - 1 do
            if k mod 2 = 0 then
              pip (hs l r c (scatter (k * 3) p.ch_singles salt)) pw
            else pip (vs l c r (scatter (k * 3) p.ch_singles salt)) pw
          done;
          (* one double and one long tap per pin *)
          pip (hd l r c ((slot + j + c) mod p.ch_doubles)) pw;
          if j mod 2 = 0 then pip (hl l r (j mod p.ch_longs)) pw
          else pip (vl l c (j mod p.ch_longs)) pw
        done;
        (* output pin *)
        let ow = bel_out.(b) in
        let osalt = (slot * 13) + r + c in
        for k = 0 to p.cb_out_singles - 1 do
          pip ow (hs l r c (scatter (k * 3) p.ch_singles osalt));
          pip ow (vs l c r (scatter ((k * 3) + 1) p.ch_singles osalt))
        done;
        pip ow (hd l r c (slot mod p.ch_doubles));
        pip ow (vd l c r ((slot + 1) mod p.ch_doubles))
      done
    done
  done;
  (* Pads *)
  for pos = 0 to l.pad_positions - 1 do
    for k = 0 to p.pads_per_position - 1 do
      let inw = pad_id_wire l pos k true in
      let outw = pad_id_wire l pos k false in
      let connect_channel tracks =
        List.iter
          (fun w ->
            pip inw w;
            pip w outw)
          tracks
      in
      match pad_channel_anchor p pos with
      | `H (y, x) ->
          connect_channel
            (List.init 4 (fun t -> hs l y x ((t * 3 + k + pos) mod p.ch_singles)))
      | `V (x, y) ->
          connect_channel
            (List.init 4 (fun t -> vs l x y ((t * 3 + k + pos) mod p.ch_singles)))
    done
  done;
  (* Deduplicate (src, dst, kind) triples: a connection is one bit. *)
  let raw_src = Ivec.to_array src_v in
  let raw_dst = Ivec.to_array dst_v in
  let raw_bid = Ivec.to_array bid_v in
  let seen = Hashtbl.create (Array.length raw_src) in
  let kept_src = Ivec.create () and kept_dst = Ivec.create () in
  let kept_bid = Ivec.create () in
  for i = 0 to Array.length raw_src - 1 do
    let key = (((raw_src.(i) * nwires) + raw_dst.(i)) * 2) + raw_bid.(i) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Ivec.push kept_src raw_src.(i);
      Ivec.push kept_dst raw_dst.(i);
      Ivec.push kept_bid raw_bid.(i)
    end
  done;
  let pip_src = Ivec.to_array kept_src in
  let pip_dst = Ivec.to_array kept_dst in
  let pip_bidir = Array.map (fun v -> v = 1) (Ivec.to_array kept_bid) in
  let npips = Array.length pip_src in
  (* adjacency *)
  let out_cnt = Array.make nwires 0 and in_cnt = Array.make nwires 0 in
  for i = 0 to npips - 1 do
    out_cnt.(pip_src.(i)) <- out_cnt.(pip_src.(i)) + 1;
    in_cnt.(pip_dst.(i)) <- in_cnt.(pip_dst.(i)) + 1;
    if pip_bidir.(i) then begin
      out_cnt.(pip_dst.(i)) <- out_cnt.(pip_dst.(i)) + 1;
      in_cnt.(pip_src.(i)) <- in_cnt.(pip_src.(i)) + 1
    end
  done;
  let wire_out = Array.init nwires (fun w -> Array.make out_cnt.(w) 0) in
  let wire_in = Array.init nwires (fun w -> Array.make in_cnt.(w) 0) in
  Array.fill out_cnt 0 nwires 0;
  Array.fill in_cnt 0 nwires 0;
  for i = 0 to npips - 1 do
    let s = pip_src.(i) and d = pip_dst.(i) in
    wire_out.(s).(out_cnt.(s)) <- i;
    out_cnt.(s) <- out_cnt.(s) + 1;
    wire_in.(d).(in_cnt.(d)) <- i;
    in_cnt.(d) <- in_cnt.(d) + 1;
    if pip_bidir.(i) then begin
      wire_out.(d).(out_cnt.(d)) <- i;
      out_cnt.(d) <- out_cnt.(d) + 1;
      wire_in.(s).(in_cnt.(s)) <- i;
      in_cnt.(s) <- in_cnt.(s) + 1
    end
  done;
  {
    params = p; nwires; wkind; wrow; wcol; widx; npips; pip_src; pip_dst;
    pip_bidir; wire_out; wire_in; nbels; bel_row; bel_col; bel_slot; bel_in;
    bel_out; wire_bel; npads; pad_wire; pad_is_input; wire_pad;
  }

let bel_at t ~row ~col ~slot =
  let p = t.params in
  ((row * p.Arch.cols) + col) * Arch.bels_per_tile p + slot

let wire_span t w =
  match t.wkind.(w) with
  | HSingle | VSingle | BelIn | BelOut | PadIn | PadOut -> 1
  | HDouble | VDouble -> 2
  | HLong -> t.params.Arch.cols
  | VLong -> t.params.Arch.rows

let kind_name = function
  | HSingle -> "hs"
  | VSingle -> "vs"
  | HDouble -> "hd"
  | VDouble -> "vd"
  | HLong -> "hl"
  | VLong -> "vl"
  | BelIn -> "belin"
  | BelOut -> "belout"
  | PadIn -> "padin"
  | PadOut -> "padout"

let describe_wire t w =
  Printf.sprintf "%s(%d,%d)#%d" (kind_name t.wkind.(w)) t.wrow.(w) t.wcol.(w)
    t.widx.(w)

let pip_other t i w =
  if t.pip_src.(i) = w then t.pip_dst.(i) else t.pip_src.(i)

let describe_pip t i =
  Printf.sprintf "%s %s %s" (describe_wire t t.pip_src.(i))
    (if t.pip_bidir.(i) then "<->" else "->")
    (describe_wire t t.pip_dst.(i))

let input_pads t =
  let out = ref [] in
  for pid = t.npads - 1 downto 0 do
    if t.pad_is_input.(pid) then out := pid :: !out
  done;
  Array.of_list !out

let output_pads t =
  let out = ref [] in
  for pid = t.npads - 1 downto 0 do
    if not t.pad_is_input.(pid) then out := pid :: !out
  done;
  Array.of_list !out

let check_invariants t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  for i = 0 to t.npips - 1 do
    let s = t.pip_src.(i) and d = t.pip_dst.(i) in
    if s < 0 || s >= t.nwires || d < 0 || d >= t.nwires then
      err "pip %d endpoint out of range" i
    else if s = d then err "pip %d is a self-loop" i
  done;
  let count_out = ref 0 and count_in = ref 0 in
  Array.iter (fun a -> count_out := !count_out + Array.length a) t.wire_out;
  Array.iter (fun a -> count_in := !count_in + Array.length a) t.wire_in;
  let nbidir = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.pip_bidir in
  let expected = t.npips + nbidir in
  if !count_out <> expected then
    err "wire_out covers %d of %d pip slots" !count_out expected;
  if !count_in <> expected then
    err "wire_in covers %d of %d pip slots" !count_in expected;
  Array.iteri
    (fun w pips ->
      Array.iter
        (fun i ->
          let ok =
            t.pip_src.(i) = w || (t.pip_bidir.(i) && t.pip_dst.(i) = w)
          in
          if not ok then err "wire_out mismatch at wire %d" w)
        pips)
    t.wire_out;
  for b = 0 to t.nbels - 1 do
    Array.iter
      (fun w ->
        if t.wire_bel.(w) <> b then err "pin wire %d not owned by bel %d" w b)
      t.bel_in.(b);
    if t.wire_bel.(t.bel_out.(b)) <> b then err "out pin of bel %d unowned" b;
    (* every input pin must be reachable: it needs at least one incoming pip *)
    Array.iter
      (fun w ->
        if Array.length t.wire_in.(w) = 0 then
          err "bel %d input pin %s has no incoming pips" b (describe_wire t w))
      t.bel_in.(b);
    if Array.length t.wire_out.(t.bel_out.(b)) = 0 then
      err "bel %d output pin has no outgoing pips" b
  done;
  for pid = 0 to t.npads - 1 do
    let w = t.pad_wire.(pid) in
    if t.wire_pad.(w) <> pid then err "pad %d wire back-pointer broken" pid;
    if t.pad_is_input.(pid) then begin
      if Array.length t.wire_out.(w) = 0 then err "input pad %d drives nothing" pid
    end
    else if Array.length t.wire_in.(w) = 0 then err "output pad %d unreachable" pid
  done;
  match !errors with
  | [] -> Ok ()
  | es -> Error (List.rev es)
