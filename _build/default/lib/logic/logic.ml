type t =
  | Zero
  | One
  | X

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let of_bool b = if b then One else Zero

let to_bool_opt = function
  | Zero -> Some false
  | One -> Some true
  | X -> None

let is_x = function
  | X -> true
  | Zero | One -> false

let logic_not = function
  | Zero -> One
  | One -> Zero
  | X -> X

let ( &&& ) a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (X | One), _ -> X

let ( ||| ) a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (X | Zero), _ -> X

let logic_xor a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | (Zero | One), _ -> One

let mux ~sel a b =
  match sel with
  | Zero -> a
  | One -> b
  | X -> if equal a b && not (is_x a) then a else X

let maj3 a b c =
  match a, b, c with
  | Zero, Zero, _ | Zero, _, Zero | _, Zero, Zero -> Zero
  | One, One, _ | One, _, One | _, One, One -> One
  | (Zero | One | X), _, _ -> X

let resolve a b = if equal a b && not (is_x a) then a else X

let resolve_list = function
  | [] -> X
  | v :: rest -> List.fold_left resolve v rest

let to_char = function
  | Zero -> '0'
  | One -> '1'
  | X -> 'X'

let of_char = function
  | '0' -> Some Zero
  | '1' -> Some One
  | 'X' | 'x' -> Some X
  | _ -> None

let pp ppf v = Format.pp_print_char ppf (to_char v)
