(** Deterministic pseudo-random numbers (splitmix64).

    Fault-injection campaigns, placement annealing and stimulus generation
    must be exactly reproducible from a seed, independent of the OCaml
    stdlib's generator version, so the whole project draws randomness from
    this module. *)

type t

val create : int -> t
(** [create seed] builds an independent stream. *)

val split : t -> t
(** A statistically independent child stream; the parent advances. *)

val bits64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> int -> int array
(** [sample t n m] draws [min n m] distinct values from [0, m), in random
    order.  Uses a partial shuffle for dense draws and rejection for sparse
    ones. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
