type align =
  | Left
  | Right

type row =
  | Cells of string list
  | Separator

type t = {
  title : string option;
  header : string list;
  aligns : align list;
  ncols : int;
  mutable rows : row list; (* reversed *)
}

let create ?title ~header aligns =
  let ncols = List.length aligns in
  if List.length header <> ncols then
    invalid_arg "Texttab.create: header / alignment arity mismatch";
  { title; header; aligns; ncols; rows = [] }

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg
      (Printf.sprintf "Texttab.add_row: expected %d cells, got %d" t.ncols
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.make t.ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.header;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 256 in
  let pad i cell align =
    let w = widths.(i) in
    let n = w - String.length cell in
    match align with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let emit_cells cells =
    List.iteri
      (fun i (cell, align) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell align))
      (List.combine cells t.aligns);
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total =
      Array.fold_left ( + ) 0 widths + (2 * (t.ncols - 1))
    in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  emit_cells t.header;
  rule ();
  List.iter
    (function
      | Cells c -> emit_cells c
      | Separator -> rule ())
    rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()
