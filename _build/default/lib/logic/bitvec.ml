type t = {
  w : int;
  v : int; (* invariant: 0 <= v < 2^w *)
}

let mask w = (1 lsl w) - 1

let width t = t.w

let create ~width v =
  if width < 1 || width > 62 then
    invalid_arg (Printf.sprintf "Bitvec.create: width %d out of [1,62]" width);
  { w = width; v = v land mask width }

let zero ~width = create ~width 0
let one ~width = create ~width 1

let to_unsigned t = t.v

let to_signed t =
  let sign = 1 lsl (t.w - 1) in
  if t.v land sign = 0 then t.v else t.v - (1 lsl t.w)

let of_signed ~width v = create ~width v

let equal a b = a.w = b.w && a.v = b.v

let check_width op a b =
  if a.w <> b.w then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch %d vs %d" op a.w b.w)

let bit t i =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.bit: index out of range";
  (t.v lsr i) land 1 = 1

let set_bit t i b =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.set_bit: index out of range";
  let v = if b then t.v lor (1 lsl i) else t.v land lnot (1 lsl i) in
  { t with v }

let add a b =
  check_width "add" a b;
  { w = a.w; v = (a.v + b.v) land mask a.w }

let neg a = { w = a.w; v = -a.v land mask a.w }

let sub a b =
  check_width "sub" a b;
  { w = a.w; v = (a.v - b.v) land mask a.w }

let mul a b =
  check_width "mul" a b;
  { w = a.w; v = a.v * b.v land mask a.w }

let mul_wide a b =
  let w = a.w + b.w in
  if w > 62 then invalid_arg "Bitvec.mul_wide: result wider than 62 bits";
  create ~width:w (to_signed a * to_signed b)

let shift_left a n =
  if n < 0 then invalid_arg "Bitvec.shift_left: negative shift";
  { w = a.w; v = (a.v lsl n) land mask a.w }

let resize t ~width = create ~width (to_signed t)

let concat_bits bits_lsb_first =
  let w = List.length bits_lsb_first in
  let v, _ =
    List.fold_left
      (fun (acc, i) b -> ((if b then acc lor (1 lsl i) else acc), i + 1))
      (0, 0) bits_lsb_first
  in
  create ~width:(max w 1) v

let bits t = List.init t.w (fun i -> bit t i)

let to_string t = String.init t.w (fun i -> if bit t (t.w - 1 - i) then '1' else '0')

let pp ppf t = Format.pp_print_string ppf (to_string t)
