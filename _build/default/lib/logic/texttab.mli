(** Plain-text table rendering for experiment reports.

    Used by the benchmark harness and the CLI to print reproductions of the
    paper's tables in aligned, greppable form. *)

type align =
  | Left
  | Right

type t

val create : ?title:string -> header:string list -> align list -> t
(** [create ~header aligns] starts a table; [aligns] gives per-column
    alignment and its length fixes the column count. *)

val add_row : t -> string list -> unit
(** Row cells must match the column count. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string

val print : t -> unit
(** Render to stdout followed by a newline. *)
