(** Three-valued logic for FPGA fabric simulation.

    The fabric simulator must represent signals whose value cannot be
    determined after a configuration upset: floating wires, shorted wires
    driven to opposite values, and unresolved combinational loops.  [X]
    denotes such an unknown value and propagates pessimistically through
    every operator. *)

type t =
  | Zero
  | One
  | X  (** unknown / unresolved / conflicting *)

val equal : t -> t -> bool

val of_bool : bool -> t

val to_bool_opt : t -> bool option
(** [to_bool_opt v] is [Some b] for a defined value, [None] for {!X}. *)

val is_x : t -> bool

val logic_not : t -> t

val ( &&& ) : t -> t -> t
(** Kleene conjunction: [Zero &&& X = Zero], [One &&& X = X]. *)

val ( ||| ) : t -> t -> t
(** Kleene disjunction: [One ||| X = One], [Zero ||| X = X]. *)

val logic_xor : t -> t -> t

val mux : sel:t -> t -> t -> t
(** [mux ~sel a b] is [a] when [sel = Zero], [b] when [sel = One].  When
    [sel = X] the result is the common value of [a] and [b] if they agree,
    [X] otherwise. *)

val maj3 : t -> t -> t -> t
(** Majority of three: defined whenever two defined inputs agree, hence a
    single [X] input never corrupts the vote. *)

val resolve : t -> t -> t
(** Resolution of two drivers shorted onto one wire: agreeing drivers keep
    their value, disagreeing or unknown drivers give [X]. *)

val resolve_list : t list -> t
(** Multi-driver resolution; an empty driver list is a floating wire, [X]. *)

val to_char : t -> char
(** ['0'], ['1'] or ['X']. *)

val of_char : char -> t option

val pp : Format.formatter -> t -> unit
