lib/logic/texttab.mli:
