lib/logic/srand.ml: Array Hashtbl Int64
