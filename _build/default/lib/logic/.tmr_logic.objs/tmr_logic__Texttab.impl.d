lib/logic/texttab.ml: Array Buffer List Printf String
