lib/logic/logic.mli: Format
