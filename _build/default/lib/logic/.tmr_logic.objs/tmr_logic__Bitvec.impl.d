lib/logic/bitvec.ml: Format List Printf String
