lib/logic/srand.mli:
