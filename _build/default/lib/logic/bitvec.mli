(** Fixed-width two's-complement bit vectors backed by native [int].

    Used by the software golden models (reference FIR filter, truth-table
    computation) and by tests.  Widths are limited to 62 bits so that every
    value fits in an OCaml immediate integer. *)

type t

val width : t -> int

val create : width:int -> int -> t
(** [create ~width v] truncates [v] to [width] bits.  [width] must be in
    [1, 62]. *)

val zero : width:int -> t
val one : width:int -> t

val to_unsigned : t -> int
(** Value read as an unsigned [width]-bit integer. *)

val to_signed : t -> int
(** Value read as a two's-complement [width]-bit integer. *)

val of_signed : width:int -> int -> t
(** Like {!create}; named for call-site clarity with negative values. *)

val equal : t -> t -> bool

val bit : t -> int -> bool
(** [bit v i] is bit [i] (LSB is 0).  Raises [Invalid_argument] when out of
    range. *)

val set_bit : t -> int -> bool -> t

val add : t -> t -> t
(** Wrapping addition; both operands must share a width. *)

val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Wrapping multiplication at the operands' common width. *)

val mul_wide : t -> t -> t
(** Full-precision signed product; result width is the sum of the operand
    widths. *)

val shift_left : t -> int -> t

val resize : t -> width:int -> t
(** Sign-extending (or truncating) resize. *)

val concat_bits : bool list -> t
(** Build from a list of bits, LSB first. *)

val bits : t -> bool list
(** Bits LSB first. *)

val to_string : t -> string
(** Binary, MSB first. *)

val pp : Format.formatter -> t -> unit
