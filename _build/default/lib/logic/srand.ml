type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Srand.int: bound must be positive";
  (* Take 62 non-negative bits and reduce; bias is negligible for the bounds
     used in this project (all far below 2^31). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. bound

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t n m =
  let n = min n m in
  if n <= 0 then [||]
  else if n * 3 >= m then begin
    (* dense: partial Fisher-Yates over the full range *)
    let a = Array.init m (fun i -> i) in
    for i = 0 to n - 1 do
      let j = i + int t (m - i) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 n
  end
  else begin
    (* sparse: rejection sampling *)
    let seen = Hashtbl.create (2 * n) in
    let out = Array.make n 0 in
    let rec draw k =
      if k < n then begin
        let v = int t m in
        if Hashtbl.mem seen v then draw k
        else begin
          Hashtbl.add seen v ();
          out.(k) <- v;
          draw (k + 1)
        end
      end
    in
    draw 0;
    out
  end

let pick t a =
  if Array.length a = 0 then invalid_arg "Srand.pick: empty array";
  a.(int t (Array.length a))
