module Logic = Tmr_logic.Logic

type signal = {
  label : string;
  code : string;
  cells : Netlist.id array;  (* LSB first *)
  mutable last : string option;
}

type t = {
  sim : Netsim.t;
  mutable signals : signal list;  (* reversed *)
  mutable next_code : int;
  mutable cycles : string list;  (* rendered change blocks, reversed *)
  mutable sampled : bool;
}

(* VCD identifier codes: printable characters '!'..'~' in a varint-like
   scheme. *)
let code_of_int n =
  let base = 94 in
  let rec go n acc =
    let digit = Char.chr (33 + (n mod base)) in
    let acc = String.make 1 digit ^ acc in
    if n < base then acc else go ((n / base) - 1) acc
  in
  go n ""

let create sim nl =
  let t = { sim; signals = []; next_code = 0; cycles = []; sampled = false } in
  let add label cells =
    let code = code_of_int t.next_code in
    t.next_code <- t.next_code + 1;
    t.signals <- { label; code; cells; last = None } :: t.signals
  in
  List.iter (fun (port, bits) -> add port bits) (Netlist.input_ports nl);
  List.iter (fun (port, bits) -> add port bits) (Netlist.output_ports nl);
  t

let watch_cell t ~label cell =
  if t.sampled then invalid_arg "Vcd.watch_cell: sampling already started";
  let code = code_of_int t.next_code in
  t.next_code <- t.next_code + 1;
  t.signals <- { label; code; cells = [| cell |]; last = None } :: t.signals

let value_string t signal =
  (* VCD bit strings are MSB first *)
  let n = Array.length signal.cells in
  String.init n (fun i ->
      match Netsim.value t.sim signal.cells.(n - 1 - i) with
      | Logic.Zero -> '0'
      | Logic.One -> '1'
      | Logic.X -> 'x')

let sample t =
  t.sampled <- true;
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "#%d\n" (List.length t.cycles));
  List.iter
    (fun signal ->
      let v = value_string t signal in
      if signal.last <> Some v then begin
        signal.last <- Some v;
        if Array.length signal.cells = 1 then
          Buffer.add_string buf (Printf.sprintf "%s%s\n" v signal.code)
        else Buffer.add_string buf (Printf.sprintf "b%s %s\n" v signal.code)
      end)
    (List.rev t.signals);
  t.cycles <- Buffer.contents buf :: t.cycles

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '[' | ']' -> c
      | _ -> '_')
    label

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date reproduction run $end\n";
  Buffer.add_string buf "$version tmr-fpga Vcd $end\n";
  Buffer.add_string buf "$timescale 1 ns $end\n";
  Buffer.add_string buf "$scope module dut $end\n";
  List.iter
    (fun signal ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n"
           (Array.length signal.cells) signal.code (sanitize signal.label)))
    (List.rev t.signals);
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  List.iter (Buffer.add_string buf) (List.rev t.cycles);
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
