module Logic = Tmr_logic.Logic

type t = {
  nl : Netlist.t;
  lev : Levelize.t;
  values : Logic.t array;
  scratch : Logic.t array; (* fanin buffer, max arity 4 *)
}

let create nl =
  let lev = Levelize.run_exn nl in
  let n = Netlist.num_cells nl in
  let t = { nl; lev; values = Array.make n Logic.X; scratch = Array.make 4 Logic.X } in
  t

let reset t =
  Netlist.iter_cells t.nl (fun c ->
      t.values.(c) <-
        (match Netlist.kind t.nl c with
        | Netlist.Ff init -> init
        | Netlist.Const v -> v
        | Netlist.Input | Netlist.Output | Netlist.Not | Netlist.And2
        | Netlist.Or2 | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3
        | Netlist.Lut _ ->
            Logic.X))

let set_input_bits t port_name bits =
  let ids = Netlist.find_input_port t.nl port_name in
  if Array.length ids <> Array.length bits then
    invalid_arg "Netsim.set_input_bits: width mismatch";
  Array.iteri (fun i id -> t.values.(id) <- bits.(i)) ids

let set_input t port_name v =
  let ids = Netlist.find_input_port t.nl port_name in
  Array.iteri
    (fun i id -> t.values.(id) <- Logic.of_bool ((v asr i) land 1 = 1))
    ids

let set_ff t c v =
  match Netlist.kind t.nl c with
  | Netlist.Ff _ -> t.values.(c) <- v
  | _ -> invalid_arg "Netsim.set_ff: not a flip-flop"

let eval t =
  let order = t.lev.Levelize.order in
  for i = 0 to Array.length order - 1 do
    let c = order.(i) in
    match Netlist.kind t.nl c with
    | Netlist.Input | Netlist.Ff _ | Netlist.Const _ -> ()
    | ( Netlist.Output | Netlist.Not | Netlist.And2 | Netlist.Or2
      | Netlist.Xor2 | Netlist.Mux2 | Netlist.Maj3 | Netlist.Lut _ ) as k ->
        let fanins = Netlist.fanins t.nl c in
        for j = 0 to Array.length fanins - 1 do
          t.scratch.(j) <- t.values.(fanins.(j))
        done;
        t.values.(c) <- Netlist.eval_kind k t.scratch
  done

let clock t =
  (* latch all D values, then commit; assumes [eval] has run *)
  let updates = ref [] in
  Netlist.iter_cells t.nl (fun c ->
      match Netlist.kind t.nl c with
      | Netlist.Ff _ ->
          let d = (Netlist.fanins t.nl c).(0) in
          updates := (c, t.values.(d)) :: !updates
      | Netlist.Input | Netlist.Output | Netlist.Const _ | Netlist.Not
      | Netlist.And2 | Netlist.Or2 | Netlist.Xor2 | Netlist.Mux2
      | Netlist.Maj3 | Netlist.Lut _ ->
          ());
  List.iter (fun (c, v) -> t.values.(c) <- v) !updates

let step t =
  eval t;
  clock t;
  eval t

let value t c = t.values.(c)

let output_bits t port_name =
  let ids = Netlist.find_output_port t.nl port_name in
  Array.map (fun id -> t.values.(id)) ids

let output_int t port_name =
  let bits = output_bits t port_name in
  let n = Array.length bits in
  let rec build i acc =
    if i >= n then Some acc
    else
      match bits.(i) with
      | Logic.X -> None
      | Logic.One ->
          let acc = acc lor (1 lsl i) in
          build (i + 1) acc
      | Logic.Zero -> build (i + 1) acc
  in
  match build 0 0 with
  | None -> None
  | Some unsigned ->
      if n > 0 && unsigned land (1 lsl (n - 1)) <> 0 then
        Some (unsigned - (1 lsl n))
      else Some unsigned
