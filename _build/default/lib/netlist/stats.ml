type t = {
  cells : int;
  gates : int;
  luts : int;
  ffs : int;
  inputs : int;
  outputs : int;
  consts : int;
  voters : int;
  voter_stages : int;
  cross_domain_nets : int;
  comb_depth : int;
}

let compute nl =
  let gates = ref 0
  and luts = ref 0
  and ffs = ref 0
  and inputs = ref 0
  and outputs = ref 0
  and consts = ref 0
  and voters = ref 0 in
  let stages = Hashtbl.create 16 in
  let cross = ref 0 in
  Netlist.iter_cells nl (fun c ->
      (match Netlist.kind nl c with
      | Netlist.Input -> incr inputs
      | Netlist.Output -> incr outputs
      | Netlist.Const _ -> incr consts
      | Netlist.Ff _ -> incr ffs
      | Netlist.Lut _ ->
          incr gates;
          incr luts
      | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2
      | Netlist.Mux2 | Netlist.Maj3 ->
          incr gates);
      if Netlist.is_voter nl c then begin
        incr voters;
        Hashtbl.replace stages (Netlist.comp nl c) ()
      end;
      let d = Netlist.domain nl c in
      Array.iter
        (fun src ->
          let ds = Netlist.domain nl src in
          if d >= 0 && ds >= 0 && d <> ds then incr cross)
        (Netlist.fanins nl c));
  let comb_depth =
    match Levelize.run nl with
    | Ok lev -> lev.Levelize.depth
    | Error _ -> -1
  in
  {
    cells = Netlist.num_cells nl;
    gates = !gates;
    luts = !luts;
    ffs = !ffs;
    inputs = !inputs;
    outputs = !outputs;
    consts = !consts;
    voters = !voters;
    voter_stages = Hashtbl.length stages;
    cross_domain_nets = !cross;
    comb_depth;
  }

let pp ppf s =
  Format.fprintf ppf
    "cells=%d gates=%d (luts=%d) ffs=%d in=%d out=%d const=%d voters=%d \
     voter_stages=%d cross_domain=%d depth=%d"
    s.cells s.gates s.luts s.ffs s.inputs s.outputs s.consts s.voters
    s.voter_stages s.cross_domain_nets s.comb_depth
