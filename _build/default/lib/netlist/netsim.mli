(** Cycle-based netlist simulator over three-valued logic.

    This is the reference ("golden device") simulator: it runs the netlist
    as designed, before placement and routing.  The fabric simulator in
    {!Tmr_fabric} runs what a (possibly faulty) bitstream actually
    implements; comparing the two is the fault-classification criterion. *)

type t

val create : Netlist.t -> t
(** Levelizes the netlist; fails on combinational loops. *)

val reset : t -> unit
(** Flip-flops return to their configuration-load init value; primary
    inputs become [X] until driven. *)

val set_input : t -> string -> int -> unit
(** Drive an input port with a two's-complement integer. *)

val set_input_bits : t -> string -> Tmr_logic.Logic.t array -> unit

val set_ff : t -> Netlist.id -> Tmr_logic.Logic.t -> unit
(** Override a flip-flop's current state (used to emulate an SEU in user
    sequential logic for the fig. 2 experiment). *)

val eval : t -> unit
(** Propagate combinational logic for the current inputs and state. *)

val clock : t -> unit
(** Latch every flip-flop from the values of the latest {!eval} (the rising
    edge alone; no re-evaluation). *)

val step : t -> unit
(** {!eval}, {!clock}, then {!eval} again so post-edge outputs are
    readable. *)

val value : t -> Netlist.id -> Tmr_logic.Logic.t
(** Value of a net after the latest {!eval}/{!step}. *)

val output_bits : t -> string -> Tmr_logic.Logic.t array

val output_int : t -> string -> int option
(** Two's-complement reading of an output port; [None] if any bit is [X]. *)
