module Logic = Tmr_logic.Logic

type id = int

type lut = {
  arity : int;
  table : int;
}

type kind =
  | Input
  | Output
  | Const of Logic.t
  | Not
  | And2
  | Or2
  | Xor2
  | Mux2
  | Maj3
  | Lut of lut
  | Ff of Logic.t

type t = {
  mutable kinds : kind array;
  mutable fanin : id array array;
  mutable names : string array;
  mutable comps : string array;
  mutable domains : int array;
  mutable voters : bool array;
  mutable n : int;
  mutable ambient_comp : string;
  mutable in_ports : (string * id array) list; (* reversed *)
  mutable out_ports : (string * id array) list; (* reversed *)
}

let create () =
  {
    kinds = Array.make 64 Input;
    fanin = Array.make 64 [||];
    names = Array.make 64 "";
    comps = Array.make 64 "";
    domains = Array.make 64 (-1);
    voters = Array.make 64 false;
    n = 0;
    ambient_comp = "";
    in_ports = [];
    out_ports = [];
  }

let num_cells t = t.n

let grow t =
  let cap = Array.length t.kinds in
  if t.n >= cap then begin
    let cap' = 2 * cap in
    let extend a fill = Array.append a (Array.make cap fill) in
    t.kinds <- extend t.kinds Input;
    t.fanin <- extend t.fanin [||];
    t.names <- extend t.names "";
    t.comps <- extend t.comps "";
    t.domains <- extend t.domains (-1);
    t.voters <- extend t.voters false;
    ignore cap'
  end

let arity_of_kind = function
  | Input | Const _ -> 0
  | Output | Not | Ff _ -> 1
  | And2 | Or2 | Xor2 -> 2
  | Mux2 | Maj3 -> 3
  | Lut { arity; _ } -> arity

let add_cell t ?(name = "") ?(domain = -1) ?(voter = false) kind ~fanins =
  let expected = arity_of_kind kind in
  if Array.length fanins <> expected then
    invalid_arg
      (Printf.sprintf "Netlist.add_cell: kind needs %d fanins, got %d" expected
         (Array.length fanins));
  Array.iter
    (fun src ->
      if src < 0 || src >= t.n then
        invalid_arg (Printf.sprintf "Netlist.add_cell: bad fanin id %d" src))
    fanins;
  (match kind with
  | Lut { arity; table } ->
      if arity < 1 || arity > 4 then invalid_arg "Netlist.add_cell: LUT arity";
      if table < 0 || table >= 1 lsl (1 lsl arity) then
        invalid_arg "Netlist.add_cell: LUT table out of range"
  | Input | Output | Const _ | Not | And2 | Or2 | Xor2 | Mux2 | Maj3 | Ff _ ->
      ());
  grow t;
  let id = t.n in
  t.kinds.(id) <- kind;
  t.fanin.(id) <- fanins;
  t.names.(id) <- name;
  t.comps.(id) <- t.ambient_comp;
  t.domains.(id) <- domain;
  t.voters.(id) <- voter;
  t.n <- id + 1;
  id

let check_id t c =
  if c < 0 || c >= t.n then invalid_arg (Printf.sprintf "Netlist: bad id %d" c)

let kind t c = check_id t c; t.kinds.(c)
let fanins t c = check_id t c; t.fanin.(c)

let set_fanin t c i src =
  check_id t c;
  check_id t src;
  let f = t.fanin.(c) in
  if i < 0 || i >= Array.length f then
    invalid_arg "Netlist.set_fanin: slot out of range";
  f.(i) <- src

let name t c = check_id t c; t.names.(c)
let comp t c = check_id t c; t.comps.(c)
let domain t c = check_id t c; t.domains.(c)
let set_domain t c d = check_id t c; t.domains.(c) <- d
let is_voter t c = check_id t c; t.voters.(c)

let set_comp t label = t.ambient_comp <- label

let with_comp t label f =
  let saved = t.ambient_comp in
  t.ambient_comp <- label;
  match f () with
  | v ->
      t.ambient_comp <- saved;
      v
  | exception e ->
      t.ambient_comp <- saved;
      raise e

let add_input_port t port_name bits =
  Array.iter
    (fun c ->
      check_id t c;
      match t.kinds.(c) with
      | Input -> ()
      | _ -> invalid_arg "Netlist.add_input_port: bit is not an Input cell")
    bits;
  t.in_ports <- (port_name, bits) :: t.in_ports

let add_output_port t port_name bits =
  Array.iter
    (fun c ->
      check_id t c;
      match t.kinds.(c) with
      | Output -> ()
      | _ -> invalid_arg "Netlist.add_output_port: bit is not an Output cell")
    bits;
  t.out_ports <- (port_name, bits) :: t.out_ports

let input_ports t = List.rev t.in_ports
let output_ports t = List.rev t.out_ports

let find_port ports what port_name =
  match List.assoc_opt port_name ports with
  | Some bits -> bits
  | None -> invalid_arg (Printf.sprintf "Netlist: no %s port %S" what port_name)

let find_input_port t port_name = find_port t.in_ports "input" port_name
let find_output_port t port_name = find_port t.out_ports "output" port_name

let iter_cells t f =
  for c = 0 to t.n - 1 do
    f c
  done

let fold_cells t ~init ~f =
  let acc = ref init in
  for c = 0 to t.n - 1 do
    acc := f !acc c
  done;
  !acc

let compute_fanouts t =
  let out = Array.make t.n [] in
  for c = t.n - 1 downto 0 do
    Array.iter (fun src -> out.(src) <- c :: out.(src)) t.fanin.(c)
  done;
  out

let eval_lut { arity; table } vs =
  (* If some inputs are X, the output is defined only when the table agrees
     on every completion of the unknown bits. *)
  let rec scan i idx =
    if i >= arity then Logic.of_bool ((table lsr idx) land 1 = 1)
    else
      match vs.(i) with
      | Logic.Zero -> scan (i + 1) idx
      | Logic.One -> scan (i + 1) (idx lor (1 lsl i))
      | Logic.X ->
          let a = scan (i + 1) idx in
          let b = scan (i + 1) (idx lor (1 lsl i)) in
          if Logic.equal a b then a else Logic.X
  in
  scan 0 0

let eval_kind k vs =
  match k with
  | Input -> invalid_arg "Netlist.eval_kind: Input has no combinational value"
  | Output | Ff _ -> vs.(0)
  | Const v -> v
  | Not -> Logic.logic_not vs.(0)
  | And2 -> Logic.( &&& ) vs.(0) vs.(1)
  | Or2 -> Logic.( ||| ) vs.(0) vs.(1)
  | Xor2 -> Logic.logic_xor vs.(0) vs.(1)
  | Mux2 -> Logic.mux ~sel:vs.(0) vs.(1) vs.(2)
  | Maj3 -> Logic.maj3 vs.(0) vs.(1) vs.(2)
  | Lut l -> eval_lut l vs

let lut_of_fun ~arity f =
  if arity < 1 || arity > 4 then invalid_arg "Netlist.lut_of_fun: arity";
  let table = ref 0 in
  for idx = 0 to (1 lsl arity) - 1 do
    let ins = Array.init arity (fun i -> (idx lsr i) land 1 = 1) in
    if f ins then table := !table lor (1 lsl idx)
  done;
  { arity; table = !table }

let pp_kind ppf = function
  | Input -> Format.pp_print_string ppf "input"
  | Output -> Format.pp_print_string ppf "output"
  | Const v -> Format.fprintf ppf "const:%c" (Logic.to_char v)
  | Not -> Format.pp_print_string ppf "not"
  | And2 -> Format.pp_print_string ppf "and2"
  | Or2 -> Format.pp_print_string ppf "or2"
  | Xor2 -> Format.pp_print_string ppf "xor2"
  | Mux2 -> Format.pp_print_string ppf "mux2"
  | Maj3 -> Format.pp_print_string ppf "maj3"
  | Lut { arity; table } -> Format.fprintf ppf "lut%d:%04x" arity table
  | Ff init -> Format.fprintf ppf "ff:%c" (Logic.to_char init)
