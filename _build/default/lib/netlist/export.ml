module Logic = Tmr_logic.Logic

let quote s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '/' | '[' | ']' | '.'
      | '-' | '~' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
    s;
  Buffer.contents buf

let unquote s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf
          (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let kind_to_string = function
  | Netlist.Input -> "input"
  | Netlist.Output -> "output"
  | Netlist.Const Logic.Zero -> "const0"
  | Netlist.Const Logic.One -> "const1"
  | Netlist.Const Logic.X -> "constx"
  | Netlist.Not -> "not"
  | Netlist.And2 -> "and2"
  | Netlist.Or2 -> "or2"
  | Netlist.Xor2 -> "xor2"
  | Netlist.Mux2 -> "mux2"
  | Netlist.Maj3 -> "maj3"
  | Netlist.Lut { arity; table } -> Printf.sprintf "lut%d:%x" arity table
  | Netlist.Ff Logic.Zero -> "ff0"
  | Netlist.Ff Logic.One -> "ff1"
  | Netlist.Ff Logic.X -> "ffx"

let kind_of_string s =
  match s with
  | "input" -> Ok Netlist.Input
  | "output" -> Ok Netlist.Output
  | "const0" -> Ok (Netlist.Const Logic.Zero)
  | "const1" -> Ok (Netlist.Const Logic.One)
  | "constx" -> Ok (Netlist.Const Logic.X)
  | "not" -> Ok Netlist.Not
  | "and2" -> Ok Netlist.And2
  | "or2" -> Ok Netlist.Or2
  | "xor2" -> Ok Netlist.Xor2
  | "mux2" -> Ok Netlist.Mux2
  | "maj3" -> Ok Netlist.Maj3
  | "ff0" -> Ok (Netlist.Ff Logic.Zero)
  | "ff1" -> Ok (Netlist.Ff Logic.One)
  | "ffx" -> Ok (Netlist.Ff Logic.X)
  | _ ->
      if String.length s > 4 && String.sub s 0 3 = "lut" then begin
        match String.index_opt s ':' with
        | Some colon -> (
            let arity_s = String.sub s 3 (colon - 3) in
            let table_s = String.sub s (colon + 1) (String.length s - colon - 1) in
            match
              (int_of_string_opt arity_s, int_of_string_opt ("0x" ^ table_s))
            with
            | Some arity, Some table -> Ok (Netlist.Lut { arity; table })
            | _ -> Error (Printf.sprintf "bad lut kind %S" s))
        | None -> Error (Printf.sprintf "bad lut kind %S" s)
      end
      else Error (Printf.sprintf "unknown cell kind %S" s)

let emit out nl =
  out "tmrnl 1\n";
  Netlist.iter_cells nl (fun c ->
      let fanins =
        Netlist.fanins nl c |> Array.to_list |> List.map string_of_int
        |> String.concat " "
      in
      out
        (Printf.sprintf "cell %d %s%s%s ; name=%s comp=%s domain=%d voter=%d\n"
           c
           (kind_to_string (Netlist.kind nl c))
           (if fanins = "" then "" else " ")
           fanins
           (quote (Netlist.name nl c))
           (quote (Netlist.comp nl c))
           (Netlist.domain nl c)
           (if Netlist.is_voter nl c then 1 else 0)));
  let port_line tag (port, bits) =
    out
      (Printf.sprintf "%s %s %s\n" tag (quote port)
         (String.concat " " (Array.to_list (Array.map string_of_int bits))))
  in
  List.iter (port_line "inport") (Netlist.input_ports nl);
  List.iter (port_line "outport") (Netlist.output_ports nl)

let to_channel oc nl = emit (output_string oc) nl

let to_string nl =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) nl;
  Buffer.contents buf

let of_string text =
  let nl = Netlist.create () in
  let error = ref None in
  let err lineno fmt =
    Printf.ksprintf
      (fun msg ->
        if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno msg))
      fmt
  in
  let next_id = ref 0 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !error = None && String.trim line <> "" then begin
        let words =
          String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
        in
        match words with
        | "tmrnl" :: version :: _ ->
            if version <> "1" then err lineno "unsupported version %s" version
        | "cell" :: id_s :: kind_s :: rest -> (
            match int_of_string_opt id_s with
            | None -> err lineno "bad cell id %s" id_s
            | Some id when id <> !next_id ->
                err lineno "cell ids must be dense (expected %d, got %d)"
                  !next_id id
            | Some _ -> (
                (* split rest at ";" *)
                let rec split acc = function
                  | ";" :: attrs -> (List.rev acc, attrs)
                  | x :: tl -> split (x :: acc) tl
                  | [] -> (List.rev acc, [])
                in
                let fanin_ws, attr_ws = split [] rest in
                match kind_of_string kind_s with
                | Error e -> err lineno "%s" e
                | Ok kind -> (
                    let fanins =
                      List.map
                        (fun w ->
                          match int_of_string_opt w with
                          | Some v -> v
                          | None ->
                              err lineno "bad fanin %s" w;
                              0)
                        fanin_ws
                      |> Array.of_list
                    in
                    let attr key default =
                      let prefix = key ^ "=" in
                      let plen = String.length prefix in
                      match
                        List.find_opt
                          (fun w ->
                            String.length w >= plen && String.sub w 0 plen = prefix)
                          attr_ws
                      with
                      | Some w -> String.sub w plen (String.length w - plen)
                      | None -> default
                    in
                    let name = unquote (attr "name" "") in
                    let comp = unquote (attr "comp" "") in
                    let domain =
                      Option.value ~default:(-1)
                        (int_of_string_opt (attr "domain" "-1"))
                    in
                    let voter = attr "voter" "0" = "1" in
                    Netlist.set_comp nl comp;
                    match
                      Netlist.add_cell nl ~name ~domain ~voter kind ~fanins
                    with
                    | _ -> incr next_id
                    | exception Invalid_argument m -> err lineno "%s" m)))
        | "inport" :: port :: bit_ws | "outport" :: port :: bit_ws -> (
            let bits =
              List.map
                (fun w ->
                  match int_of_string_opt w with
                  | Some v -> v
                  | None ->
                      err lineno "bad port bit %s" w;
                      0)
                bit_ws
              |> Array.of_list
            in
            let port = unquote port in
            let add =
              if List.hd words = "inport" then Netlist.add_input_port
              else Netlist.add_output_port
            in
            match add nl port bits with
            | () -> ()
            | exception Invalid_argument m -> err lineno "%s" m)
        | _ -> err lineno "unparsable line %S" line
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None -> Ok nl

let of_string_exn text =
  match of_string text with
  | Ok nl -> nl
  | Error e -> failwith ("Export.of_string: " ^ e)
