type t = {
  order : Netlist.id array;
  level : int array;
  depth : int;
}

let is_source nl c =
  match Netlist.kind nl c with
  | Netlist.Input | Netlist.Const _ | Netlist.Ff _ -> true
  | Netlist.Output | Netlist.Not | Netlist.And2 | Netlist.Or2 | Netlist.Xor2
  | Netlist.Mux2 | Netlist.Maj3 | Netlist.Lut _ ->
      false

(* Iterative DFS with colouring; grey-on-grey means a combinational loop. *)
let run nl =
  let n = Netlist.num_cells nl in
  let colour = Array.make n 0 (* 0 white, 1 grey, 2 black *) in
  let level = Array.make n 0 in
  let order = Array.make n 0 in
  let next = ref 0 in
  let push_order c =
    order.(!next) <- c;
    incr next
  in
  let exception Loop of Netlist.id in
  let visit root =
    if colour.(root) = 0 then begin
      let stack = ref [ (root, 0) ] in
      colour.(root) <- 1;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (c, i) :: rest ->
            let fanins = if is_source nl c then [||] else Netlist.fanins nl c in
            if i < Array.length fanins then begin
              stack := (c, i + 1) :: rest;
              let src = fanins.(i) in
              if colour.(src) = 0 then begin
                colour.(src) <- 1;
                stack := (src, 0) :: !stack
              end
              else if colour.(src) = 1 then raise (Loop src)
            end
            else begin
              colour.(c) <- 2;
              let lvl =
                Array.fold_left (fun acc src -> max acc (level.(src) + 1)) 0 fanins
              in
              level.(c) <- lvl;
              push_order c;
              stack := rest
            end
      done
    end
  in
  match Netlist.iter_cells nl visit with
  | () ->
      let depth =
        if n = 0 then 0 else Array.fold_left max 0 level + 1
      in
      Ok { order; level; depth }
  | exception Loop c ->
      Error
        (Printf.sprintf "combinational loop through cell %d (%s)" c
           (Netlist.name nl c))

let run_exn nl =
  match run nl with
  | Ok t -> t
  | Error msg -> failwith ("Levelize: " ^ msg)
