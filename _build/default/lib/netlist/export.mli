(** Textual netlist interchange.

    A line-oriented, diff-friendly dump of a netlist, and its parser.  The
    format round-trips every attribute the flow uses (kinds, fanins,
    names, components, domains, voter flags, ports), so netlists can be
    checked into test fixtures, inspected, or exchanged with external
    tools.

    Format (one record per line):
    {v
    tmrnl 1
    cell <id> <kind> [<fanin>...] ; name=<q> comp=<q> domain=<d> voter=<0|1>
    inport <q> <id>...
    outport <q> <id>...
    v}
    where [<kind>] is one of [input output const0 const1 constx not and2
    or2 xor2 mux2 maj3 lut<arity>:<hex> ff0 ff1 ffx] and [<q>] is a
    URL-percent-quoted string. *)

val to_string : Netlist.t -> string

val to_channel : out_channel -> Netlist.t -> unit

val of_string : string -> (Netlist.t, string) result
(** Parses a dump; cell ids must be dense and in dependency order (as
    produced by {!to_string}). *)

val of_string_exn : string -> Netlist.t
