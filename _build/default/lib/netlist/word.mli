(** Word-level circuit construction on top of {!Netlist}.

    A word is an array of net ids, LSB first.  All arithmetic is
    two's-complement and is built from 1-bit gates (full adders from
    Xor2/Maj3), so the result of every builder is plain gate logic that the
    technology mapper can cover with LUT4s. *)

type word = Netlist.id array

val width : word -> int

val input : Netlist.t -> string -> width:int -> word
(** Fresh primary input port. *)

val output : Netlist.t -> string -> word -> unit
(** Fresh primary output port driven by [word]. *)

val const : Netlist.t -> width:int -> int -> word
(** Two's-complement constant. *)

val bitnot : Netlist.t -> word -> word
val bitand : Netlist.t -> word -> word -> word
val bitor : Netlist.t -> word -> word -> word
val bitxor : Netlist.t -> word -> word -> word

val add : Netlist.t -> word -> word -> word
(** Ripple-carry addition; operands must share a width, result keeps it. *)

val sub : Netlist.t -> word -> word -> word
val neg : Netlist.t -> word -> word

val resize : Netlist.t -> word -> width:int -> word
(** Sign-extending or truncating resize.  Extension reuses the sign bit net
    and adds no cells. *)

val shift_left_const : Netlist.t -> word -> int -> word
(** Logical left shift by a constant, width preserved. *)

val mul_const : Netlist.t -> word -> int -> width:int -> word
(** [mul_const t a c ~width] is the signed product [a * c] computed by a
    shift-and-add/subtract network at [width] bits — the way a synthesizer
    implements the FIR filter's constant coefficients. *)

val mul : Netlist.t -> word -> word -> word
(** General signed array multiplier; result width is the sum of the operand
    widths. *)

val mux2 : Netlist.t -> sel:Netlist.id -> word -> word -> word
(** Per-bit 2:1 mux; [sel = 0] picks the first word. *)

val eq : Netlist.t -> word -> word -> Netlist.id
(** Single-bit equality. *)

val reg : Netlist.t -> ?init:int -> word -> word
(** Register every bit through a D flip-flop.  [init] is the power-up /
    configuration-load value (default 0). *)

val maj3 : Netlist.t -> ?voter:bool -> ?domain:int -> word -> word -> word -> word
(** Per-bit majority vote of three equal-width words. *)
