(** Topological ordering of the combinational part of a netlist.

    Flip-flop outputs, inputs and constants are sources; flip-flop D pins
    are sinks.  A cycle that passes through no flip-flop is a combinational
    loop and is rejected (the fabric simulator, which must tolerate
    fault-induced loops, has its own relaxation — see {!Tmr_fabric}). *)

type t = {
  order : Netlist.id array;
      (** every cell exactly once, drivers before readers along
          combinational edges *)
  level : int array;  (** combinational depth; sources are level 0 *)
  depth : int;  (** max level + 1, 0 for an empty netlist *)
}

val run : Netlist.t -> (t, string) result
(** [Error msg] names a cell on a combinational loop. *)

val run_exn : Netlist.t -> t
