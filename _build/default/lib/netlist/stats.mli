(** Structural statistics used by the fig. 4 experiment and reports. *)

type t = {
  cells : int;
  gates : int;  (** combinational logic cells (gates + LUTs), voters included *)
  luts : int;
  ffs : int;
  inputs : int;
  outputs : int;
  consts : int;
  voters : int;
  voter_stages : int;  (** distinct component labels that contain voters *)
  cross_domain_nets : int;
      (** nets whose driver and some reader live in different non-negative
          domains — the inter-domain wiring voters create *)
  comb_depth : int;
}

val compute : Netlist.t -> t

val pp : Format.formatter -> t -> unit
