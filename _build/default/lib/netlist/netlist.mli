(** Flat gate-level netlist IR.

    Every cell drives exactly one net, identified with the cell's id, so a
    netlist is a directed graph over cell ids.  Cells carry the attributes
    the TMR flow needs: a hierarchical [name], a [comp]onent label (the
    granularity at which voter partitions are chosen), a redundancy [domain]
    (-1 before triplication, 0..2 after), and a [voter] flag. *)

type id = int

type lut = {
  arity : int;  (** number of inputs, 1..4 *)
  table : int;  (** truth table, bit [i] = output for input valuation [i] *)
}

type kind =
  | Input  (** primary input bit; no fanins *)
  | Output  (** primary output bit; fanins = [|src|] *)
  | Const of Tmr_logic.Logic.t
  | Not
  | And2
  | Or2
  | Xor2
  | Mux2  (** fanins = [|sel; a; b|]; output is [a] when [sel]=0 *)
  | Maj3
  | Lut of lut
  | Ff of Tmr_logic.Logic.t  (** D flip-flop with configuration-load init *)

type t

val create : unit -> t

val add_cell :
  t ->
  ?name:string ->
  ?domain:int ->
  ?voter:bool ->
  kind ->
  fanins:id array ->
  id
(** Appends a cell and returns its id.  The component label is taken from
    the ambient label set with {!set_comp} / {!with_comp}.  Fanins must be
    ids of already-added cells and match the kind's arity. *)

val num_cells : t -> int
val kind : t -> id -> kind
val fanins : t -> id -> id array
(** The returned array is the live one; use {!set_fanin} to mutate. *)

val set_fanin : t -> id -> int -> id -> unit
(** [set_fanin t c i src] rewires fanin slot [i] of cell [c] to [src]. *)

val name : t -> id -> string
val comp : t -> id -> string
val domain : t -> id -> int
val set_domain : t -> id -> int -> unit
val is_voter : t -> id -> bool

val set_comp : t -> string -> unit
(** Sets the ambient component label applied to subsequently added cells. *)

val with_comp : t -> string -> (unit -> 'a) -> 'a
(** Runs the function with the ambient component label temporarily set. *)

val arity_of_kind : kind -> int
(** Expected fanin count; [-1] for {!Input} and {!Const} (zero fanins). *)

(** {1 Ports}

    Word-level ports group bit cells (LSB first) under a name. *)

val add_input_port : t -> string -> id array -> unit
val add_output_port : t -> string -> id array -> unit
val input_ports : t -> (string * id array) list
val output_ports : t -> (string * id array) list
val find_input_port : t -> string -> id array
val find_output_port : t -> string -> id array

val iter_cells : t -> (id -> unit) -> unit
val fold_cells : t -> init:'a -> f:('a -> id -> 'a) -> 'a

val compute_fanouts : t -> id list array
(** [compute_fanouts t].(c) lists the cells reading net [c] (with
    multiplicity for repeated fanins). *)

val eval_kind : kind -> Tmr_logic.Logic.t array -> Tmr_logic.Logic.t
(** Combinational evaluation of a cell kind on fanin values.  For {!Ff},
    {!Input} and {!Output} this is the identity on the relevant operand
    ([Ff]/[Output] pass through fanin 0; [Input] is invalid). *)

val lut_of_fun : arity:int -> (bool array -> bool) -> lut
(** Build a truth table by enumerating the [2^arity] input valuations. *)

val pp_kind : Format.formatter -> kind -> unit
