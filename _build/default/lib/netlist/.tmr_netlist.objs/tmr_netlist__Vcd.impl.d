lib/netlist/vcd.ml: Array Buffer Char List Netlist Netsim Printf String Tmr_logic
