lib/netlist/check.ml: Array Format Levelize List Netlist Printf String
