lib/netlist/netsim.mli: Netlist Tmr_logic
