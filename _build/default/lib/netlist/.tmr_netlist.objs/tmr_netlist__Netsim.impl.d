lib/netlist/netsim.ml: Array Levelize List Netlist Tmr_logic
