lib/netlist/export.ml: Array Buffer Char List Netlist Option Printf String Tmr_logic
