lib/netlist/word.mli: Netlist
