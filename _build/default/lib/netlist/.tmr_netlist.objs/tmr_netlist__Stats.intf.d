lib/netlist/stats.mli: Format Netlist
