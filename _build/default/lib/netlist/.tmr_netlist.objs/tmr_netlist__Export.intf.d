lib/netlist/export.mli: Netlist
