lib/netlist/vcd.mli: Netlist Netsim
