lib/netlist/netlist.mli: Format Tmr_logic
