lib/netlist/levelize.ml: Array Netlist Printf
