lib/netlist/netlist.ml: Array Format List Printf Tmr_logic
