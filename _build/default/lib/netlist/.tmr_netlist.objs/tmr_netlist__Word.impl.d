lib/netlist/word.ml: Array List Netlist Printf Tmr_logic
