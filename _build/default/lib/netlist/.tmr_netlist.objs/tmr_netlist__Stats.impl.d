lib/netlist/stats.ml: Array Format Hashtbl Levelize Netlist
