module Logic = Tmr_logic.Logic

type word = Netlist.id array

let width = Array.length

let input t port_name ~width =
  let bits =
    Array.init width (fun i ->
        Netlist.add_cell t ~name:(Printf.sprintf "%s[%d]" port_name i)
          Netlist.Input ~fanins:[||])
  in
  Netlist.add_input_port t port_name bits;
  bits

let output t port_name w =
  let bits =
    Array.mapi
      (fun i src ->
        Netlist.add_cell t ~name:(Printf.sprintf "%s[%d]" port_name i)
          Netlist.Output ~fanins:[| src |])
      w
  in
  Netlist.add_output_port t port_name bits

let const t ~width v =
  Array.init width (fun i ->
      let b = (v asr i) land 1 = 1 in
      Netlist.add_cell t (Netlist.Const (Logic.of_bool b)) ~fanins:[||])

let map2 t kind a b =
  if Array.length a <> Array.length b then
    invalid_arg "Word: width mismatch";
  Array.map2 (fun x y -> Netlist.add_cell t kind ~fanins:[| x; y |]) a b

let bitnot t a = Array.map (fun x -> Netlist.add_cell t Netlist.Not ~fanins:[| x |]) a
let bitand t a b = map2 t Netlist.And2 a b
let bitor t a b = map2 t Netlist.Or2 a b
let bitxor t a b = map2 t Netlist.Xor2 a b

(* Full adder: sum = a ^ b ^ cin, cout = maj3 (a, b, cin). *)
let full_adder t a b cin =
  let axb = Netlist.add_cell t Netlist.Xor2 ~fanins:[| a; b |] in
  let sum = Netlist.add_cell t Netlist.Xor2 ~fanins:[| axb; cin |] in
  let cout = Netlist.add_cell t Netlist.Maj3 ~fanins:[| a; b; cin |] in
  (sum, cout)

let add_with_carry t a b cin =
  if Array.length a <> Array.length b then invalid_arg "Word.add: width mismatch";
  let n = Array.length a in
  let out = Array.make n 0 in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let sum, cout = full_adder t a.(i) b.(i) !carry in
    out.(i) <- sum;
    carry := cout
  done;
  out

let zero_bit t = Netlist.add_cell t (Netlist.Const Logic.Zero) ~fanins:[||]
let one_bit t = Netlist.add_cell t (Netlist.Const Logic.One) ~fanins:[||]

let add t a b = add_with_carry t a b (zero_bit t)

let sub t a b = add_with_carry t a (bitnot t b) (one_bit t)

let neg t a =
  let zero = const t ~width:(Array.length a) 0 in
  sub t zero a

let resize _t w ~width:target =
  let n = Array.length w in
  if target <= n then Array.sub w 0 target
  else Array.init target (fun i -> if i < n then w.(i) else w.(n - 1))

let shift_left_const t w k =
  if k < 0 then invalid_arg "Word.shift_left_const: negative shift";
  let n = Array.length w in
  Array.init n (fun i -> if i < k then zero_bit t else w.(i - k))

let mul_const t a c ~width:target =
  let a = resize t a ~width:target in
  if c = 0 then const t ~width:target 0
  else begin
    let negative = c < 0 in
    let m = abs c in
    let terms = ref [] in
    let rec collect k =
      if 1 lsl k <= m then begin
        if (m lsr k) land 1 = 1 then terms := shift_left_const t a k :: !terms;
        collect (k + 1)
      end
    in
    collect 0;
    let sum =
      match !terms with
      | [] -> assert false
      | first :: rest -> List.fold_left (fun acc term -> add t acc term) first rest
    in
    if negative then neg t sum else sum
  end

(* Signed array multiplier (Baugh-Wooley style via sign-extended partial
   products at full result width; simple and correct, if not minimal). *)
let mul t a b =
  let wa = Array.length a and wb = Array.length b in
  let wr = wa + wb in
  let a_ext = resize t a ~width:wr in
  let acc = ref (const t ~width:wr 0) in
  for i = 0 to wb - 1 do
    let shifted = shift_left_const t a_ext i in
    let masked = Array.map (fun bit -> Netlist.add_cell t Netlist.And2 ~fanins:[| bit; b.(i) |]) shifted in
    if i = wb - 1 then
      (* MSB of b has negative weight in two's complement. *)
      acc := sub t !acc masked
    else acc := add t !acc masked
  done;
  !acc

let mux2 t ~sel a b =
  if Array.length a <> Array.length b then invalid_arg "Word.mux2: width mismatch";
  Array.map2
    (fun x y -> Netlist.add_cell t Netlist.Mux2 ~fanins:[| sel; x; y |])
    a b

let eq t a b =
  let diffs = bitxor t a b in
  let any =
    Array.fold_left
      (fun acc d ->
        match acc with
        | None -> Some d
        | Some acc -> Some (Netlist.add_cell t Netlist.Or2 ~fanins:[| acc; d |]))
      None diffs
  in
  match any with
  | None -> one_bit t
  | Some any -> Netlist.add_cell t Netlist.Not ~fanins:[| any |]

let reg t ?(init = 0) w =
  Array.mapi
    (fun i d ->
      let init_bit = Logic.of_bool ((init asr i) land 1 = 1) in
      Netlist.add_cell t (Netlist.Ff init_bit) ~fanins:[| d |])
    w

let maj3 t ?(voter = false) ?(domain = -1) a b c =
  if Array.length a <> Array.length b || Array.length b <> Array.length c then
    invalid_arg "Word.maj3: width mismatch";
  Array.init (Array.length a) (fun i ->
      Netlist.add_cell t ~voter ~domain Netlist.Maj3 ~fanins:[| a.(i); b.(i); c.(i) |])
