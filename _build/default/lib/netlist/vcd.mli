(** Value-change-dump (VCD) trace writer for netlist simulations.

    Records the port values of a {!Netsim} run so waveforms can be viewed
    in GTKWave & co.  One timescale unit per clock cycle; X values are
    emitted as VCD [x]. *)

type t

val create : Netsim.t -> Netlist.t -> t
(** Traces every input and output port of the netlist. *)

val watch_cell : t -> label:string -> Netlist.id -> unit
(** Additionally trace one internal net (e.g. a flip-flop under SEU
    attack).  Must be called before the first {!sample}. *)

val sample : t -> unit
(** Record the current simulator values as the next cycle. *)

val to_string : t -> string
(** Render the full VCD document (header + value changes). *)

val save : t -> string -> unit
