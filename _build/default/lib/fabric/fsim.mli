(** Simulator for whatever circuit a (possibly faulty) configuration
    actually implements.

    Built per fault from the {!Extract} state by walking backward from the
    watched output pads: wires collapse onto their single driver,
    multi-driven wires become resolution nodes (agreement or [X]), floating
    wires read [X], and fault-created combinational loops are iterated to
    their Kleene fixpoint.  Bels evaluate their (possibly corrupted) LUT
    table with pin-inversion muxes applied; registered bels expose the
    flip-flop, whose clock-enable and initialisation come from the
    configuration. *)

type t

type workspace
(** Reusable scratch arrays sized for one device; lets a fault-injection
    campaign build thousands of simulators without re-allocating. *)

val make_workspace : Tmr_arch.Device.t -> workspace

val build : ?ws:workspace -> Extract.t -> watch_outputs:int array -> t
(** [watch_outputs] are PadOut wires (the design's output pads).  The
    simulator covers exactly the logic cone observable from them. *)

val reset : t -> unit
(** Flip-flops to their configuration-load state (a scrub/reconfiguration
    boundary). *)

val set_pad : t -> int -> Tmr_logic.Logic.t -> unit
(** Drive a PadIn wire.  Ignored when the cone does not observe that pad. *)

val eval : t -> unit

val clock : t -> unit
(** Latch every flip-flop from the latest {!eval} (edge only). *)

val step : t -> unit
(** {!eval}, {!clock}, then {!eval} again. *)

val read : t -> int -> Tmr_logic.Logic.t
(** Value of a watched PadOut wire after the latest {!eval}/{!step}. *)

val num_nodes : t -> int
(** Size of the collapsed simulation graph (diagnostics). *)

val has_comb_loop : t -> bool
(** True when the configuration contains a fault-induced combinational
    cycle (diagnostics for effect classification). *)
