module Logic = Tmr_logic.Logic
module Device = Tmr_arch.Device

(* Node kinds, encoded for tight loops. *)
let k_constx = 0
let k_pad = 1
let k_bel_comb = 2
let k_bel_reg = 3
let k_resolve = 4

type workspace = {
  ws_dev : Device.t;
  mutable epoch : int;
  wire_mark : int array;  (* cone membership stamp *)
  bel_mark : int array;
  res_stamp : int array;  (* wire -> epoch of res_node validity *)
  res_node : int array;  (* wire -> node id *)
  ing_stamp : int array;  (* wire -> epoch when in-progress *)
  bel_node_stamp : int array;
  bel_node_id : int array;
}

let make_workspace dev =
  {
    ws_dev = dev;
    epoch = 0;
    wire_mark = Array.make dev.Device.nwires 0;
    bel_mark = Array.make dev.Device.nbels 0;
    res_stamp = Array.make dev.Device.nwires 0;
    res_node = Array.make dev.Device.nwires 0;
    ing_stamp = Array.make dev.Device.nwires 0;
    bel_node_stamp = Array.make dev.Device.nbels 0;
    bel_node_id = Array.make dev.Device.nbels 0;
  }

type t = {
  nnodes : int;
  kind : int array;
  inputs : int array array;  (* resolve inputs; bel pin nodes (len 4, -1 unused) *)
  table : int array;  (* bel nodes: LUT table *)
  inv : int array;  (* bel nodes: pin inversion mask *)
  ce_frozen : bool array;  (* bel nodes: clock-enable inverted *)
  q_init : Logic.t array;
  q : Logic.t array;
  values : Logic.t array;
  last : Logic.t array;
      (* settled value of each node at the end of the previous cycle; used
         by the drive-conflict glitch rule on shorted nodes *)
  sccs : int array array;  (* evaluation order *)
  scc_cyclic : bool array;
  pad_node : (int, int) Hashtbl.t;  (* PadIn wire -> node *)
  watch_node : (int, int) Hashtbl.t;  (* PadOut wire -> node *)
  has_loop : bool;
}

let support_mask table =
  let m = ref 0 in
  for j = 0 to 3 do
    let differs = ref false in
    for idx = 0 to 15 do
      if (table lsr idx) land 1 <> (table lsr (idx lxor (1 lsl j))) land 1 then
        differs := true
    done;
    if !differs then m := !m lor (1 lsl j)
  done;
  !m

(* Growable node store. *)
type builder = {
  mutable n : int;
  mutable b_kind : int array;
  mutable b_table : int array;
  mutable b_inv : int array;
  mutable b_ce : bool array;
  mutable b_qi : Logic.t array;
}

let builder_create () =
  {
    n = 0;
    b_kind = Array.make 256 0;
    b_table = Array.make 256 0;
    b_inv = Array.make 256 0;
    b_ce = Array.make 256 false;
    b_qi = Array.make 256 Logic.X;
  }

let builder_alloc b k ~table ~inv ~ce ~qi =
  if b.n >= Array.length b.b_kind then begin
    let grow a fill = Array.append a (Array.make (Array.length a) fill) in
    b.b_kind <- grow b.b_kind 0;
    b.b_table <- grow b.b_table 0;
    b.b_inv <- grow b.b_inv 0;
    b.b_ce <- grow b.b_ce false;
    b.b_qi <- grow b.b_qi Logic.X
  end;
  let id = b.n in
  b.b_kind.(id) <- k;
  b.b_table.(id) <- table;
  b.b_inv.(id) <- inv;
  b.b_ce.(id) <- ce;
  b.b_qi.(id) <- qi;
  b.n <- id + 1;
  id

let build ?ws ex ~watch_outputs =
  let dev = Extract.device ex in
  let ws =
    match ws with
    | Some w ->
        if w.ws_dev != dev then
          invalid_arg "Fsim.build: workspace built for another device";
        w
    | None -> make_workspace dev
  in
  ws.epoch <- ws.epoch + 1;
  let ep = ws.epoch in
  (* ---- Phase 1: collect the observable cone (wires and bels) ---- *)
  let bel_list = ref [] in
  let stack = ref [] in
  let push_wire w =
    if ws.wire_mark.(w) <> ep then begin
      ws.wire_mark.(w) <- ep;
      stack := w :: !stack
    end
  in
  Array.iter push_wire watch_outputs;
  let visit_bel b =
    if ws.bel_mark.(b) <> ep then begin
      ws.bel_mark.(b) <- ep;
      bel_list := b :: !bel_list;
      let mask = support_mask (Extract.lut_table ex b) in
      Array.iteri
        (fun j pinw -> if (mask lsr j) land 1 = 1 then push_wire pinw)
        dev.Device.bel_in.(b)
    end
  in
  let rec drain () =
    match !stack with
    | [] -> ()
    | w :: rest ->
        stack := rest;
        (match dev.Device.wkind.(w) with
        | Device.BelOut -> visit_bel dev.Device.wire_bel.(w)
        | Device.PadIn -> ()
        | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
        | Device.HLong | Device.VLong | Device.BelIn | Device.PadOut ->
            List.iter push_wire (Extract.drivers ex w);
            List.iter push_wire (Extract.links ex w));
        drain ()
  in
  drain ();
  (* ---- Phase 2: allocate nodes ---- *)
  let bld = builder_create () in
  let alloc = builder_alloc bld in
  let x_node = alloc k_constx ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
  List.iter
    (fun b ->
      let registered = Extract.out_sel ex b in
      let id =
        alloc
          (if registered then k_bel_reg else k_bel_comb)
          ~table:(Extract.lut_table ex b)
          ~inv:(Extract.in_inv_mask ex b)
          ~ce:(Extract.ce_inv ex b)
          ~qi:(Extract.ff_init ex b)
      in
      ws.bel_node_stamp.(b) <- ep;
      ws.bel_node_id.(b) <- id)
    !bel_list;
  let pad_node = Hashtbl.create 64 in
  let resolve_inputs = Hashtbl.create 64 in
  let set_resolved w n =
    ws.res_stamp.(w) <- ep;
    ws.res_node.(w) <- n
  in
  let rec wire_node w =
    if ws.res_stamp.(w) = ep then ws.res_node.(w)
    else if ws.ing_stamp.(w) = ep then x_node (* pure driver loop: floats *)
    else begin
      match dev.Device.wkind.(w) with
      | Device.PadIn ->
          let pad = dev.Device.wire_pad.(w) in
          let n =
            if Extract.pad_enabled ex pad then begin
              match Hashtbl.find_opt pad_node w with
              | Some n -> n
              | None ->
                  let n = alloc k_pad ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
                  Hashtbl.add pad_node w n;
                  n
            end
            else x_node
          in
          set_resolved w n;
          n
      | Device.BelOut ->
          let b = dev.Device.wire_bel.(w) in
          let n =
            if ws.bel_node_stamp.(b) = ep then ws.bel_node_id.(b)
            else x_node (* outside the collected cone *)
          in
          set_resolved w n;
          n
      | Device.HSingle | Device.VSingle | Device.HDouble | Device.VDouble
      | Device.HLong | Device.VLong | Device.BelIn | Device.PadOut ->
          (* The electrical node is the whole component of wires shorted
             together by ON pass pips; its drivers are every buffered
             driver of any member. *)
          let members = ref [] in
          let rec collect u =
            if ws.ing_stamp.(u) <> ep then begin
              ws.ing_stamp.(u) <- ep;
              members := u :: !members;
              List.iter collect (Extract.links ex u)
            end
          in
          collect w;
          let members = !members in
          let drvs = List.concat_map (fun u -> Extract.drivers ex u) members in
          let finish n =
            List.iter (fun u -> set_resolved u n) members;
            n
          in
          (match drvs with
          | [] -> finish x_node
          | [ u ] ->
              let n = wire_node u in
              finish n
          | us ->
              let n = alloc k_resolve ~table:0 ~inv:0 ~ce:false ~qi:Logic.X in
              (* register before resolving inputs so cycles hit the node,
                 not infinite recursion *)
              ignore (finish n);
              Hashtbl.replace resolve_inputs n
                (Array.of_list (List.map wire_node us));
              n)
    end
  in
  (* bel pins *)
  let bel_pins = Hashtbl.create 256 in
  List.iter
    (fun b ->
      let mask = support_mask (Extract.lut_table ex b) in
      let pins =
        Array.init 4 (fun j ->
            if (mask lsr j) land 1 = 1 then wire_node dev.Device.bel_in.(b).(j)
            else -1)
      in
      Hashtbl.add bel_pins ws.bel_node_id.(b) pins)
    !bel_list;
  let watch_node = Hashtbl.create 32 in
  Array.iter
    (fun w ->
      let pad = dev.Device.wire_pad.(w) in
      let n =
        if pad >= 0 && not (Extract.pad_enabled ex pad) then x_node
        else wire_node w
      in
      Hashtbl.replace watch_node w n)
    watch_outputs;
  let n = bld.n in
  let kind = Array.sub bld.b_kind 0 n in
  let table = Array.sub bld.b_table 0 n in
  let inv = Array.sub bld.b_inv 0 n in
  let ce_frozen = Array.sub bld.b_ce 0 n in
  let q_init = Array.sub bld.b_qi 0 n in
  let inputs = Array.make n [||] in
  Hashtbl.iter (fun node ins -> inputs.(node) <- ins) resolve_inputs;
  Hashtbl.iter (fun node pins -> inputs.(node) <- pins) bel_pins;
  (* ---- Phase 3: SCC decomposition of the combinational graph ----
     Combinational dependencies: resolve -> inputs; comb bel -> pins.
     Registered bels, pads and constants are sources. *)
  let dep node =
    if kind.(node) = k_resolve then inputs.(node)
    else if kind.(node) = k_bel_comb then inputs.(node)
    else [||]
  in
  (* Tarjan, iterative *)
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc_stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let strongconnect v =
    let call_stack = ref [ (v, 0) ] in
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    scc_stack := v :: !scc_stack;
    on_stack.(v) <- true;
    while !call_stack <> [] do
      match !call_stack with
      | [] -> ()
      | (node, i) :: rest ->
          let deps = dep node in
          if i < Array.length deps then begin
            call_stack := (node, i + 1) :: rest;
            let child = deps.(i) in
            if child >= 0 then begin
              if index.(child) < 0 then begin
                index.(child) <- !counter;
                low.(child) <- !counter;
                incr counter;
                scc_stack := child :: !scc_stack;
                on_stack.(child) <- true;
                call_stack := (child, 0) :: !call_stack
              end
              else if on_stack.(child) then
                low.(node) <- min low.(node) index.(child)
            end
          end
          else begin
            call_stack := rest;
            (match rest with
            | (parent, _) :: _ -> low.(parent) <- min low.(parent) low.(node)
            | [] -> ());
            if low.(node) = index.(node) then begin
              let comp = ref [] in
              let continue = ref true in
              while !continue do
                match !scc_stack with
                | [] -> continue := false
                | w :: tl ->
                    scc_stack := tl;
                    on_stack.(w) <- false;
                    comp := w :: !comp;
                    if w = node then continue := false
              done;
              sccs := Array.of_list !comp :: !sccs
            end
          end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Tarjan emits an SCC only after everything it depends on has been
     emitted, so the emission order is already inputs-first; accumulation
     with [::] reversed it, so reverse back. *)
  let sccs = Array.of_list (List.rev !sccs) in
  let has_self_loop comp =
    Array.length comp > 1
    || (let node = comp.(0) in
        Array.exists (fun d -> d = node) (dep node))
  in
  let scc_cyclic = Array.map has_self_loop sccs in
  {
    nnodes = n;
    kind;
    inputs;
    table;
    inv;
    ce_frozen;
    q_init;
    q = Array.map (fun v -> v) q_init;
    values = Array.make n Logic.X;
    last = Array.make n Logic.X;
    sccs;
    scc_cyclic;
    pad_node;
    watch_node;
    has_loop = Array.exists (fun c -> c) scc_cyclic;
  }

let num_nodes t = t.nnodes
let has_comb_loop t = t.has_loop

let reset t =
  Array.blit t.q_init 0 t.q 0 t.nnodes;
  Array.fill t.values 0 t.nnodes Logic.X;
  Array.fill t.last 0 t.nnodes Logic.X

let set_pad t wire v =
  match Hashtbl.find_opt t.pad_node wire with
  | Some n -> t.values.(n) <- v
  | None -> ()

(* LUT evaluation on node values with inversion mask; X-aware. *)
let lut_eval t node =
  let pins = t.inputs.(node) in
  let table = t.table.(node) in
  let inv = t.inv.(node) in
  (* fast path: all defined *)
  let rec fast j idx =
    if j >= 4 then Some idx
    else
      let p = pins.(j) in
      if p < 0 then fast (j + 1) idx
      else
        match t.values.(p) with
        | Logic.Zero ->
            let bit = (inv lsr j) land 1 in
            fast (j + 1) (idx lor (bit lsl j))
        | Logic.One ->
            let bit = 1 - ((inv lsr j) land 1) in
            fast (j + 1) (idx lor (bit lsl j))
        | Logic.X -> None
  in
  match fast 0 0 with
  | Some idx -> Logic.of_bool ((table lsr idx) land 1 = 1)
  | None ->
      (* enumerate completions of X pins *)
      let rec scan j idx =
        if j >= 4 then Logic.of_bool ((table lsr idx) land 1 = 1)
        else
          let p = pins.(j) in
          if p < 0 then scan (j + 1) idx
          else
            let continue v =
              let bit =
                if v then 1 - ((inv lsr j) land 1) else (inv lsr j) land 1
              in
              scan (j + 1) (idx lor (bit lsl j))
            in
            match t.values.(p) with
            | Logic.Zero -> continue false
            | Logic.One -> continue true
            | Logic.X ->
                let a = continue false and b = continue true in
                if Logic.equal a b then a else Logic.X
      in
      scan 0 0

let eval_node t node =
  let k = t.kind.(node) in
  if k = k_resolve then begin
    (* A multiply-driven node: the drivers fight.  The settled value is
       their agreement; beyond that we are pessimistic about skew — if any
       driver transitioned this cycle, the fight glitches and the node
       reads unknown (two copies of the same TMR signal are shorted
       harmlessly in a zero-delay model, but not in silicon). *)
    let ins = t.inputs.(node) in
    let len = Array.length ins in
    if len = 0 then Logic.X
    else begin
      let v = ref t.values.(ins.(0)) in
      for i = 1 to len - 1 do
        v := Logic.resolve !v t.values.(ins.(i))
      done;
      (match !v with
      | Logic.X -> ()
      | Logic.Zero | Logic.One ->
          for i = 0 to len - 1 do
            if not (Logic.equal t.last.(ins.(i)) !v) then v := Logic.X
          done);
      !v
    end
  end
  else if k = k_bel_comb then lut_eval t node
  else if k = k_bel_reg then t.q.(node)
  else if k = k_constx then Logic.X
  else (* k_pad *) t.values.(node)

let eval t =
  Array.iteri
    (fun ci comp ->
      if not t.scc_cyclic.(ci) then begin
        let node = comp.(0) in
        t.values.(node) <- eval_node t node
      end
      else begin
        (* Kleene iteration from X *)
        Array.iter (fun node -> t.values.(node) <- Logic.X) comp;
        let changed = ref true in
        let guard = ref ((3 * Array.length comp) + 4) in
        while !changed && !guard > 0 do
          changed := false;
          decr guard;
          Array.iter
            (fun node ->
              let v = eval_node t node in
              if not (Logic.equal v t.values.(node)) then begin
                t.values.(node) <- v;
                changed := true
              end)
            comp
        done
      end)
    t.sccs

let clock t =
  for node = 0 to t.nnodes - 1 do
    let k = t.kind.(node) in
    if k = k_bel_reg || k = k_bel_comb then
      if not t.ce_frozen.(node) then t.q.(node) <- lut_eval t node
  done;
  Array.blit t.values 0 t.last 0 t.nnodes

let step t =
  eval t;
  clock t;
  eval t

let read t wire =
  match Hashtbl.find_opt t.watch_node wire with
  | Some n -> t.values.(n)
  | None -> invalid_arg "Fsim.read: wire is not watched"
