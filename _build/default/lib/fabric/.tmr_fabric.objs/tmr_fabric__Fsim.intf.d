lib/fabric/fsim.mli: Extract Tmr_arch Tmr_logic
