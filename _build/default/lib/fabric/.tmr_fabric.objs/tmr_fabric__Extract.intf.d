lib/fabric/extract.mli: Tmr_arch Tmr_logic
