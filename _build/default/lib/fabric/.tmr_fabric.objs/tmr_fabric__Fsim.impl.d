lib/fabric/fsim.ml: Array Extract Hashtbl List Tmr_arch Tmr_logic
