lib/fabric/extract.ml: Array Tmr_arch Tmr_logic
