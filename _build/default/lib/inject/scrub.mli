(** Upset accumulation between scrubs.

    The paper (§2) argues that continuous bitstream reconfiguration
    ("scrubbing") is needed because upsets in the configuration memory are
    permanent until the next reload: without scrubbing they {e accumulate},
    and TMR — which survives any single upset in one redundancy domain —
    eventually collects upsets in two domains and fails.

    This module measures that directly: each trial injects random DUT bits
    one after another {e without} repairing the previous ones, running the
    test pattern after each, and records how many accumulated upsets the
    design absorbed before its first wrong answer.  The mean of that count
    is the "scrub budget": how many upsets per scrub period a design
    tolerates. *)

type result = {
  trials : int;
  cap : int;  (** per-trial injection cap *)
  upsets_to_failure : int array;
      (** per trial: number of accumulated upsets at the first wrong
          answer; [cap + 1] when the trial never failed *)
  mean : float;  (** censored trials count as [cap + 1] *)
  survived : int;  (** trials that reached the cap without failing *)
}

val accumulate :
  ?trials:int ->
  ?cap:int ->
  seed:int ->
  impl:Tmr_pnr.Impl.t ->
  golden:Tmr_netlist.Netlist.t ->
  stimulus:Campaign.stimulus ->
  faultlist:Faultlist.t ->
  unit ->
  result
(** Defaults: 20 trials, cap 60 upsets per trial. *)
