(** Fault Injection Manager (paper §4, module 2).

    For each fault in the list: flip the bit in the configuration image,
    re-derive the circuit the fabric now implements, run the test pattern,
    and compare every output bit of every clock cycle against the golden
    device (a netlist-level simulation of the unprotected design).  Any
    difference — including an unknown value — classifies the fault as a
    Wrong Answer; the fault is then reverted (scrubbing) and the next one
    is injected. *)

type stimulus = {
  cycles : int;
  inputs : (string * int array) list;
      (** per base input port, one sample per cycle.  A TMR DUT's
          triplicated copies of the port are driven identically. *)
}

type outcome =
  | Silent
  | Wrong_answer

type fault_result = {
  bit : int;
  outcome : outcome;
  effect : Classify.effect;
  first_error_cycle : int;  (** -1 when silent *)
}

type t = {
  design : string;
  injected : int;
  wrong : int;
  results : fault_result array;
}

val dut_input_wires : Tmr_pnr.Impl.t -> string -> int array list
(** Physical PadIn wires for a base input port: one wire set on an
    unprotected design, three (one per redundancy domain) on a TMR one. *)

val dut_output_wires : Tmr_pnr.Impl.t -> string -> int array

val golden_outputs :
  Tmr_netlist.Netlist.t ->
  stimulus ->
  (string * Tmr_logic.Logic.t array array) list
(** Reference response of a netlist: for each output port, the per-cycle
    bit values sampled combinationally (before each clock edge). *)

val run :
  ?progress:(int -> int -> unit) ->
  name:string ->
  impl:Tmr_pnr.Impl.t ->
  golden:Tmr_netlist.Netlist.t ->
  stimulus:stimulus ->
  faults:int array ->
  unit ->
  t
(** Raises [Failure] if the un-faulted DUT does not match the golden
    device (an implementation-flow bug, not a fault). *)

val wrong_percent : t -> float
