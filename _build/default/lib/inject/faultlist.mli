(** Fault List Manager (paper §4, module 1).

    Generates the list of candidate single-bit upsets for a DUT: only bits
    that are "actually programmed to implement the DUT" (used-bel bits,
    used-pad bits, and routing bits incident to routed wires), so no
    injection is wasted on unrelated parts of the configuration memory.
    Common-mode faults are impossible by construction: one bit per
    injection. *)

type t = {
  bits : int array;  (** candidate bit addresses, ascending *)
  by_class : (Tmr_arch.Bitdb.bit_class * int) list;
}

val of_impl : Tmr_pnr.Impl.t -> t

val sample : t -> seed:int -> count:int -> int array
(** Random sample without replacement (the whole list if [count] is
    larger), deterministic in [seed]. *)
