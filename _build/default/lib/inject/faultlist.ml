module Srand = Tmr_logic.Srand

type t = {
  bits : int array;
  by_class : (Tmr_arch.Bitdb.bit_class * int) list;
}

let of_impl impl =
  let bg = impl.Tmr_pnr.Impl.bitgen in
  {
    bits = bg.Tmr_pnr.Bitgen.dut_bits;
    by_class = Tmr_pnr.Bitgen.dut_bits_by_class impl.Tmr_pnr.Impl.db bg;
  }

let sample t ~seed ~count =
  let rng = Srand.create (seed * 31 + 17) in
  let n = Array.length t.bits in
  let picked = Srand.sample rng count n in
  Array.map (fun i -> t.bits.(i)) picked
