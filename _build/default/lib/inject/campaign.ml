module Logic = Tmr_logic.Logic
module Netlist = Tmr_netlist.Netlist
module Netsim = Tmr_netlist.Netsim
module Bitstream = Tmr_arch.Bitstream
module Impl = Tmr_pnr.Impl
module Extract = Tmr_fabric.Extract
module Fsim = Tmr_fabric.Fsim

type stimulus = {
  cycles : int;
  inputs : (string * int array) list;
}

type outcome =
  | Silent
  | Wrong_answer

type fault_result = {
  bit : int;
  outcome : outcome;
  effect : Classify.effect;
  first_error_cycle : int;
}

type t = {
  design : string;
  injected : int;
  wrong : int;
  results : fault_result array;
}

let golden_outputs nl stimulus =
  List.iter
    (fun (port, samples) ->
      if Array.length samples < stimulus.cycles then
        invalid_arg (Printf.sprintf "Campaign: port %S has too few samples" port))
    stimulus.inputs;
  let sim = Netsim.create nl in
  Netsim.reset sim;
  let ports = Netlist.output_ports nl in
  let record =
    List.map
      (fun (port, bits) ->
        (port, Array.make_matrix stimulus.cycles (Array.length bits) Logic.X))
      ports
  in
  for cycle = 0 to stimulus.cycles - 1 do
    List.iter
      (fun (port, samples) -> Netsim.set_input sim port samples.(cycle))
      stimulus.inputs;
    Netsim.eval sim;
    List.iter
      (fun (port, matrix) ->
        let bits = Netsim.output_bits sim port in
        Array.blit bits 0 matrix.(cycle) 0 (Array.length bits))
      record;
    Netsim.clock sim
  done;
  record

(* The DUT's physical pads for a base input port: the port itself on an
   unprotected design, or its three domain copies on a TMR design. *)
let dut_input_wires impl port =
  let mapped = impl.Impl.mapped in
  let has name = List.mem_assoc name (Netlist.input_ports mapped) in
  let port_wires name =
    let bits = Netlist.find_input_port mapped name in
    Array.init (Array.length bits) (Impl.input_pad_wire impl name)
  in
  if has port then [ port_wires port ]
  else begin
    let copies =
      List.init Tmr_core.Tmr.domains (Tmr_core.Tmr.redundant_port port)
    in
    List.iter
      (fun c ->
        if not (has c) then
          invalid_arg (Printf.sprintf "Campaign: DUT has no input port %S" c))
      copies;
    List.map port_wires copies
  end

let dut_output_wires impl port =
  let bits = Netlist.find_output_port impl.Impl.mapped port in
  Array.init (Array.length bits) (Impl.output_pad_wire impl port)

let run ?progress ~name ~impl ~golden ~stimulus ~faults () =
  let golden_ref = golden_outputs golden stimulus in
  (* physical IO map *)
  let input_map =
    List.map
      (fun (port, samples) -> (dut_input_wires impl port, samples))
      stimulus.inputs
  in
  let output_map =
    List.map (fun (port, matrix) -> (dut_output_wires impl port, matrix)) golden_ref
  in
  let watch_outputs =
    Array.concat (List.map (fun (wires, _) -> wires) output_map)
  in
  let ex =
    Extract.create impl.Impl.dev impl.Impl.db
      (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
  in
  (* Run the DUT through the stimulus; return the first cycle where any
     output bit disagrees with the golden reference, or -1. *)
  let run_dut sim =
    Fsim.reset sim;
    let error_cycle = ref (-1) in
    let cycle = ref 0 in
    while !error_cycle < 0 && !cycle < stimulus.cycles do
      let c = !cycle in
      List.iter
        (fun (wire_sets, samples) ->
          let v = samples.(c) in
          List.iter
            (fun wires ->
              Array.iteri
                (fun i w ->
                  Fsim.set_pad sim w (Logic.of_bool ((v asr i) land 1 = 1)))
                wires)
            wire_sets)
        input_map;
      Fsim.eval sim;
      let ok =
        List.for_all
          (fun (wires, matrix) ->
            let expected = matrix.(c) in
            let n = Array.length wires in
            let rec check i =
              i >= n
              || (Logic.equal (Fsim.read sim wires.(i)) expected.(i)
                  && check (i + 1))
            in
            check 0)
          output_map
      in
      if not ok then error_cycle := c
      else begin
        Fsim.clock sim;
        incr cycle
      end
    done;
    !error_cycle
  in
  let ws = Fsim.make_workspace impl.Impl.dev in
  (* baseline: the un-faulted DUT must match the golden device *)
  let baseline = Fsim.build ~ws ex ~watch_outputs in
  (match run_dut baseline with
  | -1 -> ()
  | c ->
      failwith
        (Printf.sprintf
           "Campaign %s: fault-free DUT disagrees with golden device at cycle %d"
           name c));
  let total = Array.length faults in
  let results =
    Array.mapi
      (fun i bit ->
        (match progress with Some f -> f i total | None -> ());
        Extract.apply_bit_flip ex bit;
        let sim = Fsim.build ~ws ex ~watch_outputs in
        let error_cycle = run_dut sim in
        Extract.apply_bit_flip ex bit;
        {
          bit;
          outcome = (if error_cycle >= 0 then Wrong_answer else Silent);
          effect = Classify.classify impl bit;
          first_error_cycle = error_cycle;
        })
      faults
  in
  let wrong =
    Array.fold_left
      (fun acc r -> if r.outcome = Wrong_answer then acc + 1 else acc)
      0 results
  in
  { design = name; injected = total; wrong; results }

let wrong_percent t =
  if t.injected = 0 then 0.0
  else 100.0 *. float_of_int t.wrong /. float_of_int t.injected
