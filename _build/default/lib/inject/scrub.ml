module Logic = Tmr_logic.Logic
module Srand = Tmr_logic.Srand
module Netlist = Tmr_netlist.Netlist
module Bitstream = Tmr_arch.Bitstream
module Impl = Tmr_pnr.Impl
module Extract = Tmr_fabric.Extract
module Fsim = Tmr_fabric.Fsim

type result = {
  trials : int;
  cap : int;
  upsets_to_failure : int array;
  mean : float;
  survived : int;
}

let accumulate ?(trials = 20) ?(cap = 60) ~seed ~impl ~golden ~stimulus
    ~faultlist () =
  let golden_ref = Campaign.golden_outputs golden stimulus in
  let input_map =
    List.map
      (fun (port, samples) -> (Campaign.dut_input_wires impl port, samples))
      stimulus.Campaign.inputs
  in
  let output_map =
    List.map
      (fun (port, matrix) -> (Campaign.dut_output_wires impl port, matrix))
      golden_ref
  in
  let watch_outputs =
    Array.concat (List.map (fun (wires, _) -> wires) output_map)
  in
  let ws = Fsim.make_workspace impl.Impl.dev in
  let rng = Srand.create (seed * 131 + 7) in
  let bits = faultlist.Faultlist.bits in
  let run_dut ex =
    let sim = Fsim.build ~ws ex ~watch_outputs in
    Fsim.reset sim;
    let failed = ref false in
    let cycle = ref 0 in
    while (not !failed) && !cycle < stimulus.Campaign.cycles do
      let c = !cycle in
      List.iter
        (fun (wire_sets, samples) ->
          let v = samples.(c) in
          List.iter
            (fun wires ->
              Array.iteri
                (fun i w ->
                  Fsim.set_pad sim w (Logic.of_bool ((v asr i) land 1 = 1)))
                wires)
            wire_sets)
        input_map;
      Fsim.eval sim;
      List.iter
        (fun (wires, matrix) ->
          let expected = matrix.(c) in
          Array.iteri
            (fun i w ->
              if not (Logic.equal (Fsim.read sim w) expected.(i)) then
                failed := true)
            wires)
        output_map;
      Fsim.clock sim;
      incr cycle
    done;
    !failed
  in
  let upsets_to_failure =
    Array.init trials (fun _ ->
        (* a fresh (scrubbed) configuration for every trial *)
        let ex =
          Extract.create impl.Impl.dev impl.Impl.db
            (Bitstream.copy impl.Impl.bitgen.Tmr_pnr.Bitgen.bitstream)
        in
        let injected = Hashtbl.create 64 in
        let rec inject k =
          if k > cap then cap + 1
          else begin
            let bit = Srand.pick rng bits in
            if Hashtbl.mem injected bit then inject k
            else begin
              Hashtbl.add injected bit ();
              Extract.apply_bit_flip ex bit;
              if run_dut ex then k else inject (k + 1)
            end
          end
        in
        inject 1)
  in
  let mean =
    float_of_int (Array.fold_left ( + ) 0 upsets_to_failure)
    /. float_of_int (max trials 1)
  in
  let survived =
    Array.fold_left
      (fun acc v -> if v > cap then acc + 1 else acc)
      0 upsets_to_failure
  in
  { trials; cap; upsets_to_failure; mean; survived }
