lib/inject/classify.mli: Tmr_pnr
