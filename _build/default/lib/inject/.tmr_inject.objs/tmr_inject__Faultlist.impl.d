lib/inject/faultlist.ml: Array Tmr_arch Tmr_logic Tmr_pnr
