lib/inject/scrub.ml: Array Campaign Faultlist Hashtbl List Tmr_arch Tmr_fabric Tmr_logic Tmr_netlist Tmr_pnr
