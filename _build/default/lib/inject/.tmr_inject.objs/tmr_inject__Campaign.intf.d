lib/inject/campaign.mli: Classify Tmr_logic Tmr_netlist Tmr_pnr
