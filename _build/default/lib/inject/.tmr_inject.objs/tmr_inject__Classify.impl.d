lib/inject/classify.ml: Array Tmr_arch Tmr_pnr
