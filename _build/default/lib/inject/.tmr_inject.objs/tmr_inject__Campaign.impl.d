lib/inject/campaign.ml: Array Classify List Printf Tmr_arch Tmr_core Tmr_fabric Tmr_logic Tmr_netlist Tmr_pnr
