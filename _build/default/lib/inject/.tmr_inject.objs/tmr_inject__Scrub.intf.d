lib/inject/scrub.mli: Campaign Faultlist Tmr_netlist Tmr_pnr
