lib/inject/faultlist.mli: Tmr_arch Tmr_pnr
