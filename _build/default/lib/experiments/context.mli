(** Shared experimental setup: device, bit database, case-study filter,
    stimulus and campaign sizing.

    Building the XC2S200E-like device costs a couple of seconds, so every
    experiment in a process shares one context.  [scale] selects the
    paper-scale setup or a reduced one for tests and quick runs. *)

type scale =
  | Paper  (** XC2S200E-like device, 11-tap 9-bit filter *)
  | Reduced  (** small device, 3-tap filter; seconds instead of minutes *)

type t = {
  scale : scale;
  dev : Tmr_arch.Device.t;
  db : Tmr_arch.Bitdb.t;
  params : Tmr_filter.Fir.params;
  golden_nl : Tmr_netlist.Netlist.t;
  stimulus : Tmr_inject.Campaign.stimulus;
  seed : int;
  faults_per_design : int;
  place_moves : int option;
}

val create :
  ?scale:scale ->
  ?seed:int ->
  ?faults_per_design:int ->
  ?cycles:int ->
  unit ->
  t
(** Defaults: [Paper] scale, seed 1, 2000 faults per design, 48 stimulus
    cycles. *)
