(** Reproductions of the paper's in-text measurements (§2 and §4). *)

val device_report : Context.t -> string
(** §4: configuration memory size, frame organisation, array size —
    compared with the paper's XC2S200E figures (1,442,016 bits, 2,501
    frames of 576 bits, 28x42 array). *)

val memory_report : Context.t -> string
(** §2: composition of the customizable bits (routing / LUT /
    customization / flip-flop percentages) against the paper's 82.9 / 7.4
    / 6.36 / 0.46. *)
