module Texttab = Tmr_logic.Texttab
module Arch = Tmr_arch.Arch
module Bitdb = Tmr_arch.Bitdb

let device_report (ctx : Context.t) =
  let db = ctx.Context.db in
  let p = ctx.Context.dev.Tmr_arch.Device.params in
  let t =
    Texttab.create ~title:"Device report (paper SS4: Spartan XC2S200E-PQ208)"
      ~header:[ "quantity"; "this model"; "paper" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right ]
  in
  Texttab.add_row t
    [ "CLB array";
      Printf.sprintf "%d x %d" p.Arch.rows p.Arch.cols;
      "28 x 42" ];
  Texttab.add_row t
    [ "configuration bits"; string_of_int (Bitdb.num_bits db); "1,442,016" ];
  Texttab.add_row t
    [ "frames"; string_of_int (Bitdb.num_frames db); "2,501" ];
  Texttab.add_row t
    [ "frame bits"; string_of_int (Bitdb.frame_bits db); "576" ];
  Texttab.add_row t
    [ "LUT4+FF bels"; string_of_int (Arch.num_bels p); "4,704 (2,352 slices x 2)" ];
  Texttab.render t

let memory_report (ctx : Context.t) =
  let db = ctx.Context.db in
  let counts = Bitdb.class_counts db in
  let total = Bitdb.num_bits db in
  let paper = function
    | Bitdb.Class_routing -> "82.9"
    | Bitdb.Class_lut -> "7.4"
    | Bitdb.Class_custom -> "6.36"
    | Bitdb.Class_ff -> "0.46"
  in
  let t =
    Texttab.create
      ~title:"Configuration memory composition (paper SS2 percentages)"
      ~header:[ "bit class"; "#bits"; "[%]"; "paper [%]" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right ]
  in
  List.iter
    (fun (cls, n) ->
      Texttab.add_row t
        [
          Bitdb.class_name cls;
          string_of_int n;
          Printf.sprintf "%.2f" (100.0 *. float_of_int n /. float_of_int total);
          paper cls;
        ])
    counts;
  Texttab.render t
