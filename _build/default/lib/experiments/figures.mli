(** Reproductions of the paper's figures.

    Figures 1-4 are schematics; each is reproduced as the behavioural
    scenario it illustrates, executed on the real implementation flow and
    reported as text. *)

val wire_domains : Runs.design_run -> int array
(** wire id -> TMR domain of the net routed through it; [-1] for nets of
    no single domain (voter outputs to pads, etc.), [-2] for unused
    wires. *)

val short_experiment :
  Context.t ->
  Runs.design_run ->
  same_domain:bool ->
  n:int ->
  int * int
(** Inject up to [n] pass-pip shorts between two routed nets of the same /
    of different TMR domains; returns (injected, wrong answers).  This is
    fig. 1's upset "a" (intra-domain, voted out) versus upset "b"
    (inter-domain, able to defeat the vote). *)

val fig1 : Context.t -> Runs.design_run -> string
(** Upsets "a" and "b" on an unpartitioned TMR design. *)

val fig2 : Context.t -> string
(** TMR register with voters and refresh: a state-machine (accumulator)
    with voted registers self-recovers from an SEU in a flip-flop, and
    survives a later SEU in another domain; with unvoted registers the
    corruption is latched forever and a second SEU defeats the vote. *)

val fig3 : Context.t -> Runs.design_run -> Runs.design_run -> string
(** The inter-domain upset "b" on an unpartitioned versus a partitioned
    TMR design: the voter barrier blocks the propagation. *)

val fig4 : Runs.design_run list -> string
(** Structural comparison of the TMR filter schemes: voters, voter
    stages, inter-domain nets. *)
