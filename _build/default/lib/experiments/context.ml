type scale =
  | Paper
  | Reduced

type t = {
  scale : scale;
  dev : Tmr_arch.Device.t;
  db : Tmr_arch.Bitdb.t;
  params : Tmr_filter.Fir.params;
  golden_nl : Tmr_netlist.Netlist.t;
  stimulus : Tmr_inject.Campaign.stimulus;
  seed : int;
  faults_per_design : int;
  place_moves : int option;
}

let create ?(scale = Paper) ?(seed = 1) ?(faults_per_design = 2000)
    ?(cycles = 48) () =
  let arch_params, fir_params =
    match scale with
    | Paper -> (Tmr_arch.Arch.xc2s200e, Tmr_filter.Fir.paper_params)
    | Reduced -> (Tmr_arch.Arch.small, Tmr_filter.Fir.tiny_params)
  in
  let dev = Tmr_arch.Device.build arch_params in
  let db = Tmr_arch.Bitdb.build dev in
  let golden_nl = Tmr_filter.Fir.build fir_params in
  let samples = Tmr_filter.Fir.stimulus ~cycles ~seed:(seed + 1000) fir_params in
  {
    scale;
    dev;
    db;
    params = fir_params;
    golden_nl;
    stimulus = { Tmr_inject.Campaign.cycles; inputs = [ ("x", samples) ] };
    seed;
    faults_per_design;
    place_moves = None;
  }
