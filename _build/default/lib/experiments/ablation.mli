(** Ablations beyond the paper's experiments.

    - {!floorplan}: the paper's future-work item — dedicated floorplanning
      of the three redundancy domains (each confined to its own third of
      the array) versus the paper's free placement, measured with the same
      fault-injection campaign.
    - {!scrub}: upset accumulation between scrubs — how many accumulated
      configuration upsets each design version absorbs before its first
      wrong answer (the quantitative version of §2's argument for
      continuous reconfiguration). *)

val floorplan : Context.t -> Tmr_core.Partition.strategy -> string
(** Compare [`Free] and [`Domains] placement of one design. *)

val scrub : Context.t -> string
(** Accumulation experiment over the five paper designs. *)
