module Texttab = Tmr_logic.Texttab
module Partition = Tmr_core.Partition
module Impl = Tmr_pnr.Impl
module Faultlist = Tmr_inject.Faultlist
module Campaign = Tmr_inject.Campaign
module Scrub = Tmr_inject.Scrub

let implement_with (ctx : Context.t) strategy floorplan =
  let nl = Tmr_filter.Designs.build ~params:ctx.Context.params strategy in
  Impl.implement_exn ~seed:ctx.Context.seed ~floorplan ctx.Context.dev
    ctx.Context.db nl

let campaign_of (ctx : Context.t) name impl =
  let faultlist = Faultlist.of_impl impl in
  let faults =
    Faultlist.sample faultlist ~seed:ctx.Context.seed
      ~count:ctx.Context.faults_per_design
  in
  Campaign.run ~name ~impl ~golden:ctx.Context.golden_nl
    ~stimulus:ctx.Context.stimulus ~faults ()

let floorplan (ctx : Context.t) strategy =
  let t =
    Texttab.create
      ~title:
        (Printf.sprintf
           "Ablation: free vs per-domain floorplanning (%s) — the paper's \
            future work"
           (Partition.paper_name strategy))
      ~header:
        [ "placement"; "slices"; "est. MHz"; "injected"; "wrong"; "[%]" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right;
        Texttab.Right; Texttab.Right ]
  in
  List.iter
    (fun (label, fp) ->
      let impl = implement_with ctx strategy fp in
      let c = campaign_of ctx label impl in
      Texttab.add_row t
        [
          label;
          string_of_int (Impl.used_slices impl);
          Printf.sprintf "%.0f" impl.Impl.timing.Tmr_pnr.Timing.mhz;
          string_of_int c.Campaign.injected;
          string_of_int c.Campaign.wrong;
          Printf.sprintf "%.2f" (Campaign.wrong_percent c);
        ])
    [ ("free (paper setup)", `Free); ("per-domain regions", `Domains) ];
  Texttab.render t
  ^ "Confining each redundancy domain to its own region removes most\n\
     inter-domain wire adjacency, leaving only the voter wiring as bridge\n\
     surface.\n"

let scrub (ctx : Context.t) =
  let t =
    Texttab.create
      ~title:
        "Ablation: upset accumulation between scrubs (mean upsets absorbed \
         before the first wrong answer)"
      ~header:[ "design"; "trials"; "mean upsets to failure"; "survived cap" ]
      [ Texttab.Left; Texttab.Right; Texttab.Right; Texttab.Right ]
  in
  List.iter
    (fun strategy ->
      let run = Runs.implement_design ctx strategy in
      let r =
        Scrub.accumulate ~seed:ctx.Context.seed ~impl:run.Runs.impl
          ~golden:ctx.Context.golden_nl ~stimulus:ctx.Context.stimulus
          ~faultlist:run.Runs.faultlist ()
      in
      Texttab.add_row t
        [
          Partition.paper_name strategy;
          string_of_int r.Scrub.trials;
          Printf.sprintf "%.1f" r.Scrub.mean;
          Printf.sprintf "%d/%d" r.Scrub.survived r.Scrub.trials;
        ])
    Partition.all_paper_designs;
  Texttab.render t
  ^ "The unprotected filter dies on the first or second upset; TMR absorbs\n\
     many — which is exactly the budget scrubbing must replenish (SS2).\n"
